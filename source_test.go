package pseudohoneypot

import (
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
)

// goldenStream is the reference streaming configuration every golden
// fingerprint in this file is taken under (seed 1, 120 random nodes,
// 16-tweet micro-batches, PH_WORKERS=2 — the same knobs as
// goldenStreamingFingerprint).
func goldenStream(extra func(*SnifferConfig)) SnifferConfig {
	cfg := SnifferConfig{
		Specs: RandomSpec(120),
		Seed:  1,
		Stream: StreamConfig{
			Enabled:       true,
			BatchSize:     16,
			FlushInterval: time.Millisecond,
		},
	}
	if extra != nil {
		extra(&cfg)
	}
	return cfg
}

// TestTwitterSourceGolden proves the explicit twitter source is the same
// adapter the sniffer builds implicitly: a run with
// Sources=[NewTwitterSource(sim)] reproduces the pinned streaming
// fingerprint bit for bit.
func TestTwitterSourceGolden(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, goldenStream(func(cfg *SnifferConfig) {
		cfg.Sources = []IngestSource{NewTwitterSource(sim)}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if err := sniffer.RunHours(6); err != nil {
		t.Fatal(err)
	}
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintResult(res); got != goldenStreamingFingerprint {
		t.Fatalf("explicit twitter source drifted from the golden run:\n got  %s\n want %s",
			got, goldenStreamingFingerprint)
	}
}

// TestReplayReproducesRun is the replay acceptance property: a durable run
// recorded with rotation records, re-fed through the full pipeline by a
// ReplaySource, reproduces the recording's detection result bit for bit —
// twice, since a recording is replayable any number of times.
func TestReplayReproducesRun(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	dir := t.TempDir()
	sim := testSimulation(t)
	rec, err := NewSniffer(sim, goldenStream(func(cfg *SnifferConfig) {
		cfg.Durability = DurabilityConfig{
			Dir: dir,
			// Default hourly checkpoints on purpose: RecordRotations must
			// suspend compaction pruning (store RetainAll), or the segments
			// the replay needs would be gone by the end of the recording.
			RecordRotations: true,
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.RunHours(6); err != nil {
		t.Fatal(err)
	}
	res, err := rec.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintResult(res)
	if want != goldenStreamingFingerprint {
		t.Fatalf("recording run drifted from the golden run:\n got  %s\n want %s",
			want, goldenStreamingFingerprint)
	}
	rec.Close() // stamps the profile epilogue the replay labels against

	for round := 0; round < 2; round++ {
		src, err := NewReplaySource(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := NewSniffer(nil, goldenStream(func(cfg *SnifferConfig) {
			cfg.Sources = []IngestSource{src}
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.RunHours(6); err != nil {
			t.Fatal(err)
		}
		repRes, err := rep.DetectAll()
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprintResult(repRes); got != want {
			t.Fatalf("replay %d diverged from its recording:\n got  %s\n want %s", round, got, want)
		}
		rep.Close()
	}
}

// goldenMuxFingerprint pins the muxed twitter+reddit run at the reference
// configuration. TestMuxDeterminism proves the merge is deterministic
// across shard counts and repeated runs; this constant pins the merged
// stream's result across builds.
const goldenMuxFingerprint = "7a73d28975b8961d09ce5866a9253e0cfbc5ae70fc510ca03c1505d1e69a0215"

// muxDetection runs one twitter+reddit muxed detection at the reference
// configuration with the given shard count.
func muxDetection(t *testing.T, shards int) *DetectionResult {
	t.Helper()
	sim := testSimulation(t)
	reddit, err := NewRedditSource(RedditSourceConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sniffer, err := NewSniffer(sim, goldenStream(func(cfg *SnifferConfig) {
		cfg.Sources = []IngestSource{NewTwitterSource(sim), reddit}
		cfg.Shards = shards
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if err := sniffer.RunHours(6); err != nil {
		t.Fatal(err)
	}
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMuxDeterminism pins the muxed twitter+reddit run and proves the
// deterministic k-way merge: the same fingerprint at shard counts 1, 2,
// and 4, and again on a repeated unsharded run.
func TestMuxDeterminism(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	for _, shards := range []int{0, 0, 2, 4} {
		res := muxDetection(t, shards)
		if got := fingerprintResult(res); got != goldenMuxFingerprint {
			t.Fatalf("mux fingerprint drifted (shards=%d):\n got  %s\n want %s",
				shards, got, goldenMuxFingerprint)
		}
	}
}

// TestSnifferConfigValidate covers every cross-field rule Validate
// enforces, including the ones NewSniffer used to reject piecemeal.
func TestSnifferConfigValidate(t *testing.T) {
	stream := StreamConfig{Enabled: true}
	replaySrc := func(t *testing.T) IngestSource {
		t.Helper()
		dir := t.TempDir()
		cfg := DefaultConfig()
		cfg.NumAccounts = 600
		cfg.OrganicTweetsPerHour = 60
		sim, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := NewSniffer(sim, SnifferConfig{
			Specs:  RandomSpec(40),
			Stream: stream,
			Durability: DurabilityConfig{
				Dir: dir, CheckpointEvery: 1000, RecordRotations: true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.RunHours(1); err != nil {
			t.Fatal(err)
		}
		rec.Close()
		src, err := NewReplaySource(dir)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	tw := func(t *testing.T) IngestSource {
		t.Helper()
		r, err := NewRedditSource(RedditSourceConfig{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cases := []struct {
		name string
		cfg  func(t *testing.T) SnifferConfig
		want string // error substring, empty = valid
	}{
		{"zero value", func(*testing.T) SnifferConfig { return SnifferConfig{} }, ""},
		{"unknown shard mode", func(*testing.T) SnifferConfig {
			return SnifferConfig{ShardMode: "threads"}
		}, "unknown shard mode"},
		{"shards without stream", func(*testing.T) SnifferConfig {
			return SnifferConfig{Shards: 2}
		}, "sharding requires the streaming pipeline"},
		{"proc without stream", func(*testing.T) SnifferConfig {
			return SnifferConfig{ShardMode: "proc"}
		}, "sharding requires the streaming pipeline"},
		{"proc with durability", func(*testing.T) SnifferConfig {
			return SnifferConfig{ShardMode: "proc", Stream: stream,
				Durability: DurabilityConfig{Dir: "x"}}
		}, "proc shard mode does not support durability"},
		{"durability without stream", func(*testing.T) SnifferConfig {
			return SnifferConfig{Durability: DurabilityConfig{Dir: "x"}}
		}, "durability requires the streaming pipeline"},
		{"record rotations without store", func(*testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream,
				Durability: DurabilityConfig{RecordRotations: true}}
		}, "RecordRotations requires a durable store"},
		{"sources without stream", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Sources: []IngestSource{tw(t)}}
		}, "explicit Sources require the streaming pipeline"},
		{"sources in proc mode", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream, ShardMode: "proc",
				Sources: []IngestSource{tw(t)}}
		}, "proc shard mode does not support explicit Sources"},
		{"sources with durability", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream,
				Durability: DurabilityConfig{Dir: "x"},
				Sources:    []IngestSource{tw(t)}}
		}, "explicit Sources do not support durability"},
		{"nil source entry", func(*testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream, Sources: []IngestSource{nil}}
		}, "nil entry in Sources"},
		{"replay must ride alone", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream,
				Sources: []IngestSource{replaySrc(t), tw(t)}}
		}, "replay source must be the sole source"},
		{"replay cannot shard", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream, Shards: 2,
				Sources: []IngestSource{replaySrc(t)}}
		}, "replay source cannot be sharded"},
		{"valid multi-source", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream,
				Sources: []IngestSource{tw(t), tw(t)}}
		}, ""},
		{"valid sharded sources", func(t *testing.T) SnifferConfig {
			return SnifferConfig{Stream: stream, Shards: 4,
				Sources: []IngestSource{tw(t)}}
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg(t).Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSourceMetricsLabels asserts the per-source ingest counters appear
// with one label per source in a muxed run.
func TestSourceMetricsLabels(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	reg := NewMetricsRegistry()
	sim := testSimulation(t)
	reddit, err := NewRedditSource(RedditSourceConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sniffer, err := NewSniffer(sim, goldenStream(func(cfg *SnifferConfig) {
		cfg.Sources = []IngestSource{NewTwitterSource(sim), reddit}
		cfg.Metrics = reg
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if err := sniffer.RunHours(2); err != nil {
		t.Fatal(err)
	}
	if _, err := sniffer.DetectAll(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`ph_source_posts_total{source="twitter"}`,
		`ph_source_posts_total{source="reddit"}`,
		`ph_source_captures_total{source="twitter"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %s", want)
		}
	}
}
