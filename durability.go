package pseudohoneypot

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

// StoreBackend is the pluggable storage interface behind the durable
// capture store: local disk in the daemons, an injected fault-filesystem
// double in the crash tests, blob storage in a future deployment.
type StoreBackend = store.Backend

// NewDirBackend opens (creating if needed) a local-disk store backend
// rooted at dir.
func NewDirBackend(dir string) (StoreBackend, error) { return store.NewDir(dir) }

// DurabilityConfig enables the durable capture store (DESIGN.md §14): a
// write-ahead log of every capture plus periodic checkpoints of the
// derived pipeline state (capture ring, label-store cluster indices,
// extractor behaviour state, group statistics, online-detector window).
// On restart the sniffer restores the latest checkpoint, replays the WAL
// tail through the same extraction/labeling code the stream runs, and
// skips already-durable tweets as the simulation re-runs — converging on
// the state an uninterrupted run would have reached.
//
// Durability requires the streaming pipeline (Stream.Enabled).
type DurabilityConfig struct {
	// Dir roots a local-disk store; empty (with a nil Backend) disables
	// durability.
	Dir string
	// Backend overrides Dir with a custom store backend. The
	// fault-injection tests inject their filesystem double here.
	Backend StoreBackend
	// SyncEvery groups WAL appends per fsync (group commit). 0 or 1
	// syncs every append — the strongest setting; larger values trade
	// the unsynced tail on crash for throughput.
	SyncEvery int
	// CheckpointEvery is the number of simulated hours between
	// checkpoints (default 1).
	CheckpointEvery int
	// RecordRotations additionally journals every node-set rotation's
	// per-group counts and, at Close, an epilogue of the final profiles
	// of every captured account — everything a ReplaySource needs to
	// re-feed the WAL through the full pipeline and reproduce the run's
	// detection result. A recording run retains its full WAL: compaction
	// pruning is suspended (store.Options.RetainAll), because a pruned
	// prefix would silently truncate the replay.
	RecordRotations bool
}

func (d DurabilityConfig) enabled() bool { return d.Dir != "" || d.Backend != nil }

// Checkpoint component keys.
const (
	ckCaptures  = "captures"
	ckLabels    = "labels"
	ckExtractor = "extractor"
	ckGroups    = "groups"
	ckOnline    = "online"
)

// durabilityMeta fingerprints the configuration axes that change what the
// WAL and checkpoints mean. The store refuses to open a directory written
// under a different fingerprint — replaying another configuration's log
// would silently diverge.
func durabilityMeta(cfg SnifferConfig) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%g|%t|%d|%#v",
		cfg.Seed, cfg.Classifier, cfg.ManualLabelErrorRate,
		cfg.NaiveSelection, cfg.CaptureCap, cfg.Specs)))
	return hex.EncodeToString(h[:])
}

// openDurable opens (or creates) the durable store and holds the recovery
// state for recoverDurable to apply once the pipeline exists.
func (s *Sniffer) openDurable() error {
	d := s.cfg.Durability
	b := d.Backend
	if b == nil {
		var err error
		if b, err = store.NewDir(d.Dir); err != nil {
			return err
		}
	}
	st, rec, err := store.Open(store.Options{
		Backend:   b,
		SyncEvery: d.SyncEvery,
		Meta:      durabilityMeta(s.cfg),
		Metrics:   s.cfg.Metrics,
		Tracer:    s.cfg.Tracer,
		RetainAll: d.RecordRotations,
	})
	if err != nil {
		return fmt.Errorf("pseudohoneypot: open durable store: %w", err)
	}
	s.store, s.recovery = st, rec
	s.ckptEvery = d.CheckpointEvery
	if s.ckptEvery <= 0 {
		s.ckptEvery = 1
	}
	return nil
}

// recoverDurable applies the recovered checkpoint and replays the WAL tail
// through the same code path the streaming stages run: AdoptCapture
// repeats Match's bookkeeping, ExtractCapture rebuilds the vector (and the
// extractor state), the label store re-indexes, and the online detector
// re-observes. The watermark then tells the subscribe callback which
// tweets of the re-run simulation are already accounted for.
func (s *Sniffer) recoverDurable() error {
	rec := s.recovery
	world := s.sim.world
	// Accounts spawned mid-run (campaign churn) do not exist yet in the
	// re-seeded world while recovery runs — they reappear only as the
	// simulation re-runs. Any user bound to a frozen fallback here is
	// therefore rebound to the live account at Snapshot time, when it
	// exists again and carries the re-run's mutations (suspensions).
	s.labelStore.SetResolver(world.Account)
	if ck := rec.Checkpoint; ck != nil {
		if b, ok := ck.Components[ckCaptures]; ok {
			if err := s.monitor.Store().ReadSnapshot(bytes.NewReader(b)); err != nil {
				return fmt.Errorf("pseudohoneypot: restore captures: %w", err)
			}
		}
		if b, ok := ck.Components[ckLabels]; ok {
			if err := s.labelStore.ReadSnapshot(bytes.NewReader(b), world.Account); err != nil {
				return fmt.Errorf("pseudohoneypot: restore label store: %w", err)
			}
		}
		if b, ok := ck.Components[ckExtractor]; ok {
			if err := s.monitor.Extractor().ReadSnapshot(bytes.NewReader(b)); err != nil {
				return fmt.Errorf("pseudohoneypot: restore extractor: %w", err)
			}
		}
		if b, ok := ck.Components[ckGroups]; ok {
			var gs []core.GroupStatsSnapshot
			if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&gs); err != nil {
				return fmt.Errorf("pseudohoneypot: restore group stats: %w", err)
			}
			if err := s.monitor.RestoreGroupStats(gs); err != nil {
				return err
			}
		}
		if b, ok := ck.Components[ckOnline]; ok && s.cfg.Online != nil {
			if err := s.cfg.Online.ReadSnapshot(bytes.NewReader(b)); err != nil {
				return fmt.Errorf("pseudohoneypot: restore online detector: %w", err)
			}
		}
		s.watermark = socialnet.TweetID(ck.TweetWatermark)
	}
	var lastSeq uint64
	for _, r := range rec.Records {
		t := &r.Tweet
		if r.Seq <= lastSeq && lastSeq > 0 {
			// walAppend retries a failed append into a fresh segment; when
			// the "failed" frame nevertheless persisted (write landed, only
			// the fsync errored) both copies decode — carrying the same
			// sequence, because a failed append never advances it. Replay
			// the first copy only. The key must be the sequence, not the
			// tweet ID: one tweet mentioning nodes in different monitor
			// groups legitimately yields several capture records.
			continue
		}
		lastSeq = r.Seq
		c, err := s.monitor.AdoptCapture(t, r.Sender, r.Receiver, r.Groups, world.Account)
		if err != nil {
			return fmt.Errorf("pseudohoneypot: replay capture %d: %w", t.ID, err)
		}
		s.monitor.ExtractCapture(c)
		s.monitor.Store().Append(c)
		author := c.Sender
		if author == nil {
			// The sender was spawned after the simulation started, so the
			// hour-zero world cannot resolve it yet. Index the frozen
			// profile in its place — first-appearance order is what the
			// cluster indices depend on — and let the Snapshot-time
			// resolver rebind the id once the re-run recreates the account.
			author = c.SenderSnapshot()
		}
		provisional := s.labelStore.Add(t, author, c.SenderSnapshot())
		if s.cfg.Online != nil {
			_ = s.cfg.Online.Observe(c, provisional)
		}
		if t.ID > s.watermark {
			s.watermark = t.ID
		}
	}
	s.lastCaptured = s.watermark
	return nil
}

// walAppend logs one freshly extracted capture. The WAL persists the
// frozen profile snapshots, not the live accounts: replay re-extracts
// against exactly the values the original extraction read.
//
// A failed append is retried once: the failure latches the broken
// segment, so the retry rotates to a fresh one. Without the retry a
// mid-run write fault would tear this record while later appends
// succeed — a hole in the replayable history that the recovery
// watermark would silently skip. If the retry also fails the backend is
// truly down; the store's append_errors counter records it, and the
// capture becomes durable again at the next full-state checkpoint.
func (s *Sniffer) walAppend(c *core.Capture) {
	rec := store.CaptureRecord{
		Tweet:    *c.Tweet,
		Sender:   c.SenderSnapshot(),
		Receiver: c.ReceiverSnapshot(),
		Groups:   c.Groups,
		Src:      c.Source,
	}
	if err := s.store.AppendCapture(&rec); err != nil {
		_ = s.store.AppendCapture(&rec)
	}
	if s.cfg.Durability.RecordRotations {
		s.trackProfile(c.Tweet.AuthorID)
		if r := c.ReceiverSnapshot(); r != nil {
			s.trackProfile(r.ID)
		}
	}
}

// checkpointDurable runs at an hour boundary on the engine goroutine: the
// engine (sole producer) is idle, so draining the stage graph reaches full
// quiescence and every component can be snapshotted consistently. A failed
// checkpoint is not fatal — the WAL still covers everything since the last
// good one, and the store's checkpoint_errors counter records the miss.
func (s *Sniffer) checkpointDurable() error {
	s.drainPipeline()
	ck := &store.Checkpoint{
		TweetWatermark: int64(s.lastCaptured),
		Components:     make(map[string][]byte, 5),
	}
	var buf bytes.Buffer
	snap := func(key string, write func(*bytes.Buffer) error) error {
		buf.Reset()
		if err := write(&buf); err != nil {
			return err
		}
		ck.Components[key] = append([]byte(nil), buf.Bytes()...)
		return nil
	}
	err := errors.Join(
		snap(ckCaptures, func(b *bytes.Buffer) error { return s.monitor.Store().WriteSnapshot(b) }),
		snap(ckLabels, func(b *bytes.Buffer) error { return s.labelStore.WriteSnapshot(b) }),
		snap(ckExtractor, func(b *bytes.Buffer) error { return s.monitor.Extractor().WriteSnapshot(b) }),
		snap(ckGroups, func(b *bytes.Buffer) error {
			return gob.NewEncoder(b).Encode(s.monitor.SnapshotGroupStats())
		}),
	)
	if err == nil && s.cfg.Online != nil {
		err = snap(ckOnline, func(b *bytes.Buffer) error { return s.cfg.Online.WriteSnapshot(b) })
	}
	if err != nil {
		return fmt.Errorf("pseudohoneypot: checkpoint snapshot: %w", err)
	}
	return s.store.WriteCheckpoint(ck)
}

// DurableStore exposes the WAL/checkpoint store (nil when durability is
// disabled) for sequence inspection and explicit syncs.
func (s *Sniffer) DurableStore() *store.Store { return s.store }

// Recovery reports what recovery found at startup: the checkpoint used,
// how many WAL records were replayed, torn tails tolerated, and checkpoint
// fallbacks taken. Nil when durability is disabled.
func (s *Sniffer) Recovery() *store.Recovery { return s.recovery }
