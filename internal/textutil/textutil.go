// Package textutil implements the text-processing primitives the
// pseudo-honeypot labeling pipeline relies on: tokenization, stop-word
// removal, URL/emoji stripping, tri-gram shingling for MinHash, and the
// Σ-Seq character-class sequences used to cluster campaign screen names
// (paper §IV-B).
package textutil

import (
	"strings"
	"unicode"
)

// stop words removed before shingling user descriptions. The list mirrors a
// compact English stop-word set; the clustering result only needs it to be
// stable, not exhaustive.
var _stopWords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"by": {}, "for": {}, "from": {}, "has": {}, "he": {}, "in": {}, "is": {},
	"it": {}, "its": {}, "of": {}, "on": {}, "or": {}, "she": {}, "that": {},
	"the": {}, "to": {}, "was": {}, "we": {}, "were": {}, "will": {},
	"with": {}, "you": {}, "your": {}, "i": {}, "my": {}, "me": {}, "our": {},
	"this": {}, "they": {}, "them": {}, "but": {}, "not": {}, "so": {},
}

// Tokenize lower-cases s and splits it into alphanumeric word tokens.
// Everything that is not a letter or digit separates tokens.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			continue
		}
		flush()
	}
	flush()
	return tokens
}

// RemoveStopWords filters common English stop words from tokens.
func RemoveStopWords(tokens []string) []string {
	var out []string
	for _, tok := range tokens {
		if _, stop := _stopWords[tok]; stop {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// StripURLs removes http(s) URLs from s. Used when normalizing user
// descriptions and tweet contents before clustering.
func StripURLs(s string) string {
	var b strings.Builder
	fields := strings.Fields(s)
	for _, f := range fields {
		if strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://") ||
			strings.HasPrefix(f, "www.") {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f)
	}
	return b.String()
}

// CountEmoji returns the number of emoji-range runes in s. The check covers
// the main emoji blocks (emoticons, pictographs, transport, supplemental
// symbols) — enough to make the description/content emoji-count features
// discriminative.
func CountEmoji(s string) int {
	n := 0
	for _, r := range s {
		if isEmoji(r) {
			n++
		}
	}
	return n
}

// StripEmoji removes emoji-range runes from s.
func StripEmoji(s string) string {
	var b strings.Builder
	for _, r := range s {
		if isEmoji(r) {
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func isEmoji(r rune) bool {
	switch {
	case r >= 0x1F600 && r <= 0x1F64F: // emoticons
		return true
	case r >= 0x1F300 && r <= 0x1F5FF: // misc symbols and pictographs
		return true
	case r >= 0x1F680 && r <= 0x1F6FF: // transport
		return true
	case r >= 0x1F900 && r <= 0x1F9FF: // supplemental symbols
		return true
	case r >= 0x2600 && r <= 0x27BF: // misc symbols, dingbats
		return true
	}
	return false
}

// CountDigits returns the number of decimal-digit runes in s.
func CountDigits(s string) int {
	n := 0
	for _, r := range s {
		if unicode.IsDigit(r) {
			n++
		}
	}
	return n
}

// NormalizeDescription applies the paper's description preprocessing:
// remove URLs, emoji, stop words, and special characters, returning the
// cleaned token sequence joined by single spaces.
func NormalizeDescription(s string) string {
	s = StripURLs(s)
	s = StripEmoji(s)
	tokens := RemoveStopWords(Tokenize(s))
	return strings.Join(tokens, " ")
}

// Shingles returns the n-gram character shingles of s. The paper's MinHash
// step uses tri-gram shingling (n = 3). Strings shorter than n yield a
// single shingle containing the whole string, so short descriptions still
// compare equal only to identical short descriptions.
func Shingles(s string, n int) []string {
	if n <= 0 {
		n = 3
	}
	runes := []rune(s)
	if len(runes) == 0 {
		return nil
	}
	if len(runes) <= n {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// ClassSeq maps a screen name onto the paper's Σ-Seq representation using
// the character classes Σ = {p{Lu}, p{Ll}, p{N}, p{P}}: runs of uppercase,
// lowercase, numeric, and punctuation characters. Each maximal run is
// emitted as one class symbol, so "John_Doe99" → "Ulp.Ul.N" style sequences
// collapse naming-template variants into identical keys.
//
// The output alphabet is: 'U' uppercase run, 'l' lowercase run, 'N' numeric
// run, 'P' punctuation/symbol run, '?' anything else.
func ClassSeq(name string) string {
	var b strings.Builder
	var prev byte
	for _, r := range name {
		c := classOf(r)
		if c == prev {
			continue
		}
		b.WriteByte(c)
		prev = c
	}
	return b.String()
}

// ClassSeqWithRunLengths is like ClassSeq but keeps bucketed run lengths
// (1, 2–3, 4+ encoded as the digits 1, 2, 3), which tightens groups enough
// to keep the false-positive rate low without splitting template variants.
func ClassSeqWithRunLengths(name string) string {
	var b strings.Builder
	var prev byte
	runLen := 0
	flush := func() {
		if prev == 0 {
			return
		}
		b.WriteByte(prev)
		switch {
		case runLen <= 1:
			b.WriteByte('1')
		case runLen <= 3:
			b.WriteByte('2')
		default:
			b.WriteByte('3')
		}
	}
	for _, r := range name {
		c := classOf(r)
		if c == prev {
			runLen++
			continue
		}
		flush()
		prev = c
		runLen = 1
	}
	flush()
	return b.String()
}

func classOf(r rune) byte {
	switch {
	case unicode.IsUpper(r):
		return 'U'
	case unicode.IsLower(r):
		return 'l'
	case unicode.IsDigit(r):
		return 'N'
	case unicode.IsPunct(r) || unicode.IsSymbol(r):
		return 'P'
	default:
		return '?'
	}
}

// Jaccard computes the Jaccard similarity of two shingle sets.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]struct{}, len(a))
	for _, s := range a {
		setA[s] = struct{}{}
	}
	setB := make(map[string]struct{}, len(b))
	for _, s := range b {
		setB[s] = struct{}{}
	}
	inter := 0
	for s := range setA {
		if _, ok := setB[s]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
