package textutil

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		give string
		want []string
	}{
		{give: "Hello, World!", want: []string{"hello", "world"}},
		{give: "", want: nil},
		{give: "  multiple   spaces  ", want: []string{"multiple", "spaces"}},
		{give: "CamelCase99x", want: []string{"camelcase99x"}},
		{give: "a-b_c", want: []string{"a", "b", "c"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.give)
		if len(got) != len(tt.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", tt.give, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", tt.give, got, tt.want)
			}
		}
	}
}

func TestRemoveStopWords(t *testing.T) {
	got := RemoveStopWords([]string{"the", "quick", "fox", "is", "here"})
	want := []string{"quick", "fox", "here"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("RemoveStopWords = %v, want %v", got, want)
	}
}

func TestStripURLs(t *testing.T) {
	tests := []struct {
		give, want string
	}{
		{give: "buy now https://spam.example/x cheap", want: "buy now cheap"},
		{give: "http://a.b", want: ""},
		{give: "no urls here", want: "no urls here"},
		{give: "see www.example.com today", want: "see today"},
	}
	for _, tt := range tests {
		if got := StripURLs(tt.give); got != tt.want {
			t.Fatalf("StripURLs(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestCountEmoji(t *testing.T) {
	if got := CountEmoji("hi \U0001F600\U0001F680 there ❤"); got != 3 {
		t.Fatalf("CountEmoji = %d, want 3", got)
	}
	if got := CountEmoji("plain text"); got != 0 {
		t.Fatalf("CountEmoji(plain) = %d, want 0", got)
	}
}

func TestStripEmojiRemovesAllEmoji(t *testing.T) {
	s := "win \U0001F4B0 money \U0001F911 now"
	if got := CountEmoji(StripEmoji(s)); got != 0 {
		t.Fatalf("emoji remain after StripEmoji: %d", got)
	}
}

func TestCountDigits(t *testing.T) {
	if got := CountDigits("abc123x7"); got != 4 {
		t.Fatalf("CountDigits = %d, want 4", got)
	}
}

func TestNormalizeDescription(t *testing.T) {
	give := "The BEST deals!!! https://t.co/abc \U0001F911 for you"
	want := "best deals"
	if got := NormalizeDescription(give); got != want {
		t.Fatalf("NormalizeDescription = %q, want %q", got, want)
	}
}

func TestShingles(t *testing.T) {
	got := Shingles("abcd", 3)
	want := []string{"abc", "bcd"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Shingles = %v, want %v", got, want)
	}
}

func TestShinglesShortString(t *testing.T) {
	got := Shingles("ab", 3)
	if len(got) != 1 || got[0] != "ab" {
		t.Fatalf("Shingles(short) = %v, want [ab]", got)
	}
	if got := Shingles("", 3); got != nil {
		t.Fatalf("Shingles(empty) = %v, want nil", got)
	}
}

func TestShinglesDefaultN(t *testing.T) {
	if got := Shingles("abcd", 0); len(got) != 2 {
		t.Fatalf("Shingles with n=0 should default to tri-grams, got %v", got)
	}
}

func TestClassSeqCollapsesTemplates(t *testing.T) {
	// A campaign naming template: capitalized word + underscore + word +
	// digits. All instances must map to the same sequence.
	names := []string{"John_doe99", "Mary_lou12", "Riko_abc77"}
	first := ClassSeq(names[0])
	for _, n := range names[1:] {
		if got := ClassSeq(n); got != first {
			t.Fatalf("ClassSeq(%q) = %q, want %q", n, got, first)
		}
	}
}

func TestClassSeqDistinguishesShapes(t *testing.T) {
	if ClassSeq("alllower") == ClassSeq("ALLUPPER") {
		t.Fatal("ClassSeq conflated lowercase and uppercase shapes")
	}
	if ClassSeq("abc123") == ClassSeq("123abc") {
		t.Fatal("ClassSeq conflated different run orders")
	}
}

func TestClassSeqWithRunLengthsBuckets(t *testing.T) {
	// Run lengths 4+ bucket together, so these two must match.
	if ClassSeqWithRunLengths("abcde12") != ClassSeqWithRunLengths("abcdefgh34") {
		t.Fatal("bucketed run lengths should match for 4+ runs")
	}
	// Length-1 vs length-4 runs must not match.
	if ClassSeqWithRunLengths("a1") == ClassSeqWithRunLengths("abcd1") {
		t.Fatal("bucketed run lengths conflated 1-run with 4-run")
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		a, b []string
		want float64
	}{
		{a: []string{"x", "y"}, b: []string{"x", "y"}, want: 1},
		{a: []string{"x"}, b: []string{"y"}, want: 0},
		{a: []string{"x", "y"}, b: []string{"y", "z"}, want: 1.0 / 3.0},
		{a: nil, b: nil, want: 1},
		{a: []string{"x"}, b: nil, want: 0},
	}
	for _, tt := range tests {
		if got := Jaccard(tt.a, tt.b); got != tt.want {
			t.Fatalf("Jaccard(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: tokenization output contains only lowercase letters and digits.
func TestTokenizeAlnumProperty(t *testing.T) {
	prop := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Lower-cased output: any remaining uppercase rune must
				// be one with no lowercase mapping (e.g. math letters).
				if unicode.ToLower(r) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shingle count is max(1, len-n+1) for non-empty strings.
func TestShinglesCountProperty(t *testing.T) {
	prop := func(s string) bool {
		const n = 3
		runes := []rune(s)
		got := len(Shingles(s, n))
		if len(runes) == 0 {
			return got == 0
		}
		want := len(runes) - n + 1
		if want < 1 {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard is symmetric and within [0, 1].
func TestJaccardSymmetryProperty(t *testing.T) {
	prop := func(a, b []string) bool {
		x := Jaccard(a, b)
		y := Jaccard(b, a)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClassSeq is deterministic and never longer than its input rune
// count (it only collapses runs).
func TestClassSeqLengthProperty(t *testing.T) {
	prop := func(s string) bool {
		seq := ClassSeq(s)
		if seq != ClassSeq(s) {
			return false
		}
		return len([]rune(seq)) <= len([]rune(s))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
