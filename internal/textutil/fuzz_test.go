package textutil

import "testing"

func FuzzTokenize(f *testing.F) {
	f.Add("hello world")
	f.Add("@user check https://x.example/y #tag 123 \U0001F600")
	f.Add("ünïcödé 漢字 \x00\xff")
	f.Fuzz(func(t *testing.T, s string) {
		tokens := Tokenize(s)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
		}
		// Derived operations must not panic and must stay consistent.
		_ = RemoveStopWords(tokens)
		_ = NormalizeDescription(s)
		_ = StripURLs(s)
		_ = StripEmoji(s)
		if CountEmoji(StripEmoji(s)) != 0 {
			t.Fatal("emoji survive StripEmoji")
		}
	})
}

func FuzzClassSeq(f *testing.F) {
	f.Add("John_doe99")
	f.Add("")
	f.Add("漢字_ABC-123")
	f.Fuzz(func(t *testing.T, s string) {
		seq := ClassSeq(s)
		if len([]rune(seq)) > len([]rune(s)) {
			t.Fatalf("ClassSeq(%q) longer than input", s)
		}
		bucketed := ClassSeqWithRunLengths(s)
		if (seq == "") != (bucketed == "") {
			t.Fatalf("plain and bucketed sequences disagree on emptiness for %q", s)
		}
	})
}

func FuzzShingles(f *testing.F) {
	f.Add("abcdef", 3)
	f.Add("", 0)
	f.Add("ab", 5)
	f.Fuzz(func(t *testing.T, s string, n int) {
		if n > 1000 || n < -1000 {
			return
		}
		sh := Shingles(s, n)
		if len(s) > 0 && len(sh) == 0 {
			t.Fatalf("non-empty string %q produced no shingles", s)
		}
	})
}
