// Package minhash implements MinHash signatures over shingle sets, used by
// the labeling pipeline to find near-duplicate user descriptions
// (paper §IV-B). Two descriptions are considered identical when the minimum
// hash values of their tri-gram shinglings agree, and an LSH banding index
// provides scalable candidate-pair generation for larger corpora.
package minhash

import (
	"hash/fnv"
	"math"
	"math/bits"
	"math/rand"
)

// Signature is a fixed-length vector of minimum hash values.
type Signature []uint64

// Scheme holds the per-permutation hash parameters for computing
// signatures. All signatures compared against each other must come from the
// same Scheme.
type Scheme struct {
	a, b []uint64
}

const _mersenne61 = (1 << 61) - 1

// NewScheme creates a Scheme with n hash permutations drawn from rng.
// n must be positive; values below 1 are raised to 1.
func NewScheme(n int, rng *rand.Rand) *Scheme {
	if n < 1 {
		n = 1
	}
	s := &Scheme{
		a: make([]uint64, n),
		b: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		// a must be non-zero for the permutation family to be valid.
		s.a[i] = rng.Uint64()%(_mersenne61-1) + 1
		s.b[i] = rng.Uint64() % _mersenne61
	}
	return s
}

// Size returns the signature length produced by the scheme.
func (s *Scheme) Size() int { return len(s.a) }

// Sign computes the MinHash signature of the shingle set. An empty set
// yields a signature of all math.MaxUint64, which matches only other empty
// sets.
func (s *Scheme) Sign(shingles []string) Signature {
	sig := make(Signature, len(s.a))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, sh := range shingles {
		h := baseHash(sh)
		for i := range s.a {
			v := permute(h, s.a[i], s.b[i])
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// baseHash maps a shingle to a 64-bit integer via FNV-1a.
func baseHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// permute applies the universal hash (a*x + b) mod p with p = 2^61 - 1.
func permute(x, a, b uint64) uint64 {
	// Split multiplication to stay within uint64 without overflowing the
	// modulus arithmetic: reduce x first.
	x %= _mersenne61
	hi, lo := bits.Mul64(a, x)
	// Fold the 128-bit product modulo 2^61-1: (hi*2^64 + lo) mod p, using
	// 2^64 ≡ 8 (mod 2^61 - 1).
	r := (hi%_mersenne61)*8%_mersenne61 + lo%_mersenne61
	r %= _mersenne61
	r = (r + b) % _mersenne61
	return r
}

// Similarity estimates the Jaccard similarity of the sets behind two
// signatures as the fraction of agreeing components. Signatures of unequal
// length have similarity 0.
func Similarity(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}

// Index is an LSH banding index over signatures. Signatures whose bands
// collide become candidate near-duplicates; the caller confirms candidates
// with Similarity or exact comparison.
type Index struct {
	bands   int
	rows    int
	buckets []map[string][]int
	sigs    []Signature
}

// NewIndex creates an index for signatures of length bands*rows.
func NewIndex(bands, rows int) *Index {
	if bands < 1 {
		bands = 1
	}
	if rows < 1 {
		rows = 1
	}
	buckets := make([]map[string][]int, bands)
	for i := range buckets {
		buckets[i] = make(map[string][]int)
	}
	return &Index{bands: bands, rows: rows, buckets: buckets}
}

// Add inserts sig and returns its id within the index.
func (ix *Index) Add(sig Signature) int {
	id := len(ix.sigs)
	ix.sigs = append(ix.sigs, sig)
	for b := 0; b < ix.bands; b++ {
		key := ix.bandKey(sig, b)
		ix.buckets[b][key] = append(ix.buckets[b][key], id)
	}
	return id
}

// Candidates returns the ids of previously added signatures sharing at
// least one band with sig, excluding ids ≥ limit (pass len after Add to
// include everything). Each id appears once.
func (ix *Index) Candidates(sig Signature) []int {
	seen := make(map[int]struct{})
	var out []int
	for b := 0; b < ix.bands; b++ {
		key := ix.bandKey(sig, b)
		for _, id := range ix.buckets[b][key] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Signature returns the stored signature for id.
func (ix *Index) Signature(id int) Signature {
	if id < 0 || id >= len(ix.sigs) {
		return nil
	}
	return ix.sigs[id]
}

// Len returns the number of signatures stored.
func (ix *Index) Len() int { return len(ix.sigs) }

func (ix *Index) bandKey(sig Signature, band int) string {
	start := band * ix.rows
	end := start + ix.rows
	if start >= len(sig) {
		return ""
	}
	if end > len(sig) {
		end = len(sig)
	}
	// Encode the band values compactly; collisions across different
	// value sequences are negligible for 8-byte encodings.
	buf := make([]byte, 0, (end-start)*8)
	for _, v := range sig[start:end] {
		for shift := 0; shift < 64; shift += 8 {
			buf = append(buf, byte(v>>uint(shift)))
		}
	}
	return string(buf)
}
