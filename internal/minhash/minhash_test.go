package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
)

func newScheme(t *testing.T, n int) *Scheme {
	t.Helper()
	return NewScheme(n, rand.New(rand.NewSource(1)))
}

func TestSignDeterministic(t *testing.T) {
	s := newScheme(t, 64)
	sh := textutil.Shingles("the quick brown fox", 3)
	a, b := s.Sign(sh), s.Sign(sh)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sign is not deterministic")
		}
	}
}

func TestIdenticalSetsHaveSimilarityOne(t *testing.T) {
	s := newScheme(t, 64)
	sh := textutil.Shingles("follow me for free bitcoin", 3)
	if got := Similarity(s.Sign(sh), s.Sign(sh)); got != 1 {
		t.Fatalf("Similarity of identical sets = %v, want 1", got)
	}
}

func TestDisjointSetsHaveLowSimilarity(t *testing.T) {
	s := newScheme(t, 128)
	a := s.Sign(textutil.Shingles("abcdefghijklmnop", 3))
	b := s.Sign(textutil.Shingles("0123456789012345", 3))
	if got := Similarity(a, b); got > 0.2 {
		t.Fatalf("Similarity of disjoint sets = %v, want near 0", got)
	}
}

func TestSimilarityEstimatesJaccard(t *testing.T) {
	// Two strings sharing roughly half their shingles should have
	// MinHash similarity near their true Jaccard similarity.
	s := newScheme(t, 256)
	x := "spam campaign text template number one"
	y := "spam campaign text template number two"
	shX := textutil.Shingles(x, 3)
	shY := textutil.Shingles(y, 3)
	trueJ := textutil.Jaccard(shX, shY)
	est := Similarity(s.Sign(shX), s.Sign(shY))
	if math.Abs(est-trueJ) > 0.12 {
		t.Fatalf("estimate %v too far from true Jaccard %v", est, trueJ)
	}
}

func TestEmptySetsMatchOnlyEmptySets(t *testing.T) {
	s := newScheme(t, 32)
	empty := s.Sign(nil)
	other := s.Sign(textutil.Shingles("hello world", 3))
	if got := Similarity(empty, s.Sign(nil)); got != 1 {
		t.Fatalf("empty vs empty similarity = %v, want 1", got)
	}
	if got := Similarity(empty, other); got != 0 {
		t.Fatalf("empty vs non-empty similarity = %v, want 0", got)
	}
}

func TestSimilarityLengthMismatch(t *testing.T) {
	if got := Similarity(Signature{1, 2}, Signature{1}); got != 0 {
		t.Fatalf("length mismatch similarity = %v, want 0", got)
	}
	if got := Similarity(nil, nil); got != 0 {
		t.Fatalf("nil signatures similarity = %v, want 0", got)
	}
}

func TestNewSchemeClampsSize(t *testing.T) {
	s := NewScheme(0, rand.New(rand.NewSource(1)))
	if s.Size() != 1 {
		t.Fatalf("Size = %d, want clamped to 1", s.Size())
	}
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	const (
		bands = 16
		rows  = 4
	)
	s := newScheme(t, bands*rows)
	ix := NewIndex(bands, rows)

	base := "limited offer click here to win a free iphone today"
	variants := []string{
		base,
		"limited offer click here to win a free iphone now!!",
		"limited offer click right here to win a free iphone today",
	}
	ids := make([]int, len(variants))
	for i, v := range variants {
		ids[i] = ix.Add(s.Sign(textutil.Shingles(textutil.NormalizeDescription(v), 3)))
	}
	unrelated := ix.Add(s.Sign(textutil.Shingles("completely different biography text", 3)))

	cands := ix.Candidates(ix.Signature(ids[0]))
	found := make(map[int]bool)
	for _, c := range cands {
		found[c] = true
	}
	if !found[ids[1]] || !found[ids[2]] {
		t.Fatalf("near-duplicates not in candidates: %v", cands)
	}
	if found[unrelated] {
		t.Fatal("unrelated description appeared as candidate")
	}
}

func TestIndexSignatureOutOfRange(t *testing.T) {
	ix := NewIndex(2, 2)
	if got := ix.Signature(-1); got != nil {
		t.Fatal("Signature(-1) should be nil")
	}
	if got := ix.Signature(0); got != nil {
		t.Fatal("Signature past end should be nil")
	}
}

func TestIndexLen(t *testing.T) {
	s := newScheme(t, 8)
	ix := NewIndex(2, 4)
	if ix.Len() != 0 {
		t.Fatal("new index should be empty")
	}
	ix.Add(s.Sign(textutil.Shingles("abc", 3)))
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
}

func TestIndexClampsBandsRows(t *testing.T) {
	ix := NewIndex(0, 0)
	if ix.bands != 1 || ix.rows != 1 {
		t.Fatalf("bands/rows = %d/%d, want clamped to 1/1", ix.bands, ix.rows)
	}
}

// Property: similarity is symmetric and bounded in [0, 1].
func TestSimilarityBoundsProperty(t *testing.T) {
	s := NewScheme(32, rand.New(rand.NewSource(2)))
	prop := func(x, y string) bool {
		a := s.Sign(textutil.Shingles(x, 3))
		b := s.Sign(textutil.Shingles(y, 3))
		sim := Similarity(a, b)
		return sim == Similarity(b, a) && sim >= 0 && sim <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a superset's signature components are ≤ the subset's (adding
// shingles can only lower minima).
func TestSignMonotoneProperty(t *testing.T) {
	s := NewScheme(32, rand.New(rand.NewSource(3)))
	prop := func(x, extra string) bool {
		base := textutil.Shingles(x, 3)
		super := append(append([]string{}, base...), textutil.Shingles(extra, 3)...)
		a, b := s.Sign(base), s.Sign(super)
		for i := range a {
			if b[i] > a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSign(b *testing.B) {
	s := NewScheme(64, rand.New(rand.NewSource(1)))
	sh := textutil.Shingles("a moderately long user description used for benchmarking minhash", 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sign(sh)
	}
}
