// Package remote runs the pseudo-honeypot monitor against a twitterd-style
// API server instead of an in-process world: node screening through the
// REST search endpoint, mention tracking through statuses/filter, and
// profile resolution through users/lookup — the same deployment shape as
// the paper's Tweepy implementation (§V-A).
package remote

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// Sniffer drives a core.Monitor over the wire.
type Sniffer struct {
	client  *twitterapi.Client
	monitor *core.Monitor

	mu       sync.Mutex
	profiles map[socialnet.AccountID]*socialnet.Account
}

// NewSniffer creates a remote sniffer with the given monitoring plan.
func NewSniffer(client *twitterapi.Client, cfg core.MonitorConfig) (*Sniffer, error) {
	if client == nil {
		return nil, errors.New("remote: nil client")
	}
	return &Sniffer{
		client: client,
		monitor: core.NewMonitor(cfg, &twitterapi.RemoteScreener{
			Client: client,
		}),
		profiles: make(map[socialnet.AccountID]*socialnet.Account),
	}, nil
}

// Monitor exposes the underlying monitor (captures, groups, PGE inputs).
func (s *Sniffer) Monitor() *core.Monitor { return s.monitor }

// MonitorSimHours runs n monitored hours against a simulation-controlled
// server: each hour the node set rotates, a fresh mention-tracking stream
// attaches, and one simulated hour is advanced through /sim/advance.
func (s *Sniffer) MonitorSimHours(ctx context.Context, n int) error {
	for h := 0; h < n; h++ {
		if err := s.monitorOneHour(ctx, h); err != nil {
			return fmt.Errorf("hour %d: %w", h, err)
		}
	}
	return nil
}

func (s *Sniffer) monitorOneHour(ctx context.Context, hour int) error {
	s.monitor.Rotate(time.Now(), time.Hour)
	track, err := s.trackList(ctx)
	if err != nil {
		return err
	}
	if len(track) == 0 {
		return errors.New("remote: rotation selected no nodes")
	}

	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	var wg sync.WaitGroup
	var streamErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := s.client.Stream(streamCtx, twitterapi.StreamFilter{Track: track},
			s.onWireTweet)
		if err != nil && !errors.Is(err, context.Canceled) {
			streamErr = err
		}
	}()

	// Give the stream a moment to attach, then advance one simulated hour.
	time.Sleep(50 * time.Millisecond)
	if _, err := s.client.Advance(ctx, 1); err != nil {
		stopStream()
		wg.Wait()
		return err
	}
	// Let the buffered stream drain before rotating away.
	time.Sleep(200 * time.Millisecond)
	stopStream()
	wg.Wait()
	return streamErr
}

// trackList resolves the current nodes to @screen_name filters.
func (s *Sniffer) trackList(ctx context.Context) ([]string, error) {
	nodes := s.monitor.CurrentNodes()
	ids := make([]int64, 0, len(nodes))
	for id := range nodes {
		s.mu.Lock()
		cached := s.profiles[id]
		s.mu.Unlock()
		if cached != nil && cached.ScreenName != "" {
			continue
		}
		ids = append(ids, int64(id))
	}
	if len(ids) > 0 {
		users, err := s.client.UsersLookup(ctx, ids)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		for i := range users {
			if a := twitterapi.DecodeUser(&users[i]); a != nil {
				s.profiles[a.ID] = a
			}
		}
		s.mu.Unlock()
	}
	var track []string
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range nodes {
		if a := s.profiles[id]; a != nil && a.ScreenName != "" {
			track = append(track, "@"+a.ScreenName)
		}
	}
	return track, nil
}

// onWireTweet decodes a streamed tweet and feeds the monitor.
func (s *Sniffer) onWireTweet(wt twitterapi.Tweet) {
	t, sender := twitterapi.DecodeTweet(&wt)
	if t == nil {
		return
	}
	s.mu.Lock()
	if sender != nil {
		s.profiles[sender.ID] = sender
	}
	s.mu.Unlock()
	s.monitor.OnTweet(t, s.lookup)
}

// lookup resolves a profile from the stream/screening cache, falling back
// to one REST lookup per unknown account.
func (s *Sniffer) lookup(id socialnet.AccountID) *socialnet.Account {
	s.mu.Lock()
	if a, ok := s.profiles[id]; ok {
		s.mu.Unlock()
		return a
	}
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	u, err := s.client.UserByID(ctx, int64(id))
	if err != nil {
		return nil
	}
	a := twitterapi.DecodeUser(u)
	s.mu.Lock()
	s.profiles[a.ID] = a
	s.mu.Unlock()
	return a
}

// Summary reports what the remote run collected.
func (s *Sniffer) Summary() string {
	captures := s.monitor.Captures()
	senders := make(map[socialnet.AccountID]struct{}, len(captures))
	for _, c := range captures {
		senders[c.Tweet.AuthorID] = struct{}{}
	}
	return "captured " + strconv.Itoa(len(captures)) + " tweets from " +
		strconv.Itoa(len(senders)) + " accounts over " +
		strconv.Itoa(s.monitor.Rotations()) + " rotations"
}
