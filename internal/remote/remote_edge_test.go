package remote

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// healthyUpstream starts a twitterd-style test server over a fresh small
// world and returns its base URL.
func healthyUpstream(t *testing.T) *url.URL {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(twitterapi.NewServer(socialnet.NewEngine(w)))
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// faultClient fronts a healthy twitterd test server with a proxy that
// answers any path containing failPath with failCode and forwards
// everything else, so one endpoint at a time can be broken.
func faultClient(t *testing.T, failPath string, failCode int) *twitterapi.Client {
	t.Helper()
	upstream := healthyUpstream(t)
	proxy := httputil.NewSingleHostReverseProxy(upstream)
	proxy.FlushInterval = -1 // pass streaming responses through unbuffered
	faulty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, failPath) {
			// A wire-shaped APIError body, so client-error statuses are
			// recognized as non-retryable rather than generic failures.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(failCode)
			fmt.Fprintf(w, `{"code":%d,"message":"injected fault"}`, failCode)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(faulty.Close)
	return twitterapi.NewClient(faulty.URL, faulty.Client())
}

func faultSniffer(t *testing.T, failPath string, failCode int) *Sniffer {
	t.Helper()
	sniffer, err := NewSniffer(faultClient(t, failPath, failCode), core.MonitorConfig{
		Specs: core.RandomSpec(50),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sniffer
}

// TestRemoteSnifferNoNodes breaks the screening endpoint: rotation then
// selects nothing and the first monitored hour must fail loudly rather
// than stream with an empty track list.
func TestRemoteSnifferNoNodes(t *testing.T) {
	sniffer := faultSniffer(t, "/users/search.json", http.StatusInternalServerError)
	err := sniffer.MonitorSimHours(context.Background(), 1)
	if err == nil {
		t.Fatal("monitoring with a dead screening endpoint succeeded")
	}
	if !strings.Contains(err.Error(), "no nodes") {
		t.Fatalf("err = %v, want the no-nodes rotation failure", err)
	}
}

// TestRemoteSnifferLookupError breaks the batch profile lookup: screening
// succeeds, but resolving the selected nodes to @screen_name filters fails
// and the error must propagate with its hour context.
func TestRemoteSnifferLookupError(t *testing.T) {
	sniffer := faultSniffer(t, "/users/lookup.json", http.StatusInternalServerError)
	err := sniffer.MonitorSimHours(context.Background(), 1)
	if err == nil {
		t.Fatal("monitoring with a dead lookup endpoint succeeded")
	}
	if !strings.Contains(err.Error(), "hour 0") {
		t.Fatalf("err = %v, want hour context", err)
	}
}

// TestRemoteSnifferAdvanceError breaks the simulation-advance endpoint:
// the hour must fail after tearing the stream down, not hang on it.
func TestRemoteSnifferAdvanceError(t *testing.T) {
	sniffer := faultSniffer(t, "/sim/advance.json", http.StatusInternalServerError)
	done := make(chan error, 1)
	go func() { done <- sniffer.MonitorSimHours(context.Background(), 1) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("monitoring with a dead advance endpoint succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("monitoring hung on a dead advance endpoint")
	}
}

// TestRemoteSnifferStreamRejected rejects statuses/filter with a client
// error (which the client does not retry): the hour must report it.
func TestRemoteSnifferStreamRejected(t *testing.T) {
	sniffer := faultSniffer(t, "/statuses/filter.json", http.StatusForbidden)
	err := sniffer.MonitorSimHours(context.Background(), 1)
	if err == nil {
		t.Fatal("monitoring with a rejected stream succeeded")
	}
}

// TestRemoteSnifferAdvanceTimeout hangs the advance endpoint until the
// caller's deadline: the context timeout must cut the hour short.
func TestRemoteSnifferAdvanceTimeout(t *testing.T) {
	upstream := healthyUpstream(t)
	proxy := httputil.NewSingleHostReverseProxy(upstream)
	proxy.FlushInterval = -1
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/sim/advance.json") {
			<-r.Context().Done() // hang until the client gives up
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)
	sniffer, err := NewSniffer(twitterapi.NewClient(slow.URL, slow.Client()), core.MonitorConfig{
		Specs: core.RandomSpec(50),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	if err := sniffer.MonitorSimHours(ctx, 1); err == nil {
		t.Fatal("monitoring with a hanging advance endpoint succeeded")
	}
	if time.Since(start) > 8*time.Second {
		t.Fatal("context deadline did not cut the hanging hour short")
	}
}

// TestRemoteLookupFallback exercises the per-capture profile fallback:
// cache hits never touch the wire, misses fall back to one REST lookup,
// and a failing endpoint degrades to a nil profile instead of an error.
func TestRemoteLookupFallback(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	sniffer, err := NewSniffer(twitterapi.NewClient(dead.URL, dead.Client()), core.MonitorConfig{
		Specs: core.RandomSpec(10),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sniffer.lookup(42); got != nil {
		t.Fatalf("lookup against a dead server = %+v, want nil", got)
	}
	cached := &socialnet.Account{ID: 42, ScreenName: "cached"}
	sniffer.profiles[42] = cached
	if got := sniffer.lookup(42); got != cached {
		t.Fatal("cache hit still went to the wire")
	}
}
