package remote

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

func newRemoteSetup(t *testing.T) (*twitterapi.Server, *twitterapi.Client) {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := twitterapi.NewServer(socialnet.NewEngine(w))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, twitterapi.NewClient(ts.URL, ts.Client())
}

func TestRemoteSnifferEndToEnd(t *testing.T) {
	_, client := newRemoteSetup(t)
	sniffer, err := NewSniffer(client, core.MonitorConfig{
		Specs: core.RandomSpec(50),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sniffer.MonitorSimHours(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	m := sniffer.Monitor()
	if m.Rotations() != 3 {
		t.Fatalf("rotations = %d, want 3", m.Rotations())
	}
	if len(m.Captures()) == 0 {
		t.Fatal("remote sniffer captured nothing")
	}
	for _, c := range m.Captures() {
		if c.Sender == nil {
			t.Fatal("capture without sender profile over the wire")
		}
	}
	if !strings.Contains(sniffer.Summary(), "captured") {
		t.Fatalf("summary = %q", sniffer.Summary())
	}
}

func TestRemoteSnifferNilClient(t *testing.T) {
	if _, err := NewSniffer(nil, core.MonitorConfig{}); err == nil {
		t.Fatal("nil client accepted")
	}
}

func TestRemoteSnifferContextCancellation(t *testing.T) {
	_, client := newRemoteSetup(t)
	sniffer, err := NewSniffer(client, core.MonitorConfig{
		Specs: core.RandomSpec(10),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled context must fail fast, not hang.
	if err := sniffer.MonitorSimHours(ctx, 2); err == nil {
		t.Fatal("cancelled monitoring succeeded")
	}
}

// TestRemoteMetricsEndToEnd wires one private registry through the API
// server, the streaming client, and the monitor, runs a remote monitoring
// session, and then scrapes the server's /metrics endpoint the way an
// operator would: the exposition must parse and carry live counters for
// captured tweets, stream connects/reconnects, and per-group PGE gauges.
func TestRemoteMetricsEndToEnd(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := twitterapi.NewServer(socialnet.NewEngine(w), twitterapi.WithMetrics(reg))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := twitterapi.NewClient(ts.URL, ts.Client())
	client.SetMetrics(reg)

	sniffer, err := NewSniffer(client, core.MonitorConfig{
		Specs:   core.RandomSpec(50),
		Seed:    1,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sniffer.MonitorSimHours(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	m := sniffer.Monitor()
	if len(m.Captures()) == 0 {
		t.Fatal("remote sniffer captured nothing")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	byName := make(map[string]float64)
	pgeSeries := 0
	for _, s := range samples {
		if len(s.Labels) == 0 {
			byName[s.Name] = s.Value
		}
		if s.Name == "ph_monitor_group_pge" {
			pgeSeries++
		}
	}
	if got := byName["ph_monitor_tweets_captured_total"]; got != float64(len(m.Captures())) {
		t.Fatalf("exposed captured tweets = %v, want %d", got, len(m.Captures()))
	}
	if byName["ph_stream_connects_total"] < 2 {
		t.Fatalf("exposed stream connects = %v, want >= 2 (one per monitored hour)", byName["ph_stream_connects_total"])
	}
	if _, ok := byName["ph_stream_reconnects_total"]; !ok {
		t.Fatal("ph_stream_reconnects_total absent from /metrics")
	}
	if pgeSeries != len(m.Groups()) {
		t.Fatalf("PGE gauge series = %d, want one per group (%d)", pgeSeries, len(m.Groups()))
	}

	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", health.StatusCode)
	}
}
