package remote

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

func newRemoteSetup(t *testing.T) (*twitterapi.Server, *twitterapi.Client) {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := twitterapi.NewServer(socialnet.NewEngine(w))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, twitterapi.NewClient(ts.URL, ts.Client())
}

func TestRemoteSnifferEndToEnd(t *testing.T) {
	_, client := newRemoteSetup(t)
	sniffer, err := NewSniffer(client, core.MonitorConfig{
		Specs: core.RandomSpec(50),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sniffer.MonitorSimHours(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	m := sniffer.Monitor()
	if m.Rotations() != 3 {
		t.Fatalf("rotations = %d, want 3", m.Rotations())
	}
	if len(m.Captures()) == 0 {
		t.Fatal("remote sniffer captured nothing")
	}
	for _, c := range m.Captures() {
		if c.Sender == nil {
			t.Fatal("capture without sender profile over the wire")
		}
	}
	if !strings.Contains(sniffer.Summary(), "captured") {
		t.Fatalf("summary = %q", sniffer.Summary())
	}
}

func TestRemoteSnifferNilClient(t *testing.T) {
	if _, err := NewSniffer(nil, core.MonitorConfig{}); err == nil {
		t.Fatal("nil client accepted")
	}
}

func TestRemoteSnifferContextCancellation(t *testing.T) {
	_, client := newRemoteSetup(t)
	sniffer, err := NewSniffer(client, core.MonitorConfig{
		Specs: core.RandomSpec(10),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled context must fail fast, not hang.
	if err := sniffer.MonitorSimHours(ctx, 2); err == nil {
		t.Fatal("cancelled monitoring succeeded")
	}
}
