package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/pipeline"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// Proc-mode epoch wire (NDJSON over HTTP POST, one round-trip per shard
// per simulated hour — DESIGN.md §15). The request is a header line naming
// the shard's node subset for the epoch followed by one twitterapi wire
// tweet per line (profiles embedded via x_mention_users). The response is
// one Hit per matched tweet, in request order, closed by a {"done":N}
// trailer whose count lets the coordinator detect truncated streams.

// NodeAssignment is one honeypot node handed to a shard for an epoch.
type NodeAssignment struct {
	ID     int64 `json:"id"`
	Groups []int `json:"groups"`
}

// epochHeader is the first request line of an epoch POST.
type epochHeader struct {
	Epoch int              `json:"epoch"`
	Nodes []NodeAssignment `json:"nodes"`
	// Origin is the ingest-source id of the tweet stream ("twitter" when
	// absent); workers tag their epoch traces with it so cross-process
	// trace stitching keeps the source dimension.
	Origin string `json:"origin,omitempty"`
	// TraceID is the coordinator's epoch-trace correlation id. The worker
	// attaches it to its own epoch trace and echoes its spans in the
	// response trailer, so the coordinator can stitch one cross-process
	// tree per capture epoch (DESIGN.md §16).
	TraceID string `json:"trace_id,omitempty"`
}

// WireSpan is one worker-side span exported in the epoch response: the
// worker's trace content flattened to wall-clock-free primitives the
// coordinator re-ingests into its own tracer via Trace.AddSpan.
type WireSpan struct {
	Stage         string     `json:"stage"`
	StartUnixNano int64      `json:"start_unix_nano"`
	DurationNS    int64      `json:"duration_ns"`
	Attrs         []trace.KV `json:"attrs,omitempty"`
}

// Hit is one worker-side match result: the shard's view of the capture
// (groups from its node subset only) plus everything it precomputed.
type Hit struct {
	TweetID int64 `json:"tweet_id"`
	// MentionIdx is the index (into the tweet's mention list) of the
	// first mention matching this shard's subset whose profile resolved,
	// -1 when the capture matched through the author only. The
	// coordinator picks the hit with the globally smallest index as the
	// receiver donor, reproducing Match's first-resolvable-mention rule.
	MentionIdx int             `json:"mention_idx"`
	Groups     []int           `json:"groups"`
	Vec        []float64       `json:"vec"`
	TweetPrep  label.TweetPrep `json:"tweet_prep"`
	UserPrep   *label.UserPrep `json:"user_prep,omitempty"`
}

// hitLine is the response-line union: a Hit or the final trailer, which
// carries the worker's exported spans alongside the hit count.
type hitLine struct {
	Hit
	Done  *int       `json:"done,omitempty"`
	Spans []WireSpan `json:"spans,omitempty"`
}

// scannerFor builds a line scanner sized for embedded-profile tweet lines.
func scannerFor(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

// WorkerCore is one proc-mode shard's matching engine, independent of its
// HTTP shell so failure-injection tests can drive it in-memory. It keeps
// the shard-local first-appearance set across epochs; a respawned worker
// starts with an empty set, which only makes it ship redundant profile
// preps (AddBatchPrepared recomputes or ignores as needed), never wrong
// ones.
type WorkerCore struct {
	shard   int
	prepper *label.Prepper
	pcfg    pipeline.Config
	seen    map[socialnet.AccountID]struct{}
}

// NewWorkerCore creates the matching engine for one shard. lcfg must be
// the coordinator's labeling config (the default config — preps depend
// only on its seed and length bounds).
func NewWorkerCore(shard int, lcfg label.Config, pcfg pipeline.Config) *WorkerCore {
	pcfg.Shard = strconv.Itoa(shard + 1)
	return &WorkerCore{
		shard:   shard,
		prepper: label.NewPrepper(lcfg),
		pcfg:    pcfg,
		seen:    make(map[socialnet.AccountID]struct{}),
	}
}

// Epoch consumes one epoch request stream and writes the response stream.
// Tweets flow through a shard-labeled staged pipeline: the request reader
// feeds a match+prep stage whose single sink goroutine writes hits in
// input order, so responses are ascending in tweet id by construction.
func (w *WorkerCore) Epoch(req io.Reader, resp io.Writer) error {
	sc := scannerFor(req)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("shard: epoch header: %w", err)
		}
		return fmt.Errorf("shard: empty epoch request")
	}
	var hdr epochHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("shard: epoch header: %w", err)
	}
	nodes := make(map[socialnet.AccountID][]int, len(hdr.Nodes))
	for _, na := range hdr.Nodes {
		nodes[socialnet.AccountID(na.ID)] = na.Groups
	}

	// The worker-side epoch trace: its spans travel back in the response
	// trailer tagged with the coordinator's trace id, giving the
	// coordinator one stitched tree per epoch. A nil/disabled tracer makes
	// every call below a no-op and the trailer span-free.
	tracer := w.pcfg.Tracer
	if tracer == nil {
		tracer = trace.Default()
	}
	wtr := tracer.Start("shard_worker_epoch")
	wtr.SetAttr("shard", strconv.Itoa(w.shard+1))
	wtr.SetAttr("epoch", strconv.Itoa(hdr.Epoch))
	if hdr.TraceID != "" {
		wtr.SetAttr("coord_trace", hdr.TraceID)
	}
	if hdr.Origin != "" {
		wtr.SetAttr("source", hdr.Origin)
	}
	msp := wtr.StartSpan("worker_match")

	bw := bufio.NewWriter(resp)
	enc := json.NewEncoder(bw)
	count := 0
	var writeErr error

	r := pipeline.NewRunner(w.pcfg)
	q := pipeline.NewQueue[*twitterapi.Tweet](r, "match")
	pipeline.Sink(r, "match", q, func(batch []*twitterapi.Tweet) {
		for _, wt := range batch {
			hit, ok := w.match(nodes, wt)
			if !ok || writeErr != nil {
				continue
			}
			if writeErr = enc.Encode(hit); writeErr == nil {
				count++
			}
		}
	})
	r.Start()

	var scanErr error
	for sc.Scan() {
		wt := new(twitterapi.Tweet)
		if scanErr = json.Unmarshal(sc.Bytes(), wt); scanErr != nil {
			break
		}
		_ = q.Push(wt)
	}
	if scanErr == nil {
		scanErr = sc.Err()
	}
	q.Close()
	r.Wait()
	msp.SetAttr("hits", strconv.Itoa(count))
	msp.End()
	wtr.Finish()
	if scanErr != nil {
		return fmt.Errorf("shard: epoch request: %w", scanErr)
	}
	if writeErr != nil {
		return fmt.Errorf("shard: epoch response: %w", writeErr)
	}
	if err := enc.Encode(struct {
		Done  int        `json:"done"`
		Spans []WireSpan `json:"spans,omitempty"`
	}{count, exportSpans(wtr)}); err != nil {
		return err
	}
	return bw.Flush()
}

// exportSpans flattens a worker trace's spans for the response trailer.
func exportSpans(tr *trace.Trace) []WireSpan {
	info := tr.Snapshot()
	if len(info.Spans) == 0 {
		return nil
	}
	out := make([]WireSpan, 0, len(info.Spans))
	for _, s := range info.Spans {
		out = append(out, WireSpan{
			Stage:         s.Stage,
			StartUnixNano: s.Start.UnixNano(),
			DurationNS:    s.DurationNS,
			Attrs:         s.Attrs,
		})
	}
	return out
}

// match runs the mention filter for one wire tweet against the epoch's
// node subset and precomputes the stateless vector and label preps from
// the embedded profile snapshots.
func (w *WorkerCore) match(nodes map[socialnet.AccountID][]int, wt *twitterapi.Tweet) (Hit, bool) {
	var groups []int
	mentionIdx := -1
	for i, m := range wt.Entities.Mentions {
		if gis, ok := nodes[socialnet.AccountID(m.ID)]; ok {
			groups = appendUnique(groups, gis)
			if mentionIdx < 0 && i < len(wt.XMentionUsers) && wt.XMentionUsers[i].ID != 0 {
				mentionIdx = i
			}
		}
	}
	if gis, ok := nodes[socialnet.AccountID(wt.User.ID)]; ok {
		groups = appendUnique(groups, gis)
	}
	if len(groups) == 0 {
		return Hit{}, false
	}
	sort.Ints(groups)

	t, sender := decodeCandidate(wt)
	var receiver *socialnet.Account
	if mentionIdx >= 0 {
		receiver = twitterapi.DecodeUser(&wt.XMentionUsers[mentionIdx])
	}
	vec := features.Stateless(features.Observation{Tweet: t, Sender: sender, Receiver: receiver})
	hit := Hit{
		TweetID:    wt.ID,
		MentionIdx: mentionIdx,
		Groups:     groups,
		Vec:        vec[:],
		TweetPrep:  w.prepper.PrepTweet(t),
	}
	if sender != nil {
		if _, ok := w.seen[sender.ID]; !ok {
			w.seen[sender.ID] = struct{}{}
			up := w.prepper.PrepUser(sender)
			hit.UserPrep = &up
		}
	}
	return hit, true
}

// decodeCandidate reconstructs the tweet and its author snapshot from the
// wire, honouring the author-missing marker (a capture whose author lookup
// failed at emit time has no sender snapshot, exactly as Match produces).
func decodeCandidate(wt *twitterapi.Tweet) (*socialnet.Tweet, *socialnet.Account) {
	t, sender := twitterapi.DecodeTweet(wt)
	if wt.XAuthorMissing {
		sender = nil
	}
	return t, sender
}

// appendUnique merges gis into dst, preserving set semantics (the same
// helper Match uses for multi-mention tweets).
func appendUnique(dst []int, gis []int) []int {
next:
	for _, gi := range gis {
		for _, have := range dst {
			if have == gi {
				continue next
			}
		}
		dst = append(dst, gi)
	}
	return dst
}

// parseHits decodes one shard's epoch response, verifying the done
// trailer: a missing trailer or a count mismatch means the stream was
// truncated mid-write (worker died) and the epoch must be retried. The
// trailer's exported worker spans ride back alongside the hits.
func parseHits(resp []byte, shard int) ([]Hit, []WireSpan, error) {
	var hits []Hit
	var spans []WireSpan
	sc := scannerFor(bytes.NewReader(resp))
	done := -1
	for sc.Scan() {
		if done >= 0 {
			return nil, nil, fmt.Errorf("shard %d: data after done trailer", shard)
		}
		var line hitLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, nil, fmt.Errorf("shard %d: response line: %w", shard, err)
		}
		if line.Done != nil {
			done = *line.Done
			spans = line.Spans
			continue
		}
		if len(line.Vec) != features.NumFeatures {
			return nil, nil, fmt.Errorf("shard %d: hit vector has %d features", shard, len(line.Vec))
		}
		if n := len(hits); n > 0 && hits[n-1].TweetID >= line.TweetID {
			return nil, nil, fmt.Errorf("shard %d: hits out of order", shard)
		}
		hits = append(hits, line.Hit)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("shard %d: response: %w", shard, err)
	}
	if done < 0 {
		return nil, nil, fmt.Errorf("shard %d: response truncated (no done trailer)", shard)
	}
	if done != len(hits) {
		return nil, nil, fmt.Errorf("shard %d: response truncated (%d hits, trailer says %d)", shard, len(hits), done)
	}
	return hits, spans, nil
}
