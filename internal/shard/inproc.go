package shard

import (
	"strconv"
	"sync"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/pipeline"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Item is one matched capture in flight from a shard worker to the
// coordinator: the capture plus everything the shard precomputed for it
// (stateless features, label preps). Seq is the coordinator-assigned
// ingest sequence number; the merge stage reorders by it so downstream
// stages observe captures in exactly the single-monitor stream order.
type Item struct {
	Seq       uint64
	C         *core.Capture
	Vec       features.Vector
	TweetPrep label.TweetPrep
	UserPrep  *label.UserPrep
}

// labeledItem pairs a merged capture with its rule-label verdict between
// the coordinator's label and detect stages.
type labeledItem struct {
	c    *core.Capture
	spam bool
}

// FanoutConfig parameterizes the in-process sharded topology.
type FanoutConfig struct {
	// Shards is the shard count (min 1).
	Shards int
	// Pipeline is the per-runner pipeline configuration; the fanout
	// stamps Shard itself ("1".."N" for shards, "coord" for the
	// coordinator).
	Pipeline pipeline.Config
	// Monitor supplies stateless feature extraction for shard workers.
	Monitor *core.Monitor
	// Prepper supplies label precompute for shard workers.
	Prepper *label.Prepper
	// Complete runs on the coordinator for every capture, in stream
	// order, before labeling: stateful feature completion, capture-store
	// append, WAL append.
	Complete func(it *Item)
	// Label rule-labels one merged micro-batch, in stream order.
	Label func(items []Item) []bool
	// Observe feeds one labeled capture to the online detector.
	Observe func(c *core.Capture, spam bool)
}

// Fanout is the in-process sharded pipeline: N shard runners (stateless
// extraction + label precompute over value-partitioned captures) feeding a
// coordinator runner (merge → label → detect) through one shared queue.
//
//	Ingest ──ring──▶ shard 1..N ("extract") ──▶ merge ─▶ label ─▶ detect
//
// Shards own disjoint node subsets, so every capture visits exactly one
// shard; the merge stage's sequence-number reorder restores the global
// stream order those parallel shards scrambled.
type Fanout struct {
	cfg    FanoutConfig
	ring   *Ring
	seq    uint64
	queues []*pipeline.Queue[Item]
	shards []*pipeline.Runner
	merge  *pipeline.Queue[Item]
	coord  *pipeline.Runner

	closeOnce sync.Once
}

// NewFanout builds and starts the sharded topology.
func NewFanout(cfg FanoutConfig) *Fanout {
	f := &Fanout{cfg: cfg, ring: NewRing(cfg.Shards)}
	n := f.ring.Shards()

	ccfg := cfg.Pipeline
	ccfg.Shard = "coord"
	coord := pipeline.NewRunner(ccfg)
	f.merge = pipeline.NewQueue[Item](coord, "merge")
	qLabel := pipeline.NewQueue[Item](coord, "label")
	qDetect := pipeline.NewQueue[labeledItem](coord, "detect")

	// merge: reorder by ingest sequence. pending holds out-of-order
	// arrivals; next is the sequence number the stream is waiting on.
	// Only this stage goroutine touches either.
	pending := make(map[uint64]Item)
	next := uint64(1)
	pipeline.Through(coord, "merge", f.merge, qLabel, func(batch []Item) []Item {
		ready := make([]Item, 0, len(batch))
		for _, it := range batch {
			pending[it.Seq] = it
		}
		for {
			it, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			cfg.Complete(&it)
			ready = append(ready, it)
		}
		return ready
	})
	pipeline.Through(coord, "label", qLabel, qDetect, func(items []Item) []labeledItem {
		spam := cfg.Label(items)
		out := make([]labeledItem, len(items))
		for i, it := range items {
			out[i] = labeledItem{c: it.C, spam: spam[i]}
		}
		return out
	})
	pipeline.Sink(coord, "detect", qDetect, func(batch []labeledItem) {
		for _, li := range batch {
			cfg.Observe(li.c, li.spam)
		}
	})
	coord.Start()
	f.coord = coord

	for s := 0; s < n; s++ {
		scfg := cfg.Pipeline
		scfg.Shard = strconv.Itoa(s + 1)
		r := pipeline.NewRunner(scfg)
		q := pipeline.NewQueue[Item](r, "extract")
		// seen tracks authors this shard already shipped a profile prep
		// for. Captures of one author always land on the same shard (the
		// ring keys on the receiver node, but an author's first capture is
		// its global first appearance regardless of which shard saw it —
		// see AddBatchPrepared's inline-recompute contract for the rest).
		seen := make(map[socialnet.AccountID]struct{})
		shardLabel := scfg.Shard
		pipeline.Sink(r, "extract", q, func(batch []Item) {
			for _, it := range batch {
				sp := it.C.Trace.StartSpan("shard_extract")
				sp.SetAttr("shard", shardLabel)
				it.C.Trace.SetAttr("shard", shardLabel)
				it.Vec = cfg.Monitor.StatelessVector(it.C)
				it.TweetPrep = cfg.Prepper.PrepTweet(it.C.Tweet)
				profile := it.C.SenderSnapshot()
				if profile == nil {
					profile = it.C.Sender
				}
				if profile != nil {
					if _, ok := seen[profile.ID]; !ok {
						seen[profile.ID] = struct{}{}
						up := cfg.Prepper.PrepUser(profile)
						it.UserPrep = &up
					}
				}
				sp.End()
				// it is a fresh copy per iteration; popBatch reuses its
				// batch buffer, so pushing the copy is what keeps the
				// merge queue safe.
				_ = f.merge.Push(it)
			}
		})
		r.Start()
		f.queues = append(f.queues, q)
		f.shards = append(f.shards, r)
	}
	return f
}

// Shards returns the effective shard count.
func (f *Fanout) Shards() int { return f.ring.Shards() }

// Ingest routes one freshly matched capture to its owning shard. It must
// be called from a single goroutine (the engine's); the assigned sequence
// numbers define the canonical merge order. Routing keys on the receiver
// node id (the honeypot that captured the tweet), falling back to the
// author id for captures with no resolvable receiver.
func (f *Fanout) Ingest(c *core.Capture) {
	f.seq++
	id := c.Tweet.AuthorID
	if r := c.ReceiverSnapshot(); r != nil {
		id = r.ID
	}
	_ = f.queues[f.ring.Owner(id)].Push(Item{Seq: f.seq, C: c})
}

// Drain blocks until every capture ingested so far has fully cleared the
// topology: shard runners first (so all merge pushes happened), then the
// coordinator. After Drain, the merge stage's pending map is empty — the
// reorder can only hold gaps while some earlier capture is still inside a
// shard runner.
func (f *Fanout) Drain() {
	for _, r := range f.shards {
		r.Drain()
	}
	f.coord.Drain()
}

// Close shuts the topology down in dependency order: shard queues close,
// shard runners finish (after which no goroutine can push to the shared
// merge queue), then the merge queue closes and the coordinator finishes.
// Close is idempotent.
func (f *Fanout) Close() {
	f.closeOnce.Do(func() {
		for _, q := range f.queues {
			q.Close()
		}
		for _, r := range f.shards {
			r.Wait()
		}
		f.merge.Close()
		f.coord.Wait()
	})
}
