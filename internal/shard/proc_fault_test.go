package shard

import (
	"bytes"
	"errors"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/pipeline"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// counterValue reads one labeled counter's value out of a registry
// snapshot, 0 when the series does not exist.
func counterValue(reg *metrics.Registry, name, shard string) float64 {
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			for _, l := range s.Labels {
				if l.Name == "shard" && l.Value == shard {
					return s.Value
				}
			}
		}
	}
	return 0
}

// faultKind is one injected failure mode for a shard epoch call.
type faultKind int

const (
	faultNone     faultKind = iota
	faultTruncate           // worker died mid-response: stream cut short
	faultDie                // worker died before responding: transport error
)

// memTransport is the fstest-style fault double for the proc Transport: it
// drives real WorkerCores in-memory and injects one-shot failures. Restart
// replaces the core with a fresh one — losing the shard-local
// first-appearance set, exactly as a respawned worker process would.
type memTransport struct {
	cores    []*WorkerCore
	faults   map[int]faultKind // shard → next Epoch call's fault
	restarts int
	calls    int
}

func newMemTransport(shards int) *memTransport {
	mt := &memTransport{faults: make(map[int]faultKind)}
	for s := 0; s < shards; s++ {
		mt.cores = append(mt.cores, NewWorkerCore(s, label.DefaultConfig(), pipeline.Config{}))
	}
	return mt
}

func (mt *memTransport) Epoch(s int, body []byte) ([]byte, error) {
	mt.calls++
	var buf bytes.Buffer
	if err := mt.cores[s].Epoch(bytes.NewReader(body), &buf); err != nil {
		return nil, err
	}
	switch f := mt.faults[s]; f {
	case faultTruncate:
		delete(mt.faults, s)
		// Cut mid-line: the worker streamed part of its response and
		// died before the done trailer.
		return buf.Bytes()[:buf.Len()*2/3], nil
	case faultDie:
		delete(mt.faults, s)
		return nil, errors.New("connection reset by peer")
	}
	return buf.Bytes(), nil
}

func (mt *memTransport) Restart(s int) error {
	mt.restarts++
	mt.cores[s] = NewWorkerCore(s, label.DefaultConfig(), pipeline.Config{})
	return nil
}

func (mt *memTransport) Close() error { return nil }

// runProcEpochs drives a fresh world's traffic through a ProcCoordinator
// on the given transport for hours of epochs, returning every applied
// merged capture in order.
func runProcEpochs(t *testing.T, tr Transport, shards, hours int) []Merged {
	return runProcEpochsReg(t, tr, shards, hours, metrics.NewRegistry())
}

// runProcEpochsReg is runProcEpochs with the coordinator's counters bound
// to a caller-owned registry, so fault tests can assert the restart and
// retry counters the run emitted.
func runProcEpochsReg(t *testing.T, tr Transport, shards, hours int, reg *metrics.Registry) []Merged {
	t.Helper()
	w, e, m := testWorld(t)
	var applied []Merged
	pc, err := NewProcCoordinator(ProcConfig{
		Shards:    shards,
		Lookup:    w.Account,
		Transport: tr,
		Metrics:   reg,
		Apply: func(batch []Merged) error {
			applied = append(applied, batch...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.OnHourStart(func(_ int, now time.Time) {
		m.Rotate(now, time.Hour)
		pc.BeginEpoch(m.CurrentNodes())
	})
	cancel := e.Subscribe(pc.OnTweet)
	defer cancel()
	for h := 0; h < hours; h++ {
		e.RunHours(1)
		if err := pc.FlushEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	return applied
}

// stripPreps normalizes the parts of a merged capture a respawned worker
// may legitimately report differently: a fresh worker re-ships profile
// preps its predecessor had deduplicated. Everything else — tweet
// sequence, groups, vectors, snapshots, tweet preps — must be identical.
func stripPreps(ms []Merged) []Merged {
	out := make([]Merged, len(ms))
	for i, m := range ms {
		m.UserPrep = nil
		out[i] = m
	}
	return out
}

// assertSameCaptures verifies the faulty run neither dropped nor
// duplicated nor reordered any capture relative to the clean run, and
// that every redundant prep a respawned worker shipped is bit-identical
// to the clean run's.
func assertSameCaptures(t *testing.T, clean, faulty []Merged) {
	t.Helper()
	if len(clean) == 0 {
		t.Fatal("clean run captured nothing")
	}
	if len(faulty) != len(clean) {
		t.Fatalf("faulty run applied %d captures, clean %d", len(faulty), len(clean))
	}
	if !reflect.DeepEqual(stripPreps(clean), stripPreps(faulty)) {
		t.Fatal("faulty run's captures differ from clean run")
	}
	for i := range clean {
		if clean[i].UserPrep != nil && faulty[i].UserPrep != nil &&
			!reflect.DeepEqual(clean[i].UserPrep, faulty[i].UserPrep) {
			t.Fatalf("capture %d: prep content diverged", i)
		}
	}
}

// TestProcRetryAfterTruncatedStream kills a shard mid-response (truncated
// NDJSON, no done trailer): the coordinator must detect the truncation,
// restart the worker, re-post the identical epoch, and merge a result
// indistinguishable from the clean run.
func TestProcRetryAfterTruncatedStream(t *testing.T) {
	const shards, hours = 4, 3
	clean := runProcEpochs(t, newMemTransport(shards), shards, hours)

	mt := newMemTransport(shards)
	mt.faults[1] = faultTruncate
	reg := metrics.NewRegistry()
	faulty := runProcEpochsReg(t, mt, shards, hours, reg)

	if mt.restarts != 1 {
		t.Fatalf("expected 1 worker restart, got %d", mt.restarts)
	}
	// The restart-and-retry path must be visible: one restart and one
	// retry counted against the faulted shard (1-based label "2"), none
	// against a healthy shard.
	if got := counterValue(reg, "ph_shard_worker_restarts_total", "2"); got != 1 {
		t.Fatalf("ph_shard_worker_restarts_total{shard=2} = %v, want 1", got)
	}
	if got := counterValue(reg, "ph_shard_epoch_retries_total", "2"); got != 1 {
		t.Fatalf("ph_shard_epoch_retries_total{shard=2} = %v, want 1", got)
	}
	if got := counterValue(reg, "ph_shard_worker_restarts_total", "1"); got != 0 {
		t.Fatalf("ph_shard_worker_restarts_total{shard=1} = %v, want 0", got)
	}
	assertSameCaptures(t, clean, faulty)
}

// TestProcRetryAfterWorkerDeath kills a shard before it responds at all
// (transport error): same retry/re-merge contract.
func TestProcRetryAfterWorkerDeath(t *testing.T) {
	const shards, hours = 2, 3
	clean := runProcEpochs(t, newMemTransport(shards), shards, hours)

	mt := newMemTransport(shards)
	mt.faults[0] = faultDie
	reg := metrics.NewRegistry()
	faulty := runProcEpochsReg(t, mt, shards, hours, reg)

	if mt.restarts != 1 {
		t.Fatalf("expected 1 worker restart, got %d", mt.restarts)
	}
	if got := counterValue(reg, "ph_shard_worker_restarts_total", "1"); got != 1 {
		t.Fatalf("ph_shard_worker_restarts_total{shard=1} = %v, want 1", got)
	}
	if got := counterValue(reg, "ph_shard_epoch_retries_total", "1"); got != 1 {
		t.Fatalf("ph_shard_epoch_retries_total{shard=1} = %v, want 1", got)
	}
	assertSameCaptures(t, clean, faulty)
}

// TestProcRepeatedFaultsEveryShard floods every shard with one fault each;
// all must recover within the retry budget.
func TestProcRepeatedFaultsEveryShard(t *testing.T) {
	const shards, hours = 4, 2
	clean := runProcEpochs(t, newMemTransport(shards), shards, hours)

	mt := newMemTransport(shards)
	for s := 0; s < shards; s++ {
		if s%2 == 0 {
			mt.faults[s] = faultTruncate
		} else {
			mt.faults[s] = faultDie
		}
	}
	reg := metrics.NewRegistry()
	faulty := runProcEpochsReg(t, mt, shards, hours, reg)
	if mt.restarts != shards {
		t.Fatalf("expected %d restarts, got %d", shards, mt.restarts)
	}
	for s := 0; s < shards; s++ {
		lv := strconv.Itoa(s + 1)
		if got := counterValue(reg, "ph_shard_worker_restarts_total", lv); got != 1 {
			t.Fatalf("ph_shard_worker_restarts_total{shard=%s} = %v, want 1", lv, got)
		}
		if got := counterValue(reg, "ph_shard_epoch_retries_total", lv); got != 1 {
			t.Fatalf("ph_shard_epoch_retries_total{shard=%s} = %v, want 1", lv, got)
		}
	}
	assertSameCaptures(t, clean, faulty)
}

// unrecoverableTransport fails a shard on every attempt.
type unrecoverableTransport struct {
	*memTransport
	dead int
}

func (ut *unrecoverableTransport) Epoch(s int, body []byte) ([]byte, error) {
	if s == ut.dead {
		return nil, errors.New("no route to host")
	}
	return ut.memTransport.Epoch(s, body)
}

// TestProcExhaustedRetriesSurface verifies a permanently dead shard turns
// into a FlushEpoch error instead of silently dropping its captures.
func TestProcExhaustedRetriesSurface(t *testing.T) {
	w, e, m := testWorld(t)
	pc, err := NewProcCoordinator(ProcConfig{
		Shards:    2,
		Lookup:    w.Account,
		Transport: &unrecoverableTransport{memTransport: newMemTransport(2), dead: 1},
		Apply:     func([]Merged) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.OnHourStart(func(_ int, now time.Time) {
		m.Rotate(now, time.Hour)
		pc.BeginEpoch(m.CurrentNodes())
	})
	cancel := e.Subscribe(pc.OnTweet)
	defer cancel()
	e.RunHours(1)
	if err := pc.FlushEpoch(); err == nil {
		t.Fatal("permanently dead shard did not surface an error")
	}
}

// TestWorkerCoreEpochOrdersHits sanity-checks the wire layer end to end:
// hits come back ascending in tweet id with a correct done trailer.
func TestWorkerCoreEpochOrdersHits(t *testing.T) {
	w, e, m := testWorld(t)
	mt := newMemTransport(1)
	pc, err := NewProcCoordinator(ProcConfig{
		Shards:    1,
		Lookup:    w.Account,
		Transport: mt,
		Apply:     func([]Merged) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.OnHourStart(func(_ int, now time.Time) {
		m.Rotate(now, time.Hour)
		pc.BeginEpoch(m.CurrentNodes())
	})
	cancel := e.Subscribe(pc.OnTweet)
	defer cancel()
	e.RunHours(1)

	resp, err := mt.Epoch(0, pc.bufs[0].Bytes())
	if err != nil {
		t.Fatal(err)
	}
	hits, _, err := parseHits(resp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	var last socialnet.TweetID
	for _, h := range hits {
		if socialnet.TweetID(h.TweetID) <= last {
			t.Fatalf("hit order broken at tweet %d", h.TweetID)
		}
		last = socialnet.TweetID(h.TweetID)
	}
}
