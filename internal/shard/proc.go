package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// Transport abstracts a fleet of proc-mode shard workers so coordinator
// failure-edge tests can inject faults (truncated responses, dead
// workers) without real processes. The production implementation spawns
// worker subprocesses and POSTs over loopback HTTP.
type Transport interface {
	// Epoch posts one epoch request body to a shard worker and returns
	// the raw NDJSON response.
	Epoch(shard int, body []byte) ([]byte, error)
	// Restart tears down and respawns one worker after a failure. The
	// replacement starts with empty shard-local state; the wire contract
	// tolerates that (redundant profile preps are idempotent).
	Restart(shard int) error
	// Close shuts the whole fleet down.
	Close() error
}

// Merged is one fully merged capture: the live engine tweet, the decoded
// match-time profile snapshots, the union of every shard's group matches,
// and the donor shard's precomputed vector and label preps.
type Merged struct {
	Tweet     *socialnet.Tweet
	Sender    *socialnet.Account
	Receiver  *socialnet.Account
	Groups    []int
	Vec       features.Vector
	TweetPrep label.TweetPrep
	UserPrep  *label.UserPrep
}

// ProcConfig parameterizes the separate-process shard coordinator.
type ProcConfig struct {
	// Shards is the worker count (min 1).
	Shards int
	// Lookup resolves live accounts at encode time (the simulation
	// world's Account func).
	Lookup func(socialnet.AccountID) *socialnet.Account
	// Apply consumes one epoch's merged captures in stream order.
	Apply func(batch []Merged) error
	// Transport overrides the subprocess transport (tests). Nil spawns
	// real workers by re-executing the current binary.
	Transport Transport
	// MaxRetries bounds how many times a failed shard epoch is retried
	// after a worker restart (default 2).
	MaxRetries int
}

// ProcCoordinator drives separate-process shards through the epoch wire:
// per simulated hour it buffers every candidate tweet (encoded once, at
// emit time, freezing the profile snapshots exactly as an in-process
// match would), posts each shard its subset, merge-sorts the hit streams
// by tweet id, and applies the merged captures. The hour boundary is the
// rotation barrier: BeginEpoch distributes the post-rotation node
// assignment, FlushEpoch completes strictly before the next rotation.
type ProcCoordinator struct {
	cfg  ProcConfig
	ring *Ring
	tr   Transport

	epoch   int
	nodes   map[socialnet.AccountID][]int
	bufs    []bytes.Buffer
	lines   map[int64][]byte
	tweets  map[int64]*socialnet.Tweet
	scratch []int
}

// NewProcCoordinator builds the coordinator and spawns the worker fleet.
func NewProcCoordinator(cfg ProcConfig) (*ProcCoordinator, error) {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	ring := NewRing(cfg.Shards)
	tr := cfg.Transport
	if tr == nil {
		var err error
		if tr, err = newProcTransport(ring.Shards()); err != nil {
			return nil, err
		}
	}
	return &ProcCoordinator{
		cfg:    cfg,
		ring:   ring,
		tr:     tr,
		bufs:   make([]bytes.Buffer, ring.Shards()),
		lines:  make(map[int64][]byte),
		tweets: make(map[int64]*socialnet.Tweet),
	}, nil
}

// Shards returns the effective shard count.
func (pc *ProcCoordinator) Shards() int { return pc.ring.Shards() }

// BeginEpoch opens a new epoch with the post-rotation node set. It runs on
// the engine goroutine at hour start, before any of the hour's traffic.
func (pc *ProcCoordinator) BeginEpoch(nodes map[socialnet.AccountID][]int) {
	pc.epoch++
	pc.nodes = nodes
	n := pc.ring.Shards()
	assign := make([][]NodeAssignment, n)
	for id, groups := range nodes {
		s := pc.ring.Owner(id)
		assign[s] = append(assign[s], NodeAssignment{ID: int64(id), Groups: groups})
	}
	for s := 0; s < n; s++ {
		// Node order is irrelevant to workers (they build a map) but
		// sorting keeps the request bytes deterministic for the wire
		// fingerprint in tests.
		sort.Slice(assign[s], func(i, j int) bool { return assign[s][i].ID < assign[s][j].ID })
		pc.bufs[s].Reset()
		hdr, _ := json.Marshal(epochHeader{Epoch: pc.epoch, Nodes: assign[s]})
		pc.bufs[s].Write(hdr)
		pc.bufs[s].WriteByte('\n')
	}
	clear(pc.lines)
	clear(pc.tweets)
}

// OnTweet is the coordinator's stream tap, run on the engine goroutine for
// every emitted tweet. Candidates (any mention or author in the epoch's
// node set) are wire-encoded once — freezing the profiles at emit time —
// and buffered for every shard owning a matched node.
func (pc *ProcCoordinator) OnTweet(t *socialnet.Tweet) {
	targets := pc.scratch[:0]
	for _, m := range t.Mentions {
		if _, ok := pc.nodes[m]; ok {
			targets = appendUnique(targets, []int{pc.ring.Owner(m)})
		}
	}
	if _, ok := pc.nodes[t.AuthorID]; ok {
		targets = appendUnique(targets, []int{pc.ring.Owner(t.AuthorID)})
	}
	if len(targets) == 0 {
		pc.scratch = targets
		return
	}
	wire := twitterapi.EncodeTweet(t, pc.cfg.Lookup, true)
	line, err := json.Marshal(wire)
	if err != nil {
		pc.scratch = targets[:0]
		return
	}
	for _, s := range targets {
		pc.bufs[s].Write(line)
		pc.bufs[s].WriteByte('\n')
	}
	id := int64(t.ID)
	pc.lines[id] = line
	pc.tweets[id] = t
	pc.scratch = targets[:0]
}

// FlushEpoch posts the buffered epoch to every shard, retrying a failed
// shard after a worker restart (the request buffer is retained untouched,
// so a retried epoch is byte-identical — and the response is idempotent),
// then merges the hit streams and applies the captures in stream order.
func (pc *ProcCoordinator) FlushEpoch() error {
	n := pc.ring.Shards()
	hits := make([][]Hit, n)
	for s := 0; s < n; s++ {
		// Detach the request bytes from the reusable epoch buffer: the
		// HTTP transport may still be draining an aborted body write in a
		// background goroutine after a failed attempt returns, and the
		// next BeginEpoch rewrites the buffer in place.
		body := append([]byte(nil), pc.bufs[s].Bytes()...)
		var lastErr error
		for attempt := 0; attempt <= pc.cfg.MaxRetries; attempt++ {
			if attempt > 0 {
				if err := pc.tr.Restart(s); err != nil {
					lastErr = fmt.Errorf("restart: %w", err)
					continue
				}
			}
			resp, err := pc.tr.Epoch(s, body)
			if err != nil {
				lastErr = err
				continue
			}
			hs, err := parseHits(resp, s)
			if err != nil {
				lastErr = err
				continue
			}
			hits[s], lastErr = hs, nil
			break
		}
		if lastErr != nil {
			return fmt.Errorf("shard: epoch %d shard %d failed after %d retries: %w",
				pc.epoch, s, pc.cfg.MaxRetries, lastErr)
		}
	}
	merged, err := pc.merge(hits)
	if err != nil {
		return err
	}
	if len(merged) == 0 {
		return nil
	}
	return pc.cfg.Apply(merged)
}

// merge k-way-merges the per-shard hit streams (each ascending in tweet
// id) back into global stream order, combining multi-shard hits on the
// same tweet: groups are the sorted union, and the donor hit — globally
// smallest resolvable mention index, mirroring Match's receiver rule —
// supplies the vector, receiver, and preps.
func (pc *ProcCoordinator) merge(hits [][]Hit) ([]Merged, error) {
	heads := make([]int, len(hits))
	var out []Merged
	for {
		minID := int64(-1)
		for s, hs := range hits {
			if heads[s] < len(hs) {
				if id := hs[heads[s]].TweetID; minID < 0 || id < minID {
					minID = id
				}
			}
		}
		if minID < 0 {
			return out, nil
		}
		var group []Hit
		for s, hs := range hits {
			if heads[s] < len(hs) && hs[heads[s]].TweetID == minID {
				group = append(group, hs[heads[s]])
				heads[s]++
			}
		}
		m, err := pc.combine(minID, group)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
}

// combine folds the (ascending-shard-ordered) hits on one tweet into a
// Merged capture.
func (pc *ProcCoordinator) combine(tweetID int64, group []Hit) (Merged, error) {
	t, ok := pc.tweets[tweetID]
	if !ok {
		return Merged{}, fmt.Errorf("shard: hit for unknown tweet %d", tweetID)
	}
	donor := group[0]
	var groups []int
	for _, h := range group {
		groups = appendUnique(groups, h.Groups)
		if h.MentionIdx >= 0 && (donor.MentionIdx < 0 || h.MentionIdx < donor.MentionIdx) {
			donor = h
		}
	}
	sort.Ints(groups)

	var wt twitterapi.Tweet
	if err := json.Unmarshal(pc.lines[tweetID], &wt); err != nil {
		return Merged{}, fmt.Errorf("shard: tweet %d line: %w", tweetID, err)
	}
	_, sender := decodeCandidate(&wt)
	var receiver *socialnet.Account
	if donor.MentionIdx >= 0 {
		receiver = twitterapi.DecodeUser(&wt.XMentionUsers[donor.MentionIdx])
	}
	m := Merged{
		Tweet:     t,
		Sender:    sender,
		Receiver:  receiver,
		Groups:    groups,
		TweetPrep: donor.TweetPrep,
	}
	copy(m.Vec[:], donor.Vec)
	// Any shard's prep of this author works (pure function of the same
	// embedded snapshot); take the first in shard order for determinism.
	for _, h := range group {
		if h.UserPrep != nil {
			m.UserPrep = h.UserPrep
			break
		}
	}
	return m, nil
}

// Close shuts the worker fleet down.
func (pc *ProcCoordinator) Close() error { return pc.tr.Close() }
