package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// Transport abstracts a fleet of proc-mode shard workers so coordinator
// failure-edge tests can inject faults (truncated responses, dead
// workers) without real processes. The production implementation spawns
// worker subprocesses and POSTs over loopback HTTP.
type Transport interface {
	// Epoch posts one epoch request body to a shard worker and returns
	// the raw NDJSON response.
	Epoch(shard int, body []byte) ([]byte, error)
	// Restart tears down and respawns one worker after a failure. The
	// replacement starts with empty shard-local state; the wire contract
	// tolerates that (redundant profile preps are idempotent).
	Restart(shard int) error
	// Close shuts the whole fleet down.
	Close() error
}

// Merged is one fully merged capture: the live engine tweet, the decoded
// match-time profile snapshots, the union of every shard's group matches,
// and the donor shard's precomputed vector and label preps.
type Merged struct {
	Tweet     *socialnet.Tweet
	Sender    *socialnet.Account
	Receiver  *socialnet.Account
	Groups    []int
	Vec       features.Vector
	TweetPrep label.TweetPrep
	UserPrep  *label.UserPrep
	// Origin is the ingest-source id of the stream the capture came from.
	Origin string
}

// ProcConfig parameterizes the separate-process shard coordinator.
type ProcConfig struct {
	// Shards is the worker count (min 1).
	Shards int
	// Lookup resolves live accounts at encode time (the simulation
	// world's Account func).
	Lookup func(socialnet.AccountID) *socialnet.Account
	// Apply consumes one epoch's merged captures in stream order.
	Apply func(batch []Merged) error
	// Transport overrides the subprocess transport (tests). Nil spawns
	// real workers by re-executing the current binary.
	Transport Transport
	// MaxRetries bounds how many times a failed shard epoch is retried
	// after a worker restart (default 2).
	MaxRetries int
	// Metrics receives the coordinator's shard counters (worker restarts,
	// epoch retries, lines shipped, hits merged); nil binds
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer records one coordinator trace per epoch, with the workers'
	// exported spans stitched in as children of the per-shard
	// shard_extract spans; nil binds trace.Default() (disabled by
	// default, making every trace call a no-op).
	Tracer *trace.Tracer
	// Origin is the ingest-source id of the tweet stream; it travels in
	// every epoch header and is stamped on merged captures. Empty means
	// "twitter".
	Origin string
}

// ProcCoordinator drives separate-process shards through the epoch wire:
// per simulated hour it buffers every candidate tweet (encoded once, at
// emit time, freezing the profile snapshots exactly as an in-process
// match would), posts each shard its subset, merge-sorts the hit streams
// by tweet id, and applies the merged captures. The hour boundary is the
// rotation barrier: BeginEpoch distributes the post-rotation node
// assignment, FlushEpoch completes strictly before the next rotation.
type ProcCoordinator struct {
	cfg    ProcConfig
	ring   *Ring
	tr     Transport
	obs    *procObs
	tracer *trace.Tracer

	epoch   int
	etrace  *trace.Trace // the current epoch's coordinator trace
	nodes   map[socialnet.AccountID][]int
	bufs    []bytes.Buffer
	lines   map[int64][]byte
	tweets  map[int64]*socialnet.Tweet
	scratch []int
}

// procObs is the coordinator's per-shard counter set, with the Vec
// children resolved once at construction so the stream tap stays
// lookup-free. Shard label values are 1-based, matching the pipeline's
// shard labels.
type procObs struct {
	restarts []*metrics.Counter // ph_shard_worker_restarts_total{shard}
	retries  []*metrics.Counter // ph_shard_epoch_retries_total{shard}
	lines    []*metrics.Counter // ph_shard_epoch_lines_total{shard}
	hits     []*metrics.Counter // ph_shard_epoch_hits_total{shard}
}

func newProcObs(reg *metrics.Registry, shards int) *procObs {
	if reg == nil {
		reg = metrics.Default()
	}
	restarts := reg.CounterVec("ph_shard_worker_restarts_total",
		"Proc-mode shard workers torn down and respawned after a failed epoch attempt.", "shard")
	retries := reg.CounterVec("ph_shard_epoch_retries_total",
		"Shard epoch attempts retried after a transport error or truncated response.", "shard")
	lines := reg.CounterVec("ph_shard_epoch_lines_total",
		"Candidate tweet lines shipped to each shard worker over the epoch wire.", "shard")
	hits := reg.CounterVec("ph_shard_epoch_hits_total",
		"Hits parsed back from each shard worker's epoch responses.", "shard")
	o := &procObs{}
	for s := 0; s < shards; s++ {
		lv := strconv.Itoa(s + 1)
		o.restarts = append(o.restarts, restarts.With(lv))
		o.retries = append(o.retries, retries.With(lv))
		o.lines = append(o.lines, lines.With(lv))
		o.hits = append(o.hits, hits.With(lv))
	}
	return o
}

// NewProcCoordinator builds the coordinator and spawns the worker fleet.
func NewProcCoordinator(cfg ProcConfig) (*ProcCoordinator, error) {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.Origin == "" {
		cfg.Origin = "twitter"
	}
	ring := NewRing(cfg.Shards)
	tr := cfg.Transport
	if tr == nil {
		var err error
		if tr, err = newProcTransport(ring.Shards()); err != nil {
			return nil, err
		}
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Default()
	}
	return &ProcCoordinator{
		cfg:    cfg,
		ring:   ring,
		tr:     tr,
		obs:    newProcObs(cfg.Metrics, ring.Shards()),
		tracer: tracer,
		bufs:   make([]bytes.Buffer, ring.Shards()),
		lines:  make(map[int64][]byte),
		tweets: make(map[int64]*socialnet.Tweet),
	}, nil
}

// adminLister is the optional Transport extension exposing each worker's
// admin base URL (the loopback epoch-wire server, which also mounts
// /metrics and /healthz) for the fleet federator to scrape.
type adminLister interface {
	AdminURLs() []string
}

// AdminURLs returns the per-shard worker admin base URLs, or nil when the
// transport has none (in-memory fault doubles). The slice is indexed by
// shard; a respawned worker changes its entry, which the federator treats
// as a restart.
func (pc *ProcCoordinator) AdminURLs() []string {
	if al, ok := pc.tr.(adminLister); ok {
		return al.AdminURLs()
	}
	return nil
}

// Shards returns the effective shard count.
func (pc *ProcCoordinator) Shards() int { return pc.ring.Shards() }

// BeginEpoch opens a new epoch with the post-rotation node set. It runs on
// the engine goroutine at hour start, before any of the hour's traffic.
func (pc *ProcCoordinator) BeginEpoch(nodes map[socialnet.AccountID][]int) {
	pc.epoch++
	pc.nodes = nodes
	// One coordinator trace per epoch; its id travels in every shard's
	// header so worker spans stitch back under it at FlushEpoch.
	pc.etrace = pc.tracer.Start("shard_epoch")
	pc.etrace.SetAttr("epoch", strconv.Itoa(pc.epoch))
	n := pc.ring.Shards()
	assign := make([][]NodeAssignment, n)
	for id, groups := range nodes {
		s := pc.ring.Owner(id)
		assign[s] = append(assign[s], NodeAssignment{ID: int64(id), Groups: groups})
	}
	for s := 0; s < n; s++ {
		// Node order is irrelevant to workers (they build a map) but
		// sorting keeps the request bytes deterministic for the wire
		// fingerprint in tests.
		sort.Slice(assign[s], func(i, j int) bool { return assign[s][i].ID < assign[s][j].ID })
		pc.bufs[s].Reset()
		hdr, _ := json.Marshal(epochHeader{
			Epoch: pc.epoch, Nodes: assign[s],
			TraceID: pc.etrace.ID(), Origin: pc.cfg.Origin,
		})
		pc.bufs[s].Write(hdr)
		pc.bufs[s].WriteByte('\n')
	}
	clear(pc.lines)
	clear(pc.tweets)
}

// OnTweet is the coordinator's stream tap, run on the engine goroutine for
// every emitted tweet. Candidates (any mention or author in the epoch's
// node set) are wire-encoded once — freezing the profiles at emit time —
// and buffered for every shard owning a matched node.
func (pc *ProcCoordinator) OnTweet(t *socialnet.Tweet) {
	targets := pc.scratch[:0]
	for _, m := range t.Mentions {
		if _, ok := pc.nodes[m]; ok {
			targets = appendUnique(targets, []int{pc.ring.Owner(m)})
		}
	}
	if _, ok := pc.nodes[t.AuthorID]; ok {
		targets = appendUnique(targets, []int{pc.ring.Owner(t.AuthorID)})
	}
	if len(targets) == 0 {
		pc.scratch = targets
		return
	}
	wire := twitterapi.EncodeTweet(t, pc.cfg.Lookup, true)
	line, err := json.Marshal(wire)
	if err != nil {
		pc.scratch = targets[:0]
		return
	}
	for _, s := range targets {
		pc.bufs[s].Write(line)
		pc.bufs[s].WriteByte('\n')
		pc.obs.lines[s].Inc()
	}
	id := int64(t.ID)
	pc.lines[id] = line
	pc.tweets[id] = t
	pc.scratch = targets[:0]
}

// FlushEpoch posts the buffered epoch to every shard, retrying a failed
// shard after a worker restart (the request buffer is retained untouched,
// so a retried epoch is byte-identical — and the response is idempotent),
// then merges the hit streams and applies the captures in stream order.
func (pc *ProcCoordinator) FlushEpoch() error {
	n := pc.ring.Shards()
	hits := make([][]Hit, n)
	for s := 0; s < n; s++ {
		// Detach the request bytes from the reusable epoch buffer: the
		// HTTP transport may still be draining an aborted body write in a
		// background goroutine after a failed attempt returns, and the
		// next BeginEpoch rewrites the buffer in place.
		body := append([]byte(nil), pc.bufs[s].Bytes()...)
		esp := pc.etrace.StartSpan("shard_extract")
		esp.SetAttr("shard", strconv.Itoa(s+1))
		var lastErr error
		for attempt := 0; attempt <= pc.cfg.MaxRetries; attempt++ {
			if attempt > 0 {
				pc.obs.retries[s].Inc()
				if err := pc.tr.Restart(s); err != nil {
					lastErr = fmt.Errorf("restart: %w", err)
					continue
				}
				pc.obs.restarts[s].Inc()
			}
			resp, err := pc.tr.Epoch(s, body)
			if err != nil {
				lastErr = err
				continue
			}
			hs, spans, err := parseHits(resp, s)
			if err != nil {
				lastErr = err
				continue
			}
			pc.obs.hits[s].Add(float64(len(hs)))
			pc.stitch(s, spans)
			hits[s], lastErr = hs, nil
			break
		}
		esp.End()
		if lastErr != nil {
			pc.etrace.Finish()
			return fmt.Errorf("shard: epoch %d shard %d failed after %d retries: %w",
				pc.epoch, s, pc.cfg.MaxRetries, lastErr)
		}
	}
	msp := pc.etrace.StartSpan("shard_merge")
	merged, err := pc.merge(hits)
	msp.End()
	if err != nil {
		pc.etrace.Finish()
		return err
	}
	if len(merged) == 0 {
		pc.etrace.Finish()
		return nil
	}
	asp := pc.etrace.StartSpan("shard_apply")
	err = pc.cfg.Apply(merged)
	asp.SetAttr("captures", strconv.Itoa(len(merged)))
	asp.End()
	pc.etrace.Finish()
	return err
}

// stitch re-ingests one worker's exported spans into the coordinator's
// epoch trace as children of that shard's shard_extract span (marked via
// the parent attribute — the trace model is flat, so the rendering key is
// attributes plus containment in time). The result is one end-to-end tree
// per capture epoch in /debug/traces, spanning the process boundary.
func (pc *ProcCoordinator) stitch(shard int, spans []WireSpan) {
	if pc.etrace == nil || len(spans) == 0 {
		return
	}
	lv := strconv.Itoa(shard + 1)
	for _, ws := range spans {
		start := time.Unix(0, ws.StartUnixNano)
		attrs := make([]trace.KV, 0, len(ws.Attrs)+2)
		attrs = append(attrs, ws.Attrs...)
		attrs = append(attrs,
			trace.KV{Key: "parent", Value: "shard_extract"},
			trace.KV{Key: "shard", Value: lv})
		pc.etrace.AddSpan(ws.Stage, start, start.Add(time.Duration(ws.DurationNS)), attrs...)
	}
}

// merge k-way-merges the per-shard hit streams (each ascending in tweet
// id) back into global stream order, combining multi-shard hits on the
// same tweet: groups are the sorted union, and the donor hit — globally
// smallest resolvable mention index, mirroring Match's receiver rule —
// supplies the vector, receiver, and preps.
func (pc *ProcCoordinator) merge(hits [][]Hit) ([]Merged, error) {
	heads := make([]int, len(hits))
	var out []Merged
	for {
		minID := int64(-1)
		for s, hs := range hits {
			if heads[s] < len(hs) {
				if id := hs[heads[s]].TweetID; minID < 0 || id < minID {
					minID = id
				}
			}
		}
		if minID < 0 {
			return out, nil
		}
		var group []Hit
		for s, hs := range hits {
			if heads[s] < len(hs) && hs[heads[s]].TweetID == minID {
				group = append(group, hs[heads[s]])
				heads[s]++
			}
		}
		m, err := pc.combine(minID, group)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
}

// combine folds the (ascending-shard-ordered) hits on one tweet into a
// Merged capture.
func (pc *ProcCoordinator) combine(tweetID int64, group []Hit) (Merged, error) {
	t, ok := pc.tweets[tweetID]
	if !ok {
		return Merged{}, fmt.Errorf("shard: hit for unknown tweet %d", tweetID)
	}
	donor := group[0]
	var groups []int
	for _, h := range group {
		groups = appendUnique(groups, h.Groups)
		if h.MentionIdx >= 0 && (donor.MentionIdx < 0 || h.MentionIdx < donor.MentionIdx) {
			donor = h
		}
	}
	sort.Ints(groups)

	var wt twitterapi.Tweet
	if err := json.Unmarshal(pc.lines[tweetID], &wt); err != nil {
		return Merged{}, fmt.Errorf("shard: tweet %d line: %w", tweetID, err)
	}
	_, sender := decodeCandidate(&wt)
	var receiver *socialnet.Account
	if donor.MentionIdx >= 0 {
		receiver = twitterapi.DecodeUser(&wt.XMentionUsers[donor.MentionIdx])
	}
	m := Merged{
		Tweet:     t,
		Sender:    sender,
		Receiver:  receiver,
		Groups:    groups,
		TweetPrep: donor.TweetPrep,
		Origin:    pc.cfg.Origin,
	}
	copy(m.Vec[:], donor.Vec)
	// Any shard's prep of this author works (pure function of the same
	// embedded snapshot); take the first in shard order for determinism.
	for _, h := range group {
		if h.UserPrep != nil {
			m.UserPrep = h.UserPrep
			break
		}
	}
	return m, nil
}

// Close shuts the worker fleet down.
func (pc *ProcCoordinator) Close() error { return pc.tr.Close() }
