package shard

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/obs"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/pipeline"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// EnvWorker marks a process as a proc-mode shard worker; its value is
// "<shard>/<shards>". The coordinator spawns workers by re-executing the
// current binary with this variable set, so any binary embedding the
// coordinator must call MaybeWorker first thing in main (and in TestMain).
const EnvWorker = "PH_SHARD_WORKER"

// addrPrefix tags the worker's listen-address line on stdout.
const addrPrefix = "PH_SHARD_ADDR "

// MaybeWorker turns the current process into a shard worker when the
// worker env marker is set: it serves the epoch RPC on a loopback
// listener, announces the address on stdout, and exits when stdin closes
// (coordinator shutdown or death). It never returns in worker processes
// and is a no-op otherwise.
func MaybeWorker() {
	spec := os.Getenv(EnvWorker)
	if spec == "" {
		return
	}
	var shardIdx, shards int
	if _, err := fmt.Sscanf(spec, "%d/%d", &shardIdx, &shards); err != nil {
		fmt.Fprintf(os.Stderr, "shard worker: bad %s=%q: %v\n", EnvWorker, spec, err)
		os.Exit(2)
	}
	if err := runWorker(shardIdx); err != nil {
		fmt.Fprintf(os.Stderr, "shard worker %d: %v\n", shardIdx, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runWorker serves one shard's epoch RPC until stdin closes. The same
// loopback listener doubles as the worker's admin surface: /metrics,
// /healthz, and /debug/traces, scraped by the coordinator's fleet
// federator (internal/obs) and browsable directly when debugging one
// shard.
func runWorker(shardIdx int) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Worker-side observability: spans for the epoch trace stitching, the
	// runtime collector, and the pipeline stall watchdog, all against the
	// process-default registry the admin /metrics serves.
	tracer := trace.Default()
	tracer.Configure(trace.Config{
		Enabled:  true,
		Observer: metrics.Default().SpanObserver(),
	})
	collector := obs.NewCollector(metrics.Default())
	stopCollector := collector.Start(0)
	defer stopCollector()
	watchdog := obs.NewWatchdog(obs.WatchdogConfig{
		Metrics: metrics.Default(),
		Logger:  trace.NewLogger(os.Stderr, trace.LevelWarn),
	})
	stopWatchdog := watchdog.Start()
	defer stopWatchdog()

	core := NewWorkerCore(shardIdx, label.DefaultConfig(), pipeline.Config{
		Tracer:    tracer,
		Heartbeat: watchdog.HeartbeatFunc(),
	})
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Default().Handler())
	mux.Handle("GET /healthz", metrics.HealthHandler())
	mux.Handle("GET /debug/traces", tracer.Handler())
	mux.Handle("GET /debug/traces/{id}", tracer.Handler())
	mux.HandleFunc("POST /shard/epoch", func(w http.ResponseWriter, r *http.Request) {
		// Buffer the whole response and write it only after the request
		// body is fully consumed: HTTP/1.1 is half-duplex, and the Go
		// server reacts to a response write with the body still uploading
		// by draining and closing the body, truncating the epoch stream
		// mid-request. A failed epoch maps to a non-200, which the
		// coordinator treats like a dead worker and retries.
		var buf bytes.Buffer
		if err := core.Epoch(r.Body, &buf); err != nil {
			fmt.Fprintf(os.Stderr, "shard worker %d: epoch: %v\n", shardIdx, err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(buf.Bytes())
	})
	srv := &http.Server{Handler: mux}
	go func() {
		// The coordinator holds our stdin pipe open for our lifetime;
		// EOF means shutdown (or a dead coordinator — no orphans).
		_, _ = io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	fmt.Printf("%shttp://%s\n", addrPrefix, ln.Addr())
	return srv.Serve(ln)
}

// workerProc is one spawned worker subprocess.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

// procTransport is the production Transport: one worker subprocess per
// shard, epoch requests POSTed over loopback HTTP. The mutex guards the
// worker table: Restart swaps entries on the coordinator goroutine while
// the federator's scrape loop reads AdminURLs concurrently.
type procTransport struct {
	shards int
	client *http.Client

	mu      sync.Mutex
	workers []*workerProc
}

// AdminURLs returns each live worker's admin base URL, indexed by shard.
// A respawned worker changes its entry (new loopback port), which the
// fleet federator reports as a restart until the replacement answers.
func (pt *procTransport) AdminURLs() []string {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	urls := make([]string, len(pt.workers))
	for i, w := range pt.workers {
		if w != nil {
			urls[i] = w.addr
		}
	}
	return urls
}

func newProcTransport(shards int) (*procTransport, error) {
	pt := &procTransport{
		shards: shards,
		client: &http.Client{Timeout: 5 * time.Minute},
	}
	for s := 0; s < shards; s++ {
		w, err := spawnWorker(s, shards)
		if err != nil {
			_ = pt.Close()
			return nil, err
		}
		pt.workers = append(pt.workers, w)
	}
	return pt, nil
}

// spawnWorker re-executes the current binary as a worker and waits for it
// to announce its listen address.
func spawnWorker(shardIdx, shards int) (*workerProc, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d/%d", EnvWorker, shardIdx, shards))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shard: spawn worker %d: %w", shardIdx, err)
	}
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, addrPrefix) {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return nil, fmt.Errorf("shard: worker %d announced %q: %v", shardIdx, line, err)
	}
	go func() { _, _ = io.Copy(io.Discard, br) }()
	return &workerProc{
		cmd:   cmd,
		stdin: stdin,
		addr:  strings.TrimSpace(strings.TrimPrefix(line, addrPrefix)),
	}, nil
}

func (w *workerProc) kill() {
	_ = w.stdin.Close()
	_ = w.cmd.Process.Kill()
	_, _ = cmdWait(w.cmd)
}

// cmdWait swallows the expected kill error.
func cmdWait(cmd *exec.Cmd) (bool, error) {
	err := cmd.Wait()
	return err == nil, err
}

func (pt *procTransport) Epoch(shard int, body []byte) ([]byte, error) {
	pt.mu.Lock()
	w := pt.workers[shard]
	pt.mu.Unlock()
	resp, err := pt.client.Post(w.addr+"/shard/epoch", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: worker %d returned %s", shard, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func (pt *procTransport) Restart(shard int) error {
	pt.mu.Lock()
	old := pt.workers[shard]
	pt.mu.Unlock()
	old.kill()
	w, err := spawnWorker(shard, pt.shards)
	if err != nil {
		return err
	}
	pt.mu.Lock()
	pt.workers[shard] = w
	pt.mu.Unlock()
	return nil
}

func (pt *procTransport) Close() error {
	pt.mu.Lock()
	workers := append([]*workerProc(nil), pt.workers...)
	pt.mu.Unlock()
	for _, w := range workers {
		if w != nil {
			w.kill()
		}
	}
	return nil
}
