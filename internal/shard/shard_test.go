package shard

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// testPrepper builds the default-config prepper the sniffer uses.
func testPrepper() *label.Prepper { return label.NewPrepper(label.DefaultConfig()) }

// TestMain lets tests that spawn real worker subprocesses re-execute this
// test binary as a worker.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

func TestRingDeterministicAndComplete(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		a, b := NewRing(n), NewRing(n)
		counts := make([]int, n)
		for id := socialnet.AccountID(1); id <= 10_000; id++ {
			oa, ob := a.Owner(id), b.Owner(id)
			if oa != ob {
				t.Fatalf("n=%d id=%d: owners disagree (%d vs %d)", n, id, oa, ob)
			}
			if oa < 0 || oa >= n {
				t.Fatalf("n=%d id=%d: owner %d out of range", n, id, oa)
			}
			counts[oa]++
		}
		for s, c := range counts {
			if n > 1 && c == 0 {
				t.Fatalf("n=%d: shard %d owns no ids", n, s)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const ids = 10_000
	r := NewRing(8)
	counts := make([]int, 8)
	for id := socialnet.AccountID(1); id <= ids; id++ {
		counts[r.Owner(id)]++
	}
	for s, c := range counts {
		// With 64 vnodes per shard the expected spread stays well within
		// a factor of two of the mean.
		if c < ids/8/2 || c > ids/8*2 {
			t.Fatalf("shard %d owns %d of %d ids (mean %d)", s, c, ids, ids/8)
		}
	}
}

// testWorld builds a small simulated world with a rotating monitor, the
// setup every topology test shares.
func testWorld(t *testing.T) (*socialnet.World, *socialnet.Engine, *core.Monitor) {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1200
	cfg.OrganicTweetsPerHour = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	m := core.NewMonitor(core.MonitorConfig{
		Specs:      core.RandomSpec(80),
		ActiveOnly: true,
		Seed:       7,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(8))})
	return w, e, m
}

// TestFanoutPreservesStreamOrder runs real traffic through the in-process
// sharded topology and asserts the coordinator sees every capture exactly
// once, in ingest order, with the stateless work done — the merge
// contract the determinism pin rests on. Run under -race this also
// exercises the multi-producer merge queue.
func TestFanoutPreservesStreamOrder(t *testing.T) {
	w, e, m := testWorld(t)

	var completed []uint64
	var labeled int
	f := NewFanout(FanoutConfig{
		Shards:  4,
		Monitor: m,
		Prepper: testPrepper(),
		Complete: func(it *Item) {
			completed = append(completed, it.Seq)
			if it.Vec != m.StatelessVector(it.C) {
				t.Error("stateless vector mismatch")
			}
		},
		Label: func(items []Item) []bool {
			labeled += len(items)
			return make([]bool, len(items))
		},
		Observe: func(*core.Capture, bool) {},
	})

	ingested := 0
	e.OnHourStart(func(_ int, now time.Time) { m.Rotate(now, time.Hour) })
	cancel := e.Subscribe(func(tw *socialnet.Tweet) {
		if c := m.Match(tw, w.Account); c != nil {
			ingested++
			f.Ingest(c)
		}
	})
	defer cancel()
	e.RunHours(3)
	f.Drain()
	f.Close()

	if ingested == 0 {
		t.Fatal("no captures ingested")
	}
	if len(completed) != ingested {
		t.Fatalf("completed %d of %d ingested captures", len(completed), ingested)
	}
	for i, seq := range completed {
		if seq != uint64(i+1) {
			t.Fatalf("capture %d completed with seq %d — merge order broken", i, seq)
		}
	}
	if labeled != ingested {
		t.Fatalf("labeled %d of %d captures", labeled, ingested)
	}
}

func TestFanoutCloseIdempotent(t *testing.T) {
	_, _, m := testWorld(t)
	f := NewFanout(FanoutConfig{
		Shards:   2,
		Monitor:  m,
		Prepper:  testPrepper(),
		Complete: func(*Item) {},
		Label:    func(items []Item) []bool { return make([]bool, len(items)) },
		Observe:  func(*core.Capture, bool) {},
	})
	f.Close()
	f.Close()
}
