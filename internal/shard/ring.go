// Package shard partitions the honeypot node set across N shard workers,
// each running its own stream filter and staged pipeline over its node
// subset, with a coordinator that merges the capture streams back into the
// deterministic single-monitor order. Two modes share the interface:
// goroutine-isolated in-process shards (Fanout) and separate worker
// processes speaking an HTTP/NDJSON epoch wire (ProcCoordinator).
package shard

import (
	"sort"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// vnodesPerShard is the number of virtual points each shard contributes to
// the hash ring. 64 points per shard keeps the expected node imbalance for
// the paper's 2,400-node network under ~15% without making Owner lookups
// measurably slower (binary search over ≤512 points for 8 shards).
const vnodesPerShard = 64

// Ring is a consistent-hash ring over shard indices. Node ids hash onto
// the ring and are owned by the next virtual point clockwise. The ring is
// a pure function of the shard count — every process (coordinator, worker,
// test) derives the identical assignment independently, which is what lets
// proc-mode workers filter their subset without a membership protocol.
type Ring struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit mix used both to place virtual points and to hash node ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRing builds the ring for n shards (n < 1 is treated as 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			// Distinct (shard, vnode) inputs stay injective before mixing;
			// the salt keeps vnode placement uncorrelated with the node-id
			// hashes, which use raw splitmix64.
			h := splitmix64(0xD1B5_4A32 + uint64(s)*vnodesPerShard + uint64(v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.n }

// Owner returns the shard that owns a node id.
func (r *Ring) Owner(id socialnet.AccountID) int {
	if r.n == 1 {
		return 0
	}
	h := splitmix64(uint64(id))
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	return r.points[idx].shard
}
