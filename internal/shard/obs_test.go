package shard

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/obs"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/pipeline"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// fixedClock pins every span timestamp, standing in for the simclock: two
// replayed runs must snapshot byte-identical traces.
func fixedClock() time.Time { return time.Unix(1_700_000_000, 0).UTC() }

// runStitchedEpochs drives a traced proc run on an in-memory transport
// whose worker cores also trace (as real workers do), and returns the
// coordinator tracer's retained snapshots.
func runStitchedEpochs(t *testing.T, shards, hours int) []trace.TraceInfo {
	t.Helper()
	workerTracer := trace.New(trace.Config{Enabled: true, Clock: fixedClock})
	mt := newMemTransport(shards)
	for s := range mt.cores {
		mt.cores[s] = NewWorkerCore(s, label.DefaultConfig(), pipeline.Config{Tracer: workerTracer})
	}
	coordTracer := trace.New(trace.Config{Enabled: true, Buffer: 64, Clock: fixedClock})

	w, e, m := testWorld(t)
	pc, err := NewProcCoordinator(ProcConfig{
		Shards:    shards,
		Lookup:    w.Account,
		Transport: mt,
		Metrics:   metrics.NewRegistry(),
		Tracer:    coordTracer,
		Apply:     func([]Merged) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.OnHourStart(func(_ int, now time.Time) {
		m.Rotate(now, time.Hour)
		pc.BeginEpoch(m.CurrentNodes())
	})
	cancel := e.Subscribe(pc.OnTweet)
	defer cancel()
	for h := 0; h < hours; h++ {
		e.RunHours(1)
		if err := pc.FlushEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	return coordTracer.Recent()
}

// TestStitchedEpochTrace checks pillar (b) end to end on the in-memory
// wire: each epoch yields one coordinator trace whose tree contains the
// per-shard extract spans AND the worker-side spans re-ingested across the
// (simulated) process boundary, parented under shard_extract.
func TestStitchedEpochTrace(t *testing.T) {
	traces := runStitchedEpochs(t, 2, 3)
	if len(traces) == 0 {
		t.Fatal("no epoch traces retained")
	}
	stitched := 0
	for _, tr := range traces {
		if tr.Name != "shard_epoch" || !tr.Finished {
			t.Fatalf("unexpected trace %q finished=%v", tr.Name, tr.Finished)
		}
		if _, ok := tr.Span("shard_extract"); !ok {
			t.Fatalf("trace %s missing shard_extract span", tr.ID)
		}
		for _, sp := range tr.Spans {
			if sp.Stage != "worker_match" {
				continue
			}
			attrs := map[string]string{}
			for _, kv := range sp.Attrs {
				attrs[kv.Key] = kv.Value
			}
			if attrs["parent"] != "shard_extract" {
				t.Fatalf("worker span not parented: %+v", sp.Attrs)
			}
			if attrs["shard"] == "" {
				t.Fatalf("worker span missing shard attr: %+v", sp.Attrs)
			}
			stitched++
		}
	}
	// Every epoch re-ingests one worker_match span per shard.
	if want := 3 * 2; stitched != want {
		t.Fatalf("stitched %d worker spans, want %d", stitched, want)
	}
}

// TestStitchedTraceDeterministic replays the traced run and requires the
// full trace snapshots — ids, names, spans, attributes, timestamps — to be
// bit-identical under the fixed clock, the property the acceptance
// criterion "deterministic under simclock" pins.
func TestStitchedTraceDeterministic(t *testing.T) {
	a, err := json.Marshal(runStitchedEpochs(t, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(runStitchedEpochs(t, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("trace snapshots differ across identical runs:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestScrapeStallDoesNotBlockRotation is the satellite-6 regression: the
// federated scrape loop, pointed at a stalled worker-admin double that
// never answers /metrics, must not stall the epoch rotation — the proc run
// completes normally while /healthz degrades to report the hung worker.
func TestScrapeStallDoesNotBlockRotation(t *testing.T) {
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // a hung worker admin endpoint: never responds
	}))
	defer stalled.Close()

	fed := obs.NewFederator(obs.FederatorConfig{
		Local:    metrics.NewRegistry(),
		Interval: 5 * time.Millisecond,
		Timeout:  30 * time.Millisecond,
		Targets:  func() []obs.Target { return []obs.Target{{Name: "1", URL: stalled.URL}} },
	})
	stop := fed.Start()
	defer stop()

	// The rotation barrier runs to completion while scrapes stall.
	start := time.Now()
	applied := runProcEpochs(t, newMemTransport(2), 2, 3)
	if len(applied) == 0 {
		t.Fatal("run captured nothing")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("rotation blocked by stalled scrape: %v", elapsed)
	}

	// And the hung worker surfaces as degraded health, not silence.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rr := httptest.NewRecorder()
		fed.HealthHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rr.Code == http.StatusServiceUnavailable {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("stalled worker never degraded /healthz")
}
