package twitterapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// Client consumes the emulated Twitter API: REST helpers plus a streaming
// consumer with automatic reconnection and exponential backoff, mirroring
// how the paper's Tweepy-based implementation stays attached to the
// Streaming API for hundreds of hours.
type Client struct {
	base string
	http *http.Client
	ins  *clientInstruments

	// InitialBackoff and MaxBackoff bound the reconnect delays of Stream.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
}

// NewClient creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for http.DefaultClient.
// Instrumentation reports through metrics.Default(); see SetMetrics.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:           strings.TrimRight(baseURL, "/"),
		http:           httpClient,
		ins:            newClientInstruments(metrics.Default()),
		InitialBackoff: 250 * time.Millisecond,
		MaxBackoff:     8 * time.Second,
	}
}

// SetMetrics rebinds the client's instrumentation to r (call before use).
func (c *Client) SetMetrics(r *metrics.Registry) {
	c.ins = newClientInstruments(r)
}

// UserShow fetches one user by screen name.
func (c *Client) UserShow(ctx context.Context, screenName string) (*User, error) {
	var u User
	err := c.getJSON(ctx, "/1.1/users/show.json", url.Values{
		"screen_name": {screenName},
	}, &u)
	if err != nil {
		return nil, err
	}
	return &u, nil
}

// UserByID fetches one user by id.
func (c *Client) UserByID(ctx context.Context, id int64) (*User, error) {
	var u User
	err := c.getJSON(ctx, "/1.1/users/show.json", url.Values{
		"user_id": {strconv.FormatInt(id, 10)},
	}, &u)
	if err != nil {
		return nil, err
	}
	return &u, nil
}

// UsersLookup fetches a batch of users by id; unknown ids are skipped.
func (c *Client) UsersLookup(ctx context.Context, ids []int64) ([]User, error) {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatInt(id, 10)
	}
	var users []User
	err := c.getJSON(ctx, "/1.1/users/lookup.json", url.Values{
		"user_id": {strings.Join(parts, ",")},
	}, &users)
	return users, err
}

// SearchQuery parameterizes UsersSearch; see the server's
// /1.1/users/search.json documentation.
type SearchQuery struct {
	Attr       string
	Value      float64
	Category   string
	Trend      string
	Count      int
	Tolerance  float64
	ActiveOnly bool
}

// UsersSearch screens accounts by attribute.
func (c *Client) UsersSearch(ctx context.Context, q SearchQuery) ([]User, error) {
	vals := url.Values{
		"attr":  {q.Attr},
		"count": {strconv.Itoa(q.Count)},
	}
	if q.Value != 0 {
		vals.Set("value", strconv.FormatFloat(q.Value, 'f', -1, 64))
	}
	if q.Category != "" {
		vals.Set("category", q.Category)
	}
	if q.Trend != "" {
		vals.Set("trend", q.Trend)
	}
	if q.Tolerance > 0 {
		vals.Set("tolerance", strconv.FormatFloat(q.Tolerance, 'f', -1, 64))
	}
	if q.ActiveOnly {
		vals.Set("active", "1")
	}
	var users []User
	err := c.getJSON(ctx, "/1.1/users/search.json", vals, &users)
	return users, err
}

// Trends fetches trending topics, optionally filtered by state
// ("trending-up", "trending-down", "popular", "no-trending").
func (c *Client) Trends(ctx context.Context, state string) ([]Trend, error) {
	vals := url.Values{}
	if state != "" {
		vals.Set("state", state)
	}
	var trends []Trend
	err := c.getJSON(ctx, "/1.1/trends.json", vals, &trends)
	return trends, err
}

// Advance asks the simulation server to run n hours.
func (c *Client) Advance(ctx context.Context, hours int) (*SimStats, error) {
	u := fmt.Sprintf("%s/sim/advance.json?hours=%d", c.base, hours)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return nil, err
	}
	var stats SimStats
	if err := c.do(req, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// Stats fetches simulation counters.
func (c *Client) Stats(ctx context.Context) (*SimStats, error) {
	var stats SimStats
	if err := c.getJSON(ctx, "/sim/stats.json", nil, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// StreamFilter holds the statuses/filter parameters.
type StreamFilter struct {
	// Track lists @screen_name mention filters.
	Track []string
	// Follow lists user ids whose own posts are delivered.
	Follow []int64
}

// Stream attaches to statuses/filter and invokes handler for every tweet
// until ctx is cancelled. Dropped connections are re-established with
// exponential backoff; the error is returned only when ctx ends or the
// server rejects the request outright. A connection that delivered at
// least one tweet was healthy, so the backoff ladder restarts from
// InitialBackoff rather than resuming where the previous outage left it.
//
// Tweets are decoded with a zero-allocation scratch decoder: the Tweet
// passed to handler — including every string and slice it references — is
// valid only for the duration of the callback. Handlers that retain any of
// it must take a deep copy with Tweet.Clone first. DecodeTweet and
// DecodeUser already copy what they keep, so handlers built on them need
// no extra care.
func (c *Client) Stream(ctx context.Context, filter StreamFilter, handler func(Tweet)) error {
	backoff := c.InitialBackoff
	for {
		delivered := false
		err := c.streamOnce(ctx, filter, func(t Tweet) {
			delivered = true
			c.ins.streamTweets.Inc()
			metrics.MarkStreamRead(time.Now())
			handler(t)
		})
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if delivered || err == nil {
			backoff = c.InitialBackoff
		}
		if err == nil {
			// Server closed the stream cleanly; reconnect immediately.
			c.ins.reconnects.Inc()
			continue
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code >= 400 && apiErr.Code < 500 {
			return err // client error: retrying cannot help
		}
		c.ins.reconnects.Inc()
		c.ins.backoff.Set(backoff.Seconds())
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > c.MaxBackoff {
			backoff = c.MaxBackoff
		}
	}
}

// streamOnce makes a single streaming connection.
func (c *Client) streamOnce(ctx context.Context, filter StreamFilter, handler func(Tweet)) error {
	form := url.Values{}
	if len(filter.Track) > 0 {
		form.Set("track", strings.Join(filter.Track, ","))
	}
	if len(filter.Follow) > 0 {
		ids := make([]string, len(filter.Follow))
		for i, id := range filter.Follow {
			ids[i] = strconv.FormatInt(id, 10)
		}
		form.Set("follow", strings.Join(ids, ","))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/1.1/statuses/filter.json", strings.NewReader(form.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	c.ins.connects.Inc()
	dec := streamDecoderPool.Get().(*StreamDecoder)
	defer streamDecoderPool.Put(dec)
	bufp := lineBufPool.Get().(*[]byte)
	defer lineBufPool.Put(bufp)
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(*bufp, maxStreamLine)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		t, err := dec.Decode(line)
		if err != nil {
			return fmt.Errorf("decode stream: %w", err)
		}
		handler(*t)
	}
	return scanner.Err()
}

// maxStreamLine bounds one NDJSON stream line (matches the pre-scratch
// scanner limit).
const maxStreamLine = 1024 * 1024

// streamDecoderPool shares scratch decoders across reconnects and
// concurrent streams; each connection checks one out for its lifetime, so
// steady-state streaming allocates nothing per line.
var streamDecoderPool = sync.Pool{New: func() any { return NewStreamDecoder() }}

// lineBufPool recycles the scanner's initial line buffer the same way.
var lineBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64*1024)
	return &b
}}

func (c *Client) getJSON(ctx context.Context, path string, vals url.Values, out any) error {
	u := c.base + path
	if len(vals) > 0 {
		u += "?" + vals.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	defer c.ins.reqSecs.With(req.URL.Path).ObserveDuration(time.Now())
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Honour Retry-After once, as well-behaved API consumers do.
		c.ins.rateLimited.Inc()
		wait := retryAfter(resp, c.MaxBackoff)
		_ = resp.Body.Close()
		select {
		case <-req.Context().Done():
			return req.Context().Err()
		case <-time.After(wait):
		}
		resp, err = c.http.Do(req)
		if err != nil {
			return err
		}
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s: %w", req.URL.Path, err)
	}
	return nil
}

// retryAfter parses the Retry-After header, clamped to maxWait.
func retryAfter(resp *http.Response, maxWait time.Duration) time.Duration {
	if maxWait <= 0 {
		maxWait = 8 * time.Second
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return maxWait
	}
	wait := time.Duration(secs) * time.Second
	if wait > maxWait {
		wait = maxWait
	}
	return wait
}

// errBodySnippet bounds how much of a non-JSON error body is quoted in the
// returned error.
const errBodySnippet = 256

func decodeAPIError(resp *http.Response) error {
	// Proxies and middleboxes answer with HTML or plain text; keep a
	// bounded snippet of whatever came back so those failures are
	// debuggable instead of an anonymous status code.
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var apiErr APIError
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Code == 0 {
		snippet := bytes.TrimSpace(body)
		suffix := ""
		if len(snippet) > errBodySnippet {
			snippet = snippet[:errBodySnippet]
			suffix = "..."
		}
		if len(snippet) == 0 {
			return fmt.Errorf("twitterapi: http %d", resp.StatusCode)
		}
		return fmt.Errorf("twitterapi: http %d: %s%s", resp.StatusCode, snippet, suffix)
	}
	return &apiErr
}
