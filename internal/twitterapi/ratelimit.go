package twitterapi

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// rateLimiter is a fixed-window counter per endpoint class, mirroring the
// 15-minute windows of the Twitter REST API. The zero value is disabled.
type rateLimiter struct {
	mu     sync.Mutex
	limit  int
	window time.Duration
	counts map[string]int
	reset  time.Time
	now    func() time.Time
}

// newRateLimiter allows limit requests per endpoint per window.
func newRateLimiter(limit int, window time.Duration) *rateLimiter {
	return &rateLimiter{
		limit:  limit,
		window: window,
		counts: make(map[string]int),
		now:    time.Now,
	}
}

// allow consumes one request slot for the endpoint, reporting whether the
// request may proceed and, if not, how long until the window resets.
func (rl *rateLimiter) allow(endpoint string) (bool, time.Duration) {
	if rl == nil || rl.limit <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	if now.After(rl.reset) {
		rl.counts = make(map[string]int)
		rl.reset = now.Add(rl.window)
	}
	if rl.counts[endpoint] >= rl.limit {
		return false, rl.reset.Sub(now)
	}
	rl.counts[endpoint]++
	return true, 0
}

// WithRateLimit enables fixed-window rate limiting on the REST endpoints
// (limit requests per endpoint per window). Streaming connections are
// exempt, as on the real platform.
func WithRateLimit(limit int, window time.Duration) ServerOption {
	return func(s *Server) {
		s.limiter = newRateLimiter(limit, window)
	}
}

// rateLimited wraps a REST handler with the server's limiter, answering
// HTTP 429 with a Retry-After header when the window is exhausted.
func (s *Server) rateLimited(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ok, retryIn := s.limiter.allow(endpoint)
		if !ok {
			s.ins.rateLimited.With(endpoint).Inc()
			secs := int(retryIn.Seconds()) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeErr(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		h(w, r)
	}
}
