package twitterapi

import (
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// The remote screener must satisfy the monitor's Screener interface.
var _ core.Screener = (*RemoteScreener)(nil)

func TestRemoteScreenerFindsAccounts(t *testing.T) {
	srv, client := newTestServer(t)
	_ = srv
	s := &RemoteScreener{Client: client}
	got := s.Screen(socialnet.ScreenQuery{
		Selector: socialnet.Selector{Attr: socialnet.AttrFollowers, Value: 1000},
		Count:    5,
	}, time.Now())
	if len(got) == 0 {
		t.Fatal("remote screener found nothing")
	}
	for _, a := range got {
		if a.FollowersCount < 650 || a.FollowersCount > 1350 {
			t.Fatalf("account followers %d outside band", a.FollowersCount)
		}
		if a.Kind != socialnet.KindNormal || a.CampaignID != socialnet.NoCampaign {
			t.Fatal("ground truth leaked through the wire")
		}
	}
}

func TestRemoteScreenerExcludes(t *testing.T) {
	_, client := newTestServer(t)
	s := &RemoteScreener{Client: client}
	q := socialnet.ScreenQuery{
		Selector: socialnet.Selector{Attr: socialnet.AttrRandom},
		Count:    10,
	}
	first := s.Screen(q, time.Now())
	if len(first) == 0 {
		t.Fatal("no accounts")
	}
	q.Exclude = map[socialnet.AccountID]struct{}{first[0].ID: {}}
	second := s.Screen(q, time.Now())
	for _, a := range second {
		if a.ID == first[0].ID {
			t.Fatal("excluded account returned")
		}
	}
}

// A core.Monitor driven entirely through the HTTP API: remote selection
// plus remote streaming, end to end.
func TestMonitorOverRemoteAPI(t *testing.T) {
	srv, client := newTestServer(t)
	m := core.NewMonitor(core.MonitorConfig{
		Specs: core.RandomSpec(60),
		Seed:  1,
	}, &RemoteScreener{Client: client})

	m.Rotate(time.Now(), time.Hour)
	if m.NodeCount() == 0 {
		t.Fatal("remote rotation selected nothing")
	}

	// Feed the monitor from the server's engine via the wire decode path.
	srv.mu.Lock()
	world := srv.engine.World()
	srv.mu.Unlock()
	lookup := func(id socialnet.AccountID) *socialnet.Account {
		return world.Account(id)
	}
	srv.mu.Lock()
	cancel := srv.engine.Subscribe(func(tw *socialnet.Tweet) {
		m.OnTweet(tw, lookup)
	})
	srv.mu.Unlock()
	defer cancel()

	srv.Advance(3)
	if len(m.Captures()) == 0 {
		t.Fatal("no captures through remote-selected nodes")
	}
}

func TestDecodeUser(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	u := &User{
		ID: 42, ScreenName: "x", Name: "X", Description: "d",
		CreatedAt: now.Format(time.RFC3339), FriendsCount: 1,
		FollowersCount: 2, ListedCount: 3, FavouritesCount: 4,
		StatusesCount: 5, Verified: true, DefaultProfile: true,
		Suspended: true,
	}
	a := DecodeUser(u)
	if a.ID != 42 || !a.CreatedAt.Equal(now) || a.FriendsCount != 1 ||
		a.FollowersCount != 2 || !a.Verified || !a.DefaultProfileImage ||
		!a.Suspended {
		t.Fatalf("decode mismatch: %+v", a)
	}
	if DecodeUser(nil) != nil {
		t.Fatal("nil decode")
	}
	// Bad timestamp degrades to zero time, not an error.
	u.CreatedAt = "garbage"
	if a := DecodeUser(u); !a.CreatedAt.IsZero() {
		t.Fatal("bad timestamp not zeroed")
	}
}

func TestDecodeTweetRoundTrip(t *testing.T) {
	srv, client := newTestServer(t, WithOracle())
	_ = client
	world := srv.engine.World()
	author := world.Accounts()[0]
	target := world.Accounts()[1]
	orig := &socialnet.Tweet{
		ID: 9, AuthorID: author.ID, CreatedAt: time.Now().UTC(),
		Kind: socialnet.KindQuote, Source: socialnet.SourceThirdParty,
		Text: "hello @x", Hashtags: []string{"h"},
		Mentions: []socialnet.AccountID{target.ID},
		URLs:     []string{"http://u"}, Topic: "topic",
		Spam: true, CampaignID: 3,
	}
	wire := encodeTweet(orig, world.Account, true)
	decoded, sender := DecodeTweet(&wire)
	if decoded.ID != orig.ID || decoded.AuthorID != orig.AuthorID ||
		decoded.Kind != orig.Kind || decoded.Source != orig.Source ||
		decoded.Text != orig.Text || decoded.Topic != orig.Topic {
		t.Fatalf("decode mismatch: %+v", decoded)
	}
	if !decoded.CreatedAt.Equal(orig.CreatedAt) {
		t.Fatalf("timestamp mismatch: %v vs %v", decoded.CreatedAt, orig.CreatedAt)
	}
	if len(decoded.Mentions) != 1 || decoded.Mentions[0] != target.ID {
		t.Fatal("mentions mismatch")
	}
	if !decoded.Spam || decoded.CampaignID != 3 {
		t.Fatal("oracle fields lost")
	}
	if sender == nil || sender.ID != author.ID {
		t.Fatal("sender profile missing")
	}
}

func TestDecodeTweetWithoutOracle(t *testing.T) {
	srv, _ := newTestServer(t)
	world := srv.engine.World()
	orig := &socialnet.Tweet{
		ID: 1, AuthorID: world.Accounts()[0].ID, CreatedAt: time.Now(),
		Kind: socialnet.KindTweet, Source: socialnet.SourceWeb,
		Spam: true, CampaignID: 5,
	}
	wire := encodeTweet(orig, world.Account, false)
	decoded, _ := DecodeTweet(&wire)
	if decoded.Spam || decoded.CampaignID != socialnet.NoCampaign {
		t.Fatal("ground truth leaked without oracle")
	}
}

func TestDecodeTweetNil(t *testing.T) {
	tw, a := DecodeTweet(nil)
	if tw != nil || a != nil {
		t.Fatal("nil decode should be nil")
	}
}
