package twitterapi

import (
	"context"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// RemoteScreener adapts the REST client to the pseudo-honeypot monitor's
// Screener interface, so node selection can run against a remote twitterd
// exactly as it runs against an in-process world. Lookup failures surface
// as empty results; the monitor's fallback logic tolerates short batches.
type RemoteScreener struct {
	Client *Client
	// Timeout bounds each search call (default 10s).
	Timeout time.Duration
}

// Screen implements the monitor's screening through /1.1/users/search.
func (s *RemoteScreener) Screen(q socialnet.ScreenQuery, _ time.Time) []*socialnet.Account {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	sq := SearchQuery{
		Attr:       q.Selector.Attr.Key(),
		Count:      q.Count,
		Tolerance:  q.Tolerance,
		ActiveOnly: q.ActiveOnly,
	}
	switch q.Selector.Attr {
	case socialnet.AttrHashtag:
		sq.Category = q.Selector.Category.String()
	case socialnet.AttrTrend:
		sq.Trend = trendName(q.Selector.Trend)
	case socialnet.AttrRandom:
	default:
		sq.Value = q.Selector.Value
	}
	users, err := s.Client.UsersSearch(ctx, sq)
	if err != nil {
		return nil
	}
	out := make([]*socialnet.Account, 0, len(users))
	for i := range users {
		a := DecodeUser(&users[i])
		if a == nil {
			continue
		}
		if _, excluded := q.Exclude[a.ID]; excluded {
			continue
		}
		if q.MaxFriendFollowerRatio > 0 &&
			a.FriendFollowerRatio() > q.MaxFriendFollowerRatio {
			continue
		}
		out = append(out, a)
	}
	return out
}

// DecodeTweet reconstructs a tweet (and its author profile) from the wire
// form, for monitors running against a remote stream. Oracle fields are
// honoured only when present (evaluation streams).
func DecodeTweet(t *Tweet) (*socialnet.Tweet, *socialnet.Account) {
	if t == nil {
		return nil, nil
	}
	createdAt, err := time.Parse(time.RFC3339Nano, t.CreatedAt)
	if err != nil {
		createdAt = time.Time{}
	}
	out := &socialnet.Tweet{
		ID:         socialnet.TweetID(t.ID),
		AuthorID:   socialnet.AccountID(t.User.ID),
		CreatedAt:  createdAt,
		Kind:       parseKind(t.Kind),
		Source:     parseSource(t.Source),
		Text:       t.Text,
		Hashtags:   append([]string(nil), t.Entities.Hashtags...),
		URLs:       append([]string(nil), t.Entities.URLs...),
		Topic:      t.Topic,
		CampaignID: socialnet.NoCampaign,
	}
	for _, m := range t.Entities.Mentions {
		out.Mentions = append(out.Mentions, socialnet.AccountID(m.ID))
	}
	if t.Spam != nil {
		out.Spam = *t.Spam
	}
	if t.CampaignID != nil {
		out.CampaignID = *t.CampaignID
	}
	return out, DecodeUser(&t.User)
}

func parseKind(s string) socialnet.TweetKind {
	switch s {
	case "retweet":
		return socialnet.KindRetweet
	case "quote":
		return socialnet.KindQuote
	default:
		return socialnet.KindTweet
	}
}

func parseSource(s string) socialnet.Source {
	switch s {
	case "web":
		return socialnet.SourceWeb
	case "mobile":
		return socialnet.SourceMobile
	case "third-party":
		return socialnet.SourceThirdParty
	default:
		return socialnet.SourceOther
	}
}

// DecodeUser reconstructs an account profile from its wire form. The
// result carries only the publicly observable fields (never Kind or
// campaign ground truth) and is detached from any world.
func DecodeUser(u *User) *socialnet.Account {
	if u == nil {
		return nil
	}
	createdAt, err := time.Parse(time.RFC3339, u.CreatedAt)
	if err != nil {
		createdAt = time.Time{}
	}
	a := &socialnet.Account{
		ID:                  socialnet.AccountID(u.ID),
		ScreenName:          u.ScreenName,
		Name:                u.Name,
		Description:         u.Description,
		CreatedAt:           createdAt,
		FriendsCount:        u.FriendsCount,
		FollowersCount:      u.FollowersCount,
		ListedCount:         u.ListedCount,
		FavouritesCount:     u.FavouritesCount,
		StatusesCount:       u.StatusesCount,
		Verified:            u.Verified,
		DefaultProfileImage: u.DefaultProfile,
		Suspended:           u.Suspended,
		Kind:                socialnet.KindNormal, // wire carries no ground truth
		CampaignID:          socialnet.NoCampaign,
	}
	return a
}
