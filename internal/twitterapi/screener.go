package twitterapi

import (
	"context"
	"strconv"
	"strings"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// RemoteScreener adapts the REST client to the pseudo-honeypot monitor's
// Screener interface, so node selection can run against a remote twitterd
// exactly as it runs against an in-process world. Lookup failures surface
// as empty results; the monitor's fallback logic tolerates short batches.
type RemoteScreener struct {
	Client *Client
	// Timeout bounds each search call (default 10s).
	Timeout time.Duration
}

// Screen implements the monitor's screening through /1.1/users/search.
func (s *RemoteScreener) Screen(q socialnet.ScreenQuery, _ time.Time) []*socialnet.Account {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	sq := SearchQuery{
		Attr:       q.Selector.Attr.Key(),
		Count:      q.Count,
		Tolerance:  q.Tolerance,
		ActiveOnly: q.ActiveOnly,
	}
	switch q.Selector.Attr {
	case socialnet.AttrHashtag:
		sq.Category = q.Selector.Category.String()
	case socialnet.AttrTrend:
		sq.Trend = trendName(q.Selector.Trend)
	case socialnet.AttrRandom:
	default:
		sq.Value = q.Selector.Value
	}
	users, err := s.Client.UsersSearch(ctx, sq)
	if err != nil {
		return nil
	}
	out := make([]*socialnet.Account, 0, len(users))
	for i := range users {
		a := DecodeUser(&users[i])
		if a == nil {
			continue
		}
		if _, excluded := q.Exclude[a.ID]; excluded {
			continue
		}
		if q.MaxFriendFollowerRatio > 0 &&
			a.FriendFollowerRatio() > q.MaxFriendFollowerRatio {
			continue
		}
		out = append(out, a)
	}
	return out
}

// DecodeTweet reconstructs a tweet (and its author profile) from the wire
// form, for monitors running against a remote stream. Oracle fields are
// honoured only when present (evaluation streams). The result owns all of
// its memory — strings are copied out of the wire form — so it is safe to
// retain from a Stream handler even though the stream decoder reuses its
// buffers (see Client.Stream).
func DecodeTweet(t *Tweet) (*socialnet.Tweet, *socialnet.Account) {
	if t == nil {
		return nil, nil
	}
	out := &socialnet.Tweet{CampaignID: socialnet.NoCampaign}
	convertTweet(t, out)
	out.Text = strings.Clone(out.Text)
	out.Topic = strings.Clone(out.Topic)
	for i, s := range out.Hashtags {
		out.Hashtags[i] = strings.Clone(s)
	}
	for i, s := range out.URLs {
		out.URLs[i] = strings.Clone(s)
	}
	return out, DecodeUser(&t.User)
}

// convertTweet fills dst from the wire tweet without copying string data:
// dst's strings alias t's. The caller decides ownership.
func convertTweet(t *Tweet, dst *socialnet.Tweet) {
	createdAt, err := time.Parse(time.RFC3339Nano, t.CreatedAt)
	if err != nil {
		createdAt = time.Time{}
	}
	dst.ID = socialnet.TweetID(t.ID)
	dst.AuthorID = socialnet.AccountID(t.User.ID)
	dst.CreatedAt = createdAt
	dst.Kind = parseKind(t.Kind)
	dst.Source = parseSource(t.Source)
	dst.Text = t.Text
	dst.Hashtags = append(dst.Hashtags[:0], t.Entities.Hashtags...)
	dst.URLs = append(dst.URLs[:0], t.Entities.URLs...)
	dst.Topic = t.Topic
	dst.Mentions = dst.Mentions[:0]
	for _, m := range t.Entities.Mentions {
		dst.Mentions = append(dst.Mentions, socialnet.AccountID(m.ID))
	}
	dst.Spam = false
	dst.CampaignID = socialnet.NoCampaign
	if t.Spam != nil {
		dst.Spam = *t.Spam
	}
	if t.CampaignID != nil {
		dst.CampaignID = *t.CampaignID
	}
}

// TweetScratch converts wire tweets into a reusable socialnet.Tweet with
// no per-tweet allocations: Convert's result and its strings alias both
// the scratch and the wire tweet, valid only until the next Convert.
// Retainers must call socialnet's Tweet.Clone. This is the conversion
// counterpart of StreamDecoder for allocation-free stream processing;
// DecodeTweet remains the owning (copying) form.
type TweetScratch struct {
	t socialnet.Tweet
}

// Convert fills the scratch tweet from wt and returns it.
func (s *TweetScratch) Convert(wt *Tweet) *socialnet.Tweet {
	convertTweet(wt, &s.t)
	return &s.t
}

func parseKind(s string) socialnet.TweetKind {
	switch s {
	case "retweet":
		return socialnet.KindRetweet
	case "quote":
		return socialnet.KindQuote
	default:
		return socialnet.KindTweet
	}
}

func parseSource(s string) socialnet.Source {
	switch s {
	case "web":
		return socialnet.SourceWeb
	case "mobile":
		return socialnet.SourceMobile
	case "third-party":
		return socialnet.SourceThirdParty
	default:
		return socialnet.SourceOther
	}
}

// DecodeUser reconstructs an account profile from its wire form. The
// result carries only the publicly observable fields (never Kind or
// campaign ground truth) and is detached from any world.
func DecodeUser(u *User) *socialnet.Account {
	if u == nil {
		return nil
	}
	createdAt, err := time.Parse(time.RFC3339, u.CreatedAt)
	if err != nil {
		createdAt = time.Time{}
	}
	// Copy the strings: profiles outlive the stream decoder's scratch
	// buffers (see Client.Stream).
	a := &socialnet.Account{
		ID:                  socialnet.AccountID(u.ID),
		ScreenName:          strings.Clone(u.ScreenName),
		Name:                strings.Clone(u.Name),
		Description:         strings.Clone(u.Description),
		CreatedAt:           createdAt,
		FriendsCount:        u.FriendsCount,
		FollowersCount:      u.FollowersCount,
		ListedCount:         u.ListedCount,
		FavouritesCount:     u.FavouritesCount,
		StatusesCount:       u.StatusesCount,
		Verified:            u.Verified,
		DefaultProfileImage: u.DefaultProfile,
		Suspended:           u.Suspended,
		Kind:                socialnet.KindNormal, // wire carries no ground truth
		CampaignID:          socialnet.NoCampaign,
	}
	if len(u.ProfileImageHash) == 32 {
		if hi, err := strconv.ParseUint(u.ProfileImageHash[:16], 16, 64); err == nil {
			if lo, err := strconv.ParseUint(u.ProfileImageHash[16:], 16, 64); err == nil {
				a.ProfileImageHash = imagehash.Hash{Hi: hi, Lo: lo}
			}
		}
	}
	if u.LastPostAt != "" {
		if lastPost, err := time.Parse(time.RFC3339, u.LastPostAt); err == nil {
			a.SetLastPostAt(lastPost)
		}
	}
	return a
}
