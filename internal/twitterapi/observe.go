package twitterapi

import (
	"net/http"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// clientInstruments is the client's view of the metrics registry
// (DESIGN.md §9). Stream counters mirror how long-lived statuses/filter
// attachments behave: connects, reconnect attempts, and the backoff ladder.
type clientInstruments struct {
	connects     *metrics.Counter
	reconnects   *metrics.Counter
	streamTweets *metrics.Counter
	backoff      *metrics.Gauge
	rateLimited  *metrics.Counter
	reqSecs      *metrics.HistogramVec
}

func newClientInstruments(r *metrics.Registry) *clientInstruments {
	return &clientInstruments{
		connects: r.Counter("ph_stream_connects_total",
			"Successful statuses/filter stream attachments."),
		reconnects: r.Counter("ph_stream_reconnects_total",
			"Stream re-establishment attempts after a drop or clean close."),
		streamTweets: r.Counter("ph_stream_tweets_total",
			"Tweets delivered by the streaming consumer."),
		backoff: r.Gauge("ph_stream_backoff_seconds",
			"Reconnect delay most recently applied (resets after a healthy read)."),
		rateLimited: r.Counter("ph_client_rate_limited_total",
			"HTTP 429 responses observed by the REST client."),
		reqSecs: r.HistogramVec("ph_client_request_seconds",
			"REST request latency by endpoint path.", nil, "path"),
	}
}

// serverInstruments is the API server's view of the metrics registry.
type serverInstruments struct {
	requests      *metrics.CounterVec
	reqSecs       *metrics.HistogramVec
	rateLimited   *metrics.CounterVec
	streams       *metrics.Gauge
	streamTweets  *metrics.Counter
	streamDropped *metrics.Counter
}

func newServerInstruments(r *metrics.Registry) *serverInstruments {
	return &serverInstruments{
		requests: r.CounterVec("ph_api_requests_total",
			"REST requests served, by endpoint class.", "endpoint"),
		reqSecs: r.HistogramVec("ph_api_request_seconds",
			"REST request latency by endpoint class.", nil, "endpoint"),
		rateLimited: r.CounterVec("ph_api_rate_limited_total",
			"Requests rejected with 429, by endpoint class.", "endpoint"),
		streams: r.Gauge("ph_api_streams",
			"Currently connected statuses/filter streams."),
		streamTweets: r.Counter("ph_api_stream_tweets_total",
			"Tweets fanned out to connected streams."),
		streamDropped: r.Counter("ph_api_stream_dropped_total",
			"Tweets dropped on slow stream consumers (limit notices)."),
	}
}

// observed wraps a REST handler with request counting and latency timing.
func (s *Server) observed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.ins.requests.With(endpoint)
	latency := s.ins.reqSecs.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		h(w, r)
		latency.ObserveDuration(start)
	}
}
