package twitterapi

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeTweet ensures arbitrary wire bytes never panic the stream
// decoder path (unmarshal + DecodeTweet).
func FuzzDecodeTweet(f *testing.F) {
	f.Add([]byte(`{"id":1,"text":"hi","user":{"id":2,"screen_name":"x"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"created_at":"garbage","entities":{"user_mentions":[{"id":-1}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var wt Tweet
		if err := json.Unmarshal(data, &wt); err != nil {
			return
		}
		tweet, sender := DecodeTweet(&wt)
		if tweet == nil {
			t.Fatal("valid wire tweet decoded to nil")
		}
		_ = sender
	})
}
