//go:build race

package twitterapi

// raceEnabled skips allocation-count assertions under the race detector,
// whose instrumentation changes what the runtime allocates.
const raceEnabled = true
