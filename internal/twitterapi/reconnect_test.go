package twitterapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyStream serves statuses/filter but closes the connection after one
// tweet, forcing the client to reconnect.
type flakyStream struct {
	connects atomic.Int64
	tweets   atomic.Int64
}

func (f *flakyStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/1.1/statuses/filter.json" {
		http.NotFound(w, r)
		return
	}
	f.connects.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	_ = enc.Encode(Tweet{ID: f.tweets.Add(1)})
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
	// Return, closing this response — a dropped stream.
}

func TestStreamReconnectsAfterDrop(t *testing.T) {
	flaky := &flakyStream{}
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.InitialBackoff = time.Millisecond
	client.MaxBackoff = 5 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var got []int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{}, func(tw Tweet) {
			mu.Lock()
			got = append(got, tw.ID)
			if len(got) >= 4 {
				cancel()
			}
			mu.Unlock()
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cancel()
		<-done
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 4 {
		t.Fatalf("received %d tweets across reconnects, want >= 4", len(got))
	}
	if flaky.connects.Load() < 4 {
		t.Fatalf("connected %d times, want >= 4", flaky.connects.Load())
	}
	// Tweets arrive in connection order: ids increase.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

// rejectingServer answers statuses/filter with a 400 — a client error the
// Stream loop must NOT retry.
type rejectingServer struct {
	hits atomic.Int64
}

func (s *rejectingServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	writeErr(w, http.StatusBadRequest, "bad filter")
}

func TestStreamStopsOnClientError(t *testing.T) {
	rejecting := &rejectingServer{}
	srv := httptest.NewServer(rejecting)
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.InitialBackoff = time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := client.Stream(ctx, StreamFilter{}, func(Tweet) {})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if rejecting.hits.Load() != 1 {
		t.Fatalf("client retried a 400: %d hits", rejecting.hits.Load())
	}
}

func TestStreamContextCancellation(t *testing.T) {
	// A server that accepts the stream but never sends anything.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if flusher, ok := w.(http.Flusher); ok {
			flusher.Flush()
		}
		<-r.Context().Done()
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- client.Stream(ctx, StreamFilter{}, func(Tweet) {})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not return after cancellation")
	}
}
