package twitterapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func TestRateLimiterWindows(t *testing.T) {
	rl := newRateLimiter(2, time.Minute)
	now := time.Unix(0, 0)
	rl.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("x"); !ok {
			t.Fatalf("request %d denied within limit", i)
		}
	}
	ok, retry := rl.allow("x")
	if ok {
		t.Fatal("third request allowed")
	}
	if retry <= 0 || retry > time.Minute {
		t.Fatalf("retry hint %v", retry)
	}
	// A different endpoint has its own budget.
	if ok, _ := rl.allow("y"); !ok {
		t.Fatal("separate endpoint throttled")
	}
	// The window resets.
	now = now.Add(2 * time.Minute)
	if ok, _ := rl.allow("x"); !ok {
		t.Fatal("request denied after window reset")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	var rl *rateLimiter
	if ok, _ := rl.allow("x"); !ok {
		t.Fatal("nil limiter throttled")
	}
	rl = newRateLimiter(0, time.Minute)
	if ok, _ := rl.allow("x"); !ok {
		t.Fatal("zero-limit limiter throttled")
	}
}

func TestServerRateLimitsRESTEndpoints(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(socialnet.NewEngine(w), WithRateLimit(3, time.Hour))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Raw requests (bypassing the client's retry) to observe the 429.
	url := ts.URL + "/1.1/trends.json"
	var last *http.Response
	for i := 0; i < 4; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		last = resp
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("4th request status %d, want 429", last.StatusCode)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
}

func TestClientRetriesAfter429(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "0")
			writeErr(w, http.StatusTooManyRequests, "slow down")
			return
		}
		writeJSON(w, SimStats{Hours: 7})
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.MaxBackoff = 50 * time.Millisecond
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats after 429: %v", err)
	}
	if stats.Hours != 7 || hits != 2 {
		t.Fatalf("stats=%+v hits=%d", stats, hits)
	}
}

func TestClientGivesUpAfterSecond429(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		writeErr(w, http.StatusTooManyRequests, "slow down")
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.MaxBackoff = 20 * time.Millisecond
	_, err := client.Stats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("want persistent 429 error, got %v", err)
	}
}
