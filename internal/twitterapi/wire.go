// Package twitterapi provides an HTTP emulation of the two Twitter
// developer APIs the paper's implementation relies on (§V-A): the Streaming
// API (statuses/filter with mention tracking, delivered as chunked NDJSON)
// and the REST API (user lookup, account search, trends). The Server wraps
// a socialnet Engine; the Client mirrors the Tweepy-style consumer with
// automatic reconnection.
//
// Ground-truth fields (spam flags, campaign ids, account kinds) are never
// exposed on the wire unless the server is explicitly constructed with the
// evaluation oracle enabled — the detection pipeline sees only what the
// real APIs would publish.
package twitterapi

import (
	"strings"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// User is the wire form of an account profile, mirroring the fields of
// Twitter user JSON that the paper's feature extractor consumes.
type User struct {
	ID              int64  `json:"id"`
	ScreenName      string `json:"screen_name"`
	Name            string `json:"name"`
	Description     string `json:"description"`
	CreatedAt       string `json:"created_at"`
	FriendsCount    int    `json:"friends_count"`
	FollowersCount  int    `json:"followers_count"`
	ListedCount     int    `json:"listed_count"`
	FavouritesCount int    `json:"favourites_count"`
	StatusesCount   int    `json:"statuses_count"`
	Verified        bool   `json:"verified"`
	DefaultProfile  bool   `json:"default_profile_image"`
	// ProfileImageHash stands in for the profile image URL: the dHash the
	// labeling pipeline would compute after downloading the image.
	ProfileImageHash string `json:"profile_image_hash"`
	Suspended        bool   `json:"suspended"`
	// LastPostAt supports active/dormant screening (observable from the
	// user's public timeline).
	LastPostAt string `json:"last_post_at,omitempty"`
}

// Mention is one user-mention entity.
type Mention struct {
	ID         int64  `json:"id"`
	ScreenName string `json:"screen_name"`
}

// Entities carries the tweet's hashtag, mention, and URL entities.
type Entities struct {
	Hashtags []string  `json:"hashtags"`
	Mentions []Mention `json:"user_mentions"`
	URLs     []string  `json:"urls"`
}

// Tweet is the wire form of a status.
type Tweet struct {
	ID        int64    `json:"id"`
	CreatedAt string   `json:"created_at"`
	Text      string   `json:"text"`
	Kind      string   `json:"kind"` // tweet | retweet | quote
	Source    string   `json:"source"`
	User      User     `json:"user"`
	Entities  Entities `json:"entities"`
	Topic     string   `json:"topic,omitempty"`

	// Spam and CampaignID are populated only by oracle-enabled servers,
	// for evaluation harnesses. They are absent from normal streams.
	Spam       *bool `json:"x_oracle_spam,omitempty"`
	CampaignID *int  `json:"x_oracle_campaign,omitempty"`

	// XMentionUsers, when present, embeds the mentioned users' profile
	// snapshots index-aligned with Entities.Mentions (a zero-ID entry marks
	// a mention whose profile could not be resolved). The sharded
	// coordinator uses it to ship receiver snapshots to worker processes in
	// one line instead of per-mention REST lookups; plain API streams never
	// set it. XAuthorMissing marks a tweet whose author profile could not
	// be resolved at encode time, distinguishing that from an author with
	// zero-valued fields.
	XMentionUsers  []User `json:"x_mention_users,omitempty"`
	XAuthorMissing bool   `json:"x_author_missing,omitempty"`
}

// Clone returns a deep copy of the tweet that owns all of its memory.
// Stream handlers need it before retaining a tweet (or any string or slice
// reachable from it) beyond the callback: the stream decoder reuses its
// buffers between lines (see Client.Stream).
func (t Tweet) Clone() Tweet {
	c := t
	c.CreatedAt = strings.Clone(t.CreatedAt)
	c.Text = strings.Clone(t.Text)
	c.Kind = strings.Clone(t.Kind)
	c.Source = strings.Clone(t.Source)
	c.Topic = strings.Clone(t.Topic)
	c.User = t.User.clone()
	if t.Entities.Hashtags != nil {
		c.Entities.Hashtags = cloneStrings(t.Entities.Hashtags)
	}
	if t.Entities.URLs != nil {
		c.Entities.URLs = cloneStrings(t.Entities.URLs)
	}
	if t.Entities.Mentions != nil {
		c.Entities.Mentions = make([]Mention, len(t.Entities.Mentions))
		for i, m := range t.Entities.Mentions {
			c.Entities.Mentions[i] = Mention{ID: m.ID, ScreenName: strings.Clone(m.ScreenName)}
		}
	}
	if t.XMentionUsers != nil {
		c.XMentionUsers = make([]User, len(t.XMentionUsers))
		for i, u := range t.XMentionUsers {
			c.XMentionUsers[i] = u.clone()
		}
	}
	if t.Spam != nil {
		v := *t.Spam
		c.Spam = &v
	}
	if t.CampaignID != nil {
		v := *t.CampaignID
		c.CampaignID = &v
	}
	return c
}

func (u User) clone() User {
	c := u
	c.ScreenName = strings.Clone(u.ScreenName)
	c.Name = strings.Clone(u.Name)
	c.Description = strings.Clone(u.Description)
	c.CreatedAt = strings.Clone(u.CreatedAt)
	c.ProfileImageHash = strings.Clone(u.ProfileImageHash)
	c.LastPostAt = strings.Clone(u.LastPostAt)
	return c
}

func cloneStrings(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.Clone(s)
	}
	return out
}

// Trend is one entry of the trends endpoint.
type Trend struct {
	Name   string  `json:"name"`
	State  string  `json:"state"`
	Volume float64 `json:"volume"`
}

// SimStats reports simulation counters via /sim/stats.
type SimStats struct {
	Hours         int    `json:"hours"`
	TweetsTotal   int64  `json:"tweets_total"`
	MentionTweets int64  `json:"mention_tweets"`
	Suspensions   int64  `json:"suspensions"`
	Now           string `json:"now"`
}

// APIError is the error envelope used by non-2xx responses.
type APIError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return e.Message }

// encodeUser converts an account to its wire form at instant now.
func encodeUser(a *socialnet.Account) User {
	u := User{
		ID:               int64(a.ID),
		ScreenName:       a.ScreenName,
		Name:             a.Name,
		Description:      a.Description,
		CreatedAt:        a.CreatedAt.Format(time.RFC3339Nano),
		FriendsCount:     a.FriendsCount,
		FollowersCount:   a.FollowersCount,
		ListedCount:      a.ListedCount,
		FavouritesCount:  a.FavouritesCount,
		StatusesCount:    a.StatusesCount,
		Verified:         a.Verified,
		DefaultProfile:   a.DefaultProfileImage,
		ProfileImageHash: a.ProfileImageHash.String(),
		Suspended:        a.Suspended,
	}
	if !a.LastPostAt().IsZero() {
		u.LastPostAt = a.LastPostAt().Format(time.RFC3339Nano)
	}
	return u
}

// encodeTweet converts a tweet to its wire form. lookup resolves mention
// ids to screen names; oracle controls ground-truth exposure.
func encodeTweet(t *socialnet.Tweet, lookup func(socialnet.AccountID) *socialnet.Account, oracle bool) Tweet {
	author := lookup(t.AuthorID)
	wire := Tweet{
		ID:        int64(t.ID),
		CreatedAt: t.CreatedAt.Format(time.RFC3339Nano),
		Text:      t.Text,
		Kind:      t.Kind.String(),
		Source:    t.Source.String(),
		Topic:     t.Topic,
		Entities: Entities{
			Hashtags: append([]string(nil), t.Hashtags...),
			URLs:     append([]string(nil), t.URLs...),
		},
	}
	if author != nil {
		wire.User = encodeUser(author)
	}
	for _, id := range t.Mentions {
		m := Mention{ID: int64(id)}
		if a := lookup(id); a != nil {
			m.ScreenName = a.ScreenName
		}
		wire.Entities.Mentions = append(wire.Entities.Mentions, m)
	}
	if oracle {
		spam := t.Spam
		campaign := t.CampaignID
		wire.Spam = &spam
		wire.CampaignID = &campaign
	}
	return wire
}

// EncodeTweet converts a tweet to its wire form, optionally embedding the
// author's and mentioned users' profile snapshots (x_mention_users). The
// encoding freezes the profiles at call time, so encoding on the engine
// goroutine at emit time captures exactly the values an in-process match
// snapshot would — the property the sharded proc-mode wire depends on.
// Ground truth is never exposed.
func EncodeTweet(t *socialnet.Tweet, lookup func(socialnet.AccountID) *socialnet.Account, embedMentions bool) Tweet {
	wire := encodeTweet(t, lookup, false)
	if wire.User.ID == 0 {
		// Author lookup failed: keep the true author id on the wire (the
		// mention filter needs it) but mark the profile as absent.
		wire.User.ID = int64(t.AuthorID)
		wire.XAuthorMissing = true
	}
	if embedMentions && len(t.Mentions) > 0 {
		wire.XMentionUsers = make([]User, len(t.Mentions))
		for i, id := range t.Mentions {
			if a := lookup(id); a != nil {
				wire.XMentionUsers[i] = encodeUser(a)
			}
		}
	}
	return wire
}
