package twitterapi

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// streamBuffer is the per-connection tweet buffer. It absorbs the burst an
// hour-tick produces; on overflow the server drops tweets and counts them,
// mirroring the real Streaming API's limit notices for slow consumers.
const streamBuffer = 4096

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithOracle exposes ground-truth spam fields on streamed tweets. Only
// evaluation harnesses should enable this.
func WithOracle() ServerOption {
	return func(s *Server) { s.oracle = true }
}

// WithSeed sets the seed for the server's screening rng.
func WithSeed(seed int64) ServerOption {
	return func(s *Server) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithMetrics routes the server's instrumentation — and the /metrics
// endpoint it serves — through r instead of metrics.Default().
func WithMetrics(r *metrics.Registry) ServerOption {
	return func(s *Server) { s.reg = r }
}

// WithTracer serves t's ring buffer at GET /debug/traces and
// GET /debug/traces/{id}.
func WithTracer(t *trace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithPprof mounts net/http/pprof under /debug/pprof/. Profiling exposes
// internals, so it stays off unless the operator opts in (-pprof).
func WithPprof() ServerOption {
	return func(s *Server) { s.pprof = true }
}

// WithHealth enriches the /healthz body with extra sections before it is
// encoded — twitterd attaches the WAL durability status (last checkpoint
// seq, segment count, last fsync error) through it when journaling to
// -store-dir, so durable state stops being healthy-by-omission.
func WithHealth(extra func(*metrics.Health)) ServerOption {
	return func(s *Server) { s.healthExtras = append(s.healthExtras, extra) }
}

// WithAdvanceHook calls fn with the hour count after every successful
// time advance (tick or POST /sim/advance.json), while the simulation is
// still paused. twitterd journals simulated time through it so a restarted
// daemon can fast-forward to where the world left off.
func WithAdvanceHook(fn func(hours int)) ServerOption {
	return func(s *Server) { s.advanceHook = fn }
}

// Server exposes a socialnet Engine over the emulated Twitter API. All
// engine access is serialized through an internal mutex, so handlers may
// run concurrently.
type Server struct {
	mu     sync.Mutex
	engine *socialnet.Engine
	rng    *rand.Rand
	oracle bool

	streamsMu sync.Mutex
	streams   map[int]*stream
	nextID    int

	limiter     *rateLimiter
	mux         *http.ServeMux
	reg         *metrics.Registry
	ins         *serverInstruments
	tracer      *trace.Tracer
	pprof       bool
	advanceHook func(hours int)

	healthExtras []func(*metrics.Health)
}

// stream is one connected streaming client.
type stream struct {
	mentionsOf map[socialnet.AccountID]struct{}
	follow     map[socialnet.AccountID]struct{}
	all        bool
	ch         chan *socialnet.Tweet
	dropped    int64
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps engine in an API server.
func NewServer(engine *socialnet.Engine, opts ...ServerOption) *Server {
	s := &Server{
		engine:  engine,
		rng:     rand.New(rand.NewSource(42)),
		streams: make(map[int]*stream),
		mux:     http.NewServeMux(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = metrics.Default()
	}
	s.ins = newServerInstruments(s.reg)
	// One engine subscription fans out to every connected stream.
	engine.Subscribe(s.dispatch)

	s.mux.HandleFunc("POST /1.1/statuses/filter.json", s.handleFilter)
	s.mux.HandleFunc("GET /1.1/users/show.json", s.observed("users/show", s.rateLimited("users/show", s.handleUserShow)))
	s.mux.HandleFunc("GET /1.1/users/lookup.json", s.observed("users/lookup", s.rateLimited("users/lookup", s.handleUserLookup)))
	s.mux.HandleFunc("GET /1.1/users/search.json", s.observed("users/search", s.rateLimited("users/search", s.handleUserSearch)))
	s.mux.HandleFunc("GET /1.1/trends.json", s.observed("trends", s.rateLimited("trends", s.handleTrends)))
	s.mux.HandleFunc("POST /sim/advance.json", s.observed("sim/advance", s.handleAdvance))
	s.mux.HandleFunc("GET /sim/stats.json", s.observed("sim/stats", s.handleStats))
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.Handle("GET /healthz", metrics.HealthHandlerFunc(s.healthExtras...))
	if s.tracer != nil {
		s.mux.Handle("GET /debug/traces", s.tracer.Handler())
		s.mux.Handle("GET /debug/traces/{id}", s.tracer.Handler())
	}
	if s.pprof {
		mountPprof(s.mux)
	}
	return s
}

// mountPprof attaches the net/http/pprof handlers, which register on
// http.DefaultServeMux only, to an explicit mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Advance runs n simulated hours. Safe for concurrent use.
func (s *Server) Advance(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.RunHours(n)
	if s.advanceHook != nil {
		s.advanceHook(n)
	}
}

// dispatch fans a generated tweet out to connected streams. It runs inside
// the engine's RunHours (under s.mu).
func (s *Server) dispatch(t *socialnet.Tweet) {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	for _, st := range s.streams {
		if !st.wants(t) {
			continue
		}
		select {
		case st.ch <- t:
			s.ins.streamTweets.Inc()
		default:
			st.dropped++
			s.ins.streamDropped.Inc()
		}
	}
}

func (st *stream) wants(t *socialnet.Tweet) bool {
	if st.all {
		return true
	}
	if _, ok := st.follow[t.AuthorID]; ok {
		return true
	}
	for _, m := range t.Mentions {
		if _, ok := st.mentionsOf[m]; ok {
			return true
		}
	}
	return false
}

// handleFilter implements POST /1.1/statuses/filter.json. Parameters:
//
//	track:  comma-separated @screen_name filters (mention tracking, as the
//	        paper configures Tweepy: "@user_account_name")
//	follow: comma-separated user ids whose own posts are delivered
//
// With neither parameter the full firehose is delivered. The response is
// an unbounded NDJSON stream.
func (s *Server) handleFilter(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad form: "+err.Error())
		return
	}
	st := &stream{
		mentionsOf: make(map[socialnet.AccountID]struct{}),
		follow:     make(map[socialnet.AccountID]struct{}),
		ch:         make(chan *socialnet.Tweet, streamBuffer),
	}
	track := r.Form.Get("track")
	follow := r.Form.Get("follow")
	if track == "" && follow == "" {
		st.all = true
	}
	s.mu.Lock()
	world := s.engine.World()
	for _, name := range splitNonEmpty(track) {
		name = strings.TrimPrefix(strings.TrimSpace(name), "@")
		if a := world.ByScreenName(name); a != nil {
			st.mentionsOf[a.ID] = struct{}{}
			st.follow[a.ID] = struct{}{}
		}
	}
	for _, idStr := range splitNonEmpty(follow) {
		id, err := strconv.ParseInt(strings.TrimSpace(idStr), 10, 64)
		if err != nil {
			continue
		}
		st.follow[socialnet.AccountID(id)] = struct{}{}
	}
	s.mu.Unlock()

	s.streamsMu.Lock()
	id := s.nextID
	s.nextID++
	s.streams[id] = st
	s.streamsMu.Unlock()
	s.ins.streams.Add(1)
	defer func() {
		s.ins.streams.Add(-1)
		s.streamsMu.Lock()
		delete(s.streams, id)
		s.streamsMu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-st.ch:
			s.mu.Lock()
			wire := encodeTweet(t, s.engine.World().Account, s.oracle)
			s.mu.Unlock()
			if err := enc.Encode(wire); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// handleUserShow implements GET /1.1/users/show.json with screen_name or
// user_id.
func (s *Server) handleUserShow(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	world := s.engine.World()
	var a *socialnet.Account
	if name := r.URL.Query().Get("screen_name"); name != "" {
		a = world.ByScreenName(strings.TrimPrefix(name, "@"))
	} else if idStr := r.URL.Query().Get("user_id"); idStr != "" {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad user_id")
			return
		}
		a = world.Account(socialnet.AccountID(id))
	}
	if a == nil {
		writeErr(w, http.StatusNotFound, "user not found")
		return
	}
	writeJSON(w, encodeUser(a))
}

// handleUserLookup implements GET /1.1/users/lookup.json?user_id=1,2,3.
// Unknown ids are skipped, as in the real API.
func (s *Server) handleUserLookup(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	world := s.engine.World()
	var users []User
	for _, idStr := range splitNonEmpty(r.URL.Query().Get("user_id")) {
		id, err := strconv.ParseInt(strings.TrimSpace(idStr), 10, 64)
		if err != nil {
			continue
		}
		if a := world.Account(socialnet.AccountID(id)); a != nil {
			users = append(users, encodeUser(a))
		}
	}
	writeJSON(w, users)
}

// handleUserSearch implements GET /1.1/users/search.json — the idealized
// account-screening endpoint (DESIGN.md §2). Parameters:
//
//	attr:      attribute key (socialnet.Attribute.Key)
//	value:     numeric sample value (profile attributes)
//	category:  hashtag category name (attr=hashtag)
//	trend:     trend state name (attr=trend)
//	count:     number of accounts
//	tolerance: relative band (optional)
//	active:    1 to require Active status
func (s *Server) handleUserSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr, err := socialnet.ParseAttribute(q.Get("attr"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	count, err := strconv.Atoi(q.Get("count"))
	if err != nil || count <= 0 {
		writeErr(w, http.StatusBadRequest, "bad count")
		return
	}
	sel := socialnet.Selector{Attr: attr}
	switch attr {
	case socialnet.AttrHashtag:
		sel.Category, err = parseCategory(q.Get("category"))
	case socialnet.AttrTrend:
		sel.Trend, err = parseTrend(q.Get("trend"))
	case socialnet.AttrRandom:
	default:
		sel.Value, err = strconv.ParseFloat(q.Get("value"), 64)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	query := socialnet.ScreenQuery{
		Selector:   sel,
		Count:      count,
		ActiveOnly: q.Get("active") == "1",
	}
	if tol := q.Get("tolerance"); tol != "" {
		query.Tolerance, err = strconv.ParseFloat(tol, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad tolerance")
			return
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	matches := s.engine.World().Screen(query, s.engine.Now(), s.rng)
	users := make([]User, 0, len(matches))
	for _, a := range matches {
		users = append(users, encodeUser(a))
	}
	writeJSON(w, users)
}

// handleTrends implements GET /1.1/trends.json?state=...
func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stateName := r.URL.Query().Get("state")
	var trends []Trend
	for _, topic := range s.engine.World().Trends().Topics() {
		if stateName != "" && trendName(topic.State) != stateName {
			continue
		}
		trends = append(trends, Trend{
			Name:   topic.Name,
			State:  trendName(topic.State),
			Volume: topic.Volume,
		})
	}
	writeJSON(w, trends)
}

// handleAdvance implements POST /sim/advance.json?hours=N.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	hours, err := strconv.Atoi(r.URL.Query().Get("hours"))
	if err != nil || hours <= 0 || hours > 10000 {
		writeErr(w, http.StatusBadRequest, "bad hours")
		return
	}
	s.Advance(hours)
	s.writeStats(w)
}

// handleStats implements GET /sim/stats.json.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeStats(w)
}

func (s *Server) writeStats(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := s.engine.Stats()
	writeJSON(w, SimStats{
		Hours:         stats.Hours,
		TweetsTotal:   stats.TweetsTotal,
		MentionTweets: stats.MentionTweets,
		Suspensions:   stats.Suspensions,
		Now:           s.engine.Now().Format(time.RFC3339),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing else to do.
		return
	}
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(APIError{Code: code, Message: msg})
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseCategory(name string) (socialnet.HashtagCategory, error) {
	if name == socialnet.HashtagNone.String() {
		return socialnet.HashtagNone, nil
	}
	for _, c := range socialnet.HashtagCategories {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("twitterapi: unknown hashtag category %q", name)
}

func parseTrend(name string) (socialnet.TrendState, error) {
	for _, s := range socialnet.TrendStates {
		if trendName(s) == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("twitterapi: unknown trend state %q", name)
}

// trendName is the wire name of a trend state (hyphenated, no spaces).
func trendName(s socialnet.TrendState) string {
	return strings.ReplaceAll(s.String(), " ", "-")
}
