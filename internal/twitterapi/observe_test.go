package twitterapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TestStreamReconnectMetrics injects repeated stream drops and reconciles
// the client's connect/reconnect/tweet counters with what the server saw.
func TestStreamReconnectMetrics(t *testing.T) {
	flaky := &flakyStream{}
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	reg := metrics.NewRegistry()
	client := NewClient(srv.URL, srv.Client())
	client.SetMetrics(reg)
	client.InitialBackoff = time.Millisecond
	client.MaxBackoff = 5 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{}, func(Tweet) {
			if delivered.Add(1) >= 5 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cancel()
		<-done
	}

	if got := reg.Counter("ph_stream_tweets_total", "").Value(); got != float64(delivered.Load()) {
		t.Fatalf("stream tweets counter = %v, want %d", got, delivered.Load())
	}
	if got := reg.Counter("ph_stream_connects_total", "").Value(); got != float64(flaky.connects.Load()) {
		t.Fatalf("connects counter = %v, server saw %d", got, flaky.connects.Load())
	}
	// Every cycle but the final cancelled one re-attaches.
	if got := reg.Counter("ph_stream_reconnects_total", "").Value(); got < 4 {
		t.Fatalf("reconnects counter = %v, want >= 4", got)
	}
}

// abruptStream delivers one tweet per connection then kills the connection
// mid-stream (no terminal chunk), so the client sees a read error — the
// "delivered then dropped" shape that previously kept the backoff ladder
// climbing forever.
type abruptStream struct {
	connects atomic.Int64
}

func (f *abruptStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.connects.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(Tweet{ID: f.connects.Load()})
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
	panic(http.ErrAbortHandler)
}

// TestStreamBackoffResetsAfterHealthyRead pins the backoff-reset fix: a
// connection that delivered at least one tweet restarts the ladder at
// InitialBackoff, so across many delivered-then-dropped cycles the applied
// backoff never climbs toward MaxBackoff.
func TestStreamBackoffResetsAfterHealthyRead(t *testing.T) {
	abrupt := &abruptStream{}
	srv := httptest.NewServer(abrupt)
	defer srv.Close()

	reg := metrics.NewRegistry()
	client := NewClient(srv.URL, srv.Client())
	client.SetMetrics(reg)
	client.InitialBackoff = time.Millisecond
	client.MaxBackoff = 64 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{}, func(Tweet) {
			if delivered.Add(1) >= 8 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cancel()
		<-done
	}
	if delivered.Load() < 8 {
		t.Fatalf("delivered %d tweets, want >= 8", delivered.Load())
	}
	// The gauge records the most recently applied delay. Un-reset, eight
	// doublings from 1ms would have pinned it at the 64ms cap.
	got := reg.Gauge("ph_stream_backoff_seconds", "").Value()
	if want := client.InitialBackoff.Seconds(); got != want {
		t.Fatalf("backoff gauge = %vs after healthy reads, want %vs", got, want)
	}
}

// TestClientRateLimitMetrics covers the 429-then-retry path: the rate-limit
// counter ticks and the request latency histogram records the call.
func TestClientRateLimitMetrics(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "0")
			writeErr(w, http.StatusTooManyRequests, "slow down")
			return
		}
		writeJSON(w, SimStats{Hours: 3})
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	client := NewClient(srv.URL, srv.Client())
	client.SetMetrics(reg)
	client.MaxBackoff = 20 * time.Millisecond
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("Stats after 429: %v", err)
	}
	if got := reg.Counter("ph_client_rate_limited_total", "").Value(); got != 1 {
		t.Fatalf("rate-limited counter = %v, want 1", got)
	}
	reqSecs := reg.HistogramVec("ph_client_request_seconds", "", nil, "path")
	if got := reqSecs.With("/sim/stats.json").Count(); got != 1 {
		t.Fatalf("request latency count = %d, want 1", got)
	}
}

// TestServerMetricsEndpoints exercises the server-side observability stack
// end to end: REST traffic and a 429 show up in the registry, /metrics
// serves valid Prometheus text containing them, and /healthz answers.
func TestServerMetricsEndpoints(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := NewServer(socialnet.NewEngine(w),
		WithMetrics(reg), WithRateLimit(2, time.Hour))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/1.1/trends.json")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	requests := reg.CounterVec("ph_api_requests_total", "", "endpoint")
	if got := requests.With("trends").Value(); got != 3 {
		t.Fatalf("trends request counter = %v, want 3", got)
	}
	limited := reg.CounterVec("ph_api_rate_limited_total", "", "endpoint")
	if got := limited.With("trends").Value(); got != 1 {
		t.Fatalf("rate-limited counter = %v, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics not valid exposition text: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "ph_api_requests_total" && s.Labels["endpoint"] == "trends" {
			found = true
			if s.Value != 3 {
				t.Fatalf("exposed trends counter = %v, want 3", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("ph_api_requests_total{endpoint=\"trends\"} absent from /metrics")
	}

	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = health.Body.Close() }()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", health.StatusCode)
	}
	var hb struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(health.Body).Decode(&hb); err != nil || hb.Status != "ok" {
		t.Fatalf("/healthz body: %+v err=%v", hb, err)
	}
}
