package twitterapi

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TestSlowConsumerDropsInsteadOfBlocking fills a stream's buffer without a
// reader attached: dispatch must not block the engine and must count the
// overflow, mirroring the real Streaming API's limit notices.
func TestSlowConsumerDropsInsteadOfBlocking(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1000
	cfg.OrganicTweetsPerHour = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(socialnet.NewEngine(w))

	// Register a stream directly with a tiny buffer and no reader.
	st := &stream{
		all: true,
		ch:  make(chan *socialnet.Tweet, 4),
	}
	srv.streamsMu.Lock()
	srv.streams[0] = st
	srv.streamsMu.Unlock()

	// Advancing must complete despite the full buffer (would deadlock if
	// dispatch blocked on the channel).
	srv.Advance(2)

	if st.dropped == 0 {
		t.Fatal("no drops recorded for a slow consumer")
	}
	if len(st.ch) != cap(st.ch) {
		t.Fatalf("buffer holds %d, want full %d", len(st.ch), cap(st.ch))
	}
}

func TestStreamWantsFiltering(t *testing.T) {
	st := &stream{
		mentionsOf: map[socialnet.AccountID]struct{}{7: {}},
		follow:     map[socialnet.AccountID]struct{}{9: {}},
	}
	tests := []struct {
		name string
		t    *socialnet.Tweet
		want bool
	}{
		{name: "mention of tracked", t: &socialnet.Tweet{AuthorID: 1, Mentions: []socialnet.AccountID{7}}, want: true},
		{name: "authored by followed", t: &socialnet.Tweet{AuthorID: 9}, want: true},
		{name: "unrelated", t: &socialnet.Tweet{AuthorID: 1, Mentions: []socialnet.AccountID{2}}, want: false},
		{name: "no mentions", t: &socialnet.Tweet{AuthorID: 1}, want: false},
	}
	for _, tt := range tests {
		if got := st.wants(tt.t); got != tt.want {
			t.Errorf("%s: wants = %v, want %v", tt.name, got, tt.want)
		}
	}
	all := &stream{all: true}
	if !all.wants(&socialnet.Tweet{AuthorID: 1}) {
		t.Fatal("firehose stream rejected a tweet")
	}
}

func TestAdvanceRejectsBadHours(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 200
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(socialnet.NewEngine(w))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())

	for _, hours := range []int{0, -5, 100000} {
		if _, err := client.Advance(context.Background(), hours); err == nil {
			t.Fatalf("Advance(%d) accepted", hours)
		}
	}
}
