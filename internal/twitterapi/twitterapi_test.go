package twitterapi

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func newTestServer(t *testing.T, opts ...ServerOption) (*Server, *Client) {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(socialnet.NewEngine(w), opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

func TestUserShowBScreenName(t *testing.T) {
	srv, client := newTestServer(t)
	want := srv.engine.World().Accounts()[3]
	got, err := client.UserShow(context.Background(), want.ScreenName)
	if err != nil {
		t.Fatalf("UserShow: %v", err)
	}
	if got.ID != int64(want.ID) || got.FollowersCount != want.FollowersCount {
		t.Fatalf("UserShow mismatch: got %+v", got)
	}
}

func TestUserShowByID(t *testing.T) {
	srv, client := newTestServer(t)
	want := srv.engine.World().Accounts()[7]
	got, err := client.UserByID(context.Background(), int64(want.ID))
	if err != nil {
		t.Fatalf("UserByID: %v", err)
	}
	if got.ScreenName != want.ScreenName {
		t.Fatalf("UserByID returned %q, want %q", got.ScreenName, want.ScreenName)
	}
}

func TestUserShowNotFound(t *testing.T) {
	_, client := newTestServer(t)
	_, err := client.UserShow(context.Background(), "definitely_not_a_user_xyz")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("want 404 APIError, got %v", err)
	}
}

func TestUsersLookupSkipsUnknown(t *testing.T) {
	srv, client := newTestServer(t)
	accts := srv.engine.World().Accounts()
	ids := []int64{int64(accts[0].ID), 99999999, int64(accts[1].ID)}
	users, err := client.UsersLookup(context.Background(), ids)
	if err != nil {
		t.Fatalf("UsersLookup: %v", err)
	}
	if len(users) != 2 {
		t.Fatalf("UsersLookup returned %d users, want 2", len(users))
	}
}

func TestUsersSearchNumericAttribute(t *testing.T) {
	_, client := newTestServer(t)
	users, err := client.UsersSearch(context.Background(), SearchQuery{
		Attr:  "followers_count",
		Value: 1000,
		Count: 5,
	})
	if err != nil {
		t.Fatalf("UsersSearch: %v", err)
	}
	if len(users) == 0 {
		t.Fatal("no users found near followers=1000")
	}
	for _, u := range users {
		if u.FollowersCount < 650 || u.FollowersCount > 1350 {
			t.Fatalf("user %q followers %d outside band", u.ScreenName, u.FollowersCount)
		}
	}
}

func TestUsersSearchHashtagAndTrend(t *testing.T) {
	_, client := newTestServer(t)
	users, err := client.UsersSearch(context.Background(), SearchQuery{
		Attr:     "hashtag",
		Category: "social",
		Count:    5,
	})
	if err != nil || len(users) == 0 {
		t.Fatalf("hashtag search: %v (%d users)", err, len(users))
	}
	users, err = client.UsersSearch(context.Background(), SearchQuery{
		Attr:  "trend",
		Trend: "trending-up",
		Count: 5,
	})
	if err != nil || len(users) == 0 {
		t.Fatalf("trend search: %v (%d users)", err, len(users))
	}
}

func TestUsersSearchRejectsBadRequests(t *testing.T) {
	_, client := newTestServer(t)
	var apiErr *APIError
	_, err := client.UsersSearch(context.Background(), SearchQuery{Attr: "nope", Count: 5})
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Fatalf("bad attr: want 400, got %v", err)
	}
	_, err = client.UsersSearch(context.Background(), SearchQuery{Attr: "random", Count: 0})
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Fatalf("bad count: want 400, got %v", err)
	}
}

func TestTrendsEndpoint(t *testing.T) {
	_, client := newTestServer(t)
	all, err := client.Trends(context.Background(), "")
	if err != nil || len(all) == 0 {
		t.Fatalf("Trends: %v (%d)", err, len(all))
	}
	up, err := client.Trends(context.Background(), "trending-up")
	if err != nil {
		t.Fatalf("Trends(up): %v", err)
	}
	for _, tr := range up {
		if tr.State != "trending-up" {
			t.Fatalf("trend %q state %q, want trending-up", tr.Name, tr.State)
		}
	}
}

func TestAdvanceAndStats(t *testing.T) {
	_, client := newTestServer(t)
	stats, err := client.Advance(context.Background(), 2)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if stats.Hours != 2 || stats.TweetsTotal == 0 {
		t.Fatalf("stats after advance: %+v", stats)
	}
	again, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if again.TweetsTotal != stats.TweetsTotal {
		t.Fatal("Stats disagrees with Advance response")
	}
}

func TestStreamDeliversMentionFilteredTweets(t *testing.T) {
	srv, client := newTestServer(t)

	// Track the most attractive accounts so spam mentions hit them.
	var tracked []string
	trackedIDs := make(map[int64]struct{})
	world := srv.engine.World()
	now := srv.engine.Now()
	for _, a := range world.Accounts() {
		if world.Attraction(a, now) > 4 {
			tracked = append(tracked, "@"+a.ScreenName)
			trackedIDs[int64(a.ID)] = struct{}{}
		}
		if len(tracked) >= 20 {
			break
		}
	}
	if len(tracked) == 0 {
		t.Fatal("no attractive accounts to track")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var got []Tweet
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{Track: tracked}, func(tw Tweet) {
			mu.Lock()
			got = append(got, tw.Clone()) // retained past the callback
			mu.Unlock()
		})
	}()

	// Let the stream attach, then generate traffic.
	time.Sleep(50 * time.Millisecond)
	srv.Advance(3)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("stream delivered no tweets")
	}
	for _, tw := range got {
		if _, ok := trackedIDs[tw.User.ID]; ok {
			continue // tracked account's own post
		}
		found := false
		for _, m := range tw.Entities.Mentions {
			if _, ok := trackedIDs[m.ID]; ok {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stream delivered unrelated tweet %d", tw.ID)
		}
	}
}

func TestStreamFirehoseWithoutFilters(t *testing.T) {
	srv, client := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	count := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{}, func(Tweet) {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Advance(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n > 100 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if count == 0 {
		t.Fatal("firehose delivered nothing")
	}
}

func TestOracleFieldsHiddenByDefault(t *testing.T) {
	srv, client := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	sawOracle := false
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{}, func(tw Tweet) {
			mu.Lock()
			if tw.Spam != nil || tw.CampaignID != nil {
				sawOracle = true
			}
			n++
			mu.Unlock()
		})
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Advance(1)
	time.Sleep(300 * time.Millisecond)
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if n == 0 {
		t.Fatal("no tweets observed")
	}
	if sawOracle {
		t.Fatal("ground-truth fields leaked on a non-oracle stream")
	}
}

func TestOracleFieldsPresentWhenEnabled(t *testing.T) {
	srv, client := newTestServer(t, WithOracle())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	withOracle := 0
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, StreamFilter{}, func(tw Tweet) {
			mu.Lock()
			if tw.Spam != nil {
				withOracle++
			}
			n++
			mu.Unlock()
		})
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Advance(1)
	time.Sleep(300 * time.Millisecond)
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if n == 0 || withOracle != n {
		t.Fatalf("oracle fields on %d/%d tweets, want all", withOracle, n)
	}
}

func TestSplitNonEmpty(t *testing.T) {
	if got := splitNonEmpty(""); got != nil {
		t.Fatalf("splitNonEmpty(empty) = %v", got)
	}
	got := splitNonEmpty("a,,b, ,c")
	if len(got) != 3 {
		t.Fatalf("splitNonEmpty = %v, want 3 parts", got)
	}
}

func TestTrendNameMapping(t *testing.T) {
	if trendName(socialnet.TrendUp) != "trending-up" {
		t.Fatal("trendName(TrendUp) wrong")
	}
	if !strings.Contains(trendName(socialnet.TrendNone), "no-trending") {
		t.Fatal("trendName(TrendNone) wrong")
	}
	if _, err := parseTrend("trending-down"); err != nil {
		t.Fatal("parseTrend rejected valid state")
	}
	if _, err := parseTrend("bogus"); err == nil {
		t.Fatal("parseTrend accepted bogus state")
	}
	if _, err := parseCategory("social"); err != nil {
		t.Fatal("parseCategory rejected valid category")
	}
	if _, err := parseCategory("no hashtag"); err != nil {
		t.Fatal("parseCategory rejected no-hashtag")
	}
	if _, err := parseCategory("bogus"); err == nil {
		t.Fatal("parseCategory accepted bogus category")
	}
}

func TestEncodeTweetMentions(t *testing.T) {
	srv, _ := newTestServer(t)
	world := srv.engine.World()
	a := world.Accounts()[0]
	b := world.Accounts()[1]
	tw := &socialnet.Tweet{
		ID:        1,
		AuthorID:  a.ID,
		CreatedAt: time.Now(),
		Kind:      socialnet.KindTweet,
		Source:    socialnet.SourceWeb,
		Text:      "hi",
		Mentions:  []socialnet.AccountID{b.ID},
	}
	wire := encodeTweet(tw, world.Account, false)
	if wire.User.ID != int64(a.ID) {
		t.Fatal("author not encoded")
	}
	if len(wire.Entities.Mentions) != 1 || wire.Entities.Mentions[0].ScreenName != b.ScreenName {
		t.Fatal("mentions not encoded")
	}
	if wire.Spam != nil {
		t.Fatal("oracle fields in non-oracle encode")
	}
}
