package twitterapi

import "testing"

// TestStreamDecoderAllocFree pins the ingest decoder's steady-state
// allocation budget at zero: once the scratch buffers have grown to the
// stream's working size, decoding a line — escapes, entities, oracle
// fields and all — must not allocate.
func TestStreamDecoderAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	lines := [][]byte{
		[]byte(`{"id":101,"created_at":"2019-06-24T12:00:00Z","text":"free followers → https://spam.example #deal","kind":"tweet","source":"web","user":{"id":42,"screen_name":"bot_7","name":"Bot Seven","description":"I\nretweet","friends_count":1000,"followers_count":3,"statuses_count":12000},"entities":{"hashtags":["deal","free"],"user_mentions":[{"id":5,"screen_name":"victim"}],"urls":["https://spam.example"]},"x_oracle_spam":true,"x_oracle_campaign":7}`),
		[]byte(`{"id":102,"text":"plain organic tweet","user":{"id":43,"screen_name":"human"},"entities":{"hashtags":[],"user_mentions":[],"urls":[]}}`),
	}
	d := NewStreamDecoder()
	for _, l := range lines { // grow scratch to working size
		if _, err := d.Decode(l); err != nil {
			t.Fatal(err)
		}
	}
	if a := testing.AllocsPerRun(500, func() {
		for _, l := range lines {
			if _, err := d.Decode(l); err != nil {
				t.Fatal(err)
			}
		}
	}); a != 0 {
		t.Fatalf("steady-state Decode allocates %v per two lines, want 0", a)
	}
}

// TestTweetScratchAllocFree extends the budget through wire-to-socialnet
// conversion: Decode plus TweetScratch.Convert stays allocation-free.
func TestTweetScratchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	line := []byte(`{"id":101,"created_at":"2019-06-24T12:00:00Z","text":"free followers #deal","kind":"retweet","source":"mobile","user":{"id":42,"screen_name":"bot_7"},"entities":{"hashtags":["deal"],"user_mentions":[{"id":5,"screen_name":"victim"}],"urls":["https://spam.example"]}}`)
	d := NewStreamDecoder()
	var conv TweetScratch
	if tw, err := d.Decode(line); err != nil {
		t.Fatal(err)
	} else {
		conv.Convert(tw)
	}
	if a := testing.AllocsPerRun(500, func() {
		tw, err := d.Decode(line)
		if err != nil {
			t.Fatal(err)
		}
		if conv.Convert(tw) == nil {
			t.Fatal("nil conversion")
		}
	}); a != 0 {
		t.Fatalf("Decode+Convert allocates %v/op, want 0", a)
	}
}
