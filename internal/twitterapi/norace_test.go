//go:build !race

package twitterapi

const raceEnabled = false
