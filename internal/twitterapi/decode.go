package twitterapi

import (
	"errors"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"
)

// StreamDecoder decodes NDJSON stream lines into a reusable Tweet with no
// steady-state allocations: one hand-rolled parse over the line bytes, no
// reflection, no intermediate copies. String fields alias either the input
// line (the common no-escape case) or the decoder's unescape arena, and
// slice fields reuse the decoder's backing arrays, so the returned Tweet
// and everything it references is valid only until the next Decode call
// (or until the caller reuses line's backing array). Callers that retain a
// tweet — or any of its strings or slices — beyond that window must take a
// deep copy via Tweet.Clone.
//
// Decode is fuzz-verified against encoding/json (FuzzNDJSONDecode): for
// every input it accepts exactly when json.Unmarshal into a fresh Tweet
// accepts, and then produces a deeply equal value — including
// case-insensitive key matching, duplicate-key last-wins, null semantics
// per field kind, invalid-UTF-8 replacement, and the same nesting-depth
// bound.
type StreamDecoder struct {
	t Tweet

	// Scratch backings reused across decodes. The Tweet's slice fields are
	// re-sliced from these; the pointer fields point at spamVal/campVal.
	mentions []Mention
	hashtags []string
	urls     []string
	arena    []byte
	spamVal  bool
	campVal  int

	// Parser state for the current line.
	data  []byte
	pos   int
	depth int
}

// NewStreamDecoder creates a stream decoder with empty scratch buffers;
// the first decodes grow them to the stream's steady-state sizes.
func NewStreamDecoder() *StreamDecoder {
	return &StreamDecoder{}
}

// Decode errors carry no positional detail on purpose: they are static so
// the reconnect-handling error path stays allocation-free too.
var (
	errDecodeSyntax = errors.New("twitterapi: malformed NDJSON line")
	errDecodeType   = errors.New("twitterapi: NDJSON field has wrong type")
	errDecodeDepth  = errors.New("twitterapi: NDJSON nesting exceeds max depth")
)

// maxNDJSONDepth mirrors encoding/json's maxNestingDepth so the scratch
// decoder and the oracle reject the same pathological inputs.
const maxNDJSONDepth = 10000

// Decode parses one NDJSON line. The returned Tweet is owned by the
// decoder; see the type comment for the aliasing contract.
func (d *StreamDecoder) Decode(line []byte) (*Tweet, error) {
	d.data, d.pos, d.depth = line, 0, 0
	d.arena = d.arena[:0]
	d.t = Tweet{}
	d.skipWS()
	if d.pos >= len(d.data) {
		return nil, errDecodeSyntax
	}
	var err error
	switch d.data[d.pos] {
	case '{':
		err = d.parseObject((*StreamDecoder).tweetField)
	case 'n':
		// json.Unmarshal of `null` into a fresh struct is a no-op success.
		err = d.parseLiteral("null")
	default:
		err = errDecodeType
	}
	if err != nil {
		return nil, err
	}
	d.skipWS()
	if d.pos != len(d.data) {
		return nil, errDecodeSyntax
	}
	return &d.t, nil
}

// skipWS advances past JSON whitespace.
func (d *StreamDecoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

// parseObject consumes one object, dispatching every "key": value pair to
// field with the unescaped key bytes. field must consume exactly one value.
func (d *StreamDecoder) parseObject(field func(*StreamDecoder, []byte) error) error {
	d.depth++
	if d.depth > maxNDJSONDepth {
		return errDecodeDepth
	}
	d.pos++ // '{'
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != '"' {
			return errDecodeSyntax
		}
		key, err := d.parseStringRaw()
		if err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != ':' {
			return errDecodeSyntax
		}
		d.pos++
		d.skipWS()
		if err := field(d, key); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return errDecodeSyntax
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			d.depth--
			return nil
		default:
			return errDecodeSyntax
		}
	}
}

// keyIs reports whether the unescaped key matches name the way
// encoding/json matches struct fields: exact bytes first, then
// case-insensitivity under Unicode simple folding. The manual fold loop
// avoids the []byte(name) conversion bytes.EqualFold would need.
func keyIs(key []byte, name string) bool {
	if string(key) == name {
		return true
	}
	for len(key) > 0 && len(name) > 0 {
		var kr, nr rune
		if key[0] < utf8.RuneSelf {
			kr = rune(key[0])
			key = key[1:]
		} else {
			r, size := utf8.DecodeRune(key)
			kr = r
			key = key[size:]
		}
		if name[0] < utf8.RuneSelf {
			nr = rune(name[0])
			name = name[1:]
		} else {
			r, size := utf8.DecodeRuneInString(name)
			nr = r
			name = name[size:]
		}
		if kr == nr {
			continue
		}
		if kr < utf8.RuneSelf && nr < utf8.RuneSelf {
			// ASCII fast path: letters fold case-insensitively, nothing
			// else folds (matching encoding/json's foldName). Key
			// dispatch tries several candidate names per key, so the
			// mismatch exit must not reach unicode.SimpleFold.
			if kr^nr == 0x20 {
				if l := kr | 0x20; 'a' <= l && l <= 'z' {
					continue
				}
			}
			return false
		}
		// Fold both to the minimum rune in their fold orbit and compare.
		if foldRune(kr) != foldRune(nr) {
			return false
		}
	}
	return len(key) == 0 && len(name) == 0
}

// foldRune maps r to the smallest rune in its unicode.SimpleFold orbit.
func foldRune(r rune) rune {
	min := r
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		if f < min {
			min = f
		}
	}
	return min
}

// tweetField dispatches one top-level tweet field.
func (d *StreamDecoder) tweetField(key []byte) error {
	switch {
	case keyIs(key, "id"):
		return d.parseInt64(&d.t.ID)
	case keyIs(key, "created_at"):
		return d.parseString(&d.t.CreatedAt)
	case keyIs(key, "text"):
		return d.parseString(&d.t.Text)
	case keyIs(key, "kind"):
		return d.parseString(&d.t.Kind)
	case keyIs(key, "source"):
		return d.parseString(&d.t.Source)
	case keyIs(key, "topic"):
		return d.parseString(&d.t.Topic)
	case keyIs(key, "user"):
		return d.parseStruct((*StreamDecoder).userField)
	case keyIs(key, "entities"):
		return d.parseStruct((*StreamDecoder).entitiesField)
	case keyIs(key, "x_oracle_spam"):
		return d.parseBoolPtr(&d.t.Spam)
	case keyIs(key, "x_oracle_campaign"):
		return d.parseIntPtr(&d.t.CampaignID)
	}
	return d.skipValue()
}

// userField dispatches one field of the nested user object.
func (d *StreamDecoder) userField(key []byte) error {
	u := &d.t.User
	switch {
	case keyIs(key, "id"):
		return d.parseInt64(&u.ID)
	case keyIs(key, "screen_name"):
		return d.parseString(&u.ScreenName)
	case keyIs(key, "name"):
		return d.parseString(&u.Name)
	case keyIs(key, "description"):
		return d.parseString(&u.Description)
	case keyIs(key, "created_at"):
		return d.parseString(&u.CreatedAt)
	case keyIs(key, "friends_count"):
		return d.parseInt(&u.FriendsCount)
	case keyIs(key, "followers_count"):
		return d.parseInt(&u.FollowersCount)
	case keyIs(key, "listed_count"):
		return d.parseInt(&u.ListedCount)
	case keyIs(key, "favourites_count"):
		return d.parseInt(&u.FavouritesCount)
	case keyIs(key, "statuses_count"):
		return d.parseInt(&u.StatusesCount)
	case keyIs(key, "verified"):
		return d.parseBool(&u.Verified)
	case keyIs(key, "default_profile_image"):
		return d.parseBool(&u.DefaultProfile)
	case keyIs(key, "profile_image_hash"):
		return d.parseString(&u.ProfileImageHash)
	case keyIs(key, "suspended"):
		return d.parseBool(&u.Suspended)
	case keyIs(key, "last_post_at"):
		return d.parseString(&u.LastPostAt)
	}
	return d.skipValue()
}

// entitiesField dispatches one field of the nested entities object.
func (d *StreamDecoder) entitiesField(key []byte) error {
	switch {
	case keyIs(key, "hashtags"):
		return d.parseStringArray(&d.t.Entities.Hashtags, &d.hashtags)
	case keyIs(key, "urls"):
		return d.parseStringArray(&d.t.Entities.URLs, &d.urls)
	case keyIs(key, "user_mentions"):
		return d.parseMentions()
	}
	return d.skipValue()
}

// parseStruct consumes an object into a nested struct field; null is a
// no-op, anything else non-object is a type error.
func (d *StreamDecoder) parseStruct(field func(*StreamDecoder, []byte) error) error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch d.data[d.pos] {
	case '{':
		return d.parseObject(field)
	case 'n':
		return d.parseLiteral("null")
	default:
		return errDecodeType
	}
}

// parseString consumes a string value into dst; null leaves dst untouched.
func (d *StreamDecoder) parseString(dst *string) error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch d.data[d.pos] {
	case '"':
		b, err := d.parseStringRaw()
		if err != nil {
			return err
		}
		*dst = unsafeString(b)
		return nil
	case 'n':
		return d.parseLiteral("null")
	default:
		return errDecodeType
	}
}

// parseInt64 consumes an integer number into dst; null leaves it untouched.
func (d *StreamDecoder) parseInt64(dst *int64) error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch c := d.data[d.pos]; {
	case c == '-' || (c >= '0' && c <= '9'):
		lit, err := d.parseNumberToken()
		if err != nil {
			return err
		}
		v, ok := parseIntBytes(lit)
		if !ok {
			return errDecodeType // fractional, exponent, or overflow
		}
		*dst = v
		return nil
	case c == 'n':
		return d.parseLiteral("null")
	default:
		return errDecodeType
	}
}

func (d *StreamDecoder) parseInt(dst *int) error {
	if d.pos < len(d.data) && d.data[d.pos] == 'n' {
		return d.parseLiteral("null")
	}
	var v int64
	if err := d.parseInt64(&v); err != nil {
		return err
	}
	*dst = int(v)
	return nil
}

// parseBool consumes true/false into dst; null leaves it untouched.
func (d *StreamDecoder) parseBool(dst *bool) error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch d.data[d.pos] {
	case 't':
		if err := d.parseLiteral("true"); err != nil {
			return err
		}
		*dst = true
		return nil
	case 'f':
		if err := d.parseLiteral("false"); err != nil {
			return err
		}
		*dst = false
		return nil
	case 'n':
		return d.parseLiteral("null")
	default:
		return errDecodeType
	}
}

// parseBoolPtr consumes a bool into the pointer field, pointing it at the
// decoder's scratch bool; null sets the pointer to nil (matching
// encoding/json's null-into-pointer semantics).
func (d *StreamDecoder) parseBoolPtr(dst **bool) error {
	if d.pos < len(d.data) && d.data[d.pos] == 'n' {
		if err := d.parseLiteral("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if err := d.parseBool(&d.spamVal); err != nil {
		return err
	}
	*dst = &d.spamVal
	return nil
}

// parseIntPtr is parseBoolPtr for the campaign-id pointer.
func (d *StreamDecoder) parseIntPtr(dst **int) error {
	if d.pos < len(d.data) && d.data[d.pos] == 'n' {
		if err := d.parseLiteral("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	var v int64
	if err := d.parseInt64(&v); err != nil {
		return err
	}
	d.campVal = int(v)
	*dst = &d.campVal
	return nil
}

// parseStringArray consumes an array of strings into dst, reusing backing;
// null sets dst to nil (encoding/json's null-into-slice semantics).
func (d *StreamDecoder) parseStringArray(dst *[]string, backing *[]string) error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch d.data[d.pos] {
	case 'n':
		if err := d.parseLiteral("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	case '[':
		// fall through below
	default:
		return errDecodeType
	}
	d.depth++
	if d.depth > maxNDJSONDepth {
		return errDecodeDepth
	}
	d.pos++
	if *backing == nil {
		// An empty JSON array decodes to a non-nil empty slice.
		*backing = make([]string, 0, 4)
	}
	// A duplicate key decodes element-wise into the existing slice (null
	// elements keep the prior value), matching encoding/json. existing may
	// alias backing; elements are read before their slot is rewritten.
	existing := *dst
	buf := (*backing)[:0]
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		*dst = buf
		return nil
	}
	for {
		d.skipWS()
		if d.pos >= len(d.data) {
			return errDecodeSyntax
		}
		var cur string
		if n := len(buf); n < len(existing) {
			cur = existing[n]
		}
		switch d.data[d.pos] {
		case '"':
			b, err := d.parseStringRaw()
			if err != nil {
				return err
			}
			cur = unsafeString(b)
		case 'n':
			// null element: the slot keeps its existing (or zero) value.
			if err := d.parseLiteral("null"); err != nil {
				return err
			}
		default:
			return errDecodeType
		}
		buf = append(buf, cur)
		d.skipWS()
		if d.pos >= len(d.data) {
			return errDecodeSyntax
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			*backing = buf
			*dst = buf
			return nil
		default:
			return errDecodeSyntax
		}
	}
}

// parseMentions consumes the user_mentions array, reusing the mention
// backing slice.
func (d *StreamDecoder) parseMentions() error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch d.data[d.pos] {
	case 'n':
		if err := d.parseLiteral("null"); err != nil {
			return err
		}
		d.t.Entities.Mentions = nil
		return nil
	case '[':
		// fall through below
	default:
		return errDecodeType
	}
	d.depth++
	if d.depth > maxNDJSONDepth {
		return errDecodeDepth
	}
	d.pos++
	if d.mentions == nil {
		d.mentions = make([]Mention, 0, 4)
	}
	// Duplicate keys merge element-wise into the existing slice, matching
	// encoding/json: object elements update prior element values in place
	// and null elements keep them. existing may alias the backing; each
	// element is copied into its slot before any nested parse mutates it.
	existing := d.t.Entities.Mentions
	buf := d.mentions[:0]
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		d.t.Entities.Mentions = buf
		return nil
	}
	for {
		d.skipWS()
		if d.pos >= len(d.data) {
			return errDecodeSyntax
		}
		var cur Mention
		if n := len(buf); n < len(existing) {
			cur = existing[n]
		}
		switch d.data[d.pos] {
		case '{':
			buf = append(buf, cur)
			d.mentions = buf // publish before nested parse may error out
			m := &buf[len(buf)-1]
			err := d.parseObject(func(d *StreamDecoder, key []byte) error {
				switch {
				case keyIs(key, "id"):
					return d.parseInt64(&m.ID)
				case keyIs(key, "screen_name"):
					return d.parseString(&m.ScreenName)
				}
				return d.skipValue()
			})
			if err != nil {
				return err
			}
		case 'n':
			// null element: the slot keeps its existing (or zero) value.
			if err := d.parseLiteral("null"); err != nil {
				return err
			}
			buf = append(buf, cur)
		default:
			return errDecodeType
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return errDecodeSyntax
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			d.mentions = buf
			d.t.Entities.Mentions = buf
			return nil
		default:
			return errDecodeSyntax
		}
	}
}

// skipValue validates and skips one JSON value of any shape, enforcing the
// same strict grammar encoding/json's scanner applies to skipped input.
func (d *StreamDecoder) skipValue() error {
	if d.pos >= len(d.data) {
		return errDecodeSyntax
	}
	switch c := d.data[d.pos]; {
	case c == '{':
		return d.parseObject((*StreamDecoder).skipField)
	case c == '[':
		return d.skipArray()
	case c == '"':
		_, err := d.parseStringRaw()
		return err
	case c == 't':
		return d.parseLiteral("true")
	case c == 'f':
		return d.parseLiteral("false")
	case c == 'n':
		return d.parseLiteral("null")
	case c == '-' || (c >= '0' && c <= '9'):
		_, err := d.parseNumberToken()
		return err
	default:
		return errDecodeSyntax
	}
}

// skipField is the parseObject callback for unknown objects.
func (d *StreamDecoder) skipField([]byte) error { return d.skipValue() }

// skipArray validates and skips one array.
func (d *StreamDecoder) skipArray() error {
	d.depth++
	if d.depth > maxNDJSONDepth {
		return errDecodeDepth
	}
	d.pos++ // '['
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		d.skipWS()
		if err := d.skipValue(); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return errDecodeSyntax
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			return nil
		default:
			return errDecodeSyntax
		}
	}
}

// parseLiteral consumes the exact literal bytes.
func (d *StreamDecoder) parseLiteral(lit string) error {
	if len(d.data)-d.pos < len(lit) || string(d.data[d.pos:d.pos+len(lit)]) != lit {
		return errDecodeSyntax
	}
	d.pos += len(lit)
	return nil
}

// parseStringRaw consumes one string token (opening quote at d.pos) and
// returns its unescaped bytes: a view into the line when the content needs
// no rewriting, otherwise a slice of the unescape arena.
func (d *StreamDecoder) parseStringRaw() ([]byte, error) {
	data := d.data
	start := d.pos + 1
	i := start
	ascii := true
	for i < len(data) {
		c := data[i]
		if c == '"' {
			seg := data[start:i]
			if ascii || utf8.Valid(seg) {
				d.pos = i + 1
				return seg, nil
			}
			// Invalid UTF-8: rewrite with replacement runes, like
			// encoding/json's unquote.
			return d.unquoteSlow(start)
		}
		if c == '\\' {
			return d.unquoteSlow(start)
		}
		if c < 0x20 {
			return nil, errDecodeSyntax
		}
		if c >= utf8.RuneSelf {
			ascii = false
		}
		i++
	}
	return nil, errDecodeSyntax
}

// unquoteSlow unescapes a string with escapes or invalid UTF-8 into the
// arena, mirroring encoding/json's unquoteBytes semantics exactly.
func (d *StreamDecoder) unquoteSlow(start int) ([]byte, error) {
	data := d.data
	aStart := len(d.arena)
	i := start
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			return d.arena[aStart:], nil
		case c == '\\':
			i++
			if i >= len(data) {
				return nil, errDecodeSyntax
			}
			switch data[i] {
			case '"', '\\', '/':
				d.arena = append(d.arena, data[i])
				i++
			case 'b':
				d.arena = append(d.arena, '\b')
				i++
			case 'f':
				d.arena = append(d.arena, '\f')
				i++
			case 'n':
				d.arena = append(d.arena, '\n')
				i++
			case 'r':
				d.arena = append(d.arena, '\r')
				i++
			case 't':
				d.arena = append(d.arena, '\t')
				i++
			case 'u':
				rr := getu4(data[i-1:])
				if rr < 0 {
					return nil, errDecodeSyntax
				}
				i += 5 // past uXXXX
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(data[i:])
					if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
						i += 6
						d.arena = utf8.AppendRune(d.arena, dec)
						continue
					}
					rr = unicode.ReplacementChar
				}
				d.arena = utf8.AppendRune(d.arena, rr)
			default:
				return nil, errDecodeSyntax
			}
		case c < 0x20:
			return nil, errDecodeSyntax
		case c < utf8.RuneSelf:
			d.arena = append(d.arena, c)
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				d.arena = utf8.AppendRune(d.arena, utf8.RuneError)
				i++
			} else {
				d.arena = append(d.arena, data[i:i+size]...)
				i += size
			}
		}
	}
	return nil, errDecodeSyntax
}

// getu4 decodes \uXXXX at the start of s, returning -1 on malformed input
// (the same contract as encoding/json's getu4).
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range s[2:6] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// parseNumberToken consumes one number token, validating the strict JSON
// number grammar, and returns the literal bytes.
func (d *StreamDecoder) parseNumberToken() ([]byte, error) {
	data := d.data
	start := d.pos
	i := d.pos
	if i < len(data) && data[i] == '-' {
		i++
	}
	if i >= len(data) {
		return nil, errDecodeSyntax
	}
	switch {
	case data[i] == '0':
		i++
	case data[i] >= '1' && data[i] <= '9':
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	default:
		return nil, errDecodeSyntax
	}
	if i < len(data) && data[i] == '.' {
		i++
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			return nil, errDecodeSyntax
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		i++
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			i++
		}
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			return nil, errDecodeSyntax
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	d.pos = i
	return data[start:i], nil
}

// parseIntBytes parses a validated JSON number literal as an int64,
// rejecting fractional parts, exponents, and overflow — exactly the inputs
// strconv.ParseInt (encoding/json's integer path) rejects.
func parseIntBytes(lit []byte) (int64, bool) {
	i := 0
	neg := false
	if len(lit) > 0 && lit[0] == '-' {
		neg = true
		i = 1
	}
	if i >= len(lit) {
		return 0, false
	}
	var n uint64
	for ; i < len(lit); i++ {
		c := lit[i]
		if c < '0' || c > '9' {
			return 0, false // '.', 'e', 'E': not an integer
		}
		if n > (1<<63-1)/10 {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if !neg && n > 1<<63-1 || neg && n > 1<<63 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// unsafeString views b as a string without copying. The caller guarantees
// b's bytes are not rewritten while the string is reachable — the decoder's
// arena and line views hold that until the next Decode.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}
