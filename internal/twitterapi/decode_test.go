package twitterapi

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// mustJSON round-trips a tweet through encoding/json to build test lines.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkDecodeMatchesJSON asserts the scratch decoder and encoding/json
// agree on line: same accept/reject decision, and deeply equal tweets on
// accept. Returns the decoded tweet for further checks.
func checkDecodeMatchesJSON(t *testing.T, d *StreamDecoder, line []byte) *Tweet {
	t.Helper()
	var want Tweet
	wantErr := json.Unmarshal(line, &want)
	got, gotErr := d.Decode(line)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("decode %q:\n scratch err = %v\n json err    = %v", line, gotErr, wantErr)
	}
	if gotErr != nil {
		return nil
	}
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("decode %q:\n scratch = %+v\n json    = %+v", line, *got, want)
	}
	return got
}

func TestStreamDecoderMatchesEncodingJSON(t *testing.T) {
	d := NewStreamDecoder()
	for _, line := range decoderCorpus() {
		checkDecodeMatchesJSON(t, d, []byte(line))
	}
}

// decoderCorpus enumerates the tricky lines shared by the table test and
// the fuzz seed corpus.
func decoderCorpus() []string {
	spam := true
	camp := 7
	full := Tweet{
		ID:        9007199254740993,
		CreatedAt: "2019-06-24T12:00:00.25Z",
		Text:      "free followers at https://spam.example #deal @victim \u00e9\u00fc \U0001F600",
		Kind:      "retweet",
		Source:    "third-party",
		Topic:     "giveaway",
		User: User{
			ID: 42, ScreenName: "bot_7", Name: "Bot \"Seven\"", Description: "desc\nline2",
			CreatedAt: "2018-01-01T00:00:00Z", FriendsCount: 1000, FollowersCount: 3,
			ListedCount: 1, FavouritesCount: 9, StatusesCount: 12000, Verified: false,
			DefaultProfile: true, ProfileImageHash: "a1b2c3d4e5f60718", Suspended: false,
			LastPostAt: "2019-06-24T11:00:00Z",
		},
		Entities: Entities{
			Hashtags: []string{"deal", "free"},
			Mentions: []Mention{{ID: 5, ScreenName: "victim"}},
			URLs:     []string{"https://spam.example"},
		},
		Spam:       &spam,
		CampaignID: &camp,
	}
	fullLine, _ := json.Marshal(full)

	return []string{
		string(fullLine),
		// Shape basics.
		`{}`, ` { } `, `null`, `{"id":1}`, "\t{\"id\":\t1}\r\n",
		`{"unknown":{"deep":[1,2,{"x":null}],"s":"v"},"id":3}`,
		// Strings: escapes, unicode escapes, surrogate pairs, lone
		// surrogates, raw multibyte, invalid UTF-8, escaped controls.
		`{"text":"plain"}`, `{"text":""}`,
		`{"text":"a\"b\\c\/d\be\ff\ng\rh\ti"}`,
		`{"text":"\u0041\u00e9\u4e2d"}`,
		`{"text":"\ud83d\ude00"}`,  // valid surrogate pair
		`{"text":"\ud800"}`,        // lone high surrogate -> U+FFFD
		`{"text":"\ude00x"}`,       // lone low surrogate -> U+FFFD
		`{"text":"\ud800\ud800"}`,  // high+high -> two U+FFFD
		`{"text":"\ud83d\u0041"}`,  // high + non-surrogate escape
		`{"text":"\u0000"}`,        // escaped NUL is legal
		"{\"text\":\"\xff\xfe\"}",  // invalid UTF-8 -> replacement runes
		"{\"text\":\"ok\xc3\x28\"}", // truncated multibyte mid-string
		`{"text":"\uD83D\uDE00"}`,  // uppercase hex
		`{"text":"\q"}`,            // bad escape: reject
		`{"text":"\u12"}`,          // short unicode escape: reject
		`{"text":"\u12zz"}`,        // bad hex: reject
		"{\"text\":\"ctl\x01\"}",   // raw control char: reject
		`{"text":"unterminated`,    // unterminated: reject
		// Numbers: grammar, overflow, null, wrong types.
		`{"id":0}`, `{"id":-0}`, `{"id":9223372036854775807}`,
		`{"id":-9223372036854775808}`,
		`{"id":9223372036854775808}`,  // overflow: reject
		`{"id":-9223372036854775809}`, // underflow: reject
		`{"id":18446744073709551616}`, // past uint64: reject
		`{"id":1.5}`, `{"id":1e3}`, `{"id":1E+2}`, // float into int64: reject
		`{"id":01}`, `{"id":+1}`, `{"id":-}`, `{"id":1.}`, `{"id":1e}`, // bad grammar
		`{"id":null}`, `{"id":"5"}`, `{"id":true}`,
		`{"unknown":1.25e-3,"id":2}`, `{"unknown":-0.0E+10}`,
		// Bools and the pointer oracle fields.
		`{"user":{"verified":true,"default_profile_image":false}}`,
		`{"user":{"verified":null}}`, `{"user":{"verified":1}}`,
		`{"x_oracle_spam":true,"x_oracle_campaign":3}`,
		`{"x_oracle_spam":false,"x_oracle_campaign":-1}`,
		`{"x_oracle_spam":null,"x_oracle_campaign":null}`,
		`{"x_oracle_spam":"yes"}`, `{"x_oracle_campaign":2.5}`,
		// Nested structs: null no-op, duplicates merge, wrong types.
		`{"user":null}`, `{"user":{}}`, `{"user":[1]}`, `{"user":"x"}`,
		`{"user":{"id":1},"user":{"screen_name":"x"}}`,
		`{"entities":null,"entities":{"hashtags":["a"]}}`,
		`{"entities":{"hashtags":["a"]},"entities":{}}`,
		// Slices: null vs [], element nulls, reset on duplicate keys.
		`{"entities":{"hashtags":[]}}`,
		`{"entities":{"hashtags":null}}`,
		`{"entities":{"hashtags":["a",null,"b"]}}`,
		`{"entities":{"hashtags":["a","b"]},"entities":{"hashtags":["c"]}}`,
		`{"entities":{"hashtags":["a"],"hashtags":null}}`,
		`{"entities":{"hashtags":[1]}}`,   // number into string: reject
		`{"entities":{"hashtags":[["a"]]}}`, // array into string: reject
		`{"entities":{"urls":["u1","u2"]}}`,
		`{"entities":{"user_mentions":[]}}`,
		`{"entities":{"user_mentions":null}}`,
		`{"entities":{"user_mentions":[{"id":1,"screen_name":"a"},null,{"id":2}]}}`,
		`{"entities":{"user_mentions":[{"id":1,"extra":[true]}]}}`,
		`{"entities":{"user_mentions":["x"]}}`, // string into Mention: reject
		`{"entities":{"user_mentions":[{"id":1},{"id":2}]},"entities":{"user_mentions":[{"id":9}]}}`,
		// Key matching: case folding, escaped keys, Kelvin sign.
		`{"ID":4,"TEXT":"t","User":{"Screen_Name":"s"}}`,
		`{"\u0069\u0064":11}`,       // escaped "id"
		`{"x_oracle_spam":true}`,
		"{\"\u212a\u0069nd\":\"quote\"}", // Kelvin-K folds to "kind"
		`{"created_at":"x","CREATED_AT":"y"}`,
		// Structural junk.
		`{"id":1,}`, `{,}`, `{"id" 1}`, `{"id":1 "text":"x"}`,
		`[{"id":1}]`, `"just a string"`, `123`, `true`,
		`{"id":1}x`, `{"id":1} `, `nullx`, ``, ` `, `{`, `}`,
		`{"a":}`, `{"a":,}`, `{:1}`, `{"a":1,,"b":2}`,
		strings.Repeat(`{"a":`, 32) + "1" + strings.Repeat("}", 32),
		`{"deep":` + strings.Repeat("[", 64) + strings.Repeat("]", 64) + `}`,
	}
}

// TestStreamDecoderDepthLimit pins the nesting bound to encoding/json's:
// depth 10000 decodes, 10001 is rejected by both.
func TestStreamDecoderDepthLimit(t *testing.T) {
	d := NewStreamDecoder()
	// The outer tweet object consumes one level.
	inner := maxNDJSONDepth - 1
	ok := `{"a":` + strings.Repeat("[", inner) + strings.Repeat("]", inner) + `}`
	deep := `{"a":` + strings.Repeat("[", inner+1) + strings.Repeat("]", inner+1) + `}`
	if tw := checkDecodeMatchesJSON(t, d, []byte(ok)); tw == nil {
		t.Fatal("depth-10000 line rejected")
	}
	if _, err := d.Decode([]byte(deep)); err == nil {
		t.Fatal("depth-10001 line accepted")
	}
	var w Tweet
	if err := json.Unmarshal([]byte(deep), &w); err == nil {
		t.Fatal("oracle accepted depth-10001 line (limit drifted)")
	}
}

// TestStreamDecoderReuse checks that no state bleeds between lines: a full
// tweet followed by an empty object yields a zero tweet.
func TestStreamDecoderReuse(t *testing.T) {
	d := NewStreamDecoder()
	corpus := decoderCorpus()
	full := []byte(corpus[0])
	if tw := checkDecodeMatchesJSON(t, d, full); tw == nil {
		t.Fatal("full tweet line rejected")
	}
	got, err := d.Decode([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, Tweet{}) {
		t.Fatalf("state bled across Decode calls: %+v", *got)
	}
	// And interleave every corpus line against a dirty decoder.
	for _, line := range corpus {
		d2 := NewStreamDecoder()
		if _, err := d2.Decode(full); err != nil {
			t.Fatal(err)
		}
		checkDecodeMatchesJSON(t, d2, []byte(line))
	}
}

// TestStreamDecoderAliasing documents the ownership contract: decoded
// strings alias the input line, and Clone detaches them.
func TestStreamDecoderAliasing(t *testing.T) {
	d := NewStreamDecoder()
	line := []byte(`{"text":"original","entities":{"hashtags":["tag"]}}`)
	got, err := d.Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	clone := got.Clone()
	for i := range line {
		line[i] = 'x'
	}
	if got.Text == "original" {
		t.Fatal("decoded Text did not alias the line; zero-copy path broken")
	}
	if clone.Text != "original" || clone.Entities.Hashtags[0] != "tag" {
		t.Fatalf("Clone did not detach: %+v", clone)
	}
}

// TestTweetClone checks the deep copy covers every reference field.
func TestTweetClone(t *testing.T) {
	var orig Tweet
	if err := json.Unmarshal([]byte(decoderCorpus()[0]), &orig); err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	if !reflect.DeepEqual(orig, clone) {
		t.Fatalf("clone differs:\n orig  = %+v\n clone = %+v", orig, clone)
	}
	// Mutating the clone's reference fields must not touch the original.
	clone.Entities.Hashtags[0] = "mut"
	clone.Entities.URLs[0] = "mut"
	clone.Entities.Mentions[0].ScreenName = "mut"
	*clone.Spam = !*clone.Spam
	*clone.CampaignID++
	if orig.Entities.Hashtags[0] == "mut" || orig.Entities.URLs[0] == "mut" ||
		orig.Entities.Mentions[0].ScreenName == "mut" {
		t.Fatal("clone shares entity slices with the original")
	}
	if *orig.Spam == *clone.Spam || *orig.CampaignID == *clone.CampaignID {
		t.Fatal("clone shares oracle pointers with the original")
	}
}

// FuzzNDJSONDecode cross-checks the scratch decoder against encoding/json
// on arbitrary lines: identical accept/reject decisions and deeply equal
// tweets, from both a fresh and a deliberately dirtied decoder.
func FuzzNDJSONDecode(f *testing.F) {
	for _, line := range decoderCorpus() {
		f.Add([]byte(line))
	}
	dirty := []byte(decoderCorpus()[0])
	f.Fuzz(func(t *testing.T, line []byte) {
		var want Tweet
		wantErr := json.Unmarshal(line, &want)

		d := NewStreamDecoder()
		if _, err := d.Decode(dirty); err != nil {
			t.Fatal("dirty seed line rejected")
		}
		for round := 0; round < 2; round++ { // twice: catches stale state
			got, gotErr := d.Decode(line)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("round %d: scratch err = %v, json err = %v (line %q)",
					round, gotErr, wantErr, line)
			}
			if gotErr == nil && !reflect.DeepEqual(*got, want) {
				t.Fatalf("round %d: scratch = %+v\njson = %+v\n(line %q)",
					round, *got, want, line)
			}
		}
	})
}
