// Package simclock provides deterministic virtual time for driving the
// social-network simulation and the pseudo-honeypot rotation schedule.
//
// All simulation components take a Clock rather than calling time.Now
// directly, so experiments replay bit-for-bit under a fixed seed. The
// package also provides an event queue ordered by virtual time, which the
// traffic engine uses to interleave account activity.
package simclock

import (
	"container/heap"
	"errors"
	"sync"
	"time"
)

// Epoch is the virtual-time origin used by simulated clocks when no explicit
// start is given. It matches the paper's data-collection period (March 2018).
var Epoch = time.Date(2018, time.March, 10, 0, 0, 0, 0, time.UTC)

// ErrEmpty is returned by Queue.Pop when no events remain.
var ErrEmpty = errors.New("simclock: event queue is empty")

// Clock abstracts the passage of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// Simulated is a manually advanced Clock. The zero value is not usable; use
// NewSimulated.
type Simulated struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*Simulated)(nil)

// NewSimulated returns a Simulated clock starting at start. A zero start
// begins at Epoch.
func NewSimulated(start time.Time) *Simulated {
	if start.IsZero() {
		start = Epoch
	}
	return &Simulated{now: start}
}

// Now returns the current virtual instant.
func (c *Simulated) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new instant.
// Negative durations are ignored so time never runs backwards.
func (c *Simulated) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// Set moves the clock to t if t is not before the current instant.
// It reports whether the clock moved.
func (c *Simulated) Set(t time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		return false
	}
	c.now = t
	return true
}

// Wall is a Clock backed by the real time.Now. It exists so production-style
// binaries (cmd/twitterd) can share code paths with the simulation.
type Wall struct{}

var _ Clock = Wall{}

// Now returns the wall-clock time.
func (Wall) Now() time.Time { return time.Now() }

// Event is a unit of scheduled work in virtual time.
type Event struct {
	// At is the virtual instant the event fires.
	At time.Time
	// Seq breaks ties between events scheduled for the same instant;
	// lower sequences fire first. The Queue assigns it automatically.
	Seq uint64
	// Fire is invoked when the event is due. It may schedule further
	// events on the same queue.
	Fire func(now time.Time)
}

// Queue is a virtual-time event queue. It is not safe for concurrent use;
// the traffic engine drives it from a single goroutine.
type Queue struct {
	h   eventHeap
	seq uint64
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue {
	return &Queue{}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules fire at instant at.
func (q *Queue) Push(at time.Time, fire func(now time.Time)) {
	q.seq++
	heap.Push(&q.h, &Event{At: at, Seq: q.seq, Fire: fire})
}

// PeekTime returns the instant of the earliest pending event.
func (q *Queue) PeekTime() (time.Time, error) {
	if len(q.h) == 0 {
		return time.Time{}, ErrEmpty
	}
	return q.h[0].At, nil
}

// Pop removes and returns the earliest pending event.
func (q *Queue) Pop() (*Event, error) {
	if len(q.h) == 0 {
		return nil, ErrEmpty
	}
	ev, ok := heap.Pop(&q.h).(*Event)
	if !ok {
		return nil, errors.New("simclock: corrupt event heap")
	}
	return ev, nil
}

// RunUntil pops and fires events in order until the queue is empty or the
// next event is after deadline. The clock is advanced to each event's
// instant before it fires. It returns the number of events fired.
func (q *Queue) RunUntil(clock *Simulated, deadline time.Time) int {
	fired := 0
	for {
		at, err := q.PeekTime()
		if err != nil || at.After(deadline) {
			break
		}
		ev, err := q.Pop()
		if err != nil {
			break
		}
		clock.Set(ev.At)
		if ev.Fire != nil {
			ev.Fire(ev.At)
		}
		fired++
	}
	clock.Set(deadline)
	return fired
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At.Equal(h[j].At) {
		return h[i].Seq < h[j].Seq
	}
	return h[i].At.Before(h[j].At)
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
