package simclock

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSimulatedStartsAtEpochByDefault(t *testing.T) {
	c := NewSimulated(time.Time{})
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want epoch %v", got, Epoch)
	}
}

func TestSimulatedStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	c := NewSimulated(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated(time.Time{})
	got := c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !got.Equal(want) {
		t.Fatalf("Advance = %v, want %v", got, want)
	}
	if !c.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", c.Now(), want)
	}
}

func TestSimulatedAdvanceIgnoresNegative(t *testing.T) {
	c := NewSimulated(time.Time{})
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
}

func TestSimulatedSetRefusesPast(t *testing.T) {
	c := NewSimulated(time.Time{})
	c.Advance(time.Hour)
	if c.Set(Epoch) {
		t.Fatal("Set accepted an instant in the past")
	}
	if !c.Set(Epoch.Add(2 * time.Hour)) {
		t.Fatal("Set refused an instant in the future")
	}
}

func TestWallClockTracksRealTime(t *testing.T) {
	var w Wall
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestQueueOrdersByTime(t *testing.T) {
	q := NewQueue()
	var order []int
	times := []time.Duration{5 * time.Minute, time.Minute, 3 * time.Minute}
	for i, d := range times {
		i := i
		q.Push(Epoch.Add(d), func(time.Time) { order = append(order, i) })
	}
	clock := NewSimulated(time.Time{})
	fired := q.RunUntil(clock, Epoch.Add(time.Hour))
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
}

func TestQueueTieBreakIsFIFO(t *testing.T) {
	q := NewQueue()
	at := Epoch.Add(time.Minute)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(at, func(time.Time) { order = append(order, i) })
	}
	clock := NewSimulated(time.Time{})
	q.RunUntil(clock, at)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-instant events fired out of order: %v", order)
	}
}

func TestQueueRunUntilStopsAtDeadline(t *testing.T) {
	q := NewQueue()
	fired := 0
	q.Push(Epoch.Add(time.Minute), func(time.Time) { fired++ })
	q.Push(Epoch.Add(2*time.Hour), func(time.Time) { fired++ })
	clock := NewSimulated(time.Time{})
	n := q.RunUntil(clock, Epoch.Add(time.Hour))
	if n != 1 || fired != 1 {
		t.Fatalf("fired %d (%d calls), want 1", n, fired)
	}
	if q.Len() != 1 {
		t.Fatalf("queue length = %d, want 1 pending", q.Len())
	}
	if !clock.Now().Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("clock = %v, want advanced to deadline", clock.Now())
	}
}

func TestQueueRunUntilAdvancesClockToEventInstant(t *testing.T) {
	q := NewQueue()
	at := Epoch.Add(42 * time.Minute)
	var seen time.Time
	q.Push(at, func(now time.Time) { seen = now })
	clock := NewSimulated(time.Time{})
	q.RunUntil(clock, Epoch.Add(time.Hour))
	if !seen.Equal(at) {
		t.Fatalf("event observed now = %v, want %v", seen, at)
	}
}

func TestQueuePopEmpty(t *testing.T) {
	q := NewQueue()
	if _, err := q.Pop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Pop on empty queue: err = %v, want ErrEmpty", err)
	}
	if _, err := q.PeekTime(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("PeekTime on empty queue: err = %v, want ErrEmpty", err)
	}
}

func TestQueueEventsScheduledDuringRunFire(t *testing.T) {
	q := NewQueue()
	fired := 0
	q.Push(Epoch.Add(time.Minute), func(now time.Time) {
		fired++
		q.Push(now.Add(time.Minute), func(time.Time) { fired++ })
	})
	clock := NewSimulated(time.Time{})
	q.RunUntil(clock, Epoch.Add(time.Hour))
	if fired != 2 {
		t.Fatalf("fired %d, want cascaded event to fire too", fired)
	}
}

// Property: popping every event yields a non-decreasing time sequence no
// matter the insertion order.
func TestQueuePopOrderProperty(t *testing.T) {
	prop := func(offsets []int16) bool {
		q := NewQueue()
		for _, off := range offsets {
			d := time.Duration(int64(off)&0x7fff) * time.Second
			q.Push(Epoch.Add(d), nil)
		}
		var last time.Time
		for q.Len() > 0 {
			ev, err := q.Pop()
			if err != nil {
				return false
			}
			if !last.IsZero() && ev.At.Before(last) {
				return false
			}
			last = ev.At
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil fires exactly the events at or before the deadline.
func TestQueueRunUntilCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		q := NewQueue()
		deadline := Epoch.Add(time.Duration(rng.Intn(3600)) * time.Second)
		want := 0
		for i := 0; i < 100; i++ {
			at := Epoch.Add(time.Duration(rng.Intn(7200)) * time.Second)
			if !at.After(deadline) {
				want++
			}
			q.Push(at, nil)
		}
		clock := NewSimulated(time.Time{})
		if got := q.RunUntil(clock, deadline); got != want {
			t.Fatalf("trial %d: fired %d, want %d", trial, got, want)
		}
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated(time.Time{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = c.Now()
	}
	<-done
	want := Epoch.Add(1000 * time.Millisecond)
	if !c.Now().Equal(want) {
		t.Fatalf("after concurrent advances Now() = %v, want %v", c.Now(), want)
	}
}
