package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one series line of a parsed exposition payload.
type ParsedSample struct {
	// Name is the full sample name, including histogram suffixes such as
	// _bucket and _count.
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a fully parsed payload: the sample lines plus the # TYPE
// declarations that govern them. The federation merger (merge.go) needs
// the types to know whether a series sums across instances (counter,
// histogram) or stays per-instance (gauge).
type Exposition struct {
	Samples []ParsedSample
	// Types maps family name to its declared exposition type ("counter",
	// "gauge", "histogram", "summary", or "untyped").
	Types map[string]string
}

// ParseText parses and validates a Prometheus text exposition payload as
// produced by WriteText. It enforces the invariants tests care about: every
// sample belongs to a # TYPE-declared family that precedes it, names and
// label syntax follow the grammar, values parse as floats, and no two
// samples repeat the same name and label set. It exists so tests (and
// tooling) can assert on a /metrics payload without a Prometheus
// dependency.
func ParseText(r io.Reader) ([]ParsedSample, error) {
	exp, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	return exp.Samples, nil
}

// ParseExposition is ParseText keeping the TYPE declarations alongside the
// samples, for callers — the fleet federator — that must interpret what
// they scraped, not just validate it.
func ParseExposition(r io.Reader) (*Exposition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	types := make(map[string]string)
	seen := make(map[string]struct{})
	var samples []ParsedSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, types); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := checkFamily(s, types); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := s.Name + "\xff" + labelKey(s.Labels)
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, s.Name)
		}
		seen[key] = struct{}{}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Exposition{Samples: samples, Types: types}, nil
}

// parseComment handles # HELP / # TYPE lines (other comments are ignored).
func parseComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// checkFamily verifies the sample's family was TYPE-declared before it,
// resolving histogram suffixes to their base family.
func checkFamily(s ParsedSample, types map[string]string) error {
	if _, ok := types[s.Name]; ok {
		return nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(s.Name, suffix)
		if base != s.Name && types[base] == "histogram" {
			if suffix == "_bucket" {
				if _, ok := s.Labels["le"]; !ok {
					return fmt.Errorf("%s missing le label", s.Name)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("sample %s has no preceding TYPE", s.Name)
}

// parseSample parses `name{label="value",...} value [timestamp]`.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: make(map[string]string)}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = strings.TrimSpace(body[eq+1:])
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		val, rest, err := unquoteLabel(body[1:])
		if err != nil {
			return err
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val
		body = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// unquoteLabel consumes an escaped label value up to its closing quote,
// returning the decoded value and the remainder after the quote.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c in label value", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}
