package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Fleet federation merge: fold the exposition payloads scraped from N
// processes (the proc-mode shard workers plus the coordinator's own
// registry) into one global snapshot. The semantics mirror what a
// Prometheus federation endpoint would serve:
//
//   - counters and histograms are summed across instances per label set —
//     fleet totals, so summed pipeline counters equal an unsharded run's;
//   - gauges (and untyped/summary series) are point-in-time state of one
//     process, so they stay per-instance: each sample is stamped with a
//     MergeLabel ("shard") carrying the instance name unless the series
//     already has one (worker pipelines label their own shard);
//   - output ordering is fully deterministic — families by name, samples
//     by sorted label set, buckets by bound — so re-exposing a merged view
//     is a fixpoint: scrape → merge → WriteTextSnapshots → parse → merge
//     reproduces the identical snapshot.
//
// The merge is total: any payload ParseExposition accepted merges without
// error, deterministically, even adversarial shapes fuzzing finds (type
// conflicts across instances, histograms with alien bucket layouts,
// scalar samples on histogram families). Lossy normalizations (dropping a
// bare value on a histogram family, clamping fractional counts) are
// one-way but idempotent.

// MergeLabel is the label name stamped onto per-instance series so two
// workers' gauges never collide in the merged view.
const MergeLabel = "shard"

// Instance is one scraped exposition payload attributed to a fleet member.
type Instance struct {
	// Name is the member's identity — the shard id ("1".."N") for workers,
	// "coord" for the coordinator — stamped as the MergeLabel value on its
	// per-instance series.
	Name string
	// Exposition is the parsed payload (ParseExposition). Nil is allowed
	// and contributes nothing.
	Exposition *Exposition
}

// mergedSample accumulates one label set of one family across instances.
type mergedSample struct {
	labels []Label
	value  float64
	// Histogram parts, keyed by the canonical rendering of the bucket
	// bound so exotic bounds (NaN) still merge to one key.
	buckets map[string]*mergedBucket
	count   uint64
	sum     float64
}

type mergedBucket struct {
	bound float64
	count uint64
}

// mergedFamily accumulates one family across instances. The first
// instance to introduce a name fixes its type; later conflicting
// declarations coerce into it (deterministic in instance order).
type mergedFamily struct {
	name    string
	typ     Type
	samples map[string]*mergedSample
}

// MergeInstances folds the instances' payloads into one deterministic
// fleet-level snapshot. See the package comment above for the semantics.
func MergeInstances(instances []Instance) []FamilySnapshot {
	fams := make(map[string]*mergedFamily)
	for _, inst := range instances {
		if inst.Exposition == nil {
			continue
		}
		for _, s := range inst.Exposition.Samples {
			mergeSample(fams, inst, s)
		}
	}
	return finishMerge(fams)
}

// snapshotType maps a declared exposition type onto the snapshot enum.
// Summary and untyped series carry point-in-time meaning we cannot sum,
// so they take the gauge path (per-instance) under the untyped rendering.
func snapshotType(typ string) Type {
	switch typ {
	case "counter":
		return TypeCounter
	case "gauge":
		return TypeGauge
	case "histogram":
		return TypeHistogram
	default:
		return Type(0) // renders as "untyped"
	}
}

// mergeSample routes one parsed sample into the family map. A sample
// belongs either to a directly TYPE-declared family or — ParseExposition
// guarantees no third case — to a histogram family through a
// _bucket/_sum/_count suffix.
func mergeSample(fams map[string]*mergedFamily, inst Instance, s ParsedSample) {
	if typ, ok := inst.Exposition.Types[s.Name]; ok {
		fam := familyFor(fams, s.Name, snapshotType(typ))
		switch fam.typ {
		case TypeCounter:
			ms := fam.sample(s.Labels, nil)
			ms.value += s.Value
		case TypeHistogram:
			// A bare sample on a histogram-typed family has no slot in the
			// snapshot shape; materialize the label set with empty parts so
			// the series stays visible (as zero _sum/_count) and the merge
			// stays idempotent.
			fam.sample(s.Labels, nil)
		default:
			// Gauge / untyped / summary: per-instance state.
			ms := fam.sample(s.Labels, &inst)
			ms.value = s.Value
		}
		return
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(s.Name, suffix)
		if base == s.Name || inst.Exposition.Types[base] != "histogram" {
			continue
		}
		fam := familyFor(fams, base, TypeHistogram)
		if fam.typ != TypeHistogram {
			// Another instance already claimed the base name as a scalar
			// family; the part has nowhere coherent to go. Drop it — the
			// conflict is adversarial, and determinism beats completeness.
			return
		}
		switch suffix {
		case "_bucket":
			labels, le := splitLe(s.Labels)
			ms := fam.sample(labels, nil)
			bound, err := parseValue(le)
			if err != nil {
				return // unparseable bound: drop the bucket line
			}
			key := formatValue(bound)
			b := ms.buckets[key]
			if b == nil {
				b = &mergedBucket{bound: bound}
				ms.buckets[key] = b
			}
			b.count += toCount(s.Value)
		case "_sum":
			ms := fam.sample(s.Labels, nil)
			ms.sum += s.Value
		case "_count":
			ms := fam.sample(s.Labels, nil)
			ms.count += toCount(s.Value)
		}
		return
	}
}

func familyFor(fams map[string]*mergedFamily, name string, typ Type) *mergedFamily {
	fam := fams[name]
	if fam == nil {
		fam = &mergedFamily{name: name, typ: typ, samples: make(map[string]*mergedSample)}
		fams[name] = fam
	}
	return fam
}

// sample resolves the accumulator for one label set, stamping the
// MergeLabel from inst when given (per-instance series) and the label is
// not already present.
func (f *mergedFamily) sample(labels map[string]string, inst *Instance) *mergedSample {
	ls := sortedLabels(labels)
	if inst != nil {
		if _, has := labels[MergeLabel]; !has {
			ls = append(ls, Label{Name: MergeLabel, Value: inst.Name})
			sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
		}
	}
	key := labelsKey(ls)
	ms := f.samples[key]
	if ms == nil {
		ms = &mergedSample{labels: ls, buckets: make(map[string]*mergedBucket)}
		f.samples[key] = ms
	}
	return ms
}

// finishMerge renders the accumulated families as a sorted snapshot,
// resolving name collisions between a histogram family's expanded
// _bucket/_sum/_count lines and independently declared families of those
// literal names: the suffix-named families are dropped, so the rendered
// text parses cleanly (no duplicate series) and re-merging classifies
// every line the same way this merge did.
func finishMerge(fams map[string]*mergedFamily) []FamilySnapshot {
	for name, fam := range fams {
		if fam.typ != TypeHistogram {
			continue
		}
		delete(fams, name+"_bucket")
		delete(fams, name+"_sum")
		delete(fams, name+"_count")
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		fam := fams[name]
		snap := FamilySnapshot{Name: name, Type: fam.typ}
		keys := make([]string, 0, len(fam.samples))
		for k := range fam.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ms := fam.samples[k]
			s := Sample{Labels: ms.labels, Value: ms.value}
			if fam.typ == TypeHistogram {
				s.Value = 0
				s.Buckets = sortedBuckets(ms.buckets)
				s.Count = ms.count
				s.Sum = ms.sum
			}
			snap.Samples = append(snap.Samples, s)
		}
		out = append(out, snap)
	}
	return out
}

// sortedLabels converts a parsed label map into the snapshot's ordered
// form.
func sortedLabels(labels map[string]string) []Label {
	ls := make([]Label, 0, len(labels))
	for n, v := range labels {
		ls = append(ls, Label{Name: n, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// splitLe strips the histogram bucket label from a bucket line's label
// set, returning the remaining labels and the bound's string form.
func splitLe(labels map[string]string) (map[string]string, string) {
	le := labels["le"]
	rest := make(map[string]string, len(labels)-1)
	for n, v := range labels {
		if n != "le" {
			rest[n] = v
		}
	}
	return rest, le
}

// labelsKey is the canonical identity of an ordered label set.
func labelsKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// sortedBuckets orders merged buckets by bound, with a total order over
// exotic floats: NaN sorts first, then -Inf through +Inf.
func sortedBuckets(buckets map[string]*mergedBucket) []Bucket {
	bs := make([]Bucket, 0, len(buckets))
	for _, b := range buckets {
		bs = append(bs, Bucket{UpperBound: b.bound, Count: b.count})
	}
	sort.Slice(bs, func(i, j int) bool {
		a, b := bs[i].UpperBound, bs[j].UpperBound
		if math.IsNaN(a) {
			return !math.IsNaN(b)
		}
		if math.IsNaN(b) {
			return false
		}
		return a < b
	})
	return bs
}

// toCount converts a parsed float count into the snapshot's integer form:
// negative, NaN, and fractional inputs clamp toward zero; values past the
// integer range clamp to MaxInt64. Both clamps are idempotent under
// re-rendering, which is all the fixpoint needs.
func toCount(v float64) uint64 {
	if !(v > 0) { // NaN and negatives land here
		return 0
	}
	if v >= float64(math.MaxInt64) {
		return uint64(math.MaxInt64)
	}
	return uint64(v)
}

// MergeText is the convenience composition used by tests and tooling:
// parse each payload, merge, and render the rollup. Instance names are
// 1-based shard ids unless names supplies them.
func MergeText(payloads []string, names []string) (string, error) {
	instances := make([]Instance, 0, len(payloads))
	for i, p := range payloads {
		exp, err := ParseExposition(strings.NewReader(p))
		if err != nil {
			return "", err
		}
		name := strconv.Itoa(i + 1)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		instances = append(instances, Instance{Name: name, Exposition: exp})
	}
	var b strings.Builder
	if err := WriteTextSnapshots(&b, MergeInstances(instances)); err != nil {
		return "", err
	}
	return b.String(), nil
}
