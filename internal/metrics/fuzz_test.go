package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// reExpose renders parsed samples back into exposition text: one lazy
// "# TYPE <name> untyped" declaration per distinct sample name, then each
// sample with sorted labels, using the same value/label formatting as
// WriteText.
func reExpose(samples []ParsedSample) string {
	var b strings.Builder
	declared := make(map[string]bool)
	for _, s := range samples {
		if !declared[s.Name] {
			declared[s.Name] = true
			b.WriteString("# TYPE ")
			b.WriteString(s.Name)
			b.WriteString(" untyped\n")
		}
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			names := make([]string, 0, len(s.Labels))
			for n := range s.Labels {
				names = append(names, n)
			}
			sort.Strings(names)
			b.WriteByte('{')
			for i, n := range names {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(n)
				b.WriteString(`="`)
				b.WriteString(escapeLabel(s.Labels[n]))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatValue(s.Value))
		b.WriteByte('\n')
	}
	return b.String()
}

// sampleKey folds a sample into a comparable string; NaN values collapse
// to a marker so NaN == NaN for the round-trip comparison.
func sampleKey(s ParsedSample) string {
	v := formatValue(s.Value)
	if math.IsNaN(s.Value) {
		v = "NaN"
	}
	return s.Name + "\xff" + labelKey(s.Labels) + "\xff" + v
}

// FuzzParseExposition checks the parse → expose → parse fixed point: any
// payload ParseText accepts must re-render through the WriteText formatting
// helpers into a payload that parses back to the identical sample set.
func FuzzParseExposition(f *testing.F) {
	// A real registry rendering as the anchor seed.
	reg := NewRegistry()
	reg.Counter("ph_seed_total", "seed counter").Add(3)
	reg.GaugeVec("ph_seed_gauge", "seed gauge", "stage").With("classify").Set(-1.5)
	h := reg.HistogramVec("ph_seed_seconds", "seed histogram", nil, "stage")
	h.With("capture").Observe(0.002)
	h.With("capture").Observe(1.7)
	var anchor strings.Builder
	if err := reg.WriteText(&anchor); err != nil {
		f.Fatal(err)
	}
	f.Add(anchor.String())
	f.Add("# TYPE a untyped\na 1\n")
	f.Add("# TYPE a counter\na{x=\"y\"} +Inf\n")
	f.Add("# TYPE a gauge\na{x=\"a\\nb\",z=\"q\\\"\"} NaN\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 1\n")
	f.Add("# HELP a help text\n# TYPE a untyped\na 1e-9 1234\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		first, err := ParseText(strings.NewReader(input))
		if err != nil {
			return // invalid payloads are out of scope
		}
		rendered := reExpose(first)
		second, err := ParseText(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("re-exposed payload rejected: %v\npayload:\n%s", err, rendered)
		}
		if len(first) != len(second) {
			t.Fatalf("sample count changed: %d -> %d\npayload:\n%s",
				len(first), len(second), rendered)
		}
		for i := range first {
			if sampleKey(first[i]) != sampleKey(second[i]) {
				t.Fatalf("sample %d changed:\n was %q\n now %q",
					i, sampleKey(first[i]), sampleKey(second[i]))
			}
		}

		// Federation merge target: any accepted payload, scraped from two
		// instances, must merge into a rollup that re-parses cleanly, and
		// re-merging that rollup must be a fixed point (identical text).
		exp, err := ParseExposition(strings.NewReader(input))
		if err != nil {
			t.Fatalf("ParseText accepted but ParseExposition rejected: %v", err)
		}
		merged := MergeInstances([]Instance{
			{Name: "1", Exposition: exp},
			{Name: "2", Exposition: exp},
		})
		var rollup strings.Builder
		if err := WriteTextSnapshots(&rollup, merged); err != nil {
			t.Fatalf("merged rollup failed to render: %v", err)
		}
		reparsed, err := ParseExposition(strings.NewReader(rollup.String()))
		if err != nil {
			t.Fatalf("merged rollup rejected by parser: %v\nrollup:\n%s", err, rollup.String())
		}
		again := MergeInstances([]Instance{{Name: "coord", Exposition: reparsed}})
		var rollup2 strings.Builder
		if err := WriteTextSnapshots(&rollup2, again); err != nil {
			t.Fatalf("re-merged rollup failed to render: %v", err)
		}
		if rollup.String() != rollup2.String() {
			t.Fatalf("merge is not a fixpoint:\n--- first\n%s\n--- second\n%s",
				rollup.String(), rollup2.String())
		}
	})
}
