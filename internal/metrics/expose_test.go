package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ph_tweets_total", "Captured tweets.").Add(42)
	r.Gauge("ph_nodes", "Harnessed accounts.").Set(-2.5)
	v := r.CounterVec("ph_group_total", "Per-group captures.", "selector")
	v.With(`followers count=100`).Add(7)
	v.With("weird\"label\\with\nescapes").Inc()
	h := r.Histogram("ph_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	return r
}

func TestWriteTextFormat(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ph_tweets_total Captured tweets.",
		"# TYPE ph_tweets_total counter",
		"ph_tweets_total 42",
		"# TYPE ph_nodes gauge",
		"ph_nodes -2.5",
		`ph_group_total{selector="followers count=100"} 7`,
		`ph_group_total{selector="weird\"label\\with\nescapes"} 1`,
		"# TYPE ph_latency_seconds histogram",
		`ph_latency_seconds_bucket{le="0.1"} 1`,
		`ph_latency_seconds_bucket{le="1"} 2`,
		`ph_latency_seconds_bucket{le="+Inf"} 3`,
		"ph_latency_seconds_sum 30.55",
		"ph_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionRoundTrips is the format gate: everything WriteText emits
// must parse back as valid Prometheus text with the original values.
func TestExpositionRoundTrips(t *testing.T) {
	r := testRegistry()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition rejected: %v", err)
	}
	byName := func(name string, labels map[string]string) *ParsedSample {
		for i, s := range samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return &samples[i]
			}
		}
		return nil
	}
	if s := byName("ph_tweets_total", nil); s == nil || s.Value != 42 {
		t.Fatalf("ph_tweets_total round-trip: %+v", s)
	}
	if s := byName("ph_group_total", map[string]string{"selector": "weird\"label\\with\nescapes"}); s == nil || s.Value != 1 {
		t.Fatalf("escaped label did not round-trip: %+v", s)
	}
	if s := byName("ph_latency_seconds_bucket", map[string]string{"le": "+Inf"}); s == nil || s.Value != 3 {
		t.Fatalf("+Inf bucket round-trip: %+v", s)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"no TYPE", "loose_metric 1\n"},
		{"bad value", "# TYPE m counter\nm notanumber\n"},
		{"bad name", "# TYPE m counter\n9bad 1\n"},
		{"unterminated labels", "# TYPE m counter\nm{a=\"x\" 1\n"},
		{"unquoted label", "# TYPE m counter\nm{a=x} 1\n"},
		{"duplicate sample", "# TYPE m counter\nm 1\nm 2\n"},
		{"duplicate TYPE", "# TYPE m counter\n# TYPE m counter\nm 1\n"},
		{"unknown type", "# TYPE m widget\nm 1\n"},
		{"malformed TYPE", "# TYPE m\nm 1\n"},
		{"bad escape", "# TYPE m counter\nm{a=\"\\q\"} 1\n"},
		{"bucket missing le", "# TYPE m histogram\nm_bucket 1\n"},
		{"bad timestamp", "# TYPE m counter\nm 1 nope\n"},
		{"duplicate label", "# TYPE m counter\nm{a=\"1\",a=\"2\"} 1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("accepted %q", tt.in)
			}
		})
	}
}

func TestParseTextAcceptsForeignPayload(t *testing.T) {
	// A hand-written payload with comments, timestamps, and Inf values.
	in := strings.Join([]string{
		"# just a comment",
		"# HELP up Scrape health.",
		"# TYPE up gauge",
		"up 1 1700000000000",
		"# TYPE temp gauge",
		`temp{site="x"} -Inf`,
		`temp{site="y"} +Inf`,
		"",
	}, "\n")
	samples, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	if !math.IsInf(samples[2].Value, 1) {
		t.Fatalf("+Inf value parsed as %v", samples[2].Value)
	}
}

func TestMetricsHandler(t *testing.T) {
	srv := httptest.NewServer(testRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != TextContentType {
		t.Fatalf("Content-Type = %q", got)
	}
	if _, err := ParseText(resp.Body); err != nil {
		t.Fatalf("handler output invalid: %v", err)
	}
}

func TestHealthHandler(t *testing.T) {
	srv := httptest.NewServer(HealthHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.UptimeSeconds < 0 {
		t.Fatalf("health = %+v", h)
	}
	if h.GoVersion == "" {
		t.Fatal("health missing go_version")
	}
}

func TestHealthStreamReadAge(t *testing.T) {
	// Before any stream read the field is absent; after MarkStreamRead it
	// reports a small age. lastStreamRead is process state, so reset it.
	lastStreamRead.Store(0)
	defer lastStreamRead.Store(0)

	get := func() Health {
		srv := httptest.NewServer(HealthHandler())
		defer srv.Close()
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := get(); h.LastStreamReadAgeSeconds != nil {
		t.Fatalf("stream age present before any read: %+v", h)
	}
	MarkStreamRead(time.Now())
	h := get()
	if h.LastStreamReadAgeSeconds == nil {
		t.Fatal("stream age missing after MarkStreamRead")
	}
	if age := *h.LastStreamReadAgeSeconds; age < 0 || age > 60 {
		t.Fatalf("implausible stream read age %v", age)
	}
}

func TestSpanObserver(t *testing.T) {
	reg := NewRegistry()
	obs := reg.SpanObserver()
	obs("classify", 0.25)
	obs("classify", 0.75)
	obs("capture", 0.001)
	var fam *FamilySnapshot
	for _, f := range reg.Snapshot() {
		if f.Name == "ph_trace_span_seconds" {
			fam = &f
			break
		}
	}
	if fam == nil {
		t.Fatal("ph_trace_span_seconds not registered")
	}
	byStage := make(map[string]Sample)
	for _, s := range fam.Samples {
		if len(s.Labels) == 1 && s.Labels[0].Name == "stage" {
			byStage[s.Labels[0].Value] = s
		}
	}
	if s := byStage["classify"]; s.Count != 2 || s.Sum != 1.0 {
		t.Fatalf("classify histogram = count %d sum %v", s.Count, s.Sum)
	}
	if s := byStage["capture"]; s.Count != 1 || s.Sum != 0.001 {
		t.Fatalf("capture histogram = count %d sum %v", s.Count, s.Sum)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	b, err := json.Marshal(testRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{`"type":"counter"`, `"type":"histogram"`, `"name":"ph_nodes"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot JSON missing %s: %s", want, out)
		}
	}
}
