package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format served by Handler.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in the Prometheus text exposition format:
// a # HELP and # TYPE header per family, then one line per sample, with
// histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WriteText(w io.Writer) error {
	return WriteTextSnapshots(w, r.Snapshot())
}

// WriteTextSnapshots renders an already-taken family snapshot in the text
// exposition format. It is the serializer behind both a live registry's
// /metrics (WriteText) and the federated fleet rollup, whose merged view
// exists only as snapshots — never as a registry.
func WriteTextSnapshots(w io.Writer, fams []FamilySnapshot) error {
	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if fam.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(fam.Type.String())
		bw.WriteByte('\n')
		for _, s := range fam.Samples {
			if fam.Type == TypeHistogram {
				writeHistogramSample(bw, fam.Name, s)
				continue
			}
			writeSample(bw, fam.Name, s.Labels, "", "", formatValue(s.Value))
		}
	}
	return bw.Flush()
}

func writeHistogramSample(bw *bufio.Writer, name string, s Sample) {
	for _, b := range s.Buckets {
		writeSample(bw, name+"_bucket", s.Labels, "le", formatValue(b.UpperBound),
			strconv.FormatUint(b.Count, 10))
	}
	writeSample(bw, name+"_sum", s.Labels, "", "", formatValue(s.Sum))
	writeSample(bw, name+"_count", s.Labels, "", "", strconv.FormatUint(s.Count, 10))
}

// writeSample emits one exposition line; extraName/extraValue append a
// synthetic label (the histogram "le") after the sample's own labels.
func writeSample(bw *bufio.Writer, name string, labels []Label, extraName, extraValue, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip form, with infinities spelled +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler serves the registry in the text exposition format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}

var processStart = time.Now()

// lastStreamRead is the unix-nano timestamp of the most recent healthy
// stream read (0 = never). Stream consumers report through MarkStreamRead
// so /healthz can expose staleness without coupling to the client package.
var lastStreamRead atomic.Int64

// MarkStreamRead records a successful stream read at t, surfaced by
// /healthz as last_stream_read_age_seconds.
func MarkStreamRead(t time.Time) { lastStreamRead.Store(t.UnixNano()) }

// Health is the /healthz response body. Status is "ok" with a 200
// response in the base liveness probe — the extra fields carry context;
// wrappers (the fleet federator's aggregated handler, the WAL section)
// may downgrade Status to "degraded".
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Build identifies the main module ("path@version") when build info
	// is embedded.
	Build string `json:"build,omitempty"`
	// LastStreamReadAgeSeconds is the age of the most recent healthy
	// stream read; nil when the process never consumed a stream.
	LastStreamReadAgeSeconds *float64 `json:"last_stream_read_age_seconds,omitempty"`
	// WAL is the durable-store section, present when the process runs
	// with a WAL + checkpoint store (-store-dir).
	WAL *WALHealth `json:"wal,omitempty"`
}

// WALHealth is the durable-store section of a /healthz response. The
// daemons fill it from store.Status so an operator probing a durable
// process sees whether its disk state is advancing, not just that the
// process is alive.
type WALHealth struct {
	// LastSeq is the last assigned WAL record sequence.
	LastSeq uint64 `json:"last_seq"`
	// LastCheckpointSeq is the sequence the newest checkpoint covers
	// (0 = no checkpoint yet).
	LastCheckpointSeq uint64 `json:"last_checkpoint_seq"`
	// Segments is the number of WAL segment files on disk.
	Segments int `json:"segments"`
	// LastSyncError is the most recent fsync failure ("" = the last sync
	// succeeded). A non-empty value downgrades Status to "degraded":
	// appends are no longer reliably durable.
	LastSyncError string `json:"last_sync_error,omitempty"`
}

// CurrentHealth builds the base liveness body: status "ok", uptime, build
// identity, and stream staleness. Exported so wrappers composing richer
// health views (fleet aggregation in internal/obs) start from the same
// base the plain handler serves.
func CurrentHealth() Health {
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(processStart).Seconds(),
		GoVersion:     runtime.Version(),
		Build:         buildString(),
	}
	if ns := lastStreamRead.Load(); ns != 0 {
		age := time.Since(time.Unix(0, ns)).Seconds()
		h.LastStreamReadAgeSeconds = &age
	}
	return h
}

// buildString resolves the embedded main-module identity once.
var buildString = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok || bi.Main.Path == "" {
		return ""
	}
	return bi.Main.Path + "@" + bi.Main.Version
})

// HealthHandler serves a liveness probe: always 200 with
// {"status":"ok",...} plus uptime, build identity, and stream staleness.
func HealthHandler() http.Handler {
	return HealthHandlerFunc()
}

// HealthHandlerFunc serves the liveness probe with each extra applied to
// the body before encoding — the hook the daemons use to attach the WAL
// section without this package importing the store. An extra that sets a
// non-empty WAL.LastSyncError downgrades Status to "degraded"; the
// response stays 200 (liveness, not readiness — the fleet federator's
// aggregated handler is the one that returns 503).
func HealthHandlerFunc(extras ...func(*Health)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := CurrentHealth()
		for _, extra := range extras {
			if extra != nil {
				extra(&h)
			}
		}
		if h.WAL != nil && h.WAL.LastSyncError != "" {
			h.Status = "degraded"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
}
