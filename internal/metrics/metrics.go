// Package metrics is the dependency-free observability registry every
// pipeline stage reports through: counters, gauges, and histograms with
// atomic hot paths, optional labels, consistent snapshots, and
// Prometheus-style text exposition (expose.go). The deployed paper system
// judged selector groups by live capture efficiency; this package is what
// surfaces those numbers at runtime instead of in a post-hoc report.
//
// Concurrency: metric updates are lock-free atomics; child lookup on a
// labeled family takes a read lock only. Registration is get-or-create and
// idempotent, so independent components may bind the same metric name.
// Registering a name with a conflicting type or label set panics — that is
// a programming error, not an operational condition.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Type classifies a metric family.
type Type int

// Metric family types.
const (
	TypeCounter Type = iota + 1
	TypeGauge
	TypeHistogram
)

func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// MarshalJSON renders the type as its exposition keyword.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// DefaultMaxCardinality bounds the distinct label sets one family tracks.
// Beyond it, new label sets collapse into a single overflow child (label
// values replaced by OverflowLabel) so an unbounded label — say, one value
// per account id — cannot exhaust memory.
const DefaultMaxCardinality = 1024

// OverflowLabel is the label value of the overflow child.
const OverflowLabel = "_overflow"

// DefBuckets are the default histogram bounds, in seconds, spanning the
// sub-millisecond rotations of small worlds up to multi-second API calls.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat is a float64 updated through CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter by v; negative v panics.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter cannot decrease")
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit last
	counts []atomic.Uint64
	sum    atomicFloat
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; misses land in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// ObserveDuration records the seconds elapsed since start.
func (h *Histogram) ObserveDuration(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// keySep joins label values into child keys; it cannot appear in UTF-8
// label values as a standalone byte sequence used here.
const keySep = "\xff"

// family is one named metric with all its labeled children.
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64
	maxCard int

	mu       sync.RWMutex
	children map[string]any // *Counter | *Gauge | *Histogram
	labelSet map[string][]string
}

func (f *family) newChild() any {
	switch f.typ {
	case TypeCounter:
		return &Counter{}
	case TypeGauge:
		return &Gauge{}
	default:
		return &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
}

// child returns the metric for the label values, creating it on first use.
func (f *family) child(lvs []string) any {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, keySep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if len(f.children) >= f.maxCard {
		overflow := make([]string, len(f.labels))
		for i := range overflow {
			overflow[i] = OverflowLabel
		}
		lvs = overflow
		key = strings.Join(lvs, keySep)
		if c, ok := f.children[key]; ok {
			return c
		}
	}
	c = f.newChild()
	f.children[key] = c
	f.labelSet[key] = append([]string(nil), lvs...)
	return c
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// With returns the counter for the label values, in declaration order.
func (v *CounterVec) With(lvs ...string) *Counter { return v.fam.child(lvs).(*Counter) }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the label values, in declaration order.
func (v *GaugeVec) With(lvs ...string) *Gauge { return v.fam.child(lvs).(*Gauge) }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the label values, in declaration order.
func (v *HistogramVec) With(lvs ...string) *Histogram { return v.fam.child(lvs).(*Histogram) }

// Registry holds metric families. The zero value is not usable; call
// NewRegistry, or use the process-wide Default registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that instrumented components
// bind to unless given an explicit one.
func Default() *Registry { return defaultRegistry }

// family registers (or fetches) a metric family. Conflicting re-registration
// panics; a differing help string keeps the first registration's text.
func (r *Registry) family(name, help string, typ Type, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		maxCard:  DefaultMaxCardinality,
		children: make(map[string]any),
		labelSet: make(map[string][]string),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, TypeCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, TypeCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, TypeGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, TypeGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram. buckets are
// upper bounds (the +Inf bucket is implicit); nil uses DefBuckets. Bounds
// are sorted and deduplicated, and non-finite bounds are dropped.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, TypeHistogram, nil, cleanBuckets(buckets)).
		child(nil).(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.family(name, help, TypeHistogram, labels, cleanBuckets(buckets))}
}

func cleanBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// Label is one name/value pair of a sample.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Bucket is one cumulative histogram bucket of a snapshot.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// MarshalJSON renders the upper bound in exposition form ("+Inf" for the
// last bucket), since JSON numbers cannot express infinity.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		UpperBound string `json:"le"`
		Count      uint64 `json:"count"`
	}{formatValue(b.UpperBound), b.Count})
}

// Sample is one labeled series of a family snapshot. Counters and gauges
// fill Value; histograms fill Buckets (cumulative, ending at +Inf), Count,
// and Sum.
type Sample struct {
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// FamilySnapshot is the point-in-time state of one metric family.
type FamilySnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Type    Type     `json:"type"`
	Samples []Sample `json:"samples"`
}

// Snapshot captures every family, sorted by name with samples sorted by
// label values, so repeated snapshots of unchanged state are identical.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		snap := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Sample{}
			for i, lv := range f.labelSet[k] {
				s.Labels = append(s.Labels, Label{Name: f.labels[i], Value: lv})
			}
			switch m := f.children[k].(type) {
			case *Counter:
				s.Value = m.Value()
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				var cum uint64
				for i := range m.counts {
					cum += m.counts[i].Load()
					bound := math.Inf(1)
					if i < len(m.bounds) {
						bound = m.bounds[i]
					}
					s.Buckets = append(s.Buckets, Bucket{UpperBound: bound, Count: cum})
				}
				s.Count = cum
				s.Sum = m.Sum()
			}
			snap.Samples = append(snap.Samples, s)
		}
		f.mu.RUnlock()
		out = append(out, snap)
	}
	return out
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]* (the
// Prometheus metric-name grammar; label names additionally never use ':',
// which we simply don't emit).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
