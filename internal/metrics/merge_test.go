package metrics

import (
	"math"
	"strings"
	"testing"
)

// mustParse parses an exposition payload or fails the test.
func mustParse(t *testing.T, payload string) *Exposition {
	t.Helper()
	exp, err := ParseExposition(strings.NewReader(payload))
	if err != nil {
		t.Fatalf("ParseExposition: %v\npayload:\n%s", err, payload)
	}
	return exp
}

// renderSnapshots renders merged families back to exposition text.
func renderSnapshots(t *testing.T, fams []FamilySnapshot) string {
	t.Helper()
	var b strings.Builder
	if err := WriteTextSnapshots(&b, fams); err != nil {
		t.Fatalf("WriteTextSnapshots: %v", err)
	}
	return b.String()
}

func TestMergeCountersSummed(t *testing.T) {
	w1 := "# TYPE ph_items_total counter\nph_items_total{stage=\"match\"} 3\nph_items_total{stage=\"label\"} 1\n"
	w2 := "# TYPE ph_items_total counter\nph_items_total{stage=\"match\"} 4\n"
	fams := MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, w1)},
		{Name: "2", Exposition: mustParse(t, w2)},
	})
	if len(fams) != 1 || fams[0].Name != "ph_items_total" || fams[0].Type != TypeCounter {
		t.Fatalf("unexpected families: %+v", fams)
	}
	got := map[string]float64{}
	for _, s := range fams[0].Samples {
		if len(s.Labels) != 1 || s.Labels[0].Name != "stage" {
			t.Fatalf("counter sample grew labels (no shard stamp expected): %+v", s)
		}
		got[s.Labels[0].Value] = s.Value
	}
	if got["match"] != 7 || got["label"] != 1 {
		t.Fatalf("counter sums wrong: %v", got)
	}
}

func TestMergeGaugesStampedPerShard(t *testing.T) {
	w1 := "# TYPE ph_depth gauge\nph_depth{stage=\"match\"} 5\n"
	w2 := "# TYPE ph_depth gauge\nph_depth{stage=\"match\"} 9\n"
	// A gauge that already carries the merge label keeps it untouched.
	w3 := "# TYPE ph_depth gauge\nph_depth{shard=\"7\",stage=\"match\"} 2\n"
	fams := MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, w1)},
		{Name: "2", Exposition: mustParse(t, w2)},
		{Name: "3", Exposition: mustParse(t, w3)},
	})
	if len(fams) != 1 || fams[0].Type != TypeGauge {
		t.Fatalf("unexpected families: %+v", fams)
	}
	got := map[string]float64{}
	for _, s := range fams[0].Samples {
		var shard string
		for _, l := range s.Labels {
			if l.Name == MergeLabel {
				shard = l.Value
			}
		}
		if shard == "" {
			t.Fatalf("gauge sample missing %s label: %+v", MergeLabel, s)
		}
		got[shard] = s.Value
	}
	want := map[string]float64{"1": 5, "2": 9, "7": 2}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("gauge per-shard values wrong: got %v want %v", got, want)
		}
	}
}

func TestMergeHistogramsSummed(t *testing.T) {
	w := "# TYPE ph_lat histogram\n" +
		"ph_lat_bucket{le=\"0.1\"} 1\nph_lat_bucket{le=\"+Inf\"} 3\n" +
		"ph_lat_sum 1.5\nph_lat_count 3\n"
	fams := MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, w)},
		{Name: "2", Exposition: mustParse(t, w)},
	})
	if len(fams) != 1 || fams[0].Type != TypeHistogram {
		t.Fatalf("unexpected families: %+v", fams)
	}
	s := fams[0].Samples[0]
	if s.Count != 6 || s.Sum != 3.0 {
		t.Fatalf("histogram count/sum wrong: count=%d sum=%v", s.Count, s.Sum)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].Count != 2 || s.Buckets[1].Count != 6 {
		t.Fatalf("histogram buckets wrong: %+v", s.Buckets)
	}
	if !math.IsInf(s.Buckets[1].UpperBound, 1) {
		t.Fatalf("last bucket bound should be +Inf: %+v", s.Buckets[1])
	}
}

func TestMergeBucketUnionAcrossLayouts(t *testing.T) {
	w1 := "# TYPE h histogram\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.6\nh_count 2\n"
	w2 := "# TYPE h histogram\nh_bucket{le=\"0.25\"} 1\nh_bucket{le=\"+Inf\"} 4\nh_sum 3\nh_count 4\n"
	fams := MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, w1)},
		{Name: "2", Exposition: mustParse(t, w2)},
	})
	s := fams[0].Samples[0]
	if len(s.Buckets) != 3 {
		t.Fatalf("expected union of bucket bounds, got %+v", s.Buckets)
	}
	if s.Buckets[0].UpperBound != 0.25 || s.Buckets[1].UpperBound != 0.5 {
		t.Fatalf("buckets not sorted by bound: %+v", s.Buckets)
	}
	if s.Count != 6 || s.Sum != 3.6 {
		t.Fatalf("count/sum wrong: %d %v", s.Count, s.Sum)
	}
}

// TestParseRejectsDuplicateSeries pins the intra-payload rule the merge
// relies on: one payload never carries two samples of the same series, so
// cross-instance merging is the only summing path.
func TestParseRejectsDuplicateSeries(t *testing.T) {
	payload := "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(payload)); err == nil {
		t.Fatal("duplicate series accepted")
	}
	// Same name with distinct labels is fine.
	ok := "# TYPE a counter\na{x=\"1\"} 1\na{x=\"2\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("distinct-label series rejected: %v", err)
	}
}

// TestMergeEscapedLabelFixpoint runs the full federation loop on label
// values that need exposition escaping — quotes, backslashes, newlines —
// and checks scrape → merge → re-expose → parse → merge is a fixed point.
func TestMergeEscapedLabelFixpoint(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeVec("ph_weird", "escaped labels", "sel").
		With(`quote " slash \ newline` + "\n").Set(1.25)
	reg.CounterVec("ph_weird_total", "escaped labels", "sel").
		With(`a="b",c="d"`).Add(2)
	var payload strings.Builder
	if err := reg.WriteText(&payload); err != nil {
		t.Fatal(err)
	}

	merged := MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, payload.String())},
		{Name: "2", Exposition: mustParse(t, payload.String())},
	})
	round1 := renderSnapshots(t, merged)

	again := MergeInstances([]Instance{{Name: "coord", Exposition: mustParse(t, round1)}})
	round2 := renderSnapshots(t, again)
	if round1 != round2 {
		t.Fatalf("merge is not a fixpoint:\n--- first\n%s\n--- second\n%s", round1, round2)
	}
	if !strings.Contains(round1, `shard="1"`) || !strings.Contains(round1, `shard="2"`) {
		t.Fatalf("gauges not stamped per shard:\n%s", round1)
	}
}

// TestMergeTypeConflictIsDeterministic: the first instance to declare a
// name fixes the family type; later conflicting declarations coerce.
func TestMergeTypeConflictIsDeterministic(t *testing.T) {
	asCounter := "# TYPE a counter\na 1\n"
	asGauge := "# TYPE a gauge\na 5\n"
	fams := MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, asCounter)},
		{Name: "2", Exposition: mustParse(t, asGauge)},
	})
	if len(fams) != 1 || fams[0].Type != TypeCounter {
		t.Fatalf("first declaration should win: %+v", fams)
	}
	// Reversed order: gauge wins, and the counter instance's value lands
	// as per-instance state.
	fams = MergeInstances([]Instance{
		{Name: "1", Exposition: mustParse(t, asGauge)},
		{Name: "2", Exposition: mustParse(t, asCounter)},
	})
	if len(fams) != 1 || fams[0].Type != TypeGauge {
		t.Fatalf("first declaration should win: %+v", fams)
	}
}

func TestMergeNilAndEmptyInstances(t *testing.T) {
	fams := MergeInstances([]Instance{
		{Name: "1", Exposition: nil},
		{Name: "2", Exposition: mustParse(t, "")},
	})
	if len(fams) != 0 {
		t.Fatalf("expected empty merge, got %+v", fams)
	}
	if got := MergeInstances(nil); len(got) != 0 {
		t.Fatalf("nil instances should merge empty, got %+v", got)
	}
}

func TestToCountClamps(t *testing.T) {
	cases := map[float64]uint64{
		-1:               0,
		math.NaN():       0,
		0:                0,
		2.9:              2,
		math.Inf(1):      uint64(math.MaxInt64),
		1e300:            uint64(math.MaxInt64),
		float64(1 << 40): 1 << 40,
	}
	for in, want := range cases {
		if got := toCount(in); got != want {
			t.Fatalf("toCount(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestMergeText(t *testing.T) {
	w := "# TYPE c counter\nc 1\n# TYPE g gauge\ng 2\n"
	out, err := MergeText([]string{w, w}, []string{"", "worker-b"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "c 2") {
		t.Fatalf("counter not summed:\n%s", out)
	}
	if !strings.Contains(out, `g{shard="1"} 2`) || !strings.Contains(out, `g{shard="worker-b"} 2`) {
		t.Fatalf("gauges not stamped with instance names:\n%s", out)
	}
	if _, err := MergeText([]string{"not exposition ###"}, nil); err == nil {
		t.Fatal("malformed payload accepted")
	}
}
