package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	tests := []struct {
		name string
		op   func()
		want float64
	}{
		{"starts at zero", func() {}, 0},
		{"inc", c.Inc, 1},
		{"add", func() { c.Add(2.5) }, 3.5},
		{"add zero", func() { c.Add(0) }, 3.5},
	}
	for _, tt := range tests {
		tt.op()
		if got := c.Value(); got != tt.want {
			t.Fatalf("%s: value = %v, want %v", tt.name, got, tt.want)
		}
	}
	// Re-registration returns the same counter.
	if r.Counter("test_total", "ignored help") != c {
		t.Fatal("re-registration created a new counter")
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "").Add(-1)
}

func TestGaugeBasics(t *testing.T) {
	g := NewRegistry().Gauge("g", "a gauge")
	tests := []struct {
		name string
		op   func()
		want float64
	}{
		{"set", func() { g.Set(10) }, 10},
		{"add", func() { g.Add(5) }, 15},
		{"subtract", func() { g.Add(-20) }, -5},
		{"set again", func() { g.Set(0.25) }, 0.25},
	}
	for _, tt := range tests {
		tt.op()
		if got := g.Value(); got != tt.want {
			t.Fatalf("%s: value = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Samples) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	s := snap[0].Samples[0]
	// Cumulative: <=1: {0.5, 1}, <=2: +{1.5}, <=5: +{3}, +Inf: +{100}.
	want := []Bucket{
		{UpperBound: 1, Count: 2},
		{UpperBound: 2, Count: 3},
		{UpperBound: 5, Count: 4},
		{UpperBound: math.Inf(1), Count: 5},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("sample count/sum = %d/%v", s.Count, s.Sum)
	}
}

func TestHistogramDefaultAndDirtyBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("def_seconds", "", nil)
	if got, want := len(h.bounds), len(DefBuckets); got != want {
		t.Fatalf("default bounds = %d, want %d", got, want)
	}
	// Unsorted, duplicated, and non-finite bounds are cleaned.
	h2 := r.Histogram("dirty_seconds", "", []float64{5, 1, 5, math.Inf(1), math.NaN(), 2})
	want := []float64{1, 2, 5}
	if len(h2.bounds) != len(want) {
		t.Fatalf("cleaned bounds = %v", h2.bounds)
	}
	for i, b := range want {
		if h2.bounds[i] != b {
			t.Fatalf("cleaned bounds = %v, want %v", h2.bounds, want)
		}
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewRegistry().Histogram("d_seconds", "", nil)
	h.ObserveDuration(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("count=%d sum=%v after ObserveDuration", h.Count(), h.Sum())
	}
}

func TestVecLabelChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("group_total", "", "selector")
	v.With("a").Add(2)
	v.With("b").Inc()
	v.With("a").Inc() // same child as the first
	if got := v.With("a").Value(); got != 3 {
		t.Fatalf(`With("a") = %v, want 3`, got)
	}
	if got := v.With("b").Value(); got != 1 {
		t.Fatalf(`With("b") = %v, want 1`, got)
	}
	snap := findFamily(t, r, "group_total")
	if len(snap.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(snap.Samples))
	}
	// Sorted by label value.
	if snap.Samples[0].Labels[0].Value != "a" || snap.Samples[1].Labels[0].Value != "b" {
		t.Fatalf("sample order: %+v", snap.Samples)
	}

	gv := r.GaugeVec("g_vec", "", "k")
	gv.With("x").Set(4)
	if gv.With("x").Value() != 4 {
		t.Fatal("gauge vec child lost its value")
	}
	hv := r.HistogramVec("h_vec_seconds", "", []float64{1}, "k")
	hv.With("x").Observe(0.5)
	if hv.With("x").Count() != 1 {
		t.Fatal("histogram vec child lost its observation")
	}
}

func TestVecWrongLabelCount(t *testing.T) {
	v := NewRegistry().CounterVec("v_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	v.With("only-one")
}

func TestLabelCardinalityOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cards_total", "", "id")
	v.fam.maxCard = 3
	for i := 0; i < 10; i++ {
		v.With(fmt.Sprintf("id-%d", i)).Inc()
	}
	snap := findFamily(t, r, "cards_total")
	// 3 real children plus the overflow child.
	if len(snap.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(snap.Samples))
	}
	if got := v.With(OverflowLabel).Value(); got != 7 {
		t.Fatalf("overflow child = %v, want 7", got)
	}
	// Existing children keep working after overflow starts.
	v.With("id-0").Inc()
	if got := v.With("id-0").Value(); got != 2 {
		t.Fatalf("pre-overflow child = %v, want 2", got)
	}
}

func TestRegistryConflictPanics(t *testing.T) {
	tests := []struct {
		name string
		op   func(r *Registry)
	}{
		{"type mismatch", func(r *Registry) {
			r.Counter("m", "")
			r.Gauge("m", "")
		}},
		{"label mismatch", func(r *Registry) {
			r.CounterVec("m", "", "a")
			r.CounterVec("m", "", "b")
		}},
		{"invalid name", func(r *Registry) { r.Counter("9bad", "") }},
		{"empty name", func(r *Registry) { r.Counter("", "") }},
		{"invalid rune", func(r *Registry) { r.Counter("bad-name", "") }},
		{"invalid label", func(r *Registry) { r.CounterVec("ok", "", "bad label") }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tt.name)
				}
			}()
			tt.op(NewRegistry())
		})
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "").Inc()
	r.Gauge("aa", "").Set(1)
	v := r.CounterVec("mid_total", "", "k")
	v.With("z").Inc()
	v.With("a").Inc()
	s1, s2 := r.Snapshot(), r.Snapshot()
	if len(s1) != 3 || s1[0].Name != "aa" || s1[1].Name != "mid_total" || s1[2].Name != "zz_total" {
		t.Fatalf("family order: %+v", s1)
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || len(s1[i].Samples) != len(s2[i].Samples) {
			t.Fatal("repeated snapshots differ")
		}
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	c1 := Default().Counter("default_shared_total", "")
	c2 := Default().Counter("default_shared_total", "")
	if c1 != c2 {
		t.Fatal("Default() handed out distinct counters for one name")
	}
}

// TestConcurrentIncrementStress drives every metric kind from many
// goroutines; run under -race this is the package's concurrency gate, and
// the final snapshot must reconcile exactly with the work done.
func TestConcurrentIncrementStress(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 2000
	)
	c := r.Counter("stress_total", "")
	g := r.Gauge("stress_gauge", "")
	h := r.Histogram("stress_seconds", "", []float64{0.5})
	v := r.CounterVec("stress_vec_total", "", "worker")

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the goroutines hammer a shared label, half their own:
			// exercises both the read-lock fast path and child creation.
			label := "shared"
			if w%2 == 0 {
				label = fmt.Sprintf("w%d", w)
			}
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
				v.With(label).Inc()
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race against writers
				}
			}
		}(w)
	}
	wg.Wait()

	total := float64(goroutines * perG)
	if c.Value() != total {
		t.Fatalf("counter = %v, want %v", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge = %v, want %v", g.Value(), total)
	}
	if h.Count() != uint64(total) || h.Sum() != total {
		t.Fatalf("histogram count/sum = %d/%v, want %v", h.Count(), h.Sum(), total)
	}
	var vecSum float64
	for _, s := range findFamily(t, r, "stress_vec_total").Samples {
		vecSum += s.Value
	}
	if vecSum != total {
		t.Fatalf("vec total = %v, want %v", vecSum, total)
	}
}

func findFamily(t *testing.T, r *Registry, name string) FamilySnapshot {
	t.Helper()
	for _, f := range r.Snapshot() {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %s not in snapshot", name)
	return FamilySnapshot{}
}
