package metrics

// SpanObserver returns a trace-span observer feeding the
// ph_trace_span_seconds histogram family, partitioned by pipeline stage.
// Wire it into trace.Config.Observer so every completed span lands in the
// same registry the aggregate instruments use: the per-stage histogram sum
// then equals the summed span durations by construction.
func (r *Registry) SpanObserver() func(stage string, seconds float64) {
	vec := r.HistogramVec("ph_trace_span_seconds",
		"Duration of pipeline trace spans by stage.", nil, "stage")
	return func(stage string, seconds float64) {
		vec.With(stage).Observe(seconds)
	}
}
