// Package honeypot implements the baselines the paper compares against
// (§V-E, Table VII, Figure 6):
//
//   - Traditional manually-deployed honeypots in the spirit of Stringhini
//     et al. (ACSAC'10), Lee et al. (ICWSM'11), and Yang et al. (ACSAC'14):
//     freshly created artificial accounts with manually configured
//     attributes, injected into the simulated world. Because a new account
//     cannot fake a long history — account age, list memberships, organic
//     mention traffic — its attraction to spammers is structurally lower
//     than a harnessed real account's, which is exactly the paper's
//     argument.
//
//   - The published systems' efficiency numbers (Table VII's literature
//     rows), which were constants in the paper too.
package honeypot

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Config parameterizes a traditional honeypot deployment.
type Config struct {
	// Nodes is the number of artificial honeypot accounts to create.
	Nodes int
	// Friends is the manually configured following count (honeypots
	// follow users to appear social; they cannot buy organic followers).
	Friends int
	// PostsPerHour is the bait-posting rate.
	PostsPerHour float64
	// Seed drives account fabrication.
	Seed int64
}

// DefaultConfig mirrors the published deployments' scale (tens of nodes).
func DefaultConfig() Config {
	return Config{Nodes: 60, Friends: 1000, PostsPerHour: 0.5, Seed: 1}
}

// Deployment is a set of injected honeypot accounts with capture counters.
type Deployment struct {
	cfg      Config
	world    *socialnet.World
	nodes    map[socialnet.AccountID]struct{}
	deployed time.Time

	tweets   int
	spams    int
	spammers map[socialnet.AccountID]struct{}
	hours    float64
}

// Deploy fabricates cfg.Nodes fresh accounts and injects them into the
// world. The accounts imitate normal users (bait descriptions, some
// following activity) but start with zero history: age ≈ 0, no lists, no
// followers, no favourites — the attributes the paper notes cannot be
// manually set up.
func Deploy(world *socialnet.World, cfg Config, now time.Time) *Deployment {
	if cfg.Nodes <= 0 {
		cfg.Nodes = DefaultConfig().Nodes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Deployment{
		cfg:      cfg,
		world:    world,
		nodes:    make(map[socialnet.AccountID]struct{}, cfg.Nodes),
		deployed: now,
		spammers: make(map[socialnet.AccountID]struct{}),
	}
	for i := 0; i < cfg.Nodes; i++ {
		imgSeed := rng.Int63()
		a := &socialnet.Account{
			ScreenName:       fmt.Sprintf("friendly_user_%04d", rng.Intn(10000)),
			Name:             "Friendly User",
			Description:      "love music, movies and meeting new people",
			CreatedAt:        now, // brand new — age cannot be faked
			FriendsCount:     cfg.Friends,
			FollowersCount:   rng.Intn(5), // nobody follows a day-old account
			ProfileImageSeed: imgSeed,
			ProfileImageHash: imagehash.DHash(imagehash.Synthesize(imgSeed)),
			Kind:             socialnet.KindNormal,
			CampaignID:       socialnet.NoCampaign,
			HashtagCategory:  socialnet.HashtagGeneral,
			TrendAffinity:    socialnet.TrendNone,
			TweetsPerHour:    cfg.PostsPerHour,
			PreferredSource:  socialnet.SourceWeb,
		}
		id := world.AddAccount(a)
		d.nodes[id] = struct{}{}
	}
	return d
}

// NodeIDs returns the honeypot account ids.
func (d *Deployment) NodeIDs() []socialnet.AccountID {
	ids := make([]socialnet.AccountID, 0, len(d.nodes))
	for id := range d.nodes {
		ids = append(ids, id)
	}
	return ids
}

// OnTweet feeds the honeypot's capture filter: anything mentioning a
// honeypot account is trapped. Ground truth is read directly — a honeypot
// knows that unsolicited mentions of a fake account are spam; that is its
// defining advantage and why the paper's comparison focuses on *rate*,
// not precision.
func (d *Deployment) OnTweet(t *socialnet.Tweet) {
	hit := false
	for _, m := range t.Mentions {
		if _, ok := d.nodes[m]; ok {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	d.tweets++
	if t.Spam {
		d.spams++
		d.spammers[t.AuthorID] = struct{}{}
	}
}

// AddHours accrues monitored time for the PGE denominator.
func (d *Deployment) AddHours(h float64) { d.hours += h }

// Stats reports the deployment's capture counters.
func (d *Deployment) Stats() (tweets, spams, spammers int, nodeHours float64) {
	return d.tweets, d.spams, len(d.spammers), float64(len(d.nodes)) * d.hours
}

// PGE returns spammers garnered per node per hour.
func (d *Deployment) PGE() float64 {
	_, _, spammers, nodeHours := d.Stats()
	if nodeHours == 0 {
		return 0
	}
	return float64(spammers) / nodeHours
}

// LiteratureRow is one published honeypot system's efficiency (the paper's
// Table VII constants).
type LiteratureRow struct {
	System   string
	Year     int
	Duration string
	Nodes    int
	Spams    int // -1 when unreported
	Spammers int // -1 when unreported
	PGE      float64
}

// LiteratureRows reproduces the published systems the paper compares
// against in Table VII.
func LiteratureRows() []LiteratureRow {
	return []LiteratureRow{
		{System: "Stringhini et al. [27]", Year: 2010, Duration: "11 months", Nodes: 300, Spams: -1, Spammers: 15857, PGE: 0.0067},
		{System: "Lee et al. [17]", Year: 2011, Duration: "7 months", Nodes: 60, Spams: -1, Spammers: 36000, PGE: 0.12},
		{System: "Yang et al. [38]", Year: 2014, Duration: "5 months", Nodes: 96, Spams: 17000, Spammers: 1159, PGE: 0.0034},
		{System: "Yang et al. [38] advanced", Year: 2014, Duration: "10 days", Nodes: 10, Spams: -1, Spammers: -1, PGE: 0.087},
	}
}

// BestLiteraturePGE returns the highest published honeypot PGE (Lee et
// al.'s 0.12 — the denominator of the paper's "at least 19× faster").
func BestLiteraturePGE() float64 {
	best := 0.0
	for _, r := range LiteratureRows() {
		if r.PGE > best {
			best = r.PGE
		}
	}
	return best
}
