package honeypot

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func testWorld(t *testing.T) *socialnet.World {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDeployInjectsAccounts(t *testing.T) {
	w := testWorld(t)
	before := w.NumAccounts()
	d := Deploy(w, Config{Nodes: 20, Friends: 500, Seed: 1}, time.Now())
	if w.NumAccounts() != before+20 {
		t.Fatalf("world grew by %d, want 20", w.NumAccounts()-before)
	}
	if len(d.NodeIDs()) != 20 {
		t.Fatalf("deployment has %d nodes", len(d.NodeIDs()))
	}
	for _, id := range d.NodeIDs() {
		a := w.Account(id)
		if a == nil {
			t.Fatalf("honeypot %d not in world", id)
		}
		if a.Kind != socialnet.KindNormal || a.CampaignID != socialnet.NoCampaign {
			t.Fatal("honeypot account mislabeled")
		}
	}
}

func TestDeployDefaultsNodes(t *testing.T) {
	w := testWorld(t)
	d := Deploy(w, Config{}, time.Now())
	if len(d.NodeIDs()) != DefaultConfig().Nodes {
		t.Fatalf("default deploy = %d nodes", len(d.NodeIDs()))
	}
}

func TestAddAccountAssignsUniqueIDs(t *testing.T) {
	w := testWorld(t)
	seen := make(map[socialnet.AccountID]struct{})
	for _, a := range w.Accounts() {
		seen[a.ID] = struct{}{}
	}
	for i := 0; i < 10; i++ {
		id := w.AddAccount(&socialnet.Account{ScreenName: "x"})
		if _, dup := seen[id]; dup {
			t.Fatalf("AddAccount reused id %d", id)
		}
		seen[id] = struct{}{}
	}
}

func TestOnTweetCountsOnlyHoneypotMentions(t *testing.T) {
	w := testWorld(t)
	d := Deploy(w, Config{Nodes: 5, Seed: 1}, time.Now())
	hp := d.NodeIDs()[0]

	d.OnTweet(&socialnet.Tweet{ID: 1, AuthorID: 500, Mentions: []socialnet.AccountID{hp}, Spam: true})
	d.OnTweet(&socialnet.Tweet{ID: 2, AuthorID: 501, Mentions: []socialnet.AccountID{hp}})
	d.OnTweet(&socialnet.Tweet{ID: 3, AuthorID: 502, Mentions: []socialnet.AccountID{1}}) // unrelated

	tweets, spams, spammers, _ := d.Stats()
	if tweets != 2 || spams != 1 || spammers != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/1", tweets, spams, spammers)
	}
}

func TestPGEComputation(t *testing.T) {
	w := testWorld(t)
	d := Deploy(w, Config{Nodes: 10, Seed: 1}, time.Now())
	for i := 0; i < 5; i++ {
		d.OnTweet(&socialnet.Tweet{
			ID: socialnet.TweetID(i), AuthorID: socialnet.AccountID(100 + i),
			Mentions: []socialnet.AccountID{d.NodeIDs()[0]}, Spam: true,
		})
	}
	d.AddHours(10)
	if got := d.PGE(); got != 0.05 {
		t.Fatalf("PGE = %v, want 5/(10*10) = 0.05", got)
	}
}

func TestPGEZeroWithoutHours(t *testing.T) {
	w := testWorld(t)
	d := Deploy(w, Config{Nodes: 10, Seed: 1}, time.Now())
	if d.PGE() != 0 {
		t.Fatal("PGE without monitored hours should be 0")
	}
}

func TestLiteratureRows(t *testing.T) {
	rows := LiteratureRows()
	if len(rows) != 4 {
		t.Fatalf("%d literature rows, want 4", len(rows))
	}
	if BestLiteraturePGE() != 0.12 {
		t.Fatalf("best literature PGE = %v, want Lee's 0.12", BestLiteraturePGE())
	}
}

// The paper's central comparison: in the same world over the same hours, a
// pseudo-honeypot network garners spammers at a far higher per-node-hour
// rate than freshly deployed traditional honeypots.
func TestPseudoHoneypotOutperformsTraditional(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)

	hp := Deploy(w, Config{Nodes: 50, Friends: 1000, Seed: 1}, e.Now())
	e.Subscribe(hp.OnTweet)
	e.OnHourStart(func(int, time.Time) { hp.AddHours(1) })

	m := core.NewMonitor(core.MonitorConfig{
		Specs: core.StandardSpecs(1),
		Seed:  1,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := core.Attach(m, e)
	defer detach()

	e.RunHours(12)

	// Score pseudo-honeypot captures with ground truth (same oracle the
	// honeypot enjoys) for a like-for-like rate comparison.
	verdicts := make([]bool, len(m.Captures()))
	for i, c := range m.Captures() {
		verdicts[i] = c.Tweet.Spam
	}
	m.AttributeSpam(verdicts)

	var pseudoSpammers int
	var pseudoNodeHours float64
	spammerSet := make(map[socialnet.AccountID]struct{})
	for _, g := range m.Groups() {
		pseudoNodeHours += g.NodeHours
		for id := range g.Spammers {
			spammerSet[id] = struct{}{}
		}
	}
	pseudoSpammers = len(spammerSet)
	pseudoPGE := float64(pseudoSpammers) / pseudoNodeHours

	if pseudoSpammers == 0 {
		t.Fatal("pseudo-honeypot caught nothing")
	}
	hpPGE := hp.PGE()
	if pseudoPGE <= hpPGE {
		t.Fatalf("pseudo PGE %v <= honeypot PGE %v", pseudoPGE, hpPGE)
	}
	t.Logf("pseudo PGE %.4f vs honeypot PGE %.4f (ratio %.1f)",
		pseudoPGE, hpPGE, pseudoPGE/maxF(hpPGE, 1e-9))
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
