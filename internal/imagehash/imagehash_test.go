package imagehash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDHashDeterministic(t *testing.T) {
	m := Synthesize(42)
	if DHash(m) != DHash(m) {
		t.Fatal("DHash is not deterministic")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, b := Synthesize(7), Synthesize(7)
	if DHash(a) != DHash(b) {
		t.Fatal("Synthesize with equal seeds produced different images")
	}
}

func TestDistanceIdentityIsZero(t *testing.T) {
	h := DHash(Synthesize(1))
	if d := h.Distance(h); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
}

func TestDifferentSeedsHashFarApart(t *testing.T) {
	// Different synthetic images should (almost always) land beyond the
	// grouping threshold. Check the average over many pairs rather than
	// requiring every pair to be far, since perceptual hashes have rare
	// collisions by design.
	far := 0
	const pairs = 100
	for i := 0; i < pairs; i++ {
		a := DHash(Synthesize(int64(i)))
		b := DHash(Synthesize(int64(i + 1000)))
		if a.Distance(b) > DefaultThreshold {
			far++
		}
	}
	if far < pairs*9/10 {
		t.Fatalf("only %d/%d unrelated pairs beyond threshold", far, pairs)
	}
}

func TestPerturbedImageStaysWithinThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := Synthesize(99)
	baseHash := DHash(base)
	within := 0
	const variants = 50
	for i := 0; i < variants; i++ {
		v := Perturb(base, 40, rng)
		if baseHash.Distance(DHash(v)) <= DefaultThreshold {
			within++
		}
	}
	if within < variants*9/10 {
		t.Fatalf("only %d/%d perturbed variants within threshold", within, variants)
	}
}

func TestPerturbZeroAmplitudeIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := Synthesize(5)
	v := Perturb(base, 0, rng)
	for i := range base.Pix {
		if base.Pix[i] != v.Pix[i] {
			t.Fatal("Perturb with amplitude 0 modified pixels")
		}
	}
}

func TestImageBoundsAccess(t *testing.T) {
	m := NewImage(4, 4)
	m.Set(2, 2, 100)
	if m.At(2, 2) != 100 {
		t.Fatal("Set/At round trip failed")
	}
	if m.At(-1, 0) != 0 || m.At(0, -1) != 0 || m.At(4, 0) != 0 || m.At(0, 4) != 0 {
		t.Fatal("out-of-range At should read 0")
	}
	m.Set(-1, 0, 9) // must not panic
	m.Set(9, 9, 9)
}

func TestNewImageDegenerateSizes(t *testing.T) {
	m := NewImage(0, 5)
	if m.W != 0 || len(m.Pix) != 0 {
		t.Fatal("degenerate image should be empty")
	}
	// Hashing an empty image must not panic.
	_ = DHash(m)
}

func TestHashString(t *testing.T) {
	h := Hash{Hi: 0xABCD, Lo: 1}
	want := "000000000000abcd0000000000000001"
	if got := h.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGrouperClustersCampaign(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGrouper(DefaultThreshold)

	base := Synthesize(1234)
	campaignID := -1
	for i := 0; i < 20; i++ {
		id := g.Add(DHash(Perturb(base, 30, rng)))
		if campaignID == -1 {
			campaignID = id
		}
	}
	// All campaign variants should mostly share one group.
	if g.Len() > 3 {
		t.Fatalf("campaign split into %d groups, want few", g.Len())
	}

	// An unrelated image should open a new group.
	before := g.Len()
	g.Add(DHash(Synthesize(777777)))
	if g.Len() != before+1 {
		t.Fatalf("unrelated image joined an existing group")
	}
}

func TestGrouperDefaultThreshold(t *testing.T) {
	g := NewGrouper(0)
	if g.threshold != DefaultThreshold {
		t.Fatalf("threshold = %d, want default %d", g.threshold, DefaultThreshold)
	}
}

// Property: Hamming distance is a metric on the hash space — symmetric,
// zero on identity, and satisfies the triangle inequality.
func TestDistanceMetricProperty(t *testing.T) {
	prop := func(a, b, c Hash) bool {
		if a.Distance(b) != b.Distance(a) {
			return false
		}
		if a.Distance(a) != 0 {
			return false
		}
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is bounded by 128 bits.
func TestDistanceBoundProperty(t *testing.T) {
	prop := func(a, b Hash) bool {
		d := a.Distance(b)
		return d >= 0 && d <= 128
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDHash(b *testing.B) {
	m := Synthesize(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DHash(m)
	}
}
