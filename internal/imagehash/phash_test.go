package imagehash

import (
	"math/rand"
	"testing"
)

func TestPHashDeterministic(t *testing.T) {
	m := Synthesize(42)
	if PHash(m) != PHash(m) {
		t.Fatal("PHash is not deterministic")
	}
	if PHash(Synthesize(7)) != PHash(Synthesize(7)) {
		t.Fatal("equal seeds produced different pHashes")
	}
}

func TestPHashEmptyImageNoPanic(t *testing.T) {
	_ = PHash(NewImage(0, 5))
	_ = Rescale(NewImage(0, 0), 48, 48)
	_ = Recompress(NewImage(0, 0), 60)
}

// The DC coefficient is excluded from the hash, so a global brightness
// shift (a re-encode with different gamma/levels) moves no bits at all.
func TestPHashBrightnessInvariant(t *testing.T) {
	base := Synthesize(17)
	// Compress the dynamic range so the +24 shift cannot clamp.
	mid := NewImage(base.W, base.H)
	for i, v := range base.Pix {
		mid.Pix[i] = v/2 + 64
	}
	bright := NewImage(mid.W, mid.H)
	for i, v := range mid.Pix {
		bright.Pix[i] = v + 24
	}
	if PHash(mid) != PHash(bright) {
		t.Fatal("global brightness shift moved the pHash")
	}
}

// Rescale at the identity size must reproduce the image exactly (the
// bilinear kernel degenerates to a copy), so thumbnail pipelines that
// happen to match the stored size are lossless.
func TestRescaleIdentity(t *testing.T) {
	m := Synthesize(3)
	r := Rescale(m, m.W, m.H)
	for i := range m.Pix {
		if m.Pix[i] != r.Pix[i] {
			t.Fatal("same-size Rescale modified pixels")
		}
	}
}

// Property (robustness under lossy recompression): one JPEG-style round
// trip at any realistic quality moves the pHash by at most the paper's
// grouping threshold — low-frequency DCT coefficients are exactly what
// quantization preserves. This is where dHash is brittle (its adjacent
// 9×9-thumbnail comparisons flip on block artifacts); the cluster
// comparison below quantifies the gap.
func TestPHashRecompressionBounded(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		base := Synthesize(seed)
		h := PHash(base)
		for _, q := range []int{30, 45, 60, 75, 90} {
			if d := h.Distance(PHash(Recompress(base, q))); d > DefaultThreshold {
				t.Fatalf("seed %d quality %d: pHash moved %d bits, want ≤ %d",
					seed, q, d, DefaultThreshold)
			}
		}
	}
}

// Property (robustness under rescaling): resampling to any realistic
// thumbnail size keeps the pHash within 32 bits of the original — a
// quarter of the hash, far below the ≈46-bit floor unrelated synthetic
// images keep between each other — so rescaled variants stay nearer
// their base than any unrelated image.
func TestPHashRescaleBounded(t *testing.T) {
	const bound = 32
	for seed := int64(0); seed < 40; seed++ {
		base := Synthesize(seed)
		h := PHash(base)
		for _, sz := range []int{48, 64, 96, 128} {
			if d := h.Distance(PHash(Rescale(base, sz, sz))); d > bound {
				t.Fatalf("seed %d size %d: pHash moved %d bits, want ≤ %d",
					seed, sz, d, bound)
			}
		}
	}
}

// Unrelated synthetic images land far apart under pHash, same as the
// dHash guarantee the grouping depends on.
func TestPHashDifferentSeedsFarApart(t *testing.T) {
	far := 0
	const pairs = 100
	for i := 0; i < pairs; i++ {
		a := PHash(Synthesize(int64(i)))
		b := PHash(Synthesize(int64(i + 1000)))
		if a.Distance(b) > 32 {
			far++
		}
	}
	if far < pairs*9/10 {
		t.Fatalf("only %d/%d unrelated pairs beyond 32 bits", far, pairs)
	}
}

// TestPHashVsDHashRecompressedClusters is the cluster-quality comparison
// behind Config.ImageHashMode: campaign avatars re-uploaded through
// lossy encoders at mixed qualities, grouped at the paper's threshold.
// pHash keeps campaigns nearly whole where dHash fragments them several
// times over; neither hash merges distinct campaigns.
func TestPHashVsDHashRecompressedClusters(t *testing.T) {
	const (
		campaigns = 10
		members   = 12
	)
	quals := []int{30, 45, 60, 75, 90}
	cluster := func(hash func(*Image) Hash) (groups, merges int) {
		rng := rand.New(rand.NewSource(7))
		g := NewGrouper(DefaultThreshold)
		owner := map[int]int{} // group id -> campaign
		for c := 0; c < campaigns; c++ {
			base := Synthesize(int64(1000 + c))
			for m := 0; m < members; m++ {
				v := Recompress(Perturb(base, 40, rng), quals[rng.Intn(len(quals))])
				id := g.Add(hash(v))
				if prev, ok := owner[id]; ok && prev != c {
					merges++
				}
				owner[id] = c
			}
		}
		return g.Len(), merges
	}

	dGroups, dMerges := cluster(DHash)
	pGroups, pMerges := cluster(PHash)
	if dMerges != 0 || pMerges != 0 {
		t.Fatalf("cross-campaign merges: dHash %d, pHash %d, want 0", dMerges, pMerges)
	}
	// Perfect recall would be one group per campaign. pHash should stay
	// near it; dHash fragments badly under block artifacts (measured:
	// pHash 14 groups, dHash 40 for this configuration).
	if pGroups > campaigns*2 {
		t.Fatalf("pHash fragmented recompressed campaigns into %d groups (campaigns=%d)",
			pGroups, campaigns)
	}
	if dGroups <= pGroups {
		t.Fatalf("expected dHash (%d groups) to fragment more than pHash (%d groups)",
			dGroups, pGroups)
	}
}

// TestMutatedWorldPipelineClusters pins the exact mutation the socialnet
// world applies with MutateCampaignImages (Perturb → 48×48 rescale →
// quality-60 recompression): variants of one campaign still cluster at a
// moderate threshold under pHash while an unrelated image opens its own
// group.
func TestMutatedWorldPipelineClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGrouper(20)
	base := Synthesize(1234)
	for i := 0; i < 20; i++ {
		v := Recompress(Rescale(Perturb(base, 40, rng), 48, 48), 60)
		g.Add(PHash(v))
	}
	if g.Len() > 3 {
		t.Fatalf("mutated campaign split into %d pHash groups, want few", g.Len())
	}
	before := g.Len()
	g.Add(PHash(Synthesize(777777)))
	if g.Len() != before+1 {
		t.Fatal("unrelated image joined a mutated campaign's pHash group")
	}
}

func BenchmarkPHash(b *testing.B) {
	m := Synthesize(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PHash(m)
	}
}

func BenchmarkRecompress(b *testing.B) {
	m := Synthesize(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Recompress(m, 60)
	}
}
