package imagehash

import "math"

// pHash (perceptual DCT hash) complements dHash for campaign-image
// clustering: where dHash compares adjacent thumbnail pixels — exact on
// the synthetic block avatars but brittle under rescaling and lossy
// recompression — pHash thresholds the image's low-frequency DCT
// coefficients against their median. Low frequencies survive resampling
// and JPEG-style quantization, so mutated campaign variants (rescaled,
// recompressed, badge-edited) stay within the Hamming threshold of their
// base while unrelated images remain far apart.

const (
	// phashSize is the square input the image is reduced to before the
	// DCT. 32×32 is the conventional pHash working size: large enough
	// that the retained low-frequency block is insensitive to the
	// original resolution, small enough that the transform is cheap.
	phashSize = 32
	// phashBandW/H bound the retained low-frequency coefficient block:
	// 8 rows × 16 columns = 128 coefficients, one per hash bit.
	phashBandW = 16
	phashBandH = 8
)

// PHash computes the 128-bit perceptual DCT hash of m: reduce to 32×32,
// apply a 2-D DCT-II, keep the 8×16 lowest-frequency block, and set each
// bit if its coefficient exceeds the block's median. The DC coefficient
// (overall brightness) is excluded from both the median and the hash, so
// global brightness shifts do not move the hash at all.
func PHash(m *Image) Hash {
	t := reduce(m, phashSize, phashSize)
	coeffs := dct2d(t)

	band := make([]float64, 0, phashBandW*phashBandH)
	for v := 0; v < phashBandH; v++ {
		for u := 0; u < phashBandW; u++ {
			if u == 0 && v == 0 {
				continue // DC
			}
			band = append(band, coeffs[v*phashSize+u])
		}
	}
	med := median(band)

	var hi, lo uint64
	bit := 0
	for v := 0; v < phashBandH; v++ {
		for u := 0; u < phashBandW; u++ {
			if !(u == 0 && v == 0) && coeffs[v*phashSize+u] > med {
				if bit < 64 {
					hi |= 1 << uint(63-bit)
				} else {
					lo |= 1 << uint(127-bit)
				}
			}
			bit++
		}
	}
	return Hash{Hi: hi, Lo: lo}
}

// dct2d computes the 2-D DCT-II of a square image as two 1-D passes
// (rows then columns), returning row-major coefficients.
func dct2d(m *Image) []float64 {
	n := phashSize
	tmp := make([]float64, n*n)
	out := make([]float64, n*n)
	row := make([]float64, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			row[x] = float64(m.At(x, y))
		}
		dst := tmp[y*n : (y+1)*n]
		dct1d(row, dst)
	}
	col := make([]float64, n)
	colOut := make([]float64, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = tmp[y*n+x]
		}
		dct1d(col, colOut)
		for y := 0; y < n; y++ {
			out[y*n+x] = colOut[y]
		}
	}
	return out
}

// dct1d computes the orthonormal DCT-II of src into dst (equal lengths).
func dct1d(src, dst []float64) {
	n := len(src)
	for k := 0; k < n; k++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += src[i] * math.Cos(math.Pi*float64(k)*(2*float64(i)+1)/(2*float64(n)))
		}
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		dst[k] = sum * scale
	}
}

// median returns the median of xs (average of the middle pair for even
// lengths). xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// Insertion sort: the band is 127 elements, far below the point
	// where sort.Float64s wins.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Rescale resamples m to w×h with bilinear interpolation, modelling the
// platform's thumbnail pipeline. Deterministic; no randomness involved.
func Rescale(m *Image, w, h int) *Image {
	out := NewImage(w, h)
	if m.W == 0 || m.H == 0 || w <= 0 || h <= 0 {
		return out
	}
	sx := float64(m.W) / float64(w)
	sy := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			wx := fx - float64(x0)
			v := (1-wy)*((1-wx)*sampleClamped(m, x0, y0)+wx*sampleClamped(m, x0+1, y0)) +
				wy*((1-wx)*sampleClamped(m, x0, y0+1)+wx*sampleClamped(m, x0+1, y0+1))
			out.Set(x, y, clampByte(math.Round(v)))
		}
	}
	return out
}

// sampleClamped reads a pixel with edge-clamped coordinates.
func sampleClamped(m *Image, x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= m.W {
		x = m.W - 1
	}
	if y >= m.H {
		y = m.H - 1
	}
	return float64(m.Pix[y*m.W+x])
}

// jpegQuantBase is the standard JPEG luminance quantization table
// (Annex K of the JPEG spec), the matrix real encoders scale by quality.
var jpegQuantBase = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// Recompress simulates one JPEG-style lossy round trip at the given
// quality (1–100): each 8×8 block is DCT-transformed, quantized with the
// standard luminance table scaled by quality, dequantized, and inverse
// transformed. This is the dominant distortion a re-uploaded avatar
// suffers, and the perturbation the pHash robustness tests drive.
// Deterministic; no randomness involved.
func Recompress(m *Image, quality int) *Image {
	out := NewImage(m.W, m.H)
	if m.W == 0 || m.H == 0 {
		return out
	}
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	// The libjpeg quality→scale mapping.
	var scale float64
	if quality < 50 {
		scale = 5000 / float64(quality)
	} else {
		scale = 200 - 2*float64(quality)
	}
	var quant [64]float64
	for i, q := range jpegQuantBase {
		v := math.Floor((q*scale + 50) / 100)
		if v < 1 {
			v = 1
		}
		quant[i] = v
	}

	const bs = 8
	var block, freq [64]float64
	for by := 0; by < m.H; by += bs {
		for bx := 0; bx < m.W; bx += bs {
			// Level-shifted block with edge-clamped reads (partial edge
			// blocks pad by replication, as encoders do).
			for y := 0; y < bs; y++ {
				for x := 0; x < bs; x++ {
					block[y*bs+x] = sampleClamped(m, bx+x, by+y) - 128
				}
			}
			dctBlock(&block, &freq)
			for i := range freq {
				freq[i] = math.Round(freq[i]/quant[i]) * quant[i]
			}
			idctBlock(&freq, &block)
			for y := 0; y < bs && by+y < m.H; y++ {
				for x := 0; x < bs && bx+x < m.W; x++ {
					out.Set(bx+x, by+y, clampByte(math.Round(block[y*bs+x]+128)))
				}
			}
		}
	}
	return out
}

// dctBlock computes the orthonormal 8×8 DCT-II of src into dst.
func dctBlock(src, dst *[64]float64) {
	const n = 8
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			sum := 0.0
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					sum += src[y*n+x] *
						math.Cos(math.Pi*float64(u)*(2*float64(x)+1)/16) *
						math.Cos(math.Pi*float64(v)*(2*float64(y)+1)/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = math.Sqrt2 / 2
			}
			if v == 0 {
				cv = math.Sqrt2 / 2
			}
			dst[v*n+u] = sum * cu * cv / 4
		}
	}
}

// idctBlock inverts dctBlock.
func idctBlock(src, dst *[64]float64) {
	const n = 8
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			sum := 0.0
			for v := 0; v < n; v++ {
				for u := 0; u < n; u++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = math.Sqrt2 / 2
					}
					if v == 0 {
						cv = math.Sqrt2 / 2
					}
					sum += cu * cv * src[v*n+u] *
						math.Cos(math.Pi*float64(u)*(2*float64(x)+1)/16) *
						math.Cos(math.Pi*float64(v)*(2*float64(y)+1)/16)
				}
			}
			dst[y*n+x] = sum / 4
		}
	}
}
