// Package imagehash implements the dHash (difference hash) perceptual image
// hashing the paper uses to cluster spam-campaign profile images
// (paper §IV-B): reduce the image to a 9×9 grayscale thumbnail, compare
// adjacent pixels horizontally and vertically to obtain two 64-bit values,
// and concatenate them into a 128-bit hash compared under Hamming distance.
//
// Because real profile images are gated behind the Twitter API, the package
// also provides a deterministic synthetic profile-image generator: campaign
// accounts share a base pattern perturbed by per-account noise, which keeps
// their hashes within the paper's Hamming threshold while unrelated images
// land far apart.
package imagehash

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
)

const (
	// thumbSize is the reduced thumbnail edge length used by dHash.
	// A 9×9 grid yields 8 comparisons per row/column, i.e. 64 bits per
	// direction.
	thumbSize = 9

	// DefaultThreshold is the paper's Hamming-distance grouping threshold.
	DefaultThreshold = 5
)

// Hash is a 128-bit dHash: Hi holds the horizontal-difference bits and Lo
// the vertical-difference bits.
type Hash struct {
	Hi uint64 `json:"hi"`
	Lo uint64 `json:"lo"`
}

// String renders the hash as 32 hex digits.
func (h Hash) String() string {
	return fmt.Sprintf("%016x%016x", h.Hi, h.Lo)
}

// Distance returns the Hamming distance between h and other.
func (h Hash) Distance(other Hash) int {
	return bits.OnesCount64(h.Hi^other.Hi) + bits.OnesCount64(h.Lo^other.Lo)
}

// Image is a grayscale raster. Pixels are row-major, one byte per pixel.
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a w×h black image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		return &Image{}
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); out-of-range coordinates read as 0.
func (m *Image) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return 0
	}
	return m.Pix[y*m.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (m *Image) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = v
}

// DHash computes the 128-bit difference hash of m.
//
// The image is first reduced to a 9×9 grayscale thumbnail by box-averaging
// (removing high frequencies, as the paper describes). Horizontally, each
// pixel is compared with its right neighbour (1 if greater); vertically,
// with the pixel below. Each direction contributes 8×8 = 64 bits.
func DHash(m *Image) Hash {
	t := reduce(m, thumbSize, thumbSize)
	var hi, lo uint64
	bit := 0
	for y := 0; y < thumbSize; y++ {
		for x := 0; x+1 < thumbSize; x++ {
			if t.At(x, y) > t.At(x+1, y) {
				hi |= 1 << uint(63-bit)
			}
			bit++
		}
	}
	bit = 0
	for y := 0; y+1 < thumbSize; y++ {
		for x := 0; x < thumbSize; x++ {
			if t.At(x, y) > t.At(x, y+1) {
				lo |= 1 << uint(63-bit)
			}
			bit++
		}
	}
	return Hash{Hi: hi, Lo: lo}
}

// reduce box-averages m down to a w×h thumbnail.
func reduce(m *Image, w, h int) *Image {
	out := NewImage(w, h)
	if m.W == 0 || m.H == 0 {
		return out
	}
	for ty := 0; ty < h; ty++ {
		y0, y1 := ty*m.H/h, (ty+1)*m.H/h
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for tx := 0; tx < w; tx++ {
			x0, x1 := tx*m.W/w, (tx+1)*m.W/w
			if x1 <= x0 {
				x1 = x0 + 1
			}
			sum, n := 0, 0
			for y := y0; y < y1 && y < m.H; y++ {
				for x := x0; x < x1 && x < m.W; x++ {
					sum += int(m.Pix[y*m.W+x])
					n++
				}
			}
			if n > 0 {
				out.Set(tx, ty, uint8(sum/n))
			}
		}
	}
	return out
}

// Synthesize generates a deterministic 36×36 grayscale profile image from
// seed: a 9×9 grid of high-contrast quantized blocks (an identicon-like
// avatar). Two images from the same seed are identical; different seeds
// yield images whose dHashes are far apart with high probability. The
// quantized levels are spaced wider than Perturb's edit amplitude, so a
// localized edit never flips comparisons between unequal blocks.
func Synthesize(seed int64) *Image {
	const (
		size  = 36
		cells = thumbSize
		cell  = size / cells
	)
	levels := []uint8{0, 60, 120, 180, 240}
	rng := rand.New(rand.NewSource(seed))
	m := NewImage(size, size)
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			v := levels[rng.Intn(len(levels))]
			for y := cy * cell; y < (cy+1)*cell; y++ {
				for x := cx * cell; x < (cx+1)*cell; x++ {
					m.Set(x, y, v)
				}
			}
		}
	}
	return m
}

// Perturb returns a campaign-style variant of m: one thumbnail-cell-aligned
// patch is brightened or darkened by up to the given amplitude, modelling
// the badge/recolor edits spam campaigns apply to a shared base image
// (real campaign variants are byte-identical outside the edit). Because the
// edit touches exactly one of the 9×9 thumbnail cells, the variant's dHash
// differs from the base in at most 4 bits — always within
// DefaultThreshold — while unrelated images remain far apart.
// Amplitude ≤ 0 returns an exact copy.
func Perturb(m *Image, amplitude int, rng *rand.Rand) *Image {
	out := NewImage(m.W, m.H)
	copy(out.Pix, m.Pix)
	if amplitude <= 0 || m.W == 0 || m.H == 0 {
		return out
	}
	// Pick one thumbnail cell and edit exactly the pixels that reduce()
	// averages into it.
	tx := rng.Intn(thumbSize)
	ty := rng.Intn(thumbSize)
	x0, x1 := tx*m.W/thumbSize, (tx+1)*m.W/thumbSize
	y0, y1 := ty*m.H/thumbSize, (ty+1)*m.H/thumbSize
	delta := rng.Intn(amplitude) + 1
	if rng.Intn(2) == 0 {
		delta = -delta
	}
	for y := y0; y < y1 && y < m.H; y++ {
		for x := x0; x < x1 && x < m.W; x++ {
			out.Set(x, y, clampByte(float64(int(out.At(x, y))+delta)))
		}
	}
	return out
}

func clampByte(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Grouper clusters hashes whose Hamming distance to a group representative
// is at most the threshold. Groups are identified by small integer ids.
// This mirrors the paper's image-clustering step: linear scan against group
// representatives, which is accurate at the dataset sizes involved. Once
// the representative list grows past a cutoff the scan fans out over the
// worker pool, still returning the lowest matching group id, so grouping
// is identical at any worker count.
type Grouper struct {
	threshold int
	workers   int
	reps      []Hash
}

// grouperParallelMin is the representative count below which a sequential
// scan beats pool dispatch.
const grouperParallelMin = 512

// NewGrouper returns a Grouper with the given Hamming threshold; a
// non-positive threshold uses DefaultThreshold.
func NewGrouper(threshold int) *Grouper {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Grouper{threshold: threshold}
}

// SetWorkers bounds the scan pool; 0 (the default) resolves the process
// default (PH_WORKERS or GOMAXPROCS).
func (g *Grouper) SetWorkers(workers int) { g.workers = workers }

// Add assigns h to an existing group within the threshold or creates a new
// group, returning the group id. When several representatives are within
// the threshold, the lowest group id wins.
func (g *Grouper) Add(h Hash) int {
	if len(g.reps) >= grouperParallelMin {
		if id := g.findParallel(h); id >= 0 {
			return id
		}
	} else {
		for id, rep := range g.reps {
			if rep.Distance(h) <= g.threshold {
				return id
			}
		}
	}
	g.reps = append(g.reps, h)
	return len(g.reps) - 1
}

// findParallel scans the representatives in parallel chunks and returns
// the lowest matching group id, or -1.
func (g *Grouper) findParallel(h Hash) int {
	best := int64(len(g.reps))
	parallel.ForEachChunk(len(g.reps), g.workers, grouperParallelMin/4, func(lo, hi int) {
		if int64(lo) >= atomic.LoadInt64(&best) {
			return // a lower chunk already matched
		}
		for id := lo; id < hi; id++ {
			if g.reps[id].Distance(h) <= g.threshold {
				// Keep the minimum matching id across chunks.
				for {
					cur := atomic.LoadInt64(&best)
					if int64(id) >= cur || atomic.CompareAndSwapInt64(&best, cur, int64(id)) {
						break
					}
				}
				return
			}
		}
	})
	if int(best) == len(g.reps) {
		return -1
	}
	return int(best)
}

// Len returns the number of groups formed so far.
func (g *Grouper) Len() int { return len(g.reps) }

// Reps returns a copy of the group representatives in group-id order, for
// checkpointing. Restoring the same slice via SetReps reproduces identical
// group assignments for subsequent Add calls.
func (g *Grouper) Reps() []Hash {
	out := make([]Hash, len(g.reps))
	copy(out, g.reps)
	return out
}

// SetReps replaces the representative list, discarding any current groups.
// It is the restore half of Reps and is intended for crash recovery.
func (g *Grouper) SetReps(reps []Hash) {
	g.reps = append(g.reps[:0:0], reps...)
}
