package report

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// MetricsTable flattens a registry snapshot into a table — one row per
// sample, histograms summarized as count/sum — so a run's final counters
// render alongside the paper tables.
func MetricsTable(families []metrics.FamilySnapshot) *Table {
	t := &Table{
		Title:   "Run Metrics",
		Headers: []string{"Metric", "Labels", "Type", "Value", "Count", "Sum"},
	}
	for _, fam := range families {
		for _, s := range fam.Samples {
			labels := make([]string, 0, len(s.Labels))
			for _, l := range s.Labels {
				labels = append(labels, l.Name+"="+l.Value)
			}
			value, count, sum := FormatFloat(s.Value), "", ""
			if fam.Type == metrics.TypeHistogram {
				value = ""
				count = strconv.FormatUint(s.Count, 10)
				sum = FormatFloat(s.Sum)
			}
			t.AddRow(fam.Name, strings.Join(labels, ","), fam.Type.String(),
				value, count, sum)
		}
	}
	return t
}

// Export bundles a run's output tables with the final state of its metrics
// registry, so an archived result carries the operational counters
// (node-hours, captures, PGE gauges) that produced it.
type Export struct {
	Tables  []*Table                 `json:"tables"`
	Metrics []metrics.FamilySnapshot `json:"metrics,omitempty"`
	// Traces is the run's stage-latency attribution: per-stage
	// p50/p95/max over the tracer's retained spans plus the slowest
	// trace ids. Present only when tracing was enabled (WithTraces).
	Traces *trace.Summary `json:"traces,omitempty"`
	// Fleet is the federated fleet-level rollup (coordinator plus every
	// proc-mode shard worker, merged per internal/metrics.MergeInstances).
	// Present only for sharded proc runs (WithFleet).
	Fleet []metrics.FamilySnapshot `json:"fleet,omitempty"`
}

// NewExport snapshots reg (nil ⇒ no metrics section) alongside tables.
func NewExport(tables []*Table, reg *metrics.Registry) *Export {
	e := &Export{Tables: tables}
	if reg != nil {
		e.Metrics = reg.Snapshot()
	}
	return e
}

// slowTracesInExport bounds the slowest-trace list embedded in exports.
const slowTracesInExport = 5

// WithTraces embeds t's stage-latency summary (no-op when t is nil or
// retained nothing) and returns e for chaining.
func (e *Export) WithTraces(t *trace.Tracer) *Export {
	if t == nil {
		return e
	}
	if sum := t.Summary(slowTracesInExport); sum.Traces > 0 {
		e.Traces = sum
	}
	return e
}

// WithFleet embeds a federated fleet rollup (no-op when fams is empty)
// and returns e for chaining.
func (e *Export) WithFleet(fams []metrics.FamilySnapshot) *Export {
	if len(fams) > 0 {
		e.Fleet = fams
	}
	return e
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
