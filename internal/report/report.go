// Package report renders experiment outputs — the paper's tables and
// figure series — as aligned plain text for terminals and logs.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row, stringifying the cells with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	if total > 0 {
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Point is one x position of a figure series with its named y values.
type Point struct {
	X string
	Y []float64
}

// Series is a figure reproduced as columns of numbers: one row per x
// position, one column per curve.
type Series struct {
	Title string
	// XLabel names the x axis; Cols name the curves.
	XLabel string
	Cols   []string
	Points []Point
}

// Add appends one point.
func (s *Series) Add(x string, ys ...float64) {
	s.Points = append(s.Points, Point{X: x, Y: ys})
}

// Render returns the aligned text form.
func (s *Series) Render() string {
	t := Table{
		Title:   s.Title,
		Headers: append([]string{s.XLabel}, s.Cols...),
	}
	for _, p := range s.Points {
		cells := make([]any, 0, len(p.Y)+1)
		cells = append(cells, p.X)
		for _, y := range p.Y {
			cells = append(cells, y)
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise four significant decimals.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}
