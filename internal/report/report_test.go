package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

func TestTableRenderAlignsColumns(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "count"},
	}
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 12345)
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("render has %d lines: %q", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatal("title missing")
	}
	// The count column must start at the same offset in every data row.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "12345")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestTableAddRowFormatsFloats(t *testing.T) {
	tbl := &Table{Headers: []string{"v"}}
	tbl.AddRow(3.14159)
	tbl.AddRow(2.0)
	if tbl.Rows[0][0] != "3.1416" {
		t.Fatalf("float cell = %q", tbl.Rows[0][0])
	}
	if tbl.Rows[1][0] != "2" {
		t.Fatalf("integer-valued float cell = %q", tbl.Rows[1][0])
	}
}

func TestTableRenderWithoutTitle(t *testing.T) {
	tbl := &Table{Headers: []string{"a"}}
	tbl.AddRow("x")
	out := tbl.Render()
	if strings.HasPrefix(out, "\n") {
		t.Fatal("leading blank line without title")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "x") {
		t.Fatal("content missing")
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{
		Title:  "figure",
		XLabel: "hour",
		Cols:   []string{"a", "b"},
	}
	s.Add("1", 10, 0.5)
	s.Add("2", 20, 0.25)
	out := s.Render()
	for _, want := range []string{"figure", "hour", "a", "b", "10", "0.5", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{give: 0, want: "0"},
		{give: 42, want: "42"},
		{give: -3, want: "-3"},
		{give: 0.5, want: "0.5"},
		{give: 0.123456, want: "0.1235"},
		{give: 1.9999999, want: "2"},
		{give: 10000, want: "10000"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.give); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x", 1)
	tbl.AddRow("y,z", 2.5)
	var buf strings.Builder
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\n\"y,z\",2.5\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestTableMarshalJSON(t *testing.T) {
	tbl := &Table{Title: "t", Headers: []string{"a"}}
	tbl.AddRow(42)
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"t","headers":["a"],"rows":[["42"]]}`
	if string(data) != want {
		t.Fatalf("json = %s, want %s", data, want)
	}
}

func TestTableMarshalJSONEmptyRows(t *testing.T) {
	tbl := &Table{Headers: []string{"a"}}
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"rows":[]`) {
		t.Fatalf("empty rows marshal: %s", data)
	}
}

func TestSeriesExportMatchesTable(t *testing.T) {
	s := &Series{Title: "f", XLabel: "x", Cols: []string{"y"}}
	s.Add("1", 0.5)
	var csvBuf strings.Builder
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if csvBuf.String() != "x,y\n1,0.5\n" {
		t.Fatalf("series csv = %q", csvBuf.String())
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"headers":["x","y"]`) {
		t.Fatalf("series json = %s", data)
	}
}

func TestExportEmbedsMetricsSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ph_test_total", "test counter").Add(5)
	reg.Histogram("ph_test_seconds", "test latency", nil).Observe(0.25)

	tbl := &Table{Title: "T", Headers: []string{"a"}}
	tbl.AddRow("x")
	var buf bytes.Buffer
	if err := NewExport([]*Table{tbl}, reg).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Tables []struct {
			Title string `json:"title"`
		} `json:"tables"`
		Metrics []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export JSON invalid: %v", err)
	}
	if len(decoded.Tables) != 1 || decoded.Tables[0].Title != "T" {
		t.Fatalf("tables = %+v", decoded.Tables)
	}
	names := make(map[string]string)
	for _, m := range decoded.Metrics {
		names[m.Name] = m.Type
	}
	if names["ph_test_total"] != "counter" || names["ph_test_seconds"] != "histogram" {
		t.Fatalf("metrics section = %v", names)
	}

	mt := MetricsTable(reg.Snapshot())
	if len(mt.Rows) != 2 {
		t.Fatalf("metrics table rows = %d, want 2", len(mt.Rows))
	}
	if got := mt.Render(); !strings.Contains(got, "ph_test_total") {
		t.Fatalf("rendered metrics table missing counter:\n%s", got)
	}

	// A nil registry omits the section entirely.
	buf.Reset()
	if err := NewExport([]*Table{tbl}, nil).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"metrics\"") {
		t.Fatal("nil-registry export still has a metrics section")
	}
}
