package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// WriteCSV writes the table as CSV (headers first). The title is not part
// of the CSV payload; callers name the file or stream instead.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON shape of a Table.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON renders the table as {title, headers, rows}.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Headers: t.Headers, Rows: rows})
}

// AsTable converts the series into its tabular form (one row per point),
// sharing the renderers and exporters.
func (s *Series) AsTable() *Table {
	t := &Table{
		Title:   s.Title,
		Headers: append([]string{s.XLabel}, s.Cols...),
	}
	for _, p := range s.Points {
		cells := make([]any, 0, len(p.Y)+1)
		cells = append(cells, p.X)
		for _, y := range p.Y {
			cells = append(cells, y)
		}
		t.AddRow(cells...)
	}
	return t
}

// WriteCSV writes the series as CSV.
func (s *Series) WriteCSV(w io.Writer) error {
	return s.AsTable().WriteCSV(w)
}

// MarshalJSON renders the series via its tabular form.
func (s *Series) MarshalJSON() ([]byte, error) {
	return s.AsTable().MarshalJSON()
}
