package experiments

import (
	"fmt"
	"sort"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/report"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Figure2 reproduces the fraction of spammers vs. number of spam messages
// posted (the paper: >90% post exactly one spam, <0.03% more than ten).
func (r *Runner) Figure2() (*report.Series, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	hist := make(map[int]int)
	maxCount := 0
	for _, n := range main.SpamsPerSpammer {
		hist[n]++
		if n > maxCount {
			maxCount = n
		}
	}
	total := len(main.SpamsPerSpammer)
	s := &report.Series{
		Title:  "Figure 2 — fraction of spammers vs number of spams posted",
		XLabel: "spams",
		Cols:   []string{"spammers", "fraction"},
	}
	counts := make([]int, 0, len(hist))
	for c := range hist {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	for _, c := range counts {
		frac := 0.0
		if total > 0 {
			frac = float64(hist[c]) / float64(total)
		}
		s.Add(fmt.Sprintf("%d", c), float64(hist[c]), frac)
	}
	return s, nil
}

// Figure3 reproduces the per-attribute panels: collected tweets, spams,
// and spammers at each of the ten sample values of every profile
// attribute (the paper's Figures 3(a)–(k)).
func (r *Runner) Figure3() ([]*report.Series, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	byAttr := make(map[socialnet.Attribute][]*core.GroupStats)
	for _, g := range main.Monitor.Groups() {
		attr := g.Spec.Selector.Attr
		if attr.Numeric() {
			byAttr[attr] = append(byAttr[attr], g)
		}
	}
	var out []*report.Series
	for i, attr := range socialnet.ProfileAttributes {
		groups := byAttr[attr]
		sort.Slice(groups, func(a, b int) bool {
			return groups[a].Spec.Selector.Value < groups[b].Spec.Selector.Value
		})
		s := &report.Series{
			Title:  fmt.Sprintf("Figure 3(%c) — %s", 'a'+i, attr.String()),
			XLabel: "sample value",
			Cols:   []string{"tweets", "spams", "spammers"},
		}
		for _, g := range groups {
			s.Add(socialnet.FormatSampleValue(g.Spec.Selector.Value),
				float64(g.Tweets), float64(g.Spams), float64(len(g.Spammers)))
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure4 reproduces the hashtag-category panel: tweets, spams, spammers,
// and the spammer ratio (spammers over involved users) per category.
func (r *Runner) Figure4() (*report.Series, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	s := &report.Series{
		Title:  "Figure 4 — hashtag-based attributes",
		XLabel: "category",
		Cols:   []string{"tweets", "spams", "spammers", "spammer ratio"},
	}
	for _, g := range main.Monitor.Groups() {
		sel := g.Spec.Selector
		if sel.Attr != socialnet.AttrHashtag {
			continue
		}
		ratio := 0.0
		if len(g.Senders) > 0 {
			ratio = float64(len(g.Spammers)) / float64(len(g.Senders))
		}
		s.Add(sel.Category.String(),
			float64(g.Tweets), float64(g.Spams), float64(len(g.Spammers)), ratio)
	}
	return s, nil
}

// Figure5 reproduces the trending-category panel: tweets, spams, spammers,
// and the spam ratio (spams over tweets) per trend state.
func (r *Runner) Figure5() (*report.Series, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	s := &report.Series{
		Title:  "Figure 5 — trending-based attributes",
		XLabel: "trend",
		Cols:   []string{"tweets", "spams", "spammers", "spam ratio"},
	}
	for _, g := range main.Monitor.Groups() {
		sel := g.Spec.Selector
		if sel.Attr != socialnet.AttrTrend {
			continue
		}
		ratio := 0.0
		if g.Tweets > 0 {
			ratio = float64(g.Spams) / float64(g.Tweets)
		}
		s.Add(sel.Trend.String(),
			float64(g.Tweets), float64(g.Spams), float64(len(g.Spammers)), ratio)
	}
	return s, nil
}

// Figure6 reproduces the cumulative spammer capture of the advanced
// pseudo-honeypot vs. the random-selection baseline over the comparison
// window (the paper reports 17,336 vs 1,850 after 100 h — 9.37×).
func (r *Runner) Figure6() (*report.Series, error) {
	adv, err := r.RunAdvanced()
	if err != nil {
		return nil, err
	}
	s := &report.Series{
		Title:  "Figure 6 — spammers captured: advanced pseudo-honeypot vs non pseudo-honeypot",
		XLabel: "hour",
		Cols:   []string{"advanced", "random"},
	}
	for h := 0; h < len(adv.AdvancedByHour); h++ {
		s.Add(fmt.Sprintf("%d", h+1),
			float64(adv.AdvancedByHour[h]), float64(adv.RandomByHour[h]))
	}
	return s, nil
}
