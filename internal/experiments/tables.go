package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/honeypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/report"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TableII reproduces the paper's Table II: the profile-based attribute
// sample values and the number of accounts one selection round actually
// finds for each attribute.
func (r *Runner) TableII() (*report.Table, error) {
	worldCfg := r.scale.World
	worldCfg.Seed += 40
	w, err := socialnet.NewWorld(worldCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(worldCfg.Seed + 1))
	m := core.NewMonitor(core.MonitorConfig{
		Specs: core.StandardSpecs(r.scale.NodesPerValue),
		Seed:  worldCfg.Seed + 2,
	}, &core.LocalScreener{World: w, Rng: rng})
	m.Rotate(socialnet.NewEngine(w).Now(), 0)

	// Count the accounts one selection round found per attribute.
	counts := make(map[socialnet.Attribute]int)
	for _, gis := range m.CurrentNodes() {
		for _, gi := range gis {
			attr := m.Groups()[gi].Spec.Selector.Attr
			if attr.Numeric() {
				counts[attr]++
			}
		}
	}

	t := &report.Table{
		Title:   "Table II — profile-based attributes and their sample values",
		Headers: []string{"Index", "Attribute", "Sample values", "Selected accounts"},
	}
	for i, attr := range socialnet.ProfileAttributes {
		vals := ""
		for j, v := range core.SampleValues[attr] {
			if j > 0 {
				vals += " "
			}
			vals += socialnet.FormatSampleValue(v)
		}
		t.AddRow(i+1, attr.String(), vals, counts[attr])
	}
	return t, nil
}

// TableIII reproduces the labeled spams/spammers per method (paper §V-C).
func (r *Runner) TableIII() (*report.Table, error) {
	gt, err := r.RunGroundTruth()
	if err != nil {
		return nil, err
	}
	totalTweets := len(gt.Corpus.Tweets)
	totalUsers := len(gt.Corpus.Users)
	t := &report.Table{
		Title: fmt.Sprintf(
			"Table III — ground-truth labels by method (tweets: %d, users: %d)",
			totalTweets, totalUsers),
		Headers: []string{"Category", "# of spams", "% of tweets", "# of spammers", "% of users"},
	}
	for _, c := range gt.Labels.Counts() {
		t.AddRow(
			c.Method.String(),
			c.Spams,
			pct(c.Spams, totalTweets),
			c.Spammers,
			pct(c.Spammers, totalUsers),
		)
	}
	t.AddRow("Total",
		gt.Labels.TotalSpams(), pct(gt.Labels.TotalSpams(), totalTweets),
		gt.Labels.TotalSpammers(), pct(gt.Labels.TotalSpammers(), totalUsers))
	return t, nil
}

// TableIV reproduces the classifier comparison under 10-fold CV.
func (r *Runner) TableIV() (*report.Table, error) {
	metrics, err := r.RunTableIV()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table IV — classifier comparison (10-fold cross-validation)",
		Headers: []string{"Method", "Accuracy", "Precision", "Recall", "False Positive"},
	}
	for _, name := range core.ClassifierNames {
		m := metrics[name]
		t.AddRow(string(name), m.Accuracy, m.Precision, m.Recall, m.FPR)
	}
	return t, nil
}

// TableV reproduces the top-10 attributes by captured spammers.
func (r *Runner) TableV() (*report.Table, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	sums := core.SummarizeByAttribute(main.Monitor.Groups())
	t := &report.Table{
		Title:   "Table V — top 10 attributes by captured spammers",
		Headers: []string{"Index", "Attribute", "Tweets", "Spams", "Spammers"},
	}
	for i, s := range sums {
		if i >= 10 {
			break
		}
		t.AddRow(i+1, s.Label, s.Tweets, s.Spams, s.Spammers)
	}
	return t, nil
}

// TableVI reproduces the top-10 sample values by PGE.
func (r *Runner) TableVI() (*report.Table, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table VI — top 10 sampling attributes by PGE",
		Headers: []string{"Rank", "Attribute description", "Spammers", "Node-hours", "PGE"},
	}
	for i, row := range main.PGERows {
		if i >= 10 {
			break
		}
		t.AddRow(i+1, row.Selector.String(), row.Spammers, row.NodeHours, row.PGE)
	}
	return t, nil
}

// TableVII reproduces the honeypot comparison: the published systems'
// constants plus this run's advanced pseudo-honeypot and the traditional
// honeypot simulated in the same world.
func (r *Runner) TableVII() (*report.Table, error) {
	adv, err := r.RunAdvanced()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Table VII — pseudo-honeypot vs honeypot-based solutions",
		Headers: []string{
			"System", "Running duration", "# nodes", "# spams", "# spammers", "PGE",
		},
	}
	dash := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	for _, row := range honeypot.LiteratureRows() {
		t.AddRow(row.System, row.Duration, row.Nodes, dash(row.Spams), dash(row.Spammers), row.PGE)
	}
	t.AddRow("Simulated traditional honeypot (this world)",
		fmt.Sprintf("%d hours", adv.Hours), adv.AdvancedNodes, "-",
		adv.HoneypotSpammers, adv.HoneypotPGE)
	t.AddRow("Advanced pseudo-honeypot (this world)",
		fmt.Sprintf("%d hours", adv.Hours), adv.AdvancedNodes,
		adv.AdvancedSpams, adv.AdvancedSpammers, adv.AdvancedPGE)
	return t, nil
}

// TopFeatures ranks the trained RF detector's most important features —
// not a paper table, but the natural companion to Table IV: it shows which
// of the 58 features the deployed model actually leans on (the behavioural
// mention-time and source signals, in both the paper's telling and ours).
func (r *Runner) TopFeatures(k int) (*report.Table, error) {
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}
	imp := main.Detector.FeatureImportance()
	if imp == nil {
		return nil, fmt.Errorf("experiments: detector exposes no importances")
	}
	type row struct {
		idx int
		val float64
	}
	rows := make([]row, len(imp))
	for i, v := range imp {
		rows[i] = row{idx: i, val: v}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].val > rows[b].val })
	t := &report.Table{
		Title:   "Detector feature importance (random forest, mean Gini decrease)",
		Headers: []string{"Rank", "Feature", "Importance"},
	}
	for i, rw := range rows {
		if i >= k {
			break
		}
		t.AddRow(i+1, features.Name(rw.idx), rw.val)
	}
	return t, nil
}

// SpeedupOverLiterature returns the advanced system's PGE divided by the
// best published honeypot PGE (the paper reports ≥19 at full scale), and
// its PGE divided by the traditional honeypot simulated in the same world
// (the scale-independent comparison).
func (r *Runner) SpeedupOverLiterature() (vsLiterature, vsSimulated float64, err error) {
	adv, err := r.RunAdvanced()
	if err != nil {
		return 0, 0, err
	}
	vsLiterature = adv.AdvancedPGE / honeypot.BestLiteraturePGE()
	if adv.HoneypotPGE > 0 {
		vsSimulated = adv.AdvancedPGE / adv.HoneypotPGE
	}
	return vsLiterature, vsSimulated, nil
}

// LabelQuality scores the ground-truth labels against the generative truth
// (not part of the paper's tables; used by tests and EXPERIMENTS.md).
func (r *Runner) LabelQuality() (precision, recall float64, err error) {
	gt, err := r.RunGroundTruth()
	if err != nil {
		return 0, 0, err
	}
	var tp, fp, fn int
	for _, tw := range gt.Corpus.Tweets {
		labeled := gt.Labels.IsSpam(tw.ID)
		switch {
		case labeled && tw.Spam:
			tp++
		case labeled && !tw.Spam:
			fp++
		case !labeled && tw.Spam:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall, nil
}

// sortedMethods returns Table III categories in pipeline order (helper for
// tests).
func sortedMethods(counts []label.MethodCount) []label.MethodCount {
	out := append([]label.MethodCount(nil), counts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

func pct(part, total int) string {
	if total == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 100*float64(part)/float64(total))
}
