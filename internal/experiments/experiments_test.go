package experiments

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// sharedRunner is reused across tests: the Runner caches each phase, so
// the expensive simulations execute once per test binary.
var (
	_runnerOnce sync.Once
	_runner     *Runner
)

func sharedRunner(t *testing.T) *Runner {
	t.Helper()
	_runnerOnce.Do(func() {
		_runner = NewRunner(SmallScale())
	})
	return _runner
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"", "small", "medium", "full"} {
		if _, ok := ScaleByName(name); !ok {
			t.Fatalf("ScaleByName(%q) failed", name)
		}
	}
	if _, ok := ScaleByName("bogus"); ok {
		t.Fatal("ScaleByName accepted bogus scale")
	}
}

func TestScalesValidate(t *testing.T) {
	for _, s := range []Scale{SmallScale(), MediumScale(), FullScale()} {
		if err := s.World.Validate(); err != nil {
			t.Fatalf("scale %s world config invalid: %v", s.Name, err)
		}
		if s.MainHours <= 0 || s.GroundTruthHours <= 0 || s.AdvancedHours <= 0 {
			t.Fatalf("scale %s has zero-hour phases", s.Name)
		}
	}
}

func TestTableIIStructure(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Fatalf("Table II rows = %d, want 11", len(tbl.Rows))
	}
	// Every profile attribute must find at least one account per
	// selection round.
	for _, row := range tbl.Rows {
		if row[3] == "0" {
			t.Errorf("attribute %q selected no accounts", row[1])
		}
	}
	out := tbl.Render()
	if !strings.Contains(out, "friends count") || !strings.Contains(out, "10k") {
		t.Fatal("Table II render missing expected content")
	}
}

// Table III shape: suspended labels the most spam, manual the least; all
// four stages participate.
func TestTableIIIShape(t *testing.T) {
	r := sharedRunner(t)
	gt, err := r.RunGroundTruth()
	if err != nil {
		t.Fatal(err)
	}
	counts := gt.Labels.Counts()
	byMethod := make(map[string]int)
	for _, c := range counts {
		byMethod[c.Method.String()] = c.Spams
	}
	if byMethod["Suspended"] == 0 {
		t.Fatal("suspended stage labeled nothing")
	}
	if byMethod["Suspended"] <= byMethod["Human Labeling"] {
		t.Fatalf("suspended (%d) should dominate manual (%d)",
			byMethod["Suspended"], byMethod["Human Labeling"])
	}
	if byMethod["Suspended"] <= byMethod["Clustering"]/2 {
		t.Fatalf("suspended (%d) unexpectedly small vs clustering (%d)",
			byMethod["Suspended"], byMethod["Clustering"])
	}
	if byMethod["Clustering"] == 0 {
		t.Fatal("clustering stage labeled nothing")
	}
	if byMethod["Rule Based"] == 0 {
		t.Fatal("rule stage labeled nothing")
	}
}

func TestGroundTruthLabelQuality(t *testing.T) {
	r := sharedRunner(t)
	precision, recall, err := r.LabelQuality()
	if err != nil {
		t.Fatal(err)
	}
	if precision < 0.8 {
		t.Fatalf("ground-truth precision %v too low", precision)
	}
	if recall < 0.7 {
		t.Fatalf("ground-truth recall %v too low", recall)
	}
}

// Table IV shape: RF has the best precision; the tree ensembles (RF, EGB)
// beat the simple classifiers; RF's FPR is among the lowest.
func TestTableIVShape(t *testing.T) {
	r := sharedRunner(t)
	metrics, err := r.RunTableIV()
	if err != nil {
		t.Fatal(err)
	}
	rf := metrics[core.ClassifierRF]
	egb := metrics[core.ClassifierEGB]
	for _, name := range []core.ClassifierName{core.ClassifierDT, core.ClassifierKNN, core.ClassifierSVM} {
		m := metrics[name]
		if rf.Precision < m.Precision {
			t.Errorf("RF precision %v < %s precision %v", rf.Precision, name, m.Precision)
		}
		if egb.F1 < m.F1 {
			t.Errorf("EGB F1 %v < %s F1 %v", egb.F1, name, m.F1)
		}
		// RF's false positive rate is the paper's headline (0.002);
		// allow a small-margin tie with conservative classifiers.
		if rf.FPR > m.FPR+0.01 {
			t.Errorf("RF FPR %v much worse than %s FPR %v", rf.FPR, name, m.FPR)
		}
	}
	if rf.Accuracy < 0.9 {
		t.Errorf("RF accuracy %v below 0.9", rf.Accuracy)
	}
}

// Tables V/VI shape: the audience/list attributes dominate; the
// lists-per-day sample values appear near the top of the PGE ranking.
func TestTableVAndVIShape(t *testing.T) {
	r := sharedRunner(t)
	main, err := r.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	sums := core.SummarizeByAttribute(main.Monitor.Groups())
	if len(sums) < 10 {
		t.Fatalf("only %d attribute summaries", len(sums))
	}
	// Audience/list attributes must populate the head of Table V; the
	// exact rank order is Poisson-noisy at the test scale, so check
	// membership within the top 12 of 17 rows.
	topSet := make(map[socialnet.Attribute]bool)
	limit := 12
	if limit > len(sums) {
		limit = len(sums)
	}
	for _, s := range sums[:limit] {
		topSet[s.Attr] = true
	}
	for _, attr := range []socialnet.Attribute{
		socialnet.AttrListsPerDay, socialnet.AttrFollowers,
		socialnet.AttrTotalFriendsFollowers,
	} {
		if !topSet[attr] {
			t.Errorf("attribute %v missing from Table V top %d", attr, limit)
		}
	}

	// Table VI: among the top-10 PGE sample values, high-end audience or
	// list-activity values dominate; the paper's winner (lists/day ≥ ~1
	// or a large audience attribute) is present near the top.
	rows := main.PGERows
	if len(rows) < 10 {
		t.Fatalf("only %d PGE rows", len(rows))
	}
	foundActivity := false
	for _, row := range rows[:10] {
		switch row.Selector.Attr {
		case socialnet.AttrListsPerDay, socialnet.AttrLists,
			socialnet.AttrTotalFriendsFollowers, socialnet.AttrFollowers,
			socialnet.AttrFriends:
			if row.Selector.Value >= 0.5 {
				foundActivity = true
			}
		}
	}
	if !foundActivity {
		t.Fatalf("no audience/list sample value in PGE top 10: %+v", rows[:10])
	}
	// PGE ordering must be non-increasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].PGE > rows[i-1].PGE {
			t.Fatal("PGE rows not sorted")
		}
	}
}

// Figure 2 shape: the overwhelming majority of detected spammers post one
// spam; almost none post more than ten.
func TestFigure2Shape(t *testing.T) {
	r := sharedRunner(t)
	main, err := r.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	total := len(main.SpamsPerSpammer)
	if total < 100 {
		t.Fatalf("only %d detected spammers", total)
	}
	ones, over10 := 0, 0
	for _, n := range main.SpamsPerSpammer {
		if n == 1 {
			ones++
		}
		if n > 10 {
			over10++
		}
	}
	if frac := float64(ones) / float64(total); frac < 0.75 {
		t.Fatalf("single-spam fraction %v, want >= 0.75 (paper: >0.9 at full scale)", frac)
	}
	if frac := float64(over10) / float64(total); frac > 0.01 {
		t.Fatalf(">10-spam fraction %v, want < 0.01", frac)
	}
}

// Figure 3 shape: for the audience attributes, spam captures rise with the
// sample value (paper Figs. 3(a)-(d)).
func TestFigure3Monotonicity(t *testing.T) {
	r := sharedRunner(t)
	series, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 11 {
		t.Fatalf("Figure 3 has %d panels, want 11", len(series))
	}
	// Compare pooled low-half vs high-half spammer counts for the
	// audience attributes; high half must dominate.
	byTitle := make(map[string][]float64)
	for _, s := range series {
		var spammers []float64
		for _, p := range s.Points {
			spammers = append(spammers, p.Y[2])
		}
		byTitle[s.Title] = spammers
	}
	for title, spammers := range byTitle {
		if !strings.Contains(title, "followers count") &&
			!strings.Contains(title, "total friends") {
			continue
		}
		lo, hi := 0.0, 0.0
		half := len(spammers) / 2
		for i, v := range spammers {
			if i < half {
				lo += v
			} else {
				hi += v
			}
		}
		if hi <= lo {
			t.Errorf("%s: high sample values captured %v spammers vs %v low", title, hi, lo)
		}
	}
}

// Figure 4/5 shape: every category/state appears and the counts are
// positive for the major ones.
func TestFigure4And5Structure(t *testing.T) {
	r := sharedRunner(t)
	f4, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Points) != 9 {
		t.Fatalf("Figure 4 has %d categories, want 9", len(f4.Points))
	}
	f5, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Points) != 4 {
		t.Fatalf("Figure 5 has %d states, want 4", len(f5.Points))
	}
	// Trending-up must attract more spam than no-trending (paper Fig. 5).
	var up, none float64
	for _, p := range f5.Points {
		switch p.X {
		case "trending up":
			up = p.Y[2]
		case "no trending":
			none = p.Y[2]
		}
	}
	if up <= none {
		t.Errorf("trending-up spammers %v <= no-trending %v", up, none)
	}
}

// Figure 6 / Table VII shape: the advanced pseudo-honeypot beats the random
// baseline by a wide margin and the traditional honeypot by a wider one.
func TestFigure6AndTableVIIShape(t *testing.T) {
	r := sharedRunner(t)
	adv, err := r.RunAdvanced()
	if err != nil {
		t.Fatal(err)
	}
	if adv.AdvancedSpammers == 0 {
		t.Fatal("advanced system captured nothing")
	}
	if adv.AdvancedSpammers <= 2*adv.RandomSpammers {
		t.Fatalf("advanced %d vs random %d: want > 2x (paper: 9.37x at full scale)",
			adv.AdvancedSpammers, adv.RandomSpammers)
	}
	// Cumulative curves must be non-decreasing and advanced must end on top.
	for i := 1; i < len(adv.AdvancedByHour); i++ {
		if adv.AdvancedByHour[i] < adv.AdvancedByHour[i-1] ||
			adv.RandomByHour[i] < adv.RandomByHour[i-1] {
			t.Fatal("cumulative capture curves decreased")
		}
	}
	if adv.AdvancedPGE <= adv.HoneypotPGE {
		t.Fatalf("advanced PGE %v <= honeypot PGE %v", adv.AdvancedPGE, adv.HoneypotPGE)
	}
	// The paper's ">= 19x faster than honeypots" claim, measured against
	// the traditional honeypot deployed in the same world.
	if adv.HoneypotPGE > 0 && adv.AdvancedPGE/adv.HoneypotPGE < 19 {
		t.Fatalf("advanced/honeypot PGE ratio %v < 19", adv.AdvancedPGE/adv.HoneypotPGE)
	}
}

func TestTableRendersComplete(t *testing.T) {
	r := sharedRunner(t)
	renders := []func() (string, error){
		func() (string, error) { tb, err := r.TableIII(); return safeRender(tb, err) },
		func() (string, error) { tb, err := r.TableIV(); return safeRender(tb, err) },
		func() (string, error) { tb, err := r.TableV(); return safeRender(tb, err) },
		func() (string, error) { tb, err := r.TableVI(); return safeRender(tb, err) },
		func() (string, error) { tb, err := r.TableVII(); return safeRender(tb, err) },
	}
	for i, render := range renders {
		out, err := render()
		if err != nil {
			t.Fatalf("table %d: %v", i+3, err)
		}
		if len(out) < 50 {
			t.Fatalf("table %d render suspiciously short", i+3)
		}
	}
}

type renderer interface{ Render() string }

func safeRender(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func TestRandomSpecsSumToBudget(t *testing.T) {
	specs := randomSpecs(100, rand.New(rand.NewSource(5)))
	if got := core.TotalNodes(specs); got != 100 {
		t.Fatalf("random specs total %d, want 100", got)
	}
	// Selectors must come from the standard pool and be deduplicated.
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		key := s.Selector.String()
		if seen[key] {
			t.Fatalf("duplicate selector %q in random specs", key)
		}
		seen[key] = true
	}
}

// The deployed detector must lean on the behavioural signals the paper
// emphasizes — mention time above all.
func TestTopFeaturesIncludeMentionTime(t *testing.T) {
	r := sharedRunner(t)
	tbl, err := r.TopFeatures(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("top features rows = %d", len(tbl.Rows))
	}
	found := false
	for _, row := range tbl.Rows {
		if row[1] == "mention time" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mention time missing from top-10 features: %v", tbl.Rows)
	}
}
