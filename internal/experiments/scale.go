// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated substrate: Table II (selection), Table
// III (ground-truth labeling), Table IV (classifier comparison), Tables
// V–VI (attribute effectiveness and PGE), Table VII (honeypot comparison),
// and Figures 2–6. See DESIGN.md §4 for the per-experiment index and the
// shape criteria each reproduction must meet.
package experiments

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Scale fixes the size of an experiment run. The paper's deployment
// (700 h × 2,400 nodes over the live network) maps to FullScale; tests and
// benchmarks default to SmallScale, which preserves every shape criterion
// at a few percent of the volume.
type Scale struct {
	Name string

	// World is the generated-population configuration shared by all
	// phases (each phase reseeds it).
	World socialnet.Config

	// NodesPerValue scales the main deployment (paper: 10 ⇒ 2,400
	// nodes).
	NodesPerValue int

	// GroundTruthNodes and GroundTruthHours size the labeling run
	// (paper: 100 nodes × 300 h).
	GroundTruthNodes int
	GroundTruthHours int

	// MainHours is the long collection run (paper: 700 h).
	MainHours int

	// AdvancedSelectors, AdvancedNodesEach, and AdvancedHours size the
	// advanced system (paper: top-10 selectors × 10 nodes × 100 h).
	AdvancedSelectors int
	AdvancedNodesEach int
	AdvancedHours     int

	// TableIVMaxSamples caps the classifier-comparison dataset so the
	// O(n²) kNN fold stays fast.
	TableIVMaxSamples int

	// SuspensionLagHours fast-forwards the platform's suspension process
	// between collection and labeling (the paper collected in March 2018
	// and labeled in September, by which time most spam accounts had
	// been suspended).
	SuspensionLagHours float64
}

// SmallScale is the default test/bench scale (seconds per phase).
func SmallScale() Scale {
	world := socialnet.DefaultConfig()
	world.NumAccounts = 6000
	world.OrganicTweetsPerHour = 1000
	return Scale{
		Name:               "small",
		World:              world,
		NodesPerValue:      3,
		GroundTruthNodes:   80,
		GroundTruthHours:   24,
		MainHours:          56,
		AdvancedSelectors:  10,
		AdvancedNodesEach:  5,
		AdvancedHours:      16,
		TableIVMaxSamples:  6000,
		SuspensionLagHours: 250,
	}
}

// MediumScale trades minutes of runtime for tighter statistics.
func MediumScale() Scale {
	world := socialnet.DefaultConfig()
	world.NumAccounts = 20000
	world.OrganicTweetsPerHour = 4000
	return Scale{
		Name:               "medium",
		World:              world,
		NodesPerValue:      4,
		GroundTruthNodes:   100,
		GroundTruthHours:   60,
		MainHours:          120,
		AdvancedSelectors:  10,
		AdvancedNodesEach:  10,
		AdvancedHours:      40,
		TableIVMaxSamples:  10000,
		SuspensionLagHours: 250,
	}
}

// FullScale approximates the paper's deployment volumes. Running all
// phases takes tens of minutes.
func FullScale() Scale {
	return Scale{
		Name:               "full",
		World:              socialnet.FullScaleConfig(),
		NodesPerValue:      10,
		GroundTruthNodes:   100,
		GroundTruthHours:   300,
		MainHours:          700,
		AdvancedSelectors:  10,
		AdvancedNodesEach:  10,
		AdvancedHours:      100,
		TableIVMaxSamples:  20000,
		SuspensionLagHours: 250,
	}
}

// ScaleByName resolves "small", "medium", or "full".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "small", "":
		return SmallScale(), true
	case "medium":
		return MediumScale(), true
	case "full":
		return FullScale(), true
	default:
		return Scale{}, false
	}
}
