package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/honeypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Runner executes the paper's evaluation phases lazily and caches their
// results, since several tables and figures share a phase (DESIGN.md §4).
// A Runner is not safe for concurrent use.
type Runner struct {
	scale Scale

	gt      *GroundTruth
	tableIV map[core.ClassifierName]ml.Metrics
	main    *MainRun
	adv     *AdvancedRun
}

// NewRunner creates a runner at the given scale.
func NewRunner(scale Scale) *Runner {
	return &Runner{scale: scale}
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.scale }

// GroundTruth is the labeling phase's output (paper §V-C): the corpus a
// small random-attribute pseudo-honeypot network collected, its pipeline
// labels, and the training dataset built from both.
type GroundTruth struct {
	Captures []*core.Capture
	Corpus   *label.Corpus
	Labels   *label.Result
	Dataset  *ml.Dataset
	// ManualChecks counts simulated human verifications.
	ManualChecks int
}

// MainRun is the long collection phase's output (paper §V-D): the full
// standard network monitored for the main duration, classified by the
// RF detector.
type MainRun struct {
	Monitor  *core.Monitor
	Detector *core.Detector
	Verdicts []bool
	PGERows  []core.PGERow
	// SpamsPerSpammer maps each detected spammer to their spam count
	// (Figure 2's distribution).
	SpamsPerSpammer map[socialnet.AccountID]int
	// Spams and Spammers are the classified totals.
	Spams    int
	Spammers int
	Tweets   int
	Users    int
}

// AdvancedRun compares the refined top-PGE system against the random
// baseline and a traditional honeypot in one world (paper §V-E).
type AdvancedRun struct {
	// Cumulative unique spammers captured by hour.
	AdvancedByHour []int
	RandomByHour   []int

	AdvancedSpams    int
	AdvancedSpammers int
	RandomSpammers   int

	AdvancedNodes int
	Hours         int

	AdvancedPGE float64
	RandomPGE   float64
	// HoneypotPGE is the simulated traditional honeypot's efficiency in
	// the same world over the same hours.
	HoneypotPGE      float64
	HoneypotSpammers int
}

// RunGroundTruth executes (or returns the cached) labeling phase.
func (r *Runner) RunGroundTruth() (*GroundTruth, error) {
	if r.gt != nil {
		return r.gt, nil
	}
	worldCfg := r.scale.World
	worldCfg.Seed += 10
	w, err := socialnet.NewWorld(worldCfg)
	if err != nil {
		return nil, fmt.Errorf("ground-truth world: %w", err)
	}
	e := socialnet.NewEngine(w)

	rng := rand.New(rand.NewSource(worldCfg.Seed + 1))
	m := core.NewMonitor(core.MonitorConfig{
		Specs:      randomSpecs(r.scale.GroundTruthNodes, rng),
		ActiveOnly: true,
		Seed:       worldCfg.Seed + 2,
	}, &core.LocalScreener{World: w, Rng: rng})
	detach := core.Attach(m, e)
	e.RunHours(r.scale.GroundTruthHours)
	detach()

	captures := m.Captures()
	tweets := make([]*socialnet.Tweet, len(captures))
	for i, c := range captures {
		tweets[i] = c.Tweet
	}
	// Labeling happens months after collection; by then the platform has
	// suspended most of the spam accounts involved.
	w.AdvanceSuspensions(r.scale.SuspensionLagHours,
		rand.New(rand.NewSource(worldCfg.Seed+4)))
	corpus := label.NewCorpus(tweets, w.Account)
	pipeline := label.NewPipeline(label.DefaultConfig())
	labels := pipeline.Run(corpus, label.NewNoisyOracle(w, 0.01, worldCfg.Seed+3))

	ds, err := core.BuildDataset(captures, labels)
	if err != nil {
		return nil, fmt.Errorf("ground-truth dataset: %w", err)
	}
	r.gt = &GroundTruth{
		Captures:     captures,
		Corpus:       corpus,
		Labels:       labels,
		Dataset:      ds,
		ManualChecks: labels.ManualChecks,
	}
	return r.gt, nil
}

// RunTableIV executes (or returns the cached) classifier comparison:
// 10-fold cross-validation of the five families on the ground-truth
// dataset (paper Table IV).
func (r *Runner) RunTableIV() (map[core.ClassifierName]ml.Metrics, error) {
	if r.tableIV != nil {
		return r.tableIV, nil
	}
	gt, err := r.RunGroundTruth()
	if err != nil {
		return nil, err
	}
	ds := gt.Dataset
	if max := r.scale.TableIVMaxSamples; max > 0 && ds.Len() > max {
		idx := rand.New(rand.NewSource(1)).Perm(ds.Len())[:max]
		ds = ds.Subset(idx)
	}
	// The five families are independent cross-validation problems; fan
	// them out over the worker pool. Each family's folds also run
	// concurrently (ml.CrossValidate) and the RF's trees train in
	// parallel below that, all deterministically seeded, so the table is
	// bit-identical at any worker count.
	results := make([]ml.Metrics, len(core.ClassifierNames))
	err = parallel.ForEachErr(len(core.ClassifierNames), 0, func(i int) error {
		name := core.ClassifierNames[i]
		// CV refits each family ten times over; histogram-binned split
		// finding (core.DefaultRetrainBins) keeps the table's shape while
		// cutting the candidate scan — the single deployed detector in
		// RunMain stays on the exact scan.
		factory := func() ml.Classifier {
			clf, ferr := core.NewBinnedClassifier(name, 7)
			if ferr != nil {
				panic(ferr) // unreachable: name is from ClassifierNames
			}
			return clf
		}
		metrics, cvErr := ml.CrossValidate(ds, 10, factory, 11)
		if cvErr != nil {
			return fmt.Errorf("cross-validate %s: %w", name, cvErr)
		}
		results[i] = metrics
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[core.ClassifierName]ml.Metrics, len(core.ClassifierNames))
	for i, name := range core.ClassifierNames {
		out[name] = results[i]
	}
	r.tableIV = out
	return out, nil
}

// RunMain executes (or returns the cached) long collection phase.
func (r *Runner) RunMain() (*MainRun, error) {
	if r.main != nil {
		return r.main, nil
	}
	gt, err := r.RunGroundTruth()
	if err != nil {
		return nil, err
	}

	worldCfg := r.scale.World
	worldCfg.Seed += 20
	w, err := socialnet.NewWorld(worldCfg)
	if err != nil {
		return nil, fmt.Errorf("main world: %w", err)
	}
	e := socialnet.NewEngine(w)
	rng := rand.New(rand.NewSource(worldCfg.Seed + 1))
	m := core.NewMonitor(core.MonitorConfig{
		Specs:      core.StandardSpecs(r.scale.NodesPerValue),
		ActiveOnly: true,
		Seed:       worldCfg.Seed + 2,
	}, &core.LocalScreener{World: w, Rng: rng})
	detach := core.Attach(m, e)
	e.RunHours(r.scale.MainHours)
	detach()

	clf, err := core.NewClassifier(core.ClassifierRF, 1)
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(clf)
	if err := det.Train(gt.Captures, gt.Labels); err != nil {
		return nil, fmt.Errorf("train detector: %w", err)
	}
	captures := m.Captures()
	verdicts := det.Classify(captures)
	m.AttributeSpam(verdicts)

	run := &MainRun{
		Monitor:         m,
		Detector:        det,
		Verdicts:        verdicts,
		PGERows:         core.ComputePGE(m.Groups()),
		SpamsPerSpammer: make(map[socialnet.AccountID]int),
	}
	users := make(map[socialnet.AccountID]struct{})
	for i, c := range captures {
		run.Tweets++
		users[c.Tweet.AuthorID] = struct{}{}
		if verdicts[i] {
			run.Spams++
			run.SpamsPerSpammer[c.Tweet.AuthorID]++
		}
	}
	run.Users = len(users)
	run.Spammers = len(run.SpamsPerSpammer)
	r.main = run
	return run, nil
}

// RunAdvanced executes (or returns the cached) advanced-system comparison:
// the top-PGE network, the random baseline, and a traditional honeypot
// deployed together in a fresh world.
func (r *Runner) RunAdvanced() (*AdvancedRun, error) {
	if r.adv != nil {
		return r.adv, nil
	}
	main, err := r.RunMain()
	if err != nil {
		return nil, err
	}

	worldCfg := r.scale.World
	worldCfg.Seed += 30
	w, err := socialnet.NewWorld(worldCfg)
	if err != nil {
		return nil, fmt.Errorf("advanced world: %w", err)
	}
	e := socialnet.NewEngine(w)

	advSpecs := core.AdvancedSpecs(main.PGERows,
		r.scale.AdvancedSelectors, r.scale.AdvancedNodesEach)
	totalNodes := core.TotalNodes(advSpecs)

	advMonitor := core.NewMonitor(core.MonitorConfig{
		Specs:      advSpecs,
		ActiveOnly: true,
		Seed:       worldCfg.Seed + 2,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(worldCfg.Seed + 3))})
	randMonitor := core.NewMonitor(core.MonitorConfig{
		Specs: core.RandomSpec(totalNodes),
		Seed:  worldCfg.Seed + 4,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(worldCfg.Seed + 5))})

	hp := honeypot.Deploy(w, honeypot.Config{
		Nodes:   totalNodes,
		Friends: 1000,
		Seed:    worldCfg.Seed + 6,
	}, e.Now())
	e.Subscribe(hp.OnTweet)
	e.OnHourStart(func(int, time.Time) { hp.AddHours(1) })

	detachAdv := core.Attach(advMonitor, e)
	detachRand := core.Attach(randMonitor, e)

	hours := r.scale.AdvancedHours
	run := &AdvancedRun{
		AdvancedNodes: totalNodes,
		Hours:         hours,
	}
	// Classify incrementally each hour to build the Figure 6 series.
	advSeen := make(map[socialnet.AccountID]struct{})
	randSeen := make(map[socialnet.AccountID]struct{})
	advDone, randDone := 0, 0
	for h := 0; h < hours; h++ {
		e.RunHours(1)
		advDone = r.tally(main.Detector, advMonitor, advSeen, advDone, &run.AdvancedSpams)
		randDone = r.tally(main.Detector, randMonitor, randSeen, randDone, nil)
		run.AdvancedByHour = append(run.AdvancedByHour, len(advSeen))
		run.RandomByHour = append(run.RandomByHour, len(randSeen))
	}
	detachAdv()
	detachRand()

	run.AdvancedSpammers = len(advSeen)
	run.RandomSpammers = len(randSeen)
	nodeHours := float64(totalNodes * hours)
	if nodeHours > 0 {
		run.AdvancedPGE = float64(run.AdvancedSpammers) / nodeHours
		run.RandomPGE = float64(run.RandomSpammers) / nodeHours
	}
	run.HoneypotPGE = hp.PGE()
	_, _, hpSpammers, _ := hp.Stats()
	run.HoneypotSpammers = hpSpammers
	r.adv = run
	return run, nil
}

// tally classifies the monitor's captures added since index done and folds
// garnered spammers into seen. Each hour's fresh captures go through the
// detector's chunked parallel batch path (Detector.Classify), the same one
// the main run uses. Only mention-received spam counts — the Figure 6
// comparison measures attraction, so a harnessed account's own spam
// (Category (1)) garners nothing. It returns the new done index.
func (r *Runner) tally(det *core.Detector, m *core.Monitor, seen map[socialnet.AccountID]struct{}, done int, spams *int) int {
	captures := m.Captures()
	fresh := captures[done:]
	verdicts := det.Classify(fresh)
	for i, c := range fresh {
		if verdicts[i] && c.Receiver != nil {
			seen[c.Tweet.AuthorID] = struct{}{}
			if spams != nil {
				*spams++
			}
		}
	}
	return len(captures)
}

// randomSpecs draws n single-node selectors uniformly from the standard
// selector pool (the paper's "attributes randomly selected from Table I").
func randomSpecs(n int, rng *rand.Rand) []core.SelectorSpec {
	pool := core.StandardSpecs(1)
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[rng.Intn(len(pool))]++
	}
	// Deterministic spec order: iterate the pool, not the map.
	var specs []core.SelectorSpec
	for i := range pool {
		if c := counts[i]; c > 0 {
			specs = append(specs, core.SelectorSpec{
				Selector: pool[i].Selector,
				Nodes:    c,
			})
		}
	}
	return specs
}
