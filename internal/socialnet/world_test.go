package socialnet

import (
	"math"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	return cfg
}

func newTestWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(testConfig())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestNewWorldValidatesConfig(t *testing.T) {
	bad := testConfig()
	bad.NumAccounts = 0
	if _, err := NewWorld(bad); err == nil {
		t.Fatal("NewWorld accepted invalid config")
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "negative spammer fraction", mutate: func(c *Config) { c.SpammerFraction = -0.1 }},
		{name: "spammer fraction one", mutate: func(c *Config) { c.SpammerFraction = 1 }},
		{name: "zero campaign size", mutate: func(c *Config) { c.AccountsPerCampaign = 0 }},
		{name: "negative organic", mutate: func(c *Config) { c.OrganicTweetsPerHour = -1 }},
		{name: "active prob", mutate: func(c *Config) { c.SpammerActiveProb = 1.5 }},
		{name: "targets", mutate: func(c *Config) { c.SpamTargetsPerHour = -2 }},
		{name: "suspension", mutate: func(c *Config) { c.SuspensionRatePerHour = 2 }},
		{name: "diverse", mutate: func(c *Config) { c.DiverseFraction = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted invalid config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := FullScaleConfig().Validate(); err != nil {
		t.Fatalf("full-scale config invalid: %v", err)
	}
}

func TestWorldDeterministicForSeed(t *testing.T) {
	a, err := NewWorld(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAccounts() != b.NumAccounts() {
		t.Fatal("account counts differ for equal seeds")
	}
	for i, acctA := range a.accounts {
		acctB := b.accounts[i]
		if acctA.ScreenName != acctB.ScreenName || acctA.FollowersCount != acctB.FollowersCount {
			t.Fatalf("account %d differs between equal-seed worlds", i)
		}
	}
}

func TestWorldDiffersAcrossSeeds(t *testing.T) {
	cfgA := testConfig()
	cfgB := testConfig()
	cfgB.Seed = 999
	a, _ := NewWorld(cfgA)
	b, _ := NewWorld(cfgB)
	same := 0
	for i := range a.accounts {
		if a.accounts[i].ScreenName == b.accounts[i].ScreenName {
			same++
		}
	}
	if same == len(a.accounts) {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestPopulationComposition(t *testing.T) {
	w := newTestWorld(t)
	var spammers, seeds, normals int
	for _, a := range w.accounts {
		switch a.Kind {
		case KindSpammer:
			spammers++
		case KindSeed:
			seeds++
		default:
			normals++
		}
	}
	wantSpam := int(float64(w.cfg.NumAccounts) * w.cfg.SpammerFraction)
	if spammers != wantSpam {
		t.Fatalf("spammers = %d, want %d", spammers, wantSpam)
	}
	if seeds == 0 || normals == 0 {
		t.Fatalf("population missing kinds: seeds=%d normals=%d", seeds, normals)
	}
}

func TestSpammersBelongToCampaigns(t *testing.T) {
	w := newTestWorld(t)
	for _, a := range w.accounts {
		if a.Kind == KindSpammer && (a.CampaignID < 0 || a.CampaignID >= len(w.campaigns)) {
			t.Fatalf("spammer %d has invalid campaign %d", a.ID, a.CampaignID)
		}
		if a.Kind != KindSpammer && a.CampaignID != NoCampaign {
			t.Fatalf("non-spammer %d assigned to campaign %d", a.ID, a.CampaignID)
		}
	}
	for _, c := range w.campaigns {
		if len(c.MemberIDs) == 0 {
			t.Fatalf("campaign %d has no members", c.ID)
		}
	}
}

// Campaign members must share dHash-clusterable avatars and Σ-Seq
// name shapes — the artefacts the labeling pipeline detects.
func TestCampaignArtefactsCluster(t *testing.T) {
	w := newTestWorld(t)
	c := w.campaigns[0]
	if len(c.MemberIDs) < 2 {
		t.Skip("campaign too small")
	}
	first := w.Account(c.MemberIDs[0])
	base := imagehash.DHash(imagehash.Synthesize(c.BaseImageSeed))
	seqs := make(map[string]int)
	within := 0
	for _, id := range c.MemberIDs {
		m := w.Account(id)
		if base.Distance(m.ProfileImageHash) <= imagehash.DefaultThreshold {
			within++
		}
		seqs[textutil.ClassSeqWithRunLengths(m.ScreenName)]++
	}
	if within < len(c.MemberIDs)*9/10 {
		t.Fatalf("only %d/%d members hash near campaign base", within, len(c.MemberIDs))
	}
	if len(seqs) > 3 {
		t.Fatalf("campaign screen names split into %d Σ-Seq groups (%v), first=%q",
			len(seqs), seqs, first.ScreenName)
	}
}

func TestAttributeCoverageOfTableIISampleValues(t *testing.T) {
	cfg := testConfig()
	cfg.NumAccounts = 8000
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := simclock.Epoch
	// For a representative subset of Table II sample values, the world
	// must contain accounts within a ±40% band.
	attrs := []struct {
		name  string
		value float64
		attr  func(*Account) float64
	}{
		{name: "followers 10k", value: 10000, attr: func(a *Account) float64 { return float64(a.FollowersCount) }},
		{name: "friends 10k", value: 10000, attr: func(a *Account) float64 { return float64(a.FriendsCount) }},
		{name: "lists 500", value: 500, attr: func(a *Account) float64 { return float64(a.ListedCount) }},
		{name: "favorites 200k", value: 200000, attr: func(a *Account) float64 { return float64(a.FavouritesCount) }},
		{name: "statuses 200k", value: 200000, attr: func(a *Account) float64 { return float64(a.StatusesCount) }},
		{name: "age 1000d", value: 1000, attr: func(a *Account) float64 { return a.AgeDays(now) }},
		{name: "lists/day 1", value: 1, attr: func(a *Account) float64 { return a.ListsPerDay(now) }},
	}
	for _, tt := range attrs {
		matches := 0
		for _, a := range w.accounts {
			v := tt.attr(a)
			if v >= tt.value*0.6 && v <= tt.value*1.4 {
				matches++
			}
		}
		if matches < 10 {
			t.Errorf("attribute %q: only %d accounts near sample value %v",
				tt.name, matches, tt.value)
		}
	}
}

func TestAttractionRankings(t *testing.T) {
	w := newTestWorld(t)
	now := simclock.Epoch

	// ListedCount stays 0 so the per-day list attribute does not vary
	// with the age mutations below.
	base := &Account{
		ID: 1, CreatedAt: now.Add(-500 * 24 * time.Hour),
		FriendsCount: 100, FollowersCount: 100,
		FavouritesCount: 100, StatusesCount: 200,
		HashtagCategory: HashtagNone, TrendAffinity: TrendNone,
	}
	clone := func(mutate func(*Account)) *Account {
		cp := *base
		mutate(&cp)
		return &cp
	}

	tests := []struct {
		name string
		hi   *Account
		lo   *Account
	}{
		{
			name: "more followers attract more",
			hi:   clone(func(a *Account) { a.FollowersCount = 10000 }),
			lo:   clone(func(a *Account) { a.FollowersCount = 10 }),
		},
		{
			name: "more lists attract more",
			hi:   clone(func(a *Account) { a.ListedCount = 500 }),
			lo:   clone(func(a *Account) { a.ListedCount = 5 }),
		},
		{
			name: "low friend/follower ratio attracts more",
			hi:   clone(func(a *Account) { a.FriendsCount = 100; a.FollowersCount = 1000 }),
			lo:   clone(func(a *Account) { a.FriendsCount = 1000; a.FollowersCount = 100 }),
		},
		{
			name: "social hashtag beats astrology",
			hi:   clone(func(a *Account) { a.HashtagCategory = HashtagSocial }),
			lo:   clone(func(a *Account) { a.HashtagCategory = HashtagAstrology }),
		},
		{
			name: "trending-up beats no trend",
			hi:   clone(func(a *Account) { a.TrendAffinity = TrendUp }),
			lo:   clone(func(a *Account) { a.TrendAffinity = TrendNone }),
		},
		{
			name: "age 1000 days beats age 30 days",
			hi:   clone(func(a *Account) { a.CreatedAt = now.Add(-1000 * 24 * time.Hour) }),
			lo:   clone(func(a *Account) { a.CreatedAt = now.Add(-30 * 24 * time.Hour) }),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			hi := w.Attraction(tt.hi, now)
			lo := w.Attraction(tt.lo, now)
			if hi <= lo {
				t.Fatalf("attraction(hi)=%v <= attraction(lo)=%v", hi, lo)
			}
		})
	}
}

func TestAttractionSuspendedIsZero(t *testing.T) {
	w := newTestWorld(t)
	a := *w.accounts[0]
	a.Suspended = true
	if got := w.Attraction(&a, simclock.Epoch); got != 0 {
		t.Fatalf("suspended attraction = %v, want 0", got)
	}
}

// The top-PGE sample value of the paper (1 list joined per day) must beat
// every other single-attribute boost in the attraction model.
func TestListsPerDayDominatesAttraction(t *testing.T) {
	w := newTestWorld(t)
	now := simclock.Epoch
	age := 200.0
	hi := &Account{
		CreatedAt:   now.Add(-time.Duration(age*24) * time.Hour),
		ListedCount: int(age), // 1 list/day
	}
	others := []*Account{
		{CreatedAt: hi.CreatedAt, FollowersCount: 10000},
		{CreatedAt: hi.CreatedAt, FriendsCount: 10000},
		{CreatedAt: hi.CreatedAt, FavouritesCount: 200000},
		{CreatedAt: hi.CreatedAt, StatusesCount: 200000},
	}
	hiScore := w.Attraction(hi, now)
	for i, o := range others {
		if s := w.Attraction(o, now); s >= hiScore {
			t.Fatalf("attribute %d score %v >= lists/day score %v", i, s, hiScore)
		}
	}
}

func TestAccountDerivedAttributes(t *testing.T) {
	now := simclock.Epoch
	a := &Account{
		CreatedAt:       now.Add(-100 * 24 * time.Hour),
		FriendsCount:    50,
		FollowersCount:  200,
		ListedCount:     100,
		FavouritesCount: 300,
		StatusesCount:   1000,
	}
	if got := a.AgeDays(now); math.Abs(got-100) > 1e-9 {
		t.Fatalf("AgeDays = %v, want 100", got)
	}
	if got := a.FriendFollowerRatio(); got != 0.25 {
		t.Fatalf("ratio = %v, want 0.25", got)
	}
	if got := a.ListsPerDay(now); got != 1 {
		t.Fatalf("ListsPerDay = %v, want 1", got)
	}
	if got := a.FavouritesPerDay(now); got != 3 {
		t.Fatalf("FavouritesPerDay = %v, want 3", got)
	}
	if got := a.StatusesPerDay(now); got != 10 {
		t.Fatalf("StatusesPerDay = %v, want 10", got)
	}
}

func TestAccountZeroFollowersRatioFinite(t *testing.T) {
	a := &Account{FriendsCount: 10}
	if got := a.FriendFollowerRatio(); math.IsInf(got, 0) || got != 10 {
		t.Fatalf("ratio with zero followers = %v, want 10", got)
	}
}

func TestAccountAgeNeverNegative(t *testing.T) {
	now := simclock.Epoch
	a := &Account{CreatedAt: now.Add(24 * time.Hour)}
	if got := a.AgeDays(now); got != 0 {
		t.Fatalf("future-created account age = %v, want 0", got)
	}
}

func TestByScreenName(t *testing.T) {
	w := newTestWorld(t)
	want := w.accounts[10]
	if got := w.ByScreenName(want.ScreenName); got == nil {
		t.Fatal("ByScreenName did not find existing account")
	}
	if got := w.ByScreenName("no_such_account_xyz"); got != nil {
		t.Fatal("ByScreenName found a ghost")
	}
}

func TestTweetHasMentionAndClone(t *testing.T) {
	tw := &Tweet{Mentions: []AccountID{1, 2}, Hashtags: []string{"x"}, URLs: []string{"u"}}
	if !tw.HasMention(2) || tw.HasMention(3) {
		t.Fatal("HasMention wrong")
	}
	cp := tw.Clone()
	cp.Mentions[0] = 99
	cp.Hashtags[0] = "changed"
	if tw.Mentions[0] != 1 || tw.Hashtags[0] != "x" {
		t.Fatal("Clone shares slices with original")
	}
}

func TestKindStrings(t *testing.T) {
	if KindNormal.String() != "normal" || KindSpammer.String() != "spammer" ||
		KindSeed.String() != "seed" || AccountKind(0).String() != "unknown" {
		t.Fatal("AccountKind.String wrong")
	}
	if KindTweet.String() != "tweet" || KindRetweet.String() != "retweet" ||
		KindQuote.String() != "quote" || TweetKind(0).String() != "unknown" {
		t.Fatal("TweetKind.String wrong")
	}
	if SourceWeb.String() != "web" || SourceMobile.String() != "mobile" ||
		SourceThirdParty.String() != "third-party" || SourceOther.String() != "other" {
		t.Fatal("Source.String wrong")
	}
}

func TestSortByAttr(t *testing.T) {
	w := newTestWorld(t)
	now := simclock.Epoch
	followers := func(a *Account, _ time.Time) float64 { return float64(a.FollowersCount) }
	sorted := w.SortByAttr(followers, now)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].FollowersCount > sorted[i].FollowersCount {
			t.Fatal("SortByAttr result not sorted")
		}
	}
	if len(sorted) != w.NumAccounts() {
		t.Fatal("SortByAttr dropped accounts")
	}
}
