package socialnet

import (
	"math/rand"
	"time"
)

// DefaultTolerance is the relative band used when matching numeric sample
// values during account screening.
const DefaultTolerance = 0.35

// ScreenQuery is an account-screening request: find candidate
// pseudo-honeypot nodes satisfying a selector. It is the in-process
// equivalent of the account filtering the paper performs through the
// Twitter search/streaming APIs.
type ScreenQuery struct {
	Selector Selector

	// Count is the number of accounts to return.
	Count int

	// Tolerance is the relative band for numeric sample values;
	// non-positive values use DefaultTolerance.
	Tolerance float64

	// ActiveOnly keeps only accounts in Active status (paper §III-D);
	// ActiveWindow defaults to 24h.
	ActiveOnly   bool
	ActiveWindow time.Duration

	// Exclude lists accounts that must not be selected (e.g. nodes
	// already used in a previous rotation).
	Exclude map[AccountID]struct{}

	// MaxFriendFollowerRatio drops candidates whose friend/follower
	// ratio exceeds the bound — basic selection hygiene against
	// follow-heavy spam accounts (the pseudo-honeypot harnesses *normal*
	// users). Zero or negative disables the filter.
	MaxFriendFollowerRatio float64
}

// Screen returns up to q.Count non-suspended accounts matching the query
// at instant now, sampled uniformly among the matches using rng. The
// returned accounts are shared pointers into the world (profiles mutate as
// the engine runs, as live API lookups would).
func (w *World) Screen(q ScreenQuery, now time.Time, rng *rand.Rand) []*Account {
	if q.Count <= 0 {
		return nil
	}
	tol := q.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	window := q.ActiveWindow
	if window <= 0 {
		window = 24 * time.Hour
	}

	var matches []*Account
	for _, a := range w.accounts {
		if a.Suspended {
			continue
		}
		if _, excluded := q.Exclude[a.ID]; excluded {
			continue
		}
		if q.ActiveOnly && !a.Active(now, window) {
			continue
		}
		if q.MaxFriendFollowerRatio > 0 &&
			a.FriendFollowerRatio() > q.MaxFriendFollowerRatio {
			continue
		}
		if !q.Selector.Matches(a, now, tol) {
			continue
		}
		matches = append(matches, a)
	}
	if len(matches) <= q.Count {
		return matches
	}
	// Partial Fisher–Yates: sample Count of the matches uniformly.
	for i := 0; i < q.Count; i++ {
		j := i + rng.Intn(len(matches)-i)
		matches[i], matches[j] = matches[j], matches[i]
	}
	return matches[:q.Count]
}
