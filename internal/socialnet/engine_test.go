package socialnet

import (
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	w, err := NewWorld(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(w)
}

func TestEngineGeneratesTraffic(t *testing.T) {
	e := newTestEngine(t)
	var tweets []*Tweet
	cancel := e.Subscribe(func(tw *Tweet) { tweets = append(tweets, tw) })
	defer cancel()

	e.RunHours(3)

	if len(tweets) == 0 {
		t.Fatal("no tweets generated")
	}
	stats := e.Stats()
	if stats.Hours != 3 {
		t.Fatalf("Hours = %d, want 3", stats.Hours)
	}
	if stats.TweetsTotal != int64(len(tweets)) {
		t.Fatalf("stats.TweetsTotal = %d, subscribers saw %d", stats.TweetsTotal, len(tweets))
	}
	if stats.SpamTotal == 0 {
		t.Fatal("no spam generated")
	}
	if stats.SpamTotal >= stats.TweetsTotal {
		t.Fatal("spam dominates the firehose; organic traffic missing")
	}
}

func TestEngineChronologicalEmission(t *testing.T) {
	e := newTestEngine(t)
	var last time.Time
	violations := 0
	cancel := e.Subscribe(func(tw *Tweet) {
		if tw.CreatedAt.Before(last) {
			violations++
		}
		last = tw.CreatedAt
	})
	defer cancel()
	e.RunHours(2)
	if violations > 0 {
		t.Fatalf("%d tweets emitted out of chronological order", violations)
	}
}

func TestEngineDeterministicForSeed(t *testing.T) {
	run := func() []TweetID {
		w, err := NewWorld(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(w)
		var ids []TweetID
		e.Subscribe(func(tw *Tweet) { ids = append(ids, tw.ID) })
		e.RunHours(2)
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in volume: %d vs %d", len(a), len(b))
	}
}

func TestEngineUnsubscribeStopsDelivery(t *testing.T) {
	e := newTestEngine(t)
	n := 0
	cancel := e.Subscribe(func(*Tweet) { n++ })
	cancel()
	e.RunHours(1)
	if n != 0 {
		t.Fatalf("cancelled subscriber received %d tweets", n)
	}
}

func TestEngineHourHooksRunBeforeTraffic(t *testing.T) {
	e := newTestEngine(t)
	var hookHours []int
	var tweetsAtHook []int64
	e.OnHourStart(func(hour int, now time.Time) {
		hookHours = append(hookHours, hour)
		tweetsAtHook = append(tweetsAtHook, e.Stats().TweetsTotal)
	})
	e.RunHours(2)
	if len(hookHours) != 2 || hookHours[0] != 0 || hookHours[1] != 1 {
		t.Fatalf("hook hours = %v, want [0 1]", hookHours)
	}
	if tweetsAtHook[0] != 0 {
		t.Fatal("hour-0 hook ran after traffic started")
	}
}

func TestEngineClockAdvancesOneHourPerRun(t *testing.T) {
	e := newTestEngine(t)
	start := e.Now()
	e.RunHours(5)
	if got := e.Now().Sub(start); got != 5*time.Hour {
		t.Fatalf("clock advanced %v, want 5h", got)
	}
}

func TestSpamMentionsTargetAttractiveAccounts(t *testing.T) {
	e := newTestEngine(t)
	now := simclock.Epoch
	spamVictims := make(map[AccountID]int)
	e.Subscribe(func(tw *Tweet) {
		if tw.Spam {
			for _, m := range tw.Mentions {
				spamVictims[m]++
			}
		}
	})
	e.RunHours(6)
	if len(spamVictims) == 0 {
		t.Fatal("no spam mentions generated")
	}
	// Spam-mention victims should have above-average attraction.
	var victimSum float64
	for id := range spamVictims {
		victimSum += e.World().Attraction(e.World().Account(id), now)
	}
	victimAvg := victimSum / float64(len(spamVictims))
	var popSum float64
	for _, a := range e.World().Accounts() {
		popSum += e.World().Attraction(a, now)
	}
	popAvg := popSum / float64(e.World().NumAccounts())
	if victimAvg <= popAvg {
		t.Fatalf("victim avg attraction %v <= population avg %v", victimAvg, popAvg)
	}
}

func TestSpamReactionDelaysShorterThanOrganic(t *testing.T) {
	e := newTestEngine(t)
	lastPost := make(map[AccountID]time.Time)
	var spamDelays, organicDelays []time.Duration
	e.Subscribe(func(tw *Tweet) {
		for _, m := range tw.Mentions {
			if post, ok := lastPost[m]; ok {
				d := tw.CreatedAt.Sub(post)
				if d >= 0 && d < time.Hour {
					if tw.Spam {
						spamDelays = append(spamDelays, d)
					} else if tw.Kind == KindTweet {
						organicDelays = append(organicDelays, d)
					}
				}
			}
		}
		lastPost[tw.AuthorID] = tw.CreatedAt
	})
	e.RunHours(8)
	if len(spamDelays) < 20 || len(organicDelays) < 20 {
		t.Fatalf("not enough delay samples: spam=%d organic=%d",
			len(spamDelays), len(organicDelays))
	}
	med := func(ds []time.Duration) time.Duration {
		// Selection via simple copy+sort is fine at test sizes.
		cp := append([]time.Duration(nil), ds...)
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		return cp[len(cp)/2]
	}
	if med(spamDelays) >= med(organicDelays) {
		t.Fatalf("median spam delay %v >= median organic delay %v",
			med(spamDelays), med(organicDelays))
	}
}

func TestSuspensionProcess(t *testing.T) {
	cfg := testConfig()
	cfg.SuspensionRatePerHour = 0.05
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w)
	e.RunHours(20)

	suspendedSpammers := 0
	suspendedBenign := 0
	totalSpammers := 0
	for _, a := range w.Accounts() {
		if a.Kind == KindSpammer {
			totalSpammers++
			if a.Suspended {
				suspendedSpammers++
			}
		} else if a.Suspended {
			suspendedBenign++
		}
	}
	if suspendedSpammers == 0 {
		t.Fatal("no spammers suspended after 20h at 5%/h")
	}
	if suspendedSpammers == totalSpammers {
		t.Fatal("all spammers suspended; oracle would be perfect, must stay noisy")
	}
	if suspendedBenign > totalSpammers {
		t.Fatalf("implausible false suspensions: %d", suspendedBenign)
	}
}

func TestSuspendedSpammersStopTweeting(t *testing.T) {
	cfg := testConfig()
	cfg.SuspensionRatePerHour = 1.0 // suspend everyone immediately
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w)
	spamSeen := 0
	e.Subscribe(func(tw *Tweet) {
		if tw.Spam {
			spamSeen++
		}
	})
	e.RunHours(3)
	if spamSeen != 0 {
		t.Fatalf("suspended spammers still produced %d spam tweets", spamSeen)
	}
}

func TestActiveStatusTracksRecentActivity(t *testing.T) {
	e := newTestEngine(t)
	e.RunHours(4)
	now := e.Now()
	w := e.World()
	active := 0
	for _, a := range w.Accounts() {
		if a.Active(now, 24*time.Hour) {
			active++
			if a.LastPostAt().IsZero() {
				t.Fatal("active account never posted")
			}
		}
	}
	if active == 0 {
		t.Fatal("no accounts active after 4 hours of traffic")
	}
	if active == w.NumAccounts() {
		t.Fatal("every account active; dormant accounts must exist")
	}
}

// Fig. 2 shape: the overwhelming majority of spammers send one spam per
// victim, with a short geometric tail.
func TestSpamsPerTargetDistribution(t *testing.T) {
	e := newTestEngine(t)
	const draws = 20000
	ones, big := 0, 0
	for i := 0; i < draws; i++ {
		n := e.spamsPerTarget()
		if n == 1 {
			ones++
		}
		if n > 10 {
			big++
		}
	}
	if frac := float64(ones) / draws; frac < 0.90 {
		t.Fatalf("single-spam fraction = %v, want >= 0.90", frac)
	}
	if frac := float64(big) / draws; frac > 0.005 {
		t.Fatalf(">10-spam fraction = %v, want < 0.005", frac)
	}
}

func TestPoisson(t *testing.T) {
	e := newTestEngine(t)
	if e.poisson(0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
	const draws = 5000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += e.poisson(3)
	}
	mean := float64(sum) / draws
	if mean < 2.7 || mean > 3.3 {
		t.Fatalf("poisson(3) sample mean = %v", mean)
	}
}

func TestStatusesCountGrowsWithPosts(t *testing.T) {
	e := newTestEngine(t)
	before := make(map[AccountID]int)
	for _, a := range e.World().Accounts() {
		before[a.ID] = a.StatusesCount
	}
	posts := make(map[AccountID]int)
	e.Subscribe(func(tw *Tweet) { posts[tw.AuthorID]++ })
	e.RunHours(2)
	for _, a := range e.World().Accounts() {
		initial, existed := before[a.ID]
		if !existed {
			continue // churn-spawned account with its own initial count
		}
		want := initial + posts[a.ID]
		if a.StatusesCount != want {
			t.Fatalf("account %d statuses = %d, want %d", a.ID, a.StatusesCount, want)
		}
	}
}

func TestSpamTweetsCarryCampaignArtifacts(t *testing.T) {
	e := newTestEngine(t)
	checked, withURL := 0, 0
	e.Subscribe(func(tw *Tweet) {
		if !tw.Spam || len(tw.Mentions) == 0 {
			return
		}
		checked++
		if len(tw.URLs) > 0 {
			withURL++
		}
		if tw.CampaignID == NoCampaign {
			t.Errorf("spam mention %d has no campaign", tw.ID)
		}
	})
	e.RunHours(2)
	if checked == 0 {
		t.Fatal("no spam mentions observed")
	}
	// Campaign spam always carries a URL; lone wolves only sometimes.
	if withURL*2 < checked {
		t.Fatalf("only %d/%d spam mentions carry URLs", withURL, checked)
	}
}

func TestTrendSetStatesAndTop(t *testing.T) {
	w := newTestWorld(t)
	ts := w.Trends()
	for i := 0; i < 10; i++ {
		ts.Step()
	}
	seen := 0
	for _, s := range TrendStates {
		names := ts.Top(s, 10)
		seen += len(names)
		for _, n := range names {
			if ts.StateOf(n) != s {
				t.Fatalf("topic %q state mismatch", n)
			}
		}
	}
	if seen == 0 {
		t.Fatal("no topics in any state")
	}
	if ts.StateOf("nonexistent-topic") != TrendNone {
		t.Fatal("unknown topic should be TrendNone")
	}
}

func TestTrendSampleRespectsState(t *testing.T) {
	w := newTestWorld(t)
	ts := w.Trends()
	topic := ts.Sample(TrendUp)
	if topic == nil {
		t.Fatal("Sample returned nil")
	}
}

func TestTrendVolumesStayBounded(t *testing.T) {
	w := newTestWorld(t)
	ts := w.Trends()
	for i := 0; i < 500; i++ {
		ts.Step()
	}
	for _, topic := range ts.Topics() {
		if topic.Volume < 0.05 || topic.Volume > 50 {
			t.Fatalf("topic %q volume %v out of bounds", topic.Name, topic.Volume)
		}
	}
}
