package socialnet

import (
	"fmt"
	"math/rand"
	"strings"
)

// HashtagCategory is one of the paper's eight hashtag-based attribute
// categories (Table I, C2) plus "no hashtag".
type HashtagCategory int

// Hashtag categories.
const (
	HashtagNone HashtagCategory = iota + 1
	HashtagEntertainment
	HashtagGeneral
	HashtagBusiness
	HashtagTech
	HashtagEducation
	HashtagEnvironment
	HashtagSocial
	HashtagAstrology
)

// HashtagCategories lists every category with hashtags (excludes
// HashtagNone) in presentation order.
var HashtagCategories = []HashtagCategory{
	HashtagEntertainment, HashtagGeneral, HashtagBusiness, HashtagTech,
	HashtagEducation, HashtagEnvironment, HashtagSocial, HashtagAstrology,
}

func (c HashtagCategory) String() string {
	switch c {
	case HashtagNone:
		return "no hashtag"
	case HashtagEntertainment:
		return "entertainment"
	case HashtagGeneral:
		return "general"
	case HashtagBusiness:
		return "business"
	case HashtagTech:
		return "tech"
	case HashtagEducation:
		return "education"
	case HashtagEnvironment:
		return "environment"
	case HashtagSocial:
		return "social"
	case HashtagAstrology:
		return "astrology"
	default:
		return "unknown"
	}
}

// topHashtags is the simulated stand-in for the hashtag-analytics feed the
// paper cites ([9]): the top-10 hashtags of each category.
var topHashtags = map[HashtagCategory][]string{
	HashtagEntertainment: {
		"movies", "music", "netflix", "gaming", "celebrity",
		"tv", "concert", "oscars", "hiphop", "comedy",
	},
	HashtagGeneral: {
		"love", "life", "happy", "photooftheday", "follow",
		"monday", "weekend", "smile", "fun", "news",
	},
	HashtagBusiness: {
		"business", "marketing", "startup", "entrepreneur", "finance",
		"sales", "money", "investing", "smallbiz", "leadership",
	},
	HashtagTech: {
		"tech", "ai", "coding", "developer", "cybersecurity",
		"cloud", "iot", "bigdata", "blockchain", "software",
	},
	HashtagEducation: {
		"education", "learning", "students", "teachers", "science",
		"study", "college", "stem", "research", "school",
	},
	HashtagEnvironment: {
		"climate", "environment", "sustainability", "nature", "recycle",
		"green", "wildlife", "ocean", "solar", "earth",
	},
	HashtagSocial: {
		"social", "community", "friends", "family", "charity",
		"volunteer", "together", "support", "kindness", "hope",
	},
	HashtagAstrology: {
		"astrology", "zodiac", "horoscope", "tarot", "scorpio",
		"leo", "gemini", "fullmoon", "retrograde", "aries",
	},
}

// TopHashtags returns a copy of the top-10 hashtags for a category.
func TopHashtags(c HashtagCategory) []string {
	return append([]string(nil), topHashtags[c]...)
}

var (
	_firstNames = []string{
		"alex", "sam", "jordan", "taylor", "casey", "morgan", "riley",
		"jamie", "drew", "quinn", "maria", "juan", "wei", "aisha",
		"liam", "emma", "noah", "olivia", "ethan", "sofia", "lucas",
		"mia", "amir", "nina", "kai", "zoe", "ivan", "lena", "omar",
		"rosa",
	}
	_lastNames = []string{
		"smith", "jones", "garcia", "chen", "patel", "kim", "nguyen",
		"brown", "davis", "miller", "wilson", "moore", "clark", "lewis",
		"walker", "hall", "young", "king", "wright", "scott", "lopez",
		"hill", "green", "adams", "baker", "nelson", "carter", "turner",
		"reed", "cook",
	}
	_benignWords = []string{
		"coffee", "morning", "game", "team", "book", "project", "city",
		"photo", "trip", "dinner", "friends", "music", "garden", "movie",
		"meeting", "weather", "beach", "run", "class", "recipe", "dog",
		"cat", "bike", "park", "train", "lunch", "weekend", "concert",
		"match", "season",
	}
	_benignTemplates = []string{
		"just had the best %s with my %s today",
		"anyone else excited about the %s this %s?",
		"finally finished my %s — time for some %s",
		"great %s today, the %s was amazing",
		"thinking about the %s again, what a %s",
		"can't believe the %s happened during the %s",
		"my %s is getting better every %s",
		"sharing some thoughts on the %s and the %s",
		"what a day for a %s, perfect %s vibes",
		"looking forward to the %s with the whole %s crew",
	}
	_benignReplyTemplates = []string{
		"totally agree with your point about the %s!",
		"thanks for sharing this, the %s part really helped",
		"congrats! the %s looks wonderful",
		"haha this made my day, especially the %s",
		"interesting take — have you considered the %s angle?",
		"hope your %s goes well this week",
		"this is why i follow you, great %s content",
		"saw your post about the %s, so true",
	}
	_benignDescTemplates = []string{
		"%s lover | %s enthusiast | views my own",
		"writing about %s and %s since forever",
		"%s fan. %s addict. human.",
		"proud parent, part-time %s expert, full-time %s person",
		"exploring the world of %s one %s at a time",
		"just here for the %s and the occasional %s",
	}
)

// spamTextKind enumerates the spam content archetypes the rule-based
// labeler recognizes (paper §IV-B rule list).
type spamTextKind int

const (
	spamMoney spamTextKind = iota + 1
	spamAdult
	spamPhishing
	spamPromo
	spamFollowerScam
)

var _spamTextKinds = []spamTextKind{
	spamMoney, spamAdult, spamPhishing, spamPromo, spamFollowerScam,
}

// spamTemplates are campaign text templates; %s receives a campaign URL.
// They intentionally contain the lexical signals (money, adult, urgency,
// follower-scam phrases) that the paper's rules key on.
var _spamTemplates = map[spamTextKind][]string{
	spamMoney: {
		"make easy money from home, earn $500 a day fast %s",
		"quick cash guaranteed, free money no work needed %s",
		"win free bitcoin today, instant payout %s",
		"double your income overnight with this secret trick %s",
	},
	spamAdult: {
		"hot singles in your area want to meet you tonight %s",
		"adult cam show free access click now %s",
		"xxx exclusive content waiting for you %s",
	},
	spamPhishing: {
		"your account will be suspended, verify your password now %s",
		"security alert: confirm your login details here %s",
		"you have won a prize, claim with your bank details %s",
	},
	spamPromo: {
		"buy cheap followers now, limited offer %s",
		"best replica watches huge discount today only %s",
		"miracle diet pills lose 10 pounds in a week %s",
		"free iphone giveaway retweet and click %s",
	},
	spamFollowerScam: {
		"follow me and get 1000 followers back instantly %s",
		"gain followers fast, follow train click here %s",
	},
}

// _loneWolfTemplates are used by solo spammers. The two %s slots take
// random filler words so instances do not MinHash-cluster; roughly half
// carry the lexical signals the rule-based labeler keys on, the rest are
// subtle (deceptive without keywords) and only manual checking finds them.
var _loneWolfTemplates = []string{
	"quick cash for %s and %s fans, message me now",
	"earn $300 daily with this %s trick, no %s needed",
	"my %s diet worked miracle, lose weight like a %s",
	"i found this amazing %s opportunity, you should really see the %s",
	"this %s changed my life, ask me about the %s",
	"selling my secret %s method, serious %s people only",
	"dm me for the %s thing everyone in %s is talking about",
	"free bitcoin drop for %s lovers, %s holders welcome",
}

var _spamDescTemplates = []string{
	"official promo account | best deals | dm for collab %s",
	"we help you earn money online fast | click the link %s",
	"free followers and likes | join now %s",
	"exclusive adult content | 18+ only | link below %s",
}

// textGen produces account names, descriptions, and tweet text. All methods
// draw from the provided rng so generation is deterministic per world seed.
type textGen struct {
	rng *rand.Rand
}

func newTextGen(rng *rand.Rand) *textGen {
	return &textGen{rng: rng}
}

func (g *textGen) pick(list []string) string {
	return list[g.rng.Intn(len(list))]
}

// normalScreenName makes an organic, varied screen name.
func (g *textGen) normalScreenName(id AccountID) string {
	first := g.pick(_firstNames)
	last := g.pick(_lastNames)
	switch g.rng.Intn(4) {
	case 0:
		return first + last
	case 1:
		return first + "_" + last
	case 2:
		return fmt.Sprintf("%s%s%d", first, last, g.rng.Intn(100))
	default:
		return fmt.Sprintf("%s_%d", first, int64(id)%10000)
	}
}

// campaignScreenName instantiates a campaign naming template: shared
// Σ-Seq shape (capitalized word, separator, lowercase word, digits) with
// varying words, so the label pipeline's pattern clustering groups them.
func (g *textGen) campaignScreenName() string {
	first := g.pick(_firstNames)
	last := g.pick(_lastNames)
	return fmt.Sprintf("%s_%s%02d",
		strings.ToUpper(first[:1])+first[1:], last, g.rng.Intn(100))
}

func (g *textGen) displayName() string {
	first := g.pick(_firstNames)
	last := g.pick(_lastNames)
	return strings.ToUpper(first[:1]) + first[1:] + " " +
		strings.ToUpper(last[:1]) + last[1:]
}

func (g *textGen) benignDescription() string {
	tpl := g.pick(_benignDescTemplates)
	desc := fmt.Sprintf(tpl, g.pick(_benignWords), g.pick(_benignWords))
	// Personal entropy keeps organic descriptions from near-duplicating
	// each other — only campaign descriptions should MinHash-cluster.
	return desc + fmt.Sprintf(" | %s %s %d", g.pick(_benignWords),
		g.pick(_lastNames), g.rng.Intn(100))
}

// campaignDescription instantiates the campaign's description template with
// minor variation, producing MinHash near-duplicates.
func (g *textGen) campaignDescription(tpl, url string) string {
	desc := fmt.Sprintf(tpl, url)
	// Small variation: occasionally append a short suffix.
	if g.rng.Intn(3) == 0 {
		desc += " " + g.pick([]string{"!!", "<3", "~", "dm us"})
	}
	return desc
}

func (g *textGen) benignTweet() string {
	tpl := g.pick(_benignTemplates)
	return fmt.Sprintf(tpl, g.pick(_benignWords), g.pick(_benignWords)) +
		g.benignTail()
}

func (g *textGen) benignReply() string {
	tpl := g.pick(_benignReplyTemplates)
	return fmt.Sprintf(tpl, g.pick(_benignWords)) + g.benignTail()
}

// benignTail appends enough personal entropy that two organic tweets from
// the same template land below the near-duplicate thresholds — real benign
// tweets are almost never near-duplicates of each other, and the labeling
// pipeline's tweet clustering relies on that.
func (g *textGen) benignTail() string {
	words := make([]string, 4+g.rng.Intn(4))
	for i := range words {
		words[i] = g.pick(_benignWords)
	}
	return fmt.Sprintf(" (%s %s %d)", strings.Join(words, " "),
		g.pick(_firstNames), g.rng.Intn(1000))
}

// loneWolfTweet instantiates a solo spammer's template: two filler words
// break near-duplicate clustering, and the malicious URL is attached only
// sometimes, so a share of lone-wolf spam evades both the URL rule and the
// keyword rules.
func (g *textGen) loneWolfTweet(tpl, url string, withURL bool) string {
	text := fmt.Sprintf(tpl, g.pick(_benignWords), g.pick(_benignWords))
	if withURL {
		text += " " + url
	}
	return text
}

// campaignTweet instantiates one of the campaign's text templates with its
// URL; near-duplicate across the campaign by construction.
func (g *textGen) campaignTweet(tpl, url string) string {
	text := fmt.Sprintf(tpl, url)
	if g.rng.Intn(4) == 0 {
		text += " " + g.pick([]string{"!!!", "act now", "today only", "hurry"})
	}
	return text
}

// maliciousURL fabricates a campaign URL on a known-bad domain pattern.
func maliciousURL(rng *rand.Rand) string {
	domains := []string{
		"spam-click.example", "free-cash.example", "win-big.example",
		"hot-meet.example", "verify-acct.example",
	}
	return fmt.Sprintf("http://%s/%06x",
		domains[rng.Intn(len(domains))], rng.Intn(1<<24))
}

// MaliciousDomains lists the domains used by campaign URL pools. The
// rule-based labeler treats URLs on these domains as malicious — the
// simulated equivalent of a URL blocklist service.
var MaliciousDomains = []string{
	"spam-click.example", "free-cash.example", "win-big.example",
	"hot-meet.example", "verify-acct.example",
}
