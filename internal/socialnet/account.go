// Package socialnet implements the synthetic Twitter-scale social world the
// pseudo-honeypot system runs against. It replaces the paper's gated
// substrate (the live Twitter network observed through the Streaming/REST
// APIs) with a generative model that reproduces the statistical
// regularities the pseudo-honeypot mechanism exploits:
//
//   - heavy-tailed profile attributes spanning the sample values of the
//     paper's Table II;
//   - spam campaigns whose members share profile-image bases, screen-name
//     templates, near-duplicate descriptions, and tweet text templates;
//   - a spammer targeting model that prefers accounts with the attributes
//     the paper's Tables V/VI rank highest (activity- and audience-related
//     attributes first);
//   - organic mention traffic with human reaction delays, against which
//     spam mentions stand out by their short reaction times;
//   - a suspension process that flags a noisy subset of spammers, feeding
//     the labeling pipeline's suspended-account oracle.
//
// See DESIGN.md §2 for the substitution rationale.
package socialnet

import (
	"strings"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
)

// AccountID identifies an account within a World.
type AccountID int64

// TweetID identifies a tweet within a World.
type TweetID int64

// NoCampaign marks accounts that belong to no spam campaign.
const NoCampaign = -1

// AccountKind is the generative ground-truth role of an account. The
// detection pipeline never reads it; only the labeling oracles do.
type AccountKind int

// Account kinds.
const (
	// KindNormal is an ordinary benign user.
	KindNormal AccountKind = iota + 1
	// KindSpammer is a spam-campaign member or lone spammer.
	KindSpammer
	// KindSeed is a trusted account (government, large organization,
	// well-known person) usable as a rule-based non-spam seed.
	KindSeed
)

func (k AccountKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindSpammer:
		return "spammer"
	case KindSeed:
		return "seed"
	default:
		return "unknown"
	}
}

// Account is a simulated user profile. The exported fields mirror the
// profile attributes observable through the Twitter API (paper Table I,
// category C1, and the profile features of §IV-A).
type Account struct {
	ID          AccountID
	ScreenName  string
	Name        string
	Description string

	// CreatedAt determines the account-age attribute.
	CreatedAt time.Time

	FriendsCount    int
	FollowersCount  int
	ListedCount     int
	FavouritesCount int
	StatusesCount   int

	Verified            bool
	DefaultProfileImage bool

	// ProfileImageSeed seeds the synthetic avatar; campaign members share
	// a base seed and differ by a perturbation (see imagehash.Perturb).
	ProfileImageSeed int64
	// ProfileImageHash is the precomputed dHash of the avatar.
	ProfileImageHash imagehash.Hash

	// Kind and CampaignID are generative ground truth, hidden from the
	// detector and revealed only through the labeling oracles.
	Kind       AccountKind
	CampaignID int

	// Suspended reports whether the platform has already suspended the
	// account (a noisy subset of spammers plus rare false suspensions).
	Suspended   bool
	SuspendedAt time.Time

	// HashtagCategory is the account's dominant hashtag category, or
	// HashtagNone for accounts that tweet without hashtags.
	HashtagCategory HashtagCategory
	// TrendAffinity is the trending-topic behaviour of the account.
	TrendAffinity TrendState

	// TweetsPerHour is the organic posting rate.
	TweetsPerHour float64
	// MentionRate is the organic rate at which other users mention this
	// account, before spam traffic.
	MentionRate float64

	// PreferredSource is the client the account usually tweets from.
	PreferredSource Source

	// lastPostAt tracks the most recent post for mention-time computation
	// and active/dormant status. Maintained by the Engine.
	lastPostAt time.Time
	// recentMentions counts mentions received in the current window,
	// decayed hourly. Maintained by the Engine.
	recentMentions int
	// spamBudget is the number of spam messages the account can still
	// send before it is burned (spammers only). Maintained by the Engine.
	spamBudget int
}

// SpamBudget returns the account's remaining spam-message budget
// (generative state; zero for benign accounts and burned spammers).
func (a *Account) SpamBudget() int { return a.spamBudget }

// AgeDays returns the account age in days at instant now.
func (a *Account) AgeDays(now time.Time) float64 {
	d := now.Sub(a.CreatedAt)
	if d < 0 {
		return 0
	}
	return d.Hours() / 24
}

// FriendFollowerRatio returns friends/followers, treating zero followers
// as a ratio against one follower to stay finite.
func (a *Account) FriendFollowerRatio() float64 {
	followers := a.FollowersCount
	if followers == 0 {
		followers = 1
	}
	return float64(a.FriendsCount) / float64(followers)
}

// ListsPerDay returns the average lists joined per day of account age.
func (a *Account) ListsPerDay(now time.Time) float64 {
	return perDay(a.ListedCount, a.AgeDays(now))
}

// FavouritesPerDay returns the average favourites per day of account age.
func (a *Account) FavouritesPerDay(now time.Time) float64 {
	return perDay(a.FavouritesCount, a.AgeDays(now))
}

// StatusesPerDay returns the average statuses per day of account age.
func (a *Account) StatusesPerDay(now time.Time) float64 {
	return perDay(a.StatusesCount, a.AgeDays(now))
}

func perDay(count int, ageDays float64) float64 {
	if ageDays < 1 {
		ageDays = 1
	}
	return float64(count) / ageDays
}

// LastPostAt returns the time of the account's most recent post observed
// by the engine, or the zero time if it has not posted.
func (a *Account) LastPostAt() time.Time { return a.lastPostAt }

// SetLastPostAt overrides the last-post timestamp. It exists for decoders
// that rebuild profile snapshots from the wire (proc-mode shard workers);
// the engine maintains the field itself during simulation.
func (a *Account) SetLastPostAt(t time.Time) { a.lastPostAt = t }

// Active reports the paper's §III-D activity status: the account posted
// within the window and received mentions recently.
func (a *Account) Active(now time.Time, window time.Duration) bool {
	if a.lastPostAt.IsZero() {
		return false
	}
	return now.Sub(a.lastPostAt) <= window && a.recentMentions > 0
}

// TweetKind distinguishes original tweets, retweets, and quotes.
type TweetKind int

// Tweet kinds.
const (
	KindTweet TweetKind = iota + 1
	KindRetweet
	KindQuote
)

func (k TweetKind) String() string {
	switch k {
	case KindTweet:
		return "tweet"
	case KindRetweet:
		return "retweet"
	case KindQuote:
		return "quote"
	default:
		return "unknown"
	}
}

// Source is the client a tweet was posted from.
type Source int

// Tweet sources.
const (
	SourceWeb Source = iota + 1
	SourceMobile
	SourceThirdParty
	SourceOther
)

// NumSources is the number of distinct Source values.
const NumSources = 4

func (s Source) String() string {
	switch s {
	case SourceWeb:
		return "web"
	case SourceMobile:
		return "mobile"
	case SourceThirdParty:
		return "third-party"
	default:
		return "other"
	}
}

// Tweet is one simulated status update. Exported fields mirror what the
// Streaming API delivers in tweet JSON.
type Tweet struct {
	ID        TweetID
	AuthorID  AccountID
	CreatedAt time.Time
	Kind      TweetKind
	Source    Source

	Text     string
	Hashtags []string
	Mentions []AccountID
	URLs     []string

	// Topic is the trending topic the tweet discusses, if any.
	Topic string

	// Spam and CampaignID are generative ground truth, consumed only by
	// evaluation code, never by the detector.
	Spam       bool
	CampaignID int
}

// HasMention reports whether the tweet mentions the given account.
func (t *Tweet) HasMention(id AccountID) bool {
	for _, m := range t.Mentions {
		if m == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the tweet that owns all of its memory:
// slices are copied so API boundaries never share mutable state with the
// engine, and strings are copied so tweets built by zero-copy stream
// decoding (whose strings alias a reused decode buffer) can be retained.
func (t *Tweet) Clone() *Tweet {
	cp := *t
	cp.Text = strings.Clone(t.Text)
	cp.Topic = strings.Clone(t.Topic)
	cp.Hashtags = cloneStringSlice(t.Hashtags)
	cp.URLs = cloneStringSlice(t.URLs)
	cp.Mentions = append([]AccountID(nil), t.Mentions...)
	return &cp
}

// cloneStringSlice deep-copies a string slice, preserving nil.
func cloneStringSlice(in []string) []string {
	if in == nil {
		return nil
	}
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.Clone(s)
	}
	return out
}
