package socialnet

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
)

func TestSpawnSpammerJoinsWorld(t *testing.T) {
	w := newTestWorld(t)
	before := w.NumAccounts()
	now := time.Now()
	a := w.SpawnSpammer(now)
	if w.NumAccounts() != before+1 {
		t.Fatal("spawned spammer not added")
	}
	if a.Kind != KindSpammer {
		t.Fatal("spawned account not a spammer")
	}
	if a.SpamBudget() <= 0 {
		t.Fatal("spawned spammer has no budget")
	}
	if w.Account(a.ID) != a {
		t.Fatal("spawned spammer not indexed")
	}
	// Campaign membership recorded.
	found := false
	for _, c := range w.Campaigns() {
		for _, id := range c.MemberIDs {
			if id == a.ID {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("spawned spammer not in any campaign")
	}
}

func TestSpawnSpammerDeterministic(t *testing.T) {
	mk := func() []string {
		w, err := NewWorld(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		now := time.Now()
		var names []string
		for i := 0; i < 10; i++ {
			names = append(names, w.SpawnSpammer(now).ScreenName)
		}
		return names
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SpawnSpammer not deterministic across equal-seed worlds")
		}
	}
}

func TestAdvanceSuspensionsCoverage(t *testing.T) {
	w := newTestWorld(t)
	rng := rand.New(rand.NewSource(1))
	// rate 0.003/h over 250 h ⇒ ~53% of spammers suspended.
	w.AdvanceSuspensions(250, rng)
	spammers, suspended := 0, 0
	falseSusp := 0
	for _, a := range w.Accounts() {
		if a.Kind == KindSpammer {
			spammers++
			if a.Suspended {
				suspended++
			}
		} else if a.Suspended {
			falseSusp++
		}
	}
	frac := float64(suspended) / float64(spammers)
	if frac < 0.3 || frac > 0.75 {
		t.Fatalf("suspension coverage %v, want ≈0.53", frac)
	}
	// False suspensions must stay rare (pre-existing ones aside).
	if falseSusp > spammers {
		t.Fatalf("implausible false suspensions: %d", falseSusp)
	}
}

func TestAdvanceSuspensionsZeroHours(t *testing.T) {
	w := newTestWorld(t)
	if n := w.AdvanceSuspensions(0, rand.New(rand.NewSource(1))); n != 0 {
		t.Fatalf("zero-hour advance suspended %d", n)
	}
}

func TestSpamBudgetDistribution(t *testing.T) {
	w := newTestWorld(t)
	const draws = 20000
	sum := 0
	ones := 0
	for i := 0; i < draws; i++ {
		b := w.drawSpamBudget()
		if b < 1 {
			t.Fatalf("budget %d < 1", b)
		}
		sum += b
		if b == 1 {
			ones++
		}
	}
	mean := float64(sum) / draws
	want := w.cfg.SpamBudgetMean
	// Mean within 30% of configured (burst tail inflates slightly).
	if mean < want*0.7 || mean > want*1.6 {
		t.Fatalf("budget mean %v, configured %v", mean, want)
	}
	if float64(ones)/draws < 0.3 {
		t.Fatalf("single-message budgets only %v of draws", float64(ones)/draws)
	}
}

func TestLoneWolvesLookOrganic(t *testing.T) {
	w := newTestWorld(t)
	campaigns := w.Campaigns()
	var loneWolfID AccountID
	for _, c := range campaigns {
		if c.LoneWolf() && len(c.MemberIDs) > 0 {
			loneWolfID = c.MemberIDs[0]
			break
		}
	}
	if loneWolfID == 0 {
		t.Fatal("no lone wolves generated")
	}
	lw := w.Account(loneWolfID)
	// Organic-looking artefacts: no campaign naming template (no leading
	// uppercase shape), benign-style description without campaign URLs.
	seq := textutil.ClassSeq(lw.ScreenName)
	if seq[0] == 'U' {
		t.Fatalf("lone wolf name %q uses campaign template shape", lw.ScreenName)
	}
	for _, domain := range MaliciousDomains {
		if strings.Contains(lw.Description, domain) {
			t.Fatalf("lone wolf description leaks campaign URL: %q", lw.Description)
		}
	}
}

func TestCampaignMembersShareDescTemplate(t *testing.T) {
	w := newTestWorld(t)
	for _, c := range w.Campaigns() {
		if c.LoneWolf() || len(c.MemberIDs) < 2 {
			continue
		}
		a := w.Account(c.MemberIDs[0])
		b := w.Account(c.MemberIDs[1])
		// Both descriptions derive from the same template: normalized
		// forms must be near-duplicates.
		na := textutil.NormalizeDescription(a.Description)
		nb := textutil.NormalizeDescription(b.Description)
		sim := textutil.Jaccard(textutil.Shingles(na, 3), textutil.Shingles(nb, 3))
		if sim < 0.5 {
			t.Fatalf("campaign descriptions too dissimilar (%v):\n%q\n%q", sim, na, nb)
		}
		return
	}
	t.Fatal("no multi-member campaign found")
}

func TestBenignDescriptionsRarelyNearDuplicate(t *testing.T) {
	w := newTestWorld(t)
	var normals []*Account
	for _, a := range w.Accounts() {
		if a.Kind == KindNormal {
			normals = append(normals, a)
		}
		if len(normals) >= 120 {
			break
		}
	}
	dup := 0
	pairs := 0
	for i := 0; i < len(normals); i++ {
		for j := i + 1; j < i+6 && j < len(normals); j++ {
			na := textutil.NormalizeDescription(normals[i].Description)
			nb := textutil.NormalizeDescription(normals[j].Description)
			if textutil.Jaccard(textutil.Shingles(na, 3), textutil.Shingles(nb, 3)) >= 0.85 {
				dup++
			}
			pairs++
		}
	}
	if float64(dup)/float64(pairs) > 0.02 {
		t.Fatalf("%d/%d benign description pairs near-duplicate", dup, pairs)
	}
}

func TestBurnedSpammerGoesDark(t *testing.T) {
	cfg := testConfig()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w)
	e.RunHours(6)
	burned := 0
	for _, a := range w.Accounts() {
		if a.Kind != KindSpammer || a.SpamBudget() > 0 {
			continue
		}
		burned++
		if a.TweetsPerHour > 0.05 {
			t.Fatalf("burned spammer still posting at %v/h", a.TweetsPerHour)
		}
	}
	if burned == 0 {
		t.Fatal("no spammers burned after 6 hours")
	}
}

func TestChurnKeepsSpamVolumeSteady(t *testing.T) {
	w, err := NewWorld(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w)
	spamByHour := make([]int, 0, 12)
	spamThisHour := 0
	e.Subscribe(func(tw *Tweet) {
		if tw.Spam {
			spamThisHour++
		}
	})
	for h := 0; h < 12; h++ {
		spamThisHour = 0
		e.RunHours(1)
		spamByHour = append(spamByHour, spamThisHour)
	}
	// Later hours must still produce spam (churn replaces burned
	// accounts); without churn volume would decay toward zero.
	late := spamByHour[9] + spamByHour[10] + spamByHour[11]
	if late == 0 {
		t.Fatalf("spam volume collapsed: %v", spamByHour)
	}
}

func TestChurnDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.SpammerChurn = false
	cfg.SpamBudgetMean = 1
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w)
	before := w.NumAccounts()
	e.RunHours(5)
	if w.NumAccounts() != before {
		t.Fatal("accounts spawned with churn disabled")
	}
}

// Spammers hunt in the rising-topic streams: accounts with trending-up
// affinity must receive disproportionate spam relative to their share of
// the attraction mass (paper Fig. 5's trending-up dominance).
func TestTrendingStreamHunting(t *testing.T) {
	w, err := NewWorld(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(w)
	spamByAffinity := make(map[TrendState]int)
	e.Subscribe(func(tw *Tweet) {
		if !tw.Spam || len(tw.Mentions) == 0 {
			return
		}
		if v := w.Account(tw.Mentions[0]); v != nil {
			spamByAffinity[v.TrendAffinity]++
		}
	})
	e.RunHours(10)

	up := spamByAffinity[TrendUp]
	down := spamByAffinity[TrendDown]
	if up == 0 {
		t.Fatal("no spam reached trending-up accounts")
	}
	// Up and Down affinities have similar population shares (13.3% each
	// of normals); the rising-topic hunting plus the attraction boost
	// must tilt spam toward trending-up victims.
	if up <= down {
		t.Fatalf("trending-up victims got %d spam vs trending-down %d", up, down)
	}
}
