package socialnet

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
)

// Stats aggregates engine counters.
type Stats struct {
	Hours          int
	TweetsTotal    int64
	SpamTotal      int64
	MentionTweets  int64
	Suspensions    int64
	UniqueSpammers int
}

// Engine drives traffic through a World hour by hour on a simulated clock.
// Subscribers receive every generated tweet in chronological order — the
// in-process equivalent of the Twitter firehose that the streaming API
// filters.
//
// Engine is not safe for concurrent use; the twitterapi server wraps it
// with its own synchronization.
type Engine struct {
	world *World
	clock *simclock.Simulated
	queue *simclock.Queue
	rng   *rand.Rand
	gen   *textGen

	subs    map[int]func(*Tweet)
	nextSub int

	hourHooks []func(hour int, now time.Time)

	// watches maps a victim to the spam reactions pending on their next
	// post this hour.
	watches map[AccountID][]*spamWatch

	// victimIDs/victimCum implement weighted victim sampling by prefix
	// sums of attraction scores; rebuilt hourly.
	victimIDs []AccountID
	victimCum []float64

	// recentTweets is a ring of recently emitted benign tweets available
	// for retweeting/quoting.
	recentTweets []*Tweet
	recentNext   int

	// upPosters is a ring of accounts recently posting on trending-up
	// topics: spammers search rising-topic streams for victims, which is
	// what makes trending-up the hottest trending attribute (paper
	// Fig. 5).
	upPosters     []AccountID
	upPostersNext int

	tweetSeq    TweetID
	hour        int
	stats       Stats
	spammerSeen map[AccountID]struct{}
	// retired counts spam accounts whose budget ran out this hour;
	// churn replaces them at the next hour start.
	retired int
}

// spamWatch is one pending spam reaction from a spammer to a victim.
type spamWatch struct {
	spammer *Account
	count   int
	fired   bool
}

// NewEngine creates an engine over w starting at the world's start time.
func NewEngine(w *World) *Engine {
	return &Engine{
		world:        w,
		clock:        simclock.NewSimulated(w.start),
		queue:        simclock.NewQueue(),
		rng:          rand.New(rand.NewSource(w.cfg.Seed + 2)),
		gen:          newTextGen(rand.New(rand.NewSource(w.cfg.Seed + 3))),
		subs:         make(map[int]func(*Tweet)),
		watches:      make(map[AccountID][]*spamWatch),
		recentTweets: make([]*Tweet, 64),
		upPosters:    make([]AccountID, 256),
		spammerSeen:  make(map[AccountID]struct{}),
	}
}

// World returns the engine's world.
func (e *Engine) World() *World { return e.world }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Hour returns the number of fully simulated hours.
func (e *Engine) Hour() int { return e.hour }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Hours = e.hour
	s.UniqueSpammers = len(e.spammerSeen)
	return s
}

// Subscribe registers fn to receive every generated tweet, in order.
// Received tweets are shared and must not be mutated. The returned cancel
// function removes the subscription.
func (e *Engine) Subscribe(fn func(*Tweet)) (cancel func()) {
	id := e.nextSub
	e.nextSub++
	e.subs[id] = fn
	return func() { delete(e.subs, id) }
}

// OnHourStart registers fn to run at the start of every simulated hour,
// before that hour's traffic is generated. Monitors use this for node
// rotation.
func (e *Engine) OnHourStart(fn func(hour int, now time.Time)) {
	e.hourHooks = append(e.hourHooks, fn)
}

// RunHours simulates n hours of traffic.
func (e *Engine) RunHours(n int) {
	for i := 0; i < n; i++ {
		e.runHour()
	}
}

func (e *Engine) runHour() {
	now := e.clock.Now()
	hourEnd := now.Add(time.Hour)

	for _, hook := range e.hourHooks {
		hook(e.hour, now)
	}

	e.world.trends.Step()
	e.decayActivity()
	e.suspend(now)
	e.churn(now)
	e.rebuildVictimSampler(now)
	e.scheduleOrganic(now)
	e.scheduleSpam(now, hourEnd)

	e.queue.RunUntil(e.clock, hourEnd)

	// Unconsumed watches expire with the hour.
	e.watches = make(map[AccountID][]*spamWatch)
	e.hour++
}

// decayActivity halves every account's recent-mention counter.
func (e *Engine) decayActivity() {
	for _, a := range e.world.accounts {
		a.recentMentions /= 2
	}
}

// suspend runs the platform's hourly suspension process: a fraction of
// spammers plus a trickle of false suspensions.
func (e *Engine) suspend(now time.Time) {
	cfg := e.world.cfg
	for _, a := range e.world.accounts {
		if a.Suspended {
			continue
		}
		var p float64
		if a.Kind == KindSpammer {
			p = cfg.SuspensionRatePerHour
		} else {
			p = cfg.FalseSuspensionRatePerHour
		}
		if p > 0 && e.rng.Float64() < p {
			a.Suspended = true
			a.SuspendedAt = now
			e.stats.Suspensions++
		}
	}
}

// churn replaces spam accounts burned last hour with fresh registrations,
// keeping campaign capacity steady (paper-era campaigns continuously
// registered replacements for suspended/burned accounts).
func (e *Engine) churn(now time.Time) {
	if !e.world.cfg.SpammerChurn {
		e.retired = 0
		return
	}
	for i := 0; i < e.retired; i++ {
		e.world.SpawnSpammer(now)
	}
	e.retired = 0
}

// spendSpamBudget consumes one spam message from the account's budget and
// reports whether the message may be sent. Hitting zero retires the
// account.
func (e *Engine) spendSpamBudget(a *Account) bool {
	if a.spamBudget <= 0 {
		return false
	}
	a.spamBudget--
	if a.spamBudget == 0 {
		// Burned: the account is abandoned and goes dark (it stops
		// posting, loses Active status, and drops out of both the
		// screener's and the spammers' consideration).
		a.TweetsPerHour = 0.02
		e.retired++
	}
	return true
}

// rebuildVictimSampler recomputes the attraction prefix sums used to draw
// spam victims.
func (e *Engine) rebuildVictimSampler(now time.Time) {
	e.victimIDs = e.victimIDs[:0]
	e.victimCum = e.victimCum[:0]
	cum := 0.0
	for _, a := range e.world.accounts {
		score := e.world.Attraction(a, now)
		if score <= 0 {
			continue
		}
		cum += score
		e.victimIDs = append(e.victimIDs, a.ID)
		e.victimCum = append(e.victimCum, cum)
	}
}

// sampleVictim draws an account weighted by attraction, or nil when the
// sampler is empty. Spammers locate victims by searching recent tweets, so
// sampling retries until it finds an account that posted within the last
// couple of hours (when any exist); the final attempt is unconditional so a
// cold-started world still produces traffic.
func (e *Engine) sampleVictim() *Account {
	if len(e.victimCum) == 0 {
		return nil
	}
	const attempts = 6
	now := e.clock.Now()
	var a *Account
	for try := 0; try < attempts; try++ {
		total := e.victimCum[len(e.victimCum)-1]
		r := e.rng.Float64() * total
		i := sort.SearchFloat64s(e.victimCum, r)
		if i >= len(e.victimIDs) {
			i = len(e.victimIDs) - 1
		}
		a = e.world.byID[e.victimIDs[i]]
		if !a.lastPostAt.IsZero() && now.Sub(a.lastPostAt) <= 24*time.Hour {
			return a
		}
	}
	return a
}

// scheduleOrganic queues the hour's organic posts. Authors are sampled
// proportionally to their posting rate; replies hang off each post with
// human reaction delays.
func (e *Engine) scheduleOrganic(hourStart time.Time) {
	n := e.world.cfg.OrganicTweetsPerHour
	if n == 0 {
		return
	}
	// Author sampler over posting rates (excludes suspended accounts).
	ids := make([]AccountID, 0, len(e.world.accounts))
	cums := make([]float64, 0, len(e.world.accounts))
	cum := 0.0
	for _, a := range e.world.accounts {
		if a.Suspended {
			continue
		}
		cum += a.TweetsPerHour
		ids = append(ids, a.ID)
		cums = append(cums, cum)
	}
	if len(ids) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		r := e.rng.Float64() * cum
		j := sort.SearchFloat64s(cums, r)
		if j >= len(ids) {
			j = len(ids) - 1
		}
		author := e.world.byID[ids[j]]
		at := hourStart.Add(time.Duration(e.rng.Float64() * float64(time.Hour)))
		e.queue.Push(at, func(now time.Time) {
			e.fireOrganicPost(author, now)
		})
	}
}

// fireOrganicPost emits one organic post (tweet/retweet/quote) and
// schedules its replies and any pending spam reactions on the author.
func (e *Engine) fireOrganicPost(author *Account, now time.Time) {
	if author.Suspended {
		return
	}
	t := e.composeOrganic(author, now)
	e.emit(t)

	// Replies arrive with lognormal human delays; repliers mention the
	// author (the paper's Category (2) traffic).
	replies := e.poisson(repliesPerPost(author))
	for i := 0; i < replies; i++ {
		delay := time.Duration(logNormal(e.rng, math.Log(1500), 1.0)) * time.Second
		e.queue.Push(now.Add(delay), func(rnow time.Time) {
			e.fireReply(author, rnow)
		})
	}

	// Spammers watching this victim react fast (Category (3)).
	if watches := e.watches[author.ID]; len(watches) > 0 {
		for _, wch := range watches {
			if wch.fired {
				continue
			}
			wch.fired = true
			e.scheduleSpamReaction(wch, author, now)
		}
		delete(e.watches, author.ID)
	}
}

// composeOrganic builds the author's post: benign content with hashtags
// and trending topics matching the author's habits, or — when the author
// is a spammer — occasionally camouflage (benign) content.
func (e *Engine) composeOrganic(author *Account, now time.Time) *Tweet {
	kind := KindTweet
	var text string
	var mentions []AccountID

	switch r := e.rng.Float64(); {
	case r < 0.12:
		if src := e.sampleRecent(); src != nil {
			kind = KindRetweet
			srcAuthor := e.world.byID[src.AuthorID]
			if srcAuthor != nil {
				text = "RT @" + srcAuthor.ScreenName + ": " + src.Text
				mentions = append(mentions, src.AuthorID)
			}
		}
	case r < 0.20:
		if src := e.sampleRecent(); src != nil {
			kind = KindQuote
			text = e.gen.benignReply() + " // " + src.Text
			mentions = append(mentions, src.AuthorID)
		}
	}
	spam := false
	campaign := NoCampaign
	if text == "" {
		if author.Kind == KindSpammer && author.spamBudget > 0 &&
			e.rng.Float64() < 0.08 && e.spendSpamBudget(author) {
			// Broadcast spam on the spammer's own timeline
			// (Category (1) spam when the account is selected).
			c := e.world.campaigns[author.CampaignID]
			text = e.spamText(c)
			spam = true
			campaign = c.ID
		} else {
			text = e.gen.benignTweet()
		}
	}

	t := &Tweet{
		AuthorID:   author.ID,
		CreatedAt:  now,
		Kind:       kind,
		Source:     e.source(author),
		Text:       text,
		Mentions:   mentions,
		Spam:       spam,
		CampaignID: campaign,
	}
	e.decorate(t, author)
	return t
}

// fireReply emits a benign mention of target from a sampled replier.
func (e *Engine) fireReply(target *Account, now time.Time) {
	replier := e.sampleVictim() // activity-weighted; close enough to a
	// follower sample for reply sourcing
	if replier == nil || replier.ID == target.ID || replier.Suspended {
		return
	}
	t := &Tweet{
		AuthorID:  replier.ID,
		CreatedAt: now,
		Kind:      KindTweet,
		Source:    e.source(replier),
		Text:      "@" + target.ScreenName + " " + e.gen.benignReply(),
		Mentions:  []AccountID{target.ID},
	}
	e.emit(t)
}

// scheduleSpam queues the hour's spam campaigns: each active spammer picks
// victims, registers fast-reaction watches on them, and falls back to an
// unprompted mention if the victim stays quiet this hour.
func (e *Engine) scheduleSpam(hourStart, hourEnd time.Time) {
	cfg := e.world.cfg
	for _, a := range e.world.accounts {
		if a.Kind != KindSpammer || a.Suspended || a.spamBudget <= 0 {
			continue
		}
		if e.rng.Float64() >= cfg.SpammerActiveProb {
			continue
		}
		spammer := a
		targets := e.poisson(cfg.SpamTargetsPerHour)
		if targets > spammer.spamBudget {
			targets = spammer.spamBudget
		}
		for i := 0; i < targets; i++ {
			victim := e.sampleVictim()
			// A share of spammers hunt in the rising-topic streams:
			// they reply to whoever just posted on a trending-up topic.
			if e.rng.Float64() < 0.12 {
				if v := e.sampleUpPoster(); v != nil {
					victim = v
				}
			}
			if victim == nil || victim.ID == spammer.ID {
				continue
			}
			wch := &spamWatch{spammer: spammer, count: e.spamsPerTarget()}
			e.watches[victim.ID] = append(e.watches[victim.ID], wch)
			// Spammers react to fresh posts; a victim that stays quiet
			// all hour is usually abandoned, but a quarter of spammers
			// reply to the victim's stale post at hour end anyway.
			stale := e.rng.Float64() < 0.25
			e.queue.Push(hourEnd.Add(-time.Second), func(now time.Time) {
				if wch.fired || !stale {
					return
				}
				wch.fired = true
				e.fireSpamMention(wch, e.world.byID[victim.ID], now)
			})
		}
	}
}

// scheduleSpamReaction queues the watch's spam mentions shortly after the
// victim's post, using the campaign's fast reaction delay — the signal
// behind the paper's mention-time feature.
func (e *Engine) scheduleSpamReaction(wch *spamWatch, victim *Account, postAt time.Time) {
	c := e.world.campaigns[wch.spammer.CampaignID]
	delay := time.Duration(e.rng.ExpFloat64()*c.ReactionDelayMeanSeconds) * time.Second
	if delay < time.Second {
		delay = time.Second
	}
	e.queue.Push(postAt.Add(delay), func(now time.Time) {
		e.fireSpamMention(wch, victim, now)
	})
}

// fireSpamMention emits the watch's spam mentions of victim.
func (e *Engine) fireSpamMention(wch *spamWatch, victim *Account, now time.Time) {
	spammer := wch.spammer
	if spammer.Suspended || victim == nil {
		return
	}
	if !e.spendSpamBudget(spammer) {
		return
	}
	c := e.world.campaigns[spammer.CampaignID]
	body := e.spamText(c)
	t := &Tweet{
		AuthorID:   spammer.ID,
		CreatedAt:  now,
		Kind:       KindTweet,
		Source:     e.source(spammer),
		Text:       "@" + victim.ScreenName + " " + body,
		Mentions:   []AccountID{victim.ID},
		Spam:       true,
		CampaignID: c.ID,
	}
	if !c.LoneWolf() || strings.Contains(body, "http") {
		t.URLs = []string{c.URL(e.rng)}
	}
	// Spam frequently rides trending hashtags.
	if e.rng.Float64() < 0.4 {
		topic := e.world.trends.Sample(TrendUp)
		t.Hashtags = append(t.Hashtags, topic.Name)
		t.Topic = topic.Name
	}
	e.emit(t)

	// Remaining spams to the same victim follow at short intervals,
	// scheduled through the queue to keep global emission chronological.
	if wch.count > 1 {
		wch.count--
		e.queue.Push(now.Add(17*time.Second), func(next time.Time) {
			e.fireSpamMention(wch, victim, next)
		})
	}
}

// spamText instantiates the campaign's spam body: shared templates for
// campaign members, private filler-word templates (URL only sometimes) for
// lone wolves.
func (e *Engine) spamText(c *Campaign) string {
	if c.LoneWolf() {
		return e.gen.loneWolfTweet(c.Template(e.rng), c.URL(e.rng),
			e.rng.Float64() < 0.6)
	}
	return e.gen.campaignTweet(c.Template(e.rng), c.URL(e.rng))
}

// decorate attaches hashtags, topics, and URLs to an organic tweet based on
// the author's habits.
func (e *Engine) decorate(t *Tweet, author *Account) {
	if t.Spam {
		c := e.world.campaigns[t.CampaignID]
		if !c.LoneWolf() || strings.Contains(t.Text, "http") {
			t.URLs = append(t.URLs, c.URL(e.rng))
		}
		if e.rng.Float64() < 0.4 {
			topic := e.world.trends.Sample(TrendUp)
			t.Hashtags = append(t.Hashtags, topic.Name)
			t.Topic = topic.Name
		}
		return
	}
	if author.HashtagCategory != HashtagNone && e.rng.Float64() < 0.6 {
		tags := topHashtags[author.HashtagCategory]
		t.Hashtags = append(t.Hashtags, tags[e.rng.Intn(len(tags))])
	}
	if author.TrendAffinity != TrendNone && e.rng.Float64() < 0.5 {
		topic := e.world.trends.Sample(author.TrendAffinity)
		t.Topic = topic.Name
		t.Hashtags = append(t.Hashtags, topic.Name)
	}
}

// emit finalizes a tweet, updates world state, and fans it out to
// subscribers.
func (e *Engine) emit(t *Tweet) {
	e.tweetSeq++
	t.ID = e.tweetSeq
	if t.CampaignID == 0 && !t.Spam {
		t.CampaignID = NoCampaign
	}

	author := e.world.byID[t.AuthorID]
	if author != nil {
		author.StatusesCount++
		author.lastPostAt = t.CreatedAt
	}
	for _, m := range t.Mentions {
		if target := e.world.byID[m]; target != nil {
			target.recentMentions++
		}
		e.stats.MentionTweets++
	}
	e.stats.TweetsTotal++
	if t.Spam {
		e.stats.SpamTotal++
		e.spammerSeen[t.AuthorID] = struct{}{}
	}
	if !t.Spam && t.Kind == KindTweet {
		e.recentTweets[e.recentNext%len(e.recentTweets)] = t
		e.recentNext++
	}
	if !t.Spam && t.Topic != "" && author != nil &&
		author.TrendAffinity == TrendUp {
		e.upPosters[e.upPostersNext%len(e.upPosters)] = t.AuthorID
		e.upPostersNext++
	}
	for _, fn := range e.subs {
		fn(t)
	}
}

// sampleUpPoster returns a random account that recently posted on a
// trending-up topic, or nil when none have yet.
func (e *Engine) sampleUpPoster() *Account {
	n := e.upPostersNext
	if n > len(e.upPosters) {
		n = len(e.upPosters)
	}
	if n == 0 {
		return nil
	}
	a := e.world.byID[e.upPosters[e.rng.Intn(n)]]
	if a == nil || a.Suspended {
		return nil
	}
	return a
}

// sampleRecent returns a random recent benign tweet, or nil.
func (e *Engine) sampleRecent() *Tweet {
	n := e.recentNext
	if n > len(e.recentTweets) {
		n = len(e.recentTweets)
	}
	if n == 0 {
		return nil
	}
	return e.recentTweets[e.rng.Intn(n)]
}

// source draws the tweet source, usually the author's preferred client.
func (e *Engine) source(a *Account) Source {
	if e.rng.Float64() < 0.8 {
		return a.PreferredSource
	}
	return Source(e.rng.Intn(NumSources) + 1)
}

// spamsPerTarget draws the number of spam messages sent to one victim:
// overwhelmingly 1, with a geometric tail (paper Fig. 2: >90% of spammers
// post a single spam, <0.03% more than 10).
func (e *Engine) spamsPerTarget() int {
	if e.rng.Float64() < 0.93 {
		return 1
	}
	n := 2
	for n < 30 && e.rng.Float64() < 0.45 {
		n++
	}
	return n
}

// poisson draws a Poisson variate with mean lambda (Knuth's method; the
// engine's lambdas are small).
func (e *Engine) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= e.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// repliesPerPost scales the expected organic replies to a post with the
// author's audience size.
func repliesPerPost(a *Account) float64 {
	return clampF(0.05+0.22*log10(float64(a.FollowersCount)+1), 0, 2.5)
}
