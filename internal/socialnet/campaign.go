package socialnet

import (
	"math/rand"
)

// Campaign is a coordinated group of spam accounts. Members share the
// artefacts real campaigns share — a base profile image, a description
// template, tweet text templates, and a pool of malicious URLs — which is
// exactly what the paper's clustering-based labeler keys on (§IV-B).
type Campaign struct {
	ID int

	// BaseImageSeed generates the shared avatar; members perturb it.
	BaseImageSeed int64

	// NameShape selects one of the campaign naming-template shapes, so
	// member screen names collapse to the same Σ-Seq class sequence.
	NameShape int

	// DescTemplate is the shared profile-description template (%s takes
	// a campaign URL).
	DescTemplate string

	// TextKind is the spam content archetype (money, adult, phishing,
	// promo, follower scam).
	TextKind spamTextKind

	// TextTemplates are the tweet templates members instantiate.
	TextTemplates []string

	// URLPool is the campaign's malicious link pool.
	URLPool []string

	// ReactionDelayMeanSeconds is the campaign's mean reaction time to a
	// victim's post; spammers react within minutes, far faster than the
	// organic reply delays (paper §IV-A, the mention-time feature).
	ReactionDelayMeanSeconds float64

	// MemberIDs lists the campaign's accounts.
	MemberIDs []AccountID

	// loneWolf marks singleton solo-spammer campaigns.
	loneWolf bool
}

// newCampaign creates campaign number id with artefacts drawn from rng.
func newCampaign(id int, rng *rand.Rand) *Campaign {
	kind := _spamTextKinds[rng.Intn(len(_spamTextKinds))]
	urls := make([]string, 2+rng.Intn(3))
	for i := range urls {
		urls[i] = maliciousURL(rng)
	}
	return &Campaign{
		ID:                       id,
		BaseImageSeed:            rng.Int63(),
		NameShape:                rng.Intn(numNameShapes),
		DescTemplate:             _spamDescTemplates[rng.Intn(len(_spamDescTemplates))],
		TextKind:                 kind,
		TextTemplates:            append([]string(nil), _spamTemplates[kind]...),
		URLPool:                  urls,
		ReactionDelayMeanSeconds: 30 + rng.Float64()*150,
	}
}

// URL returns a random URL from the campaign pool.
func (c *Campaign) URL(rng *rand.Rand) string {
	return c.URLPool[rng.Intn(len(c.URLPool))]
}

// Template returns a random tweet template from the campaign pool.
func (c *Campaign) Template(rng *rand.Rand) string {
	return c.TextTemplates[rng.Intn(len(c.TextTemplates))]
}

// newLoneWolfCampaign fabricates a singleton "campaign" for a solo
// spammer: a private text template with filler-word slots (so instances do
// not near-duplicate-cluster across spammers), a small URL pool used only
// probabilistically, and a personal reaction delay.
func newLoneWolfCampaign(id int, rng *rand.Rand) *Campaign {
	return &Campaign{
		ID:                       id,
		BaseImageSeed:            rng.Int63(),
		NameShape:                -1, // organic naming
		DescTemplate:             "",
		TextKind:                 _spamTextKinds[rng.Intn(len(_spamTextKinds))],
		TextTemplates:            []string{_loneWolfTemplates[rng.Intn(len(_loneWolfTemplates))]},
		URLPool:                  []string{maliciousURL(rng)},
		ReactionDelayMeanSeconds: 40 + rng.Float64()*200,
		loneWolf:                 true,
	}
}

// LoneWolf reports whether the campaign is a singleton solo spammer.
func (c *Campaign) LoneWolf() bool { return c.loneWolf }

// numNameShapes is the number of distinct campaign naming-template shapes.
const numNameShapes = 3

// campaignName instantiates the campaign's naming template. All members of
// one campaign share a Σ-Seq shape while varying the concrete words.
func campaignName(shape int, g *textGen) string {
	switch shape % numNameShapes {
	case 0:
		return g.campaignScreenName() // First_last##
	case 1:
		first := g.pick(_firstNames)
		last := g.pick(_lastNames)
		return first + "." + last + string(rune('0'+g.rng.Intn(10))) +
			string(rune('0'+g.rng.Intn(10))) + string(rune('0'+g.rng.Intn(10)))
	default:
		first := g.pick(_firstNames)
		last := g.pick(_lastNames)
		return "x" + first + "_" + last + "_x"
	}
}
