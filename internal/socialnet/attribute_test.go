package socialnet

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
)

func TestAttributeKeyRoundTrip(t *testing.T) {
	for a := AttrFriends; a <= AttrRandom; a++ {
		got, err := ParseAttribute(a.Key())
		if err != nil {
			t.Fatalf("ParseAttribute(%q): %v", a.Key(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %q -> %v", a, a.Key(), got)
		}
	}
	if _, err := ParseAttribute("bogus"); err == nil {
		t.Fatal("ParseAttribute accepted bogus key")
	}
}

func TestAttributeStringsUnique(t *testing.T) {
	seen := make(map[string]Attribute)
	for a := AttrFriends; a <= AttrRandom; a++ {
		s := a.String()
		if s == "unknown" {
			t.Fatalf("attribute %d renders unknown", a)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("attributes %v and %v share name %q", prev, a, s)
		}
		seen[s] = a
	}
}

func TestAttributeNumeric(t *testing.T) {
	for _, a := range ProfileAttributes {
		if !a.Numeric() {
			t.Fatalf("profile attribute %v not numeric", a)
		}
	}
	for _, a := range []Attribute{AttrHashtag, AttrTrend, AttrRandom} {
		if a.Numeric() {
			t.Fatalf("attribute %v should not be numeric", a)
		}
	}
}

func TestAttributeValues(t *testing.T) {
	now := simclock.Epoch
	a := &Account{
		CreatedAt:       now.Add(-200 * 24 * time.Hour),
		FriendsCount:    100,
		FollowersCount:  400,
		ListedCount:     50,
		FavouritesCount: 600,
		StatusesCount:   2000,
	}
	tests := []struct {
		attr Attribute
		want float64
	}{
		{attr: AttrFriends, want: 100},
		{attr: AttrFollowers, want: 400},
		{attr: AttrTotalFriendsFollowers, want: 500},
		{attr: AttrFriendFollowerRatio, want: 0.25},
		{attr: AttrAgeDays, want: 200},
		{attr: AttrLists, want: 50},
		{attr: AttrFavourites, want: 600},
		{attr: AttrStatuses, want: 2000},
		{attr: AttrListsPerDay, want: 0.25},
		{attr: AttrFavouritesPerDay, want: 3},
		{attr: AttrStatusesPerDay, want: 10},
		{attr: AttrHashtag, want: 0},
	}
	for _, tt := range tests {
		if got := tt.attr.Value(a, now); got != tt.want {
			t.Errorf("%v.Value = %v, want %v", tt.attr, got, tt.want)
		}
	}
}

func TestSelectorMatches(t *testing.T) {
	now := simclock.Epoch
	a := &Account{
		CreatedAt:       now.Add(-200 * 24 * time.Hour),
		FriendsCount:    100,
		FollowersCount:  400,
		HashtagCategory: HashtagSocial,
		TrendAffinity:   TrendUp,
	}
	tests := []struct {
		name string
		sel  Selector
		want bool
	}{
		{name: "numeric within band", sel: Selector{Attr: AttrFollowers, Value: 500}, want: true},
		{name: "numeric outside band", sel: Selector{Attr: AttrFollowers, Value: 10000}, want: false},
		{name: "hashtag match", sel: Selector{Attr: AttrHashtag, Category: HashtagSocial}, want: true},
		{name: "hashtag mismatch", sel: Selector{Attr: AttrHashtag, Category: HashtagTech}, want: false},
		{name: "trend match", sel: Selector{Attr: AttrTrend, Trend: TrendUp}, want: true},
		{name: "trend mismatch", sel: Selector{Attr: AttrTrend, Trend: TrendDown}, want: false},
		{name: "random matches anyone", sel: Selector{Attr: AttrRandom}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.sel.Matches(a, now, 0.35); got != tt.want {
				t.Fatalf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFormatSampleValue(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{give: 10000, want: "10k"},
		{give: 500, want: "500"},
		{give: 0.25, want: "0.25"},
		{give: 0.1, want: "0.1"},
		{give: 1, want: "1"},
		{give: 0, want: "0"},
		{give: 1500, want: "1500"},
	}
	for _, tt := range tests {
		if got := FormatSampleValue(tt.give); got != tt.want {
			t.Errorf("FormatSampleValue(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestSelectorString(t *testing.T) {
	tests := []struct {
		sel  Selector
		want string
	}{
		{sel: Selector{Attr: AttrFollowers, Value: 10000}, want: "followers count=10k"},
		{sel: Selector{Attr: AttrHashtag, Category: HashtagSocial}, want: "hashtag: social"},
		{sel: Selector{Attr: AttrTrend, Trend: TrendUp}, want: "trending up"},
		{sel: Selector{Attr: AttrRandom}, want: "random"},
	}
	for _, tt := range tests {
		if got := tt.sel.String(); got != tt.want {
			t.Errorf("Selector.String = %q, want %q", got, tt.want)
		}
	}
}

func TestScreenFindsMatchingAccounts(t *testing.T) {
	w := newTestWorld(t)
	now := simclock.Epoch
	rng := rand.New(rand.NewSource(1))
	q := ScreenQuery{
		Selector: Selector{Attr: AttrFollowers, Value: 1000},
		Count:    10,
	}
	got := w.Screen(q, now, rng)
	if len(got) == 0 {
		t.Fatal("Screen found no accounts near followers=1000")
	}
	for _, a := range got {
		v := float64(a.FollowersCount)
		if v < 650 || v > 1350 {
			t.Fatalf("account followers %v outside tolerance band", v)
		}
		if a.Suspended {
			t.Fatal("Screen returned a suspended account")
		}
	}
}

func TestScreenRespectsCount(t *testing.T) {
	w := newTestWorld(t)
	rng := rand.New(rand.NewSource(1))
	q := ScreenQuery{Selector: Selector{Attr: AttrRandom}, Count: 7}
	if got := w.Screen(q, simclock.Epoch, rng); len(got) != 7 {
		t.Fatalf("Screen returned %d accounts, want 7", len(got))
	}
	q.Count = 0
	if got := w.Screen(q, simclock.Epoch, rng); got != nil {
		t.Fatal("Screen with Count=0 should return nil")
	}
}

func TestScreenExcludes(t *testing.T) {
	w := newTestWorld(t)
	rng := rand.New(rand.NewSource(1))
	q := ScreenQuery{Selector: Selector{Attr: AttrRandom}, Count: 50}
	first := w.Screen(q, simclock.Epoch, rng)
	q.Exclude = make(map[AccountID]struct{}, len(first))
	for _, a := range first {
		q.Exclude[a.ID] = struct{}{}
	}
	second := w.Screen(q, simclock.Epoch, rng)
	for _, b := range second {
		if _, bad := q.Exclude[b.ID]; bad {
			t.Fatalf("excluded account %d reselected", b.ID)
		}
	}
}

func TestScreenActiveOnly(t *testing.T) {
	w := newTestWorld(t)
	e := NewEngine(w)
	e.RunHours(3)
	now := e.Now()
	rng := rand.New(rand.NewSource(1))
	q := ScreenQuery{
		Selector:   Selector{Attr: AttrRandom},
		Count:      30,
		ActiveOnly: true,
	}
	got := w.Screen(q, now, rng)
	if len(got) == 0 {
		t.Fatal("no active accounts found after traffic")
	}
	for _, a := range got {
		if !a.Active(now, 24*time.Hour) {
			t.Fatalf("Screen(ActiveOnly) returned dormant account %d", a.ID)
		}
	}
}

func TestScreenSamplingIsSeedDependent(t *testing.T) {
	w := newTestWorld(t)
	q := ScreenQuery{Selector: Selector{Attr: AttrRandom}, Count: 20}
	a := w.Screen(q, simclock.Epoch, rand.New(rand.NewSource(1)))
	b := w.Screen(q, simclock.Epoch, rand.New(rand.NewSource(2)))
	diff := false
	for i := range a {
		if a[i].ID != b[i].ID {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different rng seeds produced identical samples")
	}
}
