package socialnet

import (
	"fmt"
	"strings"
	"time"
)

// Attribute identifies one of the paper's pseudo-honeypot selection
// attributes (Table I): the 11 profile-based attributes (category C1), the
// hashtag-based attributes (C2), the trending-based attributes (C3), and a
// uniform-random pseudo-attribute used by the non-pseudo-honeypot baseline.
type Attribute int

// Profile-based attributes (Table I, C1).
const (
	AttrFriends Attribute = iota + 1
	AttrFollowers
	AttrTotalFriendsFollowers
	AttrFriendFollowerRatio
	AttrAgeDays
	AttrLists
	AttrFavourites
	AttrStatuses
	AttrListsPerDay
	AttrFavouritesPerDay
	AttrStatusesPerDay

	// AttrHashtag selects accounts by hashtag category (Table I, C2).
	AttrHashtag
	// AttrTrend selects accounts by trending behaviour (Table I, C3).
	AttrTrend
	// AttrRandom selects uniformly random accounts (the paper's
	// "non pseudo-honeypot" baseline).
	AttrRandom
)

// ProfileAttributes lists the 11 profile-based attributes in the order of
// the paper's Table II.
var ProfileAttributes = []Attribute{
	AttrFriends, AttrFollowers, AttrTotalFriendsFollowers,
	AttrFriendFollowerRatio, AttrAgeDays, AttrLists, AttrFavourites,
	AttrStatuses, AttrListsPerDay, AttrFavouritesPerDay, AttrStatusesPerDay,
}

func (a Attribute) String() string {
	switch a {
	case AttrFriends:
		return "friends count"
	case AttrFollowers:
		return "followers count"
	case AttrTotalFriendsFollowers:
		return "total friends and followers"
	case AttrFriendFollowerRatio:
		return "ratio of friends and followers"
	case AttrAgeDays:
		return "account age (days)"
	case AttrLists:
		return "lists count"
	case AttrFavourites:
		return "favorites count"
	case AttrStatuses:
		return "statuses count"
	case AttrListsPerDay:
		return "average of lists per day"
	case AttrFavouritesPerDay:
		return "average of favorites per day"
	case AttrStatusesPerDay:
		return "average of statuses per day"
	case AttrHashtag:
		return "hashtag"
	case AttrTrend:
		return "trending"
	case AttrRandom:
		return "random"
	default:
		return "unknown"
	}
}

// Key returns the wire identifier used in API query parameters.
func (a Attribute) Key() string {
	switch a {
	case AttrFriends:
		return "friends_count"
	case AttrFollowers:
		return "followers_count"
	case AttrTotalFriendsFollowers:
		return "total_friends_followers"
	case AttrFriendFollowerRatio:
		return "friend_follower_ratio"
	case AttrAgeDays:
		return "account_age_days"
	case AttrLists:
		return "listed_count"
	case AttrFavourites:
		return "favourites_count"
	case AttrStatuses:
		return "statuses_count"
	case AttrListsPerDay:
		return "lists_per_day"
	case AttrFavouritesPerDay:
		return "favourites_per_day"
	case AttrStatusesPerDay:
		return "statuses_per_day"
	case AttrHashtag:
		return "hashtag"
	case AttrTrend:
		return "trend"
	case AttrRandom:
		return "random"
	default:
		return "unknown"
	}
}

// ParseAttribute resolves a wire identifier back to an Attribute.
func ParseAttribute(key string) (Attribute, error) {
	for a := AttrFriends; a <= AttrRandom; a++ {
		if a.Key() == key {
			return a, nil
		}
	}
	return 0, fmt.Errorf("socialnet: unknown attribute %q", key)
}

// Numeric reports whether the attribute has a numeric sample value
// (the profile-based attributes do; hashtag/trend/random do not).
func (a Attribute) Numeric() bool {
	return a >= AttrFriends && a <= AttrStatusesPerDay
}

// Value evaluates the numeric attribute on acct at instant now. It returns
// 0 for non-numeric attributes.
func (a Attribute) Value(acct *Account, now time.Time) float64 {
	switch a {
	case AttrFriends:
		return float64(acct.FriendsCount)
	case AttrFollowers:
		return float64(acct.FollowersCount)
	case AttrTotalFriendsFollowers:
		return float64(acct.FriendsCount + acct.FollowersCount)
	case AttrFriendFollowerRatio:
		return acct.FriendFollowerRatio()
	case AttrAgeDays:
		return acct.AgeDays(now)
	case AttrLists:
		return float64(acct.ListedCount)
	case AttrFavourites:
		return float64(acct.FavouritesCount)
	case AttrStatuses:
		return float64(acct.StatusesCount)
	case AttrListsPerDay:
		return acct.ListsPerDay(now)
	case AttrFavouritesPerDay:
		return acct.FavouritesPerDay(now)
	case AttrStatusesPerDay:
		return acct.StatusesPerDay(now)
	default:
		return 0
	}
}

// Selector describes one pseudo-honeypot selection criterion: an attribute
// plus its sample value (numeric attributes), hashtag category, or trend
// state.
type Selector struct {
	Attr Attribute

	// Value is the numeric sample value for profile-based attributes
	// (Table II).
	Value float64

	// Category applies when Attr == AttrHashtag.
	Category HashtagCategory

	// Trend applies when Attr == AttrTrend.
	Trend TrendState
}

// String renders the selector for tables and logs, e.g.
// "followers count=10000" or "hashtag: social".
func (s Selector) String() string {
	switch s.Attr {
	case AttrHashtag:
		return "hashtag: " + s.Category.String()
	case AttrTrend:
		return s.Trend.String()
	case AttrRandom:
		return "random"
	default:
		return fmt.Sprintf("%s=%s", s.Attr, FormatSampleValue(s.Value))
	}
}

// FormatSampleValue renders a Table II sample value the way the paper
// prints it (fractions below 1, k-suffixed thousands).
func FormatSampleValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	case v >= 1000 && v == float64(int(v)) && int(v)%1000 == 0:
		return fmt.Sprintf("%dk", int(v)/1000)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	}
}

// Matches reports whether acct satisfies the selector at instant now within
// the relative tolerance band tol (e.g. 0.35 accepts values within ±35% of
// the sample value).
func (s Selector) Matches(acct *Account, now time.Time, tol float64) bool {
	switch s.Attr {
	case AttrHashtag:
		return acct.HashtagCategory == s.Category
	case AttrTrend:
		return acct.TrendAffinity == s.Trend
	case AttrRandom:
		return true
	default:
		v := s.Attr.Value(acct, now)
		lo, hi := s.Value*(1-tol), s.Value*(1+tol)
		return v >= lo && v <= hi
	}
}
