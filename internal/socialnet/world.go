package socialnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
)

// World is a generated social network: the account population, the spam
// campaigns hiding inside it, and the trend feed. A World is created once
// and then driven by an Engine.
type World struct {
	cfg       Config
	rng       *rand.Rand
	gen       *textGen
	accounts  []*Account
	byID      map[AccountID]*Account
	campaigns []*Campaign
	trends    *TrendSet
	start     time.Time
}

// NewWorld generates a world from cfg. Generation is deterministic in
// cfg.Seed.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		cfg:    cfg,
		rng:    rng,
		gen:    newTextGen(rng),
		byID:   make(map[AccountID]*Account, cfg.NumAccounts),
		trends: NewTrendSet(rand.New(rand.NewSource(cfg.Seed + 1))),
		start:  simclock.Epoch,
	}
	w.generate()
	return w, nil
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Trends returns the world's trend feed.
func (w *World) Trends() *TrendSet { return w.trends }

// Campaigns returns the spam campaigns (evaluation/oracle use only).
func (w *World) Campaigns() []*Campaign {
	return append([]*Campaign(nil), w.campaigns...)
}

// NumAccounts returns the population size.
func (w *World) NumAccounts() int { return len(w.accounts) }

// Account returns the account with the given id, or nil.
func (w *World) Account(id AccountID) *Account { return w.byID[id] }

// Accounts returns the account slice. Callers must not mutate entries; the
// slice itself is a copy.
func (w *World) Accounts() []*Account {
	return append([]*Account(nil), w.accounts...)
}

// ByScreenName finds an account by screen name, or nil. Screen names are
// not guaranteed unique; the first match wins, as in a search API.
func (w *World) ByScreenName(name string) *Account {
	for _, a := range w.accounts {
		if a.ScreenName == name {
			return a
		}
	}
	return nil
}

// AddAccount registers an externally created account (e.g. a traditional
// honeypot) and returns its assigned id. The account joins the world's
// population and becomes targetable by spammers on the next engine hour.
func (w *World) AddAccount(a *Account) AccountID {
	id := AccountID(len(w.byID) + 1)
	for {
		if _, taken := w.byID[id]; !taken {
			break
		}
		id++
	}
	a.ID = id
	w.accounts = append(w.accounts, a)
	w.byID[id] = a
	return id
}

// generate builds the account population and campaigns.
func (w *World) generate() {
	n := w.cfg.NumAccounts
	numSpammers := int(float64(n) * w.cfg.SpammerFraction)
	numSeeds := int(float64(n) * w.cfg.SeedFraction)
	numLoneWolves := int(float64(numSpammers) * w.cfg.LoneWolfFraction)
	numCampaignMembers := numSpammers - numLoneWolves
	numCampaigns := numCampaignMembers / w.cfg.AccountsPerCampaign
	if numCampaignMembers > 0 && numCampaigns == 0 {
		numCampaigns = 1
	}

	for i := 0; i < numCampaigns; i++ {
		w.campaigns = append(w.campaigns, newCampaign(i, w.rng))
	}
	// Cross-source campaigns: replace already-drawn base-image seeds so
	// another world's campaigns share these avatars. A pure overwrite —
	// no rng draw is added or removed, so all other generation is
	// untouched.
	for i, seed := range w.cfg.CampaignImageSeeds {
		if i >= len(w.campaigns) {
			break
		}
		w.campaigns[i].BaseImageSeed = seed
	}

	w.accounts = make([]*Account, 0, n)
	for i := 0; i < n; i++ {
		id := AccountID(i + 1)
		var a *Account
		switch {
		case i < numCampaignMembers && numCampaigns > 0:
			a = w.genSpammer(id, w.campaigns[i%numCampaigns], w.start)
		case i < numCampaignMembers+numLoneWolves:
			c := newLoneWolfCampaign(len(w.campaigns), w.rng)
			w.campaigns = append(w.campaigns, c)
			a = w.genSpammer(id, c, w.start)
		case i < numSpammers+numSeeds:
			a = w.genSeed(id)
		default:
			a = w.genNormal(id)
		}
		w.accounts = append(w.accounts, a)
		w.byID[id] = a
	}
	// Shuffle so account ids do not leak kind.
	w.rng.Shuffle(len(w.accounts), func(i, j int) {
		w.accounts[i], w.accounts[j] = w.accounts[j], w.accounts[i]
	})
}

// hashAvatar computes the configured perceptual hash of an avatar image.
// The default (dHash) is what every pinned golden was recorded under.
func (w *World) hashAvatar(m *imagehash.Image) imagehash.Hash {
	if w.cfg.ImageHashMode == ImageHashPHash {
		return imagehash.PHash(m)
	}
	return imagehash.DHash(m)
}

// genNormal creates a benign account. A DiverseFraction share of the
// population draws attributes log-uniformly over the full Table II ranges;
// the rest follow typical lognormal profiles.
func (w *World) genNormal(id AccountID) *Account {
	rng := w.rng
	diverse := rng.Float64() < w.cfg.DiverseFraction

	ageDays := logUniform(rng, 10, 3200)
	var followers, friends, lists, favs, statuses int
	if diverse {
		followers = int(logUniform(rng, 1, 22000))
		friends = int(logUniform(rng, 1, 22000))
		favs = int(logUniform(rng, 1, 260000))
		statuses = int(logUniform(rng, 1, 260000))
	} else {
		followers = int(logNormal(rng, math.Log(150), 1.3))
		friends = int(logNormal(rng, math.Log(200), 1.1))
		favs = int(logNormal(rng, math.Log(300), 1.6))
		statuses = int(logNormal(rng, math.Log(400), 1.6))
	}
	// List membership tracks audience: only well-followed accounts are
	// added to many lists, which keeps high lists-per-day values rare and
	// exceptional (they top the paper's PGE ranking precisely because of
	// that).
	lists = int(logUniform(rng, 1, math.Max(2, float64(followers)/3+2)))

	cat := HashtagNone
	if rng.Float64() < 0.7 {
		cat = HashtagCategories[rng.Intn(len(HashtagCategories))]
	}
	affinity := TrendNone
	if rng.Float64() < 0.4 {
		affinity = TrendStates[rng.Intn(len(TrendStates)-1)] // excludes TrendNone at end? see below
	}

	imgSeed := rng.Int63()
	a := &Account{
		ID:               id,
		ScreenName:       w.gen.normalScreenName(id),
		Name:             w.gen.displayName(),
		Description:      w.gen.benignDescription(),
		CreatedAt:        w.start.Add(-time.Duration(ageDays*24) * time.Hour),
		FriendsCount:     friends,
		FollowersCount:   followers,
		ListedCount:      lists,
		FavouritesCount:  favs,
		StatusesCount:    statuses,
		ProfileImageSeed: imgSeed,
		ProfileImageHash: w.hashAvatar(imagehash.Synthesize(imgSeed)),
		Kind:             KindNormal,
		CampaignID:       NoCampaign,
		HashtagCategory:  cat,
		TrendAffinity:    affinity,
		PreferredSource:  w.sampleSource(0.35, 0.5, 0.1),
	}
	a.TweetsPerHour = clampF(a.StatusesPerDay(w.start)/24*1.5, 0.02, 2.5)
	a.Suspended = rng.Float64() < 0.0005 // rare pre-existing false suspensions
	return a
}

// genSpammer creates a spam account: young, aggressive friending (high
// friends, low followers), third-party clients, a finite spam-message
// budget, and either shared campaign artefacts or — for lone wolves —
// organic-looking ones.
func (w *World) genSpammer(id AccountID, c *Campaign, now time.Time) *Account {
	rng := w.rng
	ageDays := logUniform(rng, 5, 500)
	friends := int(logUniform(rng, 50, 5000))
	followers := int(logUniform(rng, 1, 30)) // fresh fakes: nobody follows back

	a := &Account{
		ID:              id,
		Name:            w.gen.displayName(),
		CreatedAt:       now.Add(-time.Duration(ageDays*24) * time.Hour),
		FriendsCount:    friends,
		FollowersCount:  followers,
		ListedCount:     int(logUniform(rng, 1, 5)),
		FavouritesCount: int(logUniform(rng, 1, 50)),
		StatusesCount:   int(logUniform(rng, 50, 20000)),
		Kind:            KindSpammer,
		CampaignID:      c.ID,
		HashtagCategory: w.spammerHashtagCategory(),
		TrendAffinity:   w.spammerTrendAffinity(),
		PreferredSource: w.sampleSource(0.05, 0.15, 0.75),
	}
	if c.LoneWolf() {
		imgSeed := rng.Int63()
		a.ScreenName = w.gen.normalScreenName(id)
		a.Description = w.gen.benignDescription()
		a.ProfileImageSeed = imgSeed
		a.ProfileImageHash = w.hashAvatar(imagehash.Synthesize(imgSeed))
	} else {
		base := imagehash.Synthesize(c.BaseImageSeed)
		a.ScreenName = campaignName(c.NameShape, w.gen)
		a.Description = w.gen.campaignDescription(c.DescTemplate, c.URL(rng))
		a.DefaultProfileImage = rng.Float64() < 0.4
		a.ProfileImageSeed = c.BaseImageSeed
		avatar := imagehash.Perturb(base, 40, rng)
		if w.cfg.MutateCampaignImages {
			// Re-upload mutations: the platform thumbnail pipeline
			// resamples the image and a lossy round trip follows.
			// Deterministic, so no rng draws change.
			avatar = imagehash.Recompress(imagehash.Rescale(avatar, 48, 48), 60)
		}
		a.ProfileImageHash = w.hashAvatar(avatar)
	}
	a.spamBudget = w.drawSpamBudget()
	// Spam accounts post little organic content (camouflage only); they
	// receive almost no mentions, so they rarely reach Active status and
	// the screener's ActiveOnly selection passes them over.
	a.TweetsPerHour = clampF(a.StatusesPerDay(now)/24*0.3, 0.05, 1.5)
	c.MemberIDs = append(c.MemberIDs, id)
	return a
}

// drawSpamBudget draws the account's total spam-message budget:
// geometric with the configured mean, plus a rare burst-account tail.
func (w *World) drawSpamBudget() int {
	mean := w.cfg.SpamBudgetMean
	if mean < 1 {
		mean = 1
	}
	q := 1 - 1/mean // geometric continue-probability
	budget := 1
	for w.rng.Float64() < q && budget < 200 {
		budget++
	}
	if w.rng.Float64() < 0.01 {
		budget *= 8 // burst account
	}
	return budget
}

// spammerHashtagCategory mirrors the organic category mix with a tilt
// toward the high-traffic categories spammers favour.
func (w *World) spammerHashtagCategory() HashtagCategory {
	r := w.rng.Float64()
	switch {
	case r < 0.20:
		return HashtagGeneral
	case r < 0.40:
		return HashtagSocial
	case r < 0.55:
		return HashtagEntertainment
	case r < 0.67:
		return HashtagBusiness
	case r < 0.79:
		return HashtagTech
	case r < 0.86:
		return HashtagNone
	case r < 0.92:
		return HashtagEducation
	case r < 0.97:
		return HashtagEnvironment
	default:
		return HashtagAstrology
	}
}

// spammerTrendAffinity tilts spammers toward rising topics without making
// them uniform.
func (w *World) spammerTrendAffinity() TrendState {
	r := w.rng.Float64()
	switch {
	case r < 0.45:
		return TrendUp
	case r < 0.70:
		return TrendPopular
	case r < 0.85:
		return TrendDown
	default:
		return TrendNone
	}
}

// SpawnSpammer registers a freshly created spam account (campaign churn:
// burned accounts are replaced by new registrations). The new account
// joins a random existing campaign — or a new singleton one for lone
// wolves — and is targetable/active from the next engine hour.
func (w *World) SpawnSpammer(now time.Time) *Account {
	var c *Campaign
	if len(w.campaigns) == 0 || w.rng.Float64() < w.cfg.LoneWolfFraction {
		c = newLoneWolfCampaign(len(w.campaigns), w.rng)
		w.campaigns = append(w.campaigns, c)
	} else {
		c = w.campaigns[w.rng.Intn(len(w.campaigns))]
	}
	a := w.genSpammer(0, c, now)
	// Replacement accounts mix fresh registrations with purchased aged
	// accounts (Thomas et al., USENIX Sec'13).
	ageDays := logUniform(w.rng, 2, 400)
	a.CreatedAt = now.Add(-time.Duration(ageDays*24) * time.Hour)
	w.AddAccount(a)
	// genSpammer appended a placeholder id 0; fix the membership entry.
	c.MemberIDs[len(c.MemberIDs)-1] = a.ID
	return a
}

// AdvanceSuspensions fast-forwards the platform's suspension process by
// the given number of hours without generating traffic — the paper
// collected in March 2018 and labeled in September, by which time many
// more spam accounts had been suspended.
func (w *World) AdvanceSuspensions(hours float64, rng *rand.Rand) int {
	if hours <= 0 {
		return 0
	}
	pSpam := 1 - math.Pow(1-w.cfg.SuspensionRatePerHour, hours)
	pFalse := 1 - math.Pow(1-w.cfg.FalseSuspensionRatePerHour, hours)
	n := 0
	for _, a := range w.accounts {
		if a.Suspended {
			continue
		}
		p := pFalse
		if a.Kind == KindSpammer {
			p = pSpam
		}
		if p > 0 && rng.Float64() < p {
			a.Suspended = true
			n++
		}
	}
	return n
}

// genSeed creates a trusted account: verified, old, huge audience.
func (w *World) genSeed(id AccountID) *Account {
	rng := w.rng
	ageDays := logUniform(rng, 1500, 4000)
	imgSeed := rng.Int63()
	a := &Account{
		ID:               id,
		ScreenName:       "official_" + w.gen.pick(_lastNames) + fmt.Sprintf("%d", rng.Intn(100)),
		Name:             w.gen.displayName(),
		Description:      "official account | " + w.gen.pick(_benignWords) + " news and updates",
		CreatedAt:        w.start.Add(-time.Duration(ageDays*24) * time.Hour),
		FriendsCount:     int(logUniform(rng, 100, 2000)),
		FollowersCount:   int(logUniform(rng, 50000, 2000000)),
		ListedCount:      int(logUniform(rng, 500, 5000)),
		FavouritesCount:  int(logUniform(rng, 100, 5000)),
		StatusesCount:    int(logUniform(rng, 5000, 100000)),
		Verified:         true,
		ProfileImageSeed: imgSeed,
		ProfileImageHash: w.hashAvatar(imagehash.Synthesize(imgSeed)),
		Kind:             KindSeed,
		CampaignID:       NoCampaign,
		HashtagCategory:  HashtagGeneral,
		TrendAffinity:    TrendPopular,
		PreferredSource:  SourceWeb,
	}
	a.TweetsPerHour = clampF(a.StatusesPerDay(w.start)/24, 0.1, 4)
	return a
}

// sampleSource draws a tweet source with the given web/mobile/third-party
// probabilities (remainder goes to SourceOther).
func (w *World) sampleSource(web, mobile, third float64) Source {
	r := w.rng.Float64()
	switch {
	case r < web:
		return SourceWeb
	case r < web+mobile:
		return SourceMobile
	case r < web+mobile+third:
		return SourceThirdParty
	default:
		return SourceOther
	}
}

// Attraction scores how strongly spammers are drawn to account a at instant
// now. The component weights are calibrated so that group-level garner
// efficiency reproduces the rankings of the paper's Tables V and VI: the
// activity-related attributes (lists/day, audience size, list membership)
// dominate, account age peaks near 1,000 days, low friend/follower ratios
// attract more spam, and social/general hashtag users plus trending-up
// posters are preferred.
func (w *World) Attraction(a *Account, now time.Time) float64 {
	if a.Suspended {
		return 0
	}
	score := 0.2 // base exposure of any account

	// Activity-derived attributes (strongest; Table VI ranks 1, 7, 9).
	ld := a.ListsPerDay(now)
	switch {
	case ld >= 1:
		score += 5.5 - 1.8*math.Min(ld-1, 2) // peak at 1/day, falling after
	default:
		score += 5.5 * math.Pow(ld, 1.1)
	}

	// Audience attributes (Table VI ranks 2, 3, 5). Cubic in the log
	// ratio: spammers concentrate sharply on the largest audiences.
	total := float64(a.FriendsCount + a.FollowersCount)
	score += 1.6 * cube(log10(total+1)/4.48)
	score += 1.3 * cube(log10(float64(a.FollowersCount)+1)/4.0)
	score += 1.2 * cube(log10(float64(a.FriendsCount)+1)/4.0)

	// List membership (rank 4).
	score += 1.25 * cube(log10(float64(a.ListedCount)+1)/2.7)

	// Favourites and statuses volume (ranks 6, 8).
	score += 0.9 * cube(log10(float64(a.FavouritesCount)+1)/5.3)
	score += 0.55 * cube(log10(float64(a.StatusesCount)+1)/5.3)

	// Friend/follower ratio: low ratios (big audiences) preferred (rank 10).
	ratio := a.FriendFollowerRatio()
	score += 0.35 * clampF(1-log10(ratio*10)/2, 0, 1)

	// Account age: mild peak near 1,000 days (paper Fig. 3(e)).
	age := a.AgeDays(now)
	if age > 0 {
		score += 0.3 * math.Exp(-sq(log10(age)-3)/(2*0.09))
	}

	// Hashtag category (paper Fig. 4 ordering).
	score += hashtagBoost(a.HashtagCategory)

	// Trending behaviour (paper Fig. 5 ordering).
	score += trendBoost(a.TrendAffinity)

	// Recent activity multiplier (paper §III-D: active accounts attract
	// spammers; dormant ones lose interest).
	if a.Active(now, 24*time.Hour) {
		score *= 1.3
	}
	return score
}

func hashtagBoost(c HashtagCategory) float64 {
	switch c {
	case HashtagSocial:
		return 1.20
	case HashtagGeneral:
		return 1.05
	case HashtagTech:
		return 0.95
	case HashtagBusiness:
		return 0.80
	case HashtagEntertainment:
		return 0.60
	case HashtagEducation:
		return 0.35
	case HashtagEnvironment:
		return 0.25
	case HashtagAstrology:
		return 0.15
	default:
		return 0.10
	}
}

func trendBoost(s TrendState) float64 {
	switch s {
	case TrendUp:
		return 1.10
	case TrendPopular:
		return 0.70
	case TrendDown:
		return 0.45
	default:
		return 0.15
	}
}

// logUniform draws from [lo, hi] uniformly in log space.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo <= 0 {
		lo = 1e-9
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// logNormal draws exp(N(mu, sigma^2)).
func logNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + rng.NormFloat64()*sigma)
}

func log10(x float64) float64 { return math.Log10(x) }

func sq(x float64) float64 { return x * x }

func cube(x float64) float64 { return x * x * x }

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SortByAttr returns account indices sorted by the given numeric attribute
// evaluated at instant now. The screener uses this to binary-search sample
// values.
func (w *World) SortByAttr(attr func(*Account, time.Time) float64, now time.Time) []*Account {
	sorted := append([]*Account(nil), w.accounts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return attr(sorted[i], now) < attr(sorted[j], now)
	})
	return sorted
}
