package socialnet

import (
	"errors"
	"fmt"
)

// Config parameterizes world generation and traffic rates. The zero value
// is not valid; start from DefaultConfig.
type Config struct {
	// Seed drives all randomness in generation and traffic. Equal seeds
	// reproduce identical worlds and tweet streams.
	Seed int64

	// NumAccounts is the total number of simulated accounts.
	NumAccounts int

	// SpammerFraction is the fraction of the account *population* that
	// are spam accounts. This is well below the paper's 8.3% spammer
	// share of collected users: the mention-filtered corpus
	// over-represents spammers because they author the spam.
	SpammerFraction float64

	// AccountsPerCampaign is the approximate campaign size; campaigns
	// partition the spammer population.
	AccountsPerCampaign int

	// SeedFraction is the fraction of accounts that are trusted "seed"
	// accounts (verified organizations and public figures).
	SeedFraction float64

	// OrganicTweetsPerHour is the organic firehose volume.
	OrganicTweetsPerHour int

	// SpammerActiveProb is the probability a spammer campaigns in a
	// given hour.
	SpammerActiveProb float64

	// SpamTargetsPerHour is the mean number of victims an active spammer
	// mentions per hour.
	SpamTargetsPerHour float64

	// SuspensionRatePerHour is the per-hour probability that the platform
	// suspends an active spammer.
	SuspensionRatePerHour float64

	// FalseSuspensionRatePerHour is the per-hour probability a benign
	// account is wrongly suspended (keeps the suspended-account oracle
	// noisy, as on the real platform).
	FalseSuspensionRatePerHour float64

	// DiverseFraction is the share of accounts drawn from wide log-uniform
	// attribute ranges (ensuring coverage of the paper's Table II sample
	// values); the rest follow typical lognormal profiles.
	DiverseFraction float64

	// LoneWolfFraction is the share of spammers operating alone rather
	// than in campaigns: unique avatars, organic-looking names and
	// descriptions, private text templates. They evade the clustering
	// labeler and are caught by rules or manual checking instead.
	LoneWolfFraction float64

	// SpamBudgetMean is the mean number of spam messages an account sends
	// before it is burned and retired (geometrically distributed; a rare
	// heavy tail models burst accounts). Spam accounts are short-lived —
	// the source of the paper's Figure 2 single-spam mass.
	SpamBudgetMean float64

	// SpammerChurn replaces retired spam accounts with freshly registered
	// campaign members, keeping spam volume steady as real campaigns do.
	SpammerChurn bool

	// ImageHashMode selects the perceptual hash precomputed for profile
	// images: "" or ImageHashDHash is the paper's difference hash (the
	// oracle mode the pinned goldens use); ImageHashPHash is the DCT
	// hash, robust to the rescale/recompress mutations that
	// MutateCampaignImages applies.
	ImageHashMode string

	// CampaignImageSeeds overrides the BaseImageSeed of the first
	// len(CampaignImageSeeds) campaigns, letting two worlds (e.g. the
	// Twitter and Reddit sources of a muxed run) share campaign avatars
	// so cross-source campaigns cluster together. The override replaces
	// already-drawn values, so it changes no other generation randomness.
	CampaignImageSeeds []int64

	// MutateCampaignImages rescales and JPEG-recompresses every campaign
	// member's avatar before hashing, modelling re-uploaded variants.
	// Meaningful with ImageHashPHash; dHash is brittle under these edits
	// (the dhash-vs-phash cluster-quality tests quantify exactly that).
	MutateCampaignImages bool
}

// Image-hash modes for Config.ImageHashMode.
const (
	ImageHashDHash = "dhash"
	ImageHashPHash = "phash"
)

// DefaultConfig returns a scaled-down world (a few percent of the paper's
// traffic volume) suitable for tests and benchmarks while preserving every
// shape criterion in DESIGN.md §4.
func DefaultConfig() Config {
	return Config{
		Seed:                       1,
		NumAccounts:                6000,
		SpammerFraction:            0.04,
		AccountsPerCampaign:        40,
		SeedFraction:               0.01,
		OrganicTweetsPerHour:       1200,
		SpammerActiveProb:          0.9,
		SpamTargetsPerHour:         4,
		SuspensionRatePerHour:      0.003,
		FalseSuspensionRatePerHour: 0.000005,
		DiverseFraction:            0.35,
		LoneWolfFraction:           0.25,
		SpamBudgetMean:             2.2,
		SpammerChurn:               true,
	}
}

// FullScaleConfig approximates the paper's deployment scale (700 h of
// streaming yielded 5.6 M mention tweets across 2.8 M accounts). Running it
// takes minutes rather than the seconds of DefaultConfig.
func FullScaleConfig() Config {
	cfg := DefaultConfig()
	cfg.NumAccounts = 200000
	cfg.OrganicTweetsPerHour = 40000
	return cfg
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	switch {
	case c.NumAccounts <= 0:
		return errors.New("socialnet: NumAccounts must be positive")
	case c.SpammerFraction < 0 || c.SpammerFraction >= 1:
		return fmt.Errorf("socialnet: SpammerFraction %v out of [0, 1)", c.SpammerFraction)
	case c.SeedFraction < 0 || c.SeedFraction >= 1:
		return fmt.Errorf("socialnet: SeedFraction %v out of [0, 1)", c.SeedFraction)
	case c.AccountsPerCampaign <= 0:
		return errors.New("socialnet: AccountsPerCampaign must be positive")
	case c.OrganicTweetsPerHour < 0:
		return errors.New("socialnet: OrganicTweetsPerHour must be non-negative")
	case c.SpammerActiveProb < 0 || c.SpammerActiveProb > 1:
		return fmt.Errorf("socialnet: SpammerActiveProb %v out of [0, 1]", c.SpammerActiveProb)
	case c.SpamTargetsPerHour < 0:
		return errors.New("socialnet: SpamTargetsPerHour must be non-negative")
	case c.SuspensionRatePerHour < 0 || c.SuspensionRatePerHour > 1:
		return fmt.Errorf("socialnet: SuspensionRatePerHour %v out of [0, 1]", c.SuspensionRatePerHour)
	case c.FalseSuspensionRatePerHour < 0 || c.FalseSuspensionRatePerHour > 1:
		return fmt.Errorf("socialnet: FalseSuspensionRatePerHour %v out of [0, 1]", c.FalseSuspensionRatePerHour)
	case c.DiverseFraction < 0 || c.DiverseFraction > 1:
		return fmt.Errorf("socialnet: DiverseFraction %v out of [0, 1]", c.DiverseFraction)
	case c.LoneWolfFraction < 0 || c.LoneWolfFraction > 1:
		return fmt.Errorf("socialnet: LoneWolfFraction %v out of [0, 1]", c.LoneWolfFraction)
	case c.SpamBudgetMean < 0:
		return errors.New("socialnet: SpamBudgetMean must be non-negative")
	case c.ImageHashMode != "" && c.ImageHashMode != ImageHashDHash && c.ImageHashMode != ImageHashPHash:
		return fmt.Errorf("socialnet: unknown ImageHashMode %q (want %q or %q)",
			c.ImageHashMode, ImageHashDHash, ImageHashPHash)
	}
	return nil
}
