package socialnet

import (
	"math/rand"
	"sort"
)

// TrendState classifies a topic's popularity trajectory (paper Table I,
// category C3).
type TrendState int

// Trend states.
const (
	TrendNone TrendState = iota + 1
	TrendUp
	TrendDown
	TrendPopular
)

// TrendStates lists the trending-based attribute values in presentation
// order (the paper's trending-up, trending-down, popular, no-trending).
var TrendStates = []TrendState{TrendUp, TrendDown, TrendPopular, TrendNone}

func (s TrendState) String() string {
	switch s {
	case TrendNone:
		return "no trending"
	case TrendUp:
		return "trending up"
	case TrendDown:
		return "trending down"
	case TrendPopular:
		return "popular"
	default:
		return "unknown"
	}
}

// Topic is one discussed subject with a popularity time series.
type Topic struct {
	Name  string
	State TrendState
	// Volume is the current tweets-per-hour share of the topic.
	Volume float64
}

// TrendSet is the simulated stand-in for the hashtag/trend analytics feed
// the paper cites ([9]): a set of topics whose volumes drift each hour,
// classified into trending-up/down/popular/none.
type TrendSet struct {
	rng    *rand.Rand
	topics []*Topic
}

var _topicNames = []string{
	"worldcup", "election", "newphone", "album-drop", "finale",
	"earthquake", "openai", "marathon", "eclipse", "budget",
	"festival", "transfer", "derby", "launch", "strike",
	"heatwave", "premiere", "summit", "blackfriday", "playoffs",
	"royalwedding", "volcano", "championship", "keynote", "protest",
	"grammy", "rocket", "storm", "ipo", "olympics",
}

// NewTrendSet creates a TrendSet with the standard topic pool.
func NewTrendSet(rng *rand.Rand) *TrendSet {
	ts := &TrendSet{rng: rng}
	for _, name := range _topicNames {
		ts.topics = append(ts.topics, &Topic{
			Name:   name,
			State:  TrendStates[rng.Intn(len(TrendStates))],
			Volume: 0.5 + rng.Float64(),
		})
	}
	ts.reclassify()
	return ts
}

// Step advances every topic's volume by one hour and reclassifies states.
func (ts *TrendSet) Step() {
	for _, t := range ts.topics {
		drift := 1 + (ts.rng.Float64()-0.5)*0.3
		switch t.State {
		case TrendUp:
			drift += 0.15
		case TrendDown:
			drift -= 0.15
		}
		t.Volume *= drift
		if t.Volume < 0.05 {
			t.Volume = 0.05
		}
		if t.Volume > 50 {
			t.Volume = 50
		}
		// Occasionally flip trajectory so states churn over a long run.
		if ts.rng.Float64() < 0.05 {
			t.State = TrendStates[ts.rng.Intn(len(TrendStates))]
		}
	}
	ts.reclassify()
}

// reclassify marks the top decile of volumes as popular, keeping explicit
// up/down states otherwise.
func (ts *TrendSet) reclassify() {
	byVol := append([]*Topic(nil), ts.topics...)
	sort.Slice(byVol, func(i, j int) bool { return byVol[i].Volume > byVol[j].Volume })
	for i, t := range byVol {
		if i < len(byVol)/10+1 && t.State != TrendUp && t.State != TrendDown {
			t.State = TrendPopular
		}
	}
}

// Top returns up to n topic names in the given state, highest volume first.
func (ts *TrendSet) Top(state TrendState, n int) []string {
	var matched []*Topic
	for _, t := range ts.topics {
		if t.State == state {
			matched = append(matched, t)
		}
	}
	sort.Slice(matched, func(i, j int) bool {
		return matched[i].Volume > matched[j].Volume
	})
	if len(matched) > n {
		matched = matched[:n]
	}
	names := make([]string, len(matched))
	for i, t := range matched {
		names[i] = t.Name
	}
	return names
}

// StateOf returns the current state of topic name, or TrendNone if the
// topic is unknown.
func (ts *TrendSet) StateOf(name string) TrendState {
	for _, t := range ts.topics {
		if t.Name == name {
			return t.State
		}
	}
	return TrendNone
}

// Sample returns a random topic weighted by volume, preferring topics in
// the given state when any exist.
func (ts *TrendSet) Sample(state TrendState) *Topic {
	var pool []*Topic
	for _, t := range ts.topics {
		if t.State == state {
			pool = append(pool, t)
		}
	}
	if len(pool) == 0 {
		pool = ts.topics
	}
	total := 0.0
	for _, t := range pool {
		total += t.Volume
	}
	r := ts.rng.Float64() * total
	for _, t := range pool {
		r -= t.Volume
		if r <= 0 {
			return t
		}
	}
	return pool[len(pool)-1]
}

// Topics returns all topics (shared pointers; callers must not mutate).
func (ts *TrendSet) Topics() []*Topic {
	return append([]*Topic(nil), ts.topics...)
}
