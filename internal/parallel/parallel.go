// Package parallel provides the shared bounded worker-pool primitives the
// detector's hot paths fan out over: forest training, cross-validation
// folds, batch classification, and the labeling pipeline's clustering
// passes. Every primitive takes an explicit worker count (0 resolves the
// process default, overridable through the PH_WORKERS environment
// variable) so callers stay deterministic and tests can pin the pool size.
//
// Determinism contract: the primitives schedule work in an unspecified
// order, so callers must make each unit of work independent — own its
// output slot, derive its randomness from its index, and never read
// another unit's results. Under that contract the outcome is bit-identical
// at any worker count, which the repo's worker-invariance tests enforce.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// EnvWorkers is the environment variable overriding the default worker
// count (a positive integer; anything else is ignored).
const EnvWorkers = "PH_WORKERS"

// Workers resolves the process-default worker count: PH_WORKERS when set
// to a positive integer, otherwise GOMAXPROCS.
func Workers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve clamps a requested worker count to the n units of work
// available, resolving the default for workers <= 0. The result is always
// at least 1.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// concurrent goroutines; workers <= 0 resolves the default via Workers().
// Indices are handed out dynamically (an atomic counter), so the
// invocation order is unspecified. A panic in fn is re-raised on the
// calling goroutine after all workers drain.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker's pool slot exposed: fn(w, i)
// runs unit i on worker w, where 0 <= w < Resolve(workers, n). The slot
// index lets callers keep per-worker scratch buffers without locking.
// A single unit is only ever processed once, but which slot processes it
// is unspecified, so scratch state must not leak into results.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers, n)
	ins := instruments()
	ins.batches.Inc()
	ins.tasks.Add(float64(n))
	ins.busy.Add(float64(workers))
	defer ins.busy.Add(-float64(workers))
	// Batch stages publish their trace via trace.SetActive; attach the
	// fan-out window to it. One atomic load when no trace is active.
	if tr := trace.Active(); tr != nil {
		sp := tr.StartSpan("parallel_batch")
		sp.SetAttr("tasks", strconv.Itoa(n))
		sp.SetAttr("workers", strconv.Itoa(workers))
		defer sp.End()
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEachChunk splits [0, n) into contiguous chunks of at least minChunk
// indices and invokes fn(lo, hi) for each chunk concurrently. It
// oversubscribes the pool (several chunks per worker) so uneven chunk
// costs still balance. Use it when per-index dispatch overhead would
// dominate, e.g. batch classification of many small vectors.
func ForEachChunk(n, workers, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	w := Resolve(workers, (n+minChunk-1)/minChunk)
	chunks := w * 4
	if max := (n + minChunk - 1) / minChunk; chunks > max {
		chunks = max
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	ForEach(chunks, w, func(ci int) {
		lo := ci * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Map applies fn to every index in [0, n) and returns the results in
// index order, computed with at most workers goroutines (0 ⇒ default).
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// ForEachErr runs fn over every index and returns the lowest-index error,
// so the reported failure is independent of scheduling. All units run even
// after a failure; fn implementations should be cheap to no-op if they
// need early exit.
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
