package parallel

import (
	"sync"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// poolInstruments tracks pool usage process-wide (DESIGN.md §9). Counters
// tick per batch/unit, so the per-task hot loop stays untouched; the busy
// gauge brackets each batch with the worker count it resolved to.
type poolInstruments struct {
	batches *metrics.Counter
	tasks   *metrics.Counter
	busy    *metrics.Gauge
}

var (
	insOnce sync.Once
	pool    *poolInstruments
)

// instruments lazily binds to metrics.Default(). The pool is a package-level
// facility with no constructor to thread a registry through, so unlike the
// other components it always reports to the process-default registry.
func instruments() *poolInstruments {
	insOnce.Do(func() {
		r := metrics.Default()
		pool = &poolInstruments{
			batches: r.Counter("ph_parallel_batches_total",
				"Fan-out batches executed by the worker pool."),
			tasks: r.Counter("ph_parallel_tasks_total",
				"Units of work executed by the worker pool."),
			busy: r.Gauge("ph_parallel_workers_busy",
				"Workers currently running a fan-out batch."),
		}
	})
	return pool
}
