package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d with PH_WORKERS=3", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with garbage PH_WORKERS", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with negative PH_WORKERS", got)
	}
}

func TestResolveClamps(t *testing.T) {
	if got := Resolve(8, 3); got != 3 {
		t.Fatalf("Resolve(8, 3) = %d", got)
	}
	if got := Resolve(2, 100); got != 2 {
		t.Fatalf("Resolve(2, 100) = %d", got)
	}
	if got := Resolve(0, 100); got < 1 {
		t.Fatalf("Resolve(0, 100) = %d", got)
	}
	if got := Resolve(5, 0); got != 1 {
		t.Fatalf("Resolve(5, 0) = %d", got)
	}
}

// Every index must be visited exactly once at any worker count; the
// -race run additionally checks the pool itself for data races on the
// shared accumulators.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 1000
		var visits [n]atomic.Int32
		var sum atomic.Int64
		ForEach(n, workers, func(i int) {
			visits[i].Add(1)
			sum.Add(int64(i))
		})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
		if want := int64(n * (n - 1) / 2); sum.Load() != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum.Load(), want)
		}
	}
}

// Shared-accumulator stress: many goroutines appending into per-worker
// buckets plus a mutex-guarded slice. Exercised by `go test -race`.
func TestForEachWorkerSharedAccumulators(t *testing.T) {
	const n = 500
	workers := 8
	perWorker := make([][]int, Resolve(workers, n))
	var mu sync.Mutex
	var all []int
	ForEachWorker(n, workers, func(w, i int) {
		perWorker[w] = append(perWorker[w], i)
		mu.Lock()
		all = append(all, i)
		mu.Unlock()
	})
	total := 0
	for _, bucket := range perWorker {
		total += len(bucket)
	}
	if total != n || len(all) != n {
		t.Fatalf("per-worker total %d, shared total %d, want %d", total, len(all), n)
	}
}

func TestForEachChunkCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ n, workers, minChunk int }{
		{1, 1, 1}, {7, 2, 4}, {100, 8, 1}, {1000, 3, 64}, {65, 4, 64},
	} {
		var visits = make([]atomic.Int32, tc.n)
		ForEachChunk(tc.n, tc.workers, tc.minChunk, func(lo, hi int) {
			if lo >= hi || lo < 0 || hi > tc.n {
				t.Fatalf("bad chunk [%d, %d) for n=%d", lo, hi, tc.n)
			}
			if hi-lo < tc.minChunk && lo != 0 && hi != tc.n {
				t.Fatalf("interior chunk [%d, %d) smaller than minChunk %d", lo, hi, tc.minChunk)
			}
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d minChunk=%d: index %d visited %d times",
					tc.n, tc.workers, tc.minChunk, i, got)
			}
		}
	}
}

// Map results must land in index order regardless of worker count.
func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out := Map(100, workers, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// ForEachErr must report the lowest-index error, independent of
// scheduling.
func TestForEachErrDeterministicError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 2, 8} {
		err := ForEachErr(100, workers, func(i int) error {
			switch i {
			case 90:
				return errB
			case 13:
				return errA
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
		}
	}
	if err := ForEachErr(50, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(100, workers, func(i int) {
				if i == 42 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	ForEachChunk(0, 4, 8, func(int, int) { called = true })
	if called {
		t.Fatal("fn invoked for empty range")
	}
}

func TestPoolMetrics(t *testing.T) {
	ins := instruments()
	batches0 := ins.batches.Value()
	tasks0 := ins.tasks.Value()
	ForEach(25, 4, func(int) {})
	ForEachChunk(100, 2, 10, func(int, int) {})
	if got := ins.batches.Value() - batches0; got != 2 {
		t.Fatalf("batches delta = %v, want 2 (ForEachChunk dispatches through one ForEach)", got)
	}
	// 25 direct units plus the chunk count from ForEachChunk's inner ForEach.
	if got := ins.tasks.Value() - tasks0; got < 26 {
		t.Fatalf("tasks delta = %v, want >= 26", got)
	}
	if got := ins.busy.Value(); got != 0 {
		t.Fatalf("busy gauge = %v after batches drained, want 0", got)
	}
}
