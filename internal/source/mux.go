package source

import (
	"errors"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// nsShift positions the child index in the high bits of namespaced ids.
// Simulated tweet and account ids stay far below 2^40, so offsetting
// child i's ids by i<<40 keeps every source's id space disjoint while
// preserving relative order within a child.
const nsShift = 40

// MuxSource merges several sources into one deterministic stream. Each
// hour it fires its own hour hooks, runs every child for one hour while
// buffering their posts, and delivers the merged hour ordered by
// (CreatedAt, child index, tweet id) — a total order independent of
// goroutine scheduling, so muxed runs pin fingerprints the same way
// single-source runs do.
//
// Ids from child 0 pass through untouched (the common twitter+extras
// layout keeps the primary source's stream bit-identical and the mux
// overhead near zero); every other child's tweet, author, and mention
// ids are offset into a per-child namespace so accounts from different
// worlds can never collide.
type MuxSource struct {
	children []Source
	hooks    []func(hour int, now time.Time)
	subs     []func(Post)
	pending  []childPost
	hour     int
	// single marks the one-child fast path: with nothing to merge, hooks,
	// subscriptions, and runs delegate straight to the child, so wrapping
	// a sole source in a mux costs nothing (the ingest bench gates this).
	single bool
}

type childPost struct {
	ci int
	p  Post
}

var _ Source = (*MuxSource)(nil)
var _ Screening = (*MuxSource)(nil)

// NewMux merges the given sources. At least one child is required; child
// order is significant (it breaks delivery ties and assigns namespaces).
func NewMux(children ...Source) *MuxSource {
	m := &MuxSource{children: children}
	if len(children) == 1 {
		m.single = true
		return m
	}
	for i, c := range children {
		ci := i
		c.Subscribe(func(p Post) {
			m.pending = append(m.pending, childPost{ci: ci, p: p})
		})
	}
	return m
}

// ID implements Source.
func (m *MuxSource) ID() string { return "mux" }

// OnHourStart implements Source.
func (m *MuxSource) OnHourStart(fn func(hour int, now time.Time)) {
	if m.single {
		m.children[0].OnHourStart(fn)
		return
	}
	m.hooks = append(m.hooks, fn)
}

// Subscribe implements Source.
func (m *MuxSource) Subscribe(fn func(p Post)) (cancel func()) {
	if m.single {
		return m.children[0].Subscribe(fn)
	}
	m.subs = append(m.subs, fn)
	i := len(m.subs) - 1
	return func() { m.subs[i] = nil }
}

// RunHours implements Source: hooks, then every child's hour, then the
// merged, namespaced delivery.
func (m *MuxSource) RunHours(n int) error {
	if m.single {
		return m.children[0].RunHours(n)
	}
	for i := 0; i < n; i++ {
		now := m.children[0].Now()
		for _, fn := range m.hooks {
			fn(m.hour, now)
		}
		m.pending = m.pending[:0]
		for _, c := range m.children {
			if err := c.RunHours(1); err != nil {
				return err
			}
		}
		sort.SliceStable(m.pending, func(a, b int) bool {
			pa, pb := m.pending[a], m.pending[b]
			if !pa.p.Tweet.CreatedAt.Equal(pb.p.Tweet.CreatedAt) {
				return pa.p.Tweet.CreatedAt.Before(pb.p.Tweet.CreatedAt)
			}
			if pa.ci != pb.ci {
				return pa.ci < pb.ci
			}
			return pa.p.Tweet.ID < pb.p.Tweet.ID
		})
		for _, cp := range m.pending {
			p := m.namespace(cp.ci, cp.p)
			for _, fn := range m.subs {
				if fn != nil {
					fn(p)
				}
			}
		}
		m.hour++
	}
	return nil
}

// namespace rewrites a child's post into the mux id space. Child 0 is the
// identity; other children's posts are deep-copied with offset ids.
func (m *MuxSource) namespace(ci int, p Post) Post {
	if ci == 0 {
		return p
	}
	off := socialnet.AccountID(int64(ci) << nsShift)
	t := p.Tweet.Clone()
	t.ID += socialnet.TweetID(int64(ci) << nsShift)
	t.AuthorID += off
	for j := range t.Mentions {
		t.Mentions[j] += off
	}
	p.Tweet = t
	return p
}

// Lookup implements Source: the high bits route to the owning child, the
// low bits resolve there, and non-primary results come back as fresh
// wrapper copies carrying the namespaced id. Every call re-reads the
// child's current profile state (e.g. suspensions), and every caller
// gets its own copy: looked-up accounts travel into concurrent pipeline
// stages with captures, so a shared wrapper mutated on the delivery
// goroutine would be a data race.
func (m *MuxSource) Lookup(id socialnet.AccountID) *socialnet.Account {
	if m.single {
		return m.children[0].Lookup(id)
	}
	ci := int(uint64(id) >> nsShift)
	if ci < 0 || ci >= len(m.children) {
		return nil
	}
	base := id - socialnet.AccountID(int64(ci)<<nsShift)
	a := m.children[ci].Lookup(base)
	if a == nil || ci == 0 {
		return a
	}
	return m.wrap(id, a)
}

func (m *MuxSource) wrap(nsID socialnet.AccountID, a *socialnet.Account) *socialnet.Account {
	w := *a
	w.ID = nsID
	return &w
}

// Now implements Source.
func (m *MuxSource) Now() time.Time { return m.children[0].Now() }

// Rotation implements Source: live children rotate normally.
func (m *MuxSource) Rotation(int) []int { return nil }

// Close implements Source.
func (m *MuxSource) Close() error {
	var errs []error
	for _, c := range m.children {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// NewScreener implements Screening: the mux screener splits each screen
// budget round-robin across the screenable children and namespaces the
// candidates, so monitor groups draw honeypot nodes from every live
// population.
func (m *MuxSource) NewScreener(seed int64) core.Screener {
	ms := &muxScreener{mux: m}
	for ci, c := range m.children {
		if sc, ok := c.(Screening); ok {
			ms.screeners = append(ms.screeners, childScreener{
				ci: ci,
				// Distinct derived seeds keep the children's sampling
				// streams independent.
				scr: sc.NewScreener(seed + int64(ci)*7919),
			})
		}
	}
	return ms
}

type childScreener struct {
	ci  int
	scr core.Screener
}

type muxScreener struct {
	mux       *MuxSource
	screeners []childScreener
}

// Screen implements core.Screener across the mux's screenable children.
func (ms *muxScreener) Screen(q socialnet.ScreenQuery, now time.Time) []*socialnet.Account {
	k := len(ms.screeners)
	if k == 0 {
		return nil
	}
	var out []*socialnet.Account
	for i, cs := range ms.screeners {
		share := q.Count / k
		if i < q.Count%k {
			share++
		}
		if share == 0 {
			continue
		}
		cq := q
		cq.Count = share
		cq.Exclude = ms.childExclude(cs.ci, q.Exclude)
		off := socialnet.AccountID(int64(cs.ci) << nsShift)
		for _, a := range cs.scr.Screen(cq, now) {
			if cs.ci == 0 {
				out = append(out, a)
				continue
			}
			out = append(out, ms.mux.wrap(a.ID+off, a))
		}
	}
	return out
}

// childExclude projects the monitor's namespaced exclusion set into one
// child's id space, dropping ids owned by other children.
func (ms *muxScreener) childExclude(ci int, ex map[socialnet.AccountID]struct{}) map[socialnet.AccountID]struct{} {
	if len(ex) == 0 {
		return nil
	}
	out := make(map[socialnet.AccountID]struct{})
	off := socialnet.AccountID(int64(ci) << nsShift)
	for id := range ex {
		if int(uint64(id)>>nsShift) != ci {
			continue
		}
		out[id-off] = struct{}{}
	}
	return out
}
