package source

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

// fakeSource is a scripted Source for mux tests: per-hour tweet batches
// over a tiny account table.
type fakeSource struct {
	id       string
	hooks    []func(int, time.Time)
	subs     []func(Post)
	hours    [][]*socialnet.Tweet
	accounts map[socialnet.AccountID]*socialnet.Account
	hour     int
	start    time.Time
	closeErr error
	closed   bool
}

func (f *fakeSource) ID() string { return f.id }
func (f *fakeSource) OnHourStart(fn func(int, time.Time)) {
	f.hooks = append(f.hooks, fn)
}
func (f *fakeSource) Subscribe(fn func(Post)) func() {
	f.subs = append(f.subs, fn)
	i := len(f.subs) - 1
	return func() { f.subs[i] = nil }
}
func (f *fakeSource) RunHours(n int) error {
	for i := 0; i < n; i++ {
		for _, fn := range f.hooks {
			fn(f.hour, f.Now())
		}
		if f.hour < len(f.hours) {
			for _, t := range f.hours[f.hour] {
				for _, fn := range f.subs {
					if fn != nil {
						fn(Post{Tweet: t, Origin: f.id})
					}
				}
			}
		}
		f.hour++
	}
	return nil
}
func (f *fakeSource) Lookup(id socialnet.AccountID) *socialnet.Account { return f.accounts[id] }
func (f *fakeSource) Now() time.Time {
	return f.start.Add(time.Duration(f.hour) * time.Hour)
}
func (f *fakeSource) Rotation(int) []int { return nil }
func (f *fakeSource) Close() error {
	f.closed = true
	return f.closeErr
}

var t0 = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

func tweetAt(id socialnet.TweetID, author socialnet.AccountID, at time.Time, mentions ...socialnet.AccountID) *socialnet.Tweet {
	return &socialnet.Tweet{ID: id, AuthorID: author, CreatedAt: at, Mentions: mentions}
}

func TestMuxMergesByTimeChildAndID(t *testing.T) {
	a := &fakeSource{id: "a", start: t0, hours: [][]*socialnet.Tweet{{
		tweetAt(10, 1, t0.Add(2*time.Minute)),
		tweetAt(11, 2, t0.Add(4*time.Minute)),
	}}}
	b := &fakeSource{id: "b", start: t0, hours: [][]*socialnet.Tweet{{
		tweetAt(5, 3, t0.Add(2*time.Minute), 7),
		tweetAt(6, 4, t0.Add(3*time.Minute)),
	}}}
	m := NewMux(a, b)
	var got []Post
	m.Subscribe(func(p Post) { got = append(got, p) })
	if err := m.RunHours(1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d posts, want 4", len(got))
	}
	off := int64(1) << nsShift
	wantIDs := []socialnet.TweetID{10, socialnet.TweetID(off) + 5, socialnet.TweetID(off) + 6, 11}
	for i, p := range got {
		if p.Tweet.ID != wantIDs[i] {
			t.Errorf("post %d id %d, want %d", i, p.Tweet.ID, wantIDs[i])
		}
	}
	// Child 0 posts pass through untouched (same pointer, zero overhead).
	if got[0].Tweet != a.hours[0][0] {
		t.Error("child 0 tweet was copied; want identity pass-through")
	}
	// Child 1 posts are deep-copied with namespaced author and mentions.
	xb := got[1]
	if xb.Tweet == b.hours[0][0] {
		t.Error("child 1 tweet shared with child; want a namespaced clone")
	}
	if want := socialnet.AccountID(off) + 3; xb.Tweet.AuthorID != want {
		t.Errorf("child 1 author %d, want %d", xb.Tweet.AuthorID, want)
	}
	if want := socialnet.AccountID(off) + 7; xb.Tweet.Mentions[0] != want {
		t.Errorf("child 1 mention %d, want %d", xb.Tweet.Mentions[0], want)
	}
	if b.hours[0][0].AuthorID != 3 {
		t.Error("namespacing mutated the child's own tweet")
	}
	if p := got[1]; p.Origin != "b" {
		t.Errorf("origin %q, want the child id", p.Origin)
	}
}

func TestMuxHoursAndNow(t *testing.T) {
	a := &fakeSource{id: "a", start: t0}
	b := &fakeSource{id: "b", start: t0}
	m := NewMux(a, b)
	var hooks []int
	m.OnHourStart(func(hour int, now time.Time) {
		hooks = append(hooks, hour)
		if want := t0.Add(time.Duration(hour) * time.Hour); !now.Equal(want) {
			t.Errorf("hook hour %d now %v, want %v", hour, now, want)
		}
	})
	if err := m.RunHours(3); err != nil {
		t.Fatal(err)
	}
	if len(hooks) != 3 || hooks[0] != 0 || hooks[2] != 2 {
		t.Fatalf("hour hooks %v, want [0 1 2]", hooks)
	}
	if !m.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("Now %v, want %v", m.Now(), t0.Add(3*time.Hour))
	}
	if m.ID() != "mux" {
		t.Errorf("ID %q", m.ID())
	}
	if m.Rotation(0) != nil {
		t.Error("mux Rotation should be nil (live children rotate)")
	}
}

func TestMuxSubscribeCancel(t *testing.T) {
	a := &fakeSource{id: "a", start: t0, hours: [][]*socialnet.Tweet{
		{tweetAt(1, 1, t0.Add(time.Minute))},
		{tweetAt(2, 1, t0.Add(61 * time.Minute))},
	}}
	m := NewMux(a)
	n := 0
	cancel := m.Subscribe(func(Post) { n++ })
	if err := m.RunHours(1); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := m.RunHours(1); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("subscriber saw %d posts after cancel, want 1", n)
	}
}

func TestMuxLookupRoutesAndSnapshotsWrappers(t *testing.T) {
	acctA := &socialnet.Account{ID: 1, ScreenName: "a1"}
	acctB := &socialnet.Account{ID: 1, ScreenName: "b1"}
	a := &fakeSource{id: "a", start: t0, accounts: map[socialnet.AccountID]*socialnet.Account{1: acctA}}
	b := &fakeSource{id: "b", start: t0, accounts: map[socialnet.AccountID]*socialnet.Account{1: acctB}}
	m := NewMux(a, b)

	if got := m.Lookup(1); got != acctA {
		t.Errorf("child 0 lookup returned %v, want the live account", got)
	}
	nsID := socialnet.AccountID(int64(1)<<nsShift) + 1
	w := m.Lookup(nsID)
	if w == nil || w.ScreenName != "b1" || w.ID != nsID {
		t.Fatalf("child 1 lookup = %+v, want wrapper of b1 with namespaced id", w)
	}
	// Each call re-reads the child's current profile state into a fresh
	// copy: looked-up accounts travel with captures into concurrent
	// pipeline stages, so a shared wrapper mutated on later lookups
	// would race with those readers. The earlier wrapper must keep the
	// state it was read with.
	acctB.Suspended = true
	w2 := m.Lookup(nsID)
	if w2 == w {
		t.Error("wrapper shared across lookups; later refreshes would race with pipeline readers")
	}
	if !w2.Suspended {
		t.Error("lookup did not observe the child's current profile state")
	}
	if w.Suspended {
		t.Error("earlier wrapper mutated after it escaped")
	}
	if m.Lookup(socialnet.AccountID(int64(5)<<nsShift)) != nil {
		t.Error("out-of-range child lookup should be nil")
	}
	if m.Lookup(socialnet.AccountID(int64(1)<<nsShift)+99) != nil {
		t.Error("unknown account lookup should be nil")
	}
}

func TestMuxCloseJoinsChildErrors(t *testing.T) {
	a := &fakeSource{id: "a", closeErr: errors.New("a failed")}
	b := &fakeSource{id: "b"}
	c := &fakeSource{id: "c", closeErr: errors.New("c failed")}
	m := NewMux(a, b, c)
	err := m.Close()
	if err == nil || !strings.Contains(err.Error(), "a failed") || !strings.Contains(err.Error(), "c failed") {
		t.Fatalf("Close error %v, want both child errors", err)
	}
	if !a.closed || !b.closed || !c.closed {
		t.Error("Close skipped a child")
	}
}

// fakeScreener returns its fixed candidate list minus exclusions.
type fakeScreener struct {
	candidates []*socialnet.Account
	lastCount  int
}

func (f *fakeScreener) Screen(q socialnet.ScreenQuery, _ time.Time) []*socialnet.Account {
	f.lastCount = q.Count
	var out []*socialnet.Account
	for _, a := range f.candidates {
		if _, ex := q.Exclude[a.ID]; ex {
			continue
		}
		if len(out) == q.Count {
			break
		}
		out = append(out, a)
	}
	return out
}

// screeningFake wraps fakeSource with a Screening capability.
type screeningFake struct {
	fakeSource
	scr *fakeScreener
}

func (s *screeningFake) NewScreener(int64) core.Screener { return s.scr }

func TestMuxScreenerSplitsBudget(t *testing.T) {
	accts := func(ids ...socialnet.AccountID) []*socialnet.Account {
		out := make([]*socialnet.Account, len(ids))
		for i, id := range ids {
			out[i] = &socialnet.Account{ID: id}
		}
		return out
	}
	a := &screeningFake{fakeSource: fakeSource{id: "a", start: t0}, scr: &fakeScreener{candidates: accts(1, 2, 3)}}
	b := &screeningFake{fakeSource: fakeSource{id: "b", start: t0}, scr: &fakeScreener{candidates: accts(1, 2, 3)}}
	m := NewMux(a, b)
	scr := m.NewScreener(7)

	off := socialnet.AccountID(int64(1) << nsShift)
	got := scr.Screen(socialnet.ScreenQuery{
		Count: 5,
		// Exclude child 0's account 1 and child 1's (namespaced) account 2.
		Exclude: map[socialnet.AccountID]struct{}{
			1:       {},
			off + 2: {},
		},
	}, t0)
	// 5 splits 3 (child 0) + 2 (child 1); exclusions apply per child.
	if a.scr.lastCount != 3 || b.scr.lastCount != 2 {
		t.Fatalf("budget split %d/%d, want 3/2", a.scr.lastCount, b.scr.lastCount)
	}
	var ids []socialnet.AccountID
	for _, acct := range got {
		ids = append(ids, acct.ID)
	}
	want := []socialnet.AccountID{2, 3, off + 1, off + 3}
	if len(ids) != len(want) {
		t.Fatalf("screened ids %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("screened ids %v, want %v", ids, want)
		}
	}
}

func TestMuxScreenerNoScreenableChildren(t *testing.T) {
	m := NewMux(&fakeSource{id: "a", start: t0})
	if got := m.NewScreener(1).Screen(socialnet.ScreenQuery{Count: 4}, t0); got != nil {
		t.Fatalf("screener over unscreenable children returned %v", got)
	}
}

func TestNullScreener(t *testing.T) {
	if got := (NullScreener{}).Screen(socialnet.ScreenQuery{Count: 3}, t0); got != nil {
		t.Fatalf("NullScreener returned %v", got)
	}
}

func smallWorldConfig(seed int64) socialnet.Config {
	cfg := socialnet.DefaultConfig()
	cfg.Seed = seed
	cfg.NumAccounts = 500
	cfg.OrganicTweetsPerHour = 120
	return cfg
}

func TestTwitterSourceDelegatesToEngine(t *testing.T) {
	w, err := socialnet.NewWorld(smallWorldConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	s := NewTwitter(w, e)
	if s.ID() != "twitter" {
		t.Errorf("ID %q", s.ID())
	}
	hooks := 0
	s.OnHourStart(func(int, time.Time) { hooks++ })
	var posts []Post
	cancel := s.Subscribe(func(p Post) { posts = append(posts, p) })
	before := s.Now()
	if err := s.RunHours(2); err != nil {
		t.Fatal(err)
	}
	if hooks != 2 {
		t.Errorf("hour hooks fired %d times, want 2", hooks)
	}
	if len(posts) == 0 {
		t.Fatal("no posts delivered")
	}
	for _, p := range posts[:5] {
		if p.Origin != "twitter" || p.Replay != nil {
			t.Fatalf("post %+v, want live twitter origin", p)
		}
	}
	if a := s.Lookup(posts[0].Tweet.AuthorID); a == nil {
		t.Error("Lookup missed a post author")
	}
	if !s.Now().After(before) {
		t.Error("Now did not advance")
	}
	if s.Rotation(0) != nil {
		t.Error("live source Rotation should be nil")
	}
	if s.NewScreener(1) == nil {
		t.Error("nil screener")
	}
	if s.World() != w {
		t.Error("World accessor")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	n := len(posts)
	cancel()
	if err := s.RunHours(1); err != nil {
		t.Fatal(err)
	}
	if len(posts) != n {
		t.Error("cancel did not stop delivery")
	}
}

func redditPosts(t *testing.T, cfg RedditConfig, hours, extraSubs int) []Post {
	t.Helper()
	r, err := NewReddit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var posts []Post
	r.Subscribe(func(p Post) { posts = append(posts, p) })
	for i := 0; i < extraSubs; i++ {
		r.Subscribe(func(Post) {})
	}
	if err := r.RunHours(hours); err != nil {
		t.Fatal(err)
	}
	return posts
}

func TestRedditSourceShape(t *testing.T) {
	cfg := RedditConfig{World: smallWorldConfig(5)}
	posts := redditPosts(t, cfg, 3, 0)
	if len(posts) == 0 {
		t.Fatal("no posts")
	}
	crossposts := 0
	for _, p := range posts {
		if p.Origin != "reddit" || p.Replay != nil {
			t.Fatalf("post %+v, want live reddit origin", p)
		}
		if !strings.HasPrefix(p.Tweet.Text, "r/") {
			t.Fatalf("post text %q missing community marker", p.Tweet.Text)
		}
		if p.Tweet.ID >= xpostBase {
			crossposts++
			if !p.Tweet.Spam {
				t.Error("crosspost of a non-spam post")
			}
			if !strings.HasPrefix(p.Tweet.Text, "r/crossposts [x-post] ") {
				t.Errorf("crosspost text %q", p.Tweet.Text)
			}
		}
	}
	if crossposts == 0 {
		t.Error("no crossposts at the default fraction")
	}
	// Crossposts stay below the mux namespace stride so muxed reddit
	// streams still route.
	if xpostBase >= 1<<nsShift {
		t.Error("crosspost id block overlaps the mux namespace stride")
	}
	r, err := NewReddit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "reddit" {
		t.Errorf("ID %q", r.ID())
	}
	if r.Rotation(0) != nil {
		t.Error("live source Rotation should be nil")
	}
	if r.NewScreener(1) == nil {
		t.Error("nil screener")
	}
	if r.World() == nil {
		t.Error("World accessor")
	}
	hooks := 0
	r.OnHourStart(func(int, time.Time) { hooks++ })
	if err := r.RunHours(1); err != nil {
		t.Fatal(err)
	}
	if hooks != 1 {
		t.Errorf("hooks %d", hooks)
	}
	if a := r.Lookup(1); a == nil {
		t.Error("Lookup missed account 1")
	}
}

func TestRedditSourceDeterministicAndSubscriberInvariant(t *testing.T) {
	cfg := RedditConfig{World: smallWorldConfig(5)}
	one := redditPosts(t, cfg, 2, 0)
	two := redditPosts(t, cfg, 2, 3) // extra subscribers must not shift rng draws
	if len(one) != len(two) {
		t.Fatalf("streams differ in length: %d vs %d", len(one), len(two))
	}
	for i := range one {
		a, b := one[i].Tweet, two[i].Tweet
		if a.ID != b.ID || a.Text != b.Text || !a.CreatedAt.Equal(b.CreatedAt) {
			t.Fatalf("post %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestRedditCrosspostFraction(t *testing.T) {
	// Negative disables crossposting entirely.
	cfg := RedditConfig{World: smallWorldConfig(5), CrosspostFraction: -1}
	for _, p := range redditPosts(t, cfg, 3, 0) {
		if p.Tweet.ID >= xpostBase {
			t.Fatal("crosspost delivered with crossposting disabled")
		}
	}
	if _, err := NewReddit(RedditConfig{World: smallWorldConfig(5), CrosspostFraction: 1.5}); err == nil {
		t.Fatal("CrosspostFraction > 1 accepted")
	}
	// Default world: zero World config takes the socialnet default with
	// the seed applied.
	r, err := NewReddit(RedditConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.World() == nil {
		t.Fatal("default world missing")
	}
	_ = r.Close()
}

// writeRecording builds a two-hour WAL with rotation records, three
// captures, and a profile epilogue.
func writeRecording(t *testing.T, dir string) {
	t.Helper()
	st, _, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sender := &socialnet.Account{ID: 11, ScreenName: "sender", Kind: socialnet.KindSpammer}
	recv := &socialnet.Account{ID: 21, ScreenName: "node"}
	if err := st.AppendRotation(&store.RotationRecord{Hour: 0, Now: t0, Counts: []int{2, 1}}); err != nil {
		t.Fatal(err)
	}
	caps := []*store.CaptureRecord{
		{Tweet: socialnet.Tweet{ID: 100, AuthorID: 11, CreatedAt: t0.Add(10 * time.Minute), Mentions: []socialnet.AccountID{21}},
			Sender: sender, Receiver: recv, Groups: []int{0}, Src: "twitter"},
		{Tweet: socialnet.Tweet{ID: 101, AuthorID: 11, CreatedAt: t0.Add(70 * time.Minute), Mentions: []socialnet.AccountID{21}},
			Sender: sender, Receiver: recv, Groups: []int{0, 1}, Src: "twitter"},
		{Tweet: socialnet.Tweet{ID: 102, AuthorID: 11, CreatedAt: t0.Add(80 * time.Minute)},
			Sender: sender, Groups: []int{1}, Src: "twitter"},
	}
	if err := st.AppendCapture(caps[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRotation(&store.RotationRecord{Hour: 1, Now: t0.Add(time.Hour), Counts: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	for _, c := range caps[1:] {
		if err := st.AppendCapture(c); err != nil {
			t.Fatal(err)
		}
	}
	// Epilogue: the sender ended the run suspended.
	final := *sender
	final.Suspended = true
	if err := st.AppendProfiles([]*socialnet.Account{&final, recv}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func openReplay(t *testing.T, dir string) *ReplaySource {
	t.Helper()
	b, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplay(b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReplaySourceDelivery(t *testing.T) {
	dir := t.TempDir()
	writeRecording(t, dir)
	r := openReplay(t, dir)
	if r.ID() != "replay" || !r.ReplayBacked() {
		t.Error("identity")
	}
	if r.Hours() != 2 {
		t.Fatalf("Hours %d, want 2", r.Hours())
	}
	var events []string
	r.OnHourStart(func(hour int, now time.Time) {
		events = append(events, "hour")
		if want := t0.Add(time.Duration(hour) * time.Hour); !now.Equal(want) {
			t.Errorf("hook hour %d at %v, want %v", hour, now, want)
		}
	})
	var posts []Post
	r.Subscribe(func(p Post) {
		events = append(events, "post")
		posts = append(posts, p)
	})
	if err := r.RunHours(1); err != nil {
		t.Fatal(err)
	}
	if len(posts) != 1 || posts[0].Tweet.ID != 100 {
		t.Fatalf("hour 0 delivered %d posts, want tweet 100", len(posts))
	}
	p := posts[0]
	if p.Origin != "replay" || p.Replay == nil {
		t.Fatalf("post %+v, want replay context", p)
	}
	if p.Replay.Sender.ID != 11 || p.Replay.Receiver.ID != 21 || len(p.Replay.Groups) != 1 {
		t.Fatalf("replay context %+v", p.Replay)
	}
	if !r.Now().Equal(t0.Add(10 * time.Minute)) {
		t.Errorf("Now %v, want the last capture's time", r.Now())
	}
	// Remaining hours plus overshoot: stops silently at recording end.
	if err := r.RunHours(5); err != nil {
		t.Fatal(err)
	}
	if len(posts) != 3 {
		t.Fatalf("total posts %d, want 3", len(posts))
	}
	if got := len(events); events[0] != "hour" || got != 5 {
		t.Fatalf("events %v, want hooks before posts", events)
	}
	if c := r.Rotation(1); len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Fatalf("Rotation(1) = %v", c)
	}
	if r.Rotation(7) != nil {
		t.Error("unrecorded hour should have nil counts")
	}
	// Lookup prefers the epilogue (final suspension state) over the
	// match-time snapshot.
	if a := r.Lookup(11); a == nil || !a.Suspended {
		t.Fatalf("Lookup(11) = %+v, want the suspended epilogue profile", a)
	}
	if a := r.Lookup(21); a == nil {
		t.Fatal("Lookup(21) missed")
	}
	if r.Lookup(99) != nil {
		t.Error("unknown id should be nil")
	}
	if err := r.Close(); err != nil {
		t.Error(err)
	}
}

func TestReplaySnapshotFallbackWithoutEpilogue(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRotation(&store.RotationRecord{Hour: 0, Now: t0, Counts: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCapture(&store.CaptureRecord{
		Tweet:  socialnet.Tweet{ID: 1, AuthorID: 11, CreatedAt: t0.Add(time.Minute)},
		Sender: &socialnet.Account{ID: 11, ScreenName: "snap"},
		Groups: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	r := openReplay(t, dir)
	if a := r.Lookup(11); a == nil || a.ScreenName != "snap" {
		t.Fatalf("Lookup(11) = %+v, want the match-time snapshot fallback", a)
	}
}

func TestReplayRequiresRotations(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCapture(&store.CaptureRecord{
		Tweet: socialnet.Tweet{ID: 1, AuthorID: 2, CreatedAt: t0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplay(b); err == nil || !strings.Contains(err.Error(), "no rotation records") {
		t.Fatalf("err %v, want rotation-records error", err)
	}
}

func TestReplayRejectsDuplicateHour(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.AppendRotation(&store.RotationRecord{Hour: 0, Now: t0, Counts: []int{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplay(b); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err %v, want duplicate-hour error", err)
	}
}
