package source

import (
	"math/rand"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TwitterSource adapts the in-process socialnet engine — the simulator
// behind the emulated Twitter firehose — to the Source interface. It is a
// zero-cost pass-through: hooks and subscriptions delegate straight to the
// engine, so a sniffer consuming a TwitterSource is bit-identical to one
// subscribed to the engine directly (the pinned golden streaming and
// sharded fingerprints hold across the refactor).
type TwitterSource struct {
	world  *socialnet.World
	engine *socialnet.Engine
}

var (
	_ Source    = (*TwitterSource)(nil)
	_ Screening = (*TwitterSource)(nil)
)

// NewTwitter wraps a simulated world and its traffic engine as a Source.
func NewTwitter(world *socialnet.World, engine *socialnet.Engine) *TwitterSource {
	return &TwitterSource{world: world, engine: engine}
}

// ID implements Source.
func (s *TwitterSource) ID() string { return "twitter" }

// OnHourStart implements Source.
func (s *TwitterSource) OnHourStart(fn func(hour int, now time.Time)) {
	s.engine.OnHourStart(fn)
}

// Subscribe implements Source.
func (s *TwitterSource) Subscribe(fn func(p Post)) (cancel func()) {
	return s.engine.Subscribe(func(t *socialnet.Tweet) {
		fn(Post{Tweet: t, Origin: "twitter"})
	})
}

// RunHours implements Source.
func (s *TwitterSource) RunHours(n int) error {
	s.engine.RunHours(n)
	return nil
}

// Lookup implements Source.
func (s *TwitterSource) Lookup(id socialnet.AccountID) *socialnet.Account {
	return s.world.Account(id)
}

// Now implements Source.
func (s *TwitterSource) Now() time.Time { return s.engine.Now() }

// Rotation implements Source: live sources rotate through the screener.
func (s *TwitterSource) Rotation(int) []int { return nil }

// Close implements Source. The engine belongs to the caller's simulation
// and outlives the source, so there is nothing to release.
func (s *TwitterSource) Close() error { return nil }

// NewScreener implements Screening with the same local-world screener the
// sniffer used before the source refactor.
func (s *TwitterSource) NewScreener(seed int64) core.Screener {
	return &core.LocalScreener{World: s.world, Rng: rand.New(rand.NewSource(seed))}
}

// World exposes the wrapped world (the reddit source reuses it to derive
// cross-source campaigns).
func (s *TwitterSource) World() *socialnet.World { return s.world }
