// Package source abstracts the sniffer's ingestion layer behind a Source
// interface: a deterministic, sim-time-driven stream of typed posts the
// monitor consumes without knowing which platform (or recording) produced
// them. Implementations ship in this package:
//
//   - Twitter: the adapter over the in-process socialnet engine — the
//     original paper topology, bit-identical to the sniffer's pre-source
//     wiring (the pinned golden fingerprints prove it).
//   - Reddit: a synthetic Reddit-like firehose (submissions, comments,
//     crossposts) mapped into the Twitter-shaped flow.
//   - Replay: re-feeds a capture WAL written by internal/store through the
//     full pipeline, turning the durability layer into a reproducible
//     ingest backend.
//   - Mux: merges several sources with deterministic k-way ordering and
//     per-source id namespacing.
//
// The contract every Source honors (the "source wire contract",
// DESIGN.md §17):
//
//   - Hour hooks fire before any of that hour's posts are delivered.
//   - Subscribe callbacks run on the delivery goroutine, synchronously
//     with RunHours — when RunHours(n) returns, every post of those n
//     hours has been delivered.
//   - Post and account ids are deterministic for a fixed configuration:
//     two runs of the same source deliver byte-identical streams.
//   - Lookup resolves an account id to the live profile as of delivery
//     time (monitors snapshot it; label stores re-resolve at Snapshot).
package source

import (
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Post is one delivered item: a Twitter-shaped status update stamped with
// the id of the source that produced it. Replay is non-nil only for posts
// re-fed from a capture WAL, where match-time state (frozen profile
// snapshots, group assignment) was recorded and must be adopted rather
// than recomputed.
type Post struct {
	// Tweet is the status update, in the simulator's native shape.
	Tweet *socialnet.Tweet
	// Origin is the id of the source that produced the post ("twitter",
	// "reddit", "replay"). The pipeline stamps it on captures, metrics,
	// and spans.
	Origin string
	// Replay carries the recorded match context for WAL-replayed posts;
	// nil for live posts, which go through Monitor.Match.
	Replay *ReplayInfo
}

// ReplayInfo is the recorded match-time context of one replayed capture:
// the profile snapshots frozen when the original run matched the tweet,
// and the selector groups the receiving node belonged to.
type ReplayInfo struct {
	// Sender is the author profile as snapshotted at original match time.
	Sender *socialnet.Account
	// Receiver is the honeypot node profile at original match time.
	Receiver *socialnet.Account
	// Groups are the selector-group indices that attributed the capture.
	Groups []int
}

// Source is a deterministic ingest stream. The sniffer consumes Sources
// instead of subscribing to the socialnet engine directly; see the package
// comment for the delivery contract.
type Source interface {
	// ID names the source; it becomes the Origin of every delivered post
	// and the value of the "source" label on pipeline metrics and spans.
	ID() string
	// OnHourStart registers a hook that fires at each simulated hour
	// boundary before that hour's posts.
	OnHourStart(fn func(hour int, now time.Time))
	// Subscribe delivers every post to fn and returns a cancel func.
	// Delivery is synchronous with RunHours.
	Subscribe(fn func(p Post)) (cancel func())
	// RunHours advances the source by n simulated hours of traffic.
	RunHours(n int) error
	// Lookup resolves an account id to its live profile, or nil.
	Lookup(id socialnet.AccountID) *socialnet.Account
	// Now reports the source's current simulated time.
	Now() time.Time
	// Rotation returns the recorded per-group node counts for the hour,
	// or nil when the source is live and the monitor should rotate its
	// own node set. Only replayed recordings return counts: replay cannot
	// re-screen a world that no longer exists, so it re-accrues the node
	// hours the original run recorded instead.
	Rotation(hour int) []int
	// Close releases the source's resources.
	Close() error
}

// ReplayBacked is an optional Source capability marking sources that
// re-feed a recording rather than generate live traffic. Config
// validation uses it: a replay-backed source must be the sole source of
// a run (its recorded captures carry match context no mux can remap) and
// cannot be sharded (the recording pins one capture order).
type ReplayBacked interface {
	// ReplayBacked reports whether the source replays a recording.
	ReplayBacked() bool
}

// Screening is an optional Source capability: sources backed by a live,
// screenable account population provide the monitor's node-selection
// screener. Sources without it (replay) never rotate, so no screener is
// ever invoked.
type Screening interface {
	// NewScreener builds the screener the monitor rotates against, seeded
	// for deterministic sampling.
	NewScreener(seed int64) core.Screener
}

// NullScreener is a Screener that never returns candidates; it backs
// sources that cannot screen (replay) where rotation is never triggered.
type NullScreener struct{}

// Screen implements core.Screener.
func (NullScreener) Screen(socialnet.ScreenQuery, time.Time) []*socialnet.Account { return nil }
