package source

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// xpostBase is the id block crossposts are numbered from: far above any
// engine-assigned tweet id, and below the mux namespace stride (1<<40)
// so namespacing still routes crossposts to the owning child.
const xpostBase = 1 << 36

// RedditConfig parameterizes the Reddit-like source.
type RedditConfig struct {
	// World parameterizes the underlying population. The zero value uses
	// the scaled-down socialnet default with Seed applied — a distinct
	// world from any Twitter source in the same run unless the seeds
	// collide on purpose. Set World.CampaignImageSeeds to another
	// world's campaign base seeds for cross-source campaigns.
	World socialnet.Config
	// Seed seeds the default world (ignored when World is set) and the
	// crosspost sampler.
	Seed int64
	// CrosspostFraction is the probability a spam post is re-delivered
	// as a crosspost into a second community. 0 uses the default 0.15;
	// negative disables crossposting.
	CrosspostFraction float64
}

// RedditSource is a synthetic Reddit-like firehose mapped into the
// Twitter-shaped flow the pipeline consumes: submissions and comments
// carry an "r/<community>" marker, and a fraction of spam posts are
// re-delivered as crossposts — the same content hitting a second
// community moments later, as link-spam rings do on Reddit. It runs its
// own socialnet world, so a muxed twitter+reddit run exercises two
// disjoint account populations.
type RedditSource struct {
	cfg    RedditConfig
	world  *socialnet.World
	engine *socialnet.Engine
	rng    *rand.Rand
	subs   []func(Post)
	xpost  socialnet.TweetID
}

var _ Source = (*RedditSource)(nil)
var _ Screening = (*RedditSource)(nil)

// NewReddit creates the Reddit-like source.
func NewReddit(cfg RedditConfig) (*RedditSource, error) {
	if cfg.World.NumAccounts == 0 {
		cfg.World = socialnet.DefaultConfig()
		if cfg.Seed != 0 {
			cfg.World.Seed = cfg.Seed
		}
	}
	switch {
	case cfg.CrosspostFraction == 0:
		cfg.CrosspostFraction = 0.15
	case cfg.CrosspostFraction < 0:
		cfg.CrosspostFraction = 0
	case cfg.CrosspostFraction > 1:
		return nil, fmt.Errorf("source: CrosspostFraction %v out of [0, 1]", cfg.CrosspostFraction)
	}
	w, err := socialnet.NewWorld(cfg.World)
	if err != nil {
		return nil, err
	}
	r := &RedditSource{
		cfg:    cfg,
		world:  w,
		engine: socialnet.NewEngine(w),
		rng:    rand.New(rand.NewSource(cfg.World.Seed + 11)),
	}
	// One internal subscription transforms and fans out, so the
	// crosspost sampler draws once per spam post regardless of how many
	// downstream subscribers exist.
	r.engine.Subscribe(r.deliver)
	return r, nil
}

// World exposes the source's own social world (campaign-seed wiring and
// evaluation oracles).
func (r *RedditSource) World() *socialnet.World { return r.world }

// ID implements Source.
func (r *RedditSource) ID() string { return "reddit" }

// OnHourStart implements Source.
func (r *RedditSource) OnHourStart(fn func(hour int, now time.Time)) {
	r.engine.OnHourStart(fn)
}

// Subscribe implements Source.
func (r *RedditSource) Subscribe(fn func(p Post)) (cancel func()) {
	r.subs = append(r.subs, fn)
	i := len(r.subs) - 1
	return func() { r.subs[i] = nil }
}

// RunHours implements Source.
func (r *RedditSource) RunHours(n int) error {
	r.engine.RunHours(n)
	return nil
}

// Lookup implements Source.
func (r *RedditSource) Lookup(id socialnet.AccountID) *socialnet.Account {
	return r.world.Account(id)
}

// Now implements Source.
func (r *RedditSource) Now() time.Time { return r.engine.Now() }

// Rotation implements Source: reddit is live, the monitor rotates.
func (r *RedditSource) Rotation(int) []int { return nil }

// Close implements Source.
func (r *RedditSource) Close() error { return nil }

// NewScreener implements Screening over the source's own population.
func (r *RedditSource) NewScreener(seed int64) core.Screener {
	return &core.LocalScreener{World: r.world, Rng: rand.New(rand.NewSource(seed))}
}

// deliver maps one engine tweet into the Reddit shape, fans it out, and
// possibly re-delivers spam as a crosspost.
func (r *RedditSource) deliver(t *socialnet.Tweet) {
	mapped := r.mapPost(t)
	r.fanout(Post{Tweet: mapped, Origin: "reddit"})
	if t.Spam && r.cfg.CrosspostFraction > 0 && r.rng.Float64() < r.cfg.CrosspostFraction {
		r.fanout(Post{Tweet: r.crosspost(mapped), Origin: "reddit"})
	}
}

func (r *RedditSource) fanout(p Post) {
	for _, fn := range r.subs {
		if fn != nil {
			fn(p)
		}
	}
}

// mapPost rewrites an engine tweet as a Reddit-shaped item: submissions
// and comments carry the community marker of their topic. The engine's
// tweet is shared with its internal rings, so the mapping clones.
func (r *RedditSource) mapPost(t *socialnet.Tweet) *socialnet.Tweet {
	out := t.Clone()
	out.Text = "r/" + r.community(t) + " " + out.Text
	return out
}

// community names the subreddit-like bucket a post lands in.
func (r *RedditSource) community(t *socialnet.Tweet) string {
	if t.Topic != "" {
		return t.Topic
	}
	if len(t.Hashtags) > 0 {
		return t.Hashtags[0]
	}
	if len(t.Mentions) > 0 {
		return "AskAnything" // comment threads without a topic
	}
	return "general"
}

// crosspost re-delivers a spam post into a second community: same
// author, same mentions, a fresh id from the crosspost block, and a
// short deterministic delay.
func (r *RedditSource) crosspost(t *socialnet.Tweet) *socialnet.Tweet {
	out := t.Clone()
	r.xpost++
	out.ID = xpostBase + r.xpost
	out.CreatedAt = t.CreatedAt.Add(time.Duration(1+r.rng.Intn(40)) * time.Second)
	out.Text = "r/crossposts [x-post] " + t.Text
	return out
}
