package source

import (
	"errors"
	"fmt"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

// ReplaySource re-feeds a recorded capture WAL through the full pipeline:
// every capture is delivered as a Post carrying its recorded match
// context (frozen snapshots, selector groups), each recorded rotation
// fires the hour hook with its per-group node counts, and Lookup resolves
// accounts from the end-of-run profile epilogue. A replayed run's
// detection result reproduces the recording's bit for bit — the
// durability layer doubling as a reproducible ingest backend.
//
// The recording must have been made with Durability.RecordRotations set
// (rotation records are the replay's hour clock and node-hours source)
// and a checkpoint cadence long enough that no WAL segment was pruned.
type ReplaySource struct {
	rotations []*store.RotationRecord
	// byHour[i] holds the captures of the i-th recorded hour, in WAL
	// (= original extraction) order.
	byHour [][]*store.CaptureRecord
	// counts maps a recorded hour number to its rotation counts.
	counts map[int][]int
	// profiles resolves account ids: the end-of-run epilogue first, then
	// the newest match-time snapshot seen for the id.
	profiles map[socialnet.AccountID]*socialnet.Account

	hooks []func(hour int, now time.Time)
	subs  []func(Post)
	next  int // next recorded hour to replay
	now   time.Time
}

var (
	_ Source       = (*ReplaySource)(nil)
	_ ReplayBacked = (*ReplaySource)(nil)
)

// NewReplay reads a capture WAL from the backend and prepares it for
// replay. It fails when the recording carries no rotation records —
// without them there is no hour clock and no node-hours denominator.
func NewReplay(b store.Backend) (*ReplaySource, error) {
	log, err := store.ReadLog(b)
	if err != nil {
		return nil, err
	}
	return newReplayFromLog(log)
}

func newReplayFromLog(log *store.Log) (*ReplaySource, error) {
	if len(log.Rotations) == 0 {
		return nil, errors.New("source: recording has no rotation records; record with Durability.RecordRotations")
	}
	r := &ReplaySource{
		rotations: log.Rotations,
		byHour:    make([][]*store.CaptureRecord, len(log.Rotations)),
		counts:    make(map[int][]int, len(log.Rotations)),
		profiles:  make(map[socialnet.AccountID]*socialnet.Account, len(log.Profiles)),
		now:       log.Rotations[0].Now,
	}
	for _, rot := range r.rotations {
		if _, dup := r.counts[rot.Hour]; dup {
			return nil, fmt.Errorf("source: recording rotated hour %d twice", rot.Hour)
		}
		r.counts[rot.Hour] = rot.Counts
	}
	// Assign captures to recorded hours by tweet time: both sequences are
	// chronological, so a single merge walk suffices. The split only
	// shapes which RunHours call delivers a capture; global capture order
	// — the order every downstream structure depends on — is the WAL's.
	hi := 0
	for _, cr := range log.Captures {
		for hi+1 < len(r.rotations) && !cr.Tweet.CreatedAt.Before(r.rotations[hi+1].Now) {
			hi++
		}
		r.byHour[hi] = append(r.byHour[hi], cr)
		// Snapshot fallbacks for accounts missing from the epilogue
		// (e.g. a crashed recording): newest snapshot wins.
		if cr.Sender != nil {
			r.profiles[cr.Sender.ID] = cr.Sender
		}
		if cr.Receiver != nil {
			r.profiles[cr.Receiver.ID] = cr.Receiver
		}
	}
	// The epilogue's end-of-run profiles (final suspension state) shadow
	// the match-time snapshots.
	for id, a := range log.Profiles {
		r.profiles[id] = a
	}
	return r, nil
}

// ID implements Source.
func (r *ReplaySource) ID() string { return "replay" }

// ReplayBacked marks the source as a recording for config validation.
func (r *ReplaySource) ReplayBacked() bool { return true }

// Hours reports how many recorded hours the log holds.
func (r *ReplaySource) Hours() int { return len(r.rotations) }

// OnHourStart implements Source.
func (r *ReplaySource) OnHourStart(fn func(hour int, now time.Time)) {
	r.hooks = append(r.hooks, fn)
}

// Subscribe implements Source.
func (r *ReplaySource) Subscribe(fn func(p Post)) (cancel func()) {
	r.subs = append(r.subs, fn)
	i := len(r.subs) - 1
	return func() { r.subs[i] = nil }
}

// RunHours implements Source: it replays up to n recorded hours — hooks
// first, then that hour's captures in WAL order — and stops silently at
// the end of the recording.
func (r *ReplaySource) RunHours(n int) error {
	for i := 0; i < n && r.next < len(r.rotations); i++ {
		rot := r.rotations[r.next]
		r.now = rot.Now
		for _, fn := range r.hooks {
			fn(rot.Hour, rot.Now)
		}
		for _, cr := range r.byHour[r.next] {
			p := Post{
				Tweet:  &cr.Tweet,
				Origin: "replay",
				Replay: &ReplayInfo{Sender: cr.Sender, Receiver: cr.Receiver, Groups: cr.Groups},
			}
			if !cr.Tweet.CreatedAt.IsZero() {
				r.now = cr.Tweet.CreatedAt
			}
			for _, fn := range r.subs {
				if fn != nil {
					fn(p)
				}
			}
		}
		r.next++
	}
	return nil
}

// Lookup implements Source: epilogue profiles first, newest match-time
// snapshot as fallback.
func (r *ReplaySource) Lookup(id socialnet.AccountID) *socialnet.Account {
	return r.profiles[id]
}

// Now implements Source.
func (r *ReplaySource) Now() time.Time { return r.now }

// Rotation implements Source: the recorded per-group node counts.
func (r *ReplaySource) Rotation(hour int) []int { return r.counts[hour] }

// Close implements Source.
func (r *ReplaySource) Close() error { return nil }
