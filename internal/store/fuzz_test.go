package store

import (
	"bytes"
	"errors"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// fuzzRecords derives a deterministic record sequence from fuzz input
// bytes so the fuzzer explores record shapes through the same corpus
// that drives the cut point.
func fuzzRecords(data []byte) []*CaptureRecord {
	n := 1 + len(data)%3
	recs := make([]*CaptureRecord, 0, n)
	at := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	for i := 0; i < n; i++ {
		rec := &CaptureRecord{
			Tweet: socialnet.Tweet{
				ID:       socialnet.TweetID(at(i)) - 60,
				AuthorID: socialnet.AccountID(at(i + 1)),
				Text:     string(data[:len(data)*(i+1)/(n+1)]),
				Spam:     at(i+2)%2 == 0,
			},
			Groups: []int{int(at(i+3)) % 8},
		}
		if at(i+4)%2 == 0 {
			rec.Sender = &socialnet.Account{
				ID:         socialnet.AccountID(at(i + 5)),
				ScreenName: string(data[len(data)*i/(n+1):]),
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

// FuzzWALRecord pins the recovery contract at the byte level: for ANY
// prefix of a well-formed segment, readSegment either delivers exactly
// the records whose frames fit the prefix (clean end or torn tail — no
// panic, no silent partial record), and raw DecodeCapture never panics
// on arbitrary bytes.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte("spam spam spam"), uint16(9))
	f.Add([]byte{0x01, 0xff, 0x80, 0x00}, uint16(40))
	f.Add(bytes.Repeat([]byte{0xab}, 64), uint16(200))
	f.Add([]byte("free prize http://sp.am #win @you"), uint16(65535))

	f.Fuzz(func(t *testing.T, data []byte, cutRaw uint16) {
		// Property 1: DecodeCapture on raw bytes never panics and never
		// returns a record together with an error.
		if rec, err := DecodeCapture(data); err != nil && rec != nil {
			t.Fatal("DecodeCapture returned both record and error")
		}

		// Property 2: segment prefix replay. Build a segment from the
		// derived records, remembering each record's end offset.
		recs := fuzzRecords(data)
		seg := []byte(walMagic)
		ends := []int{len(seg)}
		for i, rec := range recs {
			rec.Seq = uint64(i + 1)
			seg = appendFrame(seg, RecordCapture, EncodeCapture(nil, rec))
			ends = append(ends, len(seg))
		}
		cut := int(cutRaw) % (len(seg) + 1)

		var got []*CaptureRecord
		err := readSegment(bytes.NewReader(seg[:cut]), func(typ byte, payload []byte) error {
			if typ != RecordCapture {
				t.Fatalf("unexpected record type %d", typ)
			}
			rec, derr := DecodeCapture(payload)
			if derr != nil {
				t.Fatalf("checksummed frame failed decode: %v", derr)
			}
			got = append(got, rec)
			return nil
		})

		// The decoded records must be exactly those whose frames fit.
		want := 0
		for want < len(recs) && ends[want+1] <= cut {
			want++
		}
		if len(got) != want {
			t.Fatalf("cut=%d decoded %d records, want %d", cut, len(got), want)
		}
		for i := range got {
			if got[i].Seq != uint64(i+1) || got[i].Tweet.Text != recs[i].Tweet.Text {
				t.Fatalf("record %d corrupted by truncation at %d", i, cut)
			}
		}

		// And the error must classify the cut correctly: a cut on a
		// frame boundary past the magic is clean; anything shorter —
		// inside a frame or inside the magic itself (a segment created
		// but never fully flushed) — is a torn tail, never a hard error.
		onBoundary := false
		for _, e := range ends {
			if cut == e {
				onBoundary = true
			}
		}
		switch {
		case cut < len(walMagic):
			if !errors.Is(err, ErrTornTail) {
				t.Fatalf("cut=%d inside magic: err=%v, want ErrTornTail", cut, err)
			}
		case onBoundary:
			if err != nil {
				t.Fatalf("cut=%d on frame boundary: err=%v, want clean end", cut, err)
			}
		default:
			if !errors.Is(err, ErrTornTail) {
				t.Fatalf("cut=%d mid-frame: err=%v, want ErrTornTail", cut, err)
			}
		}
	})
}
