package store

import "encoding/binary"

// Sim-hours journal records let twitterd fast-forward its deterministic
// engine across restarts: each record is the number of simulated hours
// advanced, and recovery sums them. The payload shares the store's
// record sequence space (uvarint seq, then uvarint hours) so segment
// naming and checkpoint coverage work identically for both record types.

func encodeSimHours(buf []byte, seq uint64, hours int) []byte {
	buf = binary.AppendUvarint(buf, seq)
	return binary.AppendUvarint(buf, uint64(hours))
}

func decodeSimHours(payload []byte) (seq uint64, hours int, err error) {
	d := &decoder{b: payload}
	seq = d.uvarint()
	h := d.uvarint()
	if d.err != nil {
		return 0, 0, d.err
	}
	if len(d.b) != 0 {
		return 0, 0, errShortRecord
	}
	return seq, int(h), nil
}
