package store_test

import (
	"fmt"
	"io"
	"reflect"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store/fstest"
)

// Compaction fault injection: WriteCheckpoint's prune pass retires old
// checkpoint files and WAL segments covered by the older retained
// checkpoint. A crash in the middle of that pass leaves an arbitrary
// subset of the garbage behind; recovery must be bit-identical to the
// crash-free run's regardless, and the next checkpoint must finish the
// interrupted compaction.

// runCompactionWorkload drives a fresh store through three checkpoint
// cycles — the third's prune pass retires both a checkpoint file and a
// covered WAL segment — plus a synced post-checkpoint tail, then crashes.
// beforeFinalCheckpoint lets the caller script the backend so the fault
// lands inside that final prune pass.
func runCompactionWorkload(t *testing.T, b *fstest.Backend, beforeFinalCheckpoint func()) {
	t.Helper()
	s, _ := openTest(t, b, 1)
	for cycle := 0; cycle < 3; cycle++ {
		appendN(t, s, cycle*3, 3)
		if cycle == 2 && beforeFinalCheckpoint != nil {
			beforeFinalCheckpoint()
		}
		if err := s.WriteCheckpoint(compactionCheckpoint(cycle)); err != nil {
			t.Fatalf("checkpoint %d: %v", cycle, err)
		}
	}
	appendN(t, s, 9, 2)
	// The process dies here: the store object is abandoned un-Closed, and
	// the crash drops anything unsynced (nothing, at SyncEvery=1) and
	// releases the lock the way a dead process's stale lock is broken.
	b.Crash(0)
}

// compactionCheckpoint builds a distinguishable checkpoint payload so the
// recovery comparison covers component content, not just sequence.
func compactionCheckpoint(cycle int) *store.Checkpoint {
	return &store.Checkpoint{
		TweetWatermark: int64(1000 + cycle),
		Components: map[string][]byte{
			"ring": []byte(fmt.Sprintf("ring-state-%d", cycle)),
		},
	}
}

// healAndClose runs one more append+checkpoint cycle on a recovered store
// — the pass that must finish any interrupted compaction — and closes it.
func healAndClose(t *testing.T, s *store.Store) {
	t.Helper()
	appendN(t, s, 11, 2)
	if err := s.WriteCheckpoint(compactionCheckpoint(3)); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// snapshotFiles reads every file the backend holds, byte for byte.
func snapshotFiles(t *testing.T, b *fstest.Backend) map[string][]byte {
	t.Helper()
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(names))
	for _, n := range names {
		f, err := b.Open(n)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(f)
		_ = f.Close()
		if err != nil {
			t.Fatal(err)
		}
		files[n] = data
	}
	return files
}

// testCompactionCrash is the shared scenario: a reference run crashes
// after a clean compaction, the faulty run crashes with removals of the
// final prune pass scripted to fail. Both must recover identical state,
// and after one more checkpoint the faulty disk must converge to the
// reference disk, file for file, byte for byte.
func testCompactionCrash(t *testing.T, failedRemoves []int) {
	ref := fstest.New()
	runCompactionWorkload(t, ref, nil)
	refStore, refRec := openTest(t, ref, 1)

	faulty := fstest.New()
	runCompactionWorkload(t, faulty, func() {
		for _, n := range failedRemoves {
			faulty.FailAfter(fstest.OpRemove, n)
		}
	})
	faultyStore, faultyRec := openTest(t, faulty, 1)

	if faultyRec.Checkpoint == nil || refRec.Checkpoint == nil {
		t.Fatalf("missing checkpoint: faulty %v, ref %v", faultyRec.Checkpoint, refRec.Checkpoint)
	}
	if !reflect.DeepEqual(faultyRec, refRec) {
		t.Fatalf("recovery diverged:\n faulty %+v\n    ref %+v", faultyRec, refRec)
	}

	healAndClose(t, refStore)
	healAndClose(t, faultyStore)
	refFiles, faultyFiles := snapshotFiles(t, ref), snapshotFiles(t, faulty)
	if !reflect.DeepEqual(faultyFiles, refFiles) {
		t.Fatalf("disks did not converge after recompaction:\n faulty %v\n    ref %v",
			fileNames(faultyFiles), fileNames(refFiles))
	}
}

func fileNames(files map[string][]byte) []string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, fmt.Sprintf("%s(%d)", n, len(files[n])))
	}
	return names
}

// TestCompactionCrashBeforeRemoves kills the process after the checkpoint
// publishes but before compaction removes anything: every retired file
// lingers and must be ignored by recovery, then collected next cycle.
func TestCompactionCrashBeforeRemoves(t *testing.T) {
	testCompactionCrash(t, []int{1, 2})
}

// TestCompactionCrashMidRemoves kills the process halfway through the
// prune pass: the old checkpoint file is gone but the WAL segment it
// covered survives — the torn intermediate state a real mid-compaction
// crash leaves.
func TestCompactionCrashMidRemoves(t *testing.T) {
	testCompactionCrash(t, []int{2})
}

// TestCompactionPrunesExactly pins which files the third checkpoint's
// compaction retires: the oldest checkpoint and every WAL segment fully
// covered by the older retained checkpoint — and nothing else, so a
// corrupt newest checkpoint can still fall back and replay.
func TestCompactionPrunesExactly(t *testing.T) {
	b := fstest.New()
	runCompactionWorkload(t, b, nil)
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	// Cycles end at seqs 3, 6, 9; segments are named for their first
	// record. Retained: checkpoints 6 and 9, the segment holding records
	// 7-9, and the post-checkpoint tail segment.
	want := []string{
		"ckpt-0000000000000006.ckpt",
		"ckpt-0000000000000009.ckpt",
		"wal-0000000000000007.log",
		"wal-0000000000000010.log",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after compaction disk holds %v, want %v", names, want)
	}
	if got := b.Ops(fstest.OpRemove); got != 3 {
		t.Fatalf("compaction ran %d removes across 3 checkpoints, want 3", got)
	}
}
