// Package fstest is the fault-injection double of store.Backend: an
// in-memory filesystem that tracks the synced and unsynced portion of
// every file, simulates a crash by discarding everything not yet fsynced
// (optionally leaving torn bytes of a half-flushed record behind), fails
// scripted operations on demand, and serves reads in deliberately short
// chunks. Store tests use it to exercise recovery paths deterministically
// — no real disk, no sleeps, no flaky kill -9.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

// Op identifies a backend operation for fault scripting.
type Op string

// Scriptable operations.
const (
	OpCreate Op = "create"
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpClose  Op = "close"
	OpOpen   Op = "open"
	OpRead   Op = "read"
	OpRename Op = "rename"
	OpRemove Op = "remove"
	OpList   Op = "list"
)

// ErrInjected is the root of every scripted failure.
var ErrInjected = errors.New("fstest: injected fault")

type file struct {
	// synced is the durable prefix; unsynced is everything written since
	// the last sync. A crash keeps synced and discards unsynced.
	synced   []byte
	unsynced []byte
}

// Backend is the in-memory fault-injectable store.Backend.
type Backend struct {
	mu     sync.Mutex
	files  map[string]*file
	faults map[Op][]int // remaining op counts until each scheduled fault
	ops    map[Op]int   // operations performed, by type
	locked bool
	// ReadChunk caps bytes returned per Read call (0 = unlimited),
	// simulating short reads.
	ReadChunk int
}

// New returns an empty backend.
func New() *Backend {
	return &Backend{
		files:  make(map[string]*file),
		faults: make(map[Op][]int),
		ops:    make(map[Op]int),
	}
}

// FailAfter schedules the n-th next operation of type op (1-based) to
// fail with ErrInjected. Multiple schedules on one op queue up.
func (b *Backend) FailAfter(op Op, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults[op] = append(b.faults[op], b.ops[op]+n)
}

// Ops returns how many operations of type op have run.
func (b *Backend) Ops(op Op) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops[op]
}

// step counts one operation and reports whether it must fail.
func (b *Backend) step(op Op) error {
	b.ops[op]++
	pend := b.faults[op]
	for i, at := range pend {
		if b.ops[op] == at {
			b.faults[op] = append(pend[:i], pend[i+1:]...)
			return fmt.Errorf("%w: %s #%d", ErrInjected, op, at)
		}
	}
	return nil
}

// Crash simulates the machine dying: every file's unsynced bytes are
// discarded, keeping tornBytes of them (capped to what exists) as a
// half-flushed tail, and the lock is abandoned as a dead process's would
// be. The backend stays usable — reopening it is the restart.
func (b *Backend) Crash(tornBytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, f := range b.files {
		keep := tornBytes
		if keep > len(f.unsynced) {
			keep = len(f.unsynced)
		}
		f.synced = append(f.synced, f.unsynced[:keep]...)
		f.unsynced = nil
	}
	b.locked = false
}

// CorruptSynced flips one byte of a file's durable content, for
// checksum-detection tests. It reports whether the file was found and
// long enough.
func (b *Backend) CorruptSynced(name string, offset int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok || offset >= len(f.synced) {
		return false
	}
	f.synced[offset] ^= 0xff
	return true
}

// Size returns a file's total length (synced + unsynced), -1 when absent.
func (b *Backend) Size(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return -1
	}
	return len(f.synced) + len(f.unsynced)
}

type writeFile struct {
	b    *Backend
	f    *file
	done bool
}

func (w *writeFile) Write(p []byte) (int, error) {
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	if err := w.b.step(OpWrite); err != nil {
		// A failed write may still tear a prefix into the file — that is
		// exactly what a short write on a full disk does.
		if len(p) > 1 {
			w.f.unsynced = append(w.f.unsynced, p[:len(p)/2]...)
		}
		return 0, err
	}
	w.f.unsynced = append(w.f.unsynced, p...)
	return len(p), nil
}

func (w *writeFile) Sync() error {
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	if err := w.b.step(OpSync); err != nil {
		return err
	}
	w.f.synced = append(w.f.synced, w.f.unsynced...)
	w.f.unsynced = nil
	return nil
}

func (w *writeFile) Close() error {
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	if w.done {
		return errors.New("fstest: double close")
	}
	w.done = true
	return w.b.step(OpClose)
}

// Create implements store.Backend.
func (b *Backend) Create(name string) (store.WriteFile, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.step(OpCreate); err != nil {
		return nil, err
	}
	f := &file{}
	b.files[name] = f
	return &writeFile{b: b, f: f}, nil
}

type readFile struct {
	b *Backend
	r *bytes.Reader
}

func (r *readFile) Read(p []byte) (int, error) {
	r.b.mu.Lock()
	chunk := r.b.ReadChunk
	err := r.b.step(OpRead)
	r.b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if chunk > 0 && len(p) > chunk {
		p = p[:chunk]
	}
	return r.r.Read(p)
}

func (r *readFile) Close() error { return nil }

// Open implements store.Backend. Reads see written-but-unsynced bytes,
// like the OS page cache does; only a Crash makes them vanish.
func (b *Backend) Open(name string) (io.ReadCloser, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.step(OpOpen); err != nil {
		return nil, err
	}
	f, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("fstest: open %s: file does not exist", name)
	}
	data := make([]byte, 0, len(f.synced)+len(f.unsynced))
	data = append(data, f.synced...)
	data = append(data, f.unsynced...)
	return &readFile{b: b, r: bytes.NewReader(data)}, nil
}

// Rename implements store.Backend (atomic, like POSIX rename).
func (b *Backend) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.step(OpRename); err != nil {
		return err
	}
	f, ok := b.files[oldName]
	if !ok {
		return fmt.Errorf("fstest: rename %s: file does not exist", oldName)
	}
	delete(b.files, oldName)
	b.files[newName] = f
	return nil
}

// Remove implements store.Backend.
func (b *Backend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.step(OpRemove); err != nil {
		return err
	}
	delete(b.files, name)
	return nil
}

// List implements store.Backend.
func (b *Backend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.step(OpList); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(b.files))
	for n := range b.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Lock implements store.Backend with an in-process flag; Crash abandons
// it the way a dead process abandons a stale pid file.
func (b *Backend) Lock() (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.locked {
		return nil, store.ErrLocked
	}
	b.locked = true
	return func() error {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.locked = false
		return nil
	}, nil
}
