package store

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseSeqName(t *testing.T) {
	cases := []struct {
		name string
		want uint64
		ok   bool
	}{
		{segmentName(1), 1, true},
		{segmentName(123456789), 123456789, true},
		{checkpointName(7), 0, false}, // wrong prefix/suffix pair
		{"wal-1.log", 0, false},       // not fixed-width
		{"wal-00000000000000x1.log", 0, false},
		{"LOCK", 0, false},
		{"wal-0000000000000001.log.tmp", 0, false},
	}
	for _, c := range cases {
		got, ok := parseSeqName(c.name, segmentPrefix, segmentSuffix)
		if ok != c.ok || got != c.want {
			t.Errorf("parseSeqName(%q) = (%d,%v), want (%d,%v)",
				c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestReadSegmentRejectsForeignHeader(t *testing.T) {
	if err := readSegment(strings.NewReader("NOTAWAL!extra"), nil); err == nil {
		t.Fatal("foreign magic accepted")
	}
	// A created-but-never-flushed segment (crash before the first sync)
	// is an empty or header-truncated file: a torn artifact, not a hard
	// recovery failure.
	if err := readSegment(strings.NewReader(""), nil); err != ErrTornTail {
		t.Fatalf("empty segment: %v, want ErrTornTail", err)
	}
	if err := readSegment(strings.NewReader(walMagic[:3]), nil); err != ErrTornTail {
		t.Fatalf("truncated magic: %v, want ErrTornTail", err)
	}
	// An absurd length prefix is frame corruption, handled as a tear.
	seg := []byte(walMagic)
	seg = append(seg, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1)
	if err := readSegment(bytes.NewReader(seg), nil); err != ErrTornTail {
		t.Fatalf("absurd length: %v, want ErrTornTail", err)
	}
}

func TestDecodeSimHoursRejectsCorruption(t *testing.T) {
	enc := encodeSimHours(nil, 5, 3)
	if seq, hours, err := decodeSimHours(enc); err != nil || seq != 5 || hours != 3 {
		t.Fatalf("round trip = (%d,%d,%v)", seq, hours, err)
	}
	if _, _, err := decodeSimHours(enc[:1]); err == nil {
		t.Error("truncated sim-hours record accepted")
	}
	if _, _, err := decodeSimHours(append(enc, 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
