package store

import (
	"errors"
	"fmt"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// RotationRecord is the WAL form of one hourly node-set rotation: the
// per-group node counts the monitor selected for the coming period. A
// replayed run cannot re-screen the recording's world, so it re-accrues
// these counts instead — reproducing the PGE node-hours denominator bit
// for bit.
type RotationRecord struct {
	// Seq is the record's position in the WAL (assigned by Append).
	Seq uint64
	// Hour is the simulated hour the rotation opened.
	Hour int
	// Now is the simulated time of the rotation.
	Now time.Time
	// Counts is the number of nodes selected per monitor group, indexed
	// like Monitor.Groups.
	Counts []int
}

// encodeRotation appends a rotation payload to buf.
func encodeRotation(buf []byte, rec *RotationRecord) []byte {
	buf = appendUvarint(buf, rec.Seq)
	buf = appendVarint(buf, int64(rec.Hour))
	buf = appendTime(buf, rec.Now)
	buf = appendUvarint(buf, uint64(len(rec.Counts)))
	for _, n := range rec.Counts {
		buf = appendUvarint(buf, uint64(n))
	}
	return buf
}

// DecodeRotation decodes one rotation payload (RecordRotation type).
func DecodeRotation(payload []byte) (*RotationRecord, error) {
	d := &decoder{b: payload}
	rec := &RotationRecord{}
	rec.Seq = d.uvarint()
	rec.Hour = int(d.varint())
	rec.Now = d.time()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)) {
		d.err = errShortRecord
	}
	if d.err == nil && n > 0 {
		rec.Counts = make([]int, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			rec.Counts = append(rec.Counts, int(d.uvarint()))
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after rotation record", len(d.b))
	}
	return rec, nil
}

// encodeProfiles appends a profile-epilogue payload to buf: the final
// live profiles of the accounts the run captured from.
func encodeProfiles(buf []byte, seq uint64, accounts []*socialnet.Account) []byte {
	buf = appendUvarint(buf, seq)
	buf = appendUvarint(buf, uint64(len(accounts)))
	for _, a := range accounts {
		buf = appendAccount(buf, a)
	}
	return buf
}

// DecodeProfiles decodes one profile-epilogue payload (RecordProfiles).
func DecodeProfiles(payload []byte) (seq uint64, accounts []*socialnet.Account, err error) {
	d := &decoder{b: payload}
	seq = d.uvarint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)) {
		d.err = errShortRecord
	}
	if d.err == nil && n > 0 {
		accounts = make([]*socialnet.Account, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			accounts = append(accounts, d.account())
		}
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	if len(d.b) != 0 {
		return 0, nil, fmt.Errorf("store: %d trailing bytes after profiles record", len(d.b))
	}
	return seq, accounts, nil
}

// AppendRotation logs one node-set rotation.
func (s *Store) AppendRotation(rec *RotationRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Seq = s.seq + 1
	s.buf = encodeRotation(s.buf[:0], rec)
	return s.appendLocked(RecordRotation, s.buf)
}

// AppendProfiles logs the end-of-run profile epilogue.
func (s *Store) AppendProfiles(accounts []*socialnet.Account) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = encodeProfiles(s.buf[:0], s.seq+1, accounts)
	return s.appendLocked(RecordProfiles, s.buf)
}

// Log is a full, read-only view of a capture WAL — everything ReadLog
// decoded from every segment still on disk, oldest first. It is the
// ingest contract of the replay source: captures in original extraction
// order, the rotation schedule, and the end-of-run profile epilogue.
type Log struct {
	// Captures are all capture records in append order, retry duplicates
	// (same sequence) removed.
	Captures []*CaptureRecord
	// Rotations are all node-set rotations in append order.
	Rotations []*RotationRecord
	// Profiles maps account id to the final live profile from the newest
	// epilogue record (nil when the run crashed before writing one).
	Profiles map[socialnet.AccountID]*socialnet.Account
	// SimHours is the summed sim-time advance journaled in the log.
	SimHours int
	// Meta is the recording configuration's fingerprint.
	Meta string
	// Torn counts segments ending in a torn write.
	Torn int
}

// ReadLog reads every WAL segment of a backend without locking or
// mutating it. Unlike Open — which recovers the newest state and skips
// checkpoint-covered segments — ReadLog returns the full recorded
// history, which is what a replay needs; recording runs retain every
// segment (Options.RetainAll), so the history is guaranteed complete.
func ReadLog(b Backend) (*Log, error) {
	names, err := b.List()
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	log := &Log{}
	var lastSeq uint64
	for _, first := range listSeqs(names, segmentPrefix, segmentSuffix) {
		f, err := b.Open(segmentName(first))
		if err != nil {
			return nil, fmt.Errorf("store: open segment %d: %w", first, err)
		}
		err = readSegment(f, func(typ byte, payload []byte) error {
			switch typ {
			case RecordCapture:
				cr, err := DecodeCapture(payload)
				if err != nil {
					return fmt.Errorf("store: segment %d: %w", first, err)
				}
				// A retried append can persist the same sequence twice
				// (write landed, fsync errored); replay the first copy.
				if cr.Seq <= lastSeq && lastSeq > 0 {
					return nil
				}
				lastSeq = cr.Seq
				log.Captures = append(log.Captures, cr)
			case RecordRotation:
				rr, err := DecodeRotation(payload)
				if err != nil {
					return fmt.Errorf("store: segment %d: %w", first, err)
				}
				log.Rotations = append(log.Rotations, rr)
			case RecordProfiles:
				_, accounts, err := DecodeProfiles(payload)
				if err != nil {
					return fmt.Errorf("store: segment %d: %w", first, err)
				}
				if log.Profiles == nil {
					log.Profiles = make(map[socialnet.AccountID]*socialnet.Account, len(accounts))
				}
				for _, a := range accounts {
					if a != nil {
						log.Profiles[a.ID] = a
					}
				}
			case RecordSimHours:
				_, hours, err := decodeSimHours(payload)
				if err != nil {
					return fmt.Errorf("store: segment %d: %w", first, err)
				}
				log.SimHours += hours
			case RecordMeta:
				if log.Meta == "" {
					log.Meta = string(payload)
				}
			default:
				return fmt.Errorf("store: segment %d: unknown record type %d", first, typ)
			}
			return nil
		})
		cerr := f.Close()
		if errors.Is(err, ErrTornTail) {
			log.Torn++
			err = nil
		}
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
	}
	return log, nil
}
