package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

func TestDirBackendBasics(t *testing.T) {
	if _, err := store.NewDir(""); err == nil {
		t.Error("NewDir(\"\") succeeded")
	}
	dir := t.TempDir()
	d, err := store.NewDir(filepath.Join(dir, "nested", "sub"))
	if err != nil {
		t.Fatalf("NewDir nested: %v", err)
	}
	if d.Path() == "" {
		t.Error("empty Path()")
	}
	f, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := d.Remove("a"); err != nil {
		t.Fatalf("Remove of absent file: %v", err)
	}
	if _, err := d.Open("a"); err == nil {
		t.Error("Open of removed file succeeded")
	}
	if err := d.Rename("ghost", "b"); err == nil {
		t.Error("Rename of absent file succeeded")
	}
	names, err := d.List()
	if err != nil || len(names) != 0 {
		t.Errorf("List = (%v, %v), want empty", names, err)
	}
}

func TestDirLockGarbledPidReclaimed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte("not-a-pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	release, err := d.Lock()
	if err != nil {
		t.Fatalf("Lock over garbled lock file: %v", err)
	}
	if _, err := d.Lock(); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("re-Lock: %v, want ErrLocked", err)
	}
	if err := release(); err != nil {
		t.Fatal(err)
	}
	// pid <= 0 in the lock file is never treated as alive.
	if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte("-1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	release2, err := d.Lock()
	if err != nil {
		t.Fatalf("Lock over pid -1: %v", err)
	}
	if err := release2(); err != nil {
		t.Fatal(err)
	}
}
