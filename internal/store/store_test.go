package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store/fstest"
)

// testCapture builds a deterministic capture record varying with i.
func testCapture(i int) *store.CaptureRecord {
	base := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	return &store.CaptureRecord{
		Tweet: socialnet.Tweet{
			ID:         socialnet.TweetID(1000 + i),
			AuthorID:   socialnet.AccountID(10 + i%7),
			CreatedAt:  base.Add(time.Duration(i) * time.Minute),
			Kind:       socialnet.KindTweet,
			Source:     socialnet.SourceMobile,
			Text:       fmt.Sprintf("win a prize #%d http://sp.am/%d", i, i),
			Hashtags:   []string{"prize", fmt.Sprintf("h%d", i%3)},
			Mentions:   []socialnet.AccountID{socialnet.AccountID(i + 1)},
			URLs:       []string{fmt.Sprintf("http://sp.am/%d", i)},
			Topic:      "trend",
			Spam:       i%2 == 0,
			CampaignID: i % 4,
		},
		Sender: &socialnet.Account{
			ID:               socialnet.AccountID(10 + i%7),
			ScreenName:       fmt.Sprintf("user%d", i%7),
			Name:             "User",
			Description:      "bio",
			CreatedAt:        base.AddDate(-1, 0, 0),
			FriendsCount:     10 * i,
			FollowersCount:   i,
			StatusesCount:    100 + i,
			ProfileImageSeed: int64(i),
			ProfileImageHash: imagehash.Hash{Hi: uint64(i) * 7, Lo: uint64(i) * 13},
			Kind:             socialnet.KindSpammer,
			TweetsPerHour:    1.5,
			MentionRate:      0.25,
			PreferredSource:  socialnet.SourceMobile,
		},
		Receiver: &socialnet.Account{
			ID:         socialnet.AccountID(i + 1),
			ScreenName: fmt.Sprintf("victim%d", i),
			CreatedAt:  base.AddDate(-2, 0, 0),
			Kind:       socialnet.KindNormal,
		},
		Groups: []int{i % 3, 3 + i%2},
	}
}

func openTest(t *testing.T, b store.Backend, syncEvery int) (*store.Store, *store.Recovery) {
	t.Helper()
	s, rec, err := store.Open(store.Options{
		Backend:   b,
		SyncEvery: syncEvery,
		Meta:      "test-meta",
		Metrics:   metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func appendN(t *testing.T, s *store.Store, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := s.AppendCapture(testCapture(i)); err != nil {
			t.Fatalf("AppendCapture(%d): %v", i, err)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	b := fstest.New()
	s, rec := openTest(t, b, 1)
	if rec.Checkpoint != nil || len(rec.Records) != 0 || rec.Meta != "" {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	appendN(t, s, 0, 25)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if rec2.Meta != "test-meta" {
		t.Errorf("recovered meta %q", rec2.Meta)
	}
	if len(rec2.Records) != 25 {
		t.Fatalf("recovered %d records, want 25", len(rec2.Records))
	}
	for i, got := range rec2.Records {
		want := testCapture(i)
		want.Seq = uint64(i + 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if s2.Seq() != 25 {
		t.Errorf("Seq() = %d, want 25", s2.Seq())
	}
}

func TestCheckpointCoversRecords(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 10)
	ck := &store.Checkpoint{
		TweetWatermark: 1009,
		Components:     map[string][]byte{"labels": []byte("state-at-10")},
	}
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if ck.Seq != 10 {
		t.Fatalf("checkpoint seq %d, want 10", ck.Seq)
	}
	appendN(t, s, 10, 5)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if rec.Checkpoint == nil {
		t.Fatal("no checkpoint recovered")
	}
	if rec.Checkpoint.Seq != 10 || rec.Checkpoint.TweetWatermark != 1009 {
		t.Errorf("checkpoint = %+v", rec.Checkpoint)
	}
	if got := string(rec.Checkpoint.Components["labels"]); got != "state-at-10" {
		t.Errorf("component = %q", got)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d records past checkpoint, want 5", len(rec.Records))
	}
	if rec.Records[0].Seq != 11 || rec.Records[4].Seq != 15 {
		t.Errorf("replay seq range [%d,%d], want [11,15]",
			rec.Records[0].Seq, rec.Records[4].Seq)
	}
}

func TestCheckpointFallbackToOlder(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 5)
	if err := s.WriteCheckpoint(&store.Checkpoint{Components: map[string][]byte{"v": []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5, 5)
	if err := s.WriteCheckpoint(&store.Checkpoint{Components: map[string][]byte{"v": []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 10, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint's payload; recovery must fall back
	// to the seq-5 one and replay records 6..13 from the WAL.
	name := fmt.Sprintf("ckpt-%016d.ckpt", 10)
	if !b.CorruptSynced(name, 20) {
		t.Fatalf("could not corrupt %s", name)
	}
	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if rec.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", rec.Fallbacks)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 5 {
		t.Fatalf("checkpoint = %+v, want seq 5", rec.Checkpoint)
	}
	if string(rec.Checkpoint.Components["v"]) != "a" {
		t.Errorf("component = %q, want %q", rec.Checkpoint.Components["v"], "a")
	}
	if len(rec.Records) != 8 {
		t.Fatalf("replayed %d records, want 8 (seqs 6..13)", len(rec.Records))
	}
}

func TestCrashDiscardsUnsyncedKeepsSynced(t *testing.T) {
	for _, torn := range []int{0, 3} {
		t.Run(fmt.Sprintf("torn=%d", torn), func(t *testing.T) {
			b := fstest.New()
			s, _ := openTest(t, b, 1) // sync every append: all 8 durable
			appendN(t, s, 0, 8)
			if torn > 0 {
				// A 9th append whose fsync fails leaves a flushed but
				// unsynced frame; the crash keeps torn bytes of it.
				b.FailAfter(fstest.OpSync, 1)
				if err := s.AppendCapture(testCapture(8)); err == nil {
					t.Fatal("append with failing fsync succeeded")
				}
			}
			// No Close: the process dies. Crash also abandons the lock,
			// as a dead owner's stale pid file would be reclaimed.
			b.Crash(torn)
			_ = s

			s2, rec := openTest(t, b, 1)
			defer func() { _ = s2.Close() }()
			if len(rec.Records) != 8 {
				t.Fatalf("recovered %d records, want 8", len(rec.Records))
			}
			if torn > 0 && rec.Torn != 1 {
				t.Errorf("torn = %d, want 1", rec.Torn)
			}
		})
	}
}

func TestUnsyncedTailLostOnCrash(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 100) // group commit: nothing syncs automatically
	appendN(t, s, 0, 5)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5, 4) // buffered, not yet durable
	// A failing fsync still flushes the buffer first, leaving the four
	// frames written but unsynced — the page-cache state a real crash
	// tears.
	b.FailAfter(fstest.OpSync, 1)
	if err := s.Sync(); err == nil {
		t.Fatal("Sync with injected fsync fault succeeded")
	}
	b.Crash(2) // keep 2 torn bytes of the unsynced tail

	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want the 5 synced ones", len(rec.Records))
	}
	if rec.Torn != 1 {
		t.Errorf("torn = %d, want 1", rec.Torn)
	}
	// New appends must continue past the highest durable sequence.
	if err := s2.AppendCapture(testCapture(99)); err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != 6 {
		t.Errorf("Seq() after recovery append = %d, want 6", s2.Seq())
	}
}

func TestWriteErrorRotatesSegment(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 3)
	b.FailAfter(fstest.OpWrite, 1)
	err := s.AppendCapture(testCapture(3))
	if !errors.Is(err, fstest.ErrInjected) {
		t.Fatalf("append during fault: %v, want injected error", err)
	}
	// The failed record consumed a sequence but never became durable
	// (its half-written frame is a torn tail); the next append rotates
	// to a fresh segment and proceeds.
	appendN(t, s, 4, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if len(rec.Records) != 6 {
		t.Fatalf("recovered %d records, want 6", len(rec.Records))
	}
	for i := 1; i < len(rec.Records); i++ {
		if rec.Records[i].Seq <= rec.Records[i-1].Seq {
			t.Fatalf("replay order broken: seq %d after %d",
				rec.Records[i].Seq, rec.Records[i-1].Seq)
		}
	}
	if rec.Torn != 1 {
		t.Errorf("torn = %d, want 1 (half-written frame at rotated segment tail)", rec.Torn)
	}
}

func TestSyncErrorRotatesSegment(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 2)
	b.FailAfter(fstest.OpSync, 1)
	if err := s.AppendCapture(testCapture(2)); !errors.Is(err, fstest.ErrInjected) {
		t.Fatalf("append during sync fault: %v, want injected error", err)
	}
	appendN(t, s, 3, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	// The record whose sync failed was still written and later segments
	// were synced; after rotation it sits at the old segment's tail. It
	// was flushed before the failing fsync, so the in-memory double kept
	// it in unsynced state until Crash — no crash here, so it survives.
	if len(rec.Records) < 4 {
		t.Fatalf("recovered %d records, want >= 4", len(rec.Records))
	}
}

func TestShortReadsRecover(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 12)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b.ReadChunk = 3 // serve recovery three bytes at a time
	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if len(rec.Records) != 12 {
		t.Fatalf("recovered %d records under short reads, want 12", len(rec.Records))
	}
}

func TestLockExcludesSecondOpen(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	_, _, err := store.Open(store.Options{Backend: b})
	if !errors.Is(err, store.ErrLocked) {
		t.Fatalf("second Open: %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openTest(t, b, 1)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaMismatchRefusesOpen(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := store.Open(store.Options{Backend: b, Meta: "other-config"})
	if !errors.Is(err, store.ErrMetaMismatch) {
		t.Fatalf("Open with foreign meta: %v, want ErrMetaMismatch", err)
	}
}

func TestCheckpointPrunesHistory(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	for round := 0; round < 4; round++ {
		appendN(t, s, round*10, 10)
		if err := s.WriteCheckpoint(&store.Checkpoint{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, segs int
	for _, n := range names {
		switch filepath.Ext(n) {
		case ".ckpt":
			ckpts++
		case ".log":
			segs++
		}
	}
	if ckpts != 2 {
		t.Errorf("retained %d checkpoints, want 2 (names: %v)", ckpts, names)
	}
	if segs > 2 {
		t.Errorf("retained %d segments, want <= 2 (names: %v)", segs, names)
	}
	s2, rec := openTest(t, b, 1)
	defer func() { _ = s2.Close() }()
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 40 {
		t.Fatalf("checkpoint = %+v, want seq 40", rec.Checkpoint)
	}
	if len(rec.Records) != 0 {
		t.Errorf("replayed %d records, want 0", len(rec.Records))
	}
}

// TestRetainAllKeepsFullHistory is the recording-mode retention property:
// with Options.RetainAll, checkpoint cycles that would normally prune old
// checkpoints and covered WAL segments leave every file in place, so a
// replay reading the log still sees the run's first record.
func TestRetainAllKeepsFullHistory(t *testing.T) {
	b := fstest.New()
	s, _, err := store.Open(store.Options{
		Backend:   b,
		SyncEvery: 1,
		Meta:      "test-meta",
		Metrics:   metrics.NewRegistry(),
		RetainAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		appendN(t, s, round*10, 10)
		if err := s.WriteCheckpoint(&store.Checkpoint{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, segs int
	for _, n := range names {
		switch filepath.Ext(n) {
		case ".ckpt":
			ckpts++
		case ".log":
			segs++
		}
	}
	if ckpts != 4 {
		t.Errorf("retained %d checkpoints, want all 4 (names: %v)", ckpts, names)
	}
	if segs < 4 {
		t.Errorf("retained %d segments, want >= 4 (names: %v)", segs, names)
	}
	log, err := store.ReadLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Captures) != 40 {
		t.Fatalf("full log has %d captures, want 40", len(log.Captures))
	}
	if got := log.Captures[0].Seq; got != 1 {
		t.Errorf("first surviving capture seq = %d, want 1 (history truncated)", got)
	}
}

func TestAllCheckpointsCorruptWithPrunedHistoryFails(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	for round := 0; round < 3; round++ {
		appendN(t, s, round*5, 5)
		if err := s.WriteCheckpoint(&store.Checkpoint{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int{10, 15} {
		name := fmt.Sprintf("ckpt-%016d.ckpt", seq)
		if !b.CorruptSynced(name, 12) {
			t.Fatalf("could not corrupt %s", name)
		}
	}
	_, _, err := store.Open(store.Options{Backend: b, Meta: "test-meta"})
	if err == nil {
		t.Fatal("Open succeeded with no readable checkpoint and pruned WAL")
	}
}

func TestSimHoursJournal(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	for i := 0; i < 5; i++ {
		if err := s.AppendSimHours(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openTest(t, b, 1)
	if rec.SimHours != 5 {
		t.Fatalf("SimHours = %d, want 5", rec.SimHours)
	}
	// Hours and captures share the sequence space, so a checkpoint
	// covers both.
	if err := s2.WriteCheckpoint(&store.Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendSimHours(2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rec3 := openTest(t, b, 1)
	defer func() { _ = s3.Close() }()
	if rec3.SimHours != 2 {
		t.Errorf("post-checkpoint SimHours = %d, want 2", rec3.SimHours)
	}
}

func TestDirBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := store.Open(store.Options{Dir: dir, Meta: "disk-meta",
		Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatalf("Open(dir): %v", err)
	}
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered: %+v", rec)
	}
	for i := 0; i < 10; i++ {
		if err := s.AppendCapture(testCapture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteCheckpoint(&store.Checkpoint{TweetWatermark: 7,
		Components: map[string][]byte{"x": {1, 2, 3}}}); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 13; i++ {
		if err := s.AppendCapture(testCapture(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := store.Open(store.Options{Dir: dir, Meta: "disk-meta",
		Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = s2.Close() }()
	if rec2.Checkpoint == nil || rec2.Checkpoint.Seq != 10 {
		t.Fatalf("checkpoint = %+v", rec2.Checkpoint)
	}
	if len(rec2.Records) != 3 {
		t.Fatalf("replayed %d, want 3", len(rec2.Records))
	}
}

func TestDirLockStaleReclaim(t *testing.T) {
	dir := t.TempDir()
	// A lock file owned by a long-dead pid must not block recovery.
	if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err := store.Open(store.Options{Dir: dir, Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatalf("Open over stale lock: %v", err)
	}
	// Our own live pid, though, is an active owner.
	d, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lock(); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("Lock under live owner: %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
