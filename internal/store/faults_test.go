package store_test

import (
	"errors"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store/fstest"
)

func TestCheckpointWriteFaults(t *testing.T) {
	t.Run("create fails", func(t *testing.T) {
		b := fstest.New()
		s, _ := openTest(t, b, 1)
		defer func() { _ = s.Close() }()
		appendN(t, s, 0, 2)
		b.FailAfter(fstest.OpCreate, 1)
		if err := s.WriteCheckpoint(&store.Checkpoint{}); !errors.Is(err, fstest.ErrInjected) {
			t.Fatalf("checkpoint with create fault: %v", err)
		}
		// The store stays writable after a failed checkpoint.
		appendN(t, s, 2, 1)
	})
	t.Run("rename fails", func(t *testing.T) {
		b := fstest.New()
		s, _ := openTest(t, b, 1)
		defer func() { _ = s.Close() }()
		appendN(t, s, 0, 2)
		b.FailAfter(fstest.OpRename, 1)
		if err := s.WriteCheckpoint(&store.Checkpoint{}); !errors.Is(err, fstest.ErrInjected) {
			t.Fatalf("checkpoint with rename fault: %v", err)
		}
		// The half-published temp file must not pollute later recovery.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, rec := openTest(t, b, 1)
		defer func() { _ = s2.Close() }()
		if rec.Checkpoint != nil {
			t.Fatalf("failed checkpoint resurfaced: %+v", rec.Checkpoint)
		}
		if len(rec.Records) != 2 {
			t.Fatalf("recovered %d records, want 2", len(rec.Records))
		}
	})
	t.Run("checkpoint sync fails", func(t *testing.T) {
		b := fstest.New()
		s, _ := openTest(t, b, 1)
		defer func() { _ = s.Close() }()
		appendN(t, s, 0, 2)
		b.FailAfter(fstest.OpSync, 1)
		if err := s.WriteCheckpoint(&store.Checkpoint{}); !errors.Is(err, fstest.ErrInjected) {
			t.Fatalf("checkpoint with sync fault: %v", err)
		}
	})
}

func TestClosedStoreRefusesOperations(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.AppendCapture(testCapture(0)); err == nil {
		t.Error("append on closed store succeeded")
	}
	if err := s.AppendSimHours(1); err == nil {
		t.Error("sim-hours append on closed store succeeded")
	}
	if err := s.Sync(); err == nil {
		t.Error("sync on closed store succeeded")
	}
	if err := s.WriteCheckpoint(&store.Checkpoint{}); err == nil {
		t.Error("checkpoint on closed store succeeded")
	}
}

func TestSegmentCreateFaultOnRotation(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	defer func() { _ = s.Close() }()
	b.FailAfter(fstest.OpCreate, 1)
	if err := s.AppendCapture(testCapture(0)); !errors.Is(err, fstest.ErrInjected) {
		t.Fatalf("append with segment-create fault: %v", err)
	}
	// The next append retries the rotation and succeeds.
	appendN(t, s, 1, 2)
	if s.Seq() != 2 {
		t.Errorf("Seq() = %d, want 2", s.Seq())
	}
}

func TestListFaultFailsOpen(t *testing.T) {
	b := fstest.New()
	b.FailAfter(fstest.OpList, 1)
	if _, _, err := store.Open(store.Options{Backend: b}); !errors.Is(err, fstest.ErrInjected) {
		t.Fatalf("Open with list fault: %v", err)
	}
	// The failed Open must release the lock.
	s, _ := openTest(t, b, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFaultDuringRecovery(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b.FailAfter(fstest.OpRead, 1)
	if _, _, err := store.Open(store.Options{Backend: b}); !errors.Is(err, fstest.ErrInjected) {
		t.Fatalf("Open with read fault: %v", err)
	}
}
