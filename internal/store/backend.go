// Package store is the sniffer's durability layer (DESIGN.md §14): a
// write-ahead log of capture records plus periodic checkpoints of the
// derived pipeline state (capture ring, label-store cluster indices,
// extractor behaviour state, trained detector window), behind a pluggable
// Backend so the local-disk implementation can be swapped for a blob-style
// remote store without touching the WAL or recovery logic.
//
// Durability contract: a record is durable once Sync returns; records
// appended after the last successful Sync may be lost — or half-written
// ("torn") — by a crash. Recovery loads the newest decodable checkpoint
// and replays every WAL record past it, treating a torn or truncated
// record at a segment tail as the clean end of that segment. The
// fault-injection double in store/fstest exercises exactly these paths.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// ErrLocked is returned by Open when another live process holds the store
// directory's lock file.
var ErrLocked = errors.New("store: directory locked by another process")

// WriteFile is an append-only file handle. Writes become durable only
// after Sync; Close implies no Sync (a crashed process never closes).
type WriteFile interface {
	io.Writer
	// Sync flushes everything written so far to stable storage.
	Sync() error
	io.Closer
}

// Backend is the pluggable storage substrate: a flat namespace of
// append-only files with atomic rename. The local-disk implementation is
// Dir; store/fstest provides a fault-injectable in-memory double, and the
// same surface maps directly onto a blob store (Create/Open/List/Remove
// are object operations, Rename is the usual upload-then-commit).
type Backend interface {
	// Create opens a fresh file for appending, truncating any existing
	// file of that name.
	Create(name string) (WriteFile, error)
	// Open opens an existing file for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
	// Remove deletes a file (no error when absent).
	Remove(name string) error
	// List returns every file name in the namespace, sorted.
	List() ([]string, error)
	// Lock takes the namespace's exclusive advisory lock, failing with
	// ErrLocked while another live owner holds it. The returned release
	// frees it.
	Lock() (release func() error, err error)
}

// Dir is the local-disk Backend: one flat directory, fsync-backed Sync,
// rename-based atomic replace, and a pid lock file that survives crashes
// without blocking restarts (a lock whose owner process is gone is stale
// and silently reclaimed).
type Dir struct {
	path string
}

// NewDir creates the directory (and parents) if needed and returns the
// backend bound to it.
func NewDir(path string) (*Dir, error) {
	if path == "" {
		return nil, errors.New("store: empty directory path")
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory the backend is bound to.
func (d *Dir) Path() string { return d.path }

type diskFile struct{ f *os.File }

func (w *diskFile) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w *diskFile) Sync() error                 { return w.f.Sync() }
func (w *diskFile) Close() error                { return w.f.Close() }

// Create implements Backend.
func (d *Dir) Create(name string) (WriteFile, error) {
	f, err := os.OpenFile(filepath.Join(d.path, name),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &diskFile{f: f}, nil
}

// Open implements Backend.
func (d *Dir) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(d.path, name))
}

// Rename implements Backend.
func (d *Dir) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(d.path, oldName), filepath.Join(d.path, newName))
}

// Remove implements Backend.
func (d *Dir) Remove(name string) error {
	err := os.Remove(filepath.Join(d.path, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Backend.
func (d *Dir) List() ([]string, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// lockFileName is the advisory pid lock guarding a store directory.
const lockFileName = "LOCK"

// Lock implements Backend. The lock file holds the owner pid; a second
// process whose probe finds the owner alive fails with ErrLocked, while a
// stale lock (owner exited, e.g. kill -9) is reclaimed so crash recovery
// is never blocked by the crash it is recovering from.
func (d *Dir) Lock() (func() error, error) {
	path := filepath.Join(d.path, lockFileName)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				_ = os.Remove(path)
				return nil, fmt.Errorf("store: write lock file: %w", werr)
			}
			return func() error { return os.Remove(path) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("store: create lock file: %w", err)
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				continue // released between probe and read: retry
			}
			return nil, fmt.Errorf("store: read lock file: %w", rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("%w (pid %d)", ErrLocked, pid)
		}
		// Stale (owner dead or file garbled): reclaim and retry once.
		if rmErr := os.Remove(path); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			return nil, fmt.Errorf("store: reclaim stale lock: %w", rmErr)
		}
	}
	return nil, ErrLocked
}

// pidAlive reports whether a process with the given pid exists. Signal 0
// probes existence without delivering anything; EPERM still means alive.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
