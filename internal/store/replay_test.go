package store_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store/fstest"
)

func testRotation(hour int) *store.RotationRecord {
	return &store.RotationRecord{
		Hour:   hour,
		Now:    time.Date(2019, 6, 1, hour, 0, 0, 0, time.UTC),
		Counts: []int{2, 0, 3, 1},
	}
}

// TestReadLogRoundTrip is the recording contract: everything a
// replayable run appends — captures, rotations, sim-hour advances, the
// profile epilogue, the meta stamp — comes back from ReadLog in order,
// across the segment rotations checkpoints force.
func TestReadLogRoundTrip(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	for hour := 0; hour < 3; hour++ {
		if err := s.AppendRotation(testRotation(hour)); err != nil {
			t.Fatal(err)
		}
		appendN(t, s, hour*5, 5)
		if err := s.AppendSimHours(1); err != nil {
			t.Fatal(err)
		}
		// Checkpoint every hour: rotates the segment, and with the
		// default pruning exercises that ReadLog reads what's left —
		// retention itself is TestRetainAllKeepsFullHistory's job, so
		// keep everything here via RetainAll-free single-run reads
		// before any pruning can strike (two checkpoints are retained,
		// three segments stay on disk for three hours).
		if hour == 1 {
			if err := s.WriteCheckpoint(&store.Checkpoint{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Two epilogues: the newest snapshot must win per account.
	if err := s.AppendProfiles([]*socialnet.Account{
		{ID: 7, ScreenName: "stale", Suspended: false},
		{ID: 9, ScreenName: "other"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProfiles([]*socialnet.Account{
		{ID: 7, ScreenName: "fresh", Suspended: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := store.ReadLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Captures) != 15 {
		t.Fatalf("captures = %d, want 15", len(log.Captures))
	}
	for i, c := range log.Captures {
		if want := socialnet.TweetID(1000 + i); c.Tweet.ID != want {
			t.Fatalf("capture %d tweet id = %d, want %d", i, c.Tweet.ID, want)
		}
	}
	if len(log.Rotations) != 3 {
		t.Fatalf("rotations = %d, want 3", len(log.Rotations))
	}
	for hour, r := range log.Rotations {
		want := testRotation(hour)
		if r.Hour != want.Hour || !r.Now.Equal(want.Now) {
			t.Fatalf("rotation %d = %+v, want hour %d at %v", hour, r, want.Hour, want.Now)
		}
		if len(r.Counts) != len(want.Counts) {
			t.Fatalf("rotation %d counts = %v, want %v", hour, r.Counts, want.Counts)
		}
		for g := range r.Counts {
			if r.Counts[g] != want.Counts[g] {
				t.Fatalf("rotation %d counts = %v, want %v", hour, r.Counts, want.Counts)
			}
		}
	}
	if log.SimHours != 3 {
		t.Errorf("sim hours = %d, want 3", log.SimHours)
	}
	if log.Meta != "test-meta" {
		t.Errorf("meta = %q, want test-meta", log.Meta)
	}
	if log.Torn != 0 {
		t.Errorf("torn segments = %d, want 0", log.Torn)
	}
	if len(log.Profiles) != 2 {
		t.Fatalf("profiles = %d accounts, want 2", len(log.Profiles))
	}
	if a := log.Profiles[7]; a == nil || a.ScreenName != "fresh" || !a.Suspended {
		t.Errorf("profile 7 = %+v, want the newest epilogue snapshot", log.Profiles[7])
	}
	if a := log.Profiles[9]; a == nil || a.ScreenName != "other" {
		t.Errorf("profile 9 = %+v, want retained from the older epilogue", log.Profiles[9])
	}
}

// TestReadLogToleratesTornTail mirrors recovery's crash posture: a
// recording whose tail was torn mid-write still reads, reporting the
// torn segment instead of failing the whole replay.
func TestReadLogToleratesTornTail(t *testing.T) {
	b := fstest.New()
	// A large group-commit window keeps every append unsynced, so the
	// simulated crash below tears the segment mid-frame.
	s, _ := openTest(t, b, 100)
	if err := s.AppendRotation(testRotation(0)); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 4)
	b.Crash(17)
	_ = s

	log, err := store.ReadLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn != 1 {
		t.Errorf("torn segments = %d, want 1", log.Torn)
	}
	if len(log.Captures) != 0 || len(log.Rotations) != 0 {
		t.Errorf("torn log decoded %d captures / %d rotations, want none past the tear",
			len(log.Captures), len(log.Rotations))
	}
}

// TestDecodeRotationRejectsCorruptPayloads pins the decoder's defensive
// branches: truncation anywhere inside the record and a count claiming
// more entries than bytes remain both fail loudly instead of yielding a
// half-read rotation.
func TestDecodeRotationRejectsCorruptPayloads(t *testing.T) {
	if _, err := store.DecodeRotation(nil); err == nil {
		t.Error("empty rotation payload decoded")
	}
	if _, err := store.DecodeRotation([]byte{1, 4, 0}); err == nil {
		t.Error("truncated rotation payload decoded")
	}
	if _, err := store.DecodeRotation([]byte{1, 4, 0, 0, 0xff, 0xff, 0x3f}); err == nil {
		t.Error("overlong rotation count decoded")
	}
}

// TestDecodeProfilesRejectsCorruptPayloads does the same for the
// epilogue decoder.
func TestDecodeProfilesRejectsCorruptPayloads(t *testing.T) {
	if _, _, err := store.DecodeProfiles(nil); err == nil {
		t.Error("empty profiles payload decoded")
	}
	if _, _, err := store.DecodeProfiles([]byte{1, 0xff, 0xff, 0x3f}); err == nil {
		t.Error("overlong profiles count decoded")
	}
	if _, _, err := store.DecodeProfiles([]byte{1, 2, 0}); err == nil {
		t.Error("truncated profiles payload decoded")
	}
}

// TestStatusAndHealthExtra covers the operator surface: Status reflects
// appended sequences and checkpoint coverage, and HealthExtra stamps the
// same numbers into a metrics health snapshot.
func TestStatusAndHealthExtra(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	defer func() { _ = s.Close() }()
	appendN(t, s, 0, 3)
	if err := s.WriteCheckpoint(&store.Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.LastSeq != 3 || st.LastCheckpointSeq != 3 {
		t.Fatalf("status = %+v, want seqs 3/3", st)
	}
	if st.LastSyncError != "" {
		t.Fatalf("status sync error = %q, want none", st.LastSyncError)
	}
	var h metrics.Health
	s.HealthExtra()(&h)
	if h.WAL == nil {
		t.Fatal("HealthExtra stamped no WAL section")
	}
	if h.WAL.LastSeq != 3 || h.WAL.LastCheckpointSeq != 3 {
		t.Fatalf("health WAL = %+v, want seqs 3/3", h.WAL)
	}
}

// TestReadLogPropagatesBackendErrors: a backend that cannot even list
// its files fails the read loudly rather than returning an empty log a
// replay would mistake for an empty recording.
func TestReadLogPropagatesBackendErrors(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	appendN(t, s, 0, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadLog(failingListBackend{b}); err == nil ||
		!strings.Contains(err.Error(), "list") {
		t.Fatalf("ReadLog with failing List = %v, want list error", err)
	}
	// A segment that lists but cannot open fails the read too.
	b.FailAfter(fstest.OpOpen, 1)
	if _, err := store.ReadLog(b); err == nil ||
		!strings.Contains(err.Error(), "open segment") {
		t.Fatalf("ReadLog with failing Open = %v, want open error", err)
	}
	// And a mid-segment read fault surfaces instead of truncating the
	// history silently.
	b.FailAfter(fstest.OpRead, 1)
	if _, err := store.ReadLog(b); err == nil {
		t.Fatal("ReadLog with failing Read succeeded")
	}
}

// TestAppendRotationSurfacesWriteFaults: recording appends report
// backend failures to the caller — a rotation the log refused is a
// replay that would come up one hour short.
func TestAppendRotationSurfacesWriteFaults(t *testing.T) {
	b := fstest.New()
	s, _ := openTest(t, b, 1)
	defer func() { _ = s.Close() }()
	if err := s.AppendRotation(testRotation(0)); err != nil {
		t.Fatal(err)
	}
	b.FailAfter(fstest.OpWrite, 1)
	if err := s.AppendRotation(testRotation(1)); err == nil {
		t.Fatal("AppendRotation with failing write succeeded")
	}
	b.FailAfter(fstest.OpSync, 1)
	if err := s.AppendProfiles([]*socialnet.Account{{ID: 3}}); err == nil {
		t.Fatal("AppendProfiles with failing sync succeeded")
	}
	// The store recovers onto a fresh segment: the next append lands.
	if err := s.AppendRotation(testRotation(2)); err != nil {
		t.Fatalf("append after recovered faults: %v", err)
	}
	// A frame too large for the writer's buffer writes through to the
	// backend immediately; a write fault there must surface on the
	// append itself, not wait for the next sync.
	b.FailAfter(fstest.OpWrite, 1)
	big := &socialnet.Account{ID: 4, Name: strings.Repeat("x", 2<<20)}
	if err := s.AppendProfiles([]*socialnet.Account{big}); err == nil {
		t.Fatal("oversized AppendProfiles with failing write succeeded")
	}
	if err := s.AppendRotation(testRotation(3)); err != nil {
		t.Fatalf("append after write-through fault: %v", err)
	}
}

// failingListBackend wraps a backend whose List always fails.
type failingListBackend struct{ store.Backend }

func (f failingListBackend) List() ([]string, error) {
	return nil, errors.New("list failed")
}
