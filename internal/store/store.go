package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// Options configures Open.
type Options struct {
	// Dir is the local directory to store state in; ignored when Backend
	// is set.
	Dir string
	// Backend overrides the local-disk backend (fault-injection doubles,
	// blob stores).
	Backend Backend
	// SyncEvery groups WAL commits: the log fsyncs after every SyncEvery
	// appends (and on explicit Sync). <= 0 means 1, i.e. every append is
	// durable before AppendCapture returns.
	SyncEvery int
	// Meta is the owner's configuration fingerprint (seed, spec hash).
	// It is stamped into every WAL segment; reopening a store whose
	// recorded fingerprint differs fails with ErrMetaMismatch rather
	// than replaying another configuration's history.
	Meta string
	// Metrics receives the store's counters; nil uses metrics.Default().
	Metrics *metrics.Registry
	// Tracer receives checkpoint/recovery spans; nil disables them (a
	// nil tracer is a valid no-op receiver).
	Tracer *trace.Tracer
	// RetainAll suspends compaction pruning: checkpoints still rotate the
	// log, but no checkpoint or WAL segment is ever removed. Recording
	// runs set this — a replayable recording is only as good as its
	// oldest surviving segment, and pruning would silently truncate the
	// history a ReplaySource re-feeds.
	RetainAll bool
}

// Recovery is what Open reconstructed from disk.
type Recovery struct {
	// Checkpoint is the newest decodable checkpoint, nil when none.
	Checkpoint *Checkpoint
	// Records are the WAL capture records past the checkpoint, in append
	// order.
	Records []*CaptureRecord
	// SimHours is the summed sim-time advance past the checkpoint
	// (twitterd's journal records).
	SimHours int
	// Torn counts segments that ended in a torn write.
	Torn int
	// Fallbacks counts checkpoints that failed verification and were
	// skipped in favour of an older one.
	Fallbacks int
	// Meta is the configuration fingerprint recorded in the WAL ("" for
	// a fresh store).
	Meta string
}

// ErrMetaMismatch is returned by Open when the on-disk configuration
// fingerprint differs from Options.Meta.
var ErrMetaMismatch = errors.New("store: configuration fingerprint mismatch")

// Store is a durable WAL + checkpoint store over a Backend. All methods
// are safe for concurrent use; append order under concurrency is the
// order the internal lock is acquired.
type Store struct {
	b       Backend
	release func() error
	obs     *observer

	mu          sync.Mutex
	seq         uint64 // last assigned record sequence
	lastCkpt    uint64 // sequence the newest checkpoint covers
	lastSyncErr string // most recent fsync failure ("" = last sync ok)
	w           *segmentWriter
	pending     int // appends since last successful sync
	syncEvery   int
	retainAll   bool
	meta        string
	buf         []byte // payload scratch, reused across appends
	frame       []byte // framing scratch (header + payload copy), likewise
	closed      bool
}

// Status is the operator-facing durability snapshot surfaced through
// /healthz (metrics.WALHealth): whether disk state is advancing and
// whether the last fsync worked.
type Status struct {
	// LastSeq is the last assigned record sequence.
	LastSeq uint64
	// LastCheckpointSeq is the sequence the newest checkpoint covers
	// (0 = none yet this process lifetime or on disk).
	LastCheckpointSeq uint64
	// Segments is the number of WAL segment files currently on disk.
	Segments int
	// LastSyncError is the most recent fsync failure, "" when the last
	// sync succeeded.
	LastSyncError string
}

// Status reports the store's durability state. The segment count comes
// from a backend listing, so the call does disk metadata I/O — probe
// frequency, not hot path.
func (s *Store) Status() Status {
	s.mu.Lock()
	st := Status{
		LastSeq:           s.seq,
		LastCheckpointSeq: s.lastCkpt,
		LastSyncError:     s.lastSyncErr,
	}
	s.mu.Unlock()
	if names, err := s.b.List(); err == nil {
		st.Segments = len(listSeqs(names, segmentPrefix, segmentSuffix))
	}
	return st
}

// HealthExtra adapts Status to the /healthz WAL section — the hook the
// daemons hand to metrics.HealthHandlerFunc (and the fleet federator's
// aggregated handler) when running with -store-dir.
func (s *Store) HealthExtra() func(*metrics.Health) {
	return func(h *metrics.Health) {
		st := s.Status()
		h.WAL = &metrics.WALHealth{
			LastSeq:           st.LastSeq,
			LastCheckpointSeq: st.LastCheckpointSeq,
			Segments:          st.Segments,
			LastSyncError:     st.LastSyncError,
		}
	}
}

// Open locks the store, recovers prior state (newest valid checkpoint
// plus the WAL records past it), and readies the log for appends. The
// caller owns applying Recovery to its in-memory state before appending.
func Open(opts Options) (*Store, *Recovery, error) {
	b := opts.Backend
	if b == nil {
		d, err := NewDir(opts.Dir)
		if err != nil {
			return nil, nil, err
		}
		b = d
	}
	release, err := b.Lock()
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		b:         b,
		release:   release,
		obs:       newObserver(opts.Metrics, opts.Tracer),
		syncEvery: opts.SyncEvery,
		retainAll: opts.RetainAll,
		meta:      opts.Meta,
	}
	if s.syncEvery <= 0 {
		s.syncEvery = 1
	}
	rec, err := s.recover()
	if err != nil {
		_ = release()
		return nil, nil, err
	}
	if opts.Meta != "" && rec.Meta != "" && rec.Meta != opts.Meta {
		_ = release()
		return nil, nil, fmt.Errorf("%w: disk %q, config %q",
			ErrMetaMismatch, rec.Meta, opts.Meta)
	}
	return s, rec, nil
}

// recover loads the newest valid checkpoint and replays the WAL past it.
func (s *Store) recover() (*Recovery, error) {
	start := time.Now()
	tr := s.obs.tracer.Start("store_recover")
	sp := tr.StartSpan("store_recover")
	defer func() {
		sp.End()
		tr.Finish()
	}()

	names, err := s.b.List()
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	// Stray temp files are half-written checkpoints from a crash mid-
	// publish; the rename never happened, so they are garbage.
	for _, n := range names {
		if len(n) > len(tmpSuffix) && n[len(n)-len(tmpSuffix):] == tmpSuffix {
			_ = s.b.Remove(n)
		}
	}

	rec := &Recovery{}
	ckptSeqs := listSeqs(names, checkpointPrefix, checkpointSuffix)
	for i := len(ckptSeqs) - 1; i >= 0 && rec.Checkpoint == nil; i-- {
		ck, err := readCheckpointFile(s.b, ckptSeqs[i])
		if err != nil {
			// Fall back to the previous checkpoint; the WAL segments it
			// covers are still on disk (pruning trails by one).
			rec.Fallbacks++
			s.obs.checkpointFallbacks.Inc()
			continue
		}
		rec.Checkpoint = ck
	}
	segSeqs := listSeqs(names, segmentPrefix, segmentSuffix)
	if rec.Checkpoint == nil && len(ckptSeqs) > 0 &&
		(len(segSeqs) == 0 || segSeqs[0] > 1) {
		// Every checkpoint failed verification and the early WAL was
		// already pruned: full replay is impossible, and pretending the
		// pruned prefix never happened would silently diverge.
		return nil, fmt.Errorf("store: all %d checkpoints unreadable and WAL history pruned", len(ckptSeqs))
	}
	var base uint64
	if rec.Checkpoint != nil {
		base = rec.Checkpoint.Seq
	}
	s.seq = base
	s.lastCkpt = base

	for i, first := range segSeqs {
		if i+1 < len(segSeqs) && segSeqs[i+1] <= base+1 {
			// Every record in this segment has seq < the next segment's
			// first, hence <= base: fully covered by the checkpoint.
			continue
		}
		if err := s.replaySegment(first, base, rec); err != nil {
			return nil, err
		}
	}
	s.obs.recoverySeconds.ObserveDuration(start)
	sp.SetAttr("records", fmt.Sprint(len(rec.Records)))
	sp.SetAttr("torn", fmt.Sprint(rec.Torn))
	return rec, nil
}

// replaySegment streams one segment into rec, keeping records past base.
func (s *Store) replaySegment(first, base uint64, rec *Recovery) error {
	f, err := s.b.Open(segmentName(first))
	if err != nil {
		return fmt.Errorf("store: open segment %d: %w", first, err)
	}
	defer func() { _ = f.Close() }()
	err = readSegment(f, func(typ byte, payload []byte) error {
		switch typ {
		case RecordCapture:
			cr, err := DecodeCapture(payload)
			if err != nil {
				// The frame passed its checksum, so this is a format
				// bug or adversarial corruption, not a torn write.
				return fmt.Errorf("store: segment %d: %w", first, err)
			}
			if cr.Seq > s.seq {
				s.seq = cr.Seq
			}
			if cr.Seq > base {
				rec.Records = append(rec.Records, cr)
				s.obs.recoveryRecords.Inc()
			}
		case RecordSimHours:
			seq, hours, err := decodeSimHours(payload)
			if err != nil {
				return fmt.Errorf("store: segment %d: %w", first, err)
			}
			if seq > s.seq {
				s.seq = seq
			}
			if seq > base {
				rec.SimHours += hours
			}
		case RecordRotation:
			rr, err := DecodeRotation(payload)
			if err != nil {
				return fmt.Errorf("store: segment %d: %w", first, err)
			}
			// Recovery re-runs the simulation, which rotates again; only
			// the sequence matters here. ReadLog is the consumer of the
			// rotation schedule itself.
			if rr.Seq > s.seq {
				s.seq = rr.Seq
			}
		case RecordProfiles:
			seq, _, err := DecodeProfiles(payload)
			if err != nil {
				return fmt.Errorf("store: segment %d: %w", first, err)
			}
			if seq > s.seq {
				s.seq = seq
			}
		case RecordMeta:
			if rec.Meta == "" {
				rec.Meta = string(payload)
			}
		default:
			return fmt.Errorf("store: segment %d: unknown record type %d", first, typ)
		}
		return nil
	})
	if errors.Is(err, ErrTornTail) {
		rec.Torn++
		s.obs.tornTails.Inc()
		return nil
	}
	return err
}

// Seq returns the last assigned record sequence.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// AppendCapture logs one capture, assigning rec.Seq. The record is
// durable once this (under SyncEvery=1) or a later Sync returns nil.
func (s *Store) AppendCapture(rec *CaptureRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Seq = s.seq + 1
	s.buf = s.buf[:0]
	s.buf = EncodeCapture(s.buf, rec)
	return s.appendLocked(RecordCapture, s.buf)
}

// AppendSimHours journals a sim-time advance of the given hour count.
func (s *Store) AppendSimHours(hours int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = encodeSimHours(s.buf[:0], s.seq+1, hours)
	return s.appendLocked(RecordSimHours, s.buf)
}

// appendLocked frames and writes one record carrying sequence s.seq+1.
// On success the sequence advances; on failure it does not, and the next
// append rotates to a fresh segment (so a torn frame only ever sits at a
// segment tail).
func (s *Store) appendLocked(typ byte, payload []byte) error {
	if s.closed {
		return errors.New("store: closed")
	}
	if s.w == nil || s.w.broken {
		if s.w != nil {
			_ = s.w.close()
			s.w = nil
		}
		w, err := s.openSegmentLocked()
		if err != nil {
			s.obs.appendErrors.Inc()
			return err
		}
		s.w = w
	}
	s.frame = appendFrame(s.frame[:0], typ, payload)
	if err := s.w.append(s.frame); err != nil {
		s.obs.appendErrors.Inc()
		return err
	}
	s.seq++
	s.pending++
	s.obs.appends.Inc()
	s.obs.walBytes.Add(float64(len(s.frame)))
	if s.pending >= s.syncEvery {
		return s.syncLocked()
	}
	return nil
}

// openSegmentLocked creates the next segment, named after the sequence
// the first record it receives will carry, and stamps the meta record.
// A name collision can only hit a segment that held no sequenced records
// (otherwise s.seq would be past its first sequence), so the truncate
// loses nothing.
func (s *Store) openSegmentLocked() (*segmentWriter, error) {
	w, err := newSegmentWriter(s.b, segmentName(s.seq+1))
	if err != nil {
		return nil, err
	}
	if s.meta != "" {
		frame := appendFrame(nil, RecordMeta, []byte(s.meta))
		if err := w.append(frame); err != nil {
			_ = w.close()
			return nil, err
		}
	}
	return w, nil
}

// Sync makes every appended record durable.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.w == nil || s.pending == 0 {
		return nil
	}
	if err := s.w.sync(); err != nil {
		s.obs.syncErrors.Inc()
		s.lastSyncErr = err.Error()
		return err
	}
	s.pending = 0
	s.lastSyncErr = ""
	s.obs.syncs.Inc()
	return nil
}

// WriteCheckpoint publishes a consistent cut at the current sequence:
// the WAL is synced first (the checkpoint must never cover records that
// could still be lost), the checkpoint file is written atomically, the
// log rotates, and history covered by the previous retained checkpoint
// is pruned (two checkpoints are kept, so recovery can fall back past a
// corrupt newest one). The caller must be quiescent: no concurrent
// appends between filling ck.Components and WriteCheckpoint returning.
func (s *Store) WriteCheckpoint(ck *Checkpoint) error {
	start := time.Now()
	tr := s.obs.tracer.Start("store_checkpoint")
	sp := tr.StartSpan("store_checkpoint")
	defer func() {
		sp.End()
		tr.Finish()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if err := s.syncLocked(); err != nil {
		s.obs.checkpointErrors.Inc()
		return fmt.Errorf("store: checkpoint sync: %w", err)
	}
	ck.Seq = s.seq
	if err := writeCheckpointFile(s.b, ck); err != nil {
		s.obs.checkpointErrors.Inc()
		return err
	}
	// Rotate so the just-covered segment is complete and prunable at the
	// next checkpoint.
	if s.w != nil {
		_ = s.w.close()
		s.w = nil
	}
	s.pruneLocked(ck.Seq)
	s.lastCkpt = ck.Seq
	s.obs.checkpoints.Inc()
	s.obs.checkpointSeconds.ObserveDuration(start)
	sp.SetAttr("seq", fmt.Sprint(ck.Seq))
	return nil
}

// pruneLocked retires history made redundant by the checkpoint just
// written at newSeq: checkpoints beyond the newest two, and WAL segments
// fully covered by the older retained checkpoint. Prune failures are
// deliberately non-fatal — they cost disk, not correctness.
func (s *Store) pruneLocked(newSeq uint64) {
	if s.retainAll {
		return
	}
	names, err := s.b.List()
	if err != nil {
		return
	}
	ckptSeqs := listSeqs(names, checkpointPrefix, checkpointSuffix)
	keepFrom := 0
	if len(ckptSeqs) > 2 {
		keepFrom = len(ckptSeqs) - 2
	}
	for _, seq := range ckptSeqs[:keepFrom] {
		if s.b.Remove(checkpointName(seq)) == nil {
			s.obs.prunedFiles.Inc()
		}
	}
	// The recovery floor is the oldest checkpoint still on disk: every
	// record past it must stay replayable.
	floor := newSeq
	if len(ckptSeqs) > keepFrom {
		floor = ckptSeqs[keepFrom]
	}
	segSeqs := listSeqs(names, segmentPrefix, segmentSuffix)
	for i, first := range segSeqs {
		if i+1 < len(segSeqs) && segSeqs[i+1] <= floor+1 {
			if s.b.Remove(segmentName(first)) == nil {
				s.obs.prunedFiles.Inc()
			}
		}
	}
}

// Close syncs outstanding records, closes the active segment, and
// releases the directory lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if s.w != nil {
		if cerr := s.w.close(); err == nil && cerr != nil {
			err = cerr
		}
		s.w = nil
	}
	if rerr := s.release(); err == nil {
		err = rerr
	}
	return err
}
