package store

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// observer bundles the store's metrics and tracer so the hot paths touch
// pre-resolved metric pointers instead of registry lookups.
type observer struct {
	appends             *metrics.Counter
	appendErrors        *metrics.Counter
	walBytes            *metrics.Counter
	syncs               *metrics.Counter
	syncErrors          *metrics.Counter
	checkpoints         *metrics.Counter
	checkpointErrors    *metrics.Counter
	checkpointFallbacks *metrics.Counter
	recoveryRecords     *metrics.Counter
	tornTails           *metrics.Counter
	prunedFiles         *metrics.Counter
	checkpointSeconds   *metrics.Histogram
	recoverySeconds     *metrics.Histogram
	tracer              *trace.Tracer
}

func newObserver(reg *metrics.Registry, tracer *trace.Tracer) *observer {
	if reg == nil {
		reg = metrics.Default()
	}
	return &observer{
		appends: reg.Counter("ph_store_wal_appends_total",
			"WAL records appended."),
		appendErrors: reg.Counter("ph_store_wal_append_errors_total",
			"WAL appends that failed (segment rotated on next append)."),
		walBytes: reg.Counter("ph_store_wal_bytes_total",
			"Framed bytes handed to the WAL, header included."),
		syncs: reg.Counter("ph_store_wal_syncs_total",
			"Successful WAL fsync group commits."),
		syncErrors: reg.Counter("ph_store_wal_sync_errors_total",
			"WAL fsyncs that failed (segment rotated on next append)."),
		checkpoints: reg.Counter("ph_store_checkpoints_total",
			"Checkpoints published."),
		checkpointErrors: reg.Counter("ph_store_checkpoint_errors_total",
			"Checkpoint writes that failed."),
		checkpointFallbacks: reg.Counter("ph_store_checkpoint_fallbacks_total",
			"Checkpoints skipped at recovery because they failed verification."),
		recoveryRecords: reg.Counter("ph_store_recovery_records_total",
			"WAL records replayed past the checkpoint at recovery."),
		tornTails: reg.Counter("ph_store_torn_tails_total",
			"WAL segments that ended in a torn write."),
		prunedFiles: reg.Counter("ph_store_pruned_files_total",
			"Checkpoint and WAL segment files retired by compaction."),
		checkpointSeconds: reg.Histogram("ph_store_checkpoint_seconds",
			"Checkpoint publish latency.", nil),
		recoverySeconds: reg.Histogram("ph_store_recovery_seconds",
			"Recovery (checkpoint load + WAL replay) latency.", nil),
		tracer: tracer,
	}
}
