package store

import (
	"reflect"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func TestCaptureCodecRoundTrip(t *testing.T) {
	cases := map[string]*CaptureRecord{
		"minimal": {Seq: 1},
		"nil accounts": {
			Seq:   7,
			Tweet: socialnet.Tweet{ID: 42, Text: "hi", Spam: true},
		},
		"full": {
			Seq: 1 << 40,
			Tweet: socialnet.Tweet{
				ID:         -3, // negative ids must survive zig-zag
				AuthorID:   9,
				CreatedAt:  time.Date(2019, 6, 1, 12, 30, 0, 999, time.UTC),
				Kind:       socialnet.KindRetweet,
				Source:     socialnet.SourceThirdParty,
				Text:       "免费 free £€ \x00 bytes",
				Hashtags:   []string{"a", "", "c"},
				Mentions:   []socialnet.AccountID{1, -2, 3},
				URLs:       []string{"http://x"},
				Topic:      "t",
				Spam:       true,
				CampaignID: 12,
			},
			Sender: &socialnet.Account{
				ID: 9, ScreenName: "s", Verified: true,
				SuspendedAt:   time.Date(2020, 1, 2, 3, 4, 5, 6, time.UTC),
				Suspended:     true,
				TweetsPerHour: 3.25, MentionRate: -0.5,
			},
			Receiver: nil,
			Groups:   []int{0, 5, 17},
		},
	}
	for name, rec := range cases {
		t.Run(name, func(t *testing.T) {
			enc := EncodeCapture(nil, rec)
			got, err := DecodeCapture(enc)
			if err != nil {
				t.Fatalf("DecodeCapture: %v", err)
			}
			if !reflect.DeepEqual(got, rec) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
			}
		})
	}
}

func TestDecodeCaptureRejectsTruncation(t *testing.T) {
	rec := &CaptureRecord{Seq: 3, Tweet: socialnet.Tweet{
		ID: 1, Text: "spam", Hashtags: []string{"x"},
	}, Groups: []int{1}}
	enc := EncodeCapture(nil, rec)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeCapture(enc[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(enc))
		}
	}
	if _, err := DecodeCapture(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestZeroTimeRoundTrip(t *testing.T) {
	rec := &CaptureRecord{Sender: &socialnet.Account{ID: 1}}
	got, err := DecodeCapture(EncodeCapture(nil, rec))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tweet.CreatedAt.IsZero() || !got.Sender.CreatedAt.IsZero() {
		t.Fatalf("zero times did not survive: %v / %v",
			got.Tweet.CreatedAt, got.Sender.CreatedAt)
	}
}
