package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// CaptureRecord is the WAL form of one monitored capture: the tweet, the
// sender/receiver profile snapshots frozen at match time, and the selector
// groups the capture was attributed to. The feature vector is deliberately
// absent — recovery re-runs extraction in stream order, which both
// rebuilds the extractor's behavioural state for post-recovery captures
// and reproduces the vector bit for bit.
type CaptureRecord struct {
	// Seq is the record's position in the capture stream (1-based,
	// assigned by Store.Append).
	Seq uint64
	// Tweet is the captured status update.
	Tweet socialnet.Tweet
	// Sender/Receiver are the profile snapshots taken on the stream
	// goroutine at match time (nil when the lookup missed).
	Sender   *socialnet.Account
	Receiver *socialnet.Account
	// Groups are the monitor group indices the capture counted toward.
	Groups []int
	// Src is the ingest-source id that delivered the tweet ("twitter",
	// "reddit"); empty for records written before the ingestion layer
	// existed. It rides as an optional trailing field, so old logs (and
	// the fuzz corpus) still decode.
	Src string
}

// Capture records use a hand-rolled binary codec instead of gob: appends
// sit on the streaming hot path (gob reflects per value), the format must
// be stable across processes for crash recovery, and a fixed byte-level
// layout is what FuzzWALRecord pins — any byte prefix either decodes to
// the encoded records or fails cleanly at a record boundary.
//
// Layout (all integers little-endian or uvarint, strings and slices
// length-prefixed with uvarint):
//
//	uvarint seq
//	tweet:   id authorID createdAt(unixNano) kind source text topic
//	         hashtags urls mentions spam campaignID
//	sender:  presence byte, then account fields (see appendAccount)
//	receiver: likewise
//	groups:  uvarint count, uvarint indices
var errShortRecord = errors.New("store: capture record truncated")

// appendUvarint appends v in unsigned varint form.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendVarint appends v in zig-zag varint form.
func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		// time.Time's zero value is outside the UnixNano range; flag it
		// so decode restores a true zero rather than year 1754.
		return appendVarint(append(b, 0), 0)
	}
	return appendVarint(append(b, 1), t.UnixNano())
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// appendAccount encodes a profile snapshot's exported fields plus the
// last-post timestamp (it feeds the mention-gap feature, so replayed
// extraction needs it — same reason the proc shard wire carries it). The
// remaining engine-side unexported fields (activity bookkeeping, spam
// budget) are outside the snapshot contract, exactly as in CaptureStore's
// gob spill.
func appendAccount(b []byte, a *socialnet.Account) []byte {
	if a == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendVarint(b, int64(a.ID))
	b = appendString(b, a.ScreenName)
	b = appendString(b, a.Name)
	b = appendString(b, a.Description)
	b = appendTime(b, a.CreatedAt)
	b = appendVarint(b, int64(a.FriendsCount))
	b = appendVarint(b, int64(a.FollowersCount))
	b = appendVarint(b, int64(a.ListedCount))
	b = appendVarint(b, int64(a.FavouritesCount))
	b = appendVarint(b, int64(a.StatusesCount))
	b = appendBool(b, a.Verified)
	b = appendBool(b, a.DefaultProfileImage)
	b = appendVarint(b, a.ProfileImageSeed)
	b = binary.LittleEndian.AppendUint64(b, a.ProfileImageHash.Hi)
	b = binary.LittleEndian.AppendUint64(b, a.ProfileImageHash.Lo)
	b = appendVarint(b, int64(a.Kind))
	b = appendVarint(b, int64(a.CampaignID))
	b = appendBool(b, a.Suspended)
	b = appendTime(b, a.SuspendedAt)
	b = appendVarint(b, int64(a.HashtagCategory))
	b = appendVarint(b, int64(a.TrendAffinity))
	b = appendFloat(b, a.TweetsPerHour)
	b = appendFloat(b, a.MentionRate)
	b = appendVarint(b, int64(a.PreferredSource))
	b = appendTime(b, a.LastPostAt())
	return b
}

// EncodeCapture appends rec's payload encoding to buf and returns it.
func EncodeCapture(buf []byte, rec *CaptureRecord) []byte {
	buf = appendUvarint(buf, rec.Seq)
	t := &rec.Tweet
	buf = appendVarint(buf, int64(t.ID))
	buf = appendVarint(buf, int64(t.AuthorID))
	buf = appendTime(buf, t.CreatedAt)
	buf = appendVarint(buf, int64(t.Kind))
	buf = appendVarint(buf, int64(t.Source))
	buf = appendString(buf, t.Text)
	buf = appendString(buf, t.Topic)
	buf = appendStrings(buf, t.Hashtags)
	buf = appendStrings(buf, t.URLs)
	buf = appendUvarint(buf, uint64(len(t.Mentions)))
	for _, m := range t.Mentions {
		buf = appendVarint(buf, int64(m))
	}
	buf = appendBool(buf, t.Spam)
	buf = appendVarint(buf, int64(t.CampaignID))
	buf = appendAccount(buf, rec.Sender)
	buf = appendAccount(buf, rec.Receiver)
	buf = appendUvarint(buf, uint64(len(rec.Groups)))
	for _, g := range rec.Groups {
		buf = appendUvarint(buf, uint64(g))
	}
	if rec.Src != "" {
		// Optional trailing field: absent bytes decode to "", so records
		// written by older builds remain readable.
		buf = appendString(buf, rec.Src)
	}
	return buf
}

// decoder walks a payload with explicit bounds checks; every read either
// succeeds or flags err, after which all reads are no-ops. Decode never
// panics on corrupt input — the property FuzzWALRecord hammers on.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.err = errShortRecord
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) strings() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// A count can't exceed the remaining bytes (every element costs at
	// least one); reject early instead of allocating a corrupt length.
	if n > uint64(len(d.b)) {
		d.err = errShortRecord
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.err = errShortRecord
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.err = fmt.Errorf("store: invalid bool byte %d", v)
		return false
	}
	return v == 1
}

func (d *decoder) time() time.Time {
	set := d.bool()
	ns := d.varint()
	if d.err != nil || !set {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = errShortRecord
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = errShortRecord
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) account() *socialnet.Account {
	present := d.bool()
	if d.err != nil || !present {
		return nil
	}
	a := &socialnet.Account{}
	a.ID = socialnet.AccountID(d.varint())
	a.ScreenName = d.str()
	a.Name = d.str()
	a.Description = d.str()
	a.CreatedAt = d.time()
	a.FriendsCount = int(d.varint())
	a.FollowersCount = int(d.varint())
	a.ListedCount = int(d.varint())
	a.FavouritesCount = int(d.varint())
	a.StatusesCount = int(d.varint())
	a.Verified = d.bool()
	a.DefaultProfileImage = d.bool()
	a.ProfileImageSeed = d.varint()
	a.ProfileImageHash = imagehash.Hash{Hi: d.u64(), Lo: d.u64()}
	a.Kind = socialnet.AccountKind(d.varint())
	a.CampaignID = int(d.varint())
	a.Suspended = d.bool()
	a.SuspendedAt = d.time()
	a.HashtagCategory = socialnet.HashtagCategory(d.varint())
	a.TrendAffinity = socialnet.TrendState(d.varint())
	a.TweetsPerHour = d.float()
	a.MentionRate = d.float()
	a.PreferredSource = socialnet.Source(d.varint())
	a.SetLastPostAt(d.time())
	if d.err != nil {
		return nil
	}
	return a
}

// DecodeCapture decodes one capture payload. Corrupt or truncated input
// returns an error, never a panic and never a silently partial record:
// trailing garbage after a structurally complete record is rejected too.
func DecodeCapture(payload []byte) (*CaptureRecord, error) {
	d := &decoder{b: payload}
	rec := &CaptureRecord{}
	rec.Seq = d.uvarint()
	t := &rec.Tweet
	t.ID = socialnet.TweetID(d.varint())
	t.AuthorID = socialnet.AccountID(d.varint())
	t.CreatedAt = d.time()
	t.Kind = socialnet.TweetKind(d.varint())
	t.Source = socialnet.Source(d.varint())
	t.Text = d.str()
	t.Topic = d.str()
	t.Hashtags = d.strings()
	t.URLs = d.strings()
	nm := d.uvarint()
	if d.err == nil && nm > uint64(len(d.b)) {
		d.err = errShortRecord
	}
	if d.err == nil && nm > 0 {
		t.Mentions = make([]socialnet.AccountID, 0, nm)
		for i := uint64(0); i < nm && d.err == nil; i++ {
			t.Mentions = append(t.Mentions, socialnet.AccountID(d.varint()))
		}
	}
	t.Spam = d.bool()
	t.CampaignID = int(d.varint())
	rec.Sender = d.account()
	rec.Receiver = d.account()
	ng := d.uvarint()
	if d.err == nil && ng > uint64(len(d.b)) {
		d.err = errShortRecord
	}
	if d.err == nil && ng > 0 {
		rec.Groups = make([]int, 0, ng)
		for i := uint64(0); i < ng && d.err == nil; i++ {
			rec.Groups = append(rec.Groups, int(d.uvarint()))
		}
	}
	if d.err == nil && len(d.b) != 0 {
		// Optional trailing source id. The encoder writes it only when
		// non-empty, so an empty decode here is stray bytes, not a field.
		if rec.Src = d.str(); d.err == nil && rec.Src == "" {
			return nil, errors.New("store: empty trailing source id")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after capture record", len(d.b))
	}
	return rec, nil
}
