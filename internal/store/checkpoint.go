package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Checkpoint is a consistent cut of the pipeline's derived state at one
// capture sequence number. The store treats component payloads as opaque
// blobs — the sniffer fills them with the capture ring, the label-store
// cluster indices, the extractor behaviour state, the per-group capture
// statistics, and the online detector's labeled window — so new
// components ride along without a store format change.
//
// Consistency contract: the writer must be quiescent across every
// component when it cuts the checkpoint (the sniffer drains the stage
// graph first), so a single Seq covers all components and recovery
// replays exactly the WAL records with Seq greater than it.
type Checkpoint struct {
	// Seq is the last capture sequence the checkpoint covers.
	Seq uint64
	// TweetWatermark is the stream position (engine tweet id) of the
	// last covered capture; a recovering sniffer skips stream tweets at
	// or below max(checkpoint, replay) watermark to resume exactly-once.
	TweetWatermark int64
	// Components maps a component name to its serialized state.
	Components map[string][]byte
}

// Checkpoint files wrap the gob payload in the same CRC framing the WAL
// uses (magic, length, CRC-32C), so a half-written or bit-flipped
// checkpoint is detected and recovery falls back to the previous one
// instead of silently loading garbage.
const checkpointMagic = "PHCKP001"

// writeCheckpointFile atomically publishes ck: encode to a temp file,
// sync, close, then rename onto the final name.
func writeCheckpointFile(b Backend, ck *Checkpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("store: encode checkpoint: %w", err)
	}
	name := checkpointName(ck.Seq)
	tmp := name + tmpSuffix
	f, err := b.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create checkpoint: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:8], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload.Bytes(), castagnoli))
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(payload.Bytes())
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = b.Remove(tmp)
		return fmt.Errorf("store: write checkpoint: %w", werr)
	}
	if err := b.Rename(tmp, name); err != nil {
		_ = b.Remove(tmp)
		return fmt.Errorf("store: publish checkpoint: %w", err)
	}
	return nil
}

// readCheckpointFile loads and verifies one checkpoint file.
func readCheckpointFile(b Backend, seq uint64) (*Checkpoint, error) {
	f, err := b.Open(checkpointName(seq))
	if err != nil {
		return nil, fmt.Errorf("store: open checkpoint %d: %w", seq, err)
	}
	defer func() { _ = f.Close() }()
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: checkpoint %d header: %w", seq, err)
	}
	if string(hdr[:8]) != checkpointMagic {
		return nil, fmt.Errorf("store: checkpoint %d bad magic", seq)
	}
	length := binary.LittleEndian.Uint32(hdr[8:12])
	wantCRC := binary.LittleEndian.Uint32(hdr[12:16])
	if length > MaxRecordSize {
		return nil, fmt.Errorf("store: checkpoint %d implausible length %d", seq, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("store: checkpoint %d payload: %w", seq, err)
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, fmt.Errorf("store: checkpoint %d checksum mismatch", seq)
	}
	ck := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(ck); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint %d: %w", seq, err)
	}
	if ck.Seq != seq {
		return nil, fmt.Errorf("store: checkpoint file %d claims seq %d", seq, ck.Seq)
	}
	return ck, nil
}
