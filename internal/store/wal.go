package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"
)

// WAL file format. Every segment starts with an 8-byte magic; each record
// is framed as
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C over [type byte ‖ payload]
//	uint8   record type
//	payload
//
// A record is valid only when the frame is complete and the checksum
// matches; a truncated or checksum-failing frame at a segment's tail is a
// torn write — the clean end of that segment's durable prefix. Appends
// after any write or sync error rotate to a fresh segment, so a torn
// frame can only ever sit at a segment tail, never in front of later
// records of the same file.
const (
	// The magic names the record format version; 002 added the account
	// snapshots' last-post timestamp (replayed extraction needs it for
	// the mention-gap feature).
	walMagic = "PHWAL002"
	// frameOverhead is the per-record framing cost in bytes.
	frameOverhead = 4 + 4 + 1
	// MaxRecordSize bounds a single record's payload; decode rejects
	// larger length prefixes outright instead of allocating them (a
	// corrupt length field would otherwise ask for gigabytes).
	MaxRecordSize = 16 << 20
)

// Record types multiplexed over one WAL.
const (
	// RecordCapture is one monitored capture (CaptureRecord codec).
	RecordCapture byte = 1
	// RecordSimHours is a simulated-time advance (uvarint hour count) —
	// twitterd's journal.
	RecordSimHours byte = 2
	// RecordMeta is the store's configuration fingerprint, written once
	// as the first record of the first segment.
	RecordMeta byte = 3
	// RecordRotation is one hourly node-set rotation: the per-group node
	// counts the monitor selected, persisted so a WAL replay can
	// re-accrue the same node hours (RotationRecord codec).
	RecordRotation byte = 4
	// RecordProfiles is the end-of-run profile epilogue: the final live
	// profiles of every account a capture referenced, persisted so a
	// replay labels suspensions against end-of-run state.
	RecordProfiles byte = 5
)

// ErrTornTail reports that a segment ended in a torn (incomplete or
// checksum-failing) frame. Records before the tear decoded cleanly.
var ErrTornTail = errors.New("store: torn record at segment tail")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record to buf and returns the result.
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// segmentWriter appends framed records to one backend file through a
// buffered writer. It is not safe for concurrent use.
type segmentWriter struct {
	name string
	f    WriteFile
	bw   *bufio.Writer
	// broken latches after any write or sync error: the segment's tail
	// state is unknown, so the writer refuses further appends and the
	// log rotates to a fresh segment.
	broken bool
	// bytes counts everything handed to the buffered writer, header
	// included.
	bytes int64
}

func newSegmentWriter(b Backend, name string) (*segmentWriter, error) {
	f, err := b.Create(name)
	if err != nil {
		return nil, fmt.Errorf("store: create segment %s: %w", name, err)
	}
	// The buffer bounds write() syscalls, not durability — that's sync's
	// job — so it is sized generously: under group commit the kernel sees
	// one large write per flush instead of hundreds of frame-sized ones.
	w := &segmentWriter{name: name, f: f, bw: bufio.NewWriterSize(f, 1<<20)}
	if _, err := w.bw.WriteString(walMagic); err != nil {
		w.broken = true
		_ = f.Close()
		return nil, fmt.Errorf("store: write segment header: %w", err)
	}
	w.bytes = int64(len(walMagic))
	return w, nil
}

// append writes one framed record into the buffer (durable after sync).
func (w *segmentWriter) append(frame []byte) error {
	if w.broken {
		return errors.New("store: segment writer broken by earlier error")
	}
	if _, err := w.bw.Write(frame); err != nil {
		w.broken = true
		return fmt.Errorf("store: append to %s: %w", w.name, err)
	}
	w.bytes += int64(len(frame))
	return nil
}

// sync flushes the buffer and fsyncs the file.
func (w *segmentWriter) sync() error {
	if w.broken {
		return errors.New("store: segment writer broken by earlier error")
	}
	if err := w.bw.Flush(); err != nil {
		w.broken = true
		return fmt.Errorf("store: flush %s: %w", w.name, err)
	}
	if err := w.f.Sync(); err != nil {
		w.broken = true
		return fmt.Errorf("store: sync %s: %w", w.name, err)
	}
	return nil
}

// close flushes (best effort when already broken) and closes the file.
func (w *segmentWriter) close() error {
	var flushErr error
	if !w.broken {
		flushErr = w.bw.Flush()
	}
	closeErr := w.f.Close()
	if flushErr != nil {
		return fmt.Errorf("store: flush %s: %w", w.name, flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("store: close %s: %w", w.name, closeErr)
	}
	return nil
}

// readSegment streams every record of one segment to fn in order. It
// returns ErrTornTail when the segment ends mid-frame or with a checksum
// mismatch (records before the tear were delivered), and a hard error for
// anything else — an unreadable header, a record claiming more than
// MaxRecordSize, or fn failing. The reader tolerates arbitrarily short
// reads from the backend.
func readSegment(r io.Reader, fn func(typ byte, payload []byte) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			// A crash can leave a segment that was created but whose
			// buffered header never reached the backend (or only a prefix
			// did): an empty/short file is a torn artifact, not corruption.
			return ErrTornTail
		}
		return fmt.Errorf("store: read segment header: %w", err)
	}
	if string(magic[:]) != walMagic {
		return fmt.Errorf("store: bad segment magic %q", magic[:])
	}
	var hdr [frameOverhead]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end between frames
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return ErrTornTail // frame header cut mid-write
			}
			return fmt.Errorf("store: read frame header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		typ := hdr[8]
		if length > MaxRecordSize {
			// A length this absurd is frame corruption, not a large
			// record; treat like a tear so recovery stops cleanly.
			return ErrTornTail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return ErrTornTail // payload cut mid-write
			}
			return fmt.Errorf("store: read record payload: %w", err)
		}
		crc := crc32.Update(0, castagnoli, []byte{typ})
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != wantCRC {
			return ErrTornTail
		}
		if err := fn(typ, payload); err != nil {
			return err
		}
	}
}

// Segment and checkpoint file naming. Segments carry the sequence number
// of the first record they may contain; checkpoints carry the sequence
// they were cut at. Fixed-width decimal keeps lexicographic order equal
// to numeric order.
const (
	segmentPrefix    = "wal-"
	segmentSuffix    = ".log"
	checkpointPrefix = "ckpt-"
	checkpointSuffix = ".ckpt"
	tmpSuffix        = ".tmp"
)

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, firstSeq, segmentSuffix)
}

func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", checkpointPrefix, seq, checkpointSuffix)
}

// parseSeqName extracts the sequence number from a segment or checkpoint
// file name, reporting ok=false for foreign files.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	var seq uint64
	for i := 0; i < len(mid); i++ {
		c := mid[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// listSeqs returns the sequence numbers parsed from names matching
// prefix/suffix, ascending.
func listSeqs(names []string, prefix, suffix string) []uint64 {
	var seqs []uint64
	for _, n := range names {
		if seq, ok := parseSeqName(n, prefix, suffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}
