package label

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TestStoreSnapshotRestoreResumesStream is the checkpoint-equivalence
// property: feed half the stream, serialize, restore into a FRESH store,
// feed the rest, and the final Snapshot must equal the full-batch oracle —
// i.e. a crash between the halves is invisible.
func TestStoreSnapshotRestoreResumesStream(t *testing.T) {
	corpus, w := collectCorpus(t, 8)
	half := len(corpus.Tweets) / 2
	prefix := NewCorpus(corpus.Tweets[:half], func(id socialnet.AccountID) *socialnet.Account {
		return corpus.Users[id]
	})

	st := NewStore(DefaultConfig())
	feedStore(st, prefix, 13)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewStore(DefaultConfig())
	resolve := func(id socialnet.AccountID) *socialnet.Account { return corpus.Users[id] }
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes()), resolve); err != nil {
		t.Fatal(err)
	}
	tweets, users := restored.Len()
	wantTweets, wantUsers := st.Len()
	if tweets != wantTweets || users != wantUsers {
		t.Fatalf("restored Len = %d/%d, want %d/%d", tweets, users, wantTweets, wantUsers)
	}

	rest := NewCorpus(corpus.Tweets[half:], func(id socialnet.AccountID) *socialnet.Account {
		return corpus.Users[id]
	})
	feedStore(restored, rest, 13)
	got := restored.Snapshot(NewNoisyOracle(w, 0.02, 7))
	want := NewPipeline(DefaultConfig()).Run(corpus, NewNoisyOracle(w, 0.02, 7))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("post-restore snapshot diverged from the full batch oracle")
	}
}

// TestStoreSnapshotFrozenFallback: with no resolver the restored store
// labels against the frozen add-time profiles — still a valid corpus.
func TestStoreSnapshotFrozenFallback(t *testing.T) {
	st := NewStore(DefaultConfig())
	a := &socialnet.Account{ID: 1, ScreenName: "alice", Description: "hello there friends"}
	st.Add(&socialnet.Tweet{ID: 1, AuthorID: 1, Text: "lunch was nice today"}, a, a)

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(DefaultConfig())
	if err := restored.ReadSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, users := restored.Len(); users != 1 {
		t.Fatalf("restored %d users, want 1", users)
	}
	if r := restored.Snapshot(nil); r == nil {
		t.Fatal("nil result from restored store")
	}
}

// TestStoreSnapshotResolverRebindsAtSnapshotTime reproduces the recovery
// scenario that motivates SetResolver: the author was spawned mid-run, so
// at restore/replay time the re-seeded world cannot resolve the id and
// the store holds only the frozen, not-yet-suspended capture-time
// profile. By labeling time the re-run simulation has recreated — and
// suspended — the account; Snapshot must read that live state, exactly as
// an uninterrupted run (whose users map holds live pointers) would.
func TestStoreSnapshotResolverRebindsAtSnapshotTime(t *testing.T) {
	st := NewStore(DefaultConfig())
	frozen := &socialnet.Account{ID: 9, ScreenName: "spawned_sp4mm3r",
		Description: "buy cheap stuff now", DefaultProfileImage: true}
	st.Add(&socialnet.Tweet{ID: 1, AuthorID: 9, Text: "amazing deal follow the link"}, frozen, frozen)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore-time resolution misses: the account does not exist yet.
	restored := NewStore(DefaultConfig())
	if err := restored.ReadSnapshot(&buf, func(socialnet.AccountID) *socialnet.Account { return nil }); err != nil {
		t.Fatal(err)
	}
	// WAL replay likewise binds a later spawned author to its frozen
	// profile (the live lookup misses during replay).
	frozen2 := &socialnet.Account{ID: 11, ScreenName: "late_arrival",
		Description: "totally organic account", DefaultProfileImage: true}
	restored.Add(&socialnet.Tweet{ID: 2, AuthorID: 11, Text: "another unrelated tweet"}, frozen2, frozen2)

	// By Snapshot time the simulation has recreated both accounts and
	// suspended the first.
	live := map[socialnet.AccountID]*socialnet.Account{
		9:  {ID: 9, ScreenName: "spawned_sp4mm3r", Suspended: true},
		11: {ID: 11, ScreenName: "late_arrival"},
	}
	restored.SetResolver(func(id socialnet.AccountID) *socialnet.Account { return live[id] })

	r := restored.Snapshot(nil)
	if r.Spammers[9] != MethodSuspended {
		t.Fatalf("suspended live author labeled %v, want MethodSuspended", r.Spammers[9])
	}
	if _, ok := r.Spammers[11]; ok {
		t.Fatal("unsuspended author labeled spammer")
	}
}

// TestStoreSnapshotRejectsCorruption: decode and validation failures leave
// the store untouched and report an error.
func TestStoreSnapshotRejectsCorruption(t *testing.T) {
	st := NewStore(DefaultConfig())
	a := &socialnet.Account{ID: 1, ScreenName: "alice"}
	st.Add(&socialnet.Tweet{ID: 1, AuthorID: 1, Text: "some tweet text"}, a, a)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore(DefaultConfig())
	if err := fresh.ReadSnapshot(bytes.NewReader([]byte("garbage")), nil); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if err := fresh.ReadSnapshot(bytes.NewReader(truncated), nil); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if tweets, users := fresh.Len(); tweets != 0 || users != 0 {
		t.Fatalf("failed restore mutated store: %d/%d", tweets, users)
	}
}
