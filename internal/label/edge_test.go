package label

import (
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func TestPipelineEmptyCorpus(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	c := &Corpus{Users: map[socialnet.AccountID]*socialnet.Account{}}
	r := p.Run(c, nil)
	if r.TotalSpams() != 0 || r.TotalSpammers() != 0 {
		t.Fatal("empty corpus produced labels")
	}
	counts := r.Counts()
	for _, mc := range counts {
		if mc.Spams != 0 || mc.Spammers != 0 {
			t.Fatal("empty corpus has non-zero method counts")
		}
	}
}

func TestNewCorpusSkipsUnknownAuthors(t *testing.T) {
	tweets := []*socialnet.Tweet{
		{ID: 1, AuthorID: 1},
		{ID: 2, AuthorID: 2},
	}
	known := map[socialnet.AccountID]*socialnet.Account{
		1: {ID: 1},
	}
	c := NewCorpus(tweets, func(id socialnet.AccountID) *socialnet.Account {
		return known[id]
	})
	if len(c.Users) != 1 {
		t.Fatalf("corpus users = %d, want 1 (unknown author skipped)", len(c.Users))
	}
	if len(c.Tweets) != 2 {
		t.Fatal("tweets dropped")
	}
}

func TestClassCount(t *testing.T) {
	tests := []struct {
		seq  string
		want int
	}{
		{seq: "l3", want: 1},
		{seq: "l3N2", want: 2},
		{seq: "U1l2P1l3N2", want: 4},
		{seq: "", want: 0},
	}
	for _, tt := range tests {
		if got := classCount(tt.seq); got != tt.want {
			t.Errorf("classCount(%q) = %d, want %d", tt.seq, got, tt.want)
		}
	}
}

func TestPipelineDeterministicAcrossRuns(t *testing.T) {
	corpus, w := collectCorpus(t, 6)
	run := func() (int, int) {
		p := NewPipeline(DefaultConfig())
		r := p.Run(corpus, NewNoisyOracle(w, 0.02, 7))
		return r.TotalSpams(), r.TotalSpammers()
	}
	s1, u1 := run()
	s2, u2 := run()
	if s1 != s2 || u1 != u2 {
		t.Fatalf("pipeline nondeterministic: (%d,%d) vs (%d,%d)", s1, u1, s2, u2)
	}
}

func TestClusterTextsEmpty(t *testing.T) {
	if got := clusterTexts(nil, 0.8, 1, 0); got != nil {
		t.Fatalf("clusterTexts(nil) = %v", got)
	}
}

func TestPerfectOracle(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := NewPerfectOracle(w)
	if !o.TweetIsSpam(&socialnet.Tweet{Spam: true}) {
		t.Fatal("perfect oracle wrong on spam tweet")
	}
	if o.TweetIsSpam(&socialnet.Tweet{}) {
		t.Fatal("perfect oracle wrong on ham tweet")
	}
	var spammer, normal socialnet.AccountID
	for _, a := range w.Accounts() {
		if a.Kind == socialnet.KindSpammer && spammer == 0 {
			spammer = a.ID
		}
		if a.Kind == socialnet.KindNormal && normal == 0 {
			normal = a.ID
		}
	}
	if !o.UserIsSpammer(spammer) || o.UserIsSpammer(normal) {
		t.Fatal("perfect oracle wrong on users")
	}
	if o.UserIsSpammer(999999) {
		t.Fatal("perfect oracle flagged unknown user")
	}
}
