package label

import "github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"

// pipelineInstruments times the labeling pipeline's clustering passes
// (DESIGN.md §9) — the dominant cost of the ground-truth stage.
type pipelineInstruments struct {
	clusterSecs *metrics.HistogramVec
}

func newPipelineInstruments(r *metrics.Registry) *pipelineInstruments {
	if r == nil {
		r = metrics.Default()
	}
	return &pipelineInstruments{
		clusterSecs: r.HistogramVec("ph_label_cluster_seconds",
			"Clustering pass wall time, by pass (image, name, description, tweets).",
			nil, "pass"),
	}
}
