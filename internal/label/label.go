// Package label implements the paper's ground-truth labeling pipeline
// (§IV-B): suspended-account checking, clustering-based labeling (profile
// images via dHash, screen names via Σ-Seq character classes, user
// descriptions and tweet contents via MinHash), rule-based labeling, and a
// final manual-checking pass.
//
// The gated oracle of the real pipeline — Twitter's suspension list plus
// human annotators — is replaced by a simulated Oracle that reveals
// generative ground truth with a configurable error rate and budget
// (DESIGN.md §2). The algorithms in between are the paper's, unchanged.
package label

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/minhash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// Method identifies which pipeline stage produced a label (the rows of the
// paper's Table III).
type Method int

// Labeling methods.
const (
	MethodSuspended Method = iota + 1
	MethodClustering
	MethodRule
	MethodManual
)

// Methods lists the stages in pipeline order.
var Methods = []Method{MethodSuspended, MethodClustering, MethodRule, MethodManual}

func (m Method) String() string {
	switch m {
	case MethodSuspended:
		return "Suspended"
	case MethodClustering:
		return "Clustering"
	case MethodRule:
		return "Rule Based"
	case MethodManual:
		return "Human Labeling"
	default:
		return "unknown"
	}
}

// Corpus is the monitored data handed to the pipeline: collected tweets and
// the profiles of every involved user.
type Corpus struct {
	Tweets []*socialnet.Tweet
	Users  map[socialnet.AccountID]*socialnet.Account
}

// NewCorpus builds a corpus from tweets, resolving user profiles through
// lookup (nil profiles are skipped).
func NewCorpus(tweets []*socialnet.Tweet, lookup func(socialnet.AccountID) *socialnet.Account) *Corpus {
	c := &Corpus{
		Tweets: tweets,
		Users:  make(map[socialnet.AccountID]*socialnet.Account),
	}
	for _, t := range tweets {
		if _, ok := c.Users[t.AuthorID]; !ok {
			if a := lookup(t.AuthorID); a != nil {
				c.Users[t.AuthorID] = a
			}
		}
	}
	return c
}

// Oracle answers ground-truth queries during the manual-checking stage.
type Oracle interface {
	// TweetIsSpam reveals whether a tweet is spam.
	TweetIsSpam(t *socialnet.Tweet) bool
	// UserIsSpammer reveals whether an account is a spammer.
	UserIsSpammer(id socialnet.AccountID) bool
}

// Result holds the pipeline output: per-tweet and per-user labels with the
// method that produced them.
type Result struct {
	// SpamTweets and HamTweets map labeled tweets to their method.
	// Unlabeled tweets are treated as non-spam in the final dataset, as
	// in the paper.
	SpamTweets map[socialnet.TweetID]Method
	HamTweets  map[socialnet.TweetID]Method

	// Spammers and Benign map labeled users to their method.
	Spammers map[socialnet.AccountID]Method
	Benign   map[socialnet.AccountID]Method

	// ManualChecks counts oracle queries spent by the manual stage.
	ManualChecks int
}

// MethodCount is one Table III row: labels attributed to a method.
type MethodCount struct {
	Method   Method
	Spams    int
	Spammers int
}

// Counts aggregates Table III rows in pipeline order.
func (r *Result) Counts() []MethodCount {
	counts := make([]MethodCount, len(Methods))
	for i, m := range Methods {
		counts[i].Method = m
	}
	idx := func(m Method) int { return int(m) - 1 }
	for _, m := range r.SpamTweets {
		counts[idx(m)].Spams++
	}
	for _, m := range r.Spammers {
		counts[idx(m)].Spammers++
	}
	return counts
}

// TotalSpams returns the number of tweets labeled spam.
func (r *Result) TotalSpams() int { return len(r.SpamTweets) }

// TotalSpammers returns the number of users labeled spammer.
func (r *Result) TotalSpammers() int { return len(r.Spammers) }

// IsSpam reports the final label of a tweet (unlabeled ⇒ non-spam).
func (r *Result) IsSpam(id socialnet.TweetID) bool {
	_, ok := r.SpamTweets[id]
	return ok
}

// Config parameterizes the pipeline.
type Config struct {
	// Seed drives the manual stage's sampling.
	Seed int64

	// ImageHammingThreshold groups profile images (default 5, paper).
	ImageHammingThreshold int

	// NameGroupMin is the minimum Σ-Seq group size kept (default 5, paper).
	NameGroupMin int

	// DescSimilarity is the MinHash similarity above which two user
	// descriptions are considered identical (default 0.85).
	DescSimilarity float64

	// TweetSimilarity is the near-duplicate threshold for tweet contents
	// (default 0.7).
	TweetSimilarity float64

	// TweetWindow is the near-duplicate time window (default 24h, paper).
	TweetWindow time.Duration

	// MinTweetLen filters short tweets from duplicate checking
	// (default 20 chars, paper).
	MinTweetLen int

	// RepeatThreshold is the rule-based repetition cutoff: a normalized
	// text occurring at least this many times is repetitive (default 3).
	RepeatThreshold int

	// ManualBudget bounds oracle queries spent labeling *unlabeled*
	// tweets (the verification of already-labeled data is additional).
	// Zero means a tenth of the corpus.
	ManualBudget int

	// Workers bounds the clustering stage's worker pool; 0 resolves the
	// process default (PH_WORKERS or GOMAXPROCS). Labels are
	// bit-identical at any worker count.
	Workers int

	// Metrics receives the pipeline's pass timings; nil means
	// metrics.Default().
	Metrics *metrics.Registry

	// Tracer records one trace per Run with a span per labeling pass;
	// nil means trace.Default().
	Tracer *trace.Tracer
}

// DefaultConfig returns the paper's thresholds.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		ImageHammingThreshold: imagehash.DefaultThreshold,
		NameGroupMin:          5,
		DescSimilarity:        0.85,
		TweetSimilarity:       0.75,
		TweetWindow:           24 * time.Hour,
		MinTweetLen:           20,
		RepeatThreshold:       3,
	}
}

// Pipeline runs the four-stage labeling process.
type Pipeline struct {
	cfg    Config
	rng    *rand.Rand
	ins    *pipelineInstruments
	tracer *trace.Tracer
	// tr is the trace of the Run in progress (and, afterwards, of the
	// most recent Run); the cluster passes attach their spans to it.
	tr *trace.Trace
}

// withDefaults fills zero-value fields from DefaultConfig. NewPipeline and
// NewStore share it so the batch oracle and the incremental store always
// agree on thresholds.
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.ImageHammingThreshold <= 0 {
		cfg.ImageHammingThreshold = def.ImageHammingThreshold
	}
	if cfg.NameGroupMin <= 0 {
		cfg.NameGroupMin = def.NameGroupMin
	}
	if cfg.DescSimilarity <= 0 {
		cfg.DescSimilarity = def.DescSimilarity
	}
	if cfg.TweetSimilarity <= 0 {
		cfg.TweetSimilarity = def.TweetSimilarity
	}
	if cfg.TweetWindow <= 0 {
		cfg.TweetWindow = def.TweetWindow
	}
	if cfg.MinTweetLen <= 0 {
		cfg.MinTweetLen = def.MinTweetLen
	}
	if cfg.RepeatThreshold <= 0 {
		cfg.RepeatThreshold = def.RepeatThreshold
	}
	return cfg
}

// NewPipeline creates a pipeline with cfg (zero-value fields fall back to
// DefaultConfig values).
func NewPipeline(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Default()
	}
	return &Pipeline{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ins:    newPipelineInstruments(cfg.Metrics),
		tracer: tracer,
	}
}

// LastTrace returns the trace of the most recent Run (nil when tracing is
// off). Callers adopt its pass spans into the capture traces that fed the
// corpus.
func (p *Pipeline) LastTrace() *trace.Trace { return p.tr }

// Run labels the corpus: suspended accounts, clustering, rules, then
// manual checking against the oracle.
func (p *Pipeline) Run(c *Corpus, oracle Oracle) *Result {
	return p.run(c, oracle, func(c *Corpus) ([][]socialnet.AccountID, [][]*socialnet.Tweet) {
		// The user and tweet clusterings are independent of each other,
		// so they run concurrently; their deterministically ordered
		// output feeds the sequential propagation.
		var userGroups [][]socialnet.AccountID
		var tweetGroups [][]*socialnet.Tweet
		parallel.ForEach(2, p.cfg.Workers, func(i int) {
			if i == 0 {
				userGroups = p.clusterUsers(c)
			} else {
				tweetGroups = p.clusterTweets(c)
			}
		})
		return userGroups, tweetGroups
	})
}

// run is the stage skeleton shared by the batch path (Run, which clusters
// the corpus from scratch) and the incremental store (Store.Snapshot,
// which materializes groups from its persistent indices): suspended →
// cluster propagation → rules → manual, one trace span per pass. Both
// paths produce identical Results on the same stream because the cluster
// callbacks produce identical group lists (see DESIGN.md §12).
func (p *Pipeline) run(c *Corpus, oracle Oracle, cluster func(*Corpus) ([][]socialnet.AccountID, [][]*socialnet.Tweet)) *Result {
	r := &Result{
		SpamTweets: make(map[socialnet.TweetID]Method),
		HamTweets:  make(map[socialnet.TweetID]Method),
		Spammers:   make(map[socialnet.AccountID]Method),
		Benign:     make(map[socialnet.AccountID]Method),
	}
	p.tr = p.tracer.Start("label")
	if p.tr != nil {
		p.tr.SetAttr("tweets", strconv.Itoa(len(c.Tweets)))
		p.tr.SetAttr("users", strconv.Itoa(len(c.Users)))
	}
	defer trace.SetActive(p.tr)()
	pass := func(stage string, fn func()) {
		sp := p.tr.StartSpan(stage)
		fn()
		sp.End()
	}
	pass("label_suspended", func() { p.labelSuspended(c, r) })
	userGroups, tweetGroups := cluster(c)
	p.propagate(r, userGroups, tweetGroups)
	pass("label_rules", func() { p.labelRules(c, r) })
	pass("label_manual", func() { p.manualCheck(c, r, oracle) })
	p.tr.Finish()
	return r
}

// labelSuspended marks platform-suspended users as spammers and their
// tweets as spam. Suspensions are a noisy oracle (false suspensions exist);
// the manual stage cleans them later.
func (p *Pipeline) labelSuspended(c *Corpus, r *Result) {
	for id, u := range c.Users {
		if u.Suspended {
			r.Spammers[id] = MethodSuspended
		}
	}
	for _, t := range c.Tweets {
		if _, ok := r.Spammers[t.AuthorID]; ok {
			r.SpamTweets[t.ID] = MethodSuspended
		}
	}
}

// propagate spreads spammer labels through the user and tweet groups
// (paper §IV-B, clustering method) to a fixpoint, so the result is
// independent of group order: tweet groups feed user groups and back until
// nothing changes.
func (p *Pipeline) propagate(r *Result, userGroups [][]socialnet.AccountID, tweetGroups [][]*socialnet.Tweet) {
	for {
		changed := false
		for _, group := range userGroups {
			spammy := false
			for _, id := range group {
				if _, ok := r.Spammers[id]; ok {
					spammy = true
					break
				}
			}
			if !spammy {
				continue
			}
			for _, id := range group {
				if _, ok := r.Spammers[id]; !ok {
					r.Spammers[id] = MethodClustering
					changed = true
				}
			}
		}
		for _, group := range tweetGroups {
			spammy := false
			for _, t := range group {
				if _, isSpam := r.SpamTweets[t.ID]; isSpam {
					spammy = true
					break
				}
				if _, isSpammer := r.Spammers[t.AuthorID]; isSpammer {
					spammy = true
					break
				}
			}
			if !spammy {
				continue
			}
			for _, t := range group {
				if _, ok := r.SpamTweets[t.ID]; !ok {
					r.SpamTweets[t.ID] = MethodClustering
					changed = true
				}
				if _, ok := r.Spammers[t.AuthorID]; !ok {
					r.Spammers[t.AuthorID] = MethodClustering
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// corpusUserIDs returns the corpus users in first-appearance (stream)
// order: the order in which each author's first tweet occurs in
// c.Tweets. This ordering is deterministic regardless of map iteration
// order, and — critically — it is the insertion order the incremental
// label store sees when it is fed the same stream one tweet at a time, so
// the order-sensitive image Grouper partitions identically on both paths.
// Users present in c.Users but absent from c.Tweets (hand-built corpora)
// follow in ascending id order.
func corpusUserIDs(c *Corpus) []socialnet.AccountID {
	ids := make([]socialnet.AccountID, 0, len(c.Users))
	seen := make(map[socialnet.AccountID]struct{}, len(c.Users))
	for _, t := range c.Tweets {
		if _, dup := seen[t.AuthorID]; dup {
			continue
		}
		seen[t.AuthorID] = struct{}{}
		if _, ok := c.Users[t.AuthorID]; ok {
			ids = append(ids, t.AuthorID)
		}
	}
	if len(ids) < len(c.Users) {
		rest := make([]socialnet.AccountID, 0, len(c.Users)-len(ids))
		for id := range c.Users {
			if _, ok := seen[id]; !ok {
				rest = append(rest, id)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		ids = append(ids, rest...)
	}
	return ids
}

// clusterUsers returns user groups from the three profile clusterings.
// The image, screen-name, and description passes are mutually independent
// and run concurrently; their groups concatenate in a fixed pass order so
// the result is identical at any worker count.
func (p *Pipeline) clusterUsers(c *Corpus) [][]socialnet.AccountID {
	ids := corpusUserIDs(c)
	passes := make([][][]socialnet.AccountID, 3)
	parallel.ForEach(len(passes), p.cfg.Workers, func(pass int) {
		switch pass {
		case 0:
			passes[pass] = p.clusterByImage(c, ids)
		case 1:
			passes[pass] = p.clusterByName(c, ids)
		case 2:
			passes[pass] = p.clusterByDescription(c, ids)
		}
	})
	var groups [][]socialnet.AccountID
	for _, pass := range passes {
		groups = append(groups, pass...)
	}
	return groups
}

// clusterByImage groups profile images via dHash + Hamming threshold.
func (p *Pipeline) clusterByImage(c *Corpus, ids []socialnet.AccountID) [][]socialnet.AccountID {
	defer p.ins.clusterSecs.With("image").ObserveDuration(time.Now())
	defer p.tr.StartSpan("label_cluster_image").End()
	imgGrouper := imagehash.NewGrouper(p.cfg.ImageHammingThreshold)
	imgGrouper.SetWorkers(p.cfg.Workers)
	imgGroups := make(map[int][]socialnet.AccountID)
	var imgOrder []int
	for _, id := range ids {
		u := c.Users[id]
		if u.DefaultProfileImage {
			continue // default eggs carry no campaign signal
		}
		g := imgGrouper.Add(u.ProfileImageHash)
		if len(imgGroups[g]) == 0 {
			imgOrder = append(imgOrder, g)
		}
		imgGroups[g] = append(imgGroups[g], id)
	}
	var groups [][]socialnet.AccountID
	for _, gi := range imgOrder {
		if g := imgGroups[gi]; len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	return groups
}

// clusterByName groups screen-name Σ-Seq shapes with at least NameGroupMin
// members. Two hygiene rules keep the false-positive rate low (the paper's
// regex-learned patterns are similarly specific): a usable shape must mix
// at least two character classes, and a shape shared by a large fraction
// of the corpus carries no campaign signal.
func (p *Pipeline) clusterByName(c *Corpus, ids []socialnet.AccountID) [][]socialnet.AccountID {
	defer p.ins.clusterSecs.With("name").ObserveDuration(time.Now())
	defer p.tr.StartSpan("label_cluster_name").End()
	seqs := parallel.Map(len(ids), p.cfg.Workers, func(i int) string {
		return textutil.ClassSeqWithRunLengths(c.Users[ids[i]].ScreenName)
	})
	nameGroups := make(map[string][]socialnet.AccountID)
	var nameOrder []string
	for i, id := range ids {
		seq := seqs[i]
		if len(nameGroups[seq]) == 0 {
			nameOrder = append(nameOrder, seq)
		}
		nameGroups[seq] = append(nameGroups[seq], id)
	}
	maxNameGroup := len(c.Users) / 50
	if maxNameGroup < 2*p.cfg.NameGroupMin {
		maxNameGroup = 2 * p.cfg.NameGroupMin
	}
	var groups [][]socialnet.AccountID
	for _, seq := range nameOrder {
		g := nameGroups[seq]
		if len(g) < p.cfg.NameGroupMin || len(g) > maxNameGroup {
			continue
		}
		if classCount(seq) < 2 {
			continue
		}
		groups = append(groups, g)
	}
	return groups
}

// clusterByDescription groups near-duplicate descriptions via MinHash.
func (p *Pipeline) clusterByDescription(c *Corpus, ids []socialnet.AccountID) [][]socialnet.AccountID {
	defer p.ins.clusterSecs.With("description").ObserveDuration(time.Now())
	defer p.tr.StartSpan("label_cluster_description").End()
	norms := parallel.Map(len(ids), p.cfg.Workers, func(i int) string {
		return textutil.NormalizeDescription(c.Users[ids[i]].Description)
	})
	var descIDs []socialnet.AccountID
	var texts []string
	for i, id := range ids {
		if norms[i] == "" {
			continue
		}
		descIDs = append(descIDs, id)
		texts = append(texts, norms[i])
	}
	var groups [][]socialnet.AccountID
	for _, g := range clusterTexts(texts, p.cfg.DescSimilarity, p.cfg.Seed, p.cfg.Workers) {
		if len(g) < 2 {
			continue
		}
		group := make([]socialnet.AccountID, len(g))
		for i, idx := range g {
			group[i] = descIDs[idx]
		}
		groups = append(groups, group)
	}
	return groups
}

// clusterTweets returns near-duplicate tweet groups within the time window.
func (p *Pipeline) clusterTweets(c *Corpus) [][]*socialnet.Tweet {
	defer p.ins.clusterSecs.With("tweets").ObserveDuration(time.Now())
	defer p.tr.StartSpan("label_cluster_tweets").End()
	norms := parallel.Map(len(c.Tweets), p.cfg.Workers, func(i int) string {
		return textutil.NormalizeDescription(stripMentions(c.Tweets[i].Text))
	})
	var pool []*socialnet.Tweet
	var texts []string
	for i, t := range c.Tweets {
		if len(norms[i]) < p.cfg.MinTweetLen {
			continue
		}
		pool = append(pool, t)
		texts = append(texts, norms[i])
	}
	var groups [][]*socialnet.Tweet
	for _, g := range clusterTexts(texts, p.cfg.TweetSimilarity, p.cfg.Seed+1, p.cfg.Workers) {
		if len(g) < 2 {
			continue
		}
		members := make([]*socialnet.Tweet, len(g))
		for i, idx := range g {
			members[i] = pool[idx]
		}
		groups = append(groups, splitByWindow(members, p.cfg.TweetWindow)...)
	}
	return groups
}

// splitByWindow enforces the near-duplicate time window: it splits a
// candidate group into time buckets — merged in bucket first-appearance
// order so the group list is deterministic — and keeps buckets with at
// least two members.
func splitByWindow(members []*socialnet.Tweet, window time.Duration) [][]*socialnet.Tweet {
	byWindow := make(map[int64][]*socialnet.Tweet)
	var bucketOrder []int64
	for _, t := range members {
		bucket := t.CreatedAt.UnixNano() / int64(window)
		if len(byWindow[bucket]) == 0 {
			bucketOrder = append(bucketOrder, bucket)
		}
		byWindow[bucket] = append(byWindow[bucket], t)
	}
	var groups [][]*socialnet.Tweet
	for _, bucket := range bucketOrder {
		if tg := byWindow[bucket]; len(tg) >= 2 {
			groups = append(groups, tg)
		}
	}
	return groups
}

// lshBands/lshRows shape the MinHash banding index: 16 bands × 4 rows over
// a 64-permutation signature. clusterTexts (batch) and Store (incremental)
// must share them — the banding candidate sets define which pairs are even
// considered for similarity confirmation.
const (
	lshBands = 16
	lshRows  = 4
)

// newLSHScheme builds the seeded 64-permutation MinHash scheme both paths
// sign texts with.
func newLSHScheme(seed int64) *minhash.Scheme {
	return minhash.NewScheme(lshBands*lshRows, rand.New(rand.NewSource(seed)))
}

// clusterTexts groups near-duplicate texts via MinHash banding + union-find
// confirmation, returning groups of indices into texts.
//
// The expensive passes — tri-gram shingling + signing, and the pairwise
// similarity confirmation of banding candidates — fan out over the worker
// pool. The banding index is built once up front; restricting each text's
// candidates to lower indices reproduces exactly the pair set (and order)
// of the former incremental insert-then-query loop, and the union-find
// merge itself runs sequentially in that order, so the grouping is
// bit-identical at any worker count.
func clusterTexts(texts []string, simThreshold float64, seed int64, workers int) [][]int {
	if len(texts) == 0 {
		return nil
	}
	scheme := newLSHScheme(seed)
	sigs := parallel.Map(len(texts), workers, func(i int) minhash.Signature {
		return scheme.Sign(textutil.Shingles(texts[i], 3))
	})

	index := minhash.NewIndex(lshBands, lshRows)
	for _, sig := range sigs {
		index.Add(sig)
	}

	// Pairwise confirmation: for each text, the banding candidates below
	// it that clear the similarity threshold. Candidates returns ids in
	// ascending insertion order, so the filtered pair lists match the
	// former incremental scan exactly.
	matches := parallel.Map(len(texts), workers, func(i int) []int {
		var ms []int
		for _, cand := range index.Candidates(sigs[i]) {
			if cand >= i {
				continue
			}
			if minhash.Similarity(sigs[i], sigs[cand]) >= simThreshold {
				ms = append(ms, cand)
			}
		}
		return ms
	})

	parent := make([]int, len(texts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i, ms := range matches {
		for _, cand := range ms {
			union(i, cand)
		}
	}

	groupsByRoot := make(map[int][]int)
	var rootOrder []int
	for i := range texts {
		root := find(i)
		if len(groupsByRoot[root]) == 0 {
			rootOrder = append(rootOrder, root)
		}
		groupsByRoot[root] = append(groupsByRoot[root], i)
	}
	// Deterministic group order: first-appearance order of each root.
	groups := make([][]int, 0, len(groupsByRoot))
	for _, root := range rootOrder {
		groups = append(groups, groupsByRoot[root])
	}
	return groups
}

// classCount counts the distinct character classes in a Σ-Seq key
// (run-length digits excluded).
func classCount(seq string) int {
	seen := make(map[rune]struct{}, 4)
	for _, r := range seq {
		if r >= '0' && r <= '9' {
			continue
		}
		seen[r] = struct{}{}
	}
	return len(seen)
}

// stripMentions removes @name tokens so near-duplicate checking compares
// the spam payload, not the victim names.
func stripMentions(s string) string {
	fields := strings.Fields(s)
	out := fields[:0]
	for _, f := range fields {
		if strings.HasPrefix(f, "@") {
			continue
		}
		out = append(out, f)
	}
	return strings.Join(out, " ")
}
