package label

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/minhash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
)

// This file exports the pure, per-item half of the label store's ingest —
// normalization, shingling, MinHash signing, Σ-Seq computation — so shard
// workers (in-process goroutines or separate worker processes on the NDJSON
// wire) can precompute it concurrently. AddBatchPrepared then applies the
// stateful index joins sequentially, bit-identical to AddBatch.

// TweetPrep is the precomputed pure portion of one tweet add. Fields are
// exported (and JSON-shaped) so proc-mode shard workers can ship preps over
// the wire; uint64 signature words survive the JSON round-trip exactly.
type TweetPrep struct {
	Norm string            `json:"norm"`
	Sig  minhash.Signature `json:"sig,omitempty"` // nil below MinTweetLen
}

// UserPrep is the precomputed pure portion of one first-appearance user
// add, derived from the capture-time profile snapshot.
type UserPrep struct {
	NameSeq  string            `json:"name_seq"`
	DescNorm string            `json:"desc_norm"`
	DescSig  minhash.Signature `json:"desc_sig,omitempty"` // nil when DescNorm == ""
}

// Prepper computes label preps outside the store. It derives its MinHash
// schemes from the same Config (Seed for descriptions, Seed+1 for tweets)
// NewStore uses, so its signatures are bit-identical to the store's own
// precompute. A Prepper is immutable after construction and safe for
// concurrent use... except that minhash.Scheme.Sign must itself be
// re-entrant, which it is (read-only coefficient tables).
type Prepper struct {
	cfg        Config
	descScheme *minhash.Scheme
	twScheme   *minhash.Scheme
}

// NewPrepper creates a Prepper matching NewStore(cfg).
func NewPrepper(cfg Config) *Prepper {
	cfg = cfg.withDefaults()
	return &Prepper{
		cfg:        cfg,
		descScheme: newLSHScheme(cfg.Seed),
		twScheme:   newLSHScheme(cfg.Seed + 1),
	}
}

// PrepTweet precomputes the normalization + near-duplicate signature of one
// tweet, exactly as AddBatch's parallel precompute does.
func (p *Prepper) PrepTweet(t *socialnet.Tweet) TweetPrep {
	tp := TweetPrep{Norm: normalizedKey(t)}
	if len(tp.Norm) >= p.cfg.MinTweetLen {
		tp.Sig = p.twScheme.Sign(textutil.Shingles(tp.Norm, 3))
	}
	return tp
}

// PrepUser precomputes the Σ-Seq and description signature of one profile,
// exactly as AddBatch's parallel precompute does for a first appearance.
func (p *Prepper) PrepUser(profile *socialnet.Account) UserPrep {
	up := UserPrep{
		NameSeq:  textutil.ClassSeqWithRunLengths(profile.ScreenName),
		DescNorm: textutil.NormalizeDescription(profile.Description),
	}
	if up.DescNorm != "" {
		up.DescSig = p.descScheme.Sign(textutil.Shingles(up.DescNorm, 3))
	}
	return up
}

// AddBatchPrepared ingests one micro-batch whose pure precompute already
// happened elsewhere. tweetPreps[i] must be PrepTweet(tweets[i]);
// userPreps[i], when non-nil, must be PrepUser of authors[i]'s capture-time
// profile. A nil userPrep for a first-appearance author is recomputed
// inline (shard workers dedupe preps per shard, and the globally-first
// capture of an author is always the shard-locally-first too, so inline
// recompute only covers callers that skipped prep entirely). Results are
// bit-identical to AddBatch over the same arguments.
func (s *Store) AddBatchPrepared(tweets []*socialnet.Tweet, authors, profiles []*socialnet.Account,
	tweetPreps []TweetPrep, userPreps []*UserPrep) []bool {
	s.mu.Lock()
	defer s.mu.Unlock()

	// First-appearance users in this batch, in batch order — the same
	// dedupe AddBatch runs.
	var newUsers []userPrep
	queued := make(map[socialnet.AccountID]struct{})
	for i := range tweets {
		author := authors[i]
		if author == nil {
			continue
		}
		if _, ok := s.users[author.ID]; ok {
			continue
		}
		if _, ok := queued[author.ID]; ok {
			continue
		}
		queued[author.ID] = struct{}{}
		profile := profiles[i]
		if profile == nil {
			profile = author
		}
		up := userPrep{batchIdx: i, user: author}
		if p := userPreps[i]; p != nil {
			up.nameSeq, up.descNorm, up.descSig = p.NameSeq, p.DescNorm, p.DescSig
		} else {
			up.nameSeq = textutil.ClassSeqWithRunLengths(profile.ScreenName)
			up.descNorm = textutil.NormalizeDescription(profile.Description)
			if up.descNorm != "" {
				up.descSig = s.descScheme.Sign(textutil.Shingles(up.descNorm, 3))
			}
		}
		newUsers = append(newUsers, up)
	}

	for _, up := range newUsers {
		s.addUserLocked(up)
	}
	spam := make([]bool, len(tweets))
	for i, t := range tweets {
		profile := profiles[i]
		if profile == nil {
			profile = authors[i]
		}
		spam[i] = s.addTweetLocked(t, profile, tweetPrep{norm: tweetPreps[i].Norm, sig: tweetPreps[i].Sig})
	}
	return spam
}
