package label

import (
	"hash/fnv"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// NoisyOracle reveals the world's generative ground truth with a fixed
// per-item error rate, modelling imperfect human annotators. Errors are
// deterministic per item (re-checking the same tweet gives the same wrong
// answer), as human labeling mistakes tend to be.
type NoisyOracle struct {
	lookup  func(socialnet.AccountID) *socialnet.Account
	errRate float64
	seed    int64
}

var _ Oracle = (*NoisyOracle)(nil)

// NewNoisyOracle creates an oracle over the world with the given error
// rate in [0, 1).
func NewNoisyOracle(world *socialnet.World, errRate float64, seed int64) *NoisyOracle {
	return NewNoisyLookupOracle(world.Account, errRate, seed)
}

// NewNoisyLookupOracle creates an oracle over an arbitrary account
// resolver — the ingest-source Lookup for multi-source and replayed runs,
// where there is no single live world. The flip hash depends only on item
// ids and the seed, so a replayed run's manual checks reproduce the
// recording's answers bit for bit.
func NewNoisyLookupOracle(lookup func(socialnet.AccountID) *socialnet.Account, errRate float64, seed int64) *NoisyOracle {
	if errRate < 0 {
		errRate = 0
	}
	if errRate >= 1 {
		errRate = 0.99
	}
	return &NoisyOracle{lookup: lookup, errRate: errRate, seed: seed}
}

// TweetIsSpam reveals a tweet's ground truth, possibly flipped.
func (o *NoisyOracle) TweetIsSpam(t *socialnet.Tweet) bool {
	truth := t.Spam
	if o.flip(uint64(t.ID) * 2654435761) {
		return !truth
	}
	return truth
}

// UserIsSpammer reveals an account's ground truth, possibly flipped.
func (o *NoisyOracle) UserIsSpammer(id socialnet.AccountID) bool {
	truth := false
	if a := o.lookup(id); a != nil {
		truth = a.Kind == socialnet.KindSpammer
	}
	if o.flip(uint64(id)*11400714819323198485 + 7) {
		return !truth
	}
	return truth
}

// flip deterministically decides whether the answer for an item is wrong.
func (o *NoisyOracle) flip(itemKey uint64) bool {
	if o.errRate == 0 {
		return false
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(itemKey >> uint(8*i))
		buf[8+i] = byte(uint64(o.seed) >> uint(8*i))
	}
	_, _ = h.Write(buf[:])
	// Map the hash to [0, 1).
	u := float64(h.Sum64()>>11) / float64(1<<53)
	return u < o.errRate
}

// PerfectOracle reveals ground truth without noise; evaluation harnesses
// use it to score classifiers against the true labels.
type PerfectOracle struct {
	world *socialnet.World
}

var _ Oracle = (*PerfectOracle)(nil)

// NewPerfectOracle creates a noise-free oracle over the world.
func NewPerfectOracle(world *socialnet.World) *PerfectOracle {
	return &PerfectOracle{world: world}
}

// TweetIsSpam reveals a tweet's true label.
func (o *PerfectOracle) TweetIsSpam(t *socialnet.Tweet) bool { return t.Spam }

// UserIsSpammer reveals an account's true kind.
func (o *PerfectOracle) UserIsSpammer(id socialnet.AccountID) bool {
	a := o.world.Account(id)
	return a != nil && a.Kind == socialnet.KindSpammer
}
