package label

import (
	"strings"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
)

// Keyword groups behind the paper's rule list (§IV-B): quick-money,
// adult content, deception/phishing, and follower-scam phrases.
var (
	_moneyKeywords = []string{
		"easy money", "free money", "quick cash", "earn $", "free bitcoin",
		"instant payout", "double your income", "make money from home",
	}
	_adultKeywords = []string{
		"hot singles", "adult cam", "xxx", "18+ only",
	}
	_deceptionKeywords = []string{
		"verify your password", "confirm your login", "claim with your bank",
		"account will be suspended", "you have won a prize",
	}
	_scamKeywords = []string{
		"buy cheap followers", "get 1000 followers", "follow train",
		"free iphone giveaway", "miracle diet pills", "replica watches",
	}
)

// labelRules applies the paper's rule-based labeling to the not-yet-labeled
// remainder: malicious URLs, repetitive content, keyword rules, and the
// seed-account whitelist.
func (p *Pipeline) labelRules(c *Corpus, r *Result) {
	// Repetition counting over normalized, mention-stripped text.
	repeats := make(map[string]int, len(c.Tweets))
	for _, t := range c.Tweets {
		repeats[normalizedKey(t)]++
	}

	for _, t := range c.Tweets {
		if _, ok := r.SpamTweets[t.ID]; ok {
			continue
		}
		if _, ok := r.HamTweets[t.ID]; ok {
			continue
		}
		author := c.Users[t.AuthorID]

		// Seed whitelist: trusted accounts' tweets are non-spam.
		if author != nil && isSeedAccount(author) {
			r.HamTweets[t.ID] = MethodRule
			if _, ok := r.Spammers[t.AuthorID]; !ok {
				r.Benign[t.AuthorID] = MethodRule
			}
			continue
		}

		if !ruleSpam(t, repeats, p.cfg.RepeatThreshold) {
			continue
		}
		r.SpamTweets[t.ID] = MethodRule
		if _, ok := r.Spammers[t.AuthorID]; !ok {
			r.Spammers[t.AuthorID] = MethodRule
		}
	}
}

// ruleSpam reports whether any rule fires on the tweet.
func ruleSpam(t *socialnet.Tweet, repeats map[string]int, repeatThreshold int) bool {
	if hasMaliciousURL(t) {
		return true
	}
	key := normalizedKey(t)
	if len(key) >= 20 && repeats[key] >= repeatThreshold {
		return true
	}
	text := strings.ToLower(t.Text)
	for _, group := range [][]string{
		_moneyKeywords, _adultKeywords, _deceptionKeywords, _scamKeywords,
	} {
		for _, kw := range group {
			if strings.Contains(text, kw) {
				return true
			}
		}
	}
	return false
}

// hasMaliciousURL checks the tweet's URLs and text against the blocklist —
// the simulated equivalent of the URL-reputation services the paper cites.
func hasMaliciousURL(t *socialnet.Tweet) bool {
	for _, u := range t.URLs {
		for _, domain := range socialnet.MaliciousDomains {
			if strings.Contains(u, domain) {
				return true
			}
		}
	}
	for _, domain := range socialnet.MaliciousDomains {
		if strings.Contains(t.Text, domain) {
			return true
		}
	}
	return false
}

// isSeedAccount reports whether the account qualifies as a trusted seed:
// verified with a large audience (governments, companies, public figures).
func isSeedAccount(a *socialnet.Account) bool {
	return a.Verified && a.FollowersCount >= 10000
}

func normalizedKey(t *socialnet.Tweet) string {
	return textutil.NormalizeDescription(stripMentions(t.Text))
}

// manualCheck simulates the paper's final human pass: verify every rough
// label against the oracle (flipping mistakes, e.g. falsely suspended
// benign users), then spend the remaining budget labeling a sample of the
// unlabeled tweets.
func (p *Pipeline) manualCheck(c *Corpus, r *Result, oracle Oracle) {
	if oracle == nil {
		return
	}
	// Verify labeled users.
	for id := range r.Spammers {
		r.ManualChecks++
		if !oracle.UserIsSpammer(id) {
			delete(r.Spammers, id)
			r.Benign[id] = MethodManual
		}
	}
	// Verify labeled spam tweets; drop those whose author was cleared
	// or that the oracle rejects.
	for id, t := range indexTweets(c) {
		if _, ok := r.SpamTweets[id]; !ok {
			continue
		}
		r.ManualChecks++
		if !oracle.TweetIsSpam(t) {
			delete(r.SpamTweets, id)
			r.HamTweets[id] = MethodManual
		}
	}

	// Label a budgeted sample of unlabeled tweets.
	budget := p.cfg.ManualBudget
	if budget <= 0 {
		budget = len(c.Tweets) / 10
	}
	unlabeled := make([]*socialnet.Tweet, 0, len(c.Tweets))
	for _, t := range c.Tweets {
		if _, ok := r.SpamTweets[t.ID]; ok {
			continue
		}
		if _, ok := r.HamTweets[t.ID]; ok {
			continue
		}
		unlabeled = append(unlabeled, t)
	}
	p.rng.Shuffle(len(unlabeled), func(i, j int) {
		unlabeled[i], unlabeled[j] = unlabeled[j], unlabeled[i]
	})
	if budget > len(unlabeled) {
		budget = len(unlabeled)
	}
	for _, t := range unlabeled[:budget] {
		r.ManualChecks++
		if oracle.TweetIsSpam(t) {
			r.SpamTweets[t.ID] = MethodManual
			if _, ok := r.Spammers[t.AuthorID]; !ok {
				r.Spammers[t.AuthorID] = MethodManual
			}
		} else {
			r.HamTweets[t.ID] = MethodManual
		}
	}
}

func indexTweets(c *Corpus) map[socialnet.TweetID]*socialnet.Tweet {
	idx := make(map[socialnet.TweetID]*socialnet.Tweet, len(c.Tweets))
	for _, t := range c.Tweets {
		idx[t.ID] = t
	}
	return idx
}
