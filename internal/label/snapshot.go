package label

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/minhash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// The label store's cluster indices accumulate in author-first-appearance
// order, so they cannot be rebuilt from a truncated stream without
// replaying it. WriteSnapshot/ReadSnapshot serialize the complete
// incremental state for the durable checkpoint (DESIGN.md §14); restoring
// it and then continuing to Add the remaining stream yields the same
// indices the uninterrupted run built, because every join is a pure
// function of the state captured here and the restored schemes are
// reseeded from the same Config.
//
// The one subtlety is the users map: its values are the LIVE accounts the
// stream handed to Add, and Snapshot's corpus must observe the
// engine-mutated profile state at labeling time, not frozen add-time
// copies. ReadSnapshot therefore takes a resolver that rebinds each user
// id to the restored world's live account; the frozen copies in the
// snapshot are only a fallback for ids the resolver cannot produce.

// storeSnapshot is the gob payload. Union-find parent arrays are persisted
// verbatim (path-compression state included), MinHash signatures in index
// insertion order, and twPool as indices into Tweets so the pool keeps
// aliasing the stream mirror after restore.
type storeSnapshot struct {
	Tweets      []socialnet.Tweet
	UserOrder   []socialnet.AccountID
	Users       []socialnet.Account // aligned with UserOrder
	ImgReps     []imagehash.Hash
	ImgMembers  map[int][]socialnet.AccountID
	ImgOrder    []int
	NameMembers map[string][]socialnet.AccountID
	NameOrder   []string
	DescSigs    []minhash.Signature
	DescIDs     []socialnet.AccountID
	DescParent  []int
	TwSigs      []minhash.Signature
	TwPoolIdx   []int
	TwParent    []int
	Repeats     map[string]int
}

// WriteSnapshot serializes the store's incremental labeling state to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	snap := storeSnapshot{
		Tweets:      make([]socialnet.Tweet, len(s.tweets)),
		UserOrder:   s.userOrder,
		Users:       make([]socialnet.Account, len(s.userOrder)),
		ImgReps:     s.img.Reps(),
		ImgMembers:  s.imgMembers,
		ImgOrder:    s.imgOrder,
		NameMembers: s.nameMembers,
		NameOrder:   s.nameOrder,
		DescIDs:     s.descIDs,
		DescParent:  s.descUF.parent,
		Repeats:     s.repeats,
	}
	tweetIdx := make(map[*socialnet.Tweet]int, len(s.tweets))
	for i, t := range s.tweets {
		snap.Tweets[i] = *t
		tweetIdx[t] = i
	}
	for i, id := range s.userOrder {
		u := s.users[id]
		if u == nil {
			return fmt.Errorf("label: snapshot: user %d in order but not in map", id)
		}
		snap.Users[i] = *u
	}
	snap.DescSigs = make([]minhash.Signature, s.descIndex.Len())
	for i := range snap.DescSigs {
		snap.DescSigs[i] = s.descIndex.Signature(i)
	}
	snap.TwSigs = make([]minhash.Signature, s.twIndex.Len())
	for i := range snap.TwSigs {
		snap.TwSigs[i] = s.twIndex.Signature(i)
	}
	snap.TwPoolIdx = make([]int, len(s.twPool))
	for i, t := range s.twPool {
		idx, ok := tweetIdx[t]
		if !ok {
			return fmt.Errorf("label: snapshot: pooled tweet %d not in stream mirror", t.ID)
		}
		snap.TwPoolIdx[i] = idx
	}
	snap.TwParent = s.twUF.parent
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("label: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot replaces the store's state with a snapshot written by
// WriteSnapshot. The store must have been created with the same Config the
// snapshotted store used (the MinHash schemes are reseeded from it, and
// signatures from different schemes are incomparable). resolve rebinds
// each restored user id to the live account of the restored world; when it
// is nil or returns nil the frozen add-time copy from the snapshot is used
// instead. On decode or validation error the store is left unchanged.
func (s *Store) ReadSnapshot(r io.Reader, resolve func(socialnet.AccountID) *socialnet.Account) error {
	var snap storeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("label: decode snapshot: %w", err)
	}
	if len(snap.Users) != len(snap.UserOrder) {
		return fmt.Errorf("label: snapshot has %d users for %d order entries",
			len(snap.Users), len(snap.UserOrder))
	}
	if len(snap.DescSigs) != len(snap.DescIDs) || len(snap.DescSigs) != len(snap.DescParent) {
		return fmt.Errorf("label: snapshot description index misaligned (%d/%d/%d)",
			len(snap.DescSigs), len(snap.DescIDs), len(snap.DescParent))
	}
	if len(snap.TwSigs) != len(snap.TwPoolIdx) || len(snap.TwSigs) != len(snap.TwParent) {
		return fmt.Errorf("label: snapshot tweet index misaligned (%d/%d/%d)",
			len(snap.TwSigs), len(snap.TwPoolIdx), len(snap.TwParent))
	}
	for _, idx := range snap.TwPoolIdx {
		if idx < 0 || idx >= len(snap.Tweets) {
			return fmt.Errorf("label: snapshot pool index %d out of %d tweets", idx, len(snap.Tweets))
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	s.tweets = make([]*socialnet.Tweet, len(snap.Tweets))
	for i := range snap.Tweets {
		s.tweets[i] = &snap.Tweets[i]
	}
	s.userOrder = snap.UserOrder
	s.users = make(map[socialnet.AccountID]*socialnet.Account, len(snap.UserOrder))
	for i, id := range snap.UserOrder {
		var u *socialnet.Account
		if resolve != nil {
			u = resolve(id)
		}
		if u == nil {
			u = &snap.Users[i]
		}
		s.users[id] = u
	}
	s.img = imagehash.NewGrouper(s.cfg.ImageHammingThreshold)
	s.img.SetWorkers(s.cfg.Workers)
	s.img.SetReps(snap.ImgReps)
	s.imgMembers = snap.ImgMembers
	if s.imgMembers == nil {
		s.imgMembers = make(map[int][]socialnet.AccountID)
	}
	s.imgOrder = snap.ImgOrder
	s.nameMembers = snap.NameMembers
	if s.nameMembers == nil {
		s.nameMembers = make(map[string][]socialnet.AccountID)
	}
	s.nameOrder = snap.NameOrder
	s.descIndex = minhash.NewIndex(lshBands, lshRows)
	for _, sig := range snap.DescSigs {
		s.descIndex.Add(sig)
	}
	s.descIDs = snap.DescIDs
	s.descUF = &unionFind{parent: snap.DescParent}
	s.twIndex = minhash.NewIndex(lshBands, lshRows)
	for _, sig := range snap.TwSigs {
		s.twIndex.Add(sig)
	}
	s.twPool = make([]*socialnet.Tweet, len(snap.TwPoolIdx))
	for i, idx := range snap.TwPoolIdx {
		s.twPool[i] = s.tweets[idx]
	}
	s.twUF = &unionFind{parent: snap.TwParent}
	s.repeats = snap.Repeats
	if s.repeats == nil {
		s.repeats = make(map[string]int)
	}
	return nil
}
