package label

import (
	"sync"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/minhash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// Store is the incremental labeling state behind the streaming pipeline's
// label stage (DESIGN.md §12). Where the batch Pipeline reclusters the
// whole corpus on every Run, the Store keeps the cluster indices alive —
// the image-dHash grouper, the Σ-Seq name classes, and the MinHash banding
// indices (plus union-find) for descriptions and near-duplicate tweets —
// so ingesting a capture costs ~O(cluster lookup): one grouper probe, one
// map insert, and two LSH band probes, instead of a full recluster.
//
// Snapshot then materializes groups from the live indices and runs the
// batch pipeline's own propagation/rules/manual passes over them, so on
// any stream Snapshot's Result is identical to Pipeline.Run over the
// equivalent corpus — the full-batch path stays the correctness oracle,
// and the equivalence is pinned by TestStoreMatchesBatchOracle.
//
// The determinism hinges on insertion order: the image Grouper assigns a
// hash to the lowest-numbered group within threshold, so its partition
// depends on the order hashes arrive. Both paths therefore use the same
// order — author first-appearance in stream order (see corpusUserIDs).
//
// A Store is safe for one writer (the label stage goroutine) plus
// Snapshot/Len from any goroutine; all methods take the store mutex.
type Store struct {
	mu  sync.Mutex
	cfg Config

	// Stream mirror: the corpus Snapshot rebuilds.
	tweets    []*socialnet.Tweet
	users     map[socialnet.AccountID]*socialnet.Account
	userOrder []socialnet.AccountID

	// Profile-image clustering: persistent dHash grouper.
	img        *imagehash.Grouper
	imgMembers map[int][]socialnet.AccountID
	imgOrder   []int

	// Screen-name clustering: Σ-Seq class members.
	nameMembers map[string][]socialnet.AccountID
	nameOrder   []string

	// Description near-duplicates: persistent MinHash banding + union-find.
	descScheme *minhash.Scheme
	descIndex  *minhash.Index
	descIDs    []socialnet.AccountID
	descUF     *unionFind

	// Tweet near-duplicates: persistent MinHash banding + union-find.
	twScheme *minhash.Scheme
	twIndex  *minhash.Index
	twPool   []*socialnet.Tweet
	twUF     *unionFind

	// Rule state for provisional labels.
	repeats map[string]int

	// resolve, when set, rebinds user ids to live accounts at Snapshot
	// time (see SetResolver).
	resolve func(socialnet.AccountID) *socialnet.Account

	lastTrace *trace.Trace
}

// NewStore creates an incremental label store (zero-value cfg fields fall
// back to DefaultConfig values, exactly as NewPipeline's do).
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:         cfg,
		users:       make(map[socialnet.AccountID]*socialnet.Account),
		img:         imagehash.NewGrouper(cfg.ImageHammingThreshold),
		imgMembers:  make(map[int][]socialnet.AccountID),
		nameMembers: make(map[string][]socialnet.AccountID),
		descScheme:  newLSHScheme(cfg.Seed),
		descIndex:   minhash.NewIndex(lshBands, lshRows),
		descUF:      &unionFind{},
		twScheme:    newLSHScheme(cfg.Seed + 1),
		twIndex:     minhash.NewIndex(lshBands, lshRows),
		twUF:        &unionFind{},
		repeats:     make(map[string]int),
	}
	s.img.SetWorkers(cfg.Workers)
	return s
}

// SetResolver installs a live-account resolver consulted when Snapshot
// builds its corpus: each user id is rebound to resolve(id) when that
// returns non-nil, falling back to the account Add stored. In normal
// streaming the stored account already is the live one and the rebinding
// is a no-op; crash recovery needs it because WAL replay runs before the
// re-seeded simulation has recreated accounts that were spawned mid-run
// (campaign churn), so replayed authors can only be bound to their frozen
// capture-time profiles — stale by labeling time. Resolving at Snapshot
// instead restores the invariant that labeling reads the engine-mutated
// profile state, exactly as an uninterrupted run would.
func (s *Store) SetResolver(resolve func(socialnet.AccountID) *socialnet.Account) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolve = resolve
}

// tweetPrep is the precomputed (parallelizable) part of one tweet add.
type tweetPrep struct {
	norm string
	sig  minhash.Signature // nil below MinTweetLen
}

// userPrep is the precomputed part of one first-appearance user add.
type userPrep struct {
	batchIdx int // index in the batch of the author's first tweet
	user     *socialnet.Account
	nameSeq  string
	descNorm string
	descSig  minhash.Signature // nil when descNorm == ""
}

// Add ingests one capture: t joins the live cluster indices, and — on the
// author's first appearance — so does the author's profile. author is the
// live account retained for the snapshot corpus (exactly what the batch
// path's lookup resolves); profile is the capture-time profile snapshot
// the index insertions and the provisional check read, so Add never races
// with the engine mutating the live account. profile may equal author
// when the caller is single-threaded with the stream (batch tests).
//
// The returned provisional flag is the stream-time spam estimate feeding
// the online detector: platform-suspended author or a rule hit against
// the rule state so far. It is advisory — Snapshot recomputes real labels.
func (s *Store) Add(t *socialnet.Tweet, author, profile *socialnet.Account) bool {
	return s.AddBatch([]*socialnet.Tweet{t},
		[]*socialnet.Account{author}, []*socialnet.Account{profile})[0]
}

// AddBatch ingests one micro-batch in stream order, fanning the pure
// per-item work (normalization, shingling, MinHash signing, Σ-Seq
// computation) over the shared worker pool before applying the stateful
// index joins sequentially. Results are bit-identical to item-by-item Add
// at any worker count.
func (s *Store) AddBatch(tweets []*socialnet.Tweet, authors, profiles []*socialnet.Account) []bool {
	s.mu.Lock()
	defer s.mu.Unlock()

	// First-appearance users in this batch, in batch order.
	var newUsers []userPrep
	queued := make(map[socialnet.AccountID]struct{})
	for i := range tweets {
		author := authors[i]
		if author == nil {
			continue
		}
		if _, ok := s.users[author.ID]; ok {
			continue
		}
		if _, ok := queued[author.ID]; ok {
			continue
		}
		queued[author.ID] = struct{}{}
		profile := profiles[i]
		if profile == nil {
			profile = author
		}
		newUsers = append(newUsers, userPrep{batchIdx: i, user: author,
			nameSeq: profile.ScreenName, descNorm: profile.Description})
	}

	// Pure precompute, fanned over the worker pool. The fields were
	// seeded with the raw strings above; Map replaces them in place.
	preppedUsers := parallel.Map(len(newUsers), s.cfg.Workers, func(i int) userPrep {
		up := newUsers[i]
		up.nameSeq = textutil.ClassSeqWithRunLengths(up.nameSeq)
		up.descNorm = textutil.NormalizeDescription(up.descNorm)
		if up.descNorm != "" {
			up.descSig = s.descScheme.Sign(textutil.Shingles(up.descNorm, 3))
		}
		return up
	})
	preps := parallel.Map(len(tweets), s.cfg.Workers, func(i int) tweetPrep {
		p := tweetPrep{norm: normalizedKey(tweets[i])}
		if len(p.norm) >= s.cfg.MinTweetLen {
			p.sig = s.twScheme.Sign(textutil.Shingles(p.norm, 3))
		}
		return p
	})

	// Sequential joins, in stream order. User joins and tweet joins hit
	// disjoint indices, so applying all of the batch's first-appearance
	// users first preserves the global author-first-appearance sequence.
	for _, up := range preppedUsers {
		s.addUserLocked(up)
	}
	spam := make([]bool, len(tweets))
	for i, t := range tweets {
		profile := profiles[i]
		if profile == nil {
			profile = authors[i]
		}
		spam[i] = s.addTweetLocked(t, profile, preps[i])
	}
	return spam
}

// addUserLocked joins one first-appearance user into the profile indices.
func (s *Store) addUserLocked(up userPrep) {
	u := up.user
	s.users[u.ID] = u
	s.userOrder = append(s.userOrder, u.ID)

	// Image: the grouper assigns the lowest matching group id — the same
	// call, in the same global order, as the batch pass.
	if !u.DefaultProfileImage {
		g := s.img.Add(u.ProfileImageHash)
		if len(s.imgMembers[g]) == 0 {
			s.imgOrder = append(s.imgOrder, g)
		}
		s.imgMembers[g] = append(s.imgMembers[g], u.ID)
	}

	// Name: Σ-Seq class membership.
	if len(s.nameMembers[up.nameSeq]) == 0 {
		s.nameOrder = append(s.nameOrder, up.nameSeq)
	}
	s.nameMembers[up.nameSeq] = append(s.nameMembers[up.nameSeq], u.ID)

	// Description: banding probe against all prior descriptions, then
	// join the index. Probing before Add excludes self-candidates and
	// reproduces the batch pair set {(i,j): j<i, shared band, sim ≥ τ}.
	if up.descSig != nil {
		idx := s.descUF.add()
		for _, cand := range s.descIndex.Candidates(up.descSig) {
			if minhash.Similarity(up.descSig, s.descIndex.Signature(cand)) >= s.cfg.DescSimilarity {
				s.descUF.union(idx, cand)
			}
		}
		s.descIndex.Add(up.descSig)
		s.descIDs = append(s.descIDs, u.ID)
	}
}

// addTweetLocked joins one tweet into the stream mirror, the near-duplicate
// index, and the rule state, returning the provisional spam flag.
func (s *Store) addTweetLocked(t *socialnet.Tweet, profile *socialnet.Account, p tweetPrep) bool {
	s.tweets = append(s.tweets, t)
	s.repeats[p.norm]++
	if p.sig != nil {
		idx := s.twUF.add()
		for _, cand := range s.twIndex.Candidates(p.sig) {
			if minhash.Similarity(p.sig, s.twIndex.Signature(cand)) >= s.cfg.TweetSimilarity {
				s.twUF.union(idx, cand)
			}
		}
		s.twIndex.Add(p.sig)
		s.twPool = append(s.twPool, t)
	}
	if profile != nil && profile.Suspended {
		return true
	}
	return ruleSpam(t, s.repeats, s.cfg.RepeatThreshold)
}

// Len reports the ingested stream size: tweets and distinct users.
func (s *Store) Len() (tweets, users int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tweets), len(s.users)
}

// Snapshot labels everything ingested so far: it rebuilds the corpus from
// the stream mirror, materializes cluster groups from the live indices,
// and runs the batch pipeline's propagation, rule, and manual passes over
// them with a fresh Pipeline (fresh manual-stage rng seeded cfg.Seed, same
// as a batch Run). The store stays usable afterwards — streaming resumes
// and later Snapshots see the longer stream.
func (s *Store) Snapshot(oracle Oracle) *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Corpus{
		Tweets: append([]*socialnet.Tweet(nil), s.tweets...),
		Users:  make(map[socialnet.AccountID]*socialnet.Account, len(s.users)),
	}
	for id, u := range s.users {
		if s.resolve != nil {
			if live := s.resolve(id); live != nil {
				u = live
			}
		}
		c.Users[id] = u
	}
	p := NewPipeline(s.cfg)
	r := p.run(c, oracle, func(*Corpus) ([][]socialnet.AccountID, [][]*socialnet.Tweet) {
		var userGroups [][]socialnet.AccountID
		for _, fn := range []func() [][]socialnet.AccountID{
			func() [][]socialnet.AccountID { defer p.tr.StartSpan("label_cluster_image").End(); return s.imageGroupsLocked() },
			func() [][]socialnet.AccountID { defer p.tr.StartSpan("label_cluster_name").End(); return s.nameGroupsLocked() },
			func() [][]socialnet.AccountID {
				defer p.tr.StartSpan("label_cluster_description").End()
				return s.descGroupsLocked()
			},
		} {
			userGroups = append(userGroups, fn()...)
		}
		defer p.tr.StartSpan("label_cluster_tweets").End()
		return userGroups, s.tweetGroupsLocked()
	})
	s.lastTrace = p.LastTrace()
	return r
}

// LastTrace returns the trace of the most recent Snapshot (nil when
// tracing is off), mirroring Pipeline.LastTrace.
func (s *Store) LastTrace() *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace
}

// imageGroupsLocked materializes image groups (≥2 members) in group
// first-appearance order — the order clusterByImage emits.
func (s *Store) imageGroupsLocked() [][]socialnet.AccountID {
	var groups [][]socialnet.AccountID
	for _, gi := range s.imgOrder {
		if g := s.imgMembers[gi]; len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	return groups
}

// nameGroupsLocked materializes Σ-Seq groups with clusterByName's
// snapshot-time hygiene filters: size within [NameGroupMin, maxNameGroup]
// and at least two character classes.
func (s *Store) nameGroupsLocked() [][]socialnet.AccountID {
	maxNameGroup := len(s.users) / 50
	if maxNameGroup < 2*s.cfg.NameGroupMin {
		maxNameGroup = 2 * s.cfg.NameGroupMin
	}
	var groups [][]socialnet.AccountID
	for _, seq := range s.nameOrder {
		g := s.nameMembers[seq]
		if len(g) < s.cfg.NameGroupMin || len(g) > maxNameGroup {
			continue
		}
		if classCount(seq) < 2 {
			continue
		}
		groups = append(groups, g)
	}
	return groups
}

// descGroupsLocked materializes description partitions (≥2 members) from
// the union-find, in root first-appearance order with members in
// insertion order — exactly clusterTexts' group shape.
func (s *Store) descGroupsLocked() [][]socialnet.AccountID {
	var groups [][]socialnet.AccountID
	for _, part := range s.descUF.partitions() {
		if len(part) < 2 {
			continue
		}
		group := make([]socialnet.AccountID, len(part))
		for i, idx := range part {
			group[i] = s.descIDs[idx]
		}
		groups = append(groups, group)
	}
	return groups
}

// tweetGroupsLocked materializes near-duplicate tweet groups from the
// union-find, split into time-window buckets like clusterTweets.
func (s *Store) tweetGroupsLocked() [][]*socialnet.Tweet {
	var groups [][]*socialnet.Tweet
	for _, part := range s.twUF.partitions() {
		if len(part) < 2 {
			continue
		}
		members := make([]*socialnet.Tweet, len(part))
		for i, idx := range part {
			members[i] = s.twPool[idx]
		}
		groups = append(groups, splitByWindow(members, s.cfg.TweetWindow)...)
	}
	return groups
}

// unionFind is a grow-only disjoint-set over [0, n) with path compression.
type unionFind struct {
	parent []int
}

// add appends a fresh singleton and returns its index.
func (u *unionFind) add() int {
	idx := len(u.parent)
	u.parent = append(u.parent, idx)
	return idx
}

func (u *unionFind) find(x int) int {
	if u.parent[x] != x {
		u.parent[x] = u.find(u.parent[x])
	}
	return u.parent[x]
}

func (u *unionFind) union(a, b int) {
	u.parent[u.find(a)] = u.find(b)
}

// partitions returns every component's member indices in ascending order,
// components ordered by first-appearing member — the same shape
// clusterTexts' root-first-appearance grouping produces.
func (u *unionFind) partitions() [][]int {
	byRoot := make(map[int][]int)
	var rootOrder []int
	for i := range u.parent {
		root := u.find(i)
		if len(byRoot[root]) == 0 {
			rootOrder = append(rootOrder, root)
		}
		byRoot[root] = append(byRoot[root], i)
	}
	parts := make([][]int, 0, len(byRoot))
	for _, root := range rootOrder {
		parts = append(parts, byRoot[root])
	}
	return parts
}
