package label

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// feedStore pushes the corpus stream into a store in arrival order, in
// micro-batches of batchSize (1 = item-by-item Add).
func feedStore(s *Store, c *Corpus, batchSize int) {
	for i := 0; i < len(c.Tweets); i += batchSize {
		end := i + batchSize
		if end > len(c.Tweets) {
			end = len(c.Tweets)
		}
		batch := c.Tweets[i:end]
		authors := make([]*socialnet.Account, len(batch))
		for j, tw := range batch {
			authors[j] = c.Users[tw.AuthorID]
		}
		// In-process the live account doubles as its own profile
		// snapshot: the feed is synchronous with the (finished) stream.
		s.AddBatch(batch, authors, authors)
	}
}

// TestStoreMatchesBatchOracle is the tentpole's correctness property: on a
// seed corpus, the incremental store — fed the stream one tweet at a time
// or micro-batched, at several worker counts — must produce a Snapshot
// deeply equal to the full-batch Pipeline.Run oracle over the same data.
func TestStoreMatchesBatchOracle(t *testing.T) {
	corpus, w := collectCorpus(t, 8)
	if len(corpus.Tweets) == 0 {
		t.Fatal("empty corpus")
	}
	for _, workers := range []int{1, 2, 8} {
		for _, batchSize := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batchSize), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Workers = workers
				want := NewPipeline(cfg).Run(corpus, NewNoisyOracle(w, 0.02, 7))

				st := NewStore(cfg)
				feedStore(st, corpus, batchSize)
				got := st.Snapshot(NewNoisyOracle(w, 0.02, 7))

				if !reflect.DeepEqual(want, got) {
					t.Fatalf("incremental snapshot diverged from batch oracle:\n"+
						"batch: spams=%d spammers=%d ham=%d benign=%d checks=%d\n"+
						"store: spams=%d spammers=%d ham=%d benign=%d checks=%d",
						len(want.SpamTweets), len(want.Spammers), len(want.HamTweets),
						len(want.Benign), want.ManualChecks,
						len(got.SpamTweets), len(got.Spammers), len(got.HamTweets),
						len(got.Benign), got.ManualChecks)
				}
			})
		}
	}
}

// TestStoreSnapshotIsRepeatable takes a mid-stream snapshot, keeps
// streaming, and requires (a) the mid-stream snapshot to equal the batch
// oracle over the prefix and (b) the final snapshot to equal the batch
// oracle over the full stream — the mid-stream read must not perturb the
// indices.
func TestStoreSnapshotIsRepeatable(t *testing.T) {
	corpus, w := collectCorpus(t, 8)
	half := len(corpus.Tweets) / 2
	prefix := NewCorpus(corpus.Tweets[:half], func(id socialnet.AccountID) *socialnet.Account {
		return corpus.Users[id]
	})

	st := NewStore(DefaultConfig())
	feedStore(st, prefix, 13)
	gotHalf := st.Snapshot(NewNoisyOracle(w, 0.02, 7))
	wantHalf := NewPipeline(DefaultConfig()).Run(prefix, NewNoisyOracle(w, 0.02, 7))
	if !reflect.DeepEqual(wantHalf, gotHalf) {
		t.Fatal("mid-stream snapshot diverged from the prefix batch oracle")
	}

	rest := NewCorpus(corpus.Tweets[half:], func(id socialnet.AccountID) *socialnet.Account {
		return corpus.Users[id]
	})
	feedStore(st, rest, 13)
	got := st.Snapshot(NewNoisyOracle(w, 0.02, 7))
	want := NewPipeline(DefaultConfig()).Run(corpus, NewNoisyOracle(w, 0.02, 7))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("post-resume snapshot diverged from the full batch oracle")
	}
}

// TestStoreProvisionalLabels sanity-checks the stream-time estimate: a
// suspended author and a malicious-URL tweet are provisional spam, a
// benign short tweet is not.
func TestStoreProvisionalLabels(t *testing.T) {
	st := NewStore(DefaultConfig())
	benign := &socialnet.Account{ID: 1, ScreenName: "alice", Description: "hello"}
	suspended := &socialnet.Account{ID: 2, ScreenName: "eve", Suspended: true}

	if st.Add(&socialnet.Tweet{ID: 1, AuthorID: 1, Text: "lunch was nice"}, benign, benign) {
		t.Fatal("benign tweet flagged provisional spam")
	}
	if !st.Add(&socialnet.Tweet{ID: 2, AuthorID: 2, Text: "hi"}, suspended, suspended) {
		t.Fatal("suspended author not flagged")
	}
	mal := &socialnet.Tweet{ID: 3, AuthorID: 1,
		Text: "click " + socialnet.MaliciousDomains[0] + "/win now"}
	if !st.Add(mal, benign, benign) {
		t.Fatal("malicious URL not flagged")
	}
	tweets, users := st.Len()
	if tweets != 3 || users != 2 {
		t.Fatalf("Len = %d/%d, want 3/2", tweets, users)
	}
}

// TestStoreNilAuthor checks lookup-miss tolerance: tweets whose author
// cannot be resolved still join the tweet indices, like NewCorpus skipping
// nil profiles.
func TestStoreNilAuthor(t *testing.T) {
	st := NewStore(DefaultConfig())
	st.Add(&socialnet.Tweet{ID: 1, AuthorID: 99,
		Text: "some sufficiently long tweet text body"}, nil, nil)
	tweets, users := st.Len()
	if tweets != 1 || users != 0 {
		t.Fatalf("Len = %d/%d, want 1/0", tweets, users)
	}
	r := st.Snapshot(nil)
	if r == nil {
		t.Fatal("nil result")
	}
}
