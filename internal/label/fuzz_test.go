package label

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzStripMentions checks stripMentions' invariants on arbitrary input:
// no panic, no @-prefixed field survives, non-mention fields survive in
// order, and the function is idempotent.
func FuzzStripMentions(f *testing.F) {
	f.Add("@alice hello @bob world")
	f.Add("no mentions here")
	f.Add("@@double @ lone\t@tab\nnewline")
	f.Add("  leading and trailing  ")
	f.Add("@only @mentions @here")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		out := stripMentions(s)
		for _, field := range strings.Fields(out) {
			if strings.HasPrefix(field, "@") {
				t.Fatalf("stripMentions(%q) = %q keeps mention %q", s, out, field)
			}
		}
		// Exactly the non-mention fields survive, in order.
		var want []string
		for _, field := range strings.Fields(s) {
			if !strings.HasPrefix(field, "@") {
				want = append(want, field)
			}
		}
		if got := strings.Join(want, " "); got != out {
			t.Fatalf("stripMentions(%q) = %q, want %q", s, out, got)
		}
		if again := stripMentions(out); again != out {
			t.Fatalf("not idempotent: %q → %q → %q", s, out, again)
		}
	})
}

// FuzzClassCount checks classCount on arbitrary Σ-Seq-ish keys: no panic,
// the count never exceeds the distinct non-digit runes, digits never
// count, and prefixing a digit never changes the result.
func FuzzClassCount(f *testing.F) {
	f.Add("a3A2d1")
	f.Add("")
	f.Add("123456")
	f.Add("aAdso")
	f.Add("ααβ12")
	f.Fuzz(func(t *testing.T, seq string) {
		n := classCount(seq)
		distinct := make(map[rune]struct{})
		for _, r := range seq {
			if r >= '0' && r <= '9' {
				continue
			}
			distinct[r] = struct{}{}
		}
		if n != len(distinct) {
			t.Fatalf("classCount(%q) = %d, want %d distinct non-digit runes", seq, n, len(distinct))
		}
		if m := classCount("7" + seq + "0"); m != n {
			t.Fatalf("digit padding changed count: %d vs %d", m, n)
		}
		_ = utf8.ValidString(seq) // invalid UTF-8 must terminate too
	})
}
