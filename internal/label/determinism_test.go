package label

import (
	"reflect"
	"testing"
)

// TestPipelineDeterministicAcrossWorkerCounts verifies the
// worker-invariance contract: the labeling pipeline — image/name/
// description clustering, tweet near-duplicate clustering, propagation,
// and the manual stage — produces a bit-identical Result whether its
// clustering passes run on 1, 2, or 8 workers.
func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	corpus, w := collectCorpus(t, 6)
	oracle := NewNoisyOracle(w, 0.02, 7)

	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Workers = workers
		return NewPipeline(cfg).Run(corpus, oracle)
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		r := run(workers)
		if !reflect.DeepEqual(r.SpamTweets, ref.SpamTweets) {
			t.Fatalf("workers=%d: spam tweet labels diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(r.HamTweets, ref.HamTweets) {
			t.Fatalf("workers=%d: ham tweet labels diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(r.Spammers, ref.Spammers) {
			t.Fatalf("workers=%d: spammer labels diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(r.Benign, ref.Benign) {
			t.Fatalf("workers=%d: benign labels diverge from workers=1", workers)
		}
		if r.ManualChecks != ref.ManualChecks {
			t.Fatalf("workers=%d: manual checks %d != %d", workers, r.ManualChecks, ref.ManualChecks)
		}
	}
}
