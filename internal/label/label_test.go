package label

import (
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// collectCorpus runs a small world for hours and returns the mention
// corpus (the kind of data a pseudo-honeypot monitor collects) plus the
// world.
func collectCorpus(t *testing.T, hours int) (*Corpus, *socialnet.World) {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 300
	cfg.SuspensionRatePerHour = 0.02
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	var tweets []*socialnet.Tweet
	e.Subscribe(func(tw *socialnet.Tweet) {
		if len(tw.Mentions) > 0 {
			tweets = append(tweets, tw)
		}
	})
	e.RunHours(hours)
	return NewCorpus(tweets, w.Account), w
}

func TestPipelineEndToEnd(t *testing.T) {
	corpus, w := collectCorpus(t, 10)
	if len(corpus.Tweets) == 0 {
		t.Fatal("empty corpus")
	}
	p := NewPipeline(DefaultConfig())
	oracle := NewNoisyOracle(w, 0.02, 7)
	r := p.Run(corpus, oracle)

	if r.TotalSpams() == 0 || r.TotalSpammers() == 0 {
		t.Fatalf("no labels: spams=%d spammers=%d", r.TotalSpams(), r.TotalSpammers())
	}

	// Quality: labeled spams should be overwhelmingly true spam.
	correct, wrong := 0, 0
	byID := make(map[socialnet.TweetID]*socialnet.Tweet)
	for _, tw := range corpus.Tweets {
		byID[tw.ID] = tw
	}
	for id := range r.SpamTweets {
		if byID[id].Spam {
			correct++
		} else {
			wrong++
		}
	}
	if precision := float64(correct) / float64(correct+wrong); precision < 0.85 {
		t.Fatalf("labeled-spam precision %v too low (%d/%d)", precision, correct, correct+wrong)
	}

	// Coverage: the pipeline should find a majority of the true spam.
	trueSpam := 0
	for _, tw := range corpus.Tweets {
		if tw.Spam {
			trueSpam++
		}
	}
	if recall := float64(correct) / float64(trueSpam); recall < 0.5 {
		t.Fatalf("labeled-spam recall %v too low", recall)
	}
}

func TestPipelineMethodOrderingMatchesTableIII(t *testing.T) {
	corpus, w := collectCorpus(t, 10)
	p := NewPipeline(DefaultConfig())
	r := p.Run(corpus, NewNoisyOracle(w, 0.02, 7))

	counts := r.Counts()
	if len(counts) != 4 {
		t.Fatalf("Counts rows = %d, want 4", len(counts))
	}
	byMethod := make(map[Method]MethodCount)
	for _, c := range counts {
		byMethod[c.Method] = c
	}
	// The paper's Table III ordering: suspended > clustering > rules >
	// manual for spam labels. Require the dominant ordering: suspended
	// contributes the most, manual the least among non-zero stages.
	if byMethod[MethodSuspended].Spams == 0 {
		t.Fatal("suspended stage labeled nothing")
	}
	if byMethod[MethodSuspended].Spams < byMethod[MethodManual].Spams {
		t.Fatalf("manual (%d) out-labeled suspended (%d)",
			byMethod[MethodManual].Spams, byMethod[MethodSuspended].Spams)
	}
	if byMethod[MethodClustering].Spams == 0 {
		t.Fatal("clustering stage labeled nothing")
	}
}

func TestSuspendedStage(t *testing.T) {
	now := simclock.Epoch
	spammer := &socialnet.Account{ID: 1, Suspended: true, Kind: socialnet.KindSpammer, CreatedAt: now}
	benign := &socialnet.Account{ID: 2, Kind: socialnet.KindNormal, CreatedAt: now}
	tweets := []*socialnet.Tweet{
		{ID: 1, AuthorID: 1, Text: "spammy spam", CreatedAt: now, Spam: true},
		{ID: 2, AuthorID: 2, Text: "hello world", CreatedAt: now},
	}
	c := &Corpus{
		Tweets: tweets,
		Users:  map[socialnet.AccountID]*socialnet.Account{1: spammer, 2: benign},
	}
	r := &Result{
		SpamTweets: make(map[socialnet.TweetID]Method),
		HamTweets:  make(map[socialnet.TweetID]Method),
		Spammers:   make(map[socialnet.AccountID]Method),
		Benign:     make(map[socialnet.AccountID]Method),
	}
	NewPipeline(DefaultConfig()).labelSuspended(c, r)
	if r.Spammers[1] != MethodSuspended {
		t.Fatal("suspended user not labeled spammer")
	}
	if r.SpamTweets[1] != MethodSuspended {
		t.Fatal("suspended user's tweet not labeled spam")
	}
	if _, ok := r.Spammers[2]; ok {
		t.Fatal("benign user labeled by suspended stage")
	}
}

func TestRuleSpamKeywords(t *testing.T) {
	repeats := map[string]int{}
	tests := []struct {
		text string
		want bool
	}{
		{text: "make easy money from home now", want: true},
		{text: "hot singles in your area", want: true},
		{text: "please verify your password here", want: true},
		{text: "buy cheap followers today", want: true},
		{text: "lovely weather for a picnic", want: false},
	}
	for _, tt := range tests {
		tw := &socialnet.Tweet{Text: tt.text}
		if got := ruleSpam(tw, repeats, 3); got != tt.want {
			t.Errorf("ruleSpam(%q) = %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestRuleSpamMaliciousURL(t *testing.T) {
	tw := &socialnet.Tweet{
		Text: "check this out",
		URLs: []string{"http://spam-click.example/abc"},
	}
	if !ruleSpam(tw, map[string]int{}, 3) {
		t.Fatal("malicious URL not flagged")
	}
}

func TestRuleSpamRepetition(t *testing.T) {
	text := "identical long promotional message that repeats"
	tw := &socialnet.Tweet{Text: text}
	repeats := map[string]int{normalizedKey(tw): 5}
	if !ruleSpam(tw, repeats, 3) {
		t.Fatal("repeated content not flagged")
	}
	repeats[normalizedKey(tw)] = 2
	if ruleSpam(tw, repeats, 3) {
		t.Fatal("below-threshold repetition flagged")
	}
}

func TestSeedWhitelist(t *testing.T) {
	now := simclock.Epoch
	seed := &socialnet.Account{
		ID: 1, Verified: true, FollowersCount: 500000,
		Kind: socialnet.KindSeed, CreatedAt: now,
	}
	// Even a money-keyword tweet from a seed account stays ham (the
	// whitelist wins, as in the paper's seed rule).
	tweets := []*socialnet.Tweet{
		{ID: 1, AuthorID: 1, Text: "our guide to make money from home safely", CreatedAt: now},
	}
	c := &Corpus{Tweets: tweets, Users: map[socialnet.AccountID]*socialnet.Account{1: seed}}
	r := &Result{
		SpamTweets: make(map[socialnet.TweetID]Method),
		HamTweets:  make(map[socialnet.TweetID]Method),
		Spammers:   make(map[socialnet.AccountID]Method),
		Benign:     make(map[socialnet.AccountID]Method),
	}
	p := NewPipeline(DefaultConfig())
	p.labelRules(c, r)
	if _, ok := r.SpamTweets[1]; ok {
		t.Fatal("seed tweet labeled spam")
	}
	if r.HamTweets[1] != MethodRule {
		t.Fatal("seed tweet not whitelisted")
	}
}

func TestClusteringPropagatesThroughCampaign(t *testing.T) {
	// Build a synthetic campaign: 6 members share an image base and name
	// shape; one is suspended. Clustering must label the rest.
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 600
	cfg.OrganicTweetsPerHour = 50
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	campaign := w.Campaigns()[0]
	users := make(map[socialnet.AccountID]*socialnet.Account)
	var tweets []*socialnet.Tweet
	now := simclock.Epoch
	for i, id := range campaign.MemberIDs {
		a := w.Account(id)
		users[id] = a
		tweets = append(tweets, &socialnet.Tweet{
			ID: socialnet.TweetID(i + 1), AuthorID: id,
			Text: "benign-looking text from member", CreatedAt: now, Spam: true,
		})
	}
	// Suspend exactly one member.
	first := w.Account(campaign.MemberIDs[0])
	first.Suspended = true

	c := &Corpus{Tweets: tweets, Users: users}
	p := NewPipeline(DefaultConfig())
	r := &Result{
		SpamTweets: make(map[socialnet.TweetID]Method),
		HamTweets:  make(map[socialnet.TweetID]Method),
		Spammers:   make(map[socialnet.AccountID]Method),
		Benign:     make(map[socialnet.AccountID]Method),
	}
	p.labelSuspended(c, r)
	var userGroups [][]socialnet.AccountID
	var tweetGroups [][]*socialnet.Tweet
	parallel.ForEach(2, p.cfg.Workers, func(i int) {
		if i == 0 {
			userGroups = p.clusterUsers(c)
		} else {
			tweetGroups = p.clusterTweets(c)
		}
	})
	p.propagate(r, userGroups, tweetGroups)

	labeled := 0
	for _, id := range campaign.MemberIDs {
		if _, ok := r.Spammers[id]; ok {
			labeled++
		}
	}
	if labeled < len(campaign.MemberIDs)*3/4 {
		t.Fatalf("clustering labeled %d/%d campaign members",
			labeled, len(campaign.MemberIDs))
	}
}

func TestManualCheckCleansFalseSuspensions(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a benign account and falsely suspend it.
	var victim *socialnet.Account
	for _, a := range w.Accounts() {
		if a.Kind == socialnet.KindNormal && !a.Suspended {
			victim = a
			break
		}
	}
	victim.Suspended = true
	now := simclock.Epoch
	tweets := []*socialnet.Tweet{
		{ID: 1, AuthorID: victim.ID, Text: "an ordinary benign tweet", CreatedAt: now},
	}
	c := &Corpus{Tweets: tweets, Users: map[socialnet.AccountID]*socialnet.Account{victim.ID: victim}}
	p := NewPipeline(DefaultConfig())
	r := p.Run(c, NewPerfectOracle(w))
	if _, ok := r.Spammers[victim.ID]; ok {
		t.Fatal("manual check failed to clear falsely suspended user")
	}
	if _, ok := r.SpamTweets[1]; ok {
		t.Fatal("manual check failed to clear the false spam label")
	}
}

func TestManualBudgetBoundsQueries(t *testing.T) {
	corpus, w := collectCorpus(t, 4)
	cfg := DefaultConfig()
	cfg.ManualBudget = 10
	p := NewPipeline(cfg)
	r := p.Run(corpus, NewPerfectOracle(w))
	labeled := 0
	for _, m := range r.SpamTweets {
		if m == MethodManual {
			labeled++
		}
	}
	for _, m := range r.HamTweets {
		if m == MethodManual {
			labeled++
		}
	}
	// Manual labels on previously-unlabeled tweets are capped by budget;
	// verification flips can add more ham labels, so only check the cap
	// loosely via ManualChecks accounting: at most every tweet verified
	// once + every user verified once + the unlabeled budget.
	if labeled == 0 {
		t.Fatal("manual stage labeled nothing")
	}
	bound := len(corpus.Tweets) + len(corpus.Users) + 10
	if r.ManualChecks > bound {
		t.Fatalf("manual check count %d exceeds bound %d", r.ManualChecks, bound)
	}
}

func TestNilOracleSkipsManualStage(t *testing.T) {
	corpus, _ := collectCorpus(t, 3)
	p := NewPipeline(DefaultConfig())
	r := p.Run(corpus, nil)
	if r.ManualChecks != 0 {
		t.Fatal("manual checks ran without an oracle")
	}
}

func TestNoisyOracleDeterministicPerItem(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 200
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := NewNoisyOracle(w, 0.3, 5)
	tw := &socialnet.Tweet{ID: 42, Spam: true}
	first := o.TweetIsSpam(tw)
	for i := 0; i < 10; i++ {
		if o.TweetIsSpam(tw) != first {
			t.Fatal("oracle answer changed between queries")
		}
	}
}

func TestNoisyOracleErrorRate(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 200
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := NewNoisyOracle(w, 0.1, 5)
	wrong := 0
	const n = 5000
	for i := 0; i < n; i++ {
		tw := &socialnet.Tweet{ID: socialnet.TweetID(i), Spam: true}
		if !o.TweetIsSpam(tw) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.05 || rate > 0.15 {
		t.Fatalf("observed error rate %v, want ≈0.1", rate)
	}
}

func TestNoisyOracleClampssErrRate(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 100
	w, _ := socialnet.NewWorld(cfg)
	o := NewNoisyOracle(w, -1, 1)
	if o.errRate != 0 {
		t.Fatal("negative error rate not clamped")
	}
	o = NewNoisyOracle(w, 2, 1)
	if o.errRate >= 1 {
		t.Fatal("error rate >= 1 not clamped")
	}
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		MethodSuspended:  "Suspended",
		MethodClustering: "Clustering",
		MethodRule:       "Rule Based",
		MethodManual:     "Human Labeling",
		Method(0):        "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("Method(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestStripMentions(t *testing.T) {
	got := stripMentions("@alice check @bob this out")
	if got != "check this out" {
		t.Fatalf("stripMentions = %q", got)
	}
}

func TestClusterTextsGroupsNearDuplicates(t *testing.T) {
	texts := []string{
		"win free bitcoin today instant payout click now",
		"win free bitcoin today instant payout click here",
		"completely unrelated gardening thoughts about tulips",
	}
	groups := clusterTexts(texts, 0.7, 1, 0)
	var big []int
	for _, g := range groups {
		if len(g) > 1 {
			big = g
		}
	}
	if len(big) != 2 {
		t.Fatalf("near-duplicates grouped as %v", groups)
	}
}

func TestTweetWindowSplitsGroups(t *testing.T) {
	now := simclock.Epoch
	mk := func(id socialnet.TweetID, at time.Time) *socialnet.Tweet {
		return &socialnet.Tweet{
			ID: id, AuthorID: socialnet.AccountID(id),
			Text:      "identical spam promotional text for duplicate detection",
			CreatedAt: at,
		}
	}
	c := &Corpus{
		Tweets: []*socialnet.Tweet{
			mk(1, now), mk(2, now.Add(time.Hour)),
			mk(3, now.Add(80*24*time.Hour)), // far outside any shared window
		},
		Users: map[socialnet.AccountID]*socialnet.Account{},
	}
	p := NewPipeline(DefaultConfig())
	groups := p.clusterTweets(c)
	for _, g := range groups {
		for _, tw := range g {
			if tw.ID == 3 && len(g) > 1 {
				t.Fatal("tweet outside the 1-day window grouped with older duplicates")
			}
		}
	}
}

func TestResultIsSpam(t *testing.T) {
	r := &Result{SpamTweets: map[socialnet.TweetID]Method{5: MethodRule}}
	if !r.IsSpam(5) || r.IsSpam(6) {
		t.Fatal("IsSpam wrong")
	}
}

func TestClusterPassTimings(t *testing.T) {
	corpus, w := collectCorpus(t, 3)
	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	NewPipeline(cfg).Run(corpus, NewNoisyOracle(w, 0.02, 7))

	passes := reg.HistogramVec("ph_label_cluster_seconds", "", nil, "pass")
	for _, pass := range []string{"image", "name", "description", "tweets"} {
		if got := passes.With(pass).Count(); got != 1 {
			t.Fatalf("cluster pass %q observed %d times, want 1", pass, got)
		}
	}
}
