// Package ml provides the shared machine-learning plumbing for the
// pseudo-honeypot detector (paper §IV-C): datasets, stratified K-fold
// cross-validation, evaluation metrics (accuracy, precision, recall, false
// positive rate), and feature standardization. The classifier families the
// paper compares live in the subpackages tree, forest, knn, svm, and boost.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
)

// Classifier is a binary classifier over dense feature vectors. The
// positive class is "spam".
type Classifier interface {
	// Fit trains on the given samples. Implementations must copy any
	// state they keep; callers may reuse the slices.
	Fit(x [][]float64, y []bool) error
	// Predict classifies one sample.
	Predict(x []float64) bool
}

// Dataset is a labeled sample collection.
type Dataset struct {
	X [][]float64
	Y []bool
}

// NewDataset creates a dataset, validating that lengths match.
func NewDataset(x [][]float64, y []bool) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d samples but %d labels", len(x), len(y))
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Positives returns the number of positive (spam) samples.
func (d *Dataset) Positives() int {
	n := 0
	for _, v := range d.Y {
		if v {
			n++
		}
	}
	return n
}

// Subset returns the dataset restricted to the given indices (views, not
// copies, of the sample vectors).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X: make([][]float64, len(idx)),
		Y: make([]bool, len(idx)),
	}
	for i, j := range idx {
		sub.X[i] = d.X[j]
		sub.Y[i] = d.Y[j]
	}
	return sub
}

// Metrics are the classification quality measures of the paper's Table IV.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	// FPR is the false positive rate FP/(FP+TN).
	FPR float64
	// F1 is the harmonic mean of precision and recall.
	F1 float64

	TP, FP, TN, FN int
}

// Evaluate scores predictions against truth.
func Evaluate(pred, truth []bool) Metrics {
	var m Metrics
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			m.TP++
		case pred[i] && !truth[i]:
			m.FP++
		case !pred[i] && truth[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	total := m.TP + m.FP + m.TN + m.FN
	if total > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(total)
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.FP+m.TN > 0 {
		m.FPR = float64(m.FP) / float64(m.FP+m.TN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// StratifiedFolds partitions indices into k folds preserving the class
// ratio, shuffled by rng.
func StratifiedFolds(y []bool, k int, rng *rand.Rand) ([][]int, error) {
	if k < 2 {
		return nil, errors.New("ml: need at least 2 folds")
	}
	if len(y) < k {
		return nil, fmt.Errorf("ml: %d samples cannot fill %d folds", len(y), k)
	}
	var pos, neg []int
	for i, v := range y {
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds, nil
}

// CrossValidate runs k-fold cross-validation, training a fresh classifier
// from factory on each fold's complement and pooling the out-of-fold
// predictions into a single Metrics (micro-averaged, as the paper reports).
// Folds run concurrently on the process-default worker pool; see
// CrossValidateWorkers for the determinism contract.
func CrossValidate(d *Dataset, k int, factory func() Classifier, seed int64) (Metrics, error) {
	return CrossValidateWorkers(d, k, factory, seed, 0)
}

// CrossValidateWorkers is CrossValidate with an explicit fold-level worker
// count (0 resolves the process default). Every fold owns a disjoint
// train/test index split and a fresh classifier, so the pooled metrics are
// bit-identical at any worker count. factory must be safe to call
// concurrently and must return classifiers that do not share mutable
// state.
func CrossValidateWorkers(d *Dataset, k int, factory func() Classifier, seed int64, workers int) (Metrics, error) {
	folds, err := StratifiedFolds(d.Y, k, rand.New(rand.NewSource(seed)))
	if err != nil {
		return Metrics{}, err
	}
	// Precompute every fold's training indices in one pass over the
	// flattened fold list, instead of re-concatenating the k-1 other
	// folds inside the per-fold loop: fold fi trains on all[:off[fi]] +
	// all[off[fi+1]:].
	total := 0
	for _, fold := range folds {
		total += len(fold)
	}
	all := make([]int, 0, total)
	off := make([]int, len(folds)+1)
	for fi, fold := range folds {
		all = append(all, fold...)
		off[fi+1] = off[fi] + len(fold)
	}
	trainSets := make([][]int, len(folds))
	for fi := range folds {
		trainIdx := make([]int, 0, total-(off[fi+1]-off[fi]))
		trainIdx = append(trainIdx, all[:off[fi]]...)
		trainIdx = append(trainIdx, all[off[fi+1]:]...)
		trainSets[fi] = trainIdx
	}

	pred := make([]bool, d.Len())
	err = parallel.ForEachErr(len(folds), workers, func(fi int) error {
		train := d.Subset(trainSets[fi])
		clf := factory()
		if err := clf.Fit(train.X, train.Y); err != nil {
			return fmt.Errorf("fold %d: %w", fi, err)
		}
		// Folds hold disjoint index sets, so these writes never overlap.
		for _, idx := range folds[fi] {
			pred[idx] = clf.Predict(d.X[idx])
		}
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}
	return Evaluate(pred, d.Y), nil
}

// Standardizer centers and scales features to zero mean and unit variance.
// Distance- and margin-based classifiers (kNN, SVM) depend on it.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-feature statistics.
func FitStandardizer(x [][]float64) *Standardizer {
	if len(x) == 0 {
		return &Standardizer{}
	}
	d := len(x[0])
	s := &Standardizer{
		Mean: make([]float64, d),
		Std:  make([]float64, d),
	}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			diff := v - s.Mean[j]
			s.Std[j] += diff * diff
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform standardizes one vector into a new slice.
func (s *Standardizer) Transform(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for j, v := range x {
		if j < len(s.Mean) {
			out[j] = (v - s.Mean[j]) / s.Std[j]
		} else {
			out[j] = v
		}
	}
	return out
}

// TransformAll standardizes a whole matrix.
func (s *Standardizer) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}
