package knn

import (
	"container/heap"
	"sort"
)

// kdNode is one node of a kd-tree over standardized training points.
type kdNode struct {
	point []float64
	pos   bool
	axis  int
	left  *kdNode
	right *kdNode
}

// buildKD constructs a kd-tree by median splits. idx is mutated.
func buildKD(points [][]float64, labels []bool, idx []int, depth int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	d := len(points[idx[0]])
	axis := depth % d
	sort.Slice(idx, func(a, b int) bool {
		return points[idx[a]][axis] < points[idx[b]][axis]
	})
	mid := len(idx) / 2
	n := &kdNode{
		point: points[idx[mid]],
		pos:   labels[idx[mid]],
		axis:  axis,
	}
	n.left = buildKD(points, labels, idx[:mid], depth+1)
	n.right = buildKD(points, labels, idx[mid+1:], depth+1)
	return n
}

// search walks the tree collecting the k nearest neighbours of q into h.
func (n *kdNode) search(q []float64, k int, h *neighbourHeap) {
	if n == nil {
		return
	}
	d := sqDist(q, n.point)
	if h.Len() < k {
		heap.Push(h, neighbour{dist: d, pos: n.pos})
	} else if d < (*h)[0].dist {
		(*h)[0] = neighbour{dist: d, pos: n.pos}
		heap.Fix(h, 0)
	}

	var qv, pv float64
	if n.axis < len(q) {
		qv = q[n.axis]
	}
	if n.axis < len(n.point) {
		pv = n.point[n.axis]
	}
	diff := qv - pv
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	near.search(q, k, h)
	// Prune the far side unless the splitting plane is within the current
	// worst distance.
	if h.Len() < k || diff*diff < (*h)[0].dist {
		far.search(q, k, h)
	}
}
