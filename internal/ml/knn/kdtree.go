package knn

import "container/heap"

// kdNode is one node of a kd-tree over standardized training points.
type kdNode struct {
	point []float64
	pos   bool
	axis  int
	left  *kdNode
	right *kdNode
}

// buildKD constructs a kd-tree by median splits. idx is mutated. Each
// level places the median by deterministic quickselect instead of a full
// sort, so index build is O(n·log n) overall rather than O(n·log²n).
func buildKD(points [][]float64, labels []bool, idx []int, depth int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	d := len(points[idx[0]])
	axis := depth % d
	mid := len(idx) / 2
	selectMedian(points, idx, axis, mid)
	n := &kdNode{
		point: points[idx[mid]],
		pos:   labels[idx[mid]],
		axis:  axis,
	}
	n.left = buildKD(points, labels, idx[:mid], depth+1)
	n.right = buildKD(points, labels, idx[mid+1:], depth+1)
	return n
}

// kdLess orders samples a, b by (value along axis, sample index) — a
// strict total order, so selection is deterministic and terminates even
// on all-equal coordinates.
func kdLess(points [][]float64, axis, a, b int) bool {
	va, vb := points[a][axis], points[b][axis]
	if va != vb {
		return va < vb
	}
	return a < b
}

// selectMedian partitions idx so idx[mid] holds the element of rank mid
// under kdLess, with everything before it ranking lower and everything
// after ranking higher — Hoare quickselect with a median-of-three pivot,
// expected O(len(idx)) per call.
func selectMedian(points [][]float64, idx []int, axis, mid int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		m := lo + (hi-lo)/2
		if kdLess(points, axis, idx[m], idx[lo]) {
			idx[m], idx[lo] = idx[lo], idx[m]
		}
		if kdLess(points, axis, idx[hi], idx[lo]) {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if kdLess(points, axis, idx[hi], idx[m]) {
			idx[hi], idx[m] = idx[m], idx[hi]
		}
		pivot := idx[m]
		i, j := lo, hi
		for i <= j {
			for kdLess(points, axis, idx[i], pivot) {
				i++
			}
			for kdLess(points, axis, pivot, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		switch {
		case mid <= j:
			hi = j
		case mid >= i:
			lo = i
		default:
			return
		}
	}
}

// search walks the tree collecting the k nearest neighbours of q into h.
func (n *kdNode) search(q []float64, k int, h *neighbourHeap) {
	if n == nil {
		return
	}
	d := sqDist(q, n.point)
	if h.Len() < k {
		heap.Push(h, neighbour{dist: d, pos: n.pos})
	} else if d < (*h)[0].dist {
		(*h)[0] = neighbour{dist: d, pos: n.pos}
		heap.Fix(h, 0)
	}

	var qv, pv float64
	if n.axis < len(q) {
		qv = q[n.axis]
	}
	if n.axis < len(n.point) {
		pv = n.point[n.axis]
	}
	diff := qv - pv
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	near.search(q, k, h)
	// Prune the far side unless the splitting plane is within the current
	// worst distance.
	if h.Len() < k || diff*diff < (*h)[0].dist {
		far.search(q, k, h)
	}
}
