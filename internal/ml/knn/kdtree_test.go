package knn

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSelectMedianMatchesSort cross-checks quickselect against a full
// sort under the same (value, index) total order, on random data and on
// heavily tied data where naive pivoting degenerates.
func TestSelectMedianMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func(n int, distinct int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			v := rng.Float64()
			if distinct > 0 {
				v = float64(rng.Intn(distinct))
			}
			pts[i] = []float64{v}
		}
		return pts
	}
	for _, tc := range []struct{ n, distinct int }{
		{1, 0}, {2, 0}, {17, 0}, {100, 0}, {257, 0},
		{100, 1}, {100, 2}, {100, 5}, {64, 3},
	} {
		points := gen(tc.n, tc.distinct)
		idx := make([]int, tc.n)
		want := make([]int, tc.n)
		for i := range idx {
			idx[i] = i
			want[i] = i
		}
		sort.Slice(want, func(a, b int) bool { return kdLess(points, 0, want[a], want[b]) })
		mid := tc.n / 2
		selectMedian(points, idx, 0, mid)
		if idx[mid] != want[mid] {
			t.Fatalf("n=%d distinct=%d: selected %d, sorted median %d",
				tc.n, tc.distinct, idx[mid], want[mid])
		}
		for _, i := range idx[:mid] {
			if kdLess(points, 0, idx[mid], i) {
				t.Fatalf("n=%d distinct=%d: left element %d ranks above median", tc.n, tc.distinct, i)
			}
		}
		for _, i := range idx[mid+1:] {
			if kdLess(points, 0, i, idx[mid]) {
				t.Fatalf("n=%d distinct=%d: right element %d ranks below median", tc.n, tc.distinct, i)
			}
		}
	}
}

// TestKDTreeAgreesOnTiedCoordinates pins kd-vs-linear agreement on a grid
// dataset where every axis value repeats many times — the case the
// quickselect rewrite is most likely to disturb.
func TestKDTreeAgreesOnTiedCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []bool
	for i := 0; i < 300; i++ {
		a := float64(rng.Intn(4))
		b := float64(rng.Intn(4))
		x = append(x, []float64{a, b})
		y = append(y, a+b >= 4)
	}
	kd := New(Config{K: 5})
	lin := New(Config{K: 5, LinearScan: true})
	if err := kd.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := lin.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		q := []float64{rng.Float64() * 4, rng.Float64() * 4}
		if kd.Predict(q) != lin.Predict(q) {
			t.Fatalf("kd and linear disagree on %v", q)
		}
	}
}
