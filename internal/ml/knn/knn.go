// Package knn implements a k-nearest-neighbours classifier with Euclidean
// distance over standardized features — one of the paper's five compared
// detectors.
package knn

import (
	"container/heap"
	"errors"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
)

// Config holds kNN hyperparameters.
type Config struct {
	// K is the neighbourhood size (default 5).
	K int
	// MaxTrain caps the stored training set by uniform subsampling;
	// non-positive keeps everything.
	MaxTrain int
	// Seed drives the MaxTrain subsampling.
	Seed int64
	// LinearScan forces brute-force search instead of the kd-tree.
	// The kd-tree wins at low dimensionality; at the detector's 58
	// dimensions pruning is weak, so both paths are kept and the tests
	// verify they agree exactly.
	LinearScan bool
}

// KNN is a trained classifier.
type KNN struct {
	cfg    Config
	scaler *ml.Standardizer
	x      [][]float64
	y      []bool
	tree   *kdNode
}

// New creates an untrained kNN classifier.
func New(cfg Config) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{cfg: cfg}
}

// Fit stores (a possibly subsampled copy of) the standardized training set.
func (k *KNN) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("knn: empty or mismatched training data")
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	if k.cfg.MaxTrain > 0 && len(idx) > k.cfg.MaxTrain {
		rng := rand.New(rand.NewSource(k.cfg.Seed))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:k.cfg.MaxTrain]
	}
	k.scaler = ml.FitStandardizer(x)
	k.x = make([][]float64, len(idx))
	k.y = make([]bool, len(idx))
	for i, j := range idx {
		k.x[i] = k.scaler.Transform(x[j])
		k.y[i] = y[j]
	}
	if !k.cfg.LinearScan {
		order := make([]int, len(k.x))
		for i := range order {
			order[i] = i
		}
		k.tree = buildKD(k.x, k.y, order, 0)
	}
	return nil
}

// neighbour heap keeps the K closest points (max-heap on distance).
type neighbour struct {
	dist float64
	pos  bool
}

type neighbourHeap []neighbour

func (h neighbourHeap) Len() int           { return len(h) }
func (h neighbourHeap) Less(i, j int) bool { return h[i].dist > h[j].dist }
func (h neighbourHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighbourHeap) Push(v any)        { *h = append(*h, v.(neighbour)) }
func (h *neighbourHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Predict returns the majority label among the K nearest neighbours.
func (k *KNN) Predict(x []float64) bool {
	if len(k.x) == 0 {
		return false
	}
	q := k.scaler.Transform(x)
	h := make(neighbourHeap, 0, k.cfg.K+1)
	if k.tree != nil {
		k.tree.search(q, k.cfg.K, &h)
	} else {
		for i, p := range k.x {
			d := sqDist(q, p)
			if len(h) < k.cfg.K {
				heap.Push(&h, neighbour{dist: d, pos: k.y[i]})
				continue
			}
			if d < h[0].dist {
				h[0] = neighbour{dist: d, pos: k.y[i]}
				heap.Fix(&h, 0)
			}
		}
	}
	pos := 0
	for _, n := range h {
		if n.pos {
			pos++
		}
	}
	return pos*2 > len(h)
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
