package knn

import (
	"math/rand"
	"testing"
)

// twoBlobs is a linearly separated two-cluster task.
func twoBlobs(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		cx := -2.0
		if pos {
			cx = 2.0
		}
		x = append(x, []float64{cx + rng.NormFloat64()*0.8, rng.NormFloat64()})
		y = append(y, pos)
	}
	return x, y
}

func TestKNNSeparatesBlobs(t *testing.T) {
	x, y := twoBlobs(400, 1)
	k := New(Config{K: 5})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := twoBlobs(200, 2)
	correct := 0
	for i := range tx {
		if k.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.95 {
		t.Fatalf("accuracy %v on separated blobs", acc)
	}
}

func TestKNNStandardizesFeatures(t *testing.T) {
	// Feature 1 carries the signal but at a tiny scale; feature 0 is
	// large-scale noise. Without standardization kNN would ignore the
	// signal dimension entirely.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []bool
	for i := 0; i < 400; i++ {
		pos := i%2 == 0
		signal := -0.001
		if pos {
			signal = 0.001
		}
		x = append(x, []float64{rng.NormFloat64() * 1000, signal + rng.NormFloat64()*0.0003})
		y = append(y, pos)
	}
	k := New(Config{K: 7})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if k.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.9 {
		t.Fatalf("accuracy %v; standardization not effective", acc)
	}
}

func TestKNNMaxTrainCapsStorage(t *testing.T) {
	x, y := twoBlobs(1000, 1)
	k := New(Config{K: 3, MaxTrain: 100, Seed: 1})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(k.x) != 100 {
		t.Fatalf("stored %d samples, want 100", len(k.x))
	}
	// Still classifies well.
	tx, ty := twoBlobs(100, 2)
	correct := 0
	for i := range tx {
		if k.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.9 {
		t.Fatalf("capped accuracy %v", acc)
	}
}

func TestKNNKOne(t *testing.T) {
	x := [][]float64{{0}, {10}}
	y := []bool{false, true}
	k := New(Config{K: 1})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if k.Predict([]float64{1}) {
		t.Fatal("nearest neighbour of 1 should be 0 (negative)")
	}
	if !k.Predict([]float64{9}) {
		t.Fatal("nearest neighbour of 9 should be 10 (positive)")
	}
}

func TestKNNDefaultK(t *testing.T) {
	k := New(Config{})
	if k.cfg.K != 5 {
		t.Fatalf("default K = %d, want 5", k.cfg.K)
	}
}

func TestKNNEmptyFitErrors(t *testing.T) {
	k := New(Config{})
	if err := k.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
}

func TestKNNPredictBeforeFit(t *testing.T) {
	k := New(Config{})
	if k.Predict([]float64{1}) {
		t.Fatal("unfitted kNN predicted positive")
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []bool{true, true, false}
	k := New(Config{K: 10})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// All three points vote; majority positive.
	if !k.Predict([]float64{1}) {
		t.Fatal("majority vote over full set wrong")
	}
}

// The kd-tree and the linear scan must give identical majority votes: the
// tree is an exact-search acceleration, not an approximation.
func TestKDTreeMatchesLinearScan(t *testing.T) {
	x, y := twoBlobs(500, 9)
	treeKNN := New(Config{K: 7})
	linKNN := New(Config{K: 7, LinearScan: true})
	if err := treeKNN.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := linKNN.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe, _ := twoBlobs(300, 10)
	for i, p := range probe {
		if treeKNN.Predict(p) != linKNN.Predict(p) {
			t.Fatalf("query %d: kd-tree and linear scan disagree", i)
		}
	}
}

func TestKDTreeHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var x [][]float64
	var y []bool
	for i := 0; i < 300; i++ {
		row := make([]float64, 20)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		pos := i%2 == 0
		if pos {
			row[3] += 3
		}
		x = append(x, row)
		y = append(y, pos)
	}
	treeKNN := New(Config{K: 5})
	linKNN := New(Config{K: 5, LinearScan: true})
	if err := treeKNN.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := linKNN.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := make([]float64, 20)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if treeKNN.Predict(row) != linKNN.Predict(row) {
			t.Fatalf("query %d: high-dim disagreement", i)
		}
	}
}
