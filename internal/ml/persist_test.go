package ml

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDatasetCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []bool
	for i := 0; i < 50; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.Float64() * 1e6, -0.5})
		y = append(y, i%3 == 0)
	}
	d, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Positives() != d.Positives() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			back.Len(), back.Positives(), d.Len(), d.Positives())
	}
	for i := range d.X {
		for j := range d.X[i] {
			if back.X[i][j] != d.X[i][j] {
				t.Fatalf("value (%d,%d) changed: %v vs %v",
					i, j, back.X[i][j], d.X[i][j])
			}
		}
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestDatasetCSVEmptyDataset(t *testing.T) {
	d, _ := NewDataset(nil, nil)
	var buf strings.Builder
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatal("empty dataset grew")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                   // no header
		"f0,notlabel\n1,0\n", // bad header
		"f0,label\nxyz,1\n",  // bad float
		"f0,label\n1,2\n",    // bad label value
		"f0,f1,label\n1,0\n", // short row (csv reader errors)
	}
	for i, give := range cases {
		if _, err := ReadCSV(strings.NewReader(give)); err == nil {
			t.Errorf("case %d accepted: %q", i, give)
		}
	}
}

func TestWriteCSVRejectsRaggedRows(t *testing.T) {
	d := &Dataset{X: [][]float64{{1, 2}, {3}}, Y: []bool{true, false}}
	var buf strings.Builder
	if err := d.WriteCSV(&buf); err == nil {
		t.Fatal("ragged dataset accepted")
	}
}
