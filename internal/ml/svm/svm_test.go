package svm

import (
	"math/rand"
	"testing"
)

func separable(n int, margin float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		base := -margin
		if pos {
			base = margin
		}
		x = append(x, []float64{base + rng.NormFloat64()*0.5, rng.NormFloat64()})
		y = append(y, pos)
	}
	return x, y
}

func TestSVMSeparableData(t *testing.T) {
	x, y := separable(600, 2, 1)
	s := New(Config{Epochs: 20, Seed: 1})
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := separable(300, 2, 2)
	correct := 0
	for i := range tx {
		if s.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.97 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
}

func TestSVMDecisionSign(t *testing.T) {
	x, y := separable(600, 3, 1)
	s := New(Config{Epochs: 20, Seed: 1})
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if s.Decision([]float64{3, 0}) <= 0 {
		t.Fatal("positive-side decision not positive")
	}
	if s.Decision([]float64{-3, 0}) >= 0 {
		t.Fatal("negative-side decision not negative")
	}
}

func TestSVMPositiveWeightRaisesRecall(t *testing.T) {
	// Imbalanced task: 10% positives. A higher positive weight should
	// recover more positives.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []bool
	for i := 0; i < 1500; i++ {
		pos := rng.Float64() < 0.1
		base := -0.8
		if pos {
			base = 0.8
		}
		x = append(x, []float64{base + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, pos)
	}
	recall := func(weight float64) float64 {
		s := New(Config{Epochs: 20, PositiveWeight: weight, Seed: 1})
		if err := s.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		tp, fn := 0, 0
		for i := range x {
			if !y[i] {
				continue
			}
			if s.Predict(x[i]) {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	low, high := recall(1), recall(6)
	if high <= low {
		t.Fatalf("recall with weight 6 (%v) <= weight 1 (%v)", high, low)
	}
}

func TestSVMDeterministicForSeed(t *testing.T) {
	x, y := separable(300, 2, 1)
	fit := func() *SVM {
		s := New(Config{Epochs: 10, Seed: 4})
		if err := s.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := fit(), fit()
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatal("same-seed SVMs have different weights")
		}
	}
}

func TestSVMDefaults(t *testing.T) {
	s := New(Config{})
	if s.cfg.Lambda != 1e-4 || s.cfg.Epochs != 10 || s.cfg.PositiveWeight != 1 {
		t.Fatalf("defaults = %+v", s.cfg)
	}
}

func TestSVMEmptyFitErrors(t *testing.T) {
	s := New(Config{})
	if err := s.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
}

func TestSVMPredictBeforeFit(t *testing.T) {
	s := New(Config{})
	if s.Predict([]float64{1}) {
		t.Fatal("unfitted SVM predicted positive")
	}
}
