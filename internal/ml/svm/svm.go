// Package svm implements a linear support vector machine trained with the
// Pegasos stochastic sub-gradient algorithm on standardized features — one
// of the paper's five compared detectors.
package svm

import (
	"errors"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
)

// Config holds SVM hyperparameters.
type Config struct {
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the data (default 10).
	Epochs int
	// PositiveWeight scales updates for the positive (spam) class to
	// counter class imbalance (default 1).
	PositiveWeight float64
	// Seed drives the stochastic sampling.
	Seed int64
}

// SVM is a trained linear SVM.
type SVM struct {
	cfg    Config
	scaler *ml.Standardizer
	w      []float64
	b      float64
}

// New creates an untrained SVM.
func New(cfg Config) *SVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.PositiveWeight <= 0 {
		cfg.PositiveWeight = 1
	}
	return &SVM{cfg: cfg}
}

// Fit trains with Pegasos: at step t, pick a random sample, update with
// learning rate 1/(λt) on hinge-loss violations, and decay the weights.
func (s *SVM) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("svm: empty or mismatched training data")
	}
	s.scaler = ml.FitStandardizer(x)
	xs := s.scaler.TransformAll(x)
	d := len(xs[0])
	s.w = make([]float64, d)
	s.b = 0

	rng := rand.New(rand.NewSource(s.cfg.Seed))
	lambda := s.cfg.Lambda
	steps := s.cfg.Epochs * len(xs)
	for t := 1; t <= steps; t++ {
		i := rng.Intn(len(xs))
		eta := 1 / (lambda * float64(t))
		yi := -1.0
		weight := 1.0
		if y[i] {
			yi = 1
			weight = s.cfg.PositiveWeight
		}
		margin := yi * (dot(s.w, xs[i]) + s.b)
		// Weight decay from the regularizer.
		decay := 1 - eta*lambda
		if decay < 0 {
			decay = 0
		}
		for j := range s.w {
			s.w[j] *= decay
		}
		if margin < 1 {
			step := eta * yi * weight
			for j := range s.w {
				s.w[j] += step * xs[i][j]
			}
			s.b += step
		}
	}
	return nil
}

// Predict classifies one sample by the sign of the decision function.
func (s *SVM) Predict(x []float64) bool {
	return s.Decision(x) > 0
}

// Decision returns the signed margin of one sample.
func (s *SVM) Decision(x []float64) float64 {
	if s.scaler == nil {
		return -1
	}
	return dot(s.w, s.scaler.Transform(x)) + s.b
}

func dot(a, b []float64) float64 {
	s := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
