package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvaluateConfusion(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, false, true, true}
	m := Evaluate(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.TN != 1 || m.FN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if m.Accuracy != 0.6 {
		t.Fatalf("accuracy = %v, want 0.6", m.Accuracy)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-12 {
		t.Fatalf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-2.0/3.0) > 1e-12 {
		t.Fatalf("recall = %v", m.Recall)
	}
	if m.FPR != 0.5 {
		t.Fatalf("FPR = %v, want 0.5", m.FPR)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(nil, nil)
	if m.Accuracy != 0 || m.Precision != 0 || m.Recall != 0 || m.FPR != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestEvaluateAllCorrect(t *testing.T) {
	pred := []bool{true, false, true}
	m := Evaluate(pred, pred)
	if m.Accuracy != 1 || m.Precision != 1 || m.Recall != 1 || m.FPR != 0 || m.F1 != 1 {
		t.Fatalf("perfect metrics = %+v", m)
	}
}

func TestNewDatasetValidates(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
	d, err := NewDataset([][]float64{{1}, {2}}, []bool{true, false})
	if err != nil || d.Len() != 2 || d.Positives() != 1 {
		t.Fatalf("dataset: %v %+v", err, d)
	}
}

func TestSubset(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}}, []bool{true, false, true})
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.X[0][0] != 3 || !s.Y[1] {
		t.Fatalf("subset = %+v", s)
	}
}

func TestStratifiedFoldsPreserveRatio(t *testing.T) {
	y := make([]bool, 1000)
	for i := 0; i < 100; i++ {
		y[i] = true // 10% positive
	}
	folds, err := StratifiedFolds(y, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, fold := range folds {
		pos := 0
		for _, idx := range fold {
			if seen[idx] {
				t.Fatal("index appears in two folds")
			}
			seen[idx] = true
			if y[idx] {
				pos++
			}
		}
		if pos != 10 {
			t.Fatalf("fold has %d positives, want 10", pos)
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("folds cover %d samples, want 1000", len(seen))
	}
}

func TestStratifiedFoldsErrors(t *testing.T) {
	if _, err := StratifiedFolds([]bool{true}, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := StratifiedFolds([]bool{true}, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("more folds than samples accepted")
	}
}

// thresholdClassifier predicts by comparing feature 0 to a learned mean.
type thresholdClassifier struct{ cut float64 }

func (c *thresholdClassifier) Fit(x [][]float64, y []bool) error {
	var posSum, negSum float64
	var posN, negN int
	for i := range x {
		if y[i] {
			posSum += x[i][0]
			posN++
		} else {
			negSum += x[i][0]
			negN++
		}
	}
	c.cut = (posSum/float64(posN) + negSum/float64(negN)) / 2
	return nil
}

func (c *thresholdClassifier) Predict(x []float64) bool { return x[0] > c.cut }

func TestCrossValidateSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []bool
	for i := 0; i < 400; i++ {
		pos := i%2 == 0
		v := rng.NormFloat64()
		if pos {
			v += 6
		}
		x = append(x, []float64{v})
		y = append(y, pos)
	}
	d, _ := NewDataset(x, y)
	m, err := CrossValidate(d, 10, func() Classifier { return &thresholdClassifier{} }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.98 {
		t.Fatalf("CV accuracy %v on separable data", m.Accuracy)
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	s := FitStandardizer(x)
	if math.Abs(s.Mean[0]-3) > 1e-12 || math.Abs(s.Mean[1]-30) > 1e-12 {
		t.Fatalf("means = %v", s.Mean)
	}
	out := s.TransformAll(x)
	for j := 0; j < 2; j++ {
		var mean, varSum float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			varSum += (out[i][j] - mean) * (out[i][j] - mean)
		}
		if math.Abs(mean) > 1e-9 || math.Abs(varSum/3-1) > 1e-9 {
			t.Fatalf("feature %d not standardized: mean=%v var=%v", j, mean, varSum/3)
		}
	}
}

func TestStandardizerConstantFeature(t *testing.T) {
	x := [][]float64{{7}, {7}, {7}}
	s := FitStandardizer(x)
	out := s.Transform([]float64{7})
	if out[0] != 0 {
		t.Fatalf("constant feature transforms to %v, want 0", out[0])
	}
}

func TestStandardizerEmpty(t *testing.T) {
	s := FitStandardizer(nil)
	out := s.Transform([]float64{1, 2})
	if len(out) != 2 || out[0] != 1 {
		t.Fatal("empty standardizer should pass through")
	}
}

// Property: Evaluate counts always sum to the number of samples and rates
// stay in [0, 1].
func TestEvaluateBoundsProperty(t *testing.T) {
	prop := func(pred, truth []bool) bool {
		n := len(pred)
		if len(truth) < n {
			n = len(truth)
		}
		m := Evaluate(pred[:n], truth[:n])
		if m.TP+m.FP+m.TN+m.FN != n {
			return false
		}
		for _, r := range []float64{m.Accuracy, m.Precision, m.Recall, m.FPR, m.F1} {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
