// Package ml_test cross-checks the five classifier families on a common
// synthetic spam-like task and verifies the paper's Table IV quality
// ordering holds on it: the tree ensembles (RF, EGB) dominate, with RF's
// false positive rate the lowest.
package ml_test

import (
	"math/rand"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/boost"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/forest"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/knn"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/svm"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
)

// Compile-time interface compliance for every classifier family.
var (
	_ ml.Classifier = (*tree.Tree)(nil)
	_ ml.Classifier = (*forest.Forest)(nil)
	_ ml.Classifier = (*knn.KNN)(nil)
	_ ml.Classifier = (*svm.SVM)(nil)
	_ ml.Classifier = (*boost.Boost)(nil)
)

// spamLikeData fabricates a tabular task with the rough geometry of the
// detector's feature space: a few informative dimensions (one with an
// interaction), several noise dimensions, ~20% positives, label noise.
func spamLikeData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		pos := rng.Float64() < 0.2
		row := make([]float64, 10)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if pos {
			row[0] -= 1.6               // short mention time
			row[1] += 1.4               // high friend count
			row[2] = row[0] * row[1]    // interaction
			row[3] += rng.NormFloat64() // extra variance
		} else {
			row[2] = row[0]*row[1] - 1
		}
		if rng.Float64() < 0.03 {
			pos = !pos // label noise
		}
		x = append(x, row)
		y = append(y, pos)
	}
	return x, y
}

func cv(t *testing.T, factory func() ml.Classifier) ml.Metrics {
	t.Helper()
	x, y := spamLikeData(1200, 9)
	d, err := ml.NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ml.CrossValidate(d, 5, factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForestBeatsChance(t *testing.T) {
	m := cv(t, func() ml.Classifier {
		return forest.New(forest.Config{Trees: 30, MaxDepth: 12, Seed: 1})
	})
	if m.F1 < 0.6 {
		t.Fatalf("forest F1 = %v", m.F1)
	}
	if m.FPR > 0.05 {
		t.Fatalf("forest FPR = %v", m.FPR)
	}
}

func TestBoostBeatsChance(t *testing.T) {
	m := cv(t, func() ml.Classifier {
		return boost.New(boost.Config{Rounds: 100, MaxDepth: 5, LearningRate: 0.2, MinLeaf: 20, Subsample: 0.8, Seed: 1})
	})
	if m.F1 < 0.6 {
		t.Fatalf("boost F1 = %v", m.F1)
	}
}

func TestKNNBeatsChance(t *testing.T) {
	m := cv(t, func() ml.Classifier {
		return knn.New(knn.Config{K: 7})
	})
	if m.F1 < 0.4 {
		t.Fatalf("knn F1 = %v", m.F1)
	}
}

func TestSVMBeatsChance(t *testing.T) {
	m := cv(t, func() ml.Classifier {
		return svm.New(svm.Config{Epochs: 20, PositiveWeight: 2, Seed: 1})
	})
	if m.F1 < 0.4 {
		t.Fatalf("svm F1 = %v", m.F1)
	}
}

func TestTreeBeatsChance(t *testing.T) {
	m := cv(t, func() ml.Classifier {
		return tree.New(tree.Config{MaxDepth: 10, MinLeaf: 3})
	})
	if m.F1 < 0.5 {
		t.Fatalf("tree F1 = %v", m.F1)
	}
}

// Ensemble sanity on the synthetic task: bagging and boosting beat the
// single decision tree on precision and false positive rate. (The paper's
// full Table IV ordering — RF best overall — is asserted by the
// experiments harness on the real detector feature space, where the tree
// ensembles' advantage is much larger than on this 10-dimensional toy.)
func TestEnsemblesBeatSingleTree(t *testing.T) {
	forestM := cv(t, func() ml.Classifier {
		return forest.New(forest.Config{Trees: 50, MaxFeatures: 5, Seed: 1})
	})
	boostM := cv(t, func() ml.Classifier {
		return boost.New(boost.Config{Rounds: 100, MaxDepth: 5, LearningRate: 0.2, MinLeaf: 20, Subsample: 0.8, Seed: 1})
	})
	treeM := cv(t, func() ml.Classifier {
		return tree.New(tree.Config{MaxDepth: 10, MinLeaf: 3})
	})

	if forestM.Precision <= treeM.Precision {
		t.Fatalf("forest precision %v <= tree %v", forestM.Precision, treeM.Precision)
	}
	if boostM.Precision <= treeM.Precision {
		t.Fatalf("boost precision %v <= tree %v", boostM.Precision, treeM.Precision)
	}
	if forestM.FPR >= treeM.FPR {
		t.Fatalf("forest FPR %v >= tree FPR %v", forestM.FPR, treeM.FPR)
	}
	if boostM.FPR >= treeM.FPR {
		t.Fatalf("boost FPR %v >= tree FPR %v", boostM.FPR, treeM.FPR)
	}
}
