package ml

import "sort"

// ScoreOf extracts a continuous spam score from a classifier when its
// family exposes one: vote fraction (random forest), probability
// (gradient boosting), or signed margin (SVM). Classifiers without a
// score report their hard prediction as 0/1, which still yields a valid
// one-threshold ROC.
func ScoreOf(clf Classifier, x []float64) float64 {
	switch c := clf.(type) {
	case interface{ PredictProba([]float64) float64 }:
		return c.PredictProba(x)
	case interface{ Decision([]float64) float64 }:
		return c.Decision(x)
	default:
		if clf.Predict(x) {
			return 1
		}
		return 0
	}
}

// ROCPoint is one (FPR, TPR) operating point.
type ROCPoint struct {
	FPR float64
	TPR float64
}

// ROC computes the receiver operating characteristic of scores against
// truth and its area under the curve (trapezoidal). Higher scores must
// mean "more likely positive". Degenerate inputs (single class) return a
// nil curve and AUC 0.
func ROC(scores []float64, truth []bool) ([]ROCPoint, float64) {
	if len(scores) != len(truth) || len(scores) == 0 {
		return nil, 0
	}
	pos, neg := 0, 0
	for _, v := range truth {
		if v {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, 0
	}

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return scores[idx[a]] > scores[idx[b]]
	})

	curve := []ROCPoint{{FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	auc := 0.0
	prev := ROCPoint{}
	i := 0
	for i < len(idx) {
		// Process ties as one step so the curve is threshold-faithful.
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if truth[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		pt := ROCPoint{
			FPR: float64(fp) / float64(neg),
			TPR: float64(tp) / float64(pos),
		}
		auc += (pt.FPR - prev.FPR) * (pt.TPR + prev.TPR) / 2
		curve = append(curve, pt)
		prev = pt
	}
	return curve, auc
}

// AUCOf scores every sample with the classifier and returns the AUC.
func AUCOf(clf Classifier, x [][]float64, truth []bool) float64 {
	scores := make([]float64, len(x))
	for i, row := range x {
		scores[i] = ScoreOf(clf, row)
	}
	_, auc := ROC(scores, truth)
	return auc
}
