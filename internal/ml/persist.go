package ml

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with one row per sample: feature columns
// then a final "label" column (1 = spam). A header row names columns
// f0..f{d-1},label so datasets round-trip and load into any analysis tool.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := 0
	if len(d.X) > 0 {
		dim = len(d.X[0])
	}
	header := make([]string, dim+1)
	for j := 0; j < dim; j++ {
		header[j] = "f" + strconv.Itoa(j)
	}
	header[dim] = "label"
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, dim+1)
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(x), dim)
		}
		for j, v := range x {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if d.Y[i] {
			row[dim] = "1"
		} else {
			row[dim] = "0"
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a dataset written by WriteCSV (header row required, last
// column is the 0/1 label).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ml: read header: %w", err)
	}
	if len(header) < 1 || header[len(header)-1] != "label" {
		return nil, fmt.Errorf("ml: last header column must be \"label\", got %v", header)
	}
	dim := len(header) - 1
	var x [][]float64
	var y []bool
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ml: line %d: %w", line+1, err)
		}
		line++
		if len(rec) != dim+1 {
			return nil, fmt.Errorf("ml: line %d has %d columns, want %d", line, len(rec), dim+1)
		}
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			row[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("ml: line %d column %d: %w", line, j, err)
			}
		}
		switch rec[dim] {
		case "1":
			y = append(y, true)
		case "0":
			y = append(y, false)
		default:
			return nil, fmt.Errorf("ml: line %d: label %q not 0/1", line, rec[dim])
		}
		x = append(x, row)
	}
	return NewDataset(x, y)
}
