package forest

import "testing"

// TestFlatPredictAllocFree pins the flat predictor's steady-state
// allocation budget at zero: single-sample verdicts and probabilities, and
// single-worker batch prediction into reused buffers, must not allocate.
func TestFlatPredictAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	x, y := noisyData(400, 1)
	f := New(Config{Trees: 20, Seed: 1, Workers: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, _ := noisyData(300, 2)

	if a := testing.AllocsPerRun(200, func() {
		_ = f.Predict(tx[0])
		_ = f.PredictProba(tx[1])
	}); a != 0 {
		t.Fatalf("single-sample predict allocates %v/op, want 0", a)
	}

	outV := make([]bool, len(tx))
	outP := make([]float64, len(tx))
	if a := testing.AllocsPerRun(50, func() {
		outV = f.PredictBatchInto(tx, outV)
		outP = f.PredictProbaBatchInto(tx, outP)
	}); a != 0 {
		t.Fatalf("1-worker batch predict allocates %v/op, want 0", a)
	}
}
