package forest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"
)

// goldenData fabricates a pinned dataset for the verbatim-prediction golden
// test. A third of the columns are quantized to half-integers so the split
// scan faces heavy value ties — the case where an induction rewrite is most
// likely to drift.
func goldenData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		row := make([]float64, 17)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		for j := 0; j < len(row); j += 3 {
			row[j] = math.Round(row[j]*2) / 2
		}
		pos := row[0]+row[1]*row[2] > 1
		if rng.Float64() < 0.05 {
			pos = !pos
		}
		x[i] = row
		y[i] = pos
	}
	return x, y
}

// goldenForestFingerprint was captured from the pre-presort per-node-sort
// implementation (commit e4ed6b2) at the paper configuration. The presorted
// split engine must reproduce it bit for bit: vote fractions, verdicts, and
// Gini-gain feature importances all feed the hash, so any drift in split
// choice, threshold midpoints, or gain bookkeeping fails this test.
const goldenForestFingerprint = "f15c21752247a0e73a081878e71669ea332677ee610def10e74667211ae8c207"

// TestForestGoldenPredictions pins the fitted model's observable behavior
// across induction-engine rewrites: same seed, same data ⇒ bit-identical
// probabilities, verdicts, and importances.
func TestForestGoldenPredictions(t *testing.T) {
	x, y := goldenData(600, 42)
	f := New(PaperConfig())
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, _ := goldenData(200, 43)

	h := sha256.New()
	var buf [8]byte
	for _, row := range tx {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f.PredictProba(row)))
		h.Write(buf[:])
		if f.Predict(row) {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, v := range f.FeatureImportance(17) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != goldenForestFingerprint {
		t.Fatalf("forest fingerprint drifted:\n got  %s\n want %s", got, goldenForestFingerprint)
	}
}
