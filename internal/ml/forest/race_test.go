//go:build race

package forest

// raceEnabled skips allocation-count assertions under the race detector,
// whose instrumentation changes what the runtime allocates.
const raceEnabled = true
