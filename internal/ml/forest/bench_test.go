package forest

import (
	"testing"
	"time"
)

// BenchmarkForestFit times ensemble training at the default worker count
// and reports the speedup over a single-worker fit of the same workload as
// a custom metric. On a single-core runner the ratio is ~1; on a ≥4-core
// runner tree-level fan-out should deliver ≥2×.
func BenchmarkForestFit(b *testing.B) {
	x, y := noisyData(2000, 11)
	cfg := Config{Trees: 40, MaxDepth: 14, Seed: 5}

	fitOnce := func(workers int) time.Duration {
		c := cfg
		c.Workers = workers
		f := New(c)
		start := time.Now()
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	fitOnce(1) // warm caches
	seq := fitOnce(1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		f := New(c)
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-vs-1worker")
	}
}
