package forest

import (
	"testing"
	"time"
)

// BenchmarkForestFit times ensemble training under the paper deployment
// configuration (70 trees, depth 700) at the default worker count. Two
// custom metrics accompany the timing: the speedup over the legacy
// per-node-sort reference scan (the presorted-column engine win, visible
// even on one core) and the speedup over a single-worker fit of the same
// workload (the pool fan-out win, ~1 on a single-core runner).
func BenchmarkForestFit(b *testing.B) {
	x, y := noisyData(2000, 11)
	cfg := PaperConfig()

	fitOnce := func(workers int, reference bool) time.Duration {
		c := cfg
		c.Workers = workers
		c.Reference = reference
		f := New(c)
		start := time.Now()
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	fitOnce(1, false) // warm caches
	seq := fitOnce(1, false)
	ref := fitOnce(0, true)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(cfg)
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(ref.Seconds()/par.Seconds(), "speedup-vs-reference")
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-vs-1worker")
	}
}
