package forest

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
)

// flatForest is the compiled serving form of a fitted ensemble: every
// tree's nodes packed into one contiguous structure-of-arrays pool
// (tree.Flat), with per-tree root offsets. All 70 paper-config trees live
// in four parallel slices, so a vote is pure offset-chasing over dense
// memory instead of pointer-chasing across 70 separately allocated node
// graphs. Compiled once at the end of Fit; traversal order is identical to
// the pointer trees, so verdicts and probabilities are bit-identical.
type flatForest struct {
	pool  tree.Flat
	roots []int32
}

// compileFlat packs the fitted trees into one node pool.
func compileFlat(trees []*tree.Tree) *flatForest {
	ff := &flatForest{roots: make([]int32, len(trees))}
	for i, t := range trees {
		ff.roots[i] = t.AppendFlat(&ff.pool)
	}
	return ff
}

// votes counts the trees voting spam for one sample.
func (ff *flatForest) votes(x []float64) int {
	v := 0
	for _, root := range ff.roots {
		if ff.pool.Predict(root, x) {
			v++
		}
	}
	return v
}

// flatBlock is the batch-traversal micro-block: votes are tallied
// tree-major over blocks of this many samples, so one tree's nodes and the
// block's feature rows both stay cache-resident for the whole pass. The
// per-block vote tally fits on the worker's stack.
const flatBlock = 256

// voteBlock tallies per-sample votes for x[lo:hi) tree-major into votes
// (indexed from lo, pre-zeroed, len >= hi-lo).
func (ff *flatForest) voteBlock(x [][]float64, lo, hi int, votes []int32) {
	for _, root := range ff.roots {
		for i := lo; i < hi; i++ {
			if ff.pool.Predict(root, x[i]) {
				votes[i-lo]++
			}
		}
	}
}

// predictRange writes majority verdicts for x[lo:hi) into out, block by
// block. The vote tally lives on the caller's stack, so a single-worker
// batch allocates nothing.
func (ff *flatForest) predictRange(x [][]float64, lo, hi, trees int, out []bool) {
	var votes [flatBlock]int32
	for blo := lo; blo < hi; blo += flatBlock {
		bhi := blo + flatBlock
		if bhi > hi {
			bhi = hi
		}
		clear(votes[:bhi-blo])
		ff.voteBlock(x, blo, bhi, votes[:])
		for i := blo; i < bhi; i++ {
			out[i] = int(votes[i-blo])*2 > trees
		}
	}
}

// probaRange is predictRange for vote fractions. The tally divides rather
// than multiplying by a reciprocal: bit-identity with PredictProba is part
// of the contract.
func (ff *flatForest) probaRange(x [][]float64, lo, hi, trees int, out []float64) {
	var votes [flatBlock]int32
	for blo := lo; blo < hi; blo += flatBlock {
		bhi := blo + flatBlock
		if bhi > hi {
			bhi = hi
		}
		clear(votes[:bhi-blo])
		ff.voteBlock(x, blo, bhi, votes[:])
		for i := blo; i < bhi; i++ {
			out[i] = float64(votes[i-blo]) / float64(trees)
		}
	}
}
