package forest

import (
	"testing"
)

// fitPair trains the same configuration twice: once serving through the
// compiled flat pool (the default) and once through the pointer trees
// (PointerPredict, the oracle). Fitting is bit-identical for a seed, so
// any prediction divergence is the flat predictor's fault.
func fitPair(t *testing.T, cfg Config, x [][]float64, y []bool) (*Forest, *Forest) {
	t.Helper()
	flat := New(cfg)
	if err := flat.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	cfg.PointerPredict = true
	oracle := New(cfg)
	if err := oracle.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if flat.flat == nil || oracle.flat != nil {
		t.Fatal("predictor selection did not follow PointerPredict")
	}
	return flat, oracle
}

// TestFlatForestBitIdentical is the property suite for the flat predictor:
// across seeds, shapes, and worker counts, single-sample and batch
// verdicts and probabilities must equal the pointer oracle's bit for bit.
func TestFlatForestBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, cfg := range []Config{
			{Trees: 15, Seed: seed},
			{Trees: 8, MaxDepth: 3, Seed: seed},
			{Trees: 10, MinLeaf: 4, Bins: 16, Seed: seed},
		} {
			x, y := noisyData(400, seed)
			flat, oracle := fitPair(t, cfg, x, y)
			tx, _ := noisyData(700, seed+100)

			for i := range tx {
				if flat.Predict(tx[i]) != oracle.Predict(tx[i]) {
					t.Fatalf("seed %d cfg %+v: verdict mismatch at sample %d", seed, cfg, i)
				}
				if flat.PredictProba(tx[i]) != oracle.PredictProba(tx[i]) {
					t.Fatalf("seed %d cfg %+v: probability mismatch at sample %d", seed, cfg, i)
				}
			}
			for _, workers := range []int{1, 2, 8} {
				flat.cfg.Workers = workers
				oracle.cfg.Workers = workers
				gotV, wantV := flat.PredictBatch(tx), oracle.PredictBatch(tx)
				gotP, wantP := flat.PredictProbaBatch(tx), oracle.PredictProbaBatch(tx)
				for i := range tx {
					if gotV[i] != wantV[i] {
						t.Fatalf("seed %d workers %d: batch verdict mismatch at %d", seed, workers, i)
					}
					if gotP[i] != wantP[i] {
						t.Fatalf("seed %d workers %d: batch probability mismatch at %d", seed, workers, i)
					}
				}
			}
		}
	}
}

// TestPredictBatchIntoReuse checks the Into variants reuse caller buffers
// and still match the allocating forms.
func TestPredictBatchIntoReuse(t *testing.T) {
	x, y := noisyData(300, 3)
	f := New(Config{Trees: 12, Seed: 3})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, _ := noisyData(500, 4)
	outV := make([]bool, 0, len(tx))
	outP := make([]float64, 0, len(tx))
	gotV := f.PredictBatchInto(tx, outV)
	gotP := f.PredictProbaBatchInto(tx, outP)
	if &gotV[0] != &outV[:1][0] || &gotP[0] != &outP[:1][0] {
		t.Fatal("Into variants did not reuse the provided buffers")
	}
	wantV := f.PredictBatch(tx)
	wantP := f.PredictProbaBatch(tx)
	for i := range tx {
		if gotV[i] != wantV[i] || gotP[i] != wantP[i] {
			t.Fatalf("Into mismatch at %d", i)
		}
	}
	// Short input into a large buffer must truncate, not stretch.
	if short := f.PredictBatchInto(tx[:7], gotV); len(short) != 7 {
		t.Fatalf("len = %d, want 7", len(short))
	}
}
