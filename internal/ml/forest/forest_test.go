package forest

import (
	"math/rand"
	"testing"
)

// noisyData is a two-informative-feature task with label noise, where
// ensembling visibly beats single trees.
func noisyData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		noise1 := rng.NormFloat64()
		noise2 := rng.NormFloat64()
		pos := a+b > 0.5
		if rng.Float64() < 0.08 {
			pos = !pos
		}
		x = append(x, []float64{a, b, noise1, noise2})
		y = append(y, pos)
	}
	return x, y
}

func TestForestLearnsNoisyTask(t *testing.T) {
	x, y := noisyData(800, 1)
	f := New(Config{Trees: 40, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := noisyData(400, 2)
	correct := 0
	for i := range tx {
		if f.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.85 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	x, y := noisyData(300, 3)
	fit := func() *Forest {
		f := New(Config{Trees: 15, Seed: 9})
		if err := f.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := fit(), fit()
	probe, _ := noisyData(50, 4)
	for _, p := range probe {
		if a.Predict(p) != b.Predict(p) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestSeedChangesModel(t *testing.T) {
	x, y := noisyData(300, 3)
	a := New(Config{Trees: 15, Seed: 1})
	b := New(Config{Trees: 15, Seed: 2})
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe, _ := noisyData(200, 5)
	diff := 0
	for _, p := range probe {
		if a.PredictProba(p) != b.PredictProba(p) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical vote distributions")
	}
}

func TestForestPredictProbaBounds(t *testing.T) {
	x, y := noisyData(300, 3)
	f := New(Config{Trees: 15, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe, _ := noisyData(100, 6)
	for _, p := range probe {
		proba := f.PredictProba(p)
		if proba < 0 || proba > 1 {
			t.Fatalf("proba %v out of [0,1]", proba)
		}
		if (proba > 0.5) != f.Predict(p) {
			t.Fatal("Predict disagrees with PredictProba majority")
		}
	}
}

func TestForestPredictProbaUnfitted(t *testing.T) {
	f := New(Config{})
	if got := f.PredictProba([]float64{1}); got != 0 {
		t.Fatalf("unfitted proba = %v", got)
	}
}

func TestForestEmptyFitErrors(t *testing.T) {
	f := New(Config{})
	if err := f.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := f.Fit([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Fatal("mismatched fit accepted")
	}
}

func TestForestDefaults(t *testing.T) {
	f := New(Config{Trees: -1})
	if f.cfg.Trees != 70 {
		t.Fatalf("default trees = %d, want 70", f.cfg.Trees)
	}
	cfg := PaperConfig()
	if cfg.Trees != 70 || cfg.MaxDepth != 700 {
		t.Fatalf("paper config = %+v, want 70 trees depth 700", cfg)
	}
}

func TestForestPureLabels(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []bool{true, true, true, true}
	f := New(Config{Trees: 5, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !f.Predict([]float64{2.5}) {
		t.Fatal("pure-positive forest predicted negative")
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	// Features 0 and 1 carry all the signal; 2 and 3 are noise.
	x, y := noisyData(600, 7)
	f := New(Config{Trees: 30, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance(4)
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance: %v", imp)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	if imp[0]+imp[1] < imp[2]+imp[3] {
		t.Fatalf("noise features outrank signal: %v", imp)
	}
}

func TestFeatureImportanceUnfitted(t *testing.T) {
	f := New(Config{})
	imp := f.FeatureImportance(3)
	for _, v := range imp {
		if v != 0 {
			t.Fatal("unfitted forest has non-zero importance")
		}
	}
}
