// Package forest implements a random forest classifier: bootstrap-sampled
// CART trees with per-split random feature subsets and majority voting.
// The paper deploys this model in the pseudo-honeypot detector, configured
// with 70 trees of maximum depth 700 (§V-C).
package forest

import (
	"errors"
	"math"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/split"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
)

// Config holds random-forest hyperparameters.
type Config struct {
	// Trees is the ensemble size (the paper uses 70).
	Trees int
	// MaxDepth bounds each tree (the paper uses 700, effectively
	// unbounded at these dataset sizes).
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size.
	MinLeaf int
	// MaxFeatures per split; non-positive selects √d.
	MaxFeatures int
	// Seed drives bootstrap sampling and feature subsets.
	Seed int64
	// Workers bounds the training/prediction pool; 0 resolves the
	// process default (PH_WORKERS or GOMAXPROCS). The fitted model is
	// bit-identical at any worker count: each tree derives its own
	// random stream from Seed and its tree index.
	Workers int
	// Bins enables histogram-binned split finding in every tree (see
	// tree.Config.Bins); non-positive keeps the exact scan.
	Bins int
	// Reference grows every tree with the legacy per-node sort.Slice
	// scan — the property-suite oracle and -mlbench baseline. Exact-mode
	// ensembles are identical either way.
	Reference bool
	// PointerPredict serves predictions by walking the original pointer
	// trees instead of the flattened contiguous node pool compiled at the
	// end of Fit — the inference oracle for the flat predictor's property
	// suite and the -e2ebench baseline. Verdicts and probabilities are
	// bit-identical either way; only the memory layout differs.
	PointerPredict bool
}

// PaperConfig returns the configuration the paper deploys: 70 trees with a
// maximum depth of 700.
func PaperConfig() Config {
	return Config{Trees: 70, MaxDepth: 700, Seed: 1}
}

// Forest is a trained random forest.
type Forest struct {
	cfg   Config
	trees []*tree.Tree
	// flat is the compiled contiguous predictor (nil under PointerPredict).
	flat *flatForest
}

// New creates an untrained forest.
func New(cfg Config) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 70
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Forest{cfg: cfg}
}

// Fit trains the ensemble. A cheap sequential pre-pass draws every tree's
// bootstrap indices and split seed from the single master RNG in tree
// order — exactly the draws the former sequential loop made — and the
// expensive tree growth then fans out over the configured worker pool.
// The fitted model is therefore bit-identical to a sequential fit (and to
// pre-parallelism models from the same Seed) regardless of worker count.
func (f *Forest) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("forest: empty or mismatched training data")
	}
	maxFeatures := f.cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Sqrt(float64(len(x[0]))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	f.trees = make([]*tree.Tree, f.cfg.Trees)

	n := len(x)
	boots := make([][]int32, f.cfg.Trees)
	seeds := make([]int64, f.cfg.Trees)
	for ti := range f.trees {
		idx := make([]int32, n)
		for i := 0; i < n; i++ {
			idx[i] = int32(rng.Intn(n))
		}
		boots[ti] = idx
		seeds[ti] = rng.Int63()
	}

	// The feature space is sorted once; every tree's bootstrap view is
	// expanded from the shared pristine order in O(d·n) instead of
	// re-sorting per tree (Presort is immutable and safe to share).
	var presort *split.Presort
	if !f.cfg.Reference {
		presort = split.NewPresort(x)
	}

	workers := parallel.Resolve(f.cfg.Workers, f.cfg.Trees)
	// Per-worker bootstrap views: a tree's training view is consumed by
	// tree.Fit before its worker moves on, so the buffers (including the
	// split engine) can be reused.
	type scratch struct {
		bx  [][]float64
		by  []bool
		eng *split.Engine
	}
	scratches := make([]scratch, workers)
	errs := make([]error, f.cfg.Trees)
	parallel.ForEachWorker(f.cfg.Trees, workers, func(w, ti int) {
		s := &scratches[w]
		if s.bx == nil {
			s.bx = make([][]float64, n)
			s.by = make([]bool, n)
		}
		for i, j := range boots[ti] {
			s.bx[i] = x[j]
			s.by[i] = y[j]
		}
		t := tree.New(tree.Config{
			MaxDepth:    f.cfg.MaxDepth,
			MinLeaf:     f.cfg.MinLeaf,
			MaxFeatures: maxFeatures,
			Seed:        seeds[ti],
			Bins:        f.cfg.Bins,
			Reference:   f.cfg.Reference,
		})
		var err error
		if f.cfg.Reference {
			err = t.Fit(s.bx, s.by)
		} else {
			s.eng = presort.NewBootstrapEngine(s.bx, boots[ti], s.eng)
			err = t.FitEngine(s.eng, s.by)
		}
		boots[ti] = nil // release while later trees still train
		if err != nil {
			errs[ti] = err
			return
		}
		f.trees[ti] = t
	})
	for _, err := range errs {
		if err != nil {
			f.trees = nil
			return err
		}
	}
	if !f.cfg.PointerPredict {
		f.flat = compileFlat(f.trees)
	}
	return nil
}

// Predict returns the majority vote.
func (f *Forest) Predict(x []float64) bool {
	if f.flat != nil {
		return f.flat.votes(x)*2 > len(f.trees)
	}
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return votes*2 > len(f.trees)
}

// PredictBatch majority-votes every sample, fanning the batch out over
// the configured worker pool in contiguous chunks. The result is
// index-aligned with x and identical to calling Predict per sample.
func (f *Forest) PredictBatch(x [][]float64) []bool {
	return f.PredictBatchInto(x, nil)
}

// PredictBatchInto is PredictBatch writing into out (reused when its
// capacity suffices, so steady-state callers allocate nothing). On the
// flat predictor the batch walks tree-major over micro-blocks of samples
// — one tree's contiguous nodes against a cache-resident block of rows —
// with the vote tally on the worker's stack.
func (f *Forest) PredictBatchInto(x [][]float64, out []bool) []bool {
	if cap(out) < len(x) {
		out = make([]bool, len(x))
	}
	out = out[:len(x)]
	if f.flat == nil {
		parallel.ForEachChunk(len(x), f.cfg.Workers, batchMinChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = f.Predict(x[i])
			}
		})
		return out
	}
	ff := f.flat
	trees := len(f.trees)
	if f.batchWorkers(len(x)) == 1 {
		// Direct call: the single-worker fast path allocates nothing (no
		// fan-out closures), which the alloc regression tests pin.
		ff.predictRange(x, 0, len(x), trees, out)
		return out
	}
	parallel.ForEachChunk(len(x), f.cfg.Workers, batchMinChunk, func(lo, hi int) {
		ff.predictRange(x, lo, hi, trees, out)
	})
	return out
}

// batchWorkers resolves the worker count a batch of n samples fans out to.
func (f *Forest) batchWorkers(n int) int {
	return parallel.Resolve(f.cfg.Workers, (n+batchMinChunk-1)/batchMinChunk)
}

// PredictProbaBatch returns the spam-vote fraction of every sample,
// computed like PredictBatch.
func (f *Forest) PredictProbaBatch(x [][]float64) []float64 {
	return f.PredictProbaBatchInto(x, nil)
}

// PredictProbaBatchInto is PredictProbaBatch writing into out (reused when
// its capacity suffices), batched like PredictBatchInto.
func (f *Forest) PredictProbaBatchInto(x [][]float64, out []float64) []float64 {
	if cap(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	if f.flat == nil {
		parallel.ForEachChunk(len(x), f.cfg.Workers, batchMinChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = f.PredictProba(x[i])
			}
		})
		return out
	}
	ff := f.flat
	trees := len(f.trees)
	if f.batchWorkers(len(x)) == 1 {
		ff.probaRange(x, 0, len(x), trees, out)
		return out
	}
	parallel.ForEachChunk(len(x), f.cfg.Workers, batchMinChunk, func(lo, hi int) {
		ff.probaRange(x, lo, hi, trees, out)
	})
	return out
}

// batchMinChunk keeps batch-prediction chunks large enough that pool
// dispatch overhead stays negligible next to the 70-tree vote per sample.
const batchMinChunk = 16

// FeatureImportance returns the normalized mean decrease in Gini impurity
// per feature across the ensemble (values sum to 1 when any splits exist).
// d is the feature dimensionality.
func (f *Forest) FeatureImportance(d int) []float64 {
	imp := make([]float64, d)
	for _, t := range f.trees {
		t.FeatureImportance(imp)
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// PredictProba returns the fraction of trees voting spam.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	if f.flat != nil {
		return float64(f.flat.votes(x)) / float64(len(f.trees))
	}
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}
