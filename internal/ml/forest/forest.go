// Package forest implements a random forest classifier: bootstrap-sampled
// CART trees with per-split random feature subsets and majority voting.
// The paper deploys this model in the pseudo-honeypot detector, configured
// with 70 trees of maximum depth 700 (§V-C).
package forest

import (
	"errors"
	"math"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
)

// Config holds random-forest hyperparameters.
type Config struct {
	// Trees is the ensemble size (the paper uses 70).
	Trees int
	// MaxDepth bounds each tree (the paper uses 700, effectively
	// unbounded at these dataset sizes).
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size.
	MinLeaf int
	// MaxFeatures per split; non-positive selects √d.
	MaxFeatures int
	// Seed drives bootstrap sampling and feature subsets.
	Seed int64
}

// PaperConfig returns the configuration the paper deploys: 70 trees with a
// maximum depth of 700.
func PaperConfig() Config {
	return Config{Trees: 70, MaxDepth: 700, Seed: 1}
}

// Forest is a trained random forest.
type Forest struct {
	cfg   Config
	trees []*tree.Tree
}

// New creates an untrained forest.
func New(cfg Config) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 70
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Forest{cfg: cfg}
}

// Fit trains the ensemble.
func (f *Forest) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("forest: empty or mismatched training data")
	}
	maxFeatures := f.cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Sqrt(float64(len(x[0]))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	f.trees = make([]*tree.Tree, f.cfg.Trees)

	n := len(x)
	bx := make([][]float64, n)
	by := make([]bool, n)
	for ti := range f.trees {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		t := tree.New(tree.Config{
			MaxDepth:    f.cfg.MaxDepth,
			MinLeaf:     f.cfg.MinLeaf,
			MaxFeatures: maxFeatures,
			Seed:        rng.Int63(),
		})
		if err := t.Fit(bx, by); err != nil {
			return err
		}
		f.trees[ti] = t
	}
	return nil
}

// Predict returns the majority vote.
func (f *Forest) Predict(x []float64) bool {
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return votes*2 > len(f.trees)
}

// FeatureImportance returns the normalized mean decrease in Gini impurity
// per feature across the ensemble (values sum to 1 when any splits exist).
// d is the feature dimensionality.
func (f *Forest) FeatureImportance(d int) []float64 {
	imp := make([]float64, d)
	for _, t := range f.trees {
		t.FeatureImportance(imp)
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// PredictProba returns the fraction of trees voting spam.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}
