package forest

import (
	"reflect"
	"testing"
)

// TestFitDeterministicAcrossWorkerCounts verifies the worker-invariance
// contract: the same Seed yields a bit-identical ensemble whether trees
// train on 1, 2, or 8 workers, because every tree's bootstrap indices and
// split seed are drawn in a sequential pre-pass.
func TestFitDeterministicAcrossWorkerCounts(t *testing.T) {
	x, y := noisyData(400, 11)
	test := make([][]float64, 0, 100)
	tx, _ := noisyData(100, 12)
	test = append(test, tx...)

	var refVerdicts []bool
	var refProbas []float64
	for _, workers := range []int{1, 2, 8} {
		f := New(Config{Trees: 30, MaxDepth: 12, Seed: 5, Workers: workers})
		if err := f.Fit(x, y); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		verdicts := f.PredictBatch(test)
		probas := f.PredictProbaBatch(test)
		if refVerdicts == nil {
			refVerdicts, refProbas = verdicts, probas
			continue
		}
		if !reflect.DeepEqual(verdicts, refVerdicts) {
			t.Fatalf("workers=%d: verdicts diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(probas, refProbas) {
			t.Fatalf("workers=%d: probabilities diverge from workers=1", workers)
		}
	}
}

// TestPredictBatchMatchesPredict verifies the chunked batch path returns
// exactly the per-sample Predict results, index-aligned.
func TestPredictBatchMatchesPredict(t *testing.T) {
	x, y := noisyData(300, 21)
	f := New(Config{Trees: 15, MaxDepth: 10, Seed: 3, Workers: 8})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	batch := f.PredictBatch(x)
	for i, row := range x {
		if got := f.Predict(row); got != batch[i] {
			t.Fatalf("sample %d: PredictBatch=%v Predict=%v", i, batch[i], got)
		}
	}
}
