// Package boost implements gradient-boosted regression trees on logistic
// loss with Newton leaf values and shrinkage — the paper's EGB (extreme
// gradient boosting) comparator.
package boost

import (
	"errors"
	"math"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/split"
)

// Config holds boosting hyperparameters.
type Config struct {
	// Rounds is the number of boosting iterations (default 100).
	Rounds int
	// MaxDepth bounds each regression tree (default 3).
	MaxDepth int
	// LearningRate is the shrinkage factor (default 0.2).
	LearningRate float64
	// MinLeaf is the minimum samples per regression leaf (default 5).
	MinLeaf int
	// Subsample is the stochastic row-sampling fraction (default 1).
	Subsample float64
	// Seed drives row subsampling.
	Seed int64
	// Bins enables histogram-binned split finding in every round's
	// regression tree (see tree.Config.Bins); non-positive keeps the
	// exact scan.
	Bins int
	// Reference selects the legacy per-node sort.Slice split scan, the
	// property-suite oracle and -mlbench baseline.
	Reference bool
}

// Boost is a trained gradient-boosting classifier.
type Boost struct {
	cfg   Config
	base  float64
	trees []*regTree
}

// New creates an untrained booster.
func New(cfg Config) *Boost {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 100
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.2
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 5
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 1
	}
	return &Boost{cfg: cfg}
}

// Fit trains the ensemble: start from the log-odds prior, then repeatedly
// fit a regression tree to the logistic-loss gradients and take a Newton
// step per leaf.
func (b *Boost) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("boost: empty or mismatched training data")
	}
	n := len(x)
	pos := 0
	for _, v := range y {
		if v {
			pos++
		}
	}
	p := (float64(pos) + 1) / (float64(n) + 2) // Laplace-smoothed prior
	b.base = math.Log(p / (1 - p))

	f := make([]float64, n)
	for i := range f {
		f[i] = b.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rng := rand.New(rand.NewSource(b.cfg.Seed))

	// Sort the feature space once; each round's tree view (full or
	// subsampled) is derived from the pristine order in O(d·n) and the
	// engine's buffers are recycled round to round.
	var presort *split.Presort
	var eng *split.Engine
	if !b.cfg.Reference {
		presort = split.NewPresort(x)
	}

	b.trees = b.trees[:0]
	for round := 0; round < b.cfg.Rounds; round++ {
		for i := range f {
			prob := sigmoid(f[i])
			target := 0.0
			if y[i] {
				target = 1
			}
			grad[i] = target - prob
			hess[i] = prob * (1 - prob)
		}
		idx := b.sampleRows(n, rng)
		t := &regTree{maxDepth: b.cfg.MaxDepth, minLeaf: b.cfg.MinLeaf}
		if b.cfg.Reference {
			t.fitRef(x, grad, hess, idx)
		} else {
			if len(idx) == n {
				eng = presort.NewEngine(x, eng)
			} else {
				eng = presort.NewSubsetEngine(x, idx, eng)
			}
			if b.cfg.Bins > 1 {
				eng.SetBins(b.cfg.Bins)
			}
			t.fitEngine(eng, grad, hess)
		}
		b.trees = append(b.trees, t)
		for i := range f {
			f[i] += b.cfg.LearningRate * t.predict(x[i])
		}
	}
	return nil
}

func (b *Boost) sampleRows(n int, rng *rand.Rand) []int {
	idx := make([]int, 0, n)
	if b.cfg.Subsample >= 1 {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
		return idx
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < b.cfg.Subsample {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		idx = append(idx, rng.Intn(n))
	}
	return idx
}

// Predict classifies one sample.
func (b *Boost) Predict(x []float64) bool {
	return b.PredictProba(x) > 0.5
}

// PredictProba returns the spam probability of one sample.
func (b *Boost) PredictProba(x []float64) float64 {
	f := b.base
	for _, t := range b.trees {
		f += b.cfg.LearningRate * t.predict(x)
	}
	return sigmoid(f)
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}
