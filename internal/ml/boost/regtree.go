package boost

import "sort"

// regTree is a regression tree fit to gradient/hessian pairs with
// variance-reduction splits and Newton leaf values, as in XGBoost-style
// boosting.
type regTree struct {
	maxDepth int
	minLeaf  int
	root     *regNode
}

type regNode struct {
	feature   int
	threshold float64
	left      *regNode
	right     *regNode
	leaf      bool
	value     float64
}

func (t *regTree) fit(x [][]float64, grad, hess []float64, idx []int) {
	t.root = t.grow(x, grad, hess, idx, 0)
}

func (t *regTree) predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func (t *regTree) grow(x [][]float64, grad, hess []float64, idx []int, depth int) *regNode {
	if depth >= t.maxDepth || len(idx) < 2*t.minLeaf {
		return t.leafNode(grad, hess, idx)
	}
	feature, threshold, ok := t.bestSplit(x, grad, idx)
	if !ok {
		return t.leafNode(grad, hess, idx)
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.minLeaf || len(right) < t.minLeaf {
		return t.leafNode(grad, hess, idx)
	}
	return &regNode{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(x, grad, hess, left, depth+1),
		right:     t.grow(x, grad, hess, right, depth+1),
	}
}

// leafNode takes the Newton step Σg / (Σh + ε).
func (t *regTree) leafNode(grad, hess []float64, idx []int) *regNode {
	const eps = 1e-9
	var g, h float64
	for _, i := range idx {
		g += grad[i]
		h += hess[i]
	}
	return &regNode{leaf: true, value: g / (h + eps)}
}

// bestSplit maximizes the reduction in gradient variance (equivalently the
// gain of the squared-gradient-sum criterion).
func (t *regTree) bestSplit(x [][]float64, grad []float64, idx []int) (int, float64, bool) {
	if len(idx) == 0 {
		return 0, 0, false
	}
	d := len(x[0])
	type pair struct {
		v, g float64
	}
	pairs := make([]pair, len(idx))

	totalG := 0.0
	for _, i := range idx {
		totalG += grad[i]
	}
	n := float64(len(idx))
	baseScore := totalG * totalG / n

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	for f := 0; f < d; f++ {
		for k, i := range idx {
			pairs[k] = pair{v: x[i][f], g: grad[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		leftG := 0.0
		for k := 0; k < len(pairs)-1; k++ {
			leftG += pairs[k].g
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			leftN := float64(k + 1)
			rightN := n - leftN
			rightG := totalG - leftG
			gain := leftG*leftG/leftN + rightG*rightG/rightN - baseScore
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}
