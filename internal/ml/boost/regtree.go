package boost

import "github.com/pseudo-honeypot/pseudohoneypot/internal/ml/split"

// regTree is a regression tree fit to gradient/hessian pairs with
// variance-reduction splits and Newton leaf values, as in XGBoost-style
// boosting. Split finding runs on the shared presorted-column engine
// (internal/ml/split): the booster sorts the feature space once per Fit
// and every round's tree grows by stable partitioning, scanning each
// node in a single cumulative-gradient pass per feature. Cumulative sums
// follow the engine's (value, id) order, so they are deterministic and
// bit-identical to the reference scan in regtree_ref.go.
type regTree struct {
	maxDepth int
	minLeaf  int
	root     *regNode
}

type regNode struct {
	feature   int
	threshold float64
	left      *regNode
	right     *regNode
	leaf      bool
	value     float64
}

// fitEngine grows the tree over a prepared engine view; grad and hess
// are indexed by the engine's row ids.
func (t *regTree) fitEngine(e *split.Engine, grad, hess []float64) {
	if e.Len() == 0 {
		t.root = &regNode{leaf: true}
		return
	}
	t.root = t.grow(e, grad, hess, 0, e.Len(), 0)
}

func (t *regTree) predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func (t *regTree) grow(e *split.Engine, grad, hess []float64, lo, hi, depth int) *regNode {
	n := hi - lo
	if depth >= t.maxDepth || n < 2*t.minLeaf {
		return t.leafNode(e, grad, hess, lo, hi)
	}
	feature, threshold, ok := t.bestSplit(e, grad, lo, hi)
	if !ok {
		return t.leafNode(e, grad, hess, lo, hi)
	}
	var mid int
	if split.Small(n) {
		mid = e.PartitionRows(feature, threshold, lo, hi)
	} else {
		mid = e.Partition(feature, threshold, lo, hi)
	}
	nd := &regNode{feature: feature, threshold: threshold}
	nd.left = t.grow(e, grad, hess, lo, mid, depth+1)
	nd.right = t.grow(e, grad, hess, mid, hi, depth+1)
	return nd
}

// leafNode takes the Newton step Σg / (Σh + ε), accumulating in
// ascending row-id order (the arena's invariant) for determinism.
func (t *regTree) leafNode(e *split.Engine, grad, hess []float64, lo, hi int) *regNode {
	const eps = 1e-9
	var g, h float64
	for _, id := range e.Rows(lo, hi) {
		g += grad[id]
		h += hess[id]
	}
	return &regNode{leaf: true, value: g / (h + eps)}
}

// bestSplit maximizes the reduction in gradient variance (equivalently the
// gain of the squared-gradient-sum criterion). Candidates that would
// leave a child under MinLeaf are skipped in the scan, so the best
// admissible split is taken instead of collapsing to a leaf.
func (t *regTree) bestSplit(e *split.Engine, grad []float64, lo, hi int) (int, float64, bool) {
	total := hi - lo
	totalG := 0.0
	for _, id := range e.Rows(lo, hi) {
		totalG += grad[id]
	}
	n := float64(total)
	baseScore := totalG * totalG / n

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	small := split.Small(total)
	for f := 0; f < e.Features(); f++ {
		var thr, gain float64
		var ok bool
		if small {
			vals, ids := e.SortedCol(f, lo, hi)
			thr, gain, ok = t.scanCol(vals, ids, grad, totalG, baseScore)
		} else if edges := e.Edges(f); edges != nil {
			vals, ids := e.Col(f, lo, hi)
			thr, gain, ok = t.scanBinned(vals, ids, edges, grad, totalG, baseScore)
		} else {
			vals, ids := e.Col(f, lo, hi)
			thr, gain, ok = t.scanCol(vals, ids, grad, totalG, baseScore)
		}
		if ok && gain > bestGain {
			bestGain = gain
			bestFeature = f
			bestThreshold = thr
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}

// scanCol finds one sorted column's best admissible threshold in a
// single cumulative-gradient pass.
func (t *regTree) scanCol(vals []float64, ids []int32, grad []float64, totalG, baseScore float64) (float64, float64, bool) {
	total := len(vals)
	n := float64(total)
	best, thr, found := 1e-12, 0.0, false
	leftG := 0.0
	for k := 0; k < total-1; k++ {
		leftG += grad[ids[k]]
		if vals[k] == vals[k+1] {
			continue
		}
		leftN := k + 1
		if leftN < t.minLeaf {
			continue
		}
		if total-leftN < t.minLeaf {
			break
		}
		fLeftN := float64(leftN)
		rightG := totalG - leftG
		gain := leftG*leftG/fLeftN + rightG*rightG/(n-fLeftN) - baseScore
		if gain > best {
			best, thr, found = gain, (vals[k]+vals[k+1])/2, true
		}
	}
	return thr, best, found
}

// scanBinned evaluates only the precomputed quantile edges.
func (t *regTree) scanBinned(vals []float64, ids []int32, edges []float64, grad []float64, totalG, baseScore float64) (float64, float64, bool) {
	total := len(vals)
	n := float64(total)
	best, thr, found := 1e-12, 0.0, false
	leftG := 0.0
	leftN := 0
	k := 0
	for _, edge := range edges {
		for k < total && vals[k] <= edge {
			leftG += grad[ids[k]]
			leftN++
			k++
		}
		if leftN == 0 {
			continue
		}
		if leftN >= total {
			break
		}
		if leftN < t.minLeaf {
			continue
		}
		if total-leftN < t.minLeaf {
			break
		}
		fLeftN := float64(leftN)
		rightG := totalG - leftG
		gain := leftG*leftG/fLeftN + rightG*rightG/(n-fLeftN) - baseScore
		if gain > best {
			best, thr, found = gain, edge, true
		}
	}
	return thr, best, found
}
