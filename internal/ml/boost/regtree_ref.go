package boost

import "sort"

// This file preserves the pre-presort regression-tree induction path —
// gather and sort.Slice every feature at every node — selected by
// Config.Reference, as the property-suite oracle and the -mlbench
// baseline. Two deliberate alignments with the engine path keep the two
// bit-comparable: ties sort by original index (so cumulative gradient
// sums accumulate in the same order as the engine's stable columns), and
// the MinLeaf guard sits inside the scan.

func (t *regTree) fitRef(x [][]float64, grad, hess []float64, idx []int) {
	t.root = t.growRef(x, grad, hess, idx, 0)
}

func (t *regTree) growRef(x [][]float64, grad, hess []float64, idx []int, depth int) *regNode {
	if depth >= t.maxDepth || len(idx) < 2*t.minLeaf {
		return t.leafNodeRef(grad, hess, idx)
	}
	feature, threshold, ok := t.bestSplitRef(x, grad, idx)
	if !ok {
		return t.leafNodeRef(grad, hess, idx)
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	nd := &regNode{feature: feature, threshold: threshold}
	nd.left = t.growRef(x, grad, hess, left, depth+1)
	nd.right = t.growRef(x, grad, hess, right, depth+1)
	return nd
}

func (t *regTree) leafNodeRef(grad, hess []float64, idx []int) *regNode {
	const eps = 1e-9
	var g, h float64
	for _, i := range idx {
		g += grad[i]
		h += hess[i]
	}
	return &regNode{leaf: true, value: g / (h + eps)}
}

func (t *regTree) bestSplitRef(x [][]float64, grad []float64, idx []int) (int, float64, bool) {
	if len(idx) == 0 {
		return 0, 0, false
	}
	d := len(x[0])
	type pair struct {
		v, g float64
		id   int
	}
	pairs := make([]pair, len(idx))

	totalG := 0.0
	for _, i := range idx {
		totalG += grad[i]
	}
	n := float64(len(idx))
	baseScore := totalG * totalG / n

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	for f := 0; f < d; f++ {
		for k, i := range idx {
			pairs[k] = pair{v: x[i][f], g: grad[i], id: i}
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].v != pairs[b].v {
				return pairs[a].v < pairs[b].v
			}
			return pairs[a].id < pairs[b].id
		})
		leftG := 0.0
		for k := 0; k < len(pairs)-1; k++ {
			leftG += pairs[k].g
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			if k+1 < t.minLeaf {
				continue
			}
			if len(pairs)-k-1 < t.minLeaf {
				break
			}
			leftN := float64(k + 1)
			rightN := n - leftN
			rightG := totalG - leftG
			gain := leftG*leftG/leftN + rightG*rightG/rightN - baseScore
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}
