package boost

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/split"
)

// circleData is a nonlinear task with first-order signal on single splits:
// points inside the unit circle are positive. (Pure XOR is pathological for
// greedy first-order boosting — every single split has zero gradient gain —
// so it is deliberately not used here.)
func circleData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		a := rng.Float64()*3 - 1.5
		b := rng.Float64()*3 - 1.5
		x = append(x, []float64{a, b})
		y = append(y, a*a+b*b < 1)
	}
	return x, y
}

// xorData remains for the stump-progress test, which only needs a hard task.
func xorData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, (a > 0.5) != (b > 0.5))
	}
	return x, y
}

func TestBoostFitsNonlinearBoundary(t *testing.T) {
	x, y := circleData(800, 1)
	bst := New(Config{Rounds: 120, MaxDepth: 3, Seed: 1})
	if err := bst.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := circleData(400, 2)
	correct := 0
	for i := range tx {
		if bst.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.9 {
		t.Fatalf("circle test accuracy %v", acc)
	}
}

func TestBoostProbaCalibration(t *testing.T) {
	x, y := circleData(800, 3)
	bst := New(Config{Rounds: 100, MaxDepth: 3, Seed: 1})
	if err := bst.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Deep inside the circle, probability should be decisive; everywhere
	// it must stay within [0, 1].
	deep := bst.PredictProba([]float64{0, 0})
	if deep < 0.8 {
		t.Fatalf("circle-center proba %v, want > 0.8", deep)
	}
	for _, p := range [][]float64{{1.4, 1.4}, {-1.4, 0}, {0.7, 0}} {
		proba := bst.PredictProba(p)
		if proba < 0 || proba > 1 {
			t.Fatalf("proba %v out of bounds", proba)
		}
	}
}

func TestBoostPriorOnly(t *testing.T) {
	// All-positive labels: the prior should dominate and predict true
	// everywhere.
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []bool{true, true, true, true, true, true}
	bst := New(Config{Rounds: 5, Seed: 1})
	if err := bst.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !bst.Predict([]float64{10}) {
		t.Fatal("all-positive booster predicted negative")
	}
}

func TestBoostMoreRoundsImproveTrainingFit(t *testing.T) {
	x, y := xorData(600, 4)
	trainAcc := func(rounds int) float64 {
		bst := New(Config{Rounds: rounds, MaxDepth: 1, LearningRate: 0.1, Seed: 1})
		if err := bst.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i := range x {
			if bst.Predict(x[i]) == y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(x))
	}
	few, many := trainAcc(1), trainAcc(200)
	if many <= few {
		t.Fatalf("200 stump rounds (%v) no better than 1 (%v)", many, few)
	}
}

func TestBoostSubsampling(t *testing.T) {
	x, y := circleData(600, 5)
	bst := New(Config{Rounds: 120, MaxDepth: 3, Subsample: 0.7, Seed: 1})
	if err := bst.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if bst.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.85 {
		t.Fatalf("subsampled training accuracy %v", acc)
	}
}

func TestBoostDeterministicForSeed(t *testing.T) {
	x, y := circleData(300, 6)
	fit := func() *Boost {
		bst := New(Config{Rounds: 30, Subsample: 0.8, Seed: 11})
		if err := bst.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return bst
	}
	a, b := fit(), fit()
	probe, _ := circleData(50, 7)
	for _, p := range probe {
		if math.Abs(a.PredictProba(p)-b.PredictProba(p)) > 1e-12 {
			t.Fatal("same-seed boosters disagree")
		}
	}
}

func TestBoostDefaults(t *testing.T) {
	bst := New(Config{})
	if bst.cfg.Rounds != 100 || bst.cfg.MaxDepth != 3 ||
		bst.cfg.LearningRate != 0.2 || bst.cfg.Subsample != 1 {
		t.Fatalf("defaults = %+v", bst.cfg)
	}
}

func TestBoostEmptyFitErrors(t *testing.T) {
	bst := New(Config{})
	if err := bst.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
}

// TestRegTreeMinLeafGuardInScan verifies the MinLeaf guard sits inside
// the gradient scan: when the best unconstrained split would isolate one
// outlier gradient, the tree must take the best admissible split instead
// of giving up on splitting (the pre-guard behavior collapsed to a leaf).
func TestRegTreeMinLeafGuardInScan(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}, {4}}
	grad := []float64{10, -1, -1, -1, -1}
	hess := []float64{1, 1, 1, 1, 1}

	rt := &regTree{maxDepth: 3, minLeaf: 2}
	e := split.NewPresort(x).NewEngine(x, nil)
	rt.fitEngine(e, grad, hess)
	if rt.root == nil || rt.root.leaf {
		t.Fatal("guarded scan collapsed to a leaf despite an admissible split")
	}
	if rt.root.threshold != 1.5 {
		t.Fatalf("root threshold %v, want 1.5 (best admissible)", rt.root.threshold)
	}

	ref := &regTree{maxDepth: 3, minLeaf: 2}
	ref.fitRef(x, grad, hess, []int{0, 1, 2, 3, 4})
	if ref.root.leaf || ref.root.threshold != rt.root.threshold {
		t.Fatalf("reference disagrees: leaf=%v thr=%v", ref.root.leaf, ref.root.threshold)
	}
}

func TestRegTreePredictEmpty(t *testing.T) {
	var rt regTree
	if got := rt.predict([]float64{1}); got != 0 {
		t.Fatalf("empty regression tree predicts %v, want 0", got)
	}
}

func TestSigmoidBounds(t *testing.T) {
	for _, z := range []float64{-100, -1, 0, 1, 100} {
		s := sigmoid(z)
		if s < 0 || s > 1 {
			t.Fatalf("sigmoid(%v) = %v", z, s)
		}
	}
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}
