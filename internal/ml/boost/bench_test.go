package boost

import (
	"testing"
	"time"
)

// BenchmarkBoostFit times gradient-boosted training (paper-style EGB
// shape: 100 rounds of depth-3 regression trees) on the presorted-column
// engine and reports the speedup over the legacy per-node-sort reference
// as a custom metric.
func BenchmarkBoostFit(b *testing.B) {
	x, y := circleData(2000, 1)
	cfg := Config{Rounds: 100, MaxDepth: 3, Seed: 1}

	fitOnce := func(reference bool) time.Duration {
		c := cfg
		c.Reference = reference
		bst := New(c)
		start := time.Now()
		if err := bst.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	fitOnce(false) // warm caches
	ref := fitOnce(true)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bst := New(cfg)
		if err := bst.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
	if per := b.Elapsed() / time.Duration(b.N); per > 0 {
		b.ReportMetric(ref.Seconds()/per.Seconds(), "speedup-vs-reference")
	}
}
