package tree

// Flat is a structure-of-arrays encoding of one or more trees in a single
// contiguous node pool: parallel slices for the split feature, threshold,
// and child offsets. A leaf is marked by Feature < 0 and stores its vote
// in Left (0 or 1). Nodes are packed in preorder, so a traversal's next
// node is usually already in cache, and a forest flattens all of its trees
// into one pool — the inference counterpart of the presorted-column
// training engine.
type Flat struct {
	Feature   []int32
	Threshold []float64
	Left      []int32
	Right     []int32
}

// Len returns the number of packed nodes.
func (f *Flat) Len() int { return len(f.Feature) }

// AppendFlat packs the trained tree's nodes onto f in preorder and returns
// the root's offset, or -1 for an untrained tree (whose Predict is the
// constant false).
func (t *Tree) AppendFlat(f *Flat) int32 {
	if t.root == nil {
		return -1
	}
	return f.append(t.root)
}

func (f *Flat) append(n *node) int32 {
	at := int32(len(f.Feature))
	if n.leaf {
		var vote int32
		if n.label {
			vote = 1
		}
		f.Feature = append(f.Feature, -1)
		f.Threshold = append(f.Threshold, 0)
		f.Left = append(f.Left, vote)
		f.Right = append(f.Right, 0)
		return at
	}
	f.Feature = append(f.Feature, int32(n.feature))
	f.Threshold = append(f.Threshold, n.threshold)
	// Reserve the slots, then patch the child offsets once known.
	f.Left = append(f.Left, 0)
	f.Right = append(f.Right, 0)
	f.Left[at] = f.append(n.left)
	f.Right[at] = f.append(n.right)
	return at
}

// Predict walks the tree rooted at root for one sample, reproducing
// Tree.Predict bit for bit (left on x[feature] <= threshold).
func (f *Flat) Predict(root int32, x []float64) bool {
	if root < 0 {
		return false
	}
	feats, thrs, lefts, rights := f.Feature, f.Threshold, f.Left, f.Right
	i := root
	for {
		fi := feats[i]
		if fi < 0 {
			return lefts[i] != 0
		}
		if x[fi] <= thrs[i] {
			i = lefts[i]
		} else {
			i = rights[i]
		}
	}
}
