package tree

import (
	"math/rand"
	"testing"
)

// TestFlatMatchesPointerPredict packs fitted trees of varying shapes into
// one shared Flat pool and checks every prediction is identical to the
// pointer walk.
func TestFlatMatchesPointerPredict(t *testing.T) {
	var flat Flat
	type packed struct {
		tr   *Tree
		root int32
	}
	var trees []packed
	for _, seed := range []int64{1, 2, 3} {
		for _, cfg := range []Config{
			{},
			{MaxDepth: 2},
			{MaxDepth: 8, MinLeaf: 3},
			{MaxFeatures: 2, Seed: seed},
			{Bins: 16},
		} {
			rng := rand.New(rand.NewSource(seed))
			n := 300
			x := make([][]float64, n)
			y := make([]bool, n)
			for i := range x {
				x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(),
					rng.NormFloat64(), float64(rng.Intn(3))}
				y[i] = x[i][0]+x[i][1] > 0.2
				if rng.Float64() < 0.1 {
					y[i] = !y[i]
				}
			}
			tr := New(cfg)
			if err := tr.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			trees = append(trees, packed{tr, tr.AppendFlat(&flat)})
		}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(),
			rng.NormFloat64(), float64(rng.Intn(3))}
		for pi, p := range trees {
			if got, want := flat.Predict(p.root, x), p.tr.Predict(x); got != want {
				t.Fatalf("tree %d trial %d: flat=%v pointer=%v (x=%v)", pi, trial, got, want, x)
			}
		}
	}
}

// TestFlatUntrainedTree pins the degenerate contract: an untrained tree
// packs to root -1 and predicts false, like Tree.Predict.
func TestFlatUntrainedTree(t *testing.T) {
	var flat Flat
	tr := New(Config{})
	root := tr.AppendFlat(&flat)
	if root != -1 {
		t.Fatalf("untrained tree root = %d, want -1", root)
	}
	if flat.Len() != 0 {
		t.Fatalf("untrained tree packed %d nodes", flat.Len())
	}
	if flat.Predict(root, []float64{1}) != false {
		t.Fatal("untrained flat predict != false")
	}
}
