package tree

import "sort"

// This file preserves the pre-presort induction path — gather and
// sort.Slice every candidate feature at every node, O(d·n·log n) per
// node — selected by Config.Reference. It is the oracle the property
// suite cross-checks the presorted engine against and the baseline
// cmd/benchreport -mlbench measures speedups over. The only change from
// the original is the MinLeaf guard moving into the scan, mirroring the
// engine's semantics so the two stay comparable at any MinLeaf.

func (t *Tree) growRef(x [][]float64, y []bool, idx []int, depth int) *node {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	majority := pos*2 >= len(idx)
	if pos == 0 || pos == len(idx) ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) ||
		len(idx) < 2*t.cfg.MinLeaf {
		return &node{leaf: true, label: majority}
	}

	feature, threshold, childGini, ok := t.bestSplitRef(x, y, idx)
	if !ok {
		return &node{leaf: true, label: majority}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	parentGini := giniOf(len(idx), pos)
	nd := &node{
		feature:   feature,
		threshold: threshold,
		gain:      (parentGini - childGini) * float64(len(idx)),
	}
	nd.left = t.growRef(x, y, left, depth+1)
	nd.right = t.growRef(x, y, right, depth+1)
	return nd
}

func (t *Tree) bestSplitRef(x [][]float64, y []bool, idx []int) (int, float64, float64, bool) {
	d := len(x[0])
	if f, thr, g, ok := t.bestSplitOverRef(x, y, idx, t.candidateFeatures(d)); ok {
		return f, thr, g, true
	}
	if t.cfg.MaxFeatures <= 0 || t.cfg.MaxFeatures >= d {
		return 0, 0, 0, false // already searched everything
	}
	return t.bestSplitOverRef(x, y, idx, t.allFeatures(d))
}

func (t *Tree) bestSplitOverRef(x [][]float64, y []bool, idx []int, features []int) (int, float64, float64, bool) {
	bestGini := 2.0
	bestFeature, bestThreshold := -1, 0.0

	// Scratch reused across features.
	type pair struct {
		v   float64
		pos bool
	}
	pairs := make([]pair, len(idx))

	total := len(idx)
	totalPos := 0
	for _, i := range idx {
		if y[i] {
			totalPos++
		}
	}
	minLeaf := t.cfg.MinLeaf

	for _, f := range features {
		for k, i := range idx {
			pairs[k] = pair{v: x[i][f], pos: y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })

		leftN, leftPos := 0, 0
		for k := 0; k < total-1; k++ {
			leftN++
			if pairs[k].pos {
				leftPos++
			}
			if pairs[k].v == pairs[k+1].v {
				continue // threshold must separate distinct values
			}
			if leftN < minLeaf {
				continue
			}
			rightN := total - leftN
			if rightN < minLeaf {
				break
			}
			rightPos := totalPos - leftPos
			gini := weightedGini(leftN, leftPos, rightN, rightPos)
			if gini < bestGini {
				bestGini = gini
				bestFeature = f
				bestThreshold = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0, false
	}
	return bestFeature, bestThreshold, bestGini, true
}
