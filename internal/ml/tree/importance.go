package tree

// FeatureImportance accumulates each feature's contribution to impurity
// reduction across the tree (mean decrease in impurity, unnormalized).
// The caller supplies the slice to accumulate into, so forests can sum
// across trees; len(imp) must cover every feature index used by the tree.
func (t *Tree) FeatureImportance(imp []float64) {
	t.walkImportance(t.root, imp)
}

func (t *Tree) walkImportance(n *node, imp []float64) {
	if n == nil || n.leaf {
		return
	}
	if n.feature >= 0 && n.feature < len(imp) {
		imp[n.feature] += n.gain
	}
	t.walkImportance(n.left, imp)
	t.walkImportance(n.right, imp)
}
