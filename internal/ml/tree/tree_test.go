package tree

import (
	"math/rand"
	"testing"
)

// xorData is a non-linearly-separable pattern a depth-2 tree solves.
func xorData(n int, rng *rand.Rand) ([][]float64, []bool) {
	var x [][]float64
	var y []bool
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, (a > 0.5) != (b > 0.5))
	}
	return x, y
}

func TestTreeFitsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := xorData(600, rng)
	// Greedy Gini splits need several levels to carve uniform XOR
	// quadrants; depth 12 is ample.
	tr := New(Config{MaxDepth: 12})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if tr.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Fatalf("training accuracy %v on XOR", acc)
	}
}

func TestTreeGeneralizesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorData(600, rng)
	tr := New(Config{MaxDepth: 12, MinLeaf: 5})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := xorData(300, rng)
	correct := 0
	for i := range tx {
		if tr.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.9 {
		t.Fatalf("test accuracy %v on XOR", acc)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := xorData(500, rng)
	tr := New(Config{MaxDepth: 2})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 2 {
		t.Fatalf("tree depth %d exceeds MaxDepth 2", d)
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	tr := New(Config{})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatalf("pure data grew depth %d", tr.Depth())
	}
	if !tr.Predict([]float64{99}) {
		t.Fatal("pure-positive tree predicted negative")
	}
}

func TestTreeEmptyFitErrors(t *testing.T) {
	tr := New(Config{})
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := tr.Fit([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Fatal("mismatched fit accepted")
	}
}

func TestTreePredictBeforeFit(t *testing.T) {
	tr := New(Config{})
	if tr.Predict([]float64{1}) {
		t.Fatal("unfitted tree predicted positive")
	}
}

func TestTreeDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := xorData(300, rng)
	fit := func() *Tree {
		tr := New(Config{MaxDepth: 6, MaxFeatures: 1, Seed: 7})
		if err := tr.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := fit(), fit()
	probe := [][]float64{{0.1, 0.9}, {0.9, 0.1}, {0.2, 0.2}, {0.8, 0.8}}
	for _, p := range probe {
		if a.Predict(p) != b.Predict(p) {
			t.Fatal("same-seed trees disagree")
		}
	}
}

func TestTreeIdenticalFeatureValues(t *testing.T) {
	// All feature values identical: no split possible, majority leaf.
	x := [][]float64{{5}, {5}, {5}, {5}}
	y := []bool{true, true, true, false}
	tr := New(Config{})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !tr.Predict([]float64{5}) {
		t.Fatal("majority leaf wrong")
	}
}

// TestTreeMinLeafGuardInScan verifies the guard lives inside the split
// scan: when the unconstrained best split would isolate a single sample,
// the tree must take the best admissible split instead of collapsing to
// a leaf (the pre-guard behavior).
func TestTreeMinLeafGuardInScan(t *testing.T) {
	// One positive at x=0; the unconstrained best split (thr 0.5) makes a
	// pure single-sample leaf, which MinLeaf=2 forbids. The guarded scan
	// must fall back to thr 1.5, whose 2-sample left leaf votes positive.
	x := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}}
	y := []bool{true, false, false, false, false, false, false, false, false, false}
	for _, reference := range []bool{false, true} {
		tr := New(Config{MinLeaf: 2, Reference: reference})
		if err := tr.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if tr.Depth() != 1 {
			t.Fatalf("reference=%v: depth %d, want 1 admissible split", reference, tr.Depth())
		}
		if !tr.Predict([]float64{0}) {
			t.Fatalf("reference=%v: guarded split lost the positive leaf", reference)
		}
		if tr.Predict([]float64{9}) {
			t.Fatalf("reference=%v: right leaf mislabeled", reference)
		}
	}
}

func TestTreeMinLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := xorData(200, rng)
	tr := New(Config{MinLeaf: 100})
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf at half the data, the tree can split at most once.
	if tr.Depth() > 1 {
		t.Fatalf("depth %d with MinLeaf=100 on 200 samples", tr.Depth())
	}
}
