package tree

import (
	"math/rand"
	"testing"
	"time"
)

func benchData(n, d int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = row[0]+row[1]*row[2] > 0.5
		if rng.Float64() < 0.05 {
			y[i] = !y[i]
		}
	}
	return x, y
}

// BenchmarkTreeFit times plain-CART induction (all features, effectively
// unbounded depth) on the presorted-column engine and reports the
// speedup over the legacy per-node-sort reference as a custom metric.
func BenchmarkTreeFit(b *testing.B) {
	x, y := benchData(2000, 17, 1)

	fitOnce := func(reference bool) time.Duration {
		tr := New(Config{MaxDepth: 700, Seed: 1, Reference: reference})
		start := time.Now()
		if err := tr.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	fitOnce(true) // warm caches
	ref := fitOnce(true)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(Config{MaxDepth: 700, Seed: 1})
		if err := tr.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
	if per := b.Elapsed() / time.Duration(b.N); per > 0 {
		b.ReportMetric(ref.Seconds()/per.Seconds(), "speedup-vs-reference")
	}
}
