// Package tree implements a CART-style binary decision tree classifier
// with Gini-impurity splits — the paper's DT baseline and the base learner
// of the random forest.
package tree

import (
	"errors"
	"math/rand"
	"sort"
)

// Config holds decision-tree hyperparameters.
type Config struct {
	// MaxDepth bounds tree depth; non-positive means unbounded.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// MaxFeatures is the number of random features considered per split;
	// non-positive means all features (plain CART). The random forest
	// sets this to √d.
	MaxFeatures int
	// Seed drives the per-split feature sampling when MaxFeatures is set.
	Seed int64
}

// Tree is a trained decision tree.
type Tree struct {
	cfg  Config
	rng  *rand.Rand
	root *node
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	label     bool
	// gain is the sample-weighted Gini decrease of this split, recorded
	// for feature-importance accounting.
	gain float64
}

// New creates an untrained tree.
func New(cfg Config) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Tree{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Fit grows the tree on the samples.
func (t *Tree) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("tree: empty or mismatched training data")
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, y, idx, 0)
	return nil
}

// Predict classifies one sample.
func (t *Tree) Predict(x []float64) bool {
	n := t.root
	if n == nil {
		return false
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the depth of the trained tree (0 for a single leaf).
func (t *Tree) Depth() int {
	var depth func(*node) int
	depth = func(n *node) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

func (t *Tree) grow(x [][]float64, y []bool, idx []int, depth int) *node {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	majority := pos*2 >= len(idx)
	if pos == 0 || pos == len(idx) ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) ||
		len(idx) < 2*t.cfg.MinLeaf {
		return &node{leaf: true, label: majority}
	}

	feature, threshold, childGini, ok := t.bestSplit(x, y, idx)
	if !ok {
		return &node{leaf: true, label: majority}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return &node{leaf: true, label: majority}
	}
	parentGini := giniOf(len(idx), pos)
	return &node{
		feature:   feature,
		threshold: threshold,
		gain:      (parentGini - childGini) * float64(len(idx)),
		left:      t.grow(x, y, left, depth+1),
		right:     t.grow(x, y, right, depth+1),
	}
}

// bestSplit finds the (feature, threshold) minimizing weighted Gini
// impurity over the candidate features. Following standard random-forest
// practice, if the sampled feature subset yields no valid split the search
// widens to all features before giving up.
func (t *Tree) bestSplit(x [][]float64, y []bool, idx []int) (int, float64, float64, bool) {
	d := len(x[0])
	if f, thr, g, ok := t.bestSplitOver(x, y, idx, t.candidateFeatures(d)); ok {
		return f, thr, g, true
	}
	if t.cfg.MaxFeatures <= 0 || t.cfg.MaxFeatures >= d {
		return 0, 0, 0, false // already searched everything
	}
	all := make([]int, d)
	for i := range all {
		all[i] = i
	}
	return t.bestSplitOver(x, y, idx, all)
}

// bestSplitOver searches the given features for the best Gini split,
// returning the feature, threshold, and resulting weighted child impurity.
func (t *Tree) bestSplitOver(x [][]float64, y []bool, idx []int, features []int) (int, float64, float64, bool) {

	bestGini := 2.0
	bestFeature, bestThreshold := -1, 0.0

	// Scratch reused across features.
	type pair struct {
		v   float64
		pos bool
	}
	pairs := make([]pair, len(idx))

	total := len(idx)
	totalPos := 0
	for _, i := range idx {
		if y[i] {
			totalPos++
		}
	}

	for _, f := range features {
		for k, i := range idx {
			pairs[k] = pair{v: x[i][f], pos: y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })

		leftN, leftPos := 0, 0
		for k := 0; k < total-1; k++ {
			leftN++
			if pairs[k].pos {
				leftPos++
			}
			if pairs[k].v == pairs[k+1].v {
				continue // threshold must separate distinct values
			}
			rightN := total - leftN
			rightPos := totalPos - leftPos
			gini := weightedGini(leftN, leftPos, rightN, rightPos)
			if gini < bestGini {
				bestGini = gini
				bestFeature = f
				bestThreshold = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0, false
	}
	return bestFeature, bestThreshold, bestGini, true
}

// candidateFeatures returns the feature indices to consider for a split.
func (t *Tree) candidateFeatures(d int) []int {
	if t.cfg.MaxFeatures <= 0 || t.cfg.MaxFeatures >= d {
		all := make([]int, d)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Partial Fisher–Yates over [0, d).
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < t.cfg.MaxFeatures; i++ {
		j := i + t.rng.Intn(d-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:t.cfg.MaxFeatures]
}

func weightedGini(leftN, leftPos, rightN, rightPos int) float64 {
	total := float64(leftN + rightN)
	return float64(leftN)/total*giniOf(leftN, leftPos) +
		float64(rightN)/total*giniOf(rightN, rightPos)
}

// giniOf is the binary Gini impurity of a node with n samples, pos positive.
func giniOf(n, pos int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}
