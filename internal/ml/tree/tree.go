// Package tree implements a CART-style binary decision tree classifier
// with Gini-impurity splits — the paper's DT baseline and the base learner
// of the random forest.
//
// Split finding runs on the presorted-column engine (internal/ml/split):
// each feature is sorted once per fit and nodes grow by stable in-place
// partitioning, so a node's scan is one O(n) cumulative-class-count pass
// per candidate feature and nothing is sorted below the root. The legacy
// per-node sort.Slice scan survives behind Config.Reference as the
// cross-check oracle and benchmark baseline; in exact mode both select
// bit-identical (feature, threshold) splits.
package tree

import (
	"errors"
	"math/rand"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/split"
)

// Config holds decision-tree hyperparameters.
type Config struct {
	// MaxDepth bounds tree depth; non-positive means unbounded.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1). The split
	// scan skips candidate thresholds that would violate it, so the
	// best admissible split is taken rather than collapsing to a leaf
	// when the unconstrained best happens to violate it.
	MinLeaf int
	// MaxFeatures is the number of random features considered per split;
	// non-positive means all features (plain CART). The random forest
	// sets this to √d.
	MaxFeatures int
	// Seed drives the per-split feature sampling when MaxFeatures is set.
	Seed int64
	// Bins enables histogram-binned split finding: candidate thresholds
	// are capped at Bins-1 per-feature quantile edges computed once per
	// fit — for large synthetic-world datasets. Non-positive (or 1)
	// keeps the exact scan, whose splits are bit-identical to the
	// legacy implementation.
	Bins int
	// Reference selects the legacy per-node sort.Slice split scan, kept
	// as the oracle for the property suite and the baseline for
	// BENCH_ml.json speedups. Exact-mode models are identical either
	// way; only the training cost differs.
	Reference bool
}

// Tree is a trained decision tree.
type Tree struct {
	cfg   Config
	rng   *rand.Rand
	root  *node
	feats []int // candidate-feature scratch reused across splits
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	label     bool
	// gain is the sample-weighted Gini decrease of this split, recorded
	// for feature-importance accounting.
	gain float64
}

// New creates an untrained tree.
func New(cfg Config) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Tree{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Fit grows the tree on the samples.
func (t *Tree) Fit(x [][]float64, y []bool) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("tree: empty or mismatched training data")
	}
	if t.cfg.Reference {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		t.root = t.growRef(x, y, idx, 0)
		return nil
	}
	return t.FitEngine(split.NewPresort(x).NewEngine(x, nil), y)
}

// FitEngine grows the tree over a prepared engine view — the forest
// path, which shares one presort across every tree's bootstrap view. y
// must be indexed by the engine's row ids.
func (t *Tree) FitEngine(e *split.Engine, y []bool) error {
	if e.Len() == 0 {
		return errors.New("tree: empty training data")
	}
	if t.cfg.Bins > 1 {
		e.SetBins(t.cfg.Bins)
	}
	t.root = t.grow(e, y, 0, e.Len(), 0)
	return nil
}

// Predict classifies one sample.
func (t *Tree) Predict(x []float64) bool {
	n := t.root
	if n == nil {
		return false
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the depth of the trained tree (0 for a single leaf).
func (t *Tree) Depth() int {
	var depth func(*node) int
	depth = func(n *node) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

func (t *Tree) grow(e *split.Engine, y []bool, lo, hi, depth int) *node {
	n := hi - lo
	pos := 0
	for _, id := range e.Rows(lo, hi) {
		if y[id] {
			pos++
		}
	}
	majority := pos*2 >= n
	if pos == 0 || pos == n ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) ||
		n < 2*t.cfg.MinLeaf {
		return &node{leaf: true, label: majority}
	}

	feature, threshold, childGini, ok := t.bestSplit(e, y, lo, hi, pos)
	if !ok {
		return &node{leaf: true, label: majority}
	}
	var mid int
	if split.Small(n) {
		mid = e.PartitionRows(feature, threshold, lo, hi)
	} else {
		mid = e.Partition(feature, threshold, lo, hi)
	}
	parentGini := giniOf(n, pos)
	nd := &node{
		feature:   feature,
		threshold: threshold,
		gain:      (parentGini - childGini) * float64(n),
	}
	nd.left = t.grow(e, y, lo, mid, depth+1)
	nd.right = t.grow(e, y, mid, hi, depth+1)
	return nd
}

// bestSplit finds the (feature, threshold) minimizing weighted Gini
// impurity over the candidate features. Following standard random-forest
// practice, if the sampled feature subset yields no valid split the search
// widens to all features before giving up.
func (t *Tree) bestSplit(e *split.Engine, y []bool, lo, hi, totalPos int) (int, float64, float64, bool) {
	d := e.Features()
	if f, thr, g, ok := t.bestSplitOver(e, y, lo, hi, totalPos, t.candidateFeatures(d)); ok {
		return f, thr, g, true
	}
	if t.cfg.MaxFeatures <= 0 || t.cfg.MaxFeatures >= d {
		return 0, 0, 0, false // already searched everything
	}
	return t.bestSplitOver(e, y, lo, hi, totalPos, t.allFeatures(d))
}

// bestSplitOver searches the given features for the best Gini split,
// returning the feature, threshold, and resulting weighted child impurity.
// Features are scanned in order with strict improvement, so ties keep the
// earliest feature and, within a feature, the lowest threshold — the same
// selection the legacy scan made.
func (t *Tree) bestSplitOver(e *split.Engine, y []bool, lo, hi, totalPos int, features []int) (int, float64, float64, bool) {
	bestGini := 2.0
	bestFeature, bestThreshold := -1, 0.0
	small := split.Small(hi - lo)
	for _, f := range features {
		var thr, g float64
		var ok bool
		if small {
			vals, ids := e.SortedCol(f, lo, hi)
			thr, g, ok = t.scanCol(vals, ids, y, totalPos)
		} else if edges := e.Edges(f); edges != nil {
			vals, ids := e.Col(f, lo, hi)
			thr, g, ok = t.scanBinned(vals, ids, edges, y, totalPos)
		} else {
			vals, ids := e.Col(f, lo, hi)
			thr, g, ok = t.scanCol(vals, ids, y, totalPos)
		}
		if ok && g < bestGini {
			bestGini = g
			bestFeature = f
			bestThreshold = thr
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0, false
	}
	return bestFeature, bestThreshold, bestGini, true
}

// scanCol finds one sorted column's best admissible threshold: a single
// cumulative-class-count pass, evaluating Gini only between distinct
// values and skipping candidates that would leave a child under MinLeaf.
func (t *Tree) scanCol(vals []float64, ids []int32, y []bool, totalPos int) (float64, float64, bool) {
	total := len(vals)
	minLeaf := t.cfg.MinLeaf
	best, thr, found := 2.0, 0.0, false
	leftN, leftPos := 0, 0
	for k := 0; k < total-1; k++ {
		leftN++
		if y[ids[k]] {
			leftPos++
		}
		if vals[k] == vals[k+1] {
			continue // threshold must separate distinct values
		}
		if leftN < minLeaf {
			continue
		}
		rightN := total - leftN
		if rightN < minLeaf {
			break // leftN only grows from here
		}
		g := weightedGini(leftN, leftPos, rightN, totalPos-leftPos)
		if g < best {
			best, thr, found = g, (vals[k]+vals[k+1])/2, true
		}
	}
	return thr, best, found
}

// scanBinned evaluates only the precomputed quantile edges: the same
// cumulative pass, with Gini computed at most once per bin boundary.
func (t *Tree) scanBinned(vals []float64, ids []int32, edges []float64, y []bool, totalPos int) (float64, float64, bool) {
	total := len(vals)
	minLeaf := t.cfg.MinLeaf
	best, thr, found := 2.0, 0.0, false
	leftN, leftPos := 0, 0
	k := 0
	for _, edge := range edges {
		for k < total && vals[k] <= edge {
			leftN++
			if y[ids[k]] {
				leftPos++
			}
			k++
		}
		if leftN == 0 {
			continue
		}
		if leftN >= total {
			break
		}
		if leftN < minLeaf {
			continue
		}
		rightN := total - leftN
		if rightN < minLeaf {
			break
		}
		g := weightedGini(leftN, leftPos, rightN, totalPos-leftPos)
		if g < best {
			best, thr, found = g, edge, true
		}
	}
	return thr, best, found
}

// candidateFeatures returns the feature indices to consider for a split.
func (t *Tree) candidateFeatures(d int) []int {
	if t.cfg.MaxFeatures <= 0 || t.cfg.MaxFeatures >= d {
		return t.allFeatures(d)
	}
	// Partial Fisher–Yates over [0, d).
	perm := t.featureBuf(d)
	for i := 0; i < t.cfg.MaxFeatures; i++ {
		j := i + t.rng.Intn(d-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:t.cfg.MaxFeatures]
}

func (t *Tree) allFeatures(d int) []int { return t.featureBuf(d) }

// featureBuf returns the reusable [0, d) identity permutation.
func (t *Tree) featureBuf(d int) []int {
	if cap(t.feats) < d {
		t.feats = make([]int, d)
	}
	t.feats = t.feats[:d]
	for i := range t.feats {
		t.feats[i] = i
	}
	return t.feats
}

func weightedGini(leftN, leftPos, rightN, rightPos int) float64 {
	total := float64(leftN + rightN)
	return float64(leftN)/total*giniOf(leftN, leftPos) +
		float64(rightN)/total*giniOf(rightN, rightPos)
}

// giniOf is the binary Gini impurity of a node with n samples, pos positive.
func giniOf(n, pos int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}
