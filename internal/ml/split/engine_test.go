package split

import (
	"math/rand"
	"sort"
	"testing"
)

func randMatrix(rng *rand.Rand, n, d, distinct int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			if distinct > 0 {
				row[j] = float64(rng.Intn(distinct))
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		x[i] = row
	}
	return x
}

// checkSorted verifies a column window is sorted by (value, id).
func checkSorted(t *testing.T, vals []float64, ids []int32) {
	t.Helper()
	for k := 1; k < len(vals); k++ {
		if vals[k] < vals[k-1] || (vals[k] == vals[k-1] && ids[k] < ids[k-1]) {
			t.Fatalf("column not (value, id)-sorted at %d: (%v,%d) after (%v,%d)",
				k, vals[k], ids[k], vals[k-1], ids[k-1])
		}
	}
}

func TestPresortColumnsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, distinct := range []int{0, 1, 3} {
		x := randMatrix(rng, 50, 4, distinct)
		e := NewPresort(x).NewEngine(x, nil)
		for f := 0; f < 4; f++ {
			vals, ids := e.Col(f, 0, e.Len())
			checkSorted(t, vals, ids)
			for k, id := range ids {
				if x[id][f] != vals[k] {
					t.Fatalf("distinct=%d f=%d: vals misaligned with ids", distinct, f)
				}
			}
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randMatrix(rng, 200, 5, 6) // heavy ties
	e := NewPresort(x).NewEngine(x, nil)

	vals, _ := e.Col(2, 0, e.Len())
	thr := (vals[60] + vals[140]) / 2 // some interior threshold
	mid := e.Partition(2, thr, 0, e.Len())

	wantLeft := 0
	for _, row := range x {
		if row[2] <= thr {
			wantLeft++
		}
	}
	if mid != wantLeft {
		t.Fatalf("mid = %d, want %d", mid, wantLeft)
	}
	for f := 0; f < 5; f++ {
		lv, li := e.Col(f, 0, mid)
		rv, ri := e.Col(f, mid, e.Len())
		checkSorted(t, lv, li)
		checkSorted(t, rv, ri)
		for _, id := range li {
			if x[id][2] > thr {
				t.Fatalf("f=%d: right-side row %d in left window", f, id)
			}
		}
		for _, id := range ri {
			if x[id][2] <= thr {
				t.Fatalf("f=%d: left-side row %d in right window", f, id)
			}
		}
	}
	rows := e.Rows(0, mid)
	for k := 1; k < len(rows); k++ {
		if rows[k] <= rows[k-1] {
			t.Fatal("row arena not ascending within left node")
		}
	}
	// Recursive partition of the left child keeps the invariants.
	lv, _ := e.Col(0, 0, mid)
	if len(lv) > 2 && lv[0] != lv[len(lv)-1] {
		thr2 := (lv[0] + lv[len(lv)-1]) / 2
		mid2 := e.Partition(0, thr2, 0, mid)
		for f := 0; f < 5; f++ {
			v1, i1 := e.Col(f, 0, mid2)
			v2, i2 := e.Col(f, mid2, mid)
			checkSorted(t, v1, i1)
			checkSorted(t, v2, i2)
		}
	}
}

func TestPartitionRowsMatchesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMatrix(rng, 80, 3, 4)
	p := NewPresort(x)
	a := p.NewEngine(x, nil)
	b := p.NewEngine(x, nil)
	thr := 1.5
	ma := a.Partition(1, thr, 0, 80)
	mb := b.PartitionRows(1, thr, 0, 80)
	if ma != mb {
		t.Fatalf("Partition mid %d != PartitionRows mid %d", ma, mb)
	}
	ra, rb := a.Rows(0, 80), b.Rows(0, 80)
	for k := range ra {
		if ra[k] != rb[k] {
			t.Fatalf("row arenas diverge at %d: %d vs %d", k, ra[k], rb[k])
		}
	}
}

func TestSortedColMatchesCol(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMatrix(rng, LeafSortCutoff, 3, 5)
	p := NewPresort(x)
	e := p.NewEngine(x, nil)
	for f := 0; f < 3; f++ {
		cv, ci := e.Col(f, 0, e.Len())
		sv, si := e.SortedCol(f, 0, e.Len())
		for k := range cv {
			if cv[k] != sv[k] || ci[k] != si[k] {
				t.Fatalf("f=%d k=%d: SortedCol (%v,%d) != Col (%v,%d)", f, k, sv[k], si[k], cv[k], ci[k])
			}
		}
	}
}

func TestSubsetEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randMatrix(rng, 100, 4, 7)
	p := NewPresort(x)
	// Membership is given unordered on purpose; the engine must emit rows
	// in ascending id order regardless.
	e := p.NewSubsetEngine(x, []int{3, 17, 42, 99, 0, 51}, nil)
	if e.Len() != 6 {
		t.Fatalf("subset len %d", e.Len())
	}
	want := []int32{0, 3, 17, 42, 51, 99}
	got := e.Rows(0, 6)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("subset rows %v, want %v", got, want)
		}
	}
	for f := 0; f < 4; f++ {
		vals, ids := e.Col(f, 0, 6)
		checkSorted(t, vals, ids)
		for k, id := range ids {
			if x[id][f] != vals[k] {
				t.Fatalf("subset f=%d: misaligned", f)
			}
		}
	}
}

func TestBootstrapEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMatrix(rng, 60, 3, 4)
	p := NewPresort(x)
	boot := make([]int32, 60)
	bx := make([][]float64, 60)
	for i := range boot {
		boot[i] = int32(rng.Intn(60))
		bx[i] = x[boot[i]]
	}
	e := p.NewBootstrapEngine(bx, boot, nil)
	for f := 0; f < 3; f++ {
		vals, ids := e.Col(f, 0, e.Len())
		// Values must equal an independent sort of the resampled column.
		want := make([]float64, 60)
		for i, r := range boot {
			want[i] = x[r][f]
		}
		sort.Float64s(want)
		for k := range vals {
			if vals[k] != want[k] {
				t.Fatalf("f=%d k=%d: bootstrap column %v, want %v", f, k, vals[k], want[k])
			}
			if bx[ids[k]][f] != vals[k] {
				t.Fatalf("f=%d: position id misaligned", f)
			}
		}
	}
}

func TestEngineReuseResets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMatrix(rng, 120, 3, 0)
	p := NewPresort(x)
	e := p.NewEngine(x, nil)
	e.SetBins(4)
	e.Partition(0, 0, 0, 120)
	e = p.NewEngine(x, e) // reuse must restore pristine order and drop bins
	if e.Edges(0) != nil {
		t.Fatal("reused engine kept stale bin edges")
	}
	for f := 0; f < 3; f++ {
		vals, ids := e.Col(f, 0, 120)
		checkSorted(t, vals, ids)
	}
}

func TestSetBinsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randMatrix(rng, 500, 2, 0)
	e := NewPresort(x).NewEngine(x, nil)
	e.SetBins(8)
	for f := 0; f < 2; f++ {
		edges := e.Edges(f)
		if len(edges) == 0 || len(edges) > 7 {
			t.Fatalf("f=%d: %d edges for 8 bins", f, len(edges))
		}
		for k := 1; k < len(edges); k++ {
			if edges[k] <= edges[k-1] {
				t.Fatalf("f=%d: edges not strictly increasing", f)
			}
		}
	}
	// All-equal column: no admissible edges.
	xe := randMatrix(rng, 50, 1, 1)
	ee := NewPresort(xe).NewEngine(xe, nil)
	ee.SetBins(8)
	if len(ee.Edges(0)) != 0 {
		t.Fatal("constant column produced bin edges")
	}
}
