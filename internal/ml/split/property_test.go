package split_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/boost"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/split"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
)

// propDataset fabricates an adversarial training set for the split
// cross-check: normal columns, quantized (heavily tied) columns, an
// all-equal column, and a two-valued column, with labels carrying signal
// plus noise. Sizes straddle split.LeafSortCutoff so both the
// partitioned-column and the gather-and-sort regimes are exercised.
func propDataset(rng *rand.Rand, n int) ([][]float64, []bool) {
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		row := make([]float64, 6)
		row[0] = rng.NormFloat64()
		row[1] = math.Round(rng.NormFloat64() * 2) // quantized: heavy ties
		row[2] = 7                                 // single distinct value
		row[3] = float64(rng.Intn(2))              // two distinct values
		row[4] = rng.NormFloat64()
		row[5] = math.Round(rng.NormFloat64()*4) / 4
		x[i] = row
		y[i] = row[0]+row[1]/2+row[3] > 0.5
		if rng.Float64() < 0.1 {
			y[i] = !y[i]
		}
	}
	return x, y
}

var propSizes = []int{
	2, 7, split.LeafSortCutoff - 1, split.LeafSortCutoff,
	split.LeafSortCutoff + 1, 300,
}

// TestTreePresortedMatchesReference cross-checks the presorted-column
// tree against the legacy per-node-sort oracle: same data, same config ⇒
// identical predictions and identical Gini-gain importances (bit for
// bit), across node sizes, MinLeaf settings, and feature subsampling.
func TestTreePresortedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range propSizes {
		for _, cfg := range []tree.Config{
			{MaxDepth: 0, MinLeaf: 1},
			{MaxDepth: 8, MinLeaf: 1},
			{MaxDepth: 0, MinLeaf: 4},
			{MaxDepth: 6, MinLeaf: 2, MaxFeatures: 2, Seed: 9},
		} {
			x, y := propDataset(rng, n)
			ref := cfg
			ref.Reference = true
			a, b := tree.New(cfg), tree.New(ref)
			if err := a.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			if err := b.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			if a.Depth() != b.Depth() {
				t.Fatalf("n=%d cfg=%+v: depth %d vs reference %d", n, cfg, a.Depth(), b.Depth())
			}
			impA, impB := make([]float64, 6), make([]float64, 6)
			a.FeatureImportance(impA)
			b.FeatureImportance(impB)
			for f := range impA {
				if impA[f] != impB[f] {
					t.Fatalf("n=%d cfg=%+v: importance[%d] %v vs reference %v", n, cfg, f, impA[f], impB[f])
				}
			}
			for i := 0; i < 200; i++ {
				probe := []float64{
					rng.NormFloat64(), math.Round(rng.NormFloat64() * 2), 7,
					float64(rng.Intn(2)), rng.NormFloat64(), math.Round(rng.NormFloat64()*4) / 4,
				}
				if a.Predict(probe) != b.Predict(probe) {
					t.Fatalf("n=%d cfg=%+v: prediction diverges on %v", n, cfg, probe)
				}
			}
		}
	}
}

// TestBoostPresortedMatchesReference cross-checks the engine-driven
// booster against the legacy oracle: probabilities must match bit for
// bit, which also pins the cumulative-gradient accumulation order.
func TestBoostPresortedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range propSizes {
		if n < 4 {
			continue // boosting needs a handful of rows to do anything
		}
		for _, cfg := range []boost.Config{
			{Rounds: 20, MaxDepth: 3, MinLeaf: 1, Seed: 3},
			{Rounds: 20, MaxDepth: 4, MinLeaf: 5, Seed: 3},
			{Rounds: 15, MaxDepth: 3, MinLeaf: 2, Subsample: 0.7, Seed: 5},
		} {
			x, y := propDataset(rng, n)
			ref := cfg
			ref.Reference = true
			a, b := boost.New(cfg), boost.New(ref)
			if err := a.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			if err := b.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				probe := []float64{
					rng.NormFloat64(), math.Round(rng.NormFloat64() * 2), 7,
					float64(rng.Intn(2)), rng.NormFloat64(), math.Round(rng.NormFloat64()*4) / 4,
				}
				pa, pb := a.PredictProba(probe), b.PredictProba(probe)
				if pa != pb {
					t.Fatalf("n=%d cfg=%+v: proba %v vs reference %v on %v", n, cfg, pa, pb, probe)
				}
			}
		}
	}
}

// TestTreeDegenerateColumns pins the hard edges explicitly: an all-equal
// matrix must become a majority leaf in both modes, and a matrix whose
// only signal is a two-valued column must split on it identically.
func TestTreeDegenerateColumns(t *testing.T) {
	x := [][]float64{{7, 1}, {7, 1}, {7, 0}, {7, 0}, {7, 1}}
	y := []bool{true, true, false, false, true}
	for _, reference := range []bool{false, true} {
		tr := tree.New(tree.Config{Reference: reference})
		if err := tr.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if tr.Depth() != 1 {
			t.Fatalf("reference=%v: depth %d, want 1 (split on the informative column)", reference, tr.Depth())
		}
		if !tr.Predict([]float64{7, 1}) || tr.Predict([]float64{7, 0}) {
			t.Fatalf("reference=%v: wrong predictions", reference)
		}
	}
	// Fully constant matrix: majority leaf.
	xc := [][]float64{{3}, {3}, {3}}
	yc := []bool{true, false, true}
	for _, reference := range []bool{false, true} {
		tr := tree.New(tree.Config{Reference: reference})
		if err := tr.Fit(xc, yc); err != nil {
			t.Fatal(err)
		}
		if tr.Depth() != 0 || !tr.Predict([]float64{3}) {
			t.Fatalf("reference=%v: constant matrix not a majority leaf", reference)
		}
	}
}

// TestBinnedTreeStillLearns sanity-checks the histogram mode: a binned
// tree must remain deterministic and close to the exact tree on a task
// with real signal, despite the capped threshold set.
func TestBinnedTreeStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y := propDataset(rng, 600)
	acc := func(cfg tree.Config) float64 {
		tr := tree.New(cfg)
		if err := tr.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i := range x {
			if tr.Predict(x[i]) == y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(x))
	}
	exact := acc(tree.Config{MaxDepth: 8})
	binned := acc(tree.Config{MaxDepth: 8, Bins: 16})
	binned2 := acc(tree.Config{MaxDepth: 8, Bins: 16})
	if binned != binned2 {
		t.Fatal("binned mode nondeterministic")
	}
	if binned < exact-0.08 {
		t.Fatalf("binned training accuracy %v too far below exact %v", binned, exact)
	}
}
