// Package split implements the presorted-column split-finding engine
// shared by the CART classifier tree (internal/ml/tree) and the
// gradient-boosting regression tree (internal/ml/boost).
//
// A Presort sorts each feature of the training matrix exactly once —
// O(d·n·log n) total, on concrete typed slices. Trees then grow from an
// Engine view of that presort: every node's split scan is a single O(n)
// cumulative pass per candidate feature over an already-sorted column,
// and choosing a split stably partitions the column windows in place, so
// no sorting happens below the root and no per-node allocations are made
// (scratch buffers are reused down the recursion).
//
// Maintaining d partitioned columns stops paying once nodes shrink: below
// LeafSortCutoff samples an Engine switches to gathering and sorting just
// the scanned feature from the raw matrix (SortedCol/PartitionRows),
// which is cache-hot and cheaper than touching every column. Both
// regimes select identical splits, so the crossover is invisible to the
// fitted model.
//
// One presort also serves every resample of its matrix: bootstrap and
// subset views are derived from the pristine order by a stable O(d·n)
// filter/expansion pass (NewBootstrapEngine, NewSubsetEngine), never by
// re-sorting — this is what lets a 70-tree forest or a 100-round booster
// sort its feature space once instead of once per tree.
package split

import "slices"

// LeafSortCutoff is the node size at and below which trees stop
// maintaining partitioned feature columns and instead gather + sort each
// scanned feature directly (see package comment). Exported so the tree
// growers and the property tests can exercise both regimes explicitly.
const LeafSortCutoff = 96

// Small reports whether a node of n samples is in the gather-and-sort
// regime rather than the partitioned-column regime.
func Small(n int) bool { return n <= LeafSortCutoff }

// KV is a (feature value, row id) pair. All engine orderings sort
// ascending by value with ties broken by ascending id, making every
// ordering — and therefore every cumulative float sum a criterion
// accumulates along it — deterministic.
type KV struct {
	V  float64
	ID int32
}

func cmpKV(a, b KV) int {
	switch {
	case a.V < b.V:
		return -1
	case a.V > b.V:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// Presort holds each feature's sample order over a fixed matrix, sorted
// once. It is immutable after construction and safe for concurrent use
// by many Engines (one per worker/tree).
type Presort struct {
	n, d  int
	order []int32   // flat d×n: feature f occupies [f*n, (f+1)*n)
	vals  []float64 // aligned feature values
}

// NewPresort sorts every feature column of x. This is the only
// O(d·n·log n) step of tree induction; everything after it is linear.
func NewPresort(x [][]float64) *Presort {
	n := len(x)
	d := 0
	if n > 0 {
		d = len(x[0])
	}
	p := &Presort{
		n:     n,
		d:     d,
		order: make([]int32, n*d),
		vals:  make([]float64, n*d),
	}
	buf := make([]KV, n)
	for f := 0; f < d; f++ {
		for i, row := range x {
			buf[i] = KV{V: row[f], ID: int32(i)}
		}
		slices.SortFunc(buf, cmpKV)
		ord, vl := p.order[f*n:(f+1)*n], p.vals[f*n:(f+1)*n]
		for i, kv := range buf {
			ord[i], vl[i] = kv.ID, kv.V
		}
	}
	return p
}

// Len returns the number of rows the presort covers.
func (p *Presort) Len() int { return p.n }

// Engine is one tree's mutable view of a presort: node-partitioned
// feature columns plus a row arena. Obtain one from a Presort
// constructor and reuse it across trees by passing it back as `reuse` —
// all internal buffers are recycled.
type Engine struct {
	x        [][]float64 // row universe of this view, indexed by id
	n, d     int
	order    []int32   // flat d×n, node-partitioned
	vals     []float64 // aligned values
	rows     []int32   // node-partitioned row arena; ascending id per node
	mark     []bool    // left/right marks and subset membership, by id
	scratchI []int32
	scratchV []float64
	smallV   []float64 // SortedCol output buffers
	smallI   []int32
	kvBuf    []KV
	edges    [][]float64 // binned candidate thresholds; nil = exact
	head     []int32     // bootstrap expansion scratch
	next     []int32
}

// engine resizes (or allocates) an Engine for an n-row view with ids
// drawn from [0, idSpace).
func (p *Presort) engine(x [][]float64, n, idSpace int, reuse *Engine) *Engine {
	e := reuse
	if e == nil {
		e = &Engine{}
	}
	e.x = x
	e.n, e.d = n, p.d
	e.order = growI32(e.order, n*p.d)
	e.vals = growF64(e.vals, n*p.d)
	e.rows = growI32(e.rows, n)
	e.scratchI = growI32(e.scratchI, n)
	e.scratchV = growF64(e.scratchV, n)
	small := n
	if small > LeafSortCutoff {
		small = LeafSortCutoff
	}
	e.smallV = growF64(e.smallV, small)
	e.smallI = growI32(e.smallI, small)
	if cap(e.kvBuf) < small {
		e.kvBuf = make([]KV, small)
	}
	e.kvBuf = e.kvBuf[:small]
	e.mark = growBool(e.mark, idSpace)
	e.edges = nil
	return e
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// NewEngine returns a view over the full presorted matrix (the
// standalone-tree and full-sample boosting path). Reported ids are row
// indices into x.
func (p *Presort) NewEngine(x [][]float64, reuse *Engine) *Engine {
	e := p.engine(x, p.n, p.n, reuse)
	copy(e.order, p.order)
	copy(e.vals, p.vals)
	for i := range e.rows {
		e.rows[i] = int32(i)
	}
	return e
}

// NewSubsetEngine returns a view restricted to the given distinct rows
// (the boosting row-subsample path). Reported ids are row indices into
// x. Columns are derived from the pristine sort by a stable filter pass
// — O(d·n), no re-sort.
func (p *Presort) NewSubsetEngine(x [][]float64, rows []int, reuse *Engine) *Engine {
	e := p.engine(x, len(rows), p.n, reuse)
	for i := range e.mark {
		e.mark[i] = false
	}
	for _, r := range rows {
		e.mark[r] = true
	}
	for f := 0; f < p.d; f++ {
		src, sv := p.order[f*p.n:(f+1)*p.n], p.vals[f*p.n:(f+1)*p.n]
		dst, dv := e.order[f*e.n:(f+1)*e.n], e.vals[f*e.n:(f+1)*e.n]
		w := 0
		for k, id := range src {
			if e.mark[id] {
				dst[w], dv[w] = id, sv[k]
				w++
			}
		}
	}
	w := 0
	for i := 0; i < p.n; i++ {
		if e.mark[i] {
			e.rows[w] = int32(i)
			w++
		}
	}
	return e
}

// NewBootstrapEngine returns a view over a bootstrap resample: boot[pos]
// names the original row standing at position pos, and reported ids are
// positions into boot (and into x, the resampled row view). Each
// pristine column expands to the resample in one pass, duplicates
// emitted in ascending position order — O(d·n), no re-sort.
func (p *Presort) NewBootstrapEngine(x [][]float64, boot []int32, reuse *Engine) *Engine {
	nb := len(boot)
	idSpace := nb
	if p.n > idSpace {
		idSpace = p.n
	}
	e := p.engine(x, nb, idSpace, reuse)
	// Per-original-row position lists, built ascending by prepending in
	// reverse position order.
	e.head = growI32(e.head, p.n)
	e.next = growI32(e.next, nb)
	for i := range e.head {
		e.head[i] = -1
	}
	for pos := nb - 1; pos >= 0; pos-- {
		r := boot[pos]
		e.next[pos] = e.head[r]
		e.head[r] = int32(pos)
	}
	for f := 0; f < p.d; f++ {
		src, sv := p.order[f*p.n:(f+1)*p.n], p.vals[f*p.n:(f+1)*p.n]
		dst, dv := e.order[f*nb:(f+1)*nb], e.vals[f*nb:(f+1)*nb]
		w := 0
		for k, id := range src {
			v := sv[k]
			for pos := e.head[id]; pos >= 0; pos = e.next[pos] {
				dst[w], dv[w] = pos, v
				w++
			}
		}
	}
	for i := range e.rows {
		e.rows[i] = int32(i)
	}
	return e
}

// Len returns the number of rows in the view.
func (e *Engine) Len() int { return e.n }

// Features returns the feature dimensionality.
func (e *Engine) Features() int { return e.d }

// Col returns feature f's sorted (values, ids) over the node window
// [lo, hi). Valid only while every ancestor partition since the root
// used Partition (the large-node regime).
func (e *Engine) Col(f, lo, hi int) ([]float64, []int32) {
	base := f * e.n
	return e.vals[base+lo : base+hi], e.order[base+lo : base+hi]
}

// Rows returns the node window's row ids in ascending order.
func (e *Engine) Rows(lo, hi int) []int32 { return e.rows[lo:hi] }

// Partition stably splits every feature column's [lo, hi) window (and
// the row arena) into ids with x[id][feature] <= threshold followed by
// the rest, preserving sorted order on both sides, and returns the
// boundary index. Cost O(d·(hi-lo)), zero allocations.
func (e *Engine) Partition(feature int, threshold float64, lo, hi int) int {
	vals, ids := e.Col(feature, lo, hi)
	nl := 0
	for k, id := range ids {
		goLeft := vals[k] <= threshold
		e.mark[id] = goLeft
		if goLeft {
			nl++
		}
	}
	for f := 0; f < e.d; f++ {
		if f == feature {
			continue // sorted column: the left side is already a prefix
		}
		base := f * e.n
		stablePartition(e.vals[base+lo:base+hi], e.order[base+lo:base+hi], e.mark, e.scratchV, e.scratchI)
	}
	stableRows(e.rows[lo:hi], e.mark, e.scratchI)
	return lo + nl
}

// PartitionRows is the small-node variant: only the row arena is
// partitioned (columns go stale below the cutoff and are never read
// again). Cost O(hi-lo).
func (e *Engine) PartitionRows(feature int, threshold float64, lo, hi int) int {
	rows := e.rows[lo:hi]
	si := e.scratchI
	w, r := 0, 0
	for _, id := range rows {
		if e.x[id][feature] <= threshold {
			rows[w] = id
			w++
		} else {
			si[r] = id
			r++
		}
	}
	copy(rows[w:], si[:r])
	return lo + w
}

func stablePartition(vals []float64, ids []int32, mark []bool, sv []float64, si []int32) {
	w, r := 0, 0
	for k, id := range ids {
		if mark[id] {
			vals[w], ids[w] = vals[k], id
			w++
		} else {
			sv[r], si[r] = vals[k], id
			r++
		}
	}
	copy(vals[w:], sv[:r])
	copy(ids[w:], si[:r])
}

func stableRows(rows []int32, mark []bool, si []int32) {
	w, r := 0, 0
	for _, id := range rows {
		if mark[id] {
			rows[w] = id
			w++
		} else {
			si[r] = id
			r++
		}
	}
	copy(rows[w:], si[:r])
}

// SortedCol gathers feature f over the node's rows from the raw matrix
// and sorts it by (value, id) into reusable buffers — the small-node
// scan path. The returned slices are overwritten by the next call.
func (e *Engine) SortedCol(f, lo, hi int) ([]float64, []int32) {
	rows := e.rows[lo:hi]
	buf := e.kvBuf[:len(rows)]
	for k, id := range rows {
		buf[k] = KV{V: e.x[id][f], ID: id}
	}
	slices.SortFunc(buf, cmpKV)
	vals, ids := e.smallV[:len(buf)], e.smallI[:len(buf)]
	for k, kv := range buf {
		vals[k], ids[k] = kv.V, kv.ID
	}
	return vals, ids
}

// SetBins switches the engine to histogram-binned split finding:
// candidate thresholds are capped at bins-1 per-feature quantile edges
// computed from the root columns, instead of every distinct value.
// Splits are no longer guaranteed identical to the exact scan; nodes in
// the small regime always scan exactly (candidate pruning no longer pays
// there). bins <= 1 keeps the exact scan.
func (e *Engine) SetBins(bins int) {
	if bins <= 1 || e.n == 0 {
		e.edges = nil
		return
	}
	e.edges = make([][]float64, e.d)
	for f := 0; f < e.d; f++ {
		vals, _ := e.Col(f, 0, e.n)
		var edges []float64
		for b := 1; b < bins; b++ {
			k := b * e.n / bins
			if k <= 0 || k >= e.n {
				continue
			}
			lov, hiv := vals[k-1], vals[k]
			if lov == hiv {
				continue
			}
			thr := (lov + hiv) / 2
			if len(edges) == 0 || edges[len(edges)-1] != thr {
				edges = append(edges, thr)
			}
		}
		e.edges[f] = edges
	}
}

// Edges returns feature f's binned candidate thresholds, or nil in exact
// mode.
func (e *Engine) Edges(f int) []float64 {
	if e.edges == nil {
		return nil
	}
	return e.edges[f]
}
