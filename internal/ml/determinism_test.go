package ml_test

import (
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/forest"
)

// TestCrossValidateDeterministicAcrossWorkerCounts verifies the
// worker-invariance contract for k-fold evaluation: fold shuffling depends
// only on the seed and each fold writes a disjoint slice of the prediction
// vector, so metrics are identical whether folds run on 1, 2, or 8 workers.
func TestCrossValidateDeterministicAcrossWorkerCounts(t *testing.T) {
	x, y := spamLikeData(600, 17)
	d, err := ml.NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() ml.Classifier {
		return forest.New(forest.Config{Trees: 12, MaxDepth: 10, Seed: 4})
	}

	ref, err := ml.CrossValidate(d, 5, factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		m, err := ml.CrossValidateWorkers(d, 5, factory, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m != ref {
			t.Fatalf("workers=%d: metrics %+v diverge from sequential %+v", workers, m, ref)
		}
	}
}
