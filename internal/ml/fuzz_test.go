package ml

import (
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the dataset loader and
// that anything it accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("f0,f1,label\n1,2,1\n3,4,0\n")
	f.Add("label\n1\n")
	f.Add("")
	f.Add("f0,label\nNaN,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to write: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip changed size: %d vs %d", back.Len(), d.Len())
		}
	})
}
