package ml_test

import (
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/forest"
)

// BenchmarkCrossValidate times 5-fold evaluation of a random forest at the
// default worker count and reports the speedup over running the same folds
// on a single worker as a custom metric.
func BenchmarkCrossValidate(b *testing.B) {
	x, y := spamLikeData(1500, 17)
	d, err := ml.NewDataset(x, y)
	if err != nil {
		b.Fatal(err)
	}
	factory := func() ml.Classifier {
		return forest.New(forest.Config{Trees: 20, MaxDepth: 12, Seed: 4, Workers: 1})
	}

	cvOnce := func(workers int) time.Duration {
		start := time.Now()
		if _, err := ml.CrossValidateWorkers(d, 5, factory, 3, workers); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	cvOnce(1) // warm caches
	seq := cvOnce(1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.CrossValidateWorkers(d, 5, factory, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-vs-1worker")
	}
}
