package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, true, false, false}
	curve, auc := ROC(scores, truth)
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
	if len(curve) == 0 || curve[len(curve)-1].FPR != 1 || curve[len(curve)-1].TPR != 1 {
		t.Fatalf("curve does not end at (1,1): %v", curve)
	}
}

func TestROCInvertedScores(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []bool{true, true, false, false}
	_, auc := ROC(scores, truth)
	if auc != 0 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		truth[i] = rng.Float64() < 0.4
	}
	_, auc := ROC(scores, truth)
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random-score AUC = %v, want ≈0.5", auc)
	}
}

func TestROCTiedScores(t *testing.T) {
	// All scores equal: single diagonal step, AUC exactly 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	truth := []bool{true, false, true, false}
	curve, auc := ROC(scores, truth)
	if auc != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
	if len(curve) != 2 {
		t.Fatalf("tied curve has %d points, want 2", len(curve))
	}
}

func TestROCDegenerate(t *testing.T) {
	if curve, auc := ROC([]float64{1, 2}, []bool{true, true}); curve != nil || auc != 0 {
		t.Fatal("single-class ROC should be nil/0")
	}
	if curve, auc := ROC(nil, nil); curve != nil || auc != 0 {
		t.Fatal("empty ROC should be nil/0")
	}
	if curve, auc := ROC([]float64{1}, []bool{true, false}); curve != nil || auc != 0 {
		t.Fatal("mismatched lengths should be nil/0")
	}
}

// scoredStub exposes PredictProba; thresholdClassifier (ml_test.go) does
// not — ScoreOf must handle both.
type scoredStub struct{ p float64 }

func (s scoredStub) Fit([][]float64, []bool) error    { return nil }
func (s scoredStub) Predict(x []float64) bool         { return s.p > 0.5 }
func (s scoredStub) PredictProba(x []float64) float64 { return s.p }

func TestScoreOf(t *testing.T) {
	if got := ScoreOf(scoredStub{p: 0.7}, nil); got != 0.7 {
		t.Fatalf("proba score = %v", got)
	}
	hard := &thresholdClassifier{cut: 0}
	if got := ScoreOf(hard, []float64{1}); got != 1 {
		t.Fatalf("hard positive score = %v", got)
	}
	if got := ScoreOf(hard, []float64{-1}); got != 0 {
		t.Fatalf("hard negative score = %v", got)
	}
}

func TestAUCOf(t *testing.T) {
	x := [][]float64{{0.9}, {0.8}, {0.2}, {0.1}}
	truth := []bool{true, true, false, false}
	if got := AUCOf(scoredStubFromX{}, x, truth); got != 1 {
		t.Fatalf("AUCOf = %v, want 1", got)
	}
}

type scoredStubFromX struct{}

func (scoredStubFromX) Fit([][]float64, []bool) error    { return nil }
func (scoredStubFromX) Predict(x []float64) bool         { return x[0] > 0.5 }
func (scoredStubFromX) PredictProba(x []float64) float64 { return x[0] }
