// Package pipeline is the staged streaming runtime the sniffer runs on
// (DESIGN.md §12): typed bounded queues chained through micro-batching
// stages, with backpressure that propagates upstream to the stream reader
// and drain/close semantics for end-of-run reporting.
//
// A stage is one goroutine consuming its input queue in FIFO order, so a
// chain of stages processes every item in arrival order — the property the
// repo's determinism suite relies on: a streaming run is bit-identical to
// the synchronous batch run under simclock. Micro-batch boundaries
// (FlushSize items or FlushInterval of age, whichever first) only shape
// scheduling and instrumentation, never results; stage handlers are free
// to fan a batch's independent work over the shared worker pool
// (internal/parallel) as long as they apply effects in batch order.
//
// Backpressure: Queue.Push blocks while the queue is full. Because each
// stage pushes into the next stage's queue, a slow stage fills its input
// and the stall propagates back to the producer — for the sniffer, the
// engine's Subscribe callback, which pauses the simulated firehose exactly
// the way a real Streaming API reader stops draining its socket.
package pipeline

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// ErrClosed is returned by Queue.Push after Close.
var ErrClosed = errors.New("pipeline: queue closed")

// Config parameterizes a Runner and the queues created for it.
type Config struct {
	// FlushSize is the micro-batch size bound (default 64).
	FlushSize int
	// FlushInterval bounds how long a partial batch waits for more items
	// after its first item arrived (default 25ms). Zero flushes whatever
	// is immediately available.
	FlushInterval time.Duration
	// QueueCap bounds every queue created for the runner
	// (default 4×FlushSize). Push blocks while the queue is full.
	QueueCap int
	// Metrics receives the runtime's instrumentation; nil binds the
	// process-wide metrics.Default() registry.
	Metrics *metrics.Registry
	// Tracer records one trace per non-empty stage flush; nil binds the
	// process-wide trace.Default() tracer (disabled by default).
	Tracer *trace.Tracer
	// Shard is the shard label value stamped on every ph_pipeline_* metric
	// this runner emits ("0" when unset). The sharded sniffer runs one
	// runner per shard plus a "coord" runner, so per-shard imbalance is
	// visible at /metrics.
	Shard string
	// Source is the ingest-source label value stamped on every
	// ph_pipeline_* metric and flush span this runner emits ("twitter"
	// when unset — the implicit source of a sniffer without an explicit
	// Sources configuration). Multi-source runs label each runner with
	// the source feeding it, or "mux" downstream of the merge.
	Source string
	// Heartbeat, when set, is called with the stage name once per
	// micro-batch flush — the progress signal the stall watchdog
	// (internal/obs) uses to tell a stage that is slowly grinding from one
	// that stopped consuming. Nil means no reporting.
	Heartbeat func(stage string)
}

// DefaultFlushSize is the default micro-batch size bound.
const DefaultFlushSize = 64

// DefaultFlushInterval is the default partial-batch age bound.
const DefaultFlushInterval = 25 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.FlushSize <= 0 {
		c.FlushSize = DefaultFlushSize
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.FlushSize
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default()
	}
	if c.Tracer == nil {
		c.Tracer = trace.Default()
	}
	if c.Shard == "" {
		c.Shard = "0"
	}
	if c.Source == "" {
		c.Source = "twitter"
	}
	return c
}

// Runner owns a linear chain of stages. Register stages in topological
// (upstream-first) order with Through/Sink, then Start. Drain waits for
// every enqueued item to finish processing; Close the head queue and Wait
// to shut the chain down.
type Runner struct {
	cfg    Config
	ins    *instruments
	stages []*stageState
	wg     sync.WaitGroup
}

// NewRunner creates a runner; queues and stages bind to its config.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	return &Runner{cfg: cfg, ins: newInstruments(cfg.Metrics)}
}

// Queue is a bounded FIFO of T with blocking push (backpressure) and
// close semantics. A queue has exactly one producer (the upstream stage or
// the external ingest callback) and one consumer (the downstream stage);
// the producer must not Push after Close.
type Queue[T any] struct {
	name string
	ch   chan T

	mu     sync.Mutex
	closed bool
	pushed uint64

	// batchBuf is popBatch's reusable output buffer. Safe because a queue
	// has exactly one consumer, and each batch is fully processed before
	// the consumer pops the next one.
	batchBuf []T

	depth        *metrics.Gauge
	backpressure *metrics.Counter
}

// NewQueue creates a bounded queue named after the stage that consumes it,
// sized by the runner's QueueCap.
func NewQueue[T any](r *Runner, name string) *Queue[T] {
	return &Queue[T]{
		name:         name,
		ch:           make(chan T, r.cfg.QueueCap),
		depth:        r.ins.depth.With(name, r.cfg.Shard, r.cfg.Source),
		backpressure: r.ins.backpressure.With(name, r.cfg.Shard, r.cfg.Source),
	}
}

// Push appends v, blocking while the queue is full (backpressure). It
// returns ErrClosed once the queue has been closed.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.pushed++
	q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
		// Full: count the stall, then block until the consumer drains.
		q.backpressure.Inc()
		q.ch <- v
	}
	q.depth.Set(float64(len(q.ch)))
	return nil
}

// Close marks the queue complete. The consumer drains the remaining items
// and then observes the end of the stream. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ch)
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Pushed reports the total number of items ever pushed.
func (q *Queue[T]) Pushed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed
}

// popBatch blocks for the first item (or end of stream), then collects up
// to max items, waiting at most wait after the first item for stragglers.
// It returns ok=false only when the queue is closed and fully drained.
// The returned batch reuses the queue's buffer and is valid only until the
// consumer's next popBatch call.
func (q *Queue[T]) popBatch(max int, wait time.Duration) (batch []T, ok bool) {
	v, ok := <-q.ch
	if !ok {
		return nil, false
	}
	if cap(q.batchBuf) < max {
		q.batchBuf = make([]T, 0, max)
	}
	batch = append(q.batchBuf[:0], v)
	defer func() { q.batchBuf = batch }()
	var deadline <-chan time.Time
	for len(batch) < max {
		select {
		case v, open := <-q.ch:
			if !open {
				q.depth.Set(0)
				return batch, true
			}
			batch = append(batch, v)
		default:
			if wait <= 0 {
				q.depth.Set(float64(len(q.ch)))
				return batch, true
			}
			if deadline == nil {
				deadline = time.After(wait)
			}
			select {
			case v, open := <-q.ch:
				if !open {
					q.depth.Set(0)
					return batch, true
				}
				batch = append(batch, v)
			case <-deadline:
				q.depth.Set(float64(len(q.ch)))
				return batch, true
			}
		}
	}
	q.depth.Set(float64(len(q.ch)))
	return batch, true
}

// stageState tracks one stage's completion for Drain.
type stageState struct {
	name   string
	pushed func() uint64

	mu        sync.Mutex
	cond      *sync.Cond
	completed uint64

	run func()
}

func (s *stageState) done(n int) {
	s.mu.Lock()
	s.completed += uint64(n)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drain blocks until the stage has fully processed everything pushed to
// its input queue. The producer must be quiescent, or drain never settles.
func (s *stageState) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.completed != s.pushed() {
		s.cond.Wait()
	}
}

func newStage(r *Runner, name string, pushed func() uint64) *stageState {
	s := &stageState{name: name, pushed: pushed}
	s.cond = sync.NewCond(&s.mu)
	r.stages = append(r.stages, s)
	return s
}

// flush wraps one micro-batch through the runner's instrumentation: batch
// and item counters, flush-latency histogram, and a per-flush trace.
func (r *Runner) flush(name string, n int, fn func(tr *trace.Trace)) {
	start := time.Now()
	tr := r.cfg.Tracer.Start("pipeline_" + name)
	sp := tr.StartSpan("pipeline_" + name)
	fn(tr)
	sp.End()
	if tr != nil {
		tr.SetAttr("batch", strconv.Itoa(n))
		tr.SetAttr("source", r.cfg.Source)
	}
	tr.Finish()
	r.ins.batches.With(name, r.cfg.Shard, r.cfg.Source).Inc()
	r.ins.items.With(name, r.cfg.Shard, r.cfg.Source).Add(float64(n))
	r.ins.flushSecs.With(name, r.cfg.Shard, r.cfg.Source).ObserveDuration(start)
	if r.cfg.Heartbeat != nil {
		r.cfg.Heartbeat(name)
	}
}

// Through registers a stage that consumes in, applies fn per micro-batch,
// and pushes fn's outputs — in order — to out. The stage closes out once
// in is closed and drained, propagating shutdown down the chain. fn must
// apply stateful effects in batch order; it may fan independent work over
// the worker pool.
func Through[In, Out any](r *Runner, name string, in *Queue[In], out *Queue[Out], fn func(batch []In) []Out) {
	s := newStage(r, name, in.Pushed)
	s.run = func() {
		defer out.Close()
		for {
			batch, ok := in.popBatch(r.cfg.FlushSize, r.cfg.FlushInterval)
			if !ok {
				return
			}
			var outs []Out
			r.flush(name, len(batch), func(*trace.Trace) {
				outs = fn(batch)
			})
			for _, o := range outs {
				// The only producer of out is this stage, so a push
				// can fail only after external shutdown; drop then.
				if err := out.Push(o); err != nil {
					break
				}
			}
			s.done(len(batch))
		}
	}
}

// Sink registers the chain's terminal stage: it consumes in and applies fn
// per micro-batch with nothing downstream.
func Sink[In any](r *Runner, name string, in *Queue[In], fn func(batch []In)) {
	s := newStage(r, name, in.Pushed)
	s.run = func() {
		for {
			batch, ok := in.popBatch(r.cfg.FlushSize, r.cfg.FlushInterval)
			if !ok {
				return
			}
			r.flush(name, len(batch), func(*trace.Trace) {
				fn(batch)
			})
			s.done(len(batch))
		}
	}
}

// Start launches one goroutine per registered stage.
func (r *Runner) Start() {
	for _, s := range r.stages {
		r.wg.Add(1)
		go func(s *stageState) {
			defer r.wg.Done()
			s.run()
		}(s)
	}
}

// Drain blocks until every item pushed so far has been fully processed by
// every stage, in upstream-to-downstream order. The caller must guarantee
// the external producer is quiescent for the duration (the sniffer drains
// between RunHours calls); Drain does not close anything, so streaming can
// resume afterwards.
func (r *Runner) Drain() {
	for _, s := range r.stages {
		s.drain()
	}
}

// Wait blocks until every stage goroutine has exited. Close the head
// queue first; each stage closes its output queue on exit, so the
// shutdown cascades to the sink.
func (r *Runner) Wait() { r.wg.Wait() }
