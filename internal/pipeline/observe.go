package pipeline

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// instruments is the runtime's view of the metrics registry. Vec children
// are resolved once per queue/stage at construction, so the streaming hot
// path pays one atomic op per push, never a label lookup.
type instruments struct {
	depth        *metrics.GaugeVec
	backpressure *metrics.CounterVec
	batches      *metrics.CounterVec
	items        *metrics.CounterVec
	flushSecs    *metrics.HistogramVec
}

func newInstruments(r *metrics.Registry) *instruments {
	return &instruments{
		depth: r.GaugeVec("ph_pipeline_queue_depth",
			"Items buffered in a stage's input queue.", "stage", "shard", "source"),
		backpressure: r.CounterVec("ph_pipeline_backpressure_total",
			"Pushes that found the stage's input queue full and had to block.", "stage", "shard", "source"),
		batches: r.CounterVec("ph_pipeline_batches_total",
			"Micro-batches flushed through a stage.", "stage", "shard", "source"),
		items: r.CounterVec("ph_pipeline_items_total",
			"Items processed by a stage across all micro-batches.", "stage", "shard", "source"),
		flushSecs: r.HistogramVec("ph_pipeline_flush_seconds",
			"Wall-clock latency of one micro-batch flush through a stage.", nil, "stage", "shard", "source"),
	}
}
