package pipeline

import (
	"sync"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// chain builds a two-stage int chain (double → collect) on a private
// registry and returns the head queue, the runner, and the collected
// output guarded by mu.
func chain(t *testing.T, cfg Config) (*Queue[int], *Runner, *sync.Mutex, *[]int) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	r := NewRunner(cfg)
	qIn := NewQueue[int](r, "double")
	qOut := NewQueue[int](r, "collect")
	Through(r, "double", qIn, qOut, func(batch []int) []int {
		out := make([]int, len(batch))
		for i, v := range batch {
			out[i] = 2 * v
		}
		return out
	})
	var mu sync.Mutex
	got := &[]int{}
	Sink(r, "collect", qOut, func(batch []int) {
		mu.Lock()
		*got = append(*got, batch...)
		mu.Unlock()
	})
	r.Start()
	return qIn, r, &mu, got
}

// TestChainFIFOOrder pushes a monotone stream through a two-stage chain
// and requires the sink to observe every item, doubled, in push order —
// micro-batch boundaries must never reorder.
func TestChainFIFOOrder(t *testing.T) {
	qIn, r, mu, got := chain(t, Config{FlushSize: 7, FlushInterval: time.Millisecond})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := qIn.Push(i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	qIn.Close()
	r.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != n {
		t.Fatalf("sink saw %d items, want %d", len(*got), n)
	}
	for i, v := range *got {
		if v != 2*i {
			t.Fatalf("item %d = %d, want %d (reordered)", i, v, 2*i)
		}
	}
}

// TestPushAfterCloseErrors verifies the close contract: Push returns
// ErrClosed, never panics, once the queue is closed.
func TestPushAfterCloseErrors(t *testing.T) {
	r := NewRunner(Config{Metrics: metrics.NewRegistry()})
	q := NewQueue[int](r, "head")
	q.Close()
	q.Close() // idempotent
	if err := q.Push(1); err != ErrClosed {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
}

// TestBackpressureBlocksProducer fills a capacity-2 queue with no consumer
// running, verifies the third push blocks, then confirms it completes once
// a consumer drains — and that the stall is counted on the backpressure
// metric.
func TestBackpressureBlocksProducer(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRunner(Config{QueueCap: 2, Metrics: reg})
	q := NewQueue[int](r, "slow")
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(2); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan struct{})
	go func() {
		q.Push(3) // must block: queue is full
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("push into a full queue returned without a consumer")
	case <-time.After(50 * time.Millisecond):
	}
	if got, ok := q.popBatch(3, 0); !ok || len(got) == 0 {
		t.Fatalf("popBatch = %v, %v", got, ok)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("push did not unblock after the consumer drained")
	}
	bp := metricValue(t, reg, "ph_pipeline_backpressure_total", "slow")
	if bp < 1 {
		t.Fatalf("backpressure counter = %v, want >= 1", bp)
	}
}

// TestFlushBySize verifies a full micro-batch flushes at FlushSize without
// waiting out the interval.
func TestFlushBySize(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRunner(Config{FlushSize: 4, FlushInterval: time.Hour, Metrics: reg})
	q := NewQueue[int](r, "sized")
	sizes := make(chan int, 8)
	Sink(r, "sized", q, func(batch []int) { sizes <- len(batch) })
	r.Start()
	for i := 0; i < 8; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for seen := 0; seen < 8; {
		select {
		case n := <-sizes:
			if n > 4 {
				t.Fatalf("batch of %d exceeds FlushSize 4", n)
			}
			seen += n
		case <-time.After(5 * time.Second):
			t.Fatalf("stage stalled with FlushInterval=1h despite full batches")
		}
	}
	q.Close()
	r.Wait()
}

// TestFlushByInterval verifies a partial batch flushes once FlushInterval
// elapses even though more items never arrive.
func TestFlushByInterval(t *testing.T) {
	r := NewRunner(Config{FlushSize: 1024, FlushInterval: 20 * time.Millisecond,
		Metrics: metrics.NewRegistry()})
	q := NewQueue[int](r, "interval")
	flushed := make(chan []int, 1)
	Sink(r, "interval", q, func(batch []int) {
		flushed <- append([]int(nil), batch...)
	})
	r.Start()
	if err := q.Push(42); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-flushed:
		if len(b) != 1 || b[0] != 42 {
			t.Fatalf("flushed %v, want [42]", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partial batch never flushed on interval")
	}
	q.Close()
	r.Wait()
}

// TestDrainWaitsForInFlight pushes through a deliberately slow stage and
// checks Drain does not return until the sink has seen every item.
func TestDrainWaitsForInFlight(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRunner(Config{FlushSize: 8, FlushInterval: time.Millisecond, Metrics: reg})
	qIn := NewQueue[int](r, "slow")
	qOut := NewQueue[int](r, "count")
	Through(r, "slow", qIn, qOut, func(batch []int) []int {
		time.Sleep(time.Millisecond)
		return batch
	})
	var mu sync.Mutex
	seen := 0
	Sink(r, "count", qOut, func(batch []int) {
		mu.Lock()
		seen += len(batch)
		mu.Unlock()
	})
	r.Start()
	const n = 200
	for i := 0; i < n; i++ {
		if err := qIn.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	r.Drain()
	mu.Lock()
	got := seen
	mu.Unlock()
	if got != n {
		t.Fatalf("Drain returned with %d/%d items at the sink", got, n)
	}
	// Drain leaves the chain live: more work must still flow.
	if err := qIn.Push(99); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	mu.Lock()
	got = seen
	mu.Unlock()
	if got != n+1 {
		t.Fatalf("post-drain push not processed: %d", got)
	}
	qIn.Close()
	r.Wait()
}

// TestCloseCascades closes the head queue and requires Wait to return with
// every stage having flushed its residue downstream.
func TestCloseCascades(t *testing.T) {
	qIn, r, mu, got := chain(t, Config{FlushSize: 64, FlushInterval: time.Hour})
	for i := 0; i < 10; i++ {
		if err := qIn.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	qIn.Close()
	done := make(chan struct{})
	go func() { r.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung after head close")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 10 {
		t.Fatalf("close lost items: sink saw %d/10", len(*got))
	}
}

// TestQueueMetrics verifies the per-stage instrumentation families show up
// with sane values after a run.
func TestQueueMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	qIn, r, _, _ := chain(t, Config{FlushSize: 4, FlushInterval: time.Millisecond, Metrics: reg})
	for i := 0; i < 40; i++ {
		if err := qIn.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	qIn.Close()
	r.Wait()
	if v := metricValue(t, reg, "ph_pipeline_items_total", "double"); v != 40 {
		t.Fatalf("ph_pipeline_items_total{stage=double} = %v, want 40", v)
	}
	if v := metricValue(t, reg, "ph_pipeline_items_total", "collect"); v != 40 {
		t.Fatalf("ph_pipeline_items_total{stage=collect} = %v, want 40", v)
	}
	if v := metricValue(t, reg, "ph_pipeline_batches_total", "double"); v < 10 {
		t.Fatalf("ph_pipeline_batches_total{stage=double} = %v, want >= 10", v)
	}
	// Depth gauges exist and have settled at zero.
	if v := metricValue(t, reg, "ph_pipeline_queue_depth", "double"); v != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", v)
	}
}

// metricValue reads one labeled sample value from a registry snapshot.
func metricValue(t *testing.T, reg *metrics.Registry, family, stage string) float64 {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name != family {
			continue
		}
		for _, s := range fam.Samples {
			for _, l := range s.Labels {
				if l.Name == "stage" && l.Value == stage {
					return s.Value
				}
			}
		}
	}
	t.Fatalf("no sample %s{stage=%q}", family, stage)
	return 0
}
