package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// pipelineFixture registers the pipeline series the watchdog scans and
// returns setters for one (stage, shard).
type pipelineFixture struct {
	depth        *metrics.Gauge
	items        *metrics.Counter
	backpressure *metrics.Counter
}

func newPipelineFixture(reg *metrics.Registry, stage, shard string) *pipelineFixture {
	return &pipelineFixture{
		depth:        reg.GaugeVec("ph_pipeline_queue_depth", "d", "stage", "shard").With(stage, shard),
		items:        reg.CounterVec("ph_pipeline_items_total", "i", "stage", "shard").With(stage, shard),
		backpressure: reg.CounterVec("ph_pipeline_backpressure_total", "b", "stage", "shard").With(stage, shard),
	}
}

func stallCount(reg *metrics.Registry, stage, shard string) float64 {
	for _, fam := range reg.Snapshot() {
		if fam.Name != "ph_watchdog_stall_total" {
			continue
		}
		for _, s := range fam.Samples {
			match := 0
			for _, l := range s.Labels {
				if (l.Name == "stage" && l.Value == stage) || (l.Name == "shard" && l.Value == shard) {
					match++
				}
			}
			if match == 2 {
				return s.Value
			}
		}
	}
	return 0
}

func TestWatchdogDetectsStall(t *testing.T) {
	reg := metrics.NewRegistry()
	fx := newPipelineFixture(reg, "match", "1")
	var logBuf bytes.Buffer
	w := NewWatchdog(WatchdogConfig{Metrics: reg, Logger: trace.NewLogger(&logBuf, trace.LevelWarn)})

	// Queue saturated, no progress across a full window: stall on the
	// second scan (the first only establishes the baseline).
	fx.depth.Set(8)
	fx.items.Add(100)
	if got := w.Scan(); len(got) != 0 {
		t.Fatalf("first scan has no window, got %v", got)
	}
	got := w.Scan()
	if len(got) != 1 || got[0] != "match;1" {
		t.Fatalf("stall not detected: %v", got)
	}
	if v := stallCount(reg, "match", "1"); v != 1 {
		t.Fatalf("ph_watchdog_stall_total = %v, want 1", v)
	}
	if !strings.Contains(logBuf.String(), "pipeline stage stalled") ||
		!strings.Contains(logBuf.String(), `reason=stalled`) {
		t.Fatalf("stall warning missing: %s", logBuf.String())
	}
}

func TestWatchdogProgressSuppressesStall(t *testing.T) {
	reg := metrics.NewRegistry()
	fx := newPipelineFixture(reg, "label", "2")
	w := NewWatchdog(WatchdogConfig{Metrics: reg})

	fx.depth.Set(5)
	fx.items.Add(10)
	w.Scan()

	// Item counter advanced: consuming, not stalled.
	fx.items.Add(1)
	if got := w.Scan(); len(got) != 0 {
		t.Fatalf("progressing stage flagged: %v", got)
	}

	// No item progress but the heartbeat moved (mid-batch): still alive.
	w.Heartbeat("label")
	if got := w.Scan(); len(got) != 0 {
		t.Fatalf("heartbeating stage flagged: %v", got)
	}

	// Queue drained: idle, not stalled.
	fx.depth.Set(0)
	w.Scan()
	if got := w.Scan(); len(got) != 0 {
		t.Fatalf("idle stage flagged: %v", got)
	}
}

func TestWatchdogSaturatedReason(t *testing.T) {
	reg := metrics.NewRegistry()
	fx := newPipelineFixture(reg, "detect", "1")
	var logBuf bytes.Buffer
	w := NewWatchdog(WatchdogConfig{Metrics: reg, Logger: trace.NewLogger(&logBuf, trace.LevelWarn)})

	fx.depth.Set(64)
	fx.items.Add(7)
	w.Scan()
	// Producers actively blocked on the dead stage.
	fx.backpressure.Add(3)
	if got := w.Scan(); len(got) != 1 {
		t.Fatalf("saturated stall not detected: %v", got)
	}
	if !strings.Contains(logBuf.String(), "reason=saturated") {
		t.Fatalf("saturated reason missing: %s", logBuf.String())
	}
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	w.Heartbeat("match") // must not panic
	if got := w.Scan(); got != nil {
		t.Fatalf("nil Scan = %v", got)
	}
	stop := w.Start()
	stop()
	if fn := w.HeartbeatFunc(); fn == nil {
		t.Fatal("nil HeartbeatFunc")
	} else {
		fn("match")
	}
}

func TestWatchdogStartScansOnInterval(t *testing.T) {
	reg := metrics.NewRegistry()
	fx := newPipelineFixture(reg, "match", "1")
	fx.depth.Set(4)
	fx.items.Add(1)
	w := NewWatchdog(WatchdogConfig{Metrics: reg, Interval: 2 * time.Millisecond})
	stop := w.Start()
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for stallCount(reg, "match", "1") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if stallCount(reg, "match", "1") == 0 {
		t.Fatal("ticker-driven scan never fired a stall")
	}
}
