package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// Watchdog turns the pipeline's existing instrumentation into stall
// detection. Each scan reads the registry's ph_pipeline_queue_depth and
// ph_pipeline_items_total series per (stage, shard) and compares against
// the previous scan: a stage whose input queue holds items while neither
// its item counter nor its progress heartbeat advanced across a full scan
// window has stopped consuming — the watchdog increments
// ph_watchdog_stall_total{stage,shard} and emits a structured warning
// (reason "saturated" when backpressure also advanced in the window,
// i.e. producers are actively blocked on the dead stage).
//
// Heartbeats distinguish "stuck" from "slow": Runner.flush beats once per
// micro-batch via the pipeline's Heartbeat hook, so a stage grinding
// through an enormous batch still registers progress even though its item
// counter only moves at flush end.
//
// A nil *Watchdog is a valid disabled receiver: Heartbeat on nil is a
// single predictable branch (benchmarked by BenchmarkObsDisabled), so the
// pipeline never guards the hook.
type Watchdog struct {
	reg      *metrics.Registry
	logger   *trace.Logger
	stalls   *metrics.CounterVec
	interval time.Duration

	beats sync.Map // stage → *atomic.Uint64

	mu   sync.Mutex
	prev map[string]stageProgress // (stage;shard) → last scan's view
}

// stageProgress is one (stage, shard)'s view at a scan.
type stageProgress struct {
	depth        float64
	items        float64
	backpressure float64
	beat         uint64
}

// WatchdogConfig parameterizes a Watchdog.
type WatchdogConfig struct {
	// Metrics is the registry scanned for pipeline series and given the
	// stall counter; nil means metrics.Default().
	Metrics *metrics.Registry
	// Logger receives stall warnings; nil drops them.
	Logger *trace.Logger
	// Interval is the scan period for Start (default 5s).
	Interval time.Duration
}

// NewWatchdog creates an enabled watchdog.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	return &Watchdog{
		reg:    cfg.Metrics,
		logger: cfg.Logger,
		stalls: cfg.Metrics.CounterVec("ph_watchdog_stall_total",
			"Pipeline stages detected stalled: queued input with no progress across a scan window.",
			"stage", "shard"),
		interval: cfg.Interval,
		prev:     make(map[string]stageProgress),
	}
}

// Heartbeat records progress for a stage. Nil-safe and lock-free on the
// hot path (one sync.Map load + one atomic add).
func (w *Watchdog) Heartbeat(stage string) {
	if w == nil {
		return
	}
	v, ok := w.beats.Load(stage)
	if !ok {
		v, _ = w.beats.LoadOrStore(stage, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

// HeartbeatFunc adapts the watchdog to the pipeline's Heartbeat hook.
// Valid on a nil receiver (returns the nil-safe method value).
func (w *Watchdog) HeartbeatFunc() func(stage string) { return w.Heartbeat }

// beat reads a stage's heartbeat count.
func (w *Watchdog) beat(stage string) uint64 {
	if v, ok := w.beats.Load(stage); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// Scan runs one stall-detection pass and returns the stages flagged this
// pass as "stage;shard" keys. Exported so tests drive the window
// deterministically; Start calls it on a ticker.
func (w *Watchdog) Scan() []string {
	if w == nil {
		return nil
	}
	cur := make(map[string]stageProgress)
	type labeled struct{ stage, shard string }
	series := make(map[string]labeled)
	for _, fam := range w.reg.Snapshot() {
		var set func(p *stageProgress, v float64)
		switch fam.Name {
		case "ph_pipeline_queue_depth":
			set = func(p *stageProgress, v float64) { p.depth = v }
		case "ph_pipeline_items_total":
			set = func(p *stageProgress, v float64) { p.items = v }
		case "ph_pipeline_backpressure_total":
			set = func(p *stageProgress, v float64) { p.backpressure = v }
		default:
			continue
		}
		for _, s := range fam.Samples {
			var stage, shard string
			for _, l := range s.Labels {
				switch l.Name {
				case "stage":
					stage = l.Value
				case "shard":
					shard = l.Value
				}
			}
			key := stage + ";" + shard
			p := cur[key]
			set(&p, s.Value)
			p.beat = w.beat(stage)
			cur[key] = p
			series[key] = labeled{stage, shard}
		}
	}

	var stalled []string
	w.mu.Lock()
	prev := w.prev
	w.prev = cur
	w.mu.Unlock()
	for key, p := range cur {
		last, seen := prev[key]
		if !seen {
			continue
		}
		if p.depth <= 0 || last.depth <= 0 {
			continue // empty queue at either edge: idle, not stalled
		}
		if p.items != last.items || p.beat != last.beat {
			continue // the stage advanced
		}
		stalled = append(stalled, key)
		l := series[key]
		w.stalls.With(l.stage, l.shard).Inc()
		reason := "stalled"
		if p.backpressure > last.backpressure {
			reason = "saturated"
		}
		if w.logger != nil {
			w.logger.Warn("pipeline stage stalled",
				"stage", l.stage, "shard", l.shard, "reason", reason,
				"queue_depth", p.depth, "items_total", p.items)
		}
	}
	sort.Strings(stalled)
	return stalled
}

// Start scans on the configured interval until the returned stop function
// is called. Nil-safe.
func (w *Watchdog) Start() (stop func()) {
	if w == nil {
		return func() {}
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				w.Scan()
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}
