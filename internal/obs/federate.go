// Package obs is the fleet observability layer (DESIGN.md §16): it makes
// the sharded deployment mode — where worker subprocesses own their own
// pipelines, spans, and runtimes — watchable from one place. Three
// pillars:
//
//   - Federator scrapes every proc-mode shard worker's /metrics on an
//     interval, merges the payloads with the coordinator's own registry
//     (metrics.MergeInstances semantics: counters and histograms sum to
//     fleet totals, gauges stay per-shard), and serves the rollup plus an
//     aggregated /healthz that turns 503 with per-shard detail when any
//     worker is down, restarting, or stale.
//   - Collector (runtime.go) samples runtime/metrics into ph_runtime_*
//     series in every process, so heap, GC, goroutine, and scheduler
//     pressure show up in the same federated view.
//   - Watchdog (watchdog.go) turns pipeline instrumentation into stall
//     detection: a saturated queue whose stage stopped advancing emits
//     ph_watchdog_stall_total and a structured warning.
//
// Everything here is pull-based and strictly off the capture path: the
// scrape loop runs on its own goroutine with a bounded per-worker
// timeout, so a hung worker admin endpoint degrades health reporting —
// it never stalls the rotation barrier.
package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// Target is one fleet member to scrape.
type Target struct {
	// Name is the member's shard identity ("1".."N"), used as the
	// MergeLabel value on its per-instance series and as the per-shard key
	// in the aggregated health view.
	Name string
	// URL is the member's admin base URL (the worker's loopback epoch-wire
	// server); /metrics is appended for scrapes.
	URL string
}

// Worker scrape statuses reported by the aggregated /healthz.
const (
	// StatusOK: the last scrape inside the staleness window succeeded.
	StatusOK = "ok"
	// StatusPending: the target is known but has never been scraped (the
	// first interval hasn't elapsed).
	StatusPending = "pending"
	// StatusDown: the most recent scrape attempt failed.
	StatusDown = "down"
	// StatusStale: scrapes stopped succeeding long enough ago that the
	// cached payload can't be trusted (StaleAfter).
	StatusStale = "stale"
	// StatusRestarting: the target's URL changed since its last successful
	// scrape — the coordinator respawned the worker — and the replacement
	// hasn't answered yet.
	StatusRestarting = "restarting"
)

// FederatorConfig parameterizes a Federator.
type FederatorConfig struct {
	// Local is the coordinator's own registry, merged into every rollup as
	// the instance named LocalName. Nil means metrics.Default().
	Local *metrics.Registry
	// LocalName is the coordinator's instance name (default "coord").
	LocalName string
	// Targets supplies the current worker fleet; called at each scrape so
	// worker restarts (new loopback ports) are picked up. Nil or
	// empty-returning means an unsharded process: the federator serves the
	// local registry untouched.
	Targets func() []Target
	// Interval is the scrape period for Start (default 2s).
	Interval time.Duration
	// Timeout bounds each worker scrape (default 1s). The bound is per
	// target and the fetches run concurrently, so one hung worker delays a
	// scrape round by at most Timeout and the capture path by nothing.
	Timeout time.Duration
	// StaleAfter is how old a cached worker payload may grow before the
	// worker is reported stale (default 3×Interval).
	StaleAfter time.Duration
	// Logger receives scrape-failure warnings; nil drops them.
	Logger *trace.Logger
	// Clock supplies scrape timestamps; nil means time.Now.
	Clock func() time.Time
	// Fetch overrides the HTTP fetch (tests). Nil uses http.Get with the
	// scrape context.
	Fetch func(ctx context.Context, url string) ([]byte, error)
}

func (c FederatorConfig) withDefaults() FederatorConfig {
	if c.Local == nil {
		c.Local = metrics.Default()
	}
	if c.LocalName == "" {
		c.LocalName = "coord"
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Fetch == nil {
		c.Fetch = httpFetch
	}
	return c
}

// targetState is the cached scrape outcome for one fleet member.
type targetState struct {
	name string
	url  string
	// exposition is the last successfully parsed payload (nil before the
	// first success and after a URL change).
	exposition *metrics.Exposition
	lastOK     time.Time
	lastErr    string
	scraped    bool // any attempt completed at this URL
}

// Federator merges the local registry with scraped worker payloads into
// one fleet-level metrics and health view.
type Federator struct {
	cfg FederatorConfig

	mu     sync.Mutex
	states map[string]*targetState // keyed by Target.Name
}

// NewFederator creates a federator from cfg.
func NewFederator(cfg FederatorConfig) *Federator {
	return &Federator{cfg: cfg.withDefaults(), states: make(map[string]*targetState)}
}

// SetTargets installs (or replaces) the fleet supplier. The sniffer calls
// this after the proc coordinator spawned its workers, when the admin
// URLs become known.
func (f *Federator) SetTargets(targets func() []Target) {
	f.mu.Lock()
	f.cfg.Targets = targets
	f.mu.Unlock()
}

// httpFetch is the production scrape: one GET bounded by the context.
func httpFetch(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// syncTargets reconciles the state table with the current fleet: new
// targets enter as pending, a changed URL (worker respawn) drops the
// cached payload and marks the member restarting, and members no longer
// in the fleet are forgotten.
func (f *Federator) syncTargets() []*targetState {
	var targets []Target
	if f.cfg.Targets != nil {
		targets = f.cfg.Targets()
	}
	live := make(map[string]struct{}, len(targets))
	out := make([]*targetState, 0, len(targets))
	for _, t := range targets {
		live[t.Name] = struct{}{}
		st := f.states[t.Name]
		if st == nil {
			st = &targetState{name: t.Name, url: t.URL}
			f.states[t.Name] = st
		} else if st.url != t.URL {
			// The worker was respawned on a new port: its old payload
			// described a dead process.
			st.url = t.URL
			st.exposition = nil
			st.scraped = false
			st.lastErr = ""
		}
		out = append(out, st)
	}
	for name := range f.states {
		if _, ok := live[name]; !ok {
			delete(f.states, name)
		}
	}
	return out
}

// ScrapeOnce runs one scrape round: every current target fetched
// concurrently, each bounded by the per-target timeout. It returns the
// number of targets that answered successfully.
func (f *Federator) ScrapeOnce(ctx context.Context) int {
	f.mu.Lock()
	states := f.syncTargets()
	fetch := f.cfg.Fetch
	timeout := f.cfg.Timeout
	logger := f.cfg.Logger
	clock := f.cfg.Clock
	type job struct {
		name, url string
	}
	jobs := make([]job, len(states))
	for i, st := range states {
		jobs[i] = job{st.name, st.url}
	}
	f.mu.Unlock()

	type result struct {
		name string
		exp  *metrics.Exposition
		err  error
	}
	results := make([]result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			body, err := fetch(fctx, j.url+"/metrics")
			if err == nil {
				var exp *metrics.Exposition
				if exp, err = metrics.ParseExposition(bytes.NewReader(body)); err == nil {
					results[i] = result{name: j.name, exp: exp}
					return
				}
			}
			results[i] = result{name: j.name, err: err}
		}(i, j)
	}
	wg.Wait()

	now := clock()
	ok := 0
	f.mu.Lock()
	for _, res := range results {
		st := f.states[res.name]
		if st == nil { // target removed mid-scrape
			continue
		}
		st.scraped = true
		if res.err != nil {
			st.lastErr = res.err.Error()
			continue
		}
		st.exposition = res.exp
		st.lastOK = now
		st.lastErr = ""
		ok++
	}
	f.mu.Unlock()
	for _, res := range results {
		if res.err != nil && logger != nil {
			logger.Warn("worker scrape failed", "shard", res.name, "error", res.err)
		}
	}
	return ok
}

// Start launches the scrape loop on its own goroutine and returns its
// stop function. The loop is entirely off the capture path.
func (f *Federator) Start() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(f.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				f.ScrapeOnce(ctx)
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// localExposition renders and re-parses the local registry so it merges
// through the exact path scraped payloads do (and its gauges pick up the
// coordinator's MergeLabel).
func (f *Federator) localExposition() *metrics.Exposition {
	var buf bytes.Buffer
	if err := f.cfg.Local.WriteText(&buf); err != nil {
		return nil
	}
	exp, err := metrics.ParseExposition(&buf)
	if err != nil {
		return nil
	}
	return exp
}

// Rollup merges the local registry with every cached worker payload into
// the fleet-level snapshot.
func (f *Federator) Rollup() []metrics.FamilySnapshot {
	instances := []metrics.Instance{{Name: f.cfg.LocalName, Exposition: f.localExposition()}}
	f.mu.Lock()
	names := make([]string, 0, len(f.states))
	for name := range f.states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		instances = append(instances, metrics.Instance{Name: name, Exposition: f.states[name].exposition})
	}
	f.mu.Unlock()
	return metrics.MergeInstances(instances)
}

// federated reports whether any worker target has ever been installed —
// before that the federator is a transparent shim over the local
// registry.
func (f *Federator) federated() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Targets != nil
}

// Handler serves /metrics: the plain local registry until targets are
// installed, the fleet rollup afterwards.
func (f *Federator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", metrics.TextContentType)
		if !f.federated() {
			_ = f.cfg.Local.WriteText(w)
			return
		}
		_ = metrics.WriteTextSnapshots(w, f.Rollup())
	})
}

// WorkerHealth is one fleet member's row in the aggregated health view.
type WorkerHealth struct {
	Shard  string `json:"shard"`
	URL    string `json:"url"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// LastScrapeAgeSeconds is the age of the newest successful scrape;
	// nil when the member never answered.
	LastScrapeAgeSeconds *float64 `json:"last_scrape_age_seconds,omitempty"`
}

// FleetHealth is the aggregated /healthz body: the coordinator's own
// liveness fields plus one row per worker.
type FleetHealth struct {
	metrics.Health
	Workers []WorkerHealth `json:"workers,omitempty"`
}

// health builds the aggregated body and reports whether every member is
// healthy.
func (f *Federator) health(extras []func(*metrics.Health)) (FleetHealth, bool) {
	h := FleetHealth{Health: metrics.CurrentHealth()}
	for _, extra := range extras {
		if extra != nil {
			extra(&h.Health)
		}
	}
	if h.WAL != nil && h.WAL.LastSyncError != "" {
		h.Status = "degraded"
	}

	f.mu.Lock()
	names := make([]string, 0, len(f.states))
	for name := range f.states {
		names = append(names, name)
	}
	sort.Strings(names)
	now := f.cfg.Clock()
	stale := f.cfg.StaleAfter
	allOK := true
	for _, name := range names {
		st := f.states[name]
		wh := WorkerHealth{Shard: st.name, URL: st.url, Error: st.lastErr}
		switch {
		case !st.scraped && st.exposition == nil && st.lastErr == "":
			if st.lastOK.IsZero() {
				wh.Status = StatusPending
			} else {
				wh.Status = StatusRestarting
			}
		case st.lastErr != "":
			wh.Status = StatusDown
		case now.Sub(st.lastOK) > stale:
			wh.Status = StatusStale
		default:
			wh.Status = StatusOK
		}
		if !st.lastOK.IsZero() {
			age := now.Sub(st.lastOK).Seconds()
			wh.LastScrapeAgeSeconds = &age
		}
		if wh.Status != StatusOK {
			allOK = false
		}
		h.Workers = append(h.Workers, wh)
	}
	f.mu.Unlock()

	if !allOK {
		h.Status = "degraded"
	}
	// Worker health alone drives the status code: a local WAL sync error
	// marks the body degraded (matching metrics.HealthHandlerFunc) but the
	// process is still alive and serving.
	return h, allOK
}

// HealthHandler serves the aggregated /healthz: 200 while the local
// process and every worker are healthy, 503 with per-shard detail when
// any worker is down, restarting, pending, or stale. Extras enrich the
// local section exactly as metrics.HealthHandlerFunc applies them (the
// WAL hook).
func (f *Federator) HealthHandler(extras ...func(*metrics.Health)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h, ok := f.health(extras)
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
}
